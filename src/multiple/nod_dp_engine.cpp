#include "multiple/nod_dp_engine.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "support/thread_pool.hpp"

namespace rpt::multiple {

namespace detail {

void MergeMinShift(std::uint32_t* __restrict__ out, const std::uint32_t* __restrict__ rhs,
                   std::uint32_t shift, std::size_t n) noexcept {
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t candidate = rhs[j] + shift;
    out[j] = out[j] < candidate ? out[j] : candidate;
  }
}

}  // namespace detail

namespace {

using Cost = NodDpEngine::Cost;
constexpr Cost kInf = NodDpEngine::kInfCost;

void MakeMonotone(NodDpEngine::CostTable& table) {
  for (std::size_t u = 1; u < table.size(); ++u) table[u] = std::min(table[u], table[u - 1]);
}

}  // namespace

// Inverse staircase of a monotone non-increasing table: inv[c - vmin] is the
// smallest u with table[u] <= c, for every integer cost c in [vmin, vmax]
// (vmax = largest finite value, i.e. table[first_finite]; vmin =
// table.back()). Leading kInf runs are skipped entirely — first_finite marks
// where the finite staircase starts. The inv array lives in the per-chunk
// scratch arena, reset before every merge.
void NodDpEngine::Staircase::BuildFrom(const CostTable& table, Arena& arena) {
  std::size_t f = 0;
  while (f < table.size() && table[f] >= kInf) ++f;
  RPT_CHECK(f < table.size());  // every DP table has a finite entry
  first_finite = f;
  vmax = table[f];
  vmin = table.back();
  inv = arena.AllocSpan<std::uint32_t>(static_cast<std::size_t>(vmax - vmin) + 1);
  std::fill(inv.begin(), inv.end(), static_cast<std::uint32_t>(f));
  Cost cur = vmax;
  for (std::size_t u = f + 1; u < table.size(); ++u) {
    while (cur > table[u]) {
      --cur;
      inv[cur - vmin] = static_cast<std::uint32_t>(u);
    }
  }
}

NodDpEngine::NodDpEngine(TopologyView view, Requests capacity)
    : view_(view),
      capacity_(capacity),
      demand_(view.Size()),
      subtree_demand_(view.Size()),
      f_(view.Size()),
      prefixes_(view.Size()),
      last_dirty_pass_(view.Size(), 0),
      force_prefix_rebuild_(view.Size(), 0),
      frag_(view.Size()) {
  RPT_REQUIRE(capacity_ > 0, "NodDpEngine: capacity must be positive");
  for (NodeId id = 0; id < view_.Size(); ++id) {
    if (!view_.IsLive(id)) continue;
    demand_[id] = view_.RequestsOf(id);
    subtree_demand_[id] = view_.SubtreeRequests(id);
  }
  RebuildLevels();
}

void NodDpEngine::RebuildLevels() {
  std::uint32_t max_depth = 0;
  for (NodeId id = 0; id < view_.Size(); ++id) {
    if (view_.IsLive(id)) max_depth = std::max(max_depth, view_.Depth(id));
  }
  all_levels_.assign(static_cast<std::size_t>(max_depth) + 1, {});
  dirty_levels_.assign(all_levels_.size(), {});
  for (NodeId id = 0; id < view_.Size(); ++id) {
    if (view_.IsLive(id)) all_levels_[view_.Depth(id)].push_back(id);
  }
}

void NodDpEngine::SetDemand(NodeId client, Requests demand) {
  RPT_REQUIRE(view_.IsLive(CheckNode(client)), "NodDpEngine: demand belongs to live nodes");
  RPT_REQUIRE(view_.IsClient(client), "NodDpEngine: demand belongs to client leaves");
  const Requests old = demand_[client];
  if (old == demand) return;
  demand_[client] = demand;
  for (NodeId cur = client;; cur = view_.Parent(cur)) {
    subtree_demand_[cur] = subtree_demand_[cur] - old + demand;
    if (cur == view_.Root()) break;
  }
}

void NodDpEngine::ApplyTopology(TopologyView view, std::span<const NodeId> children_changed,
                                std::span<const NodeId> removed) {
  view_ = view;
  const std::size_t n = view_.Size();
  demand_.resize(n, 0);
  subtree_demand_.resize(n, 0);
  f_.resize(n);
  prefixes_.resize(n);
  last_dirty_pass_.resize(n, 0);
  force_prefix_rebuild_.resize(n, 0);
  frag_.resize(n);
  // Demand mirrors refresh wholesale: the overlay's request column is
  // authoritative after attach/detach (O(n), dwarfed by the DP work the
  // batch triggers anyway).
  for (NodeId id = 0; id < n; ++id) {
    if (!view_.IsLive(id)) continue;
    demand_[id] = view_.RequestsOf(id);
    subtree_demand_[id] = view_.SubtreeRequests(id);
  }
  for (const NodeId dead : removed) {
    CheckNode(dead);
    // Free the dead subtree's tables and reclaim its fragment budget; its
    // slots stay allocated (ids are never reused) but no live traversal
    // reaches them.
    f_[dead] = CostTable{};
    prefixes_[dead] = {};
    frag_entries_total_ -= frag_[dead].EntryCount();
    frag_[dead] = FragmentCache{};
    last_dirty_pass_[dead] = 0;
  }
  for (const NodeId parent : children_changed) {
    RPT_REQUIRE(view_.IsLive(CheckNode(parent)),
                "NodDpEngine::ApplyTopology: changed parent must be live");
    // The stored prefixes index the OLD child list; stamp the node so the
    // next pass (pass_ + 1) rebuilds its chain from child 0. Appends don't
    // need this: prefix[i] still covers children [0, i) and the appended
    // child is dirty, so the normal first-dirty-child scan is exact.
    force_prefix_rebuild_[parent] = pass_ + 1;
  }
  RebuildLevels();
}

void NodDpEngine::SetCapacity(Requests capacity) {
  RPT_REQUIRE(capacity > 0, "NodDpEngine: capacity must be positive");
  if (capacity == capacity_) return;
  capacity_ = capacity;
  computed_ = false;  // every transition depends on W: full recompute needed
}

// Monotone min-plus convolution, out[k] = min_{i+j<=k} a[i] + b[j], written
// into `out` (sized |a|+|b|-1; kInf where no finite split exists). Because
// both inputs are monotone staircases, the convolution runs in the *cost*
// domain: O(range(a) * range(b) + |out|) instead of O(|a| * |b|). Cost
// ranges are replica counts (<= subtree client counts), which on
// request-heavy instances are orders of magnitude below the request-domain
// table sizes. Equivalent to the naive convolution followed by MakeMonotone,
// entry for entry.
void NodDpEngine::Convolve(const CostTable& a, const CostTable& b, CostTable& out,
                           ConvolveScratch& scratch, std::uint64_t& cells) {
  scratch.arena.Reset();
  scratch.lhs.BuildFrom(a, scratch.arena);
  scratch.rhs.BuildFrom(b, scratch.arena);
  const Staircase& lhs = scratch.lhs;
  const Staircase& rhs = scratch.rhs;
  const Cost cmin = lhs.vmin + rhs.vmin;
  const Cost cmax = lhs.vmax + rhs.vmax;

  // Out(c) = min forwarded budget achieving total cost <= c: minimize
  // A(c1) + B(c2) over all splits c1 + c2 <= c, then close under "spend
  // less, forward more" monotonicity. With j = c2 - rhs.vmin the output
  // slot for (c1, c2) is (c1 - lhs.vmin) + j, so each c1 contributes one
  // contiguous shifted-min sweep — the vectorized MergeMinShift.
  const std::span<std::uint32_t> out_inv =
      scratch.arena.AllocSpan<std::uint32_t>(static_cast<std::size_t>(cmax - cmin) + 1);
  std::fill(out_inv.begin(), out_inv.end(), std::numeric_limits<std::uint32_t>::max());
  const std::size_t rhs_len = rhs.inv.size();
  for (Cost c1 = lhs.vmin; c1 <= lhs.vmax; ++c1) {
    const std::uint32_t ua = lhs.inv[c1 - lhs.vmin];
    detail::MergeMinShift(out_inv.data() + (c1 - lhs.vmin), rhs.inv.data(), ua, rhs_len);
  }
  for (std::size_t c = 1; c < out_inv.size(); ++c) {
    out_inv[c] = std::min(out_inv[c], out_inv[c - 1]);
  }
  cells += static_cast<std::uint64_t>(lhs.inv.size()) * rhs_len;

  // Materialize the output staircase; indices below the first feasible
  // budget (the leading kInf run) are never written.
  out.assign(a.size() + b.size() - 1, kInf);
  std::size_t hi = out.size();
  for (Cost c = cmin; c <= cmax && hi > 0; ++c) {
    const std::size_t u = out_inv[c - cmin];
    for (std::size_t k = u; k < hi; ++k) out[k] = c;
    hi = std::min(hi, u);
  }
}

// Recomputes f_[node] (and, for internal nodes, the stored prefix tables
// from child index `first_child` on) — all children must already be up to
// date, which the level sweep guarantees. The recomputed tables depend only
// on (children tables, demand, capacity), never on which pass runs the
// node, so an incremental recompute writes exactly the bytes a full pass
// would.
void NodDpEngine::ProcessNode(NodeId node, std::size_t first_child, ConvolveScratch& scratch,
                              ChunkCounters& counters) {
  if (view_.IsClient(node)) {
    if (!imported_.empty()) {
      // Sharded solve: a boundary leaf's table IS the cut subtree root's F
      // table, shipped from the worker — install it verbatim.
      const auto it = imported_.find(node);
      if (it != imported_.end()) {
        f_[node] = it->second;
        RPT_CHECK(f_[node].size() == static_cast<std::size_t>(subtree_demand_[node]) + 1);
        counters.entries += f_[node].size();
        return;
      }
    }
    const Requests r = demand_[node];
    CostTable& table = f_[node];
    table.assign(static_cast<std::size_t>(r) + 1, kInf);
    table[static_cast<std::size_t>(r)] = 0;  // no replica: forward everything
    const Requests min_forward = r > capacity_ ? r - capacity_ : 0;
    for (std::size_t u = static_cast<std::size_t>(min_forward); u <= r; ++u) {
      table[u] = std::min<Cost>(table[u], 1);  // replica: serve min(r, W) locally
    }
    MakeMonotone(table);
    RPT_CHECK(table.size() == static_cast<std::size_t>(subtree_demand_[node]) + 1);
    counters.entries += table.size();
    return;
  }
  // Children convolution with stored prefixes: prefix[i] is the product of
  // children [0, i). Every stored table stays bounded by its (sub)domain's
  // request total + 1 — the convolution never widens a table beyond the
  // demand it can actually forward.
  const auto kids = view_.Children(node);
  auto& prefix = prefixes_[node];
  prefix.resize(kids.size() + 1);
  if (first_child == 0) {
    prefix[0].assign(1, 0);  // empty product: forward 0 at cost 0
    counters.entries += 1;
  }
  for (std::size_t c = first_child; c < kids.size(); ++c) {
    Convolve(prefix[c], f_[kids[c]], prefix[c + 1], scratch, counters.cells);
    counters.entries += prefix[c + 1].size();
  }
  const CostTable& g = prefix.back();
  const std::size_t total = g.size() - 1;  // subtree request total below node
  RPT_CHECK(total == static_cast<std::size_t>(subtree_demand_[node]));
  CostTable& table = f_[node];
  table.assign(total + 1, kInf);
  for (std::size_t u = 0; u <= total; ++u) {
    table[u] = g[u];  // no replica
    const std::size_t relaxed = std::min<std::size_t>(
        total, u + static_cast<std::size_t>(std::min<Requests>(capacity_, total)));
    if (g[relaxed] < kInf) {
      table[u] = std::min<Cost>(table[u], 1 + g[relaxed]);  // replica absorbs up to W
    }
  }
  MakeMonotone(table);
  counters.entries += table.size();
}

// Level-synchronous sweep, deepest level first. Within a level every node's
// merge is independent (its children live one level deeper and are already
// done), so the level runs as parallel chunks on the process-wide solver
// pool; per-chunk scratch leases and exact-integer work counters keep the
// outputs bit-identical to a serial sweep. In the incremental form the
// levels hold only dirty nodes — independent dirty chains proceed in
// parallel — and each internal node's prefix chain restarts at its first
// dirty child.
void NodDpEngine::SweepLevels(const std::vector<std::vector<NodeId>>& levels, bool incremental) {
  std::atomic<std::uint64_t> entries{0};
  std::atomic<std::uint64_t> cells{0};
  std::uint64_t nodes = 0;
  ThreadPool* pool = SolverPool();
  for (std::size_t d = levels.size(); d-- > 0;) {
    const std::vector<NodeId>& level = levels[d];
    if (level.empty()) continue;
    nodes += level.size();
    ParallelForChunked(pool, level.size(), /*grain=*/1,
                       [&](std::size_t begin, std::size_t end) {
                         const auto lease = scratch_pool_.Acquire();
                         ChunkCounters counters;
                         for (std::size_t slot = begin; slot < end; ++slot) {
                           const NodeId node = level[slot];
                           std::size_t first_child = 0;
                           if (incremental && !view_.IsClient(node) &&
                               force_prefix_rebuild_[node] != pass_) {
                             // Reuse the prefix chain up to the first child
                             // whose subtree changed this pass. (A node whose
                             // child list shrank or reordered this pass is
                             // stamped by ApplyTopology and skips straight to
                             // a full rebuild — its prefixes index the old
                             // list.)
                             const auto kids = view_.Children(node);
                             first_child = kids.size();
                             for (std::size_t c = 0; c < kids.size(); ++c) {
                               if (last_dirty_pass_[kids[c]] == pass_) {
                                 first_child = c;
                                 break;
                               }
                             }
                             // A dirty internal node usually has a dirty
                             // child (dirt spreads leaf -> root); a
                             // topology-seeded node may not (e.g. a migrated
                             // subtree root, dirty by decree while all its
                             // children kept valid tables) — fall back to a
                             // full rebuild.
                             if (first_child == kids.size()) first_child = 0;
                           }
                           ProcessNode(node, first_child, *lease, counters);
                         }
                         entries.fetch_add(counters.entries, std::memory_order_relaxed);
                         cells.fetch_add(counters.cells, std::memory_order_relaxed);
                       });
  }
  work_.table_entries += entries.load(std::memory_order_relaxed);
  work_.convolve_cells += cells.load(std::memory_order_relaxed);
  work_.nodes_processed += nodes;
  last_pass_nodes_ = nodes;
}

void NodDpEngine::ComputeAll() {
  ++pass_;
  std::fill(last_dirty_pass_.begin(), last_dirty_pass_.end(), pass_);
  SweepLevels(all_levels_, /*incremental=*/false);
  computed_ = true;
}

void NodDpEngine::RecomputeDirty(std::span<const NodeId> touched) {
  RPT_REQUIRE(computed_, "NodDpEngine: RecomputeDirty requires a completed ComputeAll");
  if (touched.empty()) {
    last_pass_nodes_ = 0;
    return;
  }
  ++pass_;
  for (auto& level : dirty_levels_) level.clear();
  // The dirty set is the union of the touched nodes' root paths; each walk
  // stops at the first node already marked by an earlier path. Seeds are
  // client leaves whose demand changed, or — after ApplyTopology — any live
  // node whose subtree membership changed (attached roots, detach/migrate
  // parents): an internal seed marks itself plus its chain, and the sweep's
  // fallback rebuilds its prefix chain even when none of its children are
  // dirty.
  for (const NodeId seed : touched) {
    RPT_REQUIRE(view_.IsLive(CheckNode(seed)), "NodDpEngine: touched nodes must be live");
    for (NodeId cur = seed;; cur = view_.Parent(cur)) {
      if (last_dirty_pass_[cur] == pass_) break;
      last_dirty_pass_[cur] = pass_;
      dirty_levels_[view_.Depth(cur)].push_back(cur);
      if (cur == view_.Root()) break;
    }
  }
  // Paths are walked in touched order, so bucket contents may be unsorted;
  // sort for deterministic chunk boundaries independent of touch order.
  for (auto& level : dirty_levels_) std::sort(level.begin(), level.end());
  SweepLevels(dirty_levels_, /*incremental=*/true);
}

bool NodDpEngine::Feasible() const {
  RPT_REQUIRE(computed_, "NodDpEngine: Feasible requires up-to-date tables");
  const CostTable& root = f_[view_.Root()];
  return !root.empty() && root[0] < kInf;
}

namespace {
constexpr std::uint32_t kPendNil = static_cast<std::uint32_t>(-1);
}  // namespace

NodDpEngine::PendChain NodDpEngine::BacktrackNode(NodeId node, std::size_t u,
                                                  Solution& solution) {
  const CostTable& table = f_[node];
  RPT_CHECK(u < table.size() || !table.empty());
  u = std::min(u, table.size() - 1);

  const auto empty_chain = [] { return PendChain{kPendNil, kPendNil, 0}; };
  const auto single_chain = [this](NodeId client, Requests amount) {
    const auto id = static_cast<std::uint32_t>(pend_entries_.size());
    pend_entries_.push_back(PendEntry{client, amount, kPendNil});
    return PendChain{id, id, amount};
  };

  // Imported boundary leaf (sharded solve): the subtree behind this leaf was
  // reconstructed by its shard worker; its replicas and entries travel in the
  // worker's solution fragment (spliced in by the coordinator, not here). The
  // spine only needs the pending list the fragment forwards — replayed
  // verbatim, in chain order, so every upstream replica absorbs exactly the
  // prefix the unsharded backtrack would have handed it.
  if (!imported_.empty() && imported_.contains(node)) {
    RPT_REQUIRE(imported_provider_ != nullptr,
                "NodDpEngine: backtracking imported tables requires a fragment provider");
    RPT_CHECK(table[u] < kInf);
    PendChain chain = empty_chain();
    for (const auto& [client, amount] : imported_provider_(node, u)) {
      const PendChain link = single_chain(client, amount);
      if (chain.head == kPendNil) {
        chain.head = link.head;
      } else {
        pend_entries_[chain.tail].next = link.head;
      }
      chain.tail = link.tail;
      chain.total += amount;
    }
    return chain;
  }

  // Fragment replay: valid iff the fragment was recorded after the subtree's
  // last recompute (a dirty node this pass has last_dirty == pass_ >=
  // built_pass, so it can never hit) and the clamped budget matches. The
  // reconstruction below is a pure function of (subtree tables, budget), so
  // the replayed bytes are exactly what the recursion would append.
  FragmentCache& frag = frag_[node];
  if (frag.built_pass > last_dirty_pass_[node] && frag.budget == u) {
    solution.replicas.insert(solution.replicas.end(), frag.replicas.begin(),
                             frag.replicas.end());
    solution.assignment.insert(solution.assignment.end(), frag.entries.begin(),
                               frag.entries.end());
    PendChain chain = empty_chain();
    for (const auto& [client, amount] : frag.forwarded) {
      const PendChain link = single_chain(client, amount);
      if (chain.head == kPendNil) {
        chain.head = link.head;
      } else {
        pend_entries_[chain.tail].next = link.head;
      }
      chain.tail = link.tail;
      chain.total += amount;
    }
    return chain;
  }
  const std::size_t mark_replicas = solution.replicas.size();
  const std::size_t mark_entries = solution.assignment.size();
  const auto record_fragment = [&](const PendChain& out) {
    // Record only clean subtrees: a node recomputed this pass is likely on a
    // hot path that changes again, and its fragment near the root can span
    // most of the solution — recording it every pass would cost more than
    // the recursion it saves.
    if (last_dirty_pass_[node] >= pass_) return;
    // Budget check: replacing this node's old fragment frees its share; a
    // brand-new fragment past the cap is simply not recorded (replay is an
    // optimization, never a correctness dependency).
    frag_entries_total_ -= frag.EntryCount();
    const std::size_t incoming_entries =
        (solution.replicas.size() - mark_replicas) + (solution.assignment.size() - mark_entries);
    if (frag_entries_total_ + incoming_entries > kFragEntryBudget) {
      frag = FragmentCache{};  // drop the stale share instead of keeping it
      return;
    }
    frag.built_pass = pass_;
    frag.budget = u;
    frag.replicas.assign(solution.replicas.begin() + mark_replicas, solution.replicas.end());
    frag.entries.assign(solution.assignment.begin() + mark_entries, solution.assignment.end());
    frag.forwarded.clear();
    for (std::uint32_t e = out.head; e != kPendNil; e = pend_entries_[e].next) {
      frag.forwarded.emplace_back(pend_entries_[e].client, pend_entries_[e].amount);
    }
    frag_entries_total_ += frag.EntryCount();
  };

  const Cost cost = table[u];
  RPT_CHECK(cost < kInf);

  if (view_.IsClient(node)) {
    const auto leaf_chain = [&]() -> PendChain {
      const Requests r = demand_[node];
      if (r == 0) return empty_chain();
      if (cost == 0) return single_chain(node, r);  // no replica, forward all
      // Replica: serve as much as possible locally, forward the remainder.
      const Requests local = std::min(r, capacity_);
      solution.replicas.push_back(node);
      solution.assignment.push_back(ServiceEntry{node, node, local});
      if (r > local) return single_chain(node, r - local);
      return empty_chain();
    }();
    record_fragment(leaf_chain);
    return leaf_chain;
  }

  // Split the budget among children (SplitBudget holds the shared table
  // arithmetic). Budgets live in a small stack buffer (heap only past arity
  // 8) so the recursion allocates nothing on typical trees.
  const auto kids = view_.Children(node);
  std::size_t inline_budget[8];
  std::vector<std::size_t> heap_budget;
  std::size_t* child_budget = inline_budget;
  if (kids.size() > 8) {
    heap_budget.resize(kids.size());
    child_budget = heap_budget.data();
  }
  const bool use_replica = SplitBudget(node, u, child_budget);

  // Concatenate the children's pending chains in child order — O(1) splices,
  // preserving exactly the order the flat-list implementation produced.
  PendChain incoming = empty_chain();
  for (std::size_t k = 0; k < kids.size(); ++k) {
    const PendChain from_child = BacktrackNode(kids[k], child_budget[k], solution);
    if (from_child.head == kPendNil) continue;
    if (incoming.head == kPendNil) {
      incoming.head = from_child.head;
    } else {
      pend_entries_[incoming.tail].next = from_child.head;
    }
    incoming.tail = from_child.tail;
    incoming.total += from_child.total;
  }

  if (!use_replica) {
    record_fragment(incoming);
    return incoming;
  }

  // Replica at node: serve min(T, W) of the incoming requests in chain
  // order, forward the rest (guaranteed <= u by the DP transition). Serving
  // is prefix-greedy, so the forwarded list is the chain's suffix starting
  // at the first partially-served entry.
  solution.replicas.push_back(node);
  Requests to_serve = std::min(incoming.total, capacity_);
  PendChain forwarded{incoming.head, incoming.tail, incoming.total - to_serve};
  while (to_serve > 0) {
    RPT_CHECK(forwarded.head != kPendNil);
    PendEntry& entry = pend_entries_[forwarded.head];
    const Requests take = std::min(entry.amount, to_serve);
    solution.assignment.push_back(ServiceEntry{entry.client, node, take});
    to_serve -= take;
    if (take == entry.amount) {
      forwarded.head = entry.next;
      if (forwarded.head == kPendNil) forwarded.tail = kPendNil;
    } else {
      entry.amount -= take;
    }
  }
  RPT_CHECK(forwarded.total <= u);
  record_fragment(forwarded);
  return forwarded;
}

bool NodDpEngine::SplitBudget(NodeId node, std::size_t u, std::size_t* child_budget) const {
  const CostTable& table = f_[node];
  const Cost cost = table[u];
  RPT_CHECK(cost < kInf);
  const auto& prefix = prefixes_[node];
  const CostTable& g = prefix.back();
  const std::size_t total = g.size() - 1;
  const bool use_replica = g[u] != cost;  // prefer the replica-free branch
  std::size_t budget = u;
  Cost remaining_cost = cost;
  if (use_replica) {
    budget = std::min<std::size_t>(
        total, u + static_cast<std::size_t>(std::min<Requests>(capacity_, total)));
    RPT_CHECK(cost >= 1 && g[budget] == cost - 1);
    remaining_cost = cost - 1;
  } else {
    RPT_CHECK(g[budget] == cost);
  }

  // Split `budget` among children by walking the prefix tables backwards.
  const auto kids = view_.Children(node);
  std::size_t v = budget;
  Cost target = remaining_cost;
  for (std::size_t k = kids.size(); k-- > 0;) {
    const CostTable& before = prefix[k];
    const CostTable& child_table = f_[kids[k]];
    bool found = false;
    // Smallest child budget achieving the target keeps ancestors safest.
    for (std::size_t b = 0; b < child_table.size() && b <= v; ++b) {
      if (child_table[b] >= kInf) continue;
      const std::size_t rest = v - b;
      const std::size_t rest_clamped = std::min(rest, before.size() - 1);
      if (before[rest_clamped] < kInf && before[rest_clamped] + child_table[b] == target) {
        child_budget[k] = b;
        target -= child_table[b];
        v = rest_clamped;
        found = true;
        break;
      }
    }
    RPT_CHECK(found);
  }
  return use_replica;
}

void NodDpEngine::ImportLeafTable(NodeId leaf, CostTable table) {
  RPT_REQUIRE(view_.IsLive(CheckNode(leaf)), "NodDpEngine: imported tables belong to live nodes");
  RPT_REQUIRE(view_.IsClient(leaf), "NodDpEngine: imported tables belong to client leaves");
  RPT_REQUIRE(table.size() == static_cast<std::size_t>(subtree_demand_[leaf]) + 1,
              "NodDpEngine: imported table must span the leaf demand (size = demand + 1)");
  RPT_REQUIRE(table.back() < kInf, "NodDpEngine: imported table needs a finite entry");
  for (std::size_t u = 1; u < table.size(); ++u) {
    RPT_REQUIRE(table[u] <= table[u - 1], "NodDpEngine: imported table must be non-increasing");
  }
  imported_[leaf] = std::move(table);
  computed_ = false;  // any previously stored leaf table is stale until the next pass
}

std::vector<NodDpEngine::ImportBudget> NodDpEngine::AssignImportedBudgets() const {
  RPT_REQUIRE(computed_, "NodDpEngine: AssignImportedBudgets requires up-to-date tables");
  RPT_REQUIRE(Feasible(), "NodDpEngine: AssignImportedBudgets requires a feasible state");
  std::vector<ImportBudget> out;
  if (imported_.empty()) return out;
  out.reserve(imported_.size());
  // Iterative root-down sweep; order of visit is irrelevant (budgets flow
  // strictly downward), the result is sorted for determinism.
  std::vector<std::pair<NodeId, std::size_t>> stack{{view_.Root(), 0}};
  std::vector<std::size_t> child_budget;
  while (!stack.empty()) {
    const auto [node, budget] = stack.back();
    stack.pop_back();
    const CostTable& table = f_[node];
    RPT_CHECK(!table.empty());
    const std::size_t u = std::min(budget, table.size() - 1);
    if (view_.IsClient(node)) {
      if (imported_.contains(node)) out.push_back(ImportBudget{node, u});
      continue;
    }
    const auto kids = view_.Children(node);
    if (kids.empty()) continue;  // childless root of a one-node tree
    child_budget.resize(kids.size());
    SplitBudget(node, u, child_budget.data());
    for (std::size_t k = 0; k < kids.size(); ++k) stack.emplace_back(kids[k], child_budget[k]);
  }
  std::sort(out.begin(), out.end(),
            [](const ImportBudget& a, const ImportBudget& b) { return a.leaf < b.leaf; });
  RPT_CHECK(out.size() == imported_.size());
  return out;
}

NodDpEngine::BudgetedBacktrack NodDpEngine::BacktrackWithBudget(std::size_t budget) {
  RPT_REQUIRE(computed_, "NodDpEngine: BacktrackWithBudget requires up-to-date tables");
  const CostTable& root = f_[view_.Root()];
  RPT_REQUIRE(!root.empty() && root[std::min(budget, root.size() - 1)] < kInf,
              "NodDpEngine: no feasible reconstruction at this budget");
  pend_entries_.clear();
  BudgetedBacktrack out;
  const PendChain chain = BacktrackNode(view_.Root(), budget, out.solution);
  out.forwarded.reserve(16);
  for (std::uint32_t e = chain.head; e != kPendNil; e = pend_entries_[e].next) {
    out.forwarded.emplace_back(pend_entries_[e].client, pend_entries_[e].amount);
  }
  return out;
}

Solution NodDpEngine::Backtrack() {
  RPT_REQUIRE(Feasible(), "NodDpEngine: Backtrack requires a feasible state");
  pend_entries_.clear();
  Solution solution;
  // Consecutive solutions of a low-churn stream have near-identical sizes;
  // pre-sizing to the previous one removes the per-call regrowth churn.
  solution.replicas.reserve(last_replica_count_);
  solution.assignment.reserve(last_assignment_count_);
  const PendChain leftover = BacktrackNode(view_.Root(), 0, solution);
  RPT_CHECK(leftover.head == kPendNil && leftover.total == 0);
  last_replica_count_ = solution.replicas.size();
  last_assignment_count_ = solution.assignment.size();
  solution.Canonicalize();
  return solution;
}

}  // namespace rpt::multiple
