#include "multiple/multiple_nod_dp.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace rpt::multiple {

namespace {

using Cost = std::uint32_t;
constexpr Cost kInf = std::numeric_limits<Cost>::max() / 2;

// F table: F[u] = min replicas in the subtree such that at most u requests
// are forwarded above it. Always non-increasing in u.
using CostTable = std::vector<Cost>;

void MakeMonotone(CostTable& table) {
  for (std::size_t u = 1; u < table.size(); ++u) table[u] = std::min(table[u], table[u - 1]);
}

// Min-plus convolution of two monotone tables (domains are subtree totals).
CostTable Convolve(const CostTable& a, const CostTable& b) {
  CostTable out(a.size() + b.size() - 1, kInf);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] >= kInf) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (b[j] >= kInf) continue;
      out[i + j] = std::min(out[i + j], a[i] + b[j]);
    }
  }
  MakeMonotone(out);
  return out;
}

struct Dp {
  const Instance& instance;
  const Tree& tree;
  std::vector<CostTable> f;                      // per node
  std::vector<std::vector<CostTable>> prefixes;  // per node: G_0..G_k for backtracking
  Solution solution;

  explicit Dp(const Instance& inst)
      : instance(inst), tree(inst.GetTree()), f(tree.Size()), prefixes(tree.Size()) {}

  void Forward() {
    const Requests capacity = instance.Capacity();
    for (const NodeId node : tree.PostOrder()) {
      if (tree.IsClient(node)) {
        const Requests r = tree.RequestsOf(node);
        CostTable table(static_cast<std::size_t>(r) + 1, kInf);
        table[static_cast<std::size_t>(r)] = 0;  // no replica: forward everything
        const Requests min_forward = r > capacity ? r - capacity : 0;
        for (std::size_t u = static_cast<std::size_t>(min_forward); u <= r; ++u) {
          table[u] = std::min<Cost>(table[u], 1);  // replica: serve min(r, W) locally
        }
        MakeMonotone(table);
        f[node] = std::move(table);
        continue;
      }
      // Children convolution with stored prefixes.
      auto& prefix = prefixes[node];
      prefix.clear();
      prefix.push_back(CostTable{0});  // empty product: forward 0 at cost 0
      for (const NodeId child : tree.Children(node)) {
        prefix.push_back(Convolve(prefix.back(), f[child]));
      }
      const CostTable& g = prefix.back();
      const std::size_t total = g.size() - 1;  // subtree request total below node
      CostTable table(total + 1, kInf);
      for (std::size_t u = 0; u <= total; ++u) {
        table[u] = g[u];  // no replica
        const std::size_t relaxed = std::min<std::size_t>(
            total, u + static_cast<std::size_t>(std::min<Requests>(capacity, total)));
        if (g[relaxed] < kInf) {
          table[u] = std::min<Cost>(table[u], 1 + g[relaxed]);  // replica absorbs up to W
        }
      }
      MakeMonotone(table);
      f[node] = std::move(table);
    }
  }

  // Pending requests travelling upward during reconstruction.
  using PendingList = std::vector<std::pair<NodeId, Requests>>;  // (client, amount)

  static Requests TotalOf(const PendingList& list) noexcept {
    Requests total = 0;
    for (const auto& [client, amount] : list) total += amount;
    return total;
  }

  // Reconstructs the subtree decision for `node` with forwarded budget u;
  // returns the list actually forwarded upward (total <= u).
  PendingList Backtrack(NodeId node, std::size_t u) {
    const Requests capacity = instance.Capacity();
    const CostTable& table = f[node];
    RPT_CHECK(u < table.size() || !table.empty());
    u = std::min(u, table.size() - 1);
    const Cost cost = table[u];
    RPT_CHECK(cost < kInf);

    if (tree.IsClient(node)) {
      const Requests r = tree.RequestsOf(node);
      if (r == 0) return {};
      if (cost == 0) return {{node, r}};  // no replica, forward all
      // Replica: serve as much as possible locally, forward the remainder.
      const Requests local = std::min(r, capacity);
      solution.replicas.push_back(node);
      solution.assignment.push_back(ServiceEntry{node, node, local});
      if (r > local) return {{node, r - local}};
      return {};
    }

    const auto& prefix = prefixes[node];
    const CostTable& g = prefix.back();
    const std::size_t total = g.size() - 1;
    const bool use_replica = [&] {
      if (g[u] == cost) return false;  // prefer the replica-free branch
      return true;
    }();
    std::size_t budget = u;
    Cost remaining_cost = cost;
    if (use_replica) {
      budget = std::min<std::size_t>(
          total, u + static_cast<std::size_t>(std::min<Requests>(capacity, total)));
      RPT_CHECK(cost >= 1 && g[budget] == cost - 1);
      remaining_cost = cost - 1;
    } else {
      RPT_CHECK(g[budget] == cost);
    }

    // Split `budget` among children by walking the prefix tables backwards.
    const auto kids = tree.Children(node);
    std::vector<std::size_t> child_budget(kids.size(), 0);
    std::size_t v = budget;
    Cost target = remaining_cost;
    for (std::size_t k = kids.size(); k-- > 0;) {
      const CostTable& before = prefix[k];
      const CostTable& child_table = f[kids[k]];
      bool found = false;
      // Smallest child budget achieving the target keeps ancestors safest.
      for (std::size_t b = 0; b < child_table.size() && b <= v; ++b) {
        if (child_table[b] >= kInf) continue;
        const std::size_t rest = v - b;
        const std::size_t rest_clamped = std::min(rest, before.size() - 1);
        if (before[rest_clamped] < kInf &&
            before[rest_clamped] + child_table[b] == target) {
          child_budget[k] = b;
          target -= child_table[b];
          v = rest_clamped;
          found = true;
          break;
        }
      }
      RPT_CHECK(found);
    }

    PendingList incoming;
    for (std::size_t k = 0; k < kids.size(); ++k) {
      PendingList from_child = Backtrack(kids[k], child_budget[k]);
      incoming.insert(incoming.end(), from_child.begin(), from_child.end());
    }

    if (!use_replica) return incoming;

    // Replica at node: serve min(T, W) of the incoming requests, forward the
    // rest (guaranteed <= u by the DP transition).
    solution.replicas.push_back(node);
    Requests to_serve = std::min(TotalOf(incoming), capacity);
    PendingList forwarded;
    for (auto& [client, amount] : incoming) {
      const Requests take = std::min(amount, to_serve);
      if (take > 0) {
        solution.assignment.push_back(ServiceEntry{client, node, take});
        to_serve -= take;
      }
      if (amount > take) forwarded.emplace_back(client, amount - take);
    }
    RPT_CHECK(TotalOf(forwarded) <= u);
    return forwarded;
  }
};

}  // namespace

MultipleNodDpResult SolveMultipleNodDp(const Instance& instance) {
  RPT_REQUIRE(!instance.HasDistanceConstraint(),
              "multiple-nod-dp: only valid without distance constraints");
  Dp dp(instance);
  dp.Forward();
  MultipleNodDpResult result;
  const CostTable& root = dp.f[instance.GetTree().Root()];
  if (root.empty() || root[0] >= kInf) {
    result.feasible = false;
    return result;
  }
  const auto leftover = dp.Backtrack(instance.GetTree().Root(), 0);
  RPT_CHECK(leftover.empty());
  result.feasible = true;
  result.solution = std::move(dp.solution);
  result.solution.Canonicalize();
  return result;
}

}  // namespace rpt::multiple
