#include "multiple/multiple_nod_dp.hpp"

#include <utility>

#include "multiple/nod_dp_engine.hpp"

namespace rpt::multiple {

MultipleNodDpResult SolveMultipleNodDp(const Instance& instance) {
  RPT_REQUIRE(!instance.HasDistanceConstraint(),
              "multiple-nod-dp: only valid without distance constraints");
  // One full forward pass on a fresh engine; the engine is also the substrate
  // of the incremental re-solver (src/incremental/), which keeps it alive
  // across update batches instead of rebuilding it per solve.
  NodDpEngine engine(instance.GetTree(), instance.Capacity());
  engine.ComputeAll();
  MultipleNodDpResult result;
  result.stats.table_entries = engine.Work().table_entries;
  result.stats.convolve_cells = engine.Work().convolve_cells;
  if (!engine.Feasible()) {
    result.feasible = false;
    return result;
  }
  result.feasible = true;
  result.solution = engine.Backtrack();
  return result;
}

}  // namespace rpt::multiple
