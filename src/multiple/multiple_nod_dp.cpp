#include "multiple/multiple_nod_dp.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "support/arena.hpp"
#include "support/thread_pool.hpp"

namespace rpt::multiple {

namespace detail {

void MergeMinShift(std::uint32_t* __restrict__ out, const std::uint32_t* __restrict__ rhs,
                   std::uint32_t shift, std::size_t n) noexcept {
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t candidate = rhs[j] + shift;
    out[j] = out[j] < candidate ? out[j] : candidate;
  }
}

}  // namespace detail

namespace {

using Cost = std::uint32_t;
constexpr Cost kInf = std::numeric_limits<Cost>::max() / 2;

// F table: F[u] = min replicas in the subtree such that at most u requests
// are forwarded above it. Always non-increasing in u.
using CostTable = std::vector<Cost>;

void MakeMonotone(CostTable& table) {
  for (std::size_t u = 1; u < table.size(); ++u) table[u] = std::min(table[u], table[u - 1]);
}

// Inverse staircase of a monotone non-increasing table: inv[c - vmin] is the
// smallest u with table[u] <= c, for every integer cost c in [vmin, vmax]
// (vmax = largest finite value, i.e. table[first_finite]; vmin =
// table.back()). Leading kInf runs are skipped entirely — first_finite marks
// where the finite staircase starts. The inv array lives in the per-chunk
// scratch arena, reset before every merge.
struct Staircase {
  Cost vmin = 0;
  Cost vmax = 0;
  std::size_t first_finite = 0;
  std::span<std::uint32_t> inv;

  void BuildFrom(const CostTable& table, Arena& arena) {
    std::size_t f = 0;
    while (f < table.size() && table[f] >= kInf) ++f;
    RPT_CHECK(f < table.size());  // every DP table has a finite entry
    first_finite = f;
    vmax = table[f];
    vmin = table.back();
    inv = arena.AllocSpan<std::uint32_t>(static_cast<std::size_t>(vmax - vmin) + 1);
    std::fill(inv.begin(), inv.end(), static_cast<std::uint32_t>(f));
    Cost cur = vmax;
    for (std::size_t u = f + 1; u < table.size(); ++u) {
      while (cur > table[u]) {
        --cur;
        inv[cur - vmin] = static_cast<std::uint32_t>(u);
      }
    }
  }
};

// Scratch leased per parallel chunk: two staircases and the output inverse,
// all bump-allocated from one arena that is reset per convolution, so the
// hot loop allocates nothing in steady state (the slabs are reused across
// merges, levels, and solves).
struct ConvolveScratch {
  Arena arena;
  Staircase lhs;
  Staircase rhs;
};

struct Dp {
  const Instance& instance;
  const Tree& tree;
  std::vector<CostTable> f;                      // per node
  std::vector<std::vector<CostTable>> prefixes;  // per node: G_0..G_k for backtracking
  Solution solution;
  MultipleNodDpStats stats;

  // Chunk-leased scratch plus order-independent (exact integer sum) work
  // counters, so the level-parallel forward pass stays deterministic.
  ScratchPool<ConvolveScratch> scratch_pool;
  std::atomic<std::uint64_t> table_entries{0};
  std::atomic<std::uint64_t> convolve_cells{0};

  explicit Dp(const Instance& inst)
      : instance(inst), tree(inst.GetTree()), f(tree.Size()), prefixes(tree.Size()) {}

  // Monotone min-plus convolution, out[k] = min_{i+j<=k} a[i] + b[j],
  // written into `out` (sized |a|+|b|-1; kInf where no finite split exists).
  // Because both inputs are monotone staircases, the convolution runs in the
  // *cost* domain: O(range(a) * range(b) + |out|) instead of O(|a| * |b|).
  // Cost ranges are replica counts (<= subtree client counts), which on
  // request-heavy instances are orders of magnitude below the request-domain
  // table sizes. Equivalent to the naive convolution followed by
  // MakeMonotone, entry for entry.
  void Convolve(const CostTable& a, const CostTable& b, CostTable& out,
                ConvolveScratch& scratch, std::uint64_t& cells) {
    scratch.arena.Reset();
    scratch.lhs.BuildFrom(a, scratch.arena);
    scratch.rhs.BuildFrom(b, scratch.arena);
    const Staircase& lhs = scratch.lhs;
    const Staircase& rhs = scratch.rhs;
    const Cost cmin = lhs.vmin + rhs.vmin;
    const Cost cmax = lhs.vmax + rhs.vmax;

    // Out(c) = min forwarded budget achieving total cost <= c: minimize
    // A(c1) + B(c2) over all splits c1 + c2 <= c, then close under "spend
    // less, forward more" monotonicity. With j = c2 - rhs.vmin the output
    // slot for (c1, c2) is (c1 - lhs.vmin) + j, so each c1 contributes one
    // contiguous shifted-min sweep — the vectorized MergeMinShift.
    const std::span<std::uint32_t> out_inv =
        scratch.arena.AllocSpan<std::uint32_t>(static_cast<std::size_t>(cmax - cmin) + 1);
    std::fill(out_inv.begin(), out_inv.end(), std::numeric_limits<std::uint32_t>::max());
    const std::size_t rhs_len = rhs.inv.size();
    for (Cost c1 = lhs.vmin; c1 <= lhs.vmax; ++c1) {
      const std::uint32_t ua = lhs.inv[c1 - lhs.vmin];
      detail::MergeMinShift(out_inv.data() + (c1 - lhs.vmin), rhs.inv.data(), ua, rhs_len);
    }
    for (std::size_t c = 1; c < out_inv.size(); ++c) {
      out_inv[c] = std::min(out_inv[c], out_inv[c - 1]);
    }
    cells += static_cast<std::uint64_t>(lhs.inv.size()) * rhs_len;

    // Materialize the output staircase; indices below the first feasible
    // budget (the leading kInf run) are never written.
    out.assign(a.size() + b.size() - 1, kInf);
    std::size_t hi = out.size();
    for (Cost c = cmin; c <= cmax && hi > 0; ++c) {
      const std::size_t u = out_inv[c - cmin];
      for (std::size_t k = u; k < hi; ++k) out[k] = c;
      hi = std::min(hi, u);
    }
  }

  // Computes f[node] (and, for internal nodes, the stored prefix tables) —
  // all children must already be done, which the level sweep guarantees.
  void ProcessNode(NodeId node, ConvolveScratch& scratch, std::uint64_t& entries,
                   std::uint64_t& cells) {
    const Requests capacity = instance.Capacity();
    if (tree.IsClient(node)) {
      const Requests r = tree.RequestsOf(node);
      CostTable table(static_cast<std::size_t>(r) + 1, kInf);
      table[static_cast<std::size_t>(r)] = 0;  // no replica: forward everything
      const Requests min_forward = r > capacity ? r - capacity : 0;
      for (std::size_t u = static_cast<std::size_t>(min_forward); u <= r; ++u) {
        table[u] = std::min<Cost>(table[u], 1);  // replica: serve min(r, W) locally
      }
      MakeMonotone(table);
      RPT_CHECK(table.size() == static_cast<std::size_t>(tree.SubtreeRequests(node)) + 1);
      entries += table.size();
      f[node] = std::move(table);
      return;
    }
    // Children convolution with stored prefixes. Every stored table stays
    // bounded by its (sub)domain's request total + 1 — the convolution
    // never widens a table beyond the demand it can actually forward.
    auto& prefix = prefixes[node];
    prefix.clear();
    prefix.reserve(tree.Children(node).size() + 1);
    prefix.push_back(CostTable{0});  // empty product: forward 0 at cost 0
    entries += 1;
    for (const NodeId child : tree.Children(node)) {
      CostTable next;
      Convolve(prefix.back(), f[child], next, scratch, cells);
      entries += next.size();
      prefix.push_back(std::move(next));
    }
    const CostTable& g = prefix.back();
    const std::size_t total = g.size() - 1;  // subtree request total below node
    RPT_CHECK(total == static_cast<std::size_t>(tree.SubtreeRequests(node)));
    CostTable table(total + 1, kInf);
    for (std::size_t u = 0; u <= total; ++u) {
      table[u] = g[u];  // no replica
      const std::size_t relaxed = std::min<std::size_t>(
          total, u + static_cast<std::size_t>(std::min<Requests>(capacity, total)));
      if (g[relaxed] < kInf) {
        table[u] = std::min<Cost>(table[u], 1 + g[relaxed]);  // replica absorbs up to W
      }
    }
    MakeMonotone(table);
    entries += table.size();
    f[node] = std::move(table);
  }

  // Level-synchronous forward pass: bucket nodes by depth, then sweep the
  // levels deepest-first. Within a level every node's merge is independent
  // (its children live one level deeper and are already done), so the level
  // runs as parallel chunks; per-chunk scratch leases and exact-integer
  // work counters keep the outputs bit-identical to a serial sweep.
  void Forward() {
    const std::size_t n = tree.Size();
    std::uint32_t max_depth = 0;
    for (NodeId id = 0; id < n; ++id) max_depth = std::max(max_depth, tree.Depth(id));
    std::vector<std::uint32_t> level_begin(static_cast<std::size_t>(max_depth) + 2, 0);
    for (NodeId id = 0; id < n; ++id) ++level_begin[tree.Depth(id) + 1];
    for (std::size_t d = 1; d < level_begin.size(); ++d) level_begin[d] += level_begin[d - 1];
    std::vector<NodeId> by_level(n);
    {
      std::vector<std::uint32_t> cursor(level_begin.begin(), level_begin.end() - 1);
      for (NodeId id = 0; id < n; ++id) by_level[cursor[tree.Depth(id)]++] = id;
    }

    ThreadPool* pool = SolverPool();
    for (std::uint32_t d = max_depth + 1; d-- > 0;) {
      const std::size_t lb = level_begin[d];
      const std::size_t le = level_begin[d + 1];
      ParallelForChunked(pool, le - lb, /*grain=*/1,
                         [&](std::size_t begin, std::size_t end) {
                           const auto lease = scratch_pool.Acquire();
                           std::uint64_t entries = 0;
                           std::uint64_t cells = 0;
                           for (std::size_t slot = lb + begin; slot < lb + end; ++slot) {
                             ProcessNode(by_level[slot], *lease, entries, cells);
                           }
                           table_entries.fetch_add(entries, std::memory_order_relaxed);
                           convolve_cells.fetch_add(cells, std::memory_order_relaxed);
                         });
    }
    stats.table_entries = table_entries.load(std::memory_order_relaxed);
    stats.convolve_cells = convolve_cells.load(std::memory_order_relaxed);
  }

  // Pending requests travelling upward during reconstruction.
  using PendingList = std::vector<std::pair<NodeId, Requests>>;  // (client, amount)

  static Requests TotalOf(const PendingList& list) noexcept {
    Requests total = 0;
    for (const auto& [client, amount] : list) total += amount;
    return total;
  }

  // Reconstructs the subtree decision for `node` with forwarded budget u;
  // returns the list actually forwarded upward (total <= u).
  PendingList Backtrack(NodeId node, std::size_t u) {
    const Requests capacity = instance.Capacity();
    const CostTable& table = f[node];
    RPT_CHECK(u < table.size() || !table.empty());
    u = std::min(u, table.size() - 1);
    const Cost cost = table[u];
    RPT_CHECK(cost < kInf);

    if (tree.IsClient(node)) {
      const Requests r = tree.RequestsOf(node);
      if (r == 0) return {};
      if (cost == 0) return {{node, r}};  // no replica, forward all
      // Replica: serve as much as possible locally, forward the remainder.
      const Requests local = std::min(r, capacity);
      solution.replicas.push_back(node);
      solution.assignment.push_back(ServiceEntry{node, node, local});
      if (r > local) return {{node, r - local}};
      return {};
    }

    const auto& prefix = prefixes[node];
    const CostTable& g = prefix.back();
    const std::size_t total = g.size() - 1;
    const bool use_replica = [&] {
      if (g[u] == cost) return false;  // prefer the replica-free branch
      return true;
    }();
    std::size_t budget = u;
    Cost remaining_cost = cost;
    if (use_replica) {
      budget = std::min<std::size_t>(
          total, u + static_cast<std::size_t>(std::min<Requests>(capacity, total)));
      RPT_CHECK(cost >= 1 && g[budget] == cost - 1);
      remaining_cost = cost - 1;
    } else {
      RPT_CHECK(g[budget] == cost);
    }

    // Split `budget` among children by walking the prefix tables backwards.
    const auto kids = tree.Children(node);
    std::vector<std::size_t> child_budget(kids.size(), 0);
    std::size_t v = budget;
    Cost target = remaining_cost;
    for (std::size_t k = kids.size(); k-- > 0;) {
      const CostTable& before = prefix[k];
      const CostTable& child_table = f[kids[k]];
      bool found = false;
      // Smallest child budget achieving the target keeps ancestors safest.
      for (std::size_t b = 0; b < child_table.size() && b <= v; ++b) {
        if (child_table[b] >= kInf) continue;
        const std::size_t rest = v - b;
        const std::size_t rest_clamped = std::min(rest, before.size() - 1);
        if (before[rest_clamped] < kInf &&
            before[rest_clamped] + child_table[b] == target) {
          child_budget[k] = b;
          target -= child_table[b];
          v = rest_clamped;
          found = true;
          break;
        }
      }
      RPT_CHECK(found);
    }

    PendingList incoming;
    for (std::size_t k = 0; k < kids.size(); ++k) {
      PendingList from_child = Backtrack(kids[k], child_budget[k]);
      incoming.insert(incoming.end(), from_child.begin(), from_child.end());
    }

    if (!use_replica) return incoming;

    // Replica at node: serve min(T, W) of the incoming requests, forward the
    // rest (guaranteed <= u by the DP transition).
    solution.replicas.push_back(node);
    Requests to_serve = std::min(TotalOf(incoming), capacity);
    PendingList forwarded;
    for (auto& [client, amount] : incoming) {
      const Requests take = std::min(amount, to_serve);
      if (take > 0) {
        solution.assignment.push_back(ServiceEntry{client, node, take});
        to_serve -= take;
      }
      if (amount > take) forwarded.emplace_back(client, amount - take);
    }
    RPT_CHECK(TotalOf(forwarded) <= u);
    return forwarded;
  }
};

}  // namespace

MultipleNodDpResult SolveMultipleNodDp(const Instance& instance) {
  RPT_REQUIRE(!instance.HasDistanceConstraint(),
              "multiple-nod-dp: only valid without distance constraints");
  Dp dp(instance);
  dp.Forward();
  MultipleNodDpResult result;
  result.stats = dp.stats;
  const CostTable& root = dp.f[instance.GetTree().Root()];
  if (root.empty() || root[0] >= kInf) {
    result.feasible = false;
    return result;
  }
  const auto leftover = dp.Backtrack(instance.GetTree().Root(), 0);
  RPT_CHECK(leftover.empty());
  result.feasible = true;
  result.solution = std::move(dp.solution);
  result.solution.Canonicalize();
  return result;
}

}  // namespace rpt::multiple
