#include "multiple/multiple_nod_dp.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace rpt::multiple {

namespace {

using Cost = std::uint32_t;
constexpr Cost kInf = std::numeric_limits<Cost>::max() / 2;

// F table: F[u] = min replicas in the subtree such that at most u requests
// are forwarded above it. Always non-increasing in u.
using CostTable = std::vector<Cost>;

void MakeMonotone(CostTable& table) {
  for (std::size_t u = 1; u < table.size(); ++u) table[u] = std::min(table[u], table[u - 1]);
}

// Inverse staircase of a monotone non-increasing table: inv[c - vmin] is the
// smallest u with table[u] <= c, for every integer cost c in [vmin, vmax]
// (vmax = largest finite value, i.e. table[first_finite]; vmin =
// table.back()). Leading kInf runs are skipped entirely — first_finite marks
// where the finite staircase starts.
struct Staircase {
  Cost vmin = 0;
  Cost vmax = 0;
  std::size_t first_finite = 0;
  std::vector<std::uint32_t> inv;

  void BuildFrom(const CostTable& table) {
    std::size_t f = 0;
    while (f < table.size() && table[f] >= kInf) ++f;
    RPT_CHECK(f < table.size());  // every DP table has a finite entry
    first_finite = f;
    vmax = table[f];
    vmin = table.back();
    inv.assign(static_cast<std::size_t>(vmax - vmin) + 1, static_cast<std::uint32_t>(f));
    Cost cur = vmax;
    for (std::size_t u = f + 1; u < table.size(); ++u) {
      while (cur > table[u]) {
        --cur;
        inv[cur - vmin] = static_cast<std::uint32_t>(u);
      }
    }
  }
};

struct Dp {
  const Instance& instance;
  const Tree& tree;
  std::vector<CostTable> f;                      // per node
  std::vector<std::vector<CostTable>> prefixes;  // per node: G_0..G_k for backtracking
  Solution solution;
  MultipleNodDpStats stats;

  // Scratch reused by every convolution (the hot loop allocates nothing
  // beyond the stored output tables themselves).
  Staircase lhs_stairs_;
  Staircase rhs_stairs_;
  std::vector<std::uint32_t> out_inv_;

  explicit Dp(const Instance& inst)
      : instance(inst), tree(inst.GetTree()), f(tree.Size()), prefixes(tree.Size()) {}

  // Monotone min-plus convolution, out[k] = min_{i+j<=k} a[i] + b[j],
  // written into `out` (sized |a|+|b|-1; kInf where no finite split exists).
  // Because both inputs are monotone staircases, the convolution runs in the
  // *cost* domain: O(range(a) * range(b) + |out|) instead of O(|a| * |b|).
  // Cost ranges are replica counts (<= subtree client counts), which on
  // request-heavy instances are orders of magnitude below the request-domain
  // table sizes. Equivalent to the naive convolution followed by
  // MakeMonotone, entry for entry.
  void Convolve(const CostTable& a, const CostTable& b, CostTable& out) {
    lhs_stairs_.BuildFrom(a);
    rhs_stairs_.BuildFrom(b);
    const Cost cmin = lhs_stairs_.vmin + rhs_stairs_.vmin;
    const Cost cmax = lhs_stairs_.vmax + rhs_stairs_.vmax;

    // Out(c) = min forwarded budget achieving total cost <= c: minimize
    // A(c1) + B(c2) over all splits c1 + c2 <= c, then close under "spend
    // less, forward more" monotonicity.
    out_inv_.assign(static_cast<std::size_t>(cmax - cmin) + 1,
                    std::numeric_limits<std::uint32_t>::max());
    for (Cost c1 = lhs_stairs_.vmin; c1 <= lhs_stairs_.vmax; ++c1) {
      const std::uint32_t ua = lhs_stairs_.inv[c1 - lhs_stairs_.vmin];
      for (Cost c2 = rhs_stairs_.vmin; c2 <= rhs_stairs_.vmax; ++c2) {
        std::uint32_t& slot = out_inv_[(c1 + c2) - cmin];
        slot = std::min(slot, ua + rhs_stairs_.inv[c2 - rhs_stairs_.vmin]);
      }
    }
    for (std::size_t c = 1; c < out_inv_.size(); ++c) {
      out_inv_[c] = std::min(out_inv_[c], out_inv_[c - 1]);
    }
    stats.convolve_cells +=
        static_cast<std::uint64_t>(lhs_stairs_.inv.size()) * rhs_stairs_.inv.size();

    // Materialize the output staircase; indices below the first feasible
    // budget (the leading kInf run) are never written.
    out.assign(a.size() + b.size() - 1, kInf);
    std::size_t hi = out.size();
    for (Cost c = cmin; c <= cmax && hi > 0; ++c) {
      const std::size_t u = out_inv_[c - cmin];
      for (std::size_t k = u; k < hi; ++k) out[k] = c;
      hi = std::min(hi, u);
    }
  }

  void Forward() {
    const Requests capacity = instance.Capacity();
    for (const NodeId node : tree.PostOrder()) {
      if (tree.IsClient(node)) {
        const Requests r = tree.RequestsOf(node);
        CostTable table(static_cast<std::size_t>(r) + 1, kInf);
        table[static_cast<std::size_t>(r)] = 0;  // no replica: forward everything
        const Requests min_forward = r > capacity ? r - capacity : 0;
        for (std::size_t u = static_cast<std::size_t>(min_forward); u <= r; ++u) {
          table[u] = std::min<Cost>(table[u], 1);  // replica: serve min(r, W) locally
        }
        MakeMonotone(table);
        RPT_CHECK(table.size() == static_cast<std::size_t>(tree.SubtreeRequests(node)) + 1);
        stats.table_entries += table.size();
        f[node] = std::move(table);
        continue;
      }
      // Children convolution with stored prefixes. Every stored table stays
      // bounded by its (sub)domain's request total + 1 — the convolution
      // never widens a table beyond the demand it can actually forward.
      auto& prefix = prefixes[node];
      prefix.clear();
      prefix.reserve(tree.Children(node).size() + 1);
      prefix.push_back(CostTable{0});  // empty product: forward 0 at cost 0
      stats.table_entries += 1;
      for (const NodeId child : tree.Children(node)) {
        CostTable next;
        Convolve(prefix.back(), f[child], next);
        stats.table_entries += next.size();
        prefix.push_back(std::move(next));
      }
      const CostTable& g = prefix.back();
      const std::size_t total = g.size() - 1;  // subtree request total below node
      RPT_CHECK(total == static_cast<std::size_t>(tree.SubtreeRequests(node)));
      CostTable table(total + 1, kInf);
      for (std::size_t u = 0; u <= total; ++u) {
        table[u] = g[u];  // no replica
        const std::size_t relaxed = std::min<std::size_t>(
            total, u + static_cast<std::size_t>(std::min<Requests>(capacity, total)));
        if (g[relaxed] < kInf) {
          table[u] = std::min<Cost>(table[u], 1 + g[relaxed]);  // replica absorbs up to W
        }
      }
      MakeMonotone(table);
      stats.table_entries += table.size();
      f[node] = std::move(table);
    }
  }

  // Pending requests travelling upward during reconstruction.
  using PendingList = std::vector<std::pair<NodeId, Requests>>;  // (client, amount)

  static Requests TotalOf(const PendingList& list) noexcept {
    Requests total = 0;
    for (const auto& [client, amount] : list) total += amount;
    return total;
  }

  // Reconstructs the subtree decision for `node` with forwarded budget u;
  // returns the list actually forwarded upward (total <= u).
  PendingList Backtrack(NodeId node, std::size_t u) {
    const Requests capacity = instance.Capacity();
    const CostTable& table = f[node];
    RPT_CHECK(u < table.size() || !table.empty());
    u = std::min(u, table.size() - 1);
    const Cost cost = table[u];
    RPT_CHECK(cost < kInf);

    if (tree.IsClient(node)) {
      const Requests r = tree.RequestsOf(node);
      if (r == 0) return {};
      if (cost == 0) return {{node, r}};  // no replica, forward all
      // Replica: serve as much as possible locally, forward the remainder.
      const Requests local = std::min(r, capacity);
      solution.replicas.push_back(node);
      solution.assignment.push_back(ServiceEntry{node, node, local});
      if (r > local) return {{node, r - local}};
      return {};
    }

    const auto& prefix = prefixes[node];
    const CostTable& g = prefix.back();
    const std::size_t total = g.size() - 1;
    const bool use_replica = [&] {
      if (g[u] == cost) return false;  // prefer the replica-free branch
      return true;
    }();
    std::size_t budget = u;
    Cost remaining_cost = cost;
    if (use_replica) {
      budget = std::min<std::size_t>(
          total, u + static_cast<std::size_t>(std::min<Requests>(capacity, total)));
      RPT_CHECK(cost >= 1 && g[budget] == cost - 1);
      remaining_cost = cost - 1;
    } else {
      RPT_CHECK(g[budget] == cost);
    }

    // Split `budget` among children by walking the prefix tables backwards.
    const auto kids = tree.Children(node);
    std::vector<std::size_t> child_budget(kids.size(), 0);
    std::size_t v = budget;
    Cost target = remaining_cost;
    for (std::size_t k = kids.size(); k-- > 0;) {
      const CostTable& before = prefix[k];
      const CostTable& child_table = f[kids[k]];
      bool found = false;
      // Smallest child budget achieving the target keeps ancestors safest.
      for (std::size_t b = 0; b < child_table.size() && b <= v; ++b) {
        if (child_table[b] >= kInf) continue;
        const std::size_t rest = v - b;
        const std::size_t rest_clamped = std::min(rest, before.size() - 1);
        if (before[rest_clamped] < kInf &&
            before[rest_clamped] + child_table[b] == target) {
          child_budget[k] = b;
          target -= child_table[b];
          v = rest_clamped;
          found = true;
          break;
        }
      }
      RPT_CHECK(found);
    }

    PendingList incoming;
    for (std::size_t k = 0; k < kids.size(); ++k) {
      PendingList from_child = Backtrack(kids[k], child_budget[k]);
      incoming.insert(incoming.end(), from_child.begin(), from_child.end());
    }

    if (!use_replica) return incoming;

    // Replica at node: serve min(T, W) of the incoming requests, forward the
    // rest (guaranteed <= u by the DP transition).
    solution.replicas.push_back(node);
    Requests to_serve = std::min(TotalOf(incoming), capacity);
    PendingList forwarded;
    for (auto& [client, amount] : incoming) {
      const Requests take = std::min(amount, to_serve);
      if (take > 0) {
        solution.assignment.push_back(ServiceEntry{client, node, take});
        to_serve -= take;
      }
      if (amount > take) forwarded.emplace_back(client, amount - take);
    }
    RPT_CHECK(TotalOf(forwarded) <= u);
    return forwarded;
  }
};

}  // namespace

MultipleNodDpResult SolveMultipleNodDp(const Instance& instance) {
  RPT_REQUIRE(!instance.HasDistanceConstraint(),
              "multiple-nod-dp: only valid without distance constraints");
  Dp dp(instance);
  dp.Forward();
  MultipleNodDpResult result;
  result.stats = dp.stats;
  const CostTable& root = dp.f[instance.GetTree().Root()];
  if (root.empty() || root[0] >= kInf) {
    result.feasible = false;
    return result;
  }
  const auto leftover = dp.Backtrack(instance.GetTree().Root(), 0);
  RPT_CHECK(leftover.empty());
  result.feasible = true;
  result.solution = std::move(dp.solution);
  result.solution.Canonicalize();
  return result;
}

}  // namespace rpt::multiple
