// Reusable core of the Multiple-NoD tree-knapsack DP, factored out of
// SolveMultipleNodDp so the same tables can serve both batch solves and the
// incremental re-solve engine (src/incremental/).
//
// The engine owns the full DP state for one tree: a mutable per-client
// demand overlay (initialized from the tree's request column), the per-node
// F tables (F_j(u) = min replicas in subtree(j) forwarding at most u
// requests above j), and the per-internal-node prefix tables G_0..G_k used
// by backtracking. Two forward passes share every kernel:
//
//  * ComputeAll()       — the classic full pass: level-synchronous sweep
//                         deepest-first, parallel chunks within a level on
//                         the process-wide SolverPool(), per-chunk scratch
//                         leased from a ScratchPool (see multiple_nod_dp.hpp
//                         for the staircase-convolution details). This is
//                         exactly what SolveMultipleNodDp runs.
//  * RecomputeDirty(S)  — the incremental pass: given the set S of touched
//                         client leaves, only the union of their root paths
//                         is re-processed (children before parents, parallel
//                         within a level across independent dirty chains);
//                         every untouched subtree keeps its tables verbatim.
//                         At a dirty internal node the prefix chain is
//                         reused up to the first dirty child, so a change
//                         under the last child re-runs only the tail merges.
//
// Invariant: after either pass, every table equals byte-for-byte what a
// from-scratch ComputeAll() over the current (demands, capacity) state
// would produce — recomputed nodes see identical inputs (their children's
// tables), and the DP itself is deterministic at any thread count. This is
// what makes the incremental solver's solutions bit-identical to the batch
// oracle (asserted by tests/test_incremental.cpp).
//
// Topology mutation: the engine runs over a TopologyView, so the same
// tables serve an immutable CSR Tree and a mutable TreeOverlay. After a
// batch of overlay mutations the owner calls ApplyTopology() with the lists
// of parents whose child sets changed and of removed node ids; the engine
// resizes its per-node state, refreshes demand mirrors, rebuilds the level
// buckets over live nodes, and marks the changed parents so the next
// incremental pass rebuilds their prefix chains from child 0 (a mid-list
// child removal shifts prefix indices; an append reuses the chain as-is).
// The key locality fact: F_j depends only on (subtree(j) demands, W) —
// never on depth, parent, or edge lengths — so a migration invalidates
// only the old and new parent chains while the migrated subtree's tables
// and fragments stay valid verbatim, and a link-capacity change dirties
// nothing at all.
//
// Ownership/lifetime: the engine stores a TopologyView by value; the
// backing Tree/TreeOverlay must outlive it and must not mutate except
// through the ApplyTopology protocol (demand lives in the engine's own
// overlay column, NOT in the view). Not thread-safe: one engine per thread
// of control; the internal parallelism is fork-join and fully contained in
// the passes.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/solution.hpp"
#include "support/arena.hpp"
#include "tree/topology_view.hpp"

namespace rpt::multiple {

namespace detail {

/// The staircase-merge inner loop: out[j] = min(out[j], rhs[j] + shift) for
/// j in [0, n). Written branch-free over restrict-qualified flat arrays so
/// the compiler auto-vectorizes it; equivalent entry-for-entry to the scalar
/// reference (asserted by test_multiple_nod_dp).
void MergeMinShift(std::uint32_t* out, const std::uint32_t* rhs, std::uint32_t shift,
                   std::size_t n) noexcept;

}  // namespace detail

/// Counters describing the work and footprint of the DP passes run so far.
/// Table entries / convolve cells are exact integer sums accumulated with
/// relaxed atomics, so they are identical at any thread count.
struct NodDpWork {
  /// Entries (4 bytes each) written across all F and prefix tables.
  std::uint64_t table_entries = 0;
  /// Inner-loop iterations of all staircase convolutions (cost-domain
  /// cells), the dominant arithmetic of the forward passes.
  std::uint64_t convolve_cells = 0;
  /// Nodes processed (a node re-processed by several passes counts each
  /// time).
  std::uint64_t nodes_processed = 0;
};

/// The Multiple-NoD DP state machine. Typical batch use:
///   NodDpEngine engine(tree, capacity);
///   engine.ComputeAll();
///   if (engine.Feasible()) Solution s = engine.Backtrack();
/// Incremental use replaces later ComputeAll() calls with SetDemand(...)
/// followed by one RecomputeDirty(touched) per update batch.
class NodDpEngine {
 public:
  using Cost = std::uint32_t;
  using CostTable = std::vector<Cost>;

  /// Sentinel for "no feasible entry" in a cost table.
  static constexpr Cost kInfCost = std::numeric_limits<Cost>::max() / 2;

  /// Demands start as the view's client request column. `capacity` is the
  /// uniform server capacity W (> 0). The backing tree/overlay must outlive
  /// the engine. (TopologyView converts implicitly from `const Tree&` and
  /// `const TreeOverlay&`, so batch call sites pass the tree directly.)
  NodDpEngine(TopologyView view, Requests capacity);

  NodDpEngine(const NodDpEngine&) = delete;
  NodDpEngine& operator=(const NodDpEngine&) = delete;

  /// Full forward pass over every node. Must run once before Feasible() /
  /// Backtrack(); also the recovery path after SetCapacity (a capacity
  /// change invalidates every table, there is no partial recompute for it).
  void ComputeAll();

  /// Incremental forward pass: re-processes exactly the union of root paths
  /// of `touched` — client leaves whose demand changed via SetDemand, or
  /// (after ApplyTopology) any live node whose subtree membership changed.
  /// Requires a completed ComputeAll(). Touched ids may repeat; the dirty
  /// set is deduplicated internally.
  void RecomputeDirty(std::span<const NodeId> touched);

  /// Synchronizes the engine with a mutated topology. `view` is the view to
  /// bind from now on (typically the same overlay, rebound after cloning);
  /// `children_changed` lists live internal nodes whose child LIST changed
  /// other than by appending (detach/migrate-out parents) — their prefix
  /// chains are force-rebuilt on the next incremental pass; `removed` lists
  /// node ids tombstoned by the batch (their tables and fragments are
  /// dropped). Demand and subtree-demand mirrors are refreshed wholesale
  /// from the view. The caller must follow with RecomputeDirty() seeded by
  /// the event roots (or ComputeAll()) before querying results.
  void ApplyTopology(TopologyView view, std::span<const NodeId> children_changed,
                     std::span<const NodeId> removed);

  /// Updates one client's demand and the subtree totals on its root path.
  /// Tables are stale until the next RecomputeDirty()/ComputeAll() covering
  /// the client. `client` must be a leaf.
  void SetDemand(NodeId client, Requests demand);

  /// Changes the uniform capacity W (> 0). Every table becomes stale; the
  /// caller must run ComputeAll() before querying results again.
  void SetCapacity(Requests capacity);

  [[nodiscard]] TopologyView View() const noexcept { return view_; }
  [[nodiscard]] Requests Capacity() const noexcept { return capacity_; }
  [[nodiscard]] Requests DemandOf(NodeId node) const { return demand_[CheckNode(node)]; }
  [[nodiscard]] Requests SubtreeDemand(NodeId node) const {
    return subtree_demand_[CheckNode(node)];
  }
  [[nodiscard]] Requests TotalDemand() const noexcept { return subtree_demand_[0]; }

  /// True iff the current state admits a feasible Multiple-NoD placement
  /// (F_root(0) finite). Requires up-to-date tables.
  [[nodiscard]] bool Feasible() const;

  /// The F table of `node` (valid until the next pass or mutation). Exposed
  /// for the sharded solve's boundary-table export and for tests.
  [[nodiscard]] const CostTable& TableOf(NodeId node) const {
    RPT_REQUIRE(computed_, "NodDpEngine: TableOf requires up-to-date tables");
    return f_[CheckNode(node)];
  }

  /// Reconstructs an optimal placement + routing from the tables; requires
  /// Feasible(). The returned solution is canonicalized and identical to
  /// what SolveMultipleNodDp would return on the equivalent instance.
  ///
  /// Backtrack is incremental too: each clean subtree (not re-processed
  /// since the previous Backtrack) asked for the same forwarded budget
  /// replays its recorded solution fragment instead of recursing — valid
  /// because the reconstruction is a pure function of (subtree tables,
  /// budget), both unchanged. Recursion descends only into dirty chains and
  /// budget-shifted subtrees, so a low-churn re-solve rebuilds the solution
  /// in roughly O(|solution| + dirty work).
  [[nodiscard]] Solution Backtrack();

  // --- Sharded solve (src/shard/) -----------------------------------------
  //
  // The DP composes across a subtree cut: F_j depends only on (subtree(j)
  // demands, W), so a cut subtree solved elsewhere is fully represented at
  // the cut point by its F table. The coordinator builds a *spine* tree in
  // which each cut subtree collapses to one client leaf carrying the
  // subtree's demand, imports the shipped tables below, and runs the normal
  // passes — every spine table comes out byte-identical to the same node's
  // table in the unsharded engine. Reconstruction splits in two: the budget
  // sweep (AssignImportedBudgets) tells each worker how much its subtree may
  // forward, and the final Backtrack() replays each worker's forwarded
  // pending list through the provider hook so upstream replicas absorb
  // requests exactly as the unsharded backtrack would.

  /// Installs the boundary table of the cut subtree behind `leaf` (a client
  /// leaf whose requests equal the subtree's demand). The table must be the
  /// subtree root's F table: size = demand + 1, monotone non-increasing,
  /// finite at full forwarding. Forward passes install it verbatim instead
  /// of the standard client table; tables become stale until the next
  /// ComputeAll().
  void ImportLeafTable(NodeId leaf, CostTable table);

  /// True iff `leaf` carries an imported boundary table.
  [[nodiscard]] bool IsImportedLeaf(NodeId leaf) const {
    return imported_.contains(CheckNode(leaf));
  }

  /// Budget assigned to one imported leaf by the downward budget sweep.
  struct ImportBudget {
    NodeId leaf = kInvalidNode;
    std::size_t budget = 0;  ///< requests the cut subtree may forward above its root
  };

  /// The downward half of a sharded reconstruction, without building any
  /// solution: walks budgets from the root (budget 0) through SplitBudget —
  /// the exact table arithmetic Backtrack() uses — and returns each imported
  /// leaf's clamped budget, ascending by leaf id. Requires Feasible().
  /// Because budgets are a pure function of the tables, the budget each
  /// worker solves against is identical to the budget the final Backtrack()
  /// asks of that leaf.
  [[nodiscard]] std::vector<ImportBudget> AssignImportedBudgets() const;

  /// Supplies, for an imported leaf reached at `budget`, the (client, amount)
  /// list the cut subtree's reconstruction forwards above its root — in
  /// chain order, ids already translated by the caller. Backtrack() replays
  /// it as the leaf's pending chain (the fragment's replicas and entries are
  /// spliced into the final solution by the coordinator, not here).
  using ImportedFragmentFn =
      std::function<std::span<const std::pair<NodeId, Requests>>(NodeId leaf, std::size_t budget)>;
  void SetImportedFragmentProvider(ImportedFragmentFn provider) {
    imported_provider_ = std::move(provider);
  }

  /// A worker-side reconstruction at a nonzero root budget.
  struct BudgetedBacktrack {
    Solution solution;  ///< NOT canonicalized: the caller splices it first
    std::vector<std::pair<NodeId, Requests>> forwarded;  ///< chain order, preserved
  };

  /// The worker-side generalization of Backtrack(): reconstructs this tree's
  /// solution when the root may forward up to `budget` requests, returning
  /// the solution slice plus the forwarded (client, amount) list in chain
  /// order. Backtrack() is BacktrackWithBudget(0) plus the nothing-left-over
  /// check and canonicalization.
  [[nodiscard]] BudgetedBacktrack BacktrackWithBudget(std::size_t budget);

  /// Cumulative work counters over the engine's lifetime.
  [[nodiscard]] const NodDpWork& Work() const noexcept { return work_; }

  /// Nodes re-processed by the most recent forward pass (ComputeAll counts
  /// every node).
  [[nodiscard]] std::uint64_t LastPassNodes() const noexcept { return last_pass_nodes_; }

 private:
  // Per-chunk scratch: two input staircases plus the output inverse, all
  // bump-allocated from one arena reset per convolution (zero steady-state
  // allocation; slabs reused across merges, levels, and passes).
  struct Staircase {
    Cost vmin = 0;
    Cost vmax = 0;
    std::size_t first_finite = 0;
    std::span<std::uint32_t> inv;
    void BuildFrom(const CostTable& table, Arena& arena);
  };
  struct ConvolveScratch {
    Arena arena;
    Staircase lhs;
    Staircase rhs;
  };
  struct ChunkCounters {
    std::uint64_t entries = 0;
    std::uint64_t cells = 0;
  };

  NodeId CheckNode(NodeId id) const {
    RPT_REQUIRE(id < view_.Size(), "NodDpEngine: node id out of range");
    return id;
  }

  void Convolve(const CostTable& a, const CostTable& b, CostTable& out, ConvolveScratch& scratch,
                std::uint64_t& cells);
  /// Recomputes f_[node]; for internal nodes the prefix chain is rebuilt
  /// from child index `first_child` on (0 = full rebuild). All children must
  /// already be up to date.
  void ProcessNode(NodeId node, std::size_t first_child, ConvolveScratch& scratch,
                   ChunkCounters& counters);
  /// Sweeps the per-level node buckets deepest-first, parallel within each
  /// level; `levels` holds node ids bucketed by depth.
  void SweepLevels(const std::vector<std::vector<NodeId>>& levels, bool incremental);

  // Pending requests travelling upward during reconstruction, stored as
  // arena-chained (client, amount) entries so concatenation is O(1) and a
  // replica's absorption is a prefix drop — Backtrack allocates nothing in
  // steady state (the arena vector is reused across calls).
  struct PendEntry {
    NodeId client = kInvalidNode;
    Requests amount = 0;
    std::uint32_t next = 0;
  };
  struct PendChain {
    std::uint32_t head = 0;  // kPendNil when empty
    std::uint32_t tail = 0;
    Requests total = 0;
  };
  // Recorded reconstruction of one subtree: the solution slice it appended
  // and the pending list it forwarded, replayable while the subtree stays
  // clean and the budget matches. built_pass == 0 means "never built".
  struct FragmentCache {
    std::uint64_t built_pass = 0;
    std::size_t budget = 0;
    std::vector<NodeId> replicas;
    std::vector<ServiceEntry> entries;
    std::vector<std::pair<NodeId, Requests>> forwarded;

    [[nodiscard]] std::size_t EntryCount() const noexcept {
      return replicas.size() + entries.size() + forwarded.size();
    }
  };
  // Hard cap on the summed EntryCount over all cached fragments (~2M
  // entries, tens of MB): every internal node eventually records its whole
  // subtree's slice, which sums to O(|solution| * depth) — fine for the DP's
  // pseudo-polynomial workloads, but capped so a pathological stream cannot
  // grow the cache without bound. Past the cap, recording stops (existing
  // fragments may still be replaced in place and still replay); correctness
  // never depends on a fragment being cached.
  static constexpr std::size_t kFragEntryBudget = std::size_t{1} << 21;
  PendChain BacktrackNode(NodeId node, std::size_t budget, Solution& solution);

  /// Shared table-arithmetic core of reconstruction at internal `node` with
  /// clamped budget `u`: decides the replica bit and splits the (possibly
  /// relaxed) budget among the children by the backwards prefix-table walk,
  /// filling child_budget[0..arity). Returns whether a replica is placed.
  /// Pure function of the tables — BacktrackNode and AssignImportedBudgets
  /// both call it, so a sharded solve's budget sweep and its final backtrack
  /// can never disagree.
  bool SplitBudget(NodeId node, std::size_t u, std::size_t* child_budget) const;

  /// Rebuilds all_levels_/dirty_levels_ over the view's live nodes.
  void RebuildLevels();

  TopologyView view_;
  Requests capacity_;
  std::vector<Requests> demand_;          // per node; internal nodes hold 0
  std::vector<Requests> subtree_demand_;  // maintained by SetDemand
  std::vector<CostTable> f_;
  std::vector<std::vector<CostTable>> prefixes_;
  std::vector<std::vector<NodeId>> all_levels_;    // every live node bucketed by depth
  std::vector<std::vector<NodeId>> dirty_levels_;  // reused dirty buckets
  std::vector<std::uint64_t> last_dirty_pass_;     // forward pass that last re-processed a node
  // Pass stamp: when force_prefix_rebuild_[node] equals the running pass,
  // the incremental sweep rebuilds the node's whole prefix chain instead of
  // reusing it up to the first dirty child (set by ApplyTopology for
  // parents that lost or reordered children — the surviving prefixes index
  // the OLD child list and must not be trusted).
  std::vector<std::uint64_t> force_prefix_rebuild_;
  std::uint64_t pass_ = 0;                         // forward passes run so far
  bool computed_ = false;
  ScratchPool<ConvolveScratch> scratch_pool_;
  NodDpWork work_;
  std::uint64_t last_pass_nodes_ = 0;
  std::vector<PendEntry> pend_entries_;  // Backtrack arena, reused per call
  std::vector<FragmentCache> frag_;      // per-node Backtrack fragments
  // Sharded solve: boundary tables imported at client leaves, and the
  // fragment provider Backtrack() replays their forwarded pendings from.
  // Empty (and cost-free on every path) outside the coordinator.
  std::unordered_map<NodeId, CostTable> imported_;
  ImportedFragmentFn imported_provider_;
  std::size_t frag_entries_total_ = 0;   // summed EntryCount, vs kFragEntryBudget
  std::size_t last_replica_count_ = 0;   // previous solution sizes, for reserve
  std::size_t last_assignment_count_ = 0;
};

}  // namespace rpt::multiple
