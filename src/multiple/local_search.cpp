#include "multiple/local_search.hpp"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "flow/assignment.hpp"
#include "multiple/greedy.hpp"
#include "multiple/multiple_bin.hpp"
#include "multiple/prune.hpp"

namespace rpt::multiple {

namespace {

// Candidate destinations for relocating the replica at `node`: its root
// path (servers higher up can absorb siblings) and its children (servers
// lower down can dodge a distance bound).
std::vector<NodeId> RelocationCandidates(const Tree& tree, NodeId node,
                                         const std::unordered_set<NodeId>& placed) {
  std::vector<NodeId> candidates;
  for (NodeId up = node; up != tree.Root(); ) {
    up = tree.Parent(up);
    if (!placed.contains(up)) candidates.push_back(up);
  }
  for (const NodeId child : tree.Children(node)) {
    if (!placed.contains(child)) candidates.push_back(child);
    for (const NodeId grandchild : tree.Children(child)) {
      if (!placed.contains(grandchild)) candidates.push_back(grandchild);
    }
  }
  return candidates;
}

}  // namespace

LocalSearchResult SolveMultipleLocalSearch(const Instance& instance,
                                           const LocalSearchOptions& options) {
  RPT_REQUIRE(instance.AllRequestsFitLocally(),
              "multiple-local-search: requires r_i <= W for a feasible start");
  const Tree& tree = instance.GetTree();

  // Construction: the strongest applicable start.
  Solution start = tree.IsBinary() ? SolveMultipleBin(instance).solution
                                   : SolveMultipleGreedy(instance);
  LocalSearchResult result;
  {
    const PruneResult pruned = PruneReplicas(instance, start);
    result.stats.pruned_initial = pruned.removed;
    result.solution = pruned.solution;
  }

  for (std::uint32_t round = 0; round < options.max_rounds; ++round) {
    ++result.stats.rounds;
    bool improved = false;
    std::vector<NodeId> replicas = result.solution.replicas;
    std::unordered_set<NodeId> placed(replicas.begin(), replicas.end());
    for (const NodeId node : replicas) {
      if (!placed.contains(node)) continue;  // may have been moved already
      for (const NodeId target : RelocationCandidates(tree, node, placed)) {
        std::vector<NodeId> candidate;
        candidate.reserve(placed.size());
        for (const NodeId r : placed) candidate.push_back(r == node ? target : r);
        if (!flow::MultipleFeasible(instance, candidate)) continue;
        // Relocation alone keeps the count; accept only if pruning now
        // removes at least one replica.
        Solution moved;
        moved.replicas = candidate;
        const auto routing = flow::RouteMultiple(instance, candidate);
        RPT_CHECK(routing.has_value());
        moved.assignment = *routing;
        const PruneResult pruned = PruneReplicas(instance, moved);
        if (pruned.solution.ReplicaCount() < placed.size()) {
          ++result.stats.relocations;
          result.stats.pruned_during += pruned.removed;
          result.solution = pruned.solution;
          placed = std::unordered_set<NodeId>(result.solution.replicas.begin(),
                                              result.solution.replicas.end());
          improved = true;
          break;
        }
      }
      if (improved) break;  // restart the scan on the smaller placement
    }
    if (!improved) {
      // Add-then-prune move: drop in one extra replica at a free internal
      // node; accept when pruning then removes at least two (a net win).
      // This escapes local optima where no single relocation helps but a
      // fresh high-capacity node lets two stragglers retire.
      const bool allow_client_adds = tree.Size() <= options.client_add_limit;
      for (NodeId node = 0; node < tree.Size() && !improved; ++node) {
        if (placed.contains(node)) continue;
        if (tree.IsClient(node) && !allow_client_adds) continue;
        Solution grown;
        grown.replicas.assign(placed.begin(), placed.end());
        grown.replicas.push_back(node);
        const auto routing = flow::RouteMultiple(instance, grown.replicas);
        RPT_CHECK(routing.has_value());  // superset of a feasible placement
        grown.assignment = *routing;
        const PruneResult pruned = PruneReplicas(instance, grown);
        if (pruned.solution.ReplicaCount() < placed.size()) {
          ++result.stats.additions;
          result.stats.pruned_during += pruned.removed;
          result.solution = pruned.solution;
          placed = std::unordered_set<NodeId>(result.solution.replicas.begin(),
                                              result.solution.replicas.end());
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  result.solution.Canonicalize();
  return result;
}

}  // namespace rpt::multiple
