#include "multiple/multiple_bin.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace rpt::multiple {

namespace {

// Pending/processed triple (d, w, i) of the paper: w requests of client
// `client`, currently at distance `d` from the node holding the list.
struct Triple {
  Distance d;
  Requests w;
  NodeId client;
};

using TripleList = std::vector<Triple>;  // sorted by non-increasing d

Requests TotalOf(const TripleList& list) noexcept {
  Requests total = 0;
  for (const Triple& t : list) total += t.w;
  return total;
}

// add-dist of the paper: shifts every distance by `dist`, writing into a
// caller-owned list (reused scratch or the persistent proc list). Returns
// the total pending weight so callers never re-scan the list.
Requests AddDistInto(const TripleList& list, Distance dist, TripleList& out) {
  out.clear();
  out.reserve(list.size());
  Requests total = 0;
  for (const Triple& t : list) {
    out.push_back(Triple{SaturatingAdd(t.d, dist), t.w, t.client});
    total += t.w;
  }
  return total;
}

// Fused add-dist + merge of the paper: shifts each child list by its edge
// length on the fly while merging the two non-increasing-d lists into `out`.
// Skips the two intermediate shifted copies the textbook formulation builds;
// returns the merged total weight.
Requests MergeShiftedInto(const TripleList& a, Distance da, const TripleList& b, Distance db,
                          TripleList& out) {
  out.clear();
  out.reserve(a.size() + b.size());
  Requests total = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const Distance da_i = SaturatingAdd(a[i].d, da);
    const Distance db_j = SaturatingAdd(b[j].d, db);
    if (da_i >= db_j) {
      out.push_back(Triple{da_i, a[i].w, a[i].client});
      total += a[i].w;
      ++i;
    } else {
      out.push_back(Triple{db_j, b[j].w, b[j].client});
      total += b[j].w;
      ++j;
    }
  }
  for (; i < a.size(); ++i) {
    out.push_back(Triple{SaturatingAdd(a[i].d, da), a[i].w, a[i].client});
    total += a[i].w;
  }
  for (; j < b.size(); ++j) {
    out.push_back(Triple{SaturatingAdd(b[j].d, db), b[j].w, b[j].client});
    total += b[j].w;
  }
  return total;
}

// Full algorithm state.
struct State {
  const Instance& instance;
  const Tree& tree;
  MultipleBinOptions options;
  std::vector<TripleList> req;   // pending lists
  std::vector<TripleList> proc;  // per-replica assigned triples
  std::vector<bool> is_replica;
  TripleList merge_scratch_;        // reused shifted-merge buffer (one per solve)
  std::vector<TripleList> pool_;    // retired pending lists, recycled capacity
  MultipleBinStats stats;

  // Pending lists churn once per node; recycling released lists keeps the
  // post-order sweep allocation-free after warm-up.
  [[nodiscard]] TripleList AcquireList() {
    if (pool_.empty()) return {};
    TripleList list = std::move(pool_.back());
    pool_.pop_back();
    list.clear();
    return list;
  }

  void ReleaseList(TripleList& list) {
    pool_.push_back(std::move(list));
    list = TripleList{};
  }

  State(const Instance& inst, const MultipleBinOptions& opts)
      : instance(inst),
        tree(inst.GetTree()),
        options(opts),
        req(tree.Size()),
        proc(tree.Size()),
        is_replica(tree.Size(), false) {}

  // True iff a triple at distance d from `node` may be served at the parent
  // of `node` (δ_r = +∞ at the root: never).
  [[nodiscard]] bool CanGoUp(NodeId node, Distance d) const {
    if (node == tree.Root()) return false;
    if (!instance.HasDistanceConstraint()) return true;
    return SaturatingAdd(d, tree.DistToParent(node)) <= instance.Dmax();
  }

  void PlaceReplica(NodeId node) {
    RPT_CHECK(!is_replica[node]);
    is_replica[node] = true;
  }

  // The extra-server procedure (paper, proof of Theorem 6): `node` is a full
  // replica whose subtree must additionally absorb req(node). Re-assigns
  // proc(node) := req(lchild)+δ and pushes the right child's pending load
  // down the rightmost path until a replica-free node takes it. Implemented
  // iteratively (the right spine can be long).
  void ExtraServer(NodeId node) {
    while (true) {
      ++stats.extra_server_calls;
      RPT_CHECK(is_replica[node]);
      const auto kids = tree.Children(node);
      RPT_CHECK(kids.size() == 2);
      const NodeId lchild = kids[0];
      const NodeId rchild = kids[1];
      // j now serves everything pending from its left child; every such
      // triple satisfies d + δ_l <= dmax by the pending-list invariant.
      const Requests reassigned = AddDistInto(req[lchild], tree.DistToParent(lchild), proc[node]);
      RPT_CHECK(reassigned <= instance.Capacity());
      if (!is_replica[rchild]) {
        PlaceReplica(rchild);
        ++stats.extra_replicas;
        proc[rchild] = req[rchild];
        RPT_CHECK(TotalOf(proc[rchild]) <= instance.Capacity());
        return;
      }
      node = rchild;
    }
  }

  void ProcessLeaf(NodeId node) {
    const Requests requests = tree.RequestsOf(node);
    if (requests == 0) return;
    if (!CanGoUp(node, 0)) {
      // δ_j > dmax (or the degenerate root-is-parentless case cannot occur
      // for clients): the client must serve itself.
      PlaceReplica(node);
      ++stats.leaf_forced_replicas;
      proc[node] = {Triple{0, requests, node}};
    } else {
      req[node] = AcquireList();
      req[node].push_back(Triple{0, requests, node});
    }
  }

  void ProcessInternal(NodeId node) {
    const auto kids = tree.Children(node);
    TripleList& temp = merge_scratch_;
    temp.clear();
    Requests wtot = 0;
    if (kids.size() == 1) {
      wtot = AddDistInto(req[kids[0]], tree.DistToParent(kids[0]), temp);
    } else if (kids.size() == 2) {
      wtot = MergeShiftedInto(req[kids[0]], tree.DistToParent(kids[0]), req[kids[1]],
                              tree.DistToParent(kids[1]), temp);
    }
    if (temp.empty()) return;

    const Requests capacity = instance.Capacity();
    const bool distance_trigger = !CanGoUp(node, temp.front().d);
    if (distance_trigger || wtot > capacity) {
      // This node becomes a server and absorbs exactly min(wtot, W)
      // requests, most distance-constrained first, splitting at the
      // capacity boundary (Multiple policy).
      PlaceReplica(node);
      ++stats.trigger_replicas;
      if (options.fill == MultipleBinOptions::FillOrder::kLeastConstrainedFirst) {
        // Ablation: absorb from the tail (smallest d) instead. Stays
        // feasible — stranded leftovers are mopped up by extra-server — but
        // loses the optimality proof.
        std::reverse(temp.begin(), temp.end());
      }
      Requests used = 0;
      std::size_t index = 0;
      proc[node].reserve(std::min<std::size_t>(temp.size(), static_cast<std::size_t>(capacity)));
      while (index < temp.size() && used < capacity) {
        Triple& head = temp[index];
        const Requests take = std::min(head.w, capacity - used);
        proc[node].push_back(Triple{head.d, take, head.client});
        used += take;
        if (take < head.w) {
          head.w -= take;
          ++stats.split_triples;
          break;  // head stays as the first leftover entry
        }
        ++index;
      }
      temp.erase(temp.begin(), temp.begin() + static_cast<std::ptrdiff_t>(index));
      if (options.fill == MultipleBinOptions::FillOrder::kLeastConstrainedFirst) {
        std::reverse(temp.begin(), temp.end());  // restore non-increasing d
      }
      req[node] = std::move(merge_scratch_);
      merge_scratch_ = AcquireList();
      RPT_CHECK(TotalOf(req[node]) <= capacity);  // binary tree: <= 2W - W
    } else {
      // Hand the merged scratch to the node wholesale and recycle a retired
      // list as the next scratch — no triple is copied a second time.
      req[node] = std::move(merge_scratch_);
      merge_scratch_ = AcquireList();
    }

    if (!req[node].empty() && !CanGoUp(node, req[node].front().d)) {
      // Leftover requests that cannot travel upward: re-assign within the
      // subtree via extra-server.
      ExtraServer(node);
      req[node].clear();
    }

    // Children's pending lists are only ever revisited by extra-server, and
    // extra-server walks exclusively through replica nodes. Releasing the
    // lists below non-replica nodes keeps resident memory O(|T|) instead of
    // O(|T|^2) on deep trees (the Theorem 6 worst-case regime); released
    // capacity is recycled through the pool.
    if (!is_replica[node]) {
      for (const NodeId child : kids) ReleaseList(req[child]);
    }
  }
};

}  // namespace

MultipleBinResult SolveMultipleBin(const Instance& instance, const MultipleBinOptions& options) {
  const Tree& tree = instance.GetTree();
  RPT_REQUIRE(tree.IsBinary(), "multiple-bin: tree must be binary (arity <= 2)");
  RPT_REQUIRE(instance.AllRequestsFitLocally(),
              "multiple-bin: requires r_i <= W for all clients (Theorem 6 precondition; "
              "the problem is NP-hard otherwise)");

  State state(instance, options);
  for (const NodeId node : tree.PostOrder()) {
    if (tree.IsClient(node)) {
      state.ProcessLeaf(node);
    } else {
      state.ProcessInternal(node);
    }
  }
  RPT_CHECK(state.req[tree.Root()].empty());

  MultipleBinResult result;
  result.stats = state.stats;
  for (NodeId node = 0; node < tree.Size(); ++node) {
    if (!state.is_replica[node]) continue;
    result.solution.replicas.push_back(node);
    for (const Triple& t : state.proc[node]) {
      if (t.w > 0) result.solution.assignment.push_back(ServiceEntry{t.client, node, t.w});
    }
  }
  result.solution.Canonicalize();
  return result;
}

}  // namespace rpt::multiple
