// Algorithm 3 of the paper: `multiple-bin`, the polynomial-time *optimal*
// algorithm for Multiple-Bin — Multiple policy, binary tree, distance
// constraints — under the Theorem 6 precondition that every client satisfies
// r_i <= W (each client could be served locally). Time O(|T|^2).
//
// Mechanics (paper §4.2): each node carries a list req(j) of pending triples
// (d, w, i) — w requests of client i, at distance d from j — sorted by
// non-increasing d, and a list proc(j) of triples assigned to the replica at
// j. An internal node merges its children's pending lists (distances bumped
// by the edge lengths); it becomes a server when the most-constrained triple
// could not travel one more edge, or when more than W requests are pending.
// A server absorbs exactly W requests, most-constrained first, splitting a
// triple at the boundary (this is where the Multiple policy is essential).
// If leftover requests still cannot travel upward, the `extra-server`
// procedure re-assigns: j keeps everything pending from its left child, and
// the right child's pending load is pushed down the rightmost path until a
// replica-free node absorbs it.
//
// The root uses δ_r = +∞ (nothing can be served above it), so all requests
// are served when the traversal finishes.
#pragma once

#include "model/instance.hpp"
#include "model/solution.hpp"

namespace rpt::multiple {

/// Counters describing how multiple-bin placed its replicas.
struct MultipleBinStats {
  std::uint64_t leaf_forced_replicas = 0;  ///< clients with δ_j > dmax (must self-serve)
  std::uint64_t trigger_replicas = 0;      ///< servers placed by the distance/capacity trigger
  std::uint64_t extra_replicas = 0;        ///< servers added by extra-server re-assignment
  std::uint64_t split_triples = 0;         ///< triples split at a capacity boundary
  std::uint64_t extra_server_calls = 0;    ///< invocations of extra-server (incl. recursion)
};

/// Result of running multiple-bin.
struct MultipleBinResult {
  Solution solution;
  MultipleBinStats stats;
};

/// Ablation knobs (benchmark E9). Defaults reproduce the paper's algorithm.
struct MultipleBinOptions {
  /// Which end of the pending list a new server absorbs. The paper serves
  /// the most distance-constrained triples first (largest d); the ablation
  /// serves the least constrained first, which stays feasible (extra-server
  /// mops up stranded requests) but loses optimality.
  enum class FillOrder : std::uint8_t { kMostConstrainedFirst, kLeastConstrainedFirst };
  FillOrder fill = FillOrder::kMostConstrainedFirst;
};

/// Runs Algorithm 3. Preconditions (throws InvalidArgument if violated):
///  * the tree is binary (arity <= 2);
///  * every client has r_i <= W (Theorem 6's hypothesis — without it the
///    problem is NP-hard, Theorem 5).
/// Returns a feasible Multiple solution, optimal under the default options.
[[nodiscard]] MultipleBinResult SolveMultipleBin(const Instance& instance,
                                                 const MultipleBinOptions& options = {});

}  // namespace rpt::multiple
