// Flow-based replica pruning — a repair pass this reproduction adds on top
// of the paper's Algorithm 3.
//
// Background (see EXPERIMENTS.md, E6): our reproduction found that
// Algorithm 3 as specified in RR-7750 is *not* always optimal once distance
// constraints bind — a capacity trigger can pin requests below a node even
// though an optimal solution lets them travel past it (a 13-node
// counterexample is checked in tests/test_multiple_bin.cpp). On Multiple-NoD
// binary instances we observed no deviation (0/500 per configuration).
//
// PruneReplicas greedily removes replicas while the remaining placement can
// still route all requests (max-flow oracle), then recomputes the routing.
// It never increases the count and in our sweeps repairs almost every
// deviation (17 of 18 over 2500 instances). No optimality guarantee.
#pragma once

#include "model/instance.hpp"
#include "model/solution.hpp"

namespace rpt::multiple {

/// Result of a pruning pass.
struct PruneResult {
  Solution solution;          ///< pruned placement with re-routed assignment
  std::uint64_t removed = 0;  ///< how many replicas were eliminated
};

/// Greedily removes redundant replicas from a feasible Multiple-policy
/// solution: replicas are tried lightest-load first; each removal is kept iff
/// the remaining placement still routes all requests within capacity and
/// distance limits. Throws InvalidArgument if the input placement is not
/// routable to begin with.
[[nodiscard]] PruneResult PruneReplicas(const Instance& instance, const Solution& solution);

}  // namespace rpt::multiple
