#include "multiple/greedy.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace rpt::multiple {

Solution SolveMultipleGreedy(const Instance& instance) {
  RPT_REQUIRE(instance.AllRequestsFitLocally(),
              "multiple-greedy: requires r_i <= W for a guaranteed feasible start");
  const Tree& tree = instance.GetTree();
  const Requests capacity = instance.Capacity();

  // Eligible root-path prefix per client (self first, root-most last).
  std::vector<NodeId> clients(tree.Clients().begin(), tree.Clients().end());
  std::erase_if(clients, [&](NodeId c) { return tree.RequestsOf(c) == 0; });
  std::unordered_map<NodeId, std::vector<NodeId>> eligible;
  eligible.reserve(clients.size());
  for (const NodeId client : clients) {
    auto& path = eligible[client];
    for (NodeId node = client;; node = tree.Parent(node)) {
      if (!instance.CanServe(client, node)) break;
      path.push_back(node);
      if (node == tree.Root()) break;
    }
  }
  // Most-constrained clients first: fewer eligible servers, then more
  // requests, then id for determinism.
  std::sort(clients.begin(), clients.end(), [&](NodeId a, NodeId b) {
    const std::size_t ea = eligible[a].size();
    const std::size_t eb = eligible[b].size();
    if (ea != eb) return ea < eb;
    if (tree.RequestsOf(a) != tree.RequestsOf(b)) return tree.RequestsOf(a) > tree.RequestsOf(b);
    return a < b;
  });

  Solution solution;
  std::unordered_map<NodeId, Requests> residual;  // open server -> remaining capacity
  for (const NodeId client : clients) {
    Requests remaining = tree.RequestsOf(client);
    const auto& path = eligible[client];
    // Pour into open servers, deepest (closest to the client) first.
    for (const NodeId node : path) {
      if (remaining == 0) break;
      const auto it = residual.find(node);
      if (it == residual.end() || it->second == 0) continue;
      const Requests take = std::min(remaining, it->second);
      it->second -= take;
      remaining -= take;
      solution.assignment.push_back(ServiceEntry{client, node, take});
    }
    // Open new replicas, highest eligible free node first (a high server can
    // still absorb future clients from other subtrees).
    for (auto it = path.rbegin(); it != path.rend() && remaining > 0; ++it) {
      if (residual.contains(*it)) continue;
      residual.emplace(*it, capacity);
      solution.replicas.push_back(*it);
      const Requests take = std::min(remaining, capacity);
      residual[*it] -= take;
      remaining -= take;
      solution.assignment.push_back(ServiceEntry{client, *it, take});
    }
    RPT_CHECK(remaining == 0);  // the client's own node guarantees feasibility
  }
  solution.Canonicalize();
  return solution;
}

}  // namespace rpt::multiple
