#include "multiple/greedy.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace rpt::multiple {

Solution SolveMultipleGreedy(const Instance& instance) {
  RPT_REQUIRE(instance.AllRequestsFitLocally(),
              "multiple-greedy: requires r_i <= W for a guaranteed feasible start");
  const Tree& tree = instance.GetTree();
  const Requests capacity = instance.Capacity();

  // Sentinel residual meaning "no replica opened at this node yet".
  constexpr Requests kClosed = static_cast<Requests>(-1);

  // Eligible root-path prefix per client (self first, root-most last),
  // stored CSR-style: one flat id array plus NodeId-indexed offset/count
  // columns — no per-client vector or hashing.
  std::vector<NodeId> clients(tree.Clients().begin(), tree.Clients().end());
  std::erase_if(clients, [&](NodeId c) { return tree.RequestsOf(c) == 0; });
  std::vector<NodeId> paths_flat;
  std::vector<std::uint32_t> path_begin(tree.Size(), 0);
  std::vector<std::uint32_t> path_count(tree.Size(), 0);
  for (const NodeId client : clients) {
    path_begin[client] = static_cast<std::uint32_t>(paths_flat.size());
    for (NodeId node = client;; node = tree.Parent(node)) {
      if (!instance.CanServe(client, node)) break;
      paths_flat.push_back(node);
      if (node == tree.Root()) break;
    }
    path_count[client] = static_cast<std::uint32_t>(paths_flat.size()) - path_begin[client];
  }
  // The casts above are exact iff the final flat size fits 32 bits (growth
  // is monotone, so checking once afterwards covers every intermediate).
  RPT_REQUIRE(paths_flat.size() <= std::numeric_limits<std::uint32_t>::max(),
              "multiple-greedy: eligible-path index exceeds 32-bit offsets");
  // Most-constrained clients first: fewer eligible servers, then more
  // requests, then id for determinism.
  std::sort(clients.begin(), clients.end(), [&](NodeId a, NodeId b) {
    if (path_count[a] != path_count[b]) return path_count[a] < path_count[b];
    if (tree.RequestsOf(a) != tree.RequestsOf(b)) return tree.RequestsOf(a) > tree.RequestsOf(b);
    return a < b;
  });

  Solution solution;
  std::vector<Requests> residual(tree.Size(), kClosed);  // per-node remaining capacity
  for (const NodeId client : clients) {
    Requests remaining = tree.RequestsOf(client);
    const NodeId* path = paths_flat.data() + path_begin[client];
    const std::uint32_t count = path_count[client];
    // Pour into open servers, deepest (closest to the client) first.
    for (std::uint32_t i = 0; i < count && remaining > 0; ++i) {
      const NodeId node = path[i];
      if (residual[node] == kClosed || residual[node] == 0) continue;
      const Requests take = std::min(remaining, residual[node]);
      residual[node] -= take;
      remaining -= take;
      solution.assignment.push_back(ServiceEntry{client, node, take});
    }
    // Open new replicas, highest eligible free node first (a high server can
    // still absorb future clients from other subtrees).
    for (std::uint32_t i = count; i-- > 0 && remaining > 0;) {
      const NodeId node = path[i];
      if (residual[node] != kClosed) continue;
      solution.replicas.push_back(node);
      const Requests take = std::min(remaining, capacity);
      residual[node] = capacity - take;
      remaining -= take;
      solution.assignment.push_back(ServiceEntry{client, node, take});
    }
    RPT_CHECK(remaining == 0);  // the client's own node guarantees feasibility
  }
  solution.Canonicalize();
  return solution;
}

}  // namespace rpt::multiple
