// Local search for the Multiple policy with distance constraints — this
// library's extension beyond the paper, motivated by the Theorem 6 finding
// (see EXPERIMENTS.md E6): Algorithm 3 can strand one extra replica when
// dmax binds, and the paper's conclusion lists approximation algorithms for
// the general Multiple problem as future work.
//
// Strategy: start from the best applicable constructive solution
// (multiple-bin on binary trees, the greedy elsewhere), prune redundant
// replicas with the max-flow oracle, then iterate relocation moves: try to
// move one replica to a nearby free node (its ancestors or the nodes of its
// old neighbourhood) and re-prune; accept whenever the replica count drops.
// Every candidate placement is certified by the flow oracle, so the result
// is always feasible.
#pragma once

#include "model/instance.hpp"
#include "model/solution.hpp"

namespace rpt::multiple {

/// Tuning for the local search.
struct LocalSearchOptions {
  /// Full improvement rounds over the replica set.
  std::uint32_t max_rounds = 3;
  /// Add-then-prune moves always consider free internal nodes; client nodes
  /// are also considered when the tree has at most this many nodes (client
  /// adds matter on small trees but multiply the flow-oracle cost on big
  /// ones).
  std::size_t client_add_limit = 64;
};

/// Counters describing the search.
struct LocalSearchStats {
  std::uint64_t pruned_initial = 0;   ///< replicas removed from the start solution
  std::uint64_t relocations = 0;      ///< accepted relocation moves
  std::uint64_t additions = 0;        ///< accepted add-then-prune moves
  std::uint64_t pruned_during = 0;    ///< replicas removed after moves
  std::uint64_t rounds = 0;           ///< rounds actually executed
};

/// Result of the local search.
struct LocalSearchResult {
  Solution solution;
  LocalSearchStats stats;
};

/// Runs construction + pruning + relocation local search. Requires
/// r_i <= W (throws InvalidArgument otherwise); any arity, any dmax.
[[nodiscard]] LocalSearchResult SolveMultipleLocalSearch(const Instance& instance,
                                                         const LocalSearchOptions& options = {});

}  // namespace rpt::multiple
