// Greedy heuristic for the Multiple policy on general trees with distance
// constraints. No optimality guarantee — this is the benchmark baseline that
// multiple-bin (optimal on binary trees) and the exact solvers are compared
// against in the experiment harness.
#pragma once

#include "model/instance.hpp"
#include "model/solution.hpp"

namespace rpt::multiple {

/// Client-by-client greedy with splitting: clients are processed most
/// distance-constrained first (smallest eligible-ancestor count, then larger
/// demand first); each client pours its requests into already-open servers on
/// its root path (deepest first), and opens a new replica at the highest
/// eligible replica-free node when demand remains. Requires r_i <= W so a
/// feasible solution always exists (the client itself is always available).
[[nodiscard]] Solution SolveMultipleGreedy(const Instance& instance);

}  // namespace rpt::multiple
