#include "multiple/prune.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "flow/assignment.hpp"

namespace rpt::multiple {

PruneResult PruneReplicas(const Instance& instance, const Solution& solution) {
  std::vector<NodeId> replicas = solution.replicas;
  std::sort(replicas.begin(), replicas.end());
  replicas.erase(std::unique(replicas.begin(), replicas.end()), replicas.end());

  // Lightest-load replicas are the most promising removal candidates.
  std::unordered_map<NodeId, Requests> load;
  for (const ServiceEntry& entry : solution.assignment) load[entry.server] += entry.amount;
  std::stable_sort(replicas.begin(), replicas.end(), [&load](NodeId a, NodeId b) {
    const auto la = load.find(a);
    const auto lb = load.find(b);
    const Requests va = la == load.end() ? 0 : la->second;
    const Requests vb = lb == load.end() ? 0 : lb->second;
    return va < vb;
  });

  auto routing = flow::RouteMultiple(instance, replicas);
  RPT_REQUIRE(routing.has_value(), "PruneReplicas: input placement is not routable");

  PruneResult result;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < replicas.size(); ++i) {
      std::vector<NodeId> candidate;
      candidate.reserve(replicas.size() - 1);
      for (std::size_t j = 0; j < replicas.size(); ++j) {
        if (j != i) candidate.push_back(replicas[j]);
      }
      auto sub_routing = flow::RouteMultiple(instance, candidate);
      if (sub_routing.has_value()) {
        replicas = std::move(candidate);
        routing = std::move(sub_routing);
        ++result.removed;
        changed = true;
        break;  // restart: loads shifted, earlier candidates may free up
      }
    }
  }

  result.solution.replicas = std::move(replicas);
  result.solution.assignment = std::move(*routing);
  result.solution.Canonicalize();
  return result;
}

}  // namespace rpt::multiple
