// Exact solver for Multiple-NoD (Multiple policy, no distance constraints)
// on arbitrary trees, via a tree knapsack DP.
//
// The paper cites [3] (Benoit, Rehn-Sonigo, Robert, TPDS 2008) for a
// polynomial-time optimal Multiple-NoD algorithm. We substitute an
// equivalent-result pseudo-polynomial DP (documented in DESIGN.md): for each
// node j and each forwarded amount u, F_j(u) = minimum number of replicas in
// subtree(j) such that at most u requests are forwarded above j. Since
// requests are integers and the DP domain is bounded by the subtree request
// totals, the classic tree-knapsack bound makes the whole run O(|T| + U^2)
// with U the total number of requests. The optimum is F_root(0).
//
// Unlike multiple-bin, this solver allows r_i > W (a client may split its
// own requests between itself and ancestors), works for any arity, and is
// exact — we use it both as a baseline for the policy-gap experiments and to
// cross-check multiple-bin on NoD binary instances at sizes the brute-force
// solver cannot reach.
// The forward pass is level-synchronous: all subtree merges at one tree
// depth are independent, so they run as parallel chunks on the process-wide
// solver pool (SolverPool()), each chunk leasing a reusable scratch arena.
// Outputs are byte-identical to the serial pass at any thread count.
// The DP core itself (tables, staircase convolution, level sweep, and
// detail::MergeMinShift) lives in multiple/nod_dp_engine.hpp — this header
// keeps the batch-solve entry point; the incremental re-solver
// (src/incremental/) drives the same engine across update batches.
#pragma once

#include <cstddef>
#include <cstdint>

#include "model/instance.hpp"
#include "model/solution.hpp"
#include "multiple/nod_dp_engine.hpp"

namespace rpt::multiple {

/// Counters describing the work and footprint of one DP run.
struct MultipleNodDpStats {
  /// Total entries (4 bytes each) held across all stored F and prefix
  /// tables; every table is bounded by its subtree request total + 1, so
  /// this is also the peak footprint (tables live until backtracking ends).
  std::uint64_t table_entries = 0;
  /// Inner-loop iterations of all staircase convolutions (cost-domain
  /// cells), the dominant arithmetic of the forward pass.
  std::uint64_t convolve_cells = 0;
};

/// Result of the Multiple-NoD DP.
struct MultipleNodDpResult {
  /// True iff a feasible Multiple-NoD solution exists (it may not, e.g. a
  /// chain too short to absorb a giant client demand).
  bool feasible = false;
  /// The optimal solution (empty when infeasible).
  Solution solution;
  /// Work/footprint counters of the run (filled even when infeasible).
  MultipleNodDpStats stats;
};

/// Runs the DP and reconstructs an optimal placement plus routing.
/// Requires no distance constraint; throws InvalidArgument otherwise.
/// Runtime grows with (total requests)^2 — intended for totals up to ~10^4.
[[nodiscard]] MultipleNodDpResult SolveMultipleNodDp(const Instance& instance);

}  // namespace rpt::multiple
