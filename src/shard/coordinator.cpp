#include "shard/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "multiple/multiple_nod_dp.hpp"
#include "multiple/nod_dp_engine.hpp"
#include "shard/boundary_table.hpp"
#include "shard/worker.hpp"
#include "tree/serialize.hpp"

namespace rpt::shard {

namespace {

/// One forked worker awaiting collection.
struct SpawnedWorker {
  std::uint32_t shard = 0;
  pid_t pid = -1;
  std::string out_path;
};

pid_t SpawnWorker(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  RPT_REQUIRE(pid >= 0, "rpt-shard: fork failed");
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    std::perror("rpt-shard: execv");
    ::_exit(127);
  }
  return pid;
}

}  // namespace

ShardedSolveResult SolveSharded(const Instance& instance, const ShardOptions& options) {
  RPT_REQUIRE(!instance.HasDistanceConstraint(),
              "rpt-shard: sharded solve supports NoD instances only");
  RPT_REQUIRE(options.max_attempts >= 1, "rpt-shard: max_attempts must be >= 1");
  const bool subprocess = options.dispatch == ShardOptions::Dispatch::kSubprocess;
  if (subprocess) {
    RPT_REQUIRE(!options.work_dir.empty() && !options.worker_argv0.empty(),
                "rpt-shard: subprocess dispatch needs work_dir and worker_argv0");
  }
  const Tree& tree = instance.GetTree();
  const Requests capacity = instance.Capacity();

  ShardedSolveResult result;
  PlanOptions plan_options;
  plan_options.shards = options.shards;
  plan_options.max_imbalance = options.max_imbalance;
  plan_options.max_cuts = options.max_cuts;
  const ShardPlan plan = PlanShards(tree, plan_options);
  result.stats.shard_count = plan.shard_count;
  result.stats.cut_count = static_cast<std::uint32_t>(plan.cuts.size());

  if (plan.shard_count == 0) {
    // Nothing cuttable (e.g. a star: the root's children are all clients).
    // Documented fallback: the plain local solve, stats.shard_count == 0.
    auto local = multiple::SolveMultipleNodDp(instance);
    result.feasible = local.feasible;
    result.solution = std::move(local.solution);
    result.stats.spine_table_entries = local.stats.table_entries;
    return result;
  }

  // Slice every cut subtree once. The coordinator keeps the slices for the id
  // maps (fragment local ids -> megatree ids); subprocess workers get their
  // own copies through rpt-tree files.
  std::unordered_map<NodeId, SubtreeSlice> slices;
  slices.reserve(plan.cuts.size());
  std::unordered_map<NodeId, std::uint32_t> shard_of_cut;
  shard_of_cut.reserve(plan.cuts.size());
  for (const Cut& cut : plan.cuts) {
    slices.emplace(cut.node, tree.SliceSubtree(cut.node));
    shard_of_cut.emplace(cut.node, cut.shard);
  }

  // Subprocess mode: materialize the file exchange up front — one slice file
  // per cut, one manifest per shard. Budgets files follow after the merge.
  std::vector<std::string> manifest_paths(plan.shard_count);
  if (subprocess) {
    std::filesystem::create_directories(options.work_dir);
    for (std::uint32_t s = 0; s < plan.shard_count; ++s) {
      std::string manifest = "rpt-shard-manifest v1\n";
      manifest += "capacity " + std::to_string(capacity) + "\n";
      for (const NodeId cut : plan.shard_cuts[s]) {
        const std::string slice_path =
            options.work_dir + "/cut-" + std::to_string(cut) + ".tree";
        std::ofstream os(slice_path, std::ios::trunc);
        RPT_REQUIRE(os.good(), "rpt-shard: cannot write slice: " + slice_path);
        WriteTree(os, slices.at(cut).tree);
        os.flush();
        RPT_REQUIRE(os.good(), "rpt-shard: slice write failed: " + slice_path);
        manifest += "cut " + std::to_string(cut) + " " + slice_path + "\n";
      }
      manifest_paths[s] = options.work_dir + "/shard-" + std::to_string(s) + ".manifest";
      std::ofstream os(manifest_paths[s], std::ios::trunc);
      RPT_REQUIRE(os.good(), "rpt-shard: cannot write manifest: " + manifest_paths[s]);
      os << manifest;
      os.flush();
      RPT_REQUIRE(os.good(), "rpt-shard: manifest write failed: " + manifest_paths[s]);
    }
  }

  const auto record_failure = [&result](std::uint32_t shard, std::uint32_t attempt,
                                        const char* phase, const std::string& error) {
    result.failures.push_back(
        ShardFailure{shard, attempt, phase, error});
  };

  // In-process dispatch: run `body` (which produces this shard's btab BYTES
  // and decodes them back — the wire format stays the seam) with the same
  // retry contract a subprocess gets. This catch is the emulated process
  // boundary: ANY escape — including fail::InjectedFault, which nothing in
  // the library proper catches — collapses to "the worker died, no boundary
  // table arrived", is recorded loudly, and triggers a re-dispatch.
  const auto in_process_phase = [&](std::uint32_t shard, const char* phase,
                                    const auto& body) -> BtabFile {
    for (std::uint32_t attempt = 1;; ++attempt) {
      try {
        return body();
      } catch (const std::exception& e) {
        record_failure(shard, attempt, phase, e.what());
        if (attempt >= options.max_attempts) {
          throw InternalError("rpt-shard: shard " + std::to_string(shard) + " failed the " +
                              phase + " phase after " + std::to_string(attempt) +
                              " attempt(s); last error: " + std::string(e.what()));
        }
      }
    }
  };

  const auto round_trip = [&result](const BtabFile& produced) -> BtabFile {
    const std::string bytes = EncodeBtab(produced);
    result.stats.boundary_bytes += bytes.size();
    return DecodeBtab(bytes);
  };

  // Subprocess dispatch: fan out one worker per pending shard, wait4 them all
  // (collecting peak RSS), re-dispatch failures round by round. A non-zero
  // exit, a death by signal, a missing output file, and a corrupt btab are
  // all the same event: a dead shard.
  const auto run_subprocess_phase =
      [&](const char* phase,
          const std::vector<std::string>& budget_paths) -> std::vector<BtabFile> {
    std::vector<BtabFile> per_shard(plan.shard_count);
    std::vector<std::uint32_t> pending(plan.shard_count);
    std::iota(pending.begin(), pending.end(), 0u);
    for (std::uint32_t attempt = 1; !pending.empty(); ++attempt) {
      std::vector<SpawnedWorker> running;
      running.reserve(pending.size());
      for (const std::uint32_t shard : pending) {
        std::string out_path = options.work_dir + "/shard-" + std::to_string(shard) + "-" +
                               phase + "-a" + std::to_string(attempt) + ".btab";
        std::vector<std::string> args = {options.worker_argv0,
                                         kWorkerFlag,
                                         "--phase=" + std::string(phase),
                                         "--manifest=" + manifest_paths[shard],
                                         "--out=" + out_path,
                                         "--threads=" + std::to_string(options.worker_threads)};
        if (!budget_paths.empty()) args.push_back("--budgets=" + budget_paths[shard]);
        if (options.crash_at_cut > 0 && shard == options.crash_shard && attempt == 1 &&
            std::string_view(phase) == "solve") {
          args.push_back("--crash-at-cut=" + std::to_string(options.crash_at_cut));
        }
        running.push_back(SpawnedWorker{shard, SpawnWorker(args), std::move(out_path)});
      }
      std::vector<std::uint32_t> failed;
      for (const SpawnedWorker& worker : running) {
        int status = 0;
        struct rusage usage{};
        pid_t waited = -1;
        do {
          waited = ::wait4(worker.pid, &status, 0, &usage);
        } while (waited < 0 && errno == EINTR);
        RPT_CHECK(waited == worker.pid);
        result.stats.max_worker_rss_kb = std::max(
            result.stats.max_worker_rss_kb, static_cast<std::uint64_t>(usage.ru_maxrss));
        std::string error;
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
          try {
            per_shard[worker.shard] = ReadBtabFile(worker.out_path);
            result.stats.boundary_bytes += std::filesystem::file_size(worker.out_path);
          } catch (const std::exception& e) {
            error = e.what();
          }
        } else if (WIFEXITED(status)) {
          error = "worker exited with status " + std::to_string(WEXITSTATUS(status));
        } else if (WIFSIGNALED(status)) {
          error = "worker killed by signal " + std::to_string(WTERMSIG(status));
        } else {
          error = "worker ended abnormally";
        }
        if (!error.empty()) {
          record_failure(worker.shard, attempt, phase, error);
          failed.push_back(worker.shard);
        }
      }
      if (!failed.empty() && attempt >= options.max_attempts) {
        std::string names;
        for (const std::uint32_t shard : failed) {
          if (!names.empty()) names += ", ";
          names += std::to_string(shard);
        }
        throw InternalError("rpt-shard: shard(s) " + names + " failed the " +
                            std::string(phase) + " phase after " + std::to_string(attempt) +
                            " attempt(s)");
      }
      pending = std::move(failed);
    }
    return per_shard;
  };

  // ---- Phase 1: per-shard solve, boundary tables come back. -----------------
  // In-process mode keeps the solved engines hot for the extract phase;
  // committed into `hot` only when the whole shard succeeded, so a retried
  // shard starts clean.
  std::unordered_map<NodeId, CutSolve> hot;
  std::vector<BtabFile> solve_results;
  if (subprocess) {
    solve_results = run_subprocess_phase("solve", {});
  } else {
    solve_results.reserve(plan.shard_count);
    for (std::uint32_t s = 0; s < plan.shard_count; ++s) {
      solve_results.push_back(in_process_phase(s, "solve", [&]() -> BtabFile {
        std::vector<CutSolve> solves;
        solves.reserve(plan.shard_cuts[s].size());
        BtabFile out;
        for (const NodeId cut : plan.shard_cuts[s]) {
          CutSolve solve = SolveCut(cut, slices.at(cut), capacity);
          out.tables.push_back(ExportTable(solve));
          solves.push_back(std::move(solve));
        }
        for (CutSolve& solve : solves) {
          const NodeId cut = solve.cut;
          hot[cut] = std::move(solve);
        }
        return round_trip(out);
      }));
    }
  }

  // ---- Merge: build the spine and import the boundary tables. ---------------
  // The spine keeps every node NOT strictly below a cut, in ascending global
  // id order (so the local<->global remap is monotone and every CSR invariant
  // survives); each cut reappears as a client leaf demanding its subtree
  // total. By the DP's subtree locality every spine table — interior and
  // root — is byte-identical to the unsharded engine's table at that node.
  const std::size_t n = tree.Size();
  std::vector<char> in_spine(n, 1);
  std::vector<char> is_cut(n, 0);
  for (const Cut& cut : plan.cuts) {
    is_cut[cut.node] = 1;
    for (const NodeId global : slices.at(cut.node).to_global) {
      if (global != cut.node) in_spine[global] = 0;
    }
  }
  std::size_t spine_count = 0;
  for (std::size_t id = 0; id < n; ++id) spine_count += static_cast<std::size_t>(in_spine[id]);
  TreeBuilder builder;
  builder.Reserve(spine_count);
  std::vector<NodeId> spine_to_global;
  spine_to_global.reserve(spine_count);
  std::vector<NodeId> global_to_spine(n, kInvalidNode);
  for (NodeId id = 0; id < n; ++id) {
    if (!in_spine[id]) continue;
    NodeId local = kInvalidNode;
    if (id == tree.Root()) {
      local = builder.AddRoot();
    } else {
      // The parent of a spine node is itself a spine node and, by ascending
      // id order (parent id < child id), already added.
      const NodeId parent_local = global_to_spine[tree.Parent(id)];
      RPT_CHECK(parent_local != kInvalidNode);
      if (is_cut[id]) {
        local = builder.AddClient(parent_local, tree.DistToParent(id), tree.SubtreeRequests(id));
      } else if (tree.IsClient(id)) {
        local = builder.AddClient(parent_local, tree.DistToParent(id), tree.RequestsOf(id));
      } else {
        local = builder.AddInternal(parent_local, tree.DistToParent(id));
      }
    }
    global_to_spine[id] = local;
    spine_to_global.push_back(id);
  }
  const Tree spine = builder.Build();
  result.stats.spine_nodes = static_cast<std::uint32_t>(spine.Size());

  multiple::NodDpEngine engine(spine, capacity);
  std::vector<char> imported(n, 0);
  for (std::uint32_t s = 0; s < plan.shard_count; ++s) {
    BtabFile& file = solve_results[s];
    RPT_REQUIRE(file.fragments.empty(), "rpt-shard: solve phase must ship tables only");
    RPT_REQUIRE(file.tables.size() == plan.shard_cuts[s].size(),
                "rpt-shard: shard " + std::to_string(s) + " shipped " +
                    std::to_string(file.tables.size()) + " tables, expected " +
                    std::to_string(plan.shard_cuts[s].size()));
    for (BoundaryTable& table : file.tables) {
      RPT_REQUIRE(table.cut < n && is_cut[table.cut] != 0,
                  "rpt-shard: boundary table names an unknown cut");
      RPT_REQUIRE(shard_of_cut.at(table.cut) == s,
                  "rpt-shard: boundary table arrived from the wrong shard");
      RPT_REQUIRE(imported[table.cut] == 0, "rpt-shard: duplicate boundary table");
      RPT_REQUIRE(table.demand == tree.SubtreeRequests(table.cut),
                  "rpt-shard: boundary table demand does not match the cut subtree");
      imported[table.cut] = 1;
      result.stats.worker_table_entries += table.table_entries;
      result.stats.worker_convolve_cells += table.convolve_cells;
      engine.ImportLeafTable(global_to_spine[table.cut], std::move(table.table));
    }
  }
  engine.ComputeAll();
  result.stats.spine_table_entries = engine.Work().table_entries;
  if (!engine.Feasible()) {
    // Same verdict the unsharded solve would reach: F_root(0) is determined
    // by the spine tables, which are byte-identical to the unsharded ones.
    return result;
  }

  // ---- Budgets: the root-down split, one clamped budget per cut. ------------
  const auto budgets = engine.AssignImportedBudgets();
  RPT_CHECK(budgets.size() == plan.cuts.size());
  std::unordered_map<NodeId, std::uint64_t> budget_by_cut;
  budget_by_cut.reserve(budgets.size());
  for (const auto& budget : budgets) {
    budget_by_cut.emplace(spine_to_global[budget.leaf], budget.budget);
  }

  // ---- Phase 2: per-shard extract, solution fragments come back. ------------
  std::vector<BtabFile> extract_results;
  if (subprocess) {
    std::vector<std::string> budget_paths(plan.shard_count);
    for (std::uint32_t s = 0; s < plan.shard_count; ++s) {
      budget_paths[s] = options.work_dir + "/shard-" + std::to_string(s) + ".budgets";
      std::ofstream os(budget_paths[s], std::ios::trunc);
      RPT_REQUIRE(os.good(), "rpt-shard: cannot write budgets: " + budget_paths[s]);
      os << "rpt-shard-budgets v1\n";
      for (const NodeId cut : plan.shard_cuts[s]) {
        os << "budget " << cut << " " << budget_by_cut.at(cut) << "\n";
      }
      os.flush();
      RPT_REQUIRE(os.good(), "rpt-shard: budgets write failed: " + budget_paths[s]);
    }
    extract_results = run_subprocess_phase("extract", budget_paths);
  } else {
    extract_results.reserve(plan.shard_count);
    for (std::uint32_t s = 0; s < plan.shard_count; ++s) {
      extract_results.push_back(in_process_phase(s, "extract", [&]() -> BtabFile {
        BtabFile out;
        for (const NodeId cut : plan.shard_cuts[s]) {
          out.fragments.push_back(
              ExtractFragment(hot.at(cut), budget_by_cut.at(cut)));
        }
        return round_trip(out);
      }));
    }
  }

  std::vector<SolutionFragment> fragments;
  fragments.reserve(plan.cuts.size());
  std::vector<char> extracted(n, 0);
  for (std::uint32_t s = 0; s < plan.shard_count; ++s) {
    BtabFile& file = extract_results[s];
    RPT_REQUIRE(file.tables.empty(), "rpt-shard: extract phase must ship fragments only");
    RPT_REQUIRE(file.fragments.size() == plan.shard_cuts[s].size(),
                "rpt-shard: shard " + std::to_string(s) + " shipped " +
                    std::to_string(file.fragments.size()) + " fragments, expected " +
                    std::to_string(plan.shard_cuts[s].size()));
    for (SolutionFragment& fragment : file.fragments) {
      RPT_REQUIRE(fragment.cut < n && is_cut[fragment.cut] != 0,
                  "rpt-shard: fragment names an unknown cut");
      RPT_REQUIRE(shard_of_cut.at(fragment.cut) == s,
                  "rpt-shard: fragment arrived from the wrong shard");
      RPT_REQUIRE(extracted[fragment.cut] == 0, "rpt-shard: duplicate fragment");
      RPT_REQUIRE(fragment.budget == budget_by_cut.at(fragment.cut),
                  "rpt-shard: fragment extracted at the wrong budget");
      extracted[fragment.cut] = 1;
      fragments.push_back(std::move(fragment));
    }
  }

  // ---- Splice: spine backtrack with fragment pendings, then remap. ----------
  // The provider hands each imported leaf its fragment's forwarded list in
  // chain order. Fragment client ids are megatree ids OFFSET by the spine
  // size so they can never collide with spine-local ids inside the spine
  // backtrack; the remap below splits on the offset.
  const auto spine_size = static_cast<NodeId>(spine.Size());
  std::unordered_map<NodeId, std::vector<std::pair<NodeId, Requests>>> forwarded_by_leaf;
  forwarded_by_leaf.reserve(fragments.size());
  for (const SolutionFragment& fragment : fragments) {
    const std::vector<NodeId>& to_global = slices.at(fragment.cut).to_global;
    auto& list = forwarded_by_leaf[global_to_spine[fragment.cut]];
    list.reserve(fragment.forwarded.size());
    for (const auto& [local_client, amount] : fragment.forwarded) {
      RPT_REQUIRE(local_client < to_global.size(),
                  "rpt-shard: fragment forwards an unknown client");
      const std::uint64_t offset_id =
          static_cast<std::uint64_t>(to_global[local_client]) + spine_size;
      RPT_CHECK(offset_id < kInvalidNode);
      list.emplace_back(static_cast<NodeId>(offset_id), amount);
    }
  }
  engine.SetImportedFragmentProvider(
      [&](NodeId leaf, std::size_t budget) -> std::span<const std::pair<NodeId, Requests>> {
        const auto it = forwarded_by_leaf.find(leaf);
        RPT_CHECK(it != forwarded_by_leaf.end());
        // The sweep and the backtrack share SplitBudget, so the budget seen
        // here must be exactly the one each worker extracted at.
        RPT_CHECK(budget == budget_by_cut.at(spine_to_global[leaf]));
        return it->second;
      });
  const Solution spine_solution = engine.Backtrack();

  Solution combined;
  combined.replicas.reserve(spine_solution.replicas.size());
  combined.assignment.reserve(spine_solution.assignment.size());
  for (const NodeId replica : spine_solution.replicas) {
    combined.replicas.push_back(spine_to_global[replica]);
  }
  for (const ServiceEntry& entry : spine_solution.assignment) {
    RPT_CHECK(entry.server < spine_size);
    ServiceEntry mapped = entry;
    mapped.server = spine_to_global[entry.server];
    mapped.client = entry.client < spine_size
                        ? spine_to_global[entry.client]
                        : static_cast<NodeId>(entry.client - spine_size);
    combined.assignment.push_back(mapped);
  }
  for (const SolutionFragment& fragment : fragments) {
    const Solution mapped = MapNodeIds(fragment.solution, slices.at(fragment.cut).to_global);
    combined.replicas.insert(combined.replicas.end(), mapped.replicas.begin(),
                             mapped.replicas.end());
    combined.assignment.insert(combined.assignment.end(), mapped.assignment.begin(),
                               mapped.assignment.end());
  }
  combined.Canonicalize();
  result.solution = std::move(combined);
  result.feasible = true;
  return result;
}

}  // namespace rpt::shard
