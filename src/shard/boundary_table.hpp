// rpt-btab v1 — the boundary-table wire format of the sharded solve: what a
// shard worker ships back to the coordinator. One file carries any mix of
// TABLE records (phase 1: the cut subtree root's F staircase plus merge
// stats) and FRAGMENT records (phase 2: the reconstructed subtree solution
// at the assigned budget). Files are the first transport; the byte format is
// the seam for sockets later.
//
// Layout (all integers little-endian):
//   magic   8 bytes  "RPTBTAB1"
//   header  framed record: u32 version (=1) | u32 record_count | u64 body_bytes
//   body    record_count framed records
// and a framed record is
//   u32 len | u32 crc | payload[len]
// with crc = CRC-32 of the payload (support/crc32.hpp — the WAL's exact
// framing style). `body_bytes` is the total framed size of the body, so the
// decoder can cross-check the walk: it must consume exactly record_count
// records and exactly body_bytes bytes and land exactly on EOF.
//
// A TABLE payload stores the staircase *compressed* in the cost domain:
// (vmin, vmax, inv[]) with inv[c - vmin] = smallest u such that F(u) <= c —
// the same inverse form the DP's convolution uses internally. Reconstruction
// is exact (the staircase is monotone with integer costs), so the table the
// coordinator imports is byte-identical to the table the worker computed,
// while the wire size is O(cost range), not O(demand).
//
// Corruption contract ("prefix or loud, never wrong", same as the WAL
// corpus): DecodeBtab THROWS InvalidArgument on any damaged input — short
// magic, truncated frame, CRC mismatch, record/byte-count mismatch, payload
// that over- or under-runs its frame, trailing bytes, or any field that
// fails semantic validation. A btab is a complete artifact, not an
// append-only log: there is no "valid prefix" to salvage, so unlike the WAL
// even a torn tail refuses to load — the coordinator treats it as a failed
// worker and re-dispatches. tests/test_shard.cpp drives the
// truncate-at-every-byte and per-byte bit-flip corpora against this promise.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "model/solution.hpp"
#include "multiple/nod_dp_engine.hpp"
#include "tree/tree.hpp"

namespace rpt::shard {

/// File magic, exactly 8 bytes.
inline constexpr char kBtabMagic[8] = {'R', 'P', 'T', 'B', 'T', 'A', 'B', '1'};

/// Sanity cap on one framed record's payload (a fragment of a 10^7-node
/// shard stays well below; anything larger is a corrupt length field).
inline constexpr std::uint32_t kMaxBtabRecordBytes = 1u << 28;

/// Sanity cap on a shipped table's demand domain (entries materialized =
/// demand + 1; the cap keeps a corrupt-but-CRC-lucky demand field from
/// asking the decoder for an absurd allocation).
inline constexpr std::uint64_t kMaxBtabDemand = std::uint64_t{1} << 31;

/// Phase-1 export: one cut subtree's boundary table.
struct BoundaryTable {
  NodeId cut = kInvalidNode;   ///< cut subtree root, MEGATREE (global) id
  std::uint64_t demand = 0;    ///< subtree demand; table has demand + 1 entries
  std::uint32_t subtree_nodes = 0;  ///< nodes in the cut subtree
  // Worker-side work counters, aggregated by the coordinator.
  std::uint64_t table_entries = 0;
  std::uint64_t convolve_cells = 0;
  multiple::NodDpEngine::CostTable table;  ///< materialized staircase, size demand + 1
};

/// Phase-2 export: one cut subtree's reconstructed solution at `budget`.
/// Node ids are LOCAL slice ids (SubtreeSlice::to_global translates); the
/// forwarded list preserves the backtrack's chain order — load-bearing, the
/// spine's replicas absorb it prefix-greedily.
struct SolutionFragment {
  NodeId cut = kInvalidNode;   ///< cut subtree root, MEGATREE (global) id
  std::uint64_t budget = 0;    ///< forwarded budget the fragment answers
  Solution solution;
  std::vector<std::pair<NodeId, Requests>> forwarded;
};

/// One decoded/encodable btab file.
struct BtabFile {
  std::vector<BoundaryTable> tables;
  std::vector<SolutionFragment> fragments;
};

/// Serializes to rpt-btab v1 bytes.
[[nodiscard]] std::string EncodeBtab(const BtabFile& file);

/// Parses rpt-btab v1 bytes; throws InvalidArgument on ANY damage (see the
/// corruption contract above).
[[nodiscard]] BtabFile DecodeBtab(std::string_view bytes);

/// Writes the encoded file to `path`; throws InvalidArgument on I/O error.
void WriteBtabFile(const std::string& path, const BtabFile& file);

/// Reads and decodes `path`; throws InvalidArgument on I/O error or damage.
[[nodiscard]] BtabFile ReadBtabFile(const std::string& path);

}  // namespace rpt::shard
