// rpt-shard coordinator: the sharded Multiple-NoD solve, end to end.
//
//   plan     PlanShards cuts the megatree into k forests (plan.hpp);
//   solve    each shard solves its cut subtrees and ships boundary tables
//            (rpt-btab v1 — the bytes are the seam even in-process);
//   merge    the coordinator builds the *spine* (every node not strictly
//            below a cut; each cut reappears as a client leaf carrying its
//            subtree demand), imports the tables, and runs the normal DP —
//            every spine table is byte-identical to the unsharded engine's;
//   budgets  AssignImportedBudgets walks the root-down budget split (the
//            same table arithmetic Backtrack uses) to each cut;
//   extract  each shard reconstructs its subtrees at the assigned budgets
//            and ships solution fragments;
//   splice   the spine backtrack replays each fragment's forwarded pending
//            list in chain order, fragment solutions are remapped to
//            megatree ids, and the combined solution is canonicalized.
//
// The result is byte-identical — cost AND canonical solution — to
// SolveMultipleNodDp on the same instance, at any shard count and any
// solver-pool width (tests/test_shard.cpp pins the full oracle matrix).
//
// Dispatch runs either in-process (each "worker" is a function call; the
// mode of the oracle tests) or as subprocesses: the coordinator re-execs
// `worker_argv0 --rpt-shard-worker ...` per shard, exchanging slice files
// (rpt-tree v1) and btab files through work_dir. Subprocess workers own
// their DP tables in their own address spaces — per-shard peak RSS covers
// one forest, not the megatree, which is the whole point (bench_shard
// measures it via wait4 rusage).
//
// Worker failures are loud and recoverable: a shard that dies (failpoint
// `shard.worker.crash`, a non-zero exit, a missing or corrupt btab) is
// recorded in ShardedSolveResult::failures and re-dispatched up to
// max_attempts times; exhausting the attempts throws InternalError naming
// the shard. The in-process dispatch boundary catches every exception —
// including fail::InjectedFault, which nothing in the *library* catches;
// the dispatcher is the emulated process boundary, where a worker death of
// any shape collapses to "no boundary table arrived".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/instance.hpp"
#include "model/solution.hpp"
#include "shard/plan.hpp"

namespace rpt::shard {

/// Coordinator knobs.
struct ShardOptions {
  // Planner (see PlanOptions).
  std::uint32_t shards = 2;
  double max_imbalance = 0.25;
  std::uint32_t max_cuts = 4096;

  /// Dispatch attempts per shard per phase (>= 1): a failed shard worker is
  /// re-dispatched until this many attempts are exhausted, then the solve
  /// throws InternalError naming the shard.
  std::uint32_t max_attempts = 1;

  enum class Dispatch : std::uint8_t {
    kInProcess,   ///< workers are function calls (bytes still cross the codec)
    kSubprocess,  ///< workers are re-exec'd processes exchanging files
  };
  Dispatch dispatch = Dispatch::kInProcess;

  /// Subprocess mode: directory for slice/manifest/btab exchange (created if
  /// missing) and the binary to re-exec with --rpt-shard-worker (typically
  /// the coordinator's own argv[0]).
  std::string work_dir;
  std::string worker_argv0;
  /// Subprocess mode: solver-pool width inside each worker.
  std::uint32_t worker_threads = 1;

  /// Subprocess fault injection (bench_smoke's worker-kill leg): when > 0,
  /// the first solve-phase dispatch of shard `crash_shard` gets
  /// --crash-at-cut=N, arming a real _Exit(137) inside that worker.
  std::uint64_t crash_at_cut = 0;
  std::uint32_t crash_shard = 0;
};

/// One recovered-from (or fatal) worker failure, in occurrence order.
struct ShardFailure {
  std::uint32_t shard = 0;
  std::uint32_t attempt = 0;  ///< 1-based attempt that failed
  std::string phase;          ///< "solve" or "extract"
  std::string error;
};

/// Merge/footprint counters of one sharded solve.
struct ShardStats {
  std::uint32_t shard_count = 0;  ///< shards actually used (0 = local fallback)
  std::uint32_t cut_count = 0;
  std::uint32_t spine_nodes = 0;
  std::uint64_t boundary_bytes = 0;        ///< btab bytes shipped, both phases
  std::uint64_t worker_table_entries = 0;  ///< summed across shipped tables
  std::uint64_t worker_convolve_cells = 0;
  std::uint64_t spine_table_entries = 0;   ///< the coordinator's own DP work
  std::uint64_t max_worker_rss_kb = 0;     ///< subprocess mode only (wait4)
};

/// Outcome of a sharded solve.
struct ShardedSolveResult {
  bool feasible = false;
  Solution solution;  ///< canonical, megatree ids; empty when infeasible
  ShardStats stats;
  std::vector<ShardFailure> failures;  ///< every worker failure seen (loud)
};

/// Runs the sharded solve. Requires a NoD instance (no distance constraint).
/// Deterministic in (instance, options) at any solver-pool width; byte-
/// identical to SolveMultipleNodDp in cost and canonical solution. A tree
/// with no cuttable subtree (e.g. a star) falls back to the local unsharded
/// solve with stats.shard_count == 0.
[[nodiscard]] ShardedSolveResult SolveSharded(const Instance& instance,
                                              const ShardOptions& options);

}  // namespace rpt::shard
