// Shard planner: subtree-weight-balanced cuts for the sharded Multiple-NoD
// solve (docs/ARCHITECTURE.md "Sharded solve").
//
// A *cut* is an internal, non-root node; the cut detaches its whole subtree
// from the megatree. Cuts are pairwise disjoint (no cut is an ancestor of
// another), so the remaining *spine* — every node not strictly below a cut —
// is itself a valid tree once each cut reappears in it as a client leaf
// carrying its subtree's demand. Each of the k shards owns a set of cut
// subtrees (a forest), solved in its own process/engine; the spine is merged
// by the coordinator from the shipped boundary tables.
//
// Planning is pure CSR-aggregate arithmetic — SubtreeSize/SubtreeRequests
// reads, no DP work — and fully deterministic: candidate refinement always
// splits the heaviest candidate (ties to the lowest node id), and shard
// assignment is largest-first into the lightest shard (ties to the lowest
// shard index). The weight proxy is subtree_requests + subtree_size, which
// tracks the DP's table footprint (every table is bounded by its subtree
// demand + 1 entries, and there is one table per node).
#pragma once

#include <cstdint>
#include <vector>

#include "tree/tree.hpp"

namespace rpt::shard {

/// One planned cut: the subtree root that detaches, its weight proxy, and
/// the shard that owns it.
struct Cut {
  NodeId node = kInvalidNode;   ///< cut subtree root (internal, non-root)
  std::uint64_t weight = 0;     ///< subtree_requests + subtree_size
  std::uint32_t shard = 0;      ///< owning shard index, < ShardPlan::shard_count
};

/// Planner knobs.
struct PlanOptions {
  /// Requested shard count k (>= 1). The plan uses min(k, cut count) shards.
  std::uint32_t shards = 2;
  /// A candidate subtree heavier than (total_weight / k) * (1 + max_imbalance)
  /// is split into its internal children (the candidate joins the spine).
  double max_imbalance = 0.25;
  /// Refinement stops once this many cuts exist (keeps the spine small).
  std::uint32_t max_cuts = 4096;
};

/// The planned decomposition. `cuts` is sorted ascending by node id;
/// `shard_cuts[s]` lists shard s's cut nodes ascending. shard_count == 0
/// means the tree yielded no cuts (e.g. a star whose root has only client
/// children) — callers fall back to the unsharded solve.
struct ShardPlan {
  std::uint32_t shard_count = 0;
  std::vector<Cut> cuts;
  std::vector<std::vector<NodeId>> shard_cuts;
  std::vector<std::uint64_t> shard_weights;
  std::uint64_t spine_weight = 0;  ///< total weight not covered by any cut
};

/// Plans cuts for `tree`. Deterministic in (tree, options).
[[nodiscard]] ShardPlan PlanShards(const Tree& tree, const PlanOptions& options);

}  // namespace rpt::shard
