// Shard worker: solves the cut subtrees assigned to one shard and exports
// boundary tables / solution fragments in the rpt-btab v1 format.
//
// Two driving modes share the same per-cut core:
//  * in-process — the coordinator calls SolveCut/ExportTable/ExtractFragment
//    directly and keeps engines hot between the phases (the oracle tests'
//    mode: deterministic, no fork, still round-trips every byte through the
//    wire codec);
//  * subprocess — ShardWorkerMain() is re-exec'd by the coordinator as
//    `<binary> --rpt-shard-worker --phase=... --manifest=... --out=...`,
//    reads slice files (rpt-tree v1 text), solves with its OWN engines and
//    arenas in its own address space — the whole point of sharding: each
//    worker's peak RSS covers only its forest's DP tables — and writes one
//    btab file. Any failure exits non-zero after printing to stderr; the
//    coordinator treats a bad exit, a missing file, or a corrupt btab
//    identically (a dead shard) and re-dispatches.
//
// Fault injection: every per-cut solve hits the `shard.worker.crash`
// failpoint (support/failpoint.hpp) before touching the engine; arming it
// with kThrow kills an in-process worker (the coordinator's dispatch
// boundary catches everything, playing the process boundary), arming kCrash
// via --crash-at-cut kills a real subprocess with exit 137.
#pragma once

#include <cstdint>
#include <memory>

#include "multiple/nod_dp_engine.hpp"
#include "shard/boundary_table.hpp"
#include "tree/tree.hpp"

namespace rpt::shard {

/// Failpoint hit once per cut subtree, before its solve (see header).
inline constexpr char kWorkerCrashPoint[] = "shard.worker.crash";

/// argv[1] sentinel: a coordinator re-execs its own binary with this flag to
/// enter worker mode (main() must route to ShardWorkerMain; see rpt_shard).
inline constexpr char kWorkerFlag[] = "--rpt-shard-worker";

/// One solved cut subtree: the slice, the live engine (tables hot for
/// fragment extraction), and the cut's megatree id. Heap-held so the engine's
/// view pointer into the slice tree stays stable across moves.
struct CutSolve {
  NodeId cut = kInvalidNode;
  std::unique_ptr<SubtreeSlice> slice;
  std::unique_ptr<multiple::NodDpEngine> engine;
};

/// Solves one cut subtree (full forward pass over the slice). Hits the
/// shard.worker.crash failpoint first.
[[nodiscard]] CutSolve SolveCut(NodeId cut, SubtreeSlice slice, Requests capacity);

/// Exports the solved cut's boundary table: the slice root's F staircase
/// (byte-identical to the same node's table in an unsharded engine, by the
/// DP's subtree locality) plus worker-side work counters.
[[nodiscard]] BoundaryTable ExportTable(const CutSolve& solve);

/// Reconstructs the cut subtree's solution at the coordinator-assigned
/// budget. Ids are LOCAL slice ids; the forwarded list preserves chain order.
[[nodiscard]] SolutionFragment ExtractFragment(CutSolve& solve, std::uint64_t budget);

/// Subprocess entry point (argv[1] == kWorkerFlag). Flags:
///   --phase=solve|extract   --manifest=PATH  --out=PATH
///   --budgets=PATH (extract)  --crash-at-cut=N (arm kCrash before cut N)
///   --threads=N (solver pool width)
/// Returns 0 on success; prints the error and returns 1 otherwise.
int ShardWorkerMain(int argc, const char* const* argv);

}  // namespace rpt::shard
