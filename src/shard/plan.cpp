#include "shard/plan.hpp"

#include <algorithm>

#include "support/common.hpp"

namespace rpt::shard {

namespace {

std::uint64_t WeightOf(const Tree& tree, NodeId node) {
  return static_cast<std::uint64_t>(tree.SubtreeRequests(node)) + tree.SubtreeSize(node);
}

}  // namespace

ShardPlan PlanShards(const Tree& tree, const PlanOptions& options) {
  RPT_REQUIRE(options.shards >= 1, "PlanShards: shard count must be >= 1");
  RPT_REQUIRE(options.max_imbalance >= 0.0, "PlanShards: max_imbalance must be >= 0");
  RPT_REQUIRE(options.max_cuts >= 1, "PlanShards: max_cuts must be >= 1");

  ShardPlan plan;
  // Candidates start as the root's internal children: clients cannot be cut
  // (a cut must be a valid subtree root), and the root itself must stay on
  // the spine.
  std::vector<NodeId> candidates;
  for (const NodeId child : tree.Children(tree.Root())) {
    if (!tree.IsClient(child)) candidates.push_back(child);
  }
  if (candidates.empty()) return plan;  // star-like: nothing to shard

  // Refinement: while some candidate exceeds the per-shard target by more
  // than the imbalance allowance, replace the heaviest such candidate (ties
  // to the lowest id) with its internal children — the candidate itself and
  // its client children return to the spine. A candidate without internal
  // children cannot be split and is accepted as-is.
  const double target =
      static_cast<double>(WeightOf(tree, tree.Root())) / static_cast<double>(options.shards);
  const double limit = target * (1.0 + options.max_imbalance);
  std::vector<NodeId> accepted;  // over-limit but unsplittable: cut as-is
  while (candidates.size() + accepted.size() < options.max_cuts) {
    std::size_t pick = candidates.size();
    std::uint64_t pick_weight = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const std::uint64_t w = WeightOf(tree, candidates[i]);
      if (static_cast<double>(w) <= limit) continue;
      if (pick == candidates.size() || w > pick_weight ||
          (w == pick_weight && candidates[i] < candidates[pick])) {
        pick = i;
        pick_weight = w;
      }
    }
    if (pick == candidates.size()) break;
    const NodeId heavy = candidates[pick];
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
    std::vector<NodeId> internal_kids;
    for (const NodeId child : tree.Children(heavy)) {
      if (!tree.IsClient(child)) internal_kids.push_back(child);
    }
    if (internal_kids.empty()) {
      accepted.push_back(heavy);  // a leafy hub: nothing below to split off
    } else {
      candidates.insert(candidates.end(), internal_kids.begin(), internal_kids.end());
    }
  }
  candidates.insert(candidates.end(), accepted.begin(), accepted.end());
  std::sort(candidates.begin(), candidates.end());

  plan.cuts.reserve(candidates.size());
  for (const NodeId node : candidates) {
    plan.cuts.push_back(Cut{node, WeightOf(tree, node), 0});
  }
  plan.shard_count = static_cast<std::uint32_t>(
      std::min<std::size_t>(options.shards, plan.cuts.size()));

  // Largest-first (LPT) assignment into the currently lightest shard; ties
  // break to the lowest node id / lowest shard index, so the assignment is a
  // pure function of the plan inputs.
  std::vector<std::size_t> order(plan.cuts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (plan.cuts[a].weight != plan.cuts[b].weight) {
      return plan.cuts[a].weight > plan.cuts[b].weight;
    }
    return plan.cuts[a].node < plan.cuts[b].node;
  });
  plan.shard_weights.assign(plan.shard_count, 0);
  plan.shard_cuts.assign(plan.shard_count, {});
  for (const std::size_t i : order) {
    std::uint32_t lightest = 0;
    for (std::uint32_t s = 1; s < plan.shard_count; ++s) {
      if (plan.shard_weights[s] < plan.shard_weights[lightest]) lightest = s;
    }
    plan.cuts[i].shard = lightest;
    plan.shard_weights[lightest] += plan.cuts[i].weight;
    plan.shard_cuts[lightest].push_back(plan.cuts[i].node);
  }
  for (auto& cuts : plan.shard_cuts) std::sort(cuts.begin(), cuts.end());

  std::uint64_t covered = 0;
  for (const Cut& cut : plan.cuts) covered += cut.weight;
  plan.spine_weight = WeightOf(tree, tree.Root()) - covered;
  return plan;
}

}  // namespace rpt::shard
