#include "shard/worker.hpp"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "support/cli.hpp"
#include "support/failpoint.hpp"
#include "support/thread_pool.hpp"
#include "tree/serialize.hpp"

namespace rpt::shard {

CutSolve SolveCut(NodeId cut, SubtreeSlice slice, Requests capacity) {
  // The failpoint sits before any engine work so an armed crash models a
  // worker dying mid-solve with nothing exported.
  fail::Hit(kWorkerCrashPoint);
  CutSolve solve;
  solve.cut = cut;
  solve.slice = std::make_unique<SubtreeSlice>(std::move(slice));
  solve.engine = std::make_unique<multiple::NodDpEngine>(solve.slice->tree, capacity);
  solve.engine->ComputeAll();
  return solve;
}

BoundaryTable ExportTable(const CutSolve& solve) {
  const multiple::NodDpEngine& engine = *solve.engine;
  BoundaryTable table;
  table.cut = solve.cut;
  table.demand = engine.TotalDemand();
  table.subtree_nodes = static_cast<std::uint32_t>(solve.slice->tree.Size());
  table.table_entries = engine.Work().table_entries;
  table.convolve_cells = engine.Work().convolve_cells;
  table.table = engine.TableOf(solve.slice->tree.Root());
  return table;
}

SolutionFragment ExtractFragment(CutSolve& solve, std::uint64_t budget) {
  auto backtrack = solve.engine->BacktrackWithBudget(static_cast<std::size_t>(budget));
  SolutionFragment fragment;
  fragment.cut = solve.cut;
  fragment.budget = budget;
  fragment.solution = std::move(backtrack.solution);
  fragment.forwarded = std::move(backtrack.forwarded);
  return fragment;
}

namespace {

struct ManifestEntry {
  NodeId cut = kInvalidNode;
  std::string slice_path;
};

struct Manifest {
  Requests capacity = 0;
  std::vector<ManifestEntry> cuts;
};

Manifest ReadManifest(const std::string& path) {
  std::ifstream is(path);
  RPT_REQUIRE(is.good(), "shard worker: cannot open manifest: " + path);
  Manifest manifest;
  std::string header;
  std::getline(is, header);
  RPT_REQUIRE(header == "rpt-shard-manifest v1",
              "shard worker: bad manifest header: " + header);
  std::string key;
  while (is >> key) {
    if (key == "capacity") {
      RPT_REQUIRE(static_cast<bool>(is >> manifest.capacity),
                  "shard worker: malformed capacity line");
    } else if (key == "cut") {
      ManifestEntry entry;
      RPT_REQUIRE(static_cast<bool>(is >> entry.cut >> entry.slice_path),
                  "shard worker: malformed cut line");
      manifest.cuts.push_back(std::move(entry));
    } else {
      throw InvalidArgument("shard worker: unknown manifest key: " + key);
    }
  }
  RPT_REQUIRE(manifest.capacity > 0, "shard worker: manifest needs a positive capacity");
  RPT_REQUIRE(!manifest.cuts.empty(), "shard worker: manifest lists no cuts");
  return manifest;
}

std::vector<std::pair<NodeId, std::uint64_t>> ReadBudgets(const std::string& path) {
  std::ifstream is(path);
  RPT_REQUIRE(is.good(), "shard worker: cannot open budgets: " + path);
  std::string header;
  std::getline(is, header);
  RPT_REQUIRE(header == "rpt-shard-budgets v1", "shard worker: bad budgets header: " + header);
  std::vector<std::pair<NodeId, std::uint64_t>> budgets;
  std::string key;
  while (is >> key) {
    RPT_REQUIRE(key == "budget", "shard worker: unknown budgets key: " + key);
    NodeId cut = kInvalidNode;
    std::uint64_t amount = 0;
    RPT_REQUIRE(static_cast<bool>(is >> cut >> amount), "shard worker: malformed budget line");
    budgets.emplace_back(cut, amount);
  }
  return budgets;
}

SubtreeSlice ReadSlice(const std::string& path) {
  std::ifstream is(path);
  RPT_REQUIRE(is.good(), "shard worker: cannot open slice: " + path);
  // The worker never maps ids itself (fragments ship local ids); to_global
  // stays empty on this side of the wire.
  return SubtreeSlice{ReadTree(is), {}};
}

}  // namespace

int ShardWorkerMain(int argc, const char* const* argv) {
  try {
    RPT_REQUIRE(argc >= 2 && std::string(argv[1]) == kWorkerFlag,
                "shard worker: expected --rpt-shard-worker as the first argument");
    Cli cli("rpt-shard-worker", "shard worker subprocess (driven by the rpt-shard coordinator)");
    cli.AddString("phase", "solve", "worker phase: solve | extract");
    cli.AddString("manifest", "", "per-shard manifest path");
    cli.AddString("budgets", "", "per-cut budgets path (extract phase)");
    cli.AddString("out", "", "output rpt-btab path");
    cli.AddInt("crash-at-cut", 0, "arm shard.worker.crash (real _Exit) before the Nth cut");
    cli.AddInt("threads", 1, "solver-pool width inside this worker");
    // Shift past argv[1]: the sentinel is routing, not a flag.
    std::vector<const char*> args;
    args.push_back(argv[0]);
    for (int i = 2; i < argc; ++i) args.push_back(argv[i]);
    if (!cli.Parse(static_cast<int>(args.size()), args.data())) return 0;

    const std::string phase = cli.GetString("phase");
    const std::string out_path = cli.GetString("out");
    RPT_REQUIRE(!out_path.empty(), "shard worker: --out is required");
    SetSolverThreads(static_cast<std::size_t>(cli.GetUint("threads", 1024)));
    const std::uint64_t crash_at = cli.GetUint("crash-at-cut");
    if (crash_at > 0) fail::Arm(kWorkerCrashPoint, fail::Action::kCrash, crash_at);

    const Manifest manifest = ReadManifest(cli.GetString("manifest"));
    BtabFile btab;
    if (phase == "solve") {
      for (const ManifestEntry& entry : manifest.cuts) {
        CutSolve solve = SolveCut(entry.cut, ReadSlice(entry.slice_path), manifest.capacity);
        btab.tables.push_back(ExportTable(solve));
      }
    } else if (phase == "extract") {
      const auto budgets = ReadBudgets(cli.GetString("budgets"));
      RPT_REQUIRE(budgets.size() == manifest.cuts.size(),
                  "shard worker: budgets do not cover the manifest");
      for (std::size_t i = 0; i < manifest.cuts.size(); ++i) {
        const ManifestEntry& entry = manifest.cuts[i];
        RPT_REQUIRE(budgets[i].first == entry.cut,
                    "shard worker: budget order does not match the manifest");
        // A subprocess extract re-solves the slice: the honest distributed
        // cost (phase-1 tables died with the phase-1 process). The in-process
        // mode keeps engines hot instead.
        CutSolve solve = SolveCut(entry.cut, ReadSlice(entry.slice_path), manifest.capacity);
        btab.fragments.push_back(ExtractFragment(solve, budgets[i].second));
      }
    } else {
      throw InvalidArgument("shard worker: unknown phase: " + phase);
    }
    WriteBtabFile(out_path, btab);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "rpt-shard-worker: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace rpt::shard
