#include "shard/boundary_table.hpp"

#include <fstream>
#include <sstream>

#include "support/common.hpp"
#include "support/crc32.hpp"

namespace rpt::shard {

namespace {

using Cost = multiple::NodDpEngine::Cost;
using CostTable = multiple::NodDpEngine::CostTable;
constexpr Cost kInf = multiple::NodDpEngine::kInfCost;

constexpr std::size_t kMagicBytes = sizeof(kBtabMagic);
constexpr std::size_t kFrameHeaderBytes = 8;  // len u32 + crc u32
constexpr std::uint8_t kKindTable = 1;
constexpr std::uint8_t kKindFragment = 2;
constexpr std::uint32_t kBtabVersion = 1;

void PutU8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void PutU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void PutU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

[[noreturn]] void Fail(const std::string& what) {
  throw InvalidArgument("rpt-btab: " + what);
}

// Bounds-checked little-endian cursor. Every decode failure — underrun,
// overrun, bad field — is InvalidArgument: a btab either loads exactly or
// loudly refuses, there is no partial result to hand back.
class Cursor {
 public:
  Cursor(const char* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t U8() {
    Need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t U32() {
    Need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t U64() {
    Need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
    pos_ += 8;
    return v;
  }
  [[nodiscard]] bool Exhausted() const { return pos_ == size_; }

 private:
  void Need(std::size_t n) const {
    if (size_ - pos_ < n) Fail("payload underruns its frame");
  }
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void AppendFramed(std::string& out, const std::string& payload) {
  RPT_CHECK(payload.size() <= kMaxBtabRecordBytes);
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  PutU32(out, support::Crc32(payload.data(), payload.size()));
  out.append(payload);
}

std::string EncodeTablePayload(const BoundaryTable& table) {
  RPT_REQUIRE(table.table.size() == table.demand + 1,
              "rpt-btab: table size must be demand + 1");
  RPT_REQUIRE(table.table.back() < kInf, "rpt-btab: table needs a finite entry");
  // Cost-domain compression: the staircase's inverse, exactly the DP's
  // internal form (see Staircase::BuildFrom in nod_dp_engine.cpp).
  std::size_t f = 0;
  while (table.table[f] >= kInf) ++f;
  const Cost vmax = table.table[f];
  const Cost vmin = table.table.back();
  std::vector<std::uint32_t> inv(static_cast<std::size_t>(vmax - vmin) + 1,
                                 static_cast<std::uint32_t>(f));
  Cost cur = vmax;
  for (std::size_t u = f + 1; u < table.table.size(); ++u) {
    while (cur > table.table[u]) {
      --cur;
      inv[cur - vmin] = static_cast<std::uint32_t>(u);
    }
  }

  std::string payload;
  PutU8(payload, kKindTable);
  PutU32(payload, table.cut);
  PutU64(payload, table.demand);
  PutU32(payload, table.subtree_nodes);
  PutU64(payload, table.table_entries);
  PutU64(payload, table.convolve_cells);
  PutU32(payload, vmin);
  PutU32(payload, vmax);
  for (const std::uint32_t v : inv) PutU32(payload, v);
  return payload;
}

void DecodeTablePayload(Cursor& cur, BtabFile& file) {
  BoundaryTable table;
  table.cut = cur.U32();
  table.demand = cur.U64();
  if (table.demand > kMaxBtabDemand) Fail("table demand exceeds the sanity cap");
  table.subtree_nodes = cur.U32();
  table.table_entries = cur.U64();
  table.convolve_cells = cur.U64();
  const auto vmin = static_cast<Cost>(cur.U32());
  const auto vmax = static_cast<Cost>(cur.U32());
  if (vmin > vmax || vmax >= kInf) Fail("table cost range is invalid");
  if (static_cast<std::uint64_t>(vmax) - vmin >= kMaxBtabRecordBytes / 4) {
    Fail("table cost range is implausible for one record");
  }
  std::vector<std::uint32_t> inv(static_cast<std::size_t>(vmax - vmin) + 1);
  for (auto& v : inv) {
    v = cur.U32();
    if (v > table.demand) Fail("table staircase index exceeds the demand domain");
  }
  for (std::size_t c = 1; c < inv.size(); ++c) {
    if (inv[c] > inv[c - 1]) Fail("table staircase is not monotone");
  }
  if (!cur.Exhausted()) Fail("table payload overruns its fields");

  // Materialize — the mirror of the DP convolution's output loop, so the
  // round trip is exact entry for entry.
  table.table.assign(static_cast<std::size_t>(table.demand) + 1, kInf);
  std::size_t hi = table.table.size();
  for (Cost c = vmin; c <= vmax && hi > 0; ++c) {
    const std::size_t u = inv[c - vmin];
    for (std::size_t k = u; k < hi; ++k) table.table[k] = c;
    hi = std::min(hi, static_cast<std::size_t>(u));
  }
  if (table.table.back() != vmin) Fail("table staircase does not reach its minimum");
  file.tables.push_back(std::move(table));
}

std::string EncodeFragmentPayload(const SolutionFragment& fragment) {
  std::string payload;
  PutU8(payload, kKindFragment);
  PutU32(payload, fragment.cut);
  PutU64(payload, fragment.budget);
  PutU32(payload, static_cast<std::uint32_t>(fragment.solution.replicas.size()));
  for (const NodeId replica : fragment.solution.replicas) PutU32(payload, replica);
  PutU32(payload, static_cast<std::uint32_t>(fragment.solution.assignment.size()));
  for (const ServiceEntry& entry : fragment.solution.assignment) {
    PutU32(payload, entry.client);
    PutU32(payload, entry.server);
    PutU64(payload, entry.amount);
  }
  PutU32(payload, static_cast<std::uint32_t>(fragment.forwarded.size()));
  for (const auto& [client, amount] : fragment.forwarded) {
    PutU32(payload, client);
    PutU64(payload, amount);
  }
  return payload;
}

void DecodeFragmentPayload(Cursor& cur, BtabFile& file) {
  SolutionFragment fragment;
  fragment.cut = cur.U32();
  fragment.budget = cur.U64();
  const std::uint32_t replica_count = cur.U32();
  fragment.solution.replicas.reserve(replica_count);
  for (std::uint32_t i = 0; i < replica_count; ++i) {
    fragment.solution.replicas.push_back(cur.U32());
  }
  const std::uint32_t entry_count = cur.U32();
  fragment.solution.assignment.reserve(entry_count);
  for (std::uint32_t i = 0; i < entry_count; ++i) {
    ServiceEntry entry;
    entry.client = cur.U32();
    entry.server = cur.U32();
    entry.amount = cur.U64();
    fragment.solution.assignment.push_back(entry);
  }
  const std::uint32_t fwd_count = cur.U32();
  fragment.forwarded.reserve(fwd_count);
  for (std::uint32_t i = 0; i < fwd_count; ++i) {
    const NodeId client = cur.U32();
    const Requests amount = cur.U64();
    fragment.forwarded.emplace_back(client, amount);
  }
  if (!cur.Exhausted()) Fail("fragment payload overruns its fields");
  file.fragments.push_back(std::move(fragment));
}

}  // namespace

std::string EncodeBtab(const BtabFile& file) {
  std::string body;
  for (const BoundaryTable& table : file.tables) {
    AppendFramed(body, EncodeTablePayload(table));
  }
  for (const SolutionFragment& fragment : file.fragments) {
    AppendFramed(body, EncodeFragmentPayload(fragment));
  }

  std::string header;
  PutU32(header, kBtabVersion);
  PutU32(header, static_cast<std::uint32_t>(file.tables.size() + file.fragments.size()));
  PutU64(header, body.size());

  std::string out(kBtabMagic, kMagicBytes);
  AppendFramed(out, header);
  out.append(body);
  return out;
}

BtabFile DecodeBtab(std::string_view bytes) {
  if (bytes.size() < kMagicBytes || bytes.compare(0, kMagicBytes, kBtabMagic, kMagicBytes) != 0) {
    Fail("bad magic");
  }
  std::size_t pos = kMagicBytes;
  const auto read_frame = [&](std::string_view what) -> std::string_view {
    if (bytes.size() - pos < kFrameHeaderBytes) Fail(std::string(what) + " frame is truncated");
    Cursor head(bytes.data() + pos, kFrameHeaderBytes);
    const std::uint32_t len = head.U32();
    const std::uint32_t crc = head.U32();
    if (len > kMaxBtabRecordBytes) Fail(std::string(what) + " frame length is implausible");
    if (bytes.size() - pos - kFrameHeaderBytes < len) {
      Fail(std::string(what) + " payload is truncated");
    }
    const std::string_view payload = bytes.substr(pos + kFrameHeaderBytes, len);
    if (support::Crc32(payload.data(), payload.size()) != crc) {
      Fail(std::string(what) + " payload fails its CRC");
    }
    pos += kFrameHeaderBytes + len;
    return payload;
  };

  const std::string_view header = read_frame("header");
  Cursor head(header.data(), header.size());
  const std::uint32_t version = head.U32();
  if (version != kBtabVersion) Fail("unsupported version");
  const std::uint32_t record_count = head.U32();
  const std::uint64_t body_bytes = head.U64();
  if (!head.Exhausted()) Fail("header payload overruns its fields");
  if (bytes.size() - pos != body_bytes) Fail("body byte count does not match the header");

  BtabFile file;
  for (std::uint32_t i = 0; i < record_count; ++i) {
    const std::string_view payload = read_frame("record");
    if (payload.empty()) Fail("record payload is empty");
    Cursor cur(payload.data(), payload.size());
    const std::uint8_t kind = cur.U8();
    if (kind == kKindTable) {
      DecodeTablePayload(cur, file);
    } else if (kind == kKindFragment) {
      DecodeFragmentPayload(cur, file);
    } else {
      Fail("unknown record kind");
    }
  }
  if (pos != bytes.size()) Fail("trailing bytes after the last record");
  return file;
}

void WriteBtabFile(const std::string& path, const BtabFile& file) {
  const std::string bytes = EncodeBtab(file);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  RPT_REQUIRE(os.good(), "rpt-btab: cannot open for writing: " + path);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.flush();
  RPT_REQUIRE(os.good(), "rpt-btab: write failed: " + path);
}

BtabFile ReadBtabFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  RPT_REQUIRE(is.good(), "rpt-btab: cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  RPT_REQUIRE(!is.bad(), "rpt-btab: read failed: " + path);
  return DecodeBtab(buffer.str());
}

}  // namespace rpt::shard
