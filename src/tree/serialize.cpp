#include "tree/serialize.hpp"

#include <charconv>
#include <ostream>
#include <sstream>
#include <string_view>

namespace rpt {

void WriteTree(std::ostream& os, const Tree& tree) {
  os << "rpt-tree v1\n" << tree.Size() << "\n";
  for (NodeId id = 0; id < tree.Size(); ++id) {
    os << id << ' ';
    if (tree.Parent(id) == kInvalidNode) {
      os << "- inf";
    } else {
      os << tree.Parent(id) << ' ' << tree.DistToParent(id);
    }
    os << ' ' << (tree.IsClient(id) ? 'C' : 'I') << ' ' << tree.RequestsOf(id) << '\n';
  }
}

std::string TreeToString(const Tree& tree) {
  std::ostringstream os;
  WriteTree(os, tree);
  return os.str();
}

namespace {

// Reads the next non-comment, non-blank line.
bool NextLine(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    return true;
  }
  return false;
}

std::uint64_t ParseU64(std::string_view token, const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  RPT_REQUIRE(ec == std::errc{} && ptr == token.data() + token.size(),
              std::string("ReadTree: malformed ") + what);
  return value;
}

}  // namespace

Tree ReadTree(std::istream& is) {
  std::string line;
  RPT_REQUIRE(NextLine(is, line), "ReadTree: empty input");
  {
    std::istringstream header(line);
    std::string magic, version;
    header >> magic >> version;
    RPT_REQUIRE(magic == "rpt-tree" && version == "v1", "ReadTree: bad header: " + line);
  }
  RPT_REQUIRE(NextLine(is, line), "ReadTree: missing node count");
  const std::uint64_t n = ParseU64(line, "node count");
  RPT_REQUIRE(n >= 1, "ReadTree: node count must be >= 1");

  TreeBuilder builder;
  builder.Reserve(n);
  for (std::uint64_t expected = 0; expected < n; ++expected) {
    RPT_REQUIRE(NextLine(is, line), "ReadTree: truncated node list");
    std::istringstream row(line);
    std::string id_tok, parent_tok, delta_tok, kind_tok, req_tok;
    row >> id_tok >> parent_tok >> delta_tok >> kind_tok >> req_tok;
    RPT_REQUIRE(!req_tok.empty(), "ReadTree: malformed node line: " + line);
    RPT_REQUIRE(ParseU64(id_tok, "node id") == expected, "ReadTree: ids must be dense in order");
    const Requests requests = ParseU64(req_tok, "requests");
    if (parent_tok == "-") {
      RPT_REQUIRE(expected == 0, "ReadTree: only node 0 may be the root");
      RPT_REQUIRE(delta_tok == "inf", "ReadTree: root delta must be inf");
      RPT_REQUIRE(kind_tok == "I", "ReadTree: root must be internal");
      builder.AddRoot();
      continue;
    }
    const auto parent = static_cast<NodeId>(ParseU64(parent_tok, "parent id"));
    RPT_REQUIRE(delta_tok != "inf", "ReadTree: non-root delta must be finite");
    const Distance delta = ParseU64(delta_tok, "delta");
    if (kind_tok == "I") {
      RPT_REQUIRE(requests == 0, "ReadTree: internal nodes carry no requests");
      builder.AddInternal(parent, delta);
    } else if (kind_tok == "C") {
      builder.AddClient(parent, delta, requests);
    } else {
      detail::ThrowInvalid("ReadTree: node kind must be I or C: " + line);
    }
  }
  return builder.Build();
}

Tree TreeFromString(const std::string& text) {
  std::istringstream is(text);
  return ReadTree(is);
}

void WriteOverlay(std::ostream& os, const TreeOverlay& overlay) {
  const std::size_t n = overlay.Size();
  // child_rank from the live child lists — the columns store parent pointers
  // only; rank is what preserves post-migration child order on the wire.
  std::vector<std::uint32_t> rank(n, 0);
  for (NodeId id = 0; id < n; ++id) {
    if (!overlay.IsLive(id) || overlay.IsClient(id)) continue;
    const auto kids = overlay.Children(id);
    for (std::size_t c = 0; c < kids.size(); ++c) rank[kids[c]] = static_cast<std::uint32_t>(c);
  }
  os << "rpt-overlay v1\n" << n << "\n";
  for (NodeId id = 0; id < n; ++id) {
    if (!overlay.IsLive(id)) {
      os << id << " 0 - inf I 0 0\n";  // canonical tombstone, stale columns ignored
      continue;
    }
    os << id << " 1 ";
    if (id == overlay.Root()) {
      os << "- inf";
    } else {
      os << overlay.Parent(id) << ' ' << overlay.DistToParent(id);
    }
    os << ' ' << (overlay.IsClient(id) ? 'C' : 'I') << ' ' << overlay.RequestsOf(id) << ' '
       << rank[id] << '\n';
  }
}

std::string OverlayToString(const TreeOverlay& overlay) {
  std::ostringstream os;
  WriteOverlay(os, overlay);
  return os.str();
}

TreeOverlay ReadOverlay(std::istream& is) {
  std::string line;
  RPT_REQUIRE(NextLine(is, line), "ReadOverlay: empty input");
  {
    std::istringstream header(line);
    std::string magic, version;
    header >> magic >> version;
    RPT_REQUIRE(magic == "rpt-overlay" && version == "v1", "ReadOverlay: bad header: " + line);
  }
  RPT_REQUIRE(NextLine(is, line), "ReadOverlay: missing slot count");
  const std::uint64_t n = ParseU64(line, "slot count");
  RPT_REQUIRE(n >= 1, "ReadOverlay: slot count must be >= 1");
  RPT_REQUIRE(n < kInvalidNode, "ReadOverlay: too many slots");

  std::vector<NodeKind> kind(n, NodeKind::kInternal);
  std::vector<NodeId> parent(n, kInvalidNode);
  std::vector<Distance> delta(n, 0);
  std::vector<Requests> requests(n, 0);
  std::vector<std::uint8_t> alive(n, 0);
  std::vector<std::uint32_t> child_rank(n, 0);
  for (std::uint64_t expected = 0; expected < n; ++expected) {
    RPT_REQUIRE(NextLine(is, line), "ReadOverlay: truncated slot list");
    std::istringstream row(line);
    std::string id_tok, alive_tok, parent_tok, delta_tok, kind_tok, req_tok, rank_tok;
    row >> id_tok >> alive_tok >> parent_tok >> delta_tok >> kind_tok >> req_tok >> rank_tok;
    RPT_REQUIRE(!rank_tok.empty(), "ReadOverlay: malformed slot line: " + line);
    RPT_REQUIRE(ParseU64(id_tok, "slot id") == expected,
                "ReadOverlay: ids must be dense in order");
    const std::uint64_t alive_bit = ParseU64(alive_tok, "alive flag");
    RPT_REQUIRE(alive_bit <= 1, "ReadOverlay: alive flag must be 0 or 1");
    if (alive_bit == 0) continue;  // FromColumns ignores dead slots' columns
    alive[expected] = 1;
    requests[expected] = ParseU64(req_tok, "requests");
    child_rank[expected] = static_cast<std::uint32_t>(ParseU64(rank_tok, "child rank"));
    if (kind_tok == "I") {
      kind[expected] = NodeKind::kInternal;
    } else if (kind_tok == "C") {
      kind[expected] = NodeKind::kClient;
    } else {
      detail::ThrowInvalid("ReadOverlay: node kind must be I or C: " + line);
    }
    if (parent_tok == "-") {
      RPT_REQUIRE(expected == 0, "ReadOverlay: only slot 0 may be the root");
      RPT_REQUIRE(delta_tok == "inf", "ReadOverlay: root delta must be inf");
      continue;  // parent stays kInvalidNode, delta is overridden by FromColumns
    }
    RPT_REQUIRE(delta_tok != "inf", "ReadOverlay: non-root delta must be finite");
    parent[expected] = static_cast<NodeId>(ParseU64(parent_tok, "parent id"));
    delta[expected] = ParseU64(delta_tok, "delta");
  }
  return TreeOverlay::FromColumns(kind, parent, delta, requests, alive, child_rank);
}

TreeOverlay OverlayFromString(const std::string& text) {
  std::istringstream is(text);
  return ReadOverlay(is);
}

void WriteDot(std::ostream& os, const Tree& tree, const std::string& graph_name) {
  os << "digraph " << graph_name << " {\n  rankdir=TB;\n";
  for (NodeId id = 0; id < tree.Size(); ++id) {
    if (tree.IsClient(id)) {
      os << "  n" << id << " [shape=box,label=\"c" << id << "\\nr=" << tree.RequestsOf(id)
         << "\"];\n";
    } else {
      os << "  n" << id << " [shape=circle,label=\"n" << id << "\"];\n";
    }
  }
  for (NodeId id = 1; id < tree.Size(); ++id) {
    os << "  n" << tree.Parent(id) << " -> n" << id << " [label=\"" << tree.DistToParent(id)
       << "\"];\n";
  }
  os << "}\n";
}

}  // namespace rpt
