#include "tree/tree_overlay.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

namespace rpt {

namespace {

// Mutators validate the same bound TreeBuilder enforces, so Compact() can
// never fail structurally.
constexpr Distance kDistRootBound = kNoDistanceLimit / 2;

}  // namespace

TreeOverlay::TreeOverlay(const Tree& base) {
  const std::size_t n = base.Size();
  kind_.resize(n);
  parent_.resize(n);
  delta_.resize(n);
  requests_.resize(n);
  alive_.assign(n, 1);
  depth_.resize(n);
  dist_root_.resize(n);
  subtree_requests_.resize(n);
  subtree_size_.resize(n);
  base_children_begin_.resize(n + 1);
  base_children_flat_.resize(n == 0 ? 0 : n - 1);
  base_size_ = n;

  std::uint32_t flat = 0;
  for (NodeId id = 0; id < n; ++id) {
    kind_[id] = base.Kind(id);
    parent_[id] = base.Parent(id);
    delta_[id] = base.DistToParent(id);
    requests_[id] = base.RequestsOf(id);
    depth_[id] = base.Depth(id);
    dist_root_[id] = base.DistFromRoot(id);
    subtree_requests_[id] = base.SubtreeRequests(id);
    subtree_size_[id] = base.SubtreeSize(id);
    base_children_begin_[id] = flat;
    for (const NodeId child : base.Children(id)) base_children_flat_[flat++] = child;
    max_depth_ = std::max(max_depth_, depth_[id]);
  }
  base_children_begin_[n] = flat;
  total_requests_ = base.TotalRequests();
  live_count_ = n;
  live_client_count_ = base.ClientCount();
}

std::span<const NodeId> TreeOverlay::Children(NodeId id) const {
  Check(id);
  if (const auto it = patched_children_.find(id); it != patched_children_.end()) {
    return it->second;
  }
  if (id < base_size_) {
    return {base_children_flat_.data() + base_children_begin_[id],
            base_children_flat_.data() + base_children_begin_[id + 1]};
  }
  return {};  // appended leaf: never had children, never patched
}

std::vector<NodeId>& TreeOverlay::PatchChildren(NodeId id) {
  const auto it = patched_children_.find(id);
  if (it != patched_children_.end()) return it->second;
  std::vector<NodeId>& list = patched_children_[id];
  if (id < base_size_) {
    list.assign(base_children_flat_.begin() + base_children_begin_[id],
                base_children_flat_.begin() + base_children_begin_[id + 1]);
  }
  return list;
}

void TreeOverlay::RemoveChild(NodeId parent, NodeId child) {
  std::vector<NodeId>& list = PatchChildren(parent);
  const auto it = std::find(list.begin(), list.end(), child);
  RPT_CHECK(it != list.end());
  list.erase(it);
}

std::span<const NodeId> TreeOverlay::Clients() const {
  if (clients_dirty_) {
    clients_cache_.clear();
    clients_cache_.reserve(live_client_count_);
    for (NodeId id = 0; id < Size(); ++id) {
      if (alive_[id] != 0 && kind_[id] == NodeKind::kClient) clients_cache_.push_back(id);
    }
    clients_dirty_ = false;
  }
  return clients_cache_;
}

std::span<const NodeId> TreeOverlay::PostOrder() const {
  if (post_order_dirty_) {
    post_order_cache_.clear();
    post_order_cache_.reserve(live_count_);
    // Iterative DFS; a frame is (node, next child slot to descend into).
    std::vector<std::pair<NodeId, std::uint32_t>> stack;
    stack.emplace_back(Root(), 0);
    while (!stack.empty()) {
      auto& [node, slot] = stack.back();
      const std::span<const NodeId> children = Children(node);
      if (slot < children.size()) {
        stack.emplace_back(children[slot++], 0);
      } else {
        post_order_cache_.push_back(node);
        stack.pop_back();
      }
    }
    post_order_dirty_ = false;
  }
  return post_order_cache_;
}

bool TreeOverlay::IsAncestorOrSelf(NodeId ancestor, NodeId node) const {
  Check(ancestor);
  Check(node);
  RPT_REQUIRE(alive_[ancestor] != 0 && alive_[node] != 0,
              "TreeOverlay: ancestor test on a dead node");
  // Depths are maintained eagerly, so the walk can stop early.
  while (depth_[node] > depth_[ancestor]) node = parent_[node];
  return node == ancestor;
}

void TreeOverlay::CollectSubtree(NodeId root, std::vector<NodeId>& out) const {
  out.clear();
  out.push_back(root);
  for (std::size_t head = 0; head < out.size(); ++head) {
    for (const NodeId child : Children(out[head])) out.push_back(child);
  }
}

void TreeOverlay::BumpAggregates(NodeId node, std::int64_t size_delta,
                                 std::int64_t request_delta) {
  for (NodeId at = node;; at = parent_[at]) {
    subtree_size_ [at] = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(subtree_size_[at]) + size_delta);
    subtree_requests_[at] = static_cast<Requests>(
        static_cast<std::int64_t>(subtree_requests_[at]) + request_delta);
    if (at == Root()) break;
  }
}

void TreeOverlay::CheckDistBound(NodeId root, Distance new_dist) const {
  RPT_REQUIRE(new_dist < kDistRootBound, "TreeOverlay: root distance overflow");
  std::vector<std::pair<NodeId, Distance>> queue;
  queue.emplace_back(root, new_dist);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const auto [node, dist] = queue[head];
    for (const NodeId child : Children(node)) {
      const Distance child_dist = dist + delta_[child];
      RPT_REQUIRE(child_dist < kDistRootBound, "TreeOverlay: root distance overflow");
      queue.emplace_back(child, child_dist);
    }
  }
}

void TreeOverlay::RefreshDepths(NodeId root) {
  std::vector<NodeId> queue{root};
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId node = queue[head];
    for (const NodeId child : Children(node)) {
      depth_[child] = depth_[node] + 1;
      dist_root_[child] = dist_root_[node] + delta_[child];
      RPT_CHECK(dist_root_[child] < kDistRootBound);  // CheckDistBound ran first
      queue.push_back(child);
    }
  }
}

void TreeOverlay::RecomputeMaxDepth() {
  max_depth_ = 0;
  for (NodeId id = 0; id < Size(); ++id) {
    if (alive_[id] != 0) max_depth_ = std::max(max_depth_, depth_[id]);
  }
}

NodeId TreeOverlay::AttachSubtree(NodeId parent, const SubtreeSpec& spec) {
  Check(parent);
  RPT_REQUIRE(alive_[parent] != 0, "TreeOverlay::AttachSubtree: parent is dead");
  RPT_REQUIRE(kind_[parent] == NodeKind::kInternal,
              "TreeOverlay::AttachSubtree: parent must be internal");
  const std::size_t count = spec.nodes.size();
  RPT_REQUIRE(count > 0, "TreeOverlay::AttachSubtree: empty spec");
  RPT_REQUIRE(Size() + count < kInvalidNode, "TreeOverlay::AttachSubtree: too many nodes");

  // Full dry-run validation: local structure, edge bounds, distance bound,
  // and demand overflow — nothing is mutated until all of it passes.
  std::vector<std::uint32_t> local_children(count, 0);
  std::vector<Distance> local_dist(count, 0);
  Requests spec_requests = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const SubtreeSpec::Node& node = spec.nodes[i];
    RPT_REQUIRE(node.delta <= kDistanceCap,
                "TreeOverlay::AttachSubtree: edge length exceeds kDistanceCap");
    if (i == 0) {
      local_dist[0] = dist_root_[parent] + node.delta;
    } else {
      RPT_REQUIRE(node.parent < i, "TreeOverlay::AttachSubtree: spec parent must precede child");
      RPT_REQUIRE(spec.nodes[node.parent].kind == NodeKind::kInternal,
                  "TreeOverlay::AttachSubtree: spec parent must be internal");
      ++local_children[node.parent];
      local_dist[i] = local_dist[node.parent] + node.delta;
    }
    RPT_REQUIRE(local_dist[i] < kDistRootBound, "TreeOverlay::AttachSubtree: root distance overflow");
    if (node.kind == NodeKind::kClient) {
      RPT_REQUIRE(spec_requests <= std::numeric_limits<Requests>::max() - node.requests,
                  "TreeOverlay::AttachSubtree: request total overflow");
      spec_requests += node.requests;
    } else {
      RPT_REQUIRE(node.requests == 0,
                  "TreeOverlay::AttachSubtree: internal nodes issue no requests");
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    RPT_REQUIRE(spec.nodes[i].kind == NodeKind::kClient || local_children[i] > 0,
                "TreeOverlay::AttachSubtree: internal spec node without children");
  }
  RPT_REQUIRE(total_requests_ <= std::numeric_limits<Requests>::max() - spec_requests,
              "TreeOverlay::AttachSubtree: request total overflow");

  // Commit. New ids are appended in spec order; the subtree root lands at the
  // END of the parent's child list (insertion order, like TreeBuilder).
  const auto new_base = static_cast<NodeId>(Size());
  std::size_t new_clients = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const SubtreeSpec::Node& node = spec.nodes[i];
    const NodeId id = new_base + static_cast<NodeId>(i);
    const NodeId gparent = i == 0 ? parent : new_base + node.parent;
    kind_.push_back(node.kind);
    parent_.push_back(gparent);
    delta_.push_back(node.delta);
    requests_.push_back(node.kind == NodeKind::kClient ? node.requests : 0);
    alive_.push_back(1);
    depth_.push_back(depth_[gparent] + 1);
    dist_root_.push_back(local_dist[i]);
    subtree_size_.push_back(1);
    subtree_requests_.push_back(node.kind == NodeKind::kClient ? node.requests : 0);
    PatchChildren(gparent).push_back(id);
    max_depth_ = std::max(max_depth_, depth_[id]);
    if (node.kind == NodeKind::kClient) ++new_clients;
  }
  // Fold spec-local aggregates bottom-up (spec parents precede children).
  for (std::size_t i = count; i-- > 1;) {
    const NodeId id = new_base + static_cast<NodeId>(i);
    const NodeId gparent = new_base + spec.nodes[i].parent;
    subtree_size_[gparent] += subtree_size_[id];
    subtree_requests_[gparent] += subtree_requests_[id];
  }
  BumpAggregates(parent, static_cast<std::int64_t>(count),
                 static_cast<std::int64_t>(spec_requests));
  total_requests_ += spec_requests;
  live_count_ += count;
  live_client_count_ += new_clients;
  ++topology_version_;
  MarkCachesDirty();
  return new_base;
}

void TreeOverlay::DetachSubtree(NodeId root, std::vector<NodeId>* removed) {
  Check(root);
  RPT_REQUIRE(alive_[root] != 0, "TreeOverlay::DetachSubtree: node is dead");
  RPT_REQUIRE(root != Root(), "TreeOverlay::DetachSubtree: cannot detach the root");
  const NodeId parent = parent_[root];
  RPT_REQUIRE(Children(parent).size() >= 2,
              "TreeOverlay::DetachSubtree: would leave an internal node childless");

  std::vector<NodeId> subtree;
  CollectSubtree(root, subtree);
  Requests detached_requests = 0;
  std::size_t detached_clients = 0;
  for (const NodeId id : subtree) {
    alive_[id] = 0;
    if (kind_[id] == NodeKind::kClient) {
      detached_requests += requests_[id];
      ++detached_clients;
    }
    patched_children_.erase(id);  // dead lists are unreachable; free them
  }
  RemoveChild(parent, root);
  BumpAggregates(parent, -static_cast<std::int64_t>(subtree.size()),
                 -static_cast<std::int64_t>(detached_requests));
  total_requests_ -= detached_requests;
  live_count_ -= subtree.size();
  live_client_count_ -= detached_clients;
  RecomputeMaxDepth();
  ++topology_version_;
  MarkCachesDirty();
  if (removed != nullptr) {
    std::sort(subtree.begin(), subtree.end());
    *removed = std::move(subtree);
  }
}

void TreeOverlay::MigrateSubtree(NodeId root, NodeId new_parent, Distance new_delta) {
  Check(root);
  Check(new_parent);
  RPT_REQUIRE(alive_[root] != 0, "TreeOverlay::MigrateSubtree: node is dead");
  RPT_REQUIRE(root != Root(), "TreeOverlay::MigrateSubtree: cannot migrate the root");
  RPT_REQUIRE(alive_[new_parent] != 0, "TreeOverlay::MigrateSubtree: new parent is dead");
  RPT_REQUIRE(kind_[new_parent] == NodeKind::kInternal,
              "TreeOverlay::MigrateSubtree: new parent must be internal");
  RPT_REQUIRE(!IsAncestorOrSelf(root, new_parent),
              "TreeOverlay::MigrateSubtree: new parent lies inside the moved subtree");
  RPT_REQUIRE(new_delta <= kDistanceCap,
              "TreeOverlay::MigrateSubtree: edge length exceeds kDistanceCap");
  const NodeId old_parent = parent_[root];
  RPT_REQUIRE(Children(old_parent).size() >= 2,
              "TreeOverlay::MigrateSubtree: would leave an internal node childless");
  CheckDistBound(root, dist_root_[new_parent] + new_delta);

  RemoveChild(old_parent, root);
  PatchChildren(new_parent).push_back(root);  // insertion order: re-homed last
  const auto size = static_cast<std::int64_t>(subtree_size_[root]);
  const auto requests = static_cast<std::int64_t>(subtree_requests_[root]);
  BumpAggregates(old_parent, -size, -requests);
  BumpAggregates(new_parent, size, requests);
  parent_[root] = new_parent;
  delta_[root] = new_delta;
  depth_[root] = depth_[new_parent] + 1;
  dist_root_[root] = dist_root_[new_parent] + new_delta;
  RefreshDepths(root);
  RecomputeMaxDepth();
  ++topology_version_;
  MarkCachesDirty();
}

void TreeOverlay::SetLinkDelta(NodeId node, Distance delta) {
  Check(node);
  RPT_REQUIRE(alive_[node] != 0, "TreeOverlay::SetLinkDelta: node is dead");
  RPT_REQUIRE(node != Root(), "TreeOverlay::SetLinkDelta: the root has no parent link");
  RPT_REQUIRE(delta <= kDistanceCap, "TreeOverlay::SetLinkDelta: edge length exceeds kDistanceCap");
  CheckDistBound(node, dist_root_[parent_[node]] + delta);
  delta_[node] = delta;
  dist_root_[node] = dist_root_[parent_[node]] + delta;
  RefreshDepths(node);
  ++topology_version_;
  // Node set and child order are untouched: the lazy caches stay valid.
}

void TreeOverlay::SetRequests(NodeId client, Requests value) {
  Check(client);
  RPT_REQUIRE(alive_[client] != 0, "TreeOverlay::SetRequests: node is dead");
  RPT_REQUIRE(kind_[client] == NodeKind::kClient,
              "TreeOverlay::SetRequests: only clients issue requests");
  const Requests old = requests_[client];
  if (value == old) return;
  if (value > old) {
    const Requests diff = value - old;
    RPT_REQUIRE(total_requests_ <= std::numeric_limits<Requests>::max() - diff,
                "TreeOverlay::SetRequests: request total overflow");
    for (NodeId at = client;; at = parent_[at]) {
      subtree_requests_[at] += diff;
      if (at == Root()) break;
    }
    total_requests_ += diff;
  } else {
    const Requests diff = old - value;
    for (NodeId at = client;; at = parent_[at]) {
      subtree_requests_[at] -= diff;
      if (at == Root()) break;
    }
    total_requests_ -= diff;
  }
  requests_[client] = value;
}

TreeOverlay::CompactResult TreeOverlay::Compact() const {
  const std::size_t n = Size();
  // Greedy min-old-id topological order with sibling chaining: the heap
  // holds nodes whose parent is assigned AND whose previous sibling is
  // assigned. Popping always takes the smallest eligible old id, so a clean
  // overlay (ascending-id children, no mutations) compacts to the identity
  // remap; after mutations, per-parent child order is preserved exactly —
  // children receive ascending new ids in overlay child order, which is the
  // order TreeBuilder freezes into the children spans.
  std::vector<NodeId> first_child(n, kInvalidNode);
  std::vector<NodeId> next_sibling(n, kInvalidNode);
  for (NodeId id = 0; id < n; ++id) {
    if (alive_[id] == 0) continue;
    const std::span<const NodeId> children = Children(id);
    if (children.empty()) continue;
    first_child[id] = children[0];
    for (std::size_t i = 0; i + 1 < children.size(); ++i) {
      next_sibling[children[i]] = children[i + 1];
    }
  }

  std::vector<NodeId> remap(n, kInvalidNode);
  TreeBuilder builder;
  builder.Reserve(live_count_);
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
  ready.push(Root());
  std::size_t assigned = 0;
  while (!ready.empty()) {
    const NodeId old_id = ready.top();
    ready.pop();
    NodeId new_id;
    if (old_id == Root()) {
      new_id = builder.AddRoot();
    } else if (kind_[old_id] == NodeKind::kClient) {
      new_id = builder.AddClient(remap[parent_[old_id]], delta_[old_id], requests_[old_id]);
    } else {
      new_id = builder.AddInternal(remap[parent_[old_id]], delta_[old_id]);
    }
    remap[old_id] = new_id;
    ++assigned;
    if (first_child[old_id] != kInvalidNode) ready.push(first_child[old_id]);
    if (old_id != Root() && next_sibling[old_id] != kInvalidNode) {
      ready.push(next_sibling[old_id]);
    }
  }
  RPT_CHECK(assigned == live_count_);
  return CompactResult{builder.Build(), std::move(remap)};
}

TreeOverlay TreeOverlay::FromColumns(std::span<const NodeKind> kind,
                                     std::span<const NodeId> parent,
                                     std::span<const Distance> delta,
                                     std::span<const Requests> requests,
                                     std::span<const std::uint8_t> alive,
                                     std::span<const std::uint32_t> child_rank) {
  const std::size_t n = kind.size();
  RPT_REQUIRE(n > 0, "TreeOverlay::FromColumns: empty tree");
  RPT_REQUIRE(n < kInvalidNode, "TreeOverlay::FromColumns: too many nodes");
  RPT_REQUIRE(parent.size() == n && delta.size() == n && requests.size() == n &&
                  alive.size() == n && child_rank.size() == n,
              "TreeOverlay::FromColumns: column size mismatch");
  RPT_REQUIRE(alive[0] != 0, "TreeOverlay::FromColumns: root must be live");
  RPT_REQUIRE(kind[0] == NodeKind::kInternal, "TreeOverlay::FromColumns: root must be internal");
  RPT_REQUIRE(parent[0] == kInvalidNode, "TreeOverlay::FromColumns: root has no parent");

  TreeOverlay overlay;
  overlay.kind_.assign(kind.begin(), kind.end());
  overlay.parent_.assign(parent.begin(), parent.end());
  overlay.delta_.assign(delta.begin(), delta.end());
  overlay.requests_.assign(requests.begin(), requests.end());
  overlay.alive_.assign(alive.begin(), alive.end());
  overlay.delta_[0] = kNoDistanceLimit;
  overlay.base_children_begin_.assign(1, 0);
  overlay.base_size_ = 0;  // everything lives in the patch map

  // Per-node validation + per-parent (rank, child) collection.
  std::vector<std::vector<std::pair<std::uint32_t, NodeId>>> ranked(n);
  std::size_t live = 0;
  std::size_t live_clients = 0;
  Requests total = 0;
  for (NodeId id = 0; id < n; ++id) {
    if (alive[id] == 0) continue;
    ++live;
    if (kind[id] == NodeKind::kClient) {
      ++live_clients;
      RPT_REQUIRE(total <= std::numeric_limits<Requests>::max() - requests[id],
                  "TreeOverlay::FromColumns: request total overflow");
      total += requests[id];
    } else {
      RPT_REQUIRE(requests[id] == 0, "TreeOverlay::FromColumns: internal nodes issue no requests");
    }
    if (id == 0) continue;
    RPT_REQUIRE(parent[id] < n, "TreeOverlay::FromColumns: parent id out of range");
    RPT_REQUIRE(alive[parent[id]] != 0, "TreeOverlay::FromColumns: live node with dead parent");
    RPT_REQUIRE(kind[parent[id]] == NodeKind::kInternal,
                "TreeOverlay::FromColumns: parent must be internal");
    RPT_REQUIRE(delta[id] <= kDistanceCap,
                "TreeOverlay::FromColumns: edge length exceeds kDistanceCap");
    ranked[parent[id]].emplace_back(child_rank[id], id);
  }

  // Child lists in rank order; ranks must be a clean 0..k-1 permutation.
  for (NodeId id = 0; id < n; ++id) {
    if (ranked[id].empty()) continue;
    std::sort(ranked[id].begin(), ranked[id].end());
    std::vector<NodeId>& list = overlay.patched_children_[id];
    list.reserve(ranked[id].size());
    for (std::size_t i = 0; i < ranked[id].size(); ++i) {
      RPT_REQUIRE(ranked[id][i].first == i,
                  "TreeOverlay::FromColumns: child ranks must form 0..k-1 per parent");
      list.push_back(ranked[id][i].second);
    }
  }
  for (NodeId id = 0; id < n; ++id) {
    if (alive[id] == 0 || id == 0) continue;
    RPT_REQUIRE(kind[id] == NodeKind::kClient || !ranked[id].empty(),
                "TreeOverlay::FromColumns: internal node without children");
  }

  // BFS from the root: derives depth/dist and doubles as the connectivity
  // check (a parent cycle among live nodes is unreachable from the root).
  overlay.depth_.assign(n, 0);
  overlay.dist_root_.assign(n, 0);
  std::vector<NodeId> order{0};
  for (std::size_t head = 0; head < order.size(); ++head) {
    const NodeId node = order[head];
    overlay.max_depth_ = std::max(overlay.max_depth_, overlay.depth_[node]);
    for (const NodeId child : overlay.Children(node)) {
      overlay.depth_[child] = overlay.depth_[node] + 1;
      overlay.dist_root_[child] = overlay.dist_root_[node] + overlay.delta_[child];
      RPT_REQUIRE(overlay.dist_root_[child] < kDistRootBound,
                  "TreeOverlay::FromColumns: root distance overflow");
      order.push_back(child);
    }
  }
  RPT_REQUIRE(order.size() == live,
              "TreeOverlay::FromColumns: live nodes unreachable from the root (parent cycle?)");

  overlay.subtree_requests_.assign(n, 0);
  overlay.subtree_size_.assign(n, 0);
  for (std::size_t i = order.size(); i-- > 0;) {
    const NodeId node = order[i];
    Requests req = overlay.kind_[node] == NodeKind::kClient ? overlay.requests_[node] : 0;
    std::uint32_t size = 1;
    for (const NodeId child : overlay.Children(node)) {
      req += overlay.subtree_requests_[child];
      size += overlay.subtree_size_[child];
    }
    overlay.subtree_requests_[node] = req;
    overlay.subtree_size_[node] = size;
  }
  overlay.total_requests_ = total;
  overlay.live_count_ = live;
  overlay.live_client_count_ = live_clients;
  // A deserialized overlay is conservatively assumed mutated (identity-remap
  // claims only hold for overlays built directly over a base Tree).
  overlay.topology_version_ = 1;
  return overlay;
}

}  // namespace rpt
