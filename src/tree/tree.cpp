#include "tree/tree.hpp"

#include <algorithm>

namespace rpt {

NodeId TreeBuilder::AddRoot() {
  RPT_REQUIRE(kind_.empty(), "TreeBuilder: root must be the first node");
  return AddNode(kInvalidNode, kNoDistanceLimit, NodeKind::kInternal, 0);
}

NodeId TreeBuilder::AddInternal(NodeId parent, Distance delta) {
  return AddNode(parent, delta, NodeKind::kInternal, 0);
}

NodeId TreeBuilder::AddClient(NodeId parent, Distance delta, Requests requests) {
  return AddNode(parent, delta, NodeKind::kClient, requests);
}

NodeId TreeBuilder::AddNode(NodeId parent, Distance delta, NodeKind kind, Requests requests) {
  if (parent != kInvalidNode) {
    RPT_REQUIRE(parent < kind_.size(), "TreeBuilder: unknown parent id");
    RPT_REQUIRE(kind_[parent] == NodeKind::kInternal, "TreeBuilder: parent must be internal");
    RPT_REQUIRE(delta <= kDistanceCap || delta == kNoDistanceLimit,
                "TreeBuilder: edge length exceeds kDistanceCap");
  } else {
    RPT_REQUIRE(kind_.empty(), "TreeBuilder: only the root has no parent");
  }
  const auto id = static_cast<NodeId>(kind_.size());
  RPT_REQUIRE(kind_.size() < kInvalidNode, "TreeBuilder: too many nodes");
  kind_.push_back(kind);
  parent_.push_back(parent);
  delta_.push_back(delta);
  requests_.push_back(requests);
  children_.emplace_back();
  if (parent != kInvalidNode) children_[parent].push_back(id);
  return id;
}

Tree TreeBuilder::Build() {
  RPT_REQUIRE(!kind_.empty(), "TreeBuilder: empty tree");
  const std::size_t n = kind_.size();
  for (std::size_t id = 0; id < n; ++id) {
    if (kind_[id] == NodeKind::kClient) {
      RPT_REQUIRE(children_[id].empty(), "TreeBuilder: clients must be leaves");
    } else if (id != 0) {
      RPT_REQUIRE(!children_[id].empty(), "TreeBuilder: non-root internal node without children");
    }
  }

  Tree tree;
  tree.kind_ = std::move(kind_);
  tree.parent_ = std::move(parent_);
  tree.delta_ = std::move(delta_);
  tree.requests_ = std::move(requests_);

  // CSR children layout.
  tree.children_begin_.assign(n + 1, 0);
  for (std::size_t id = 0; id < n; ++id) {
    tree.children_begin_[id + 1] =
        tree.children_begin_[id] + static_cast<std::uint32_t>(children_[id].size());
  }
  tree.children_flat_.reserve(n - 1);
  for (std::size_t id = 0; id < n; ++id) {
    tree.children_flat_.insert(tree.children_flat_.end(), children_[id].begin(),
                               children_[id].end());
  }

  // Derived per-node data via one iterative DFS from the root.
  tree.depth_.assign(n, 0);
  tree.dist_root_.assign(n, 0);
  tree.tin_.assign(n, 0);
  tree.tout_.assign(n, 0);
  tree.post_order_.clear();
  tree.post_order_.reserve(n);
  tree.clients_.clear();
  tree.arity_ = 0;
  tree.total_requests_ = 0;

  std::uint32_t clock = 0;
  std::size_t visited = 0;
  // Stack frames: (node, next child index).
  std::vector<std::pair<NodeId, std::uint32_t>> stack;
  stack.reserve(64);
  stack.emplace_back(0, 0);
  tree.tin_[0] = clock++;
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    const auto kids = tree.Children(node);
    if (next_child == 0) {
      ++visited;
      tree.arity_ = std::max(tree.arity_, static_cast<std::uint32_t>(kids.size()));
      if (tree.kind_[node] == NodeKind::kClient) {
        tree.clients_.push_back(node);
        tree.total_requests_ += tree.requests_[node];
      }
    }
    if (next_child < kids.size()) {
      const NodeId child = kids[next_child++];
      tree.depth_[child] = tree.depth_[node] + 1;
      tree.dist_root_[child] = tree.dist_root_[node] + tree.delta_[child];
      RPT_REQUIRE(tree.dist_root_[child] < kNoDistanceLimit / 2,
                  "TreeBuilder: root distance overflow");
      tree.tin_[child] = clock++;
      stack.emplace_back(child, 0);
    } else {
      tree.tout_[node] = clock++;
      tree.post_order_.push_back(node);
      stack.pop_back();
    }
  }
  RPT_REQUIRE(visited == n, "TreeBuilder: disconnected nodes present");

  // Subtree aggregates in post-order.
  tree.subtree_requests_.assign(n, 0);
  tree.subtree_size_.assign(n, 1);
  for (NodeId node : tree.post_order_) {
    if (tree.kind_[node] == NodeKind::kClient) tree.subtree_requests_[node] = tree.requests_[node];
    for (NodeId child : tree.Children(node)) {
      tree.subtree_requests_[node] += tree.subtree_requests_[child];
      tree.subtree_size_[node] += tree.subtree_size_[child];
    }
  }

  // Leave the builder reusable-but-empty.
  children_.clear();
  return tree;
}

}  // namespace rpt
