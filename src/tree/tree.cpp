#include "tree/tree.hpp"

#include <algorithm>

namespace rpt {

void TreeBuilder::Reserve(std::size_t node_count) {
  kind_.reserve(node_count);
  parent_.reserve(node_count);
  delta_.reserve(node_count);
  requests_.reserve(node_count);
}

NodeId TreeBuilder::AddRoot() {
  RPT_REQUIRE(kind_.empty(), "TreeBuilder: root must be the first node");
  return AddNode(kInvalidNode, kNoDistanceLimit, NodeKind::kInternal, 0);
}

NodeId TreeBuilder::AddInternal(NodeId parent, Distance delta) {
  return AddNode(parent, delta, NodeKind::kInternal, 0);
}

NodeId TreeBuilder::AddClient(NodeId parent, Distance delta, Requests requests) {
  return AddNode(parent, delta, NodeKind::kClient, requests);
}

NodeId TreeBuilder::AddNode(NodeId parent, Distance delta, NodeKind kind, Requests requests) {
  if (parent != kInvalidNode) {
    RPT_REQUIRE(parent < kind_.size(), "TreeBuilder: unknown parent id");
    RPT_REQUIRE(kind_[parent] == NodeKind::kInternal, "TreeBuilder: parent must be internal");
    RPT_REQUIRE(delta <= kDistanceCap || delta == kNoDistanceLimit,
                "TreeBuilder: edge length exceeds kDistanceCap");
  } else {
    RPT_REQUIRE(kind_.empty(), "TreeBuilder: only the root has no parent");
  }
  const auto id = static_cast<NodeId>(kind_.size());
  RPT_REQUIRE(kind_.size() < kInvalidNode, "TreeBuilder: too many nodes");
  kind_.push_back(kind);
  parent_.push_back(parent);
  delta_.push_back(delta);
  requests_.push_back(requests);
  if (kind == NodeKind::kClient) ++client_count_;
  return id;
}

Tree TreeBuilder::Build() {
  RPT_REQUIRE(!kind_.empty(), "TreeBuilder: empty tree");
  const std::size_t n = kind_.size();

  Tree tree;
  tree.kind_ = std::move(kind_);
  tree.parent_ = std::move(parent_);
  tree.delta_ = std::move(delta_);
  tree.requests_ = std::move(requests_);

  // CSR children layout by counting sort over the parent column. Scattering
  // ids in increasing order reproduces per-parent insertion order, because
  // AddNode appends children in id order. AddNode already rejects client
  // parents, so only the non-root-internal-must-have-children check remains.
  tree.children_begin_.assign(n + 1, 0);
  for (std::size_t id = 1; id < n; ++id) {
    ++tree.children_begin_[static_cast<std::size_t>(tree.parent_[id]) + 1];
  }
  for (std::size_t id = 0; id < n; ++id) {
    if (tree.kind_[id] == NodeKind::kInternal && id != 0) {
      RPT_REQUIRE(tree.children_begin_[id + 1] != 0,
                  "TreeBuilder: non-root internal node without children");
    }
    tree.children_begin_[id + 1] += tree.children_begin_[id];
  }
  tree.children_flat_.resize(n - 1);
  {
    std::vector<std::uint32_t> cursor(tree.children_begin_.begin(),
                                      tree.children_begin_.end() - 1);
    for (std::size_t id = 1; id < n; ++id) {
      tree.children_flat_[cursor[tree.parent_[id]]++] = static_cast<NodeId>(id);
    }
  }

  // Derived per-node data. AddNode guarantees a parent exists before its
  // children (parent id < child id), so the tree is connected by
  // construction and every derived column falls out of flat sequential
  // passes — no DFS anywhere:
  //  * forward id pass: depth, root distance, arity, client list;
  //  * reverse id pass: subtree sizes and request totals (children fold
  //    into parents bottom-up);
  //  * forward id pass: Euler intervals, because the DFS clock is fully
  //    determined by subtree sizes — the first child enters at tin+1 and
  //    each next sibling at the previous sibling's tout+1, with
  //    tout = tin + 2*subtree_size - 1;
  //  * clock scan: post-order is the nodes sorted by tout, recovered by
  //    bucketing touts over the 2n Euler clock ticks.
  // The resulting tin/tout/post-order match the classic iterative DFS tick
  // for tick.
  tree.depth_.assign(n, 0);
  tree.dist_root_.assign(n, 0);
  tree.clients_.clear();
  tree.clients_.reserve(client_count_);
  client_count_ = 0;
  tree.arity_ = 0;
  tree.total_requests_ = 0;
  for (std::size_t id = 0; id < n; ++id) {
    if (id != 0) {
      const NodeId parent = tree.parent_[id];
      tree.depth_[id] = tree.depth_[parent] + 1;
      tree.dist_root_[id] = tree.dist_root_[parent] + tree.delta_[id];
      RPT_REQUIRE(tree.dist_root_[id] < kNoDistanceLimit / 2,
                  "TreeBuilder: root distance overflow");
    }
    tree.arity_ = std::max(tree.arity_, tree.children_begin_[id + 1] - tree.children_begin_[id]);
    if (tree.kind_[id] == NodeKind::kClient) {
      tree.clients_.push_back(static_cast<NodeId>(id));
      tree.total_requests_ += tree.requests_[id];
    }
  }

  tree.subtree_requests_.assign(n, 0);
  tree.subtree_size_.assign(n, 1);
  for (std::size_t id = n; id-- > 1;) {
    const NodeId parent = tree.parent_[id];
    if (tree.kind_[id] == NodeKind::kClient) tree.subtree_requests_[id] += tree.requests_[id];
    tree.subtree_requests_[parent] += tree.subtree_requests_[id];
    tree.subtree_size_[parent] += tree.subtree_size_[id];
  }
  if (tree.kind_[0] == NodeKind::kClient) tree.subtree_requests_[0] += tree.requests_[0];

  tree.tin_.assign(n, 0);
  for (std::size_t id = 0; id < n; ++id) {
    std::uint32_t clock = tree.tin_[id] + 1;
    for (std::uint32_t slot = tree.children_begin_[id]; slot < tree.children_begin_[id + 1];
         ++slot) {
      const NodeId child = tree.children_flat_[slot];
      tree.tin_[child] = clock;
      clock += 2 * tree.subtree_size_[child];
    }
  }

  // Post-order position from the Euler clock: when a node exits, the ticks
  // spent so far are two per already-exited node (its tin and tout), one per
  // open ancestor (its tin), and the node's own tin — so
  // tout = 2*post_index + depth + 1.
  tree.post_order_.resize(n);
  for (std::size_t id = 0; id < n; ++id) {
    tree.post_order_[(tree.Tout(static_cast<NodeId>(id)) - tree.depth_[id] - 1) / 2] =
        static_cast<NodeId>(id);
  }

  return tree;
}

}  // namespace rpt
