#include "tree/tree.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "support/thread_pool.hpp"

namespace rpt {

namespace {

// Below this node count the serial derive pass wins: the parallel sweeps add
// one fork-join per level plus atomic histogram traffic, which only pays off
// once the per-level ranges are tens of thousands of nodes wide.
constexpr std::size_t kParallelBuildMinNodes = std::size_t{1} << 15;

// Minimum indices per chunk for the flat per-node sweeps.
constexpr std::size_t kBuildGrain = 4096;

// Fixed chunk boundaries for two-pass reductions (chunk-local partials, then
// a serial scan over the per-chunk values, then a second pass with the same
// boundaries). Boundaries depend only on (count, threads), so both passes
// and the serial fold see the same deterministic partition.
struct Chunking {
  std::size_t count = 0;
  std::size_t chunk = 1;
  std::size_t chunks = 0;

  Chunking(std::size_t count_, std::size_t threads) : count(count_) {
    chunk = std::max(kBuildGrain, (count + 2 * threads - 1) / std::max<std::size_t>(1, 2 * threads));
    chunks = count == 0 ? 0 : (count + chunk - 1) / chunk;
  }

  [[nodiscard]] std::size_t Begin(std::size_t c) const noexcept { return c * chunk; }
  [[nodiscard]] std::size_t End(std::size_t c) const noexcept {
    return std::min(count, (c + 1) * chunk);
  }
};

}  // namespace

void TreeBuilder::Reserve(std::size_t node_count) {
  kind_.reserve(node_count);
  parent_.reserve(node_count);
  delta_.reserve(node_count);
  requests_.reserve(node_count);
}

NodeId TreeBuilder::AddRoot() {
  RPT_REQUIRE(kind_.empty(), "TreeBuilder: root must be the first node");
  return AddNode(kInvalidNode, kNoDistanceLimit, NodeKind::kInternal, 0);
}

NodeId TreeBuilder::AddInternal(NodeId parent, Distance delta) {
  return AddNode(parent, delta, NodeKind::kInternal, 0);
}

NodeId TreeBuilder::AddClient(NodeId parent, Distance delta, Requests requests) {
  return AddNode(parent, delta, NodeKind::kClient, requests);
}

NodeId TreeBuilder::AddNode(NodeId parent, Distance delta, NodeKind kind, Requests requests) {
  if (parent != kInvalidNode) {
    RPT_REQUIRE(parent < kind_.size(), "TreeBuilder: unknown parent id");
    RPT_REQUIRE(kind_[parent] == NodeKind::kInternal, "TreeBuilder: parent must be internal");
    RPT_REQUIRE(delta <= kDistanceCap || delta == kNoDistanceLimit,
                "TreeBuilder: edge length exceeds kDistanceCap");
  } else {
    RPT_REQUIRE(kind_.empty(), "TreeBuilder: only the root has no parent");
  }
  const auto id = static_cast<NodeId>(kind_.size());
  RPT_REQUIRE(kind_.size() < kInvalidNode, "TreeBuilder: too many nodes");
  kind_.push_back(kind);
  parent_.push_back(parent);
  delta_.push_back(delta);
  requests_.push_back(requests);
  if (kind == NodeKind::kClient) ++client_count_;
  return id;
}

Tree TreeBuilder::Build() {
  RPT_REQUIRE(!kind_.empty(), "TreeBuilder: empty tree");
  const std::size_t n = kind_.size();

  Tree tree;
  tree.kind_ = std::move(kind_);
  tree.parent_ = std::move(parent_);
  tree.delta_ = std::move(delta_);
  tree.requests_ = std::move(requests_);

  ThreadPool* pool = SolverPool();
  if (pool != nullptr && n >= kParallelBuildMinNodes && !ThreadPool::InWorker()) {
    DeriveParallel(tree, n, client_count_, *pool);
  } else {
    DeriveSerial(tree, n, client_count_);
  }
  client_count_ = 0;
  return tree;
}

void TreeBuilder::DeriveSerial(Tree& tree, std::size_t n, std::size_t client_count) {
  // CSR children layout by counting sort over the parent column. Scattering
  // ids in increasing order reproduces per-parent insertion order, because
  // AddNode appends children in id order. AddNode already rejects client
  // parents, so only the non-root-internal-must-have-children check remains.
  tree.children_begin_.assign(n + 1, 0);
  for (std::size_t id = 1; id < n; ++id) {
    ++tree.children_begin_[static_cast<std::size_t>(tree.parent_[id]) + 1];
  }
  for (std::size_t id = 0; id < n; ++id) {
    if (tree.kind_[id] == NodeKind::kInternal && id != 0) {
      RPT_REQUIRE(tree.children_begin_[id + 1] != 0,
                  "TreeBuilder: non-root internal node without children");
    }
    tree.children_begin_[id + 1] += tree.children_begin_[id];
  }
  tree.children_flat_.resize(n - 1);
  {
    std::vector<std::uint32_t> cursor(tree.children_begin_.begin(),
                                      tree.children_begin_.end() - 1);
    for (std::size_t id = 1; id < n; ++id) {
      tree.children_flat_[cursor[tree.parent_[id]]++] = static_cast<NodeId>(id);
    }
  }

  // Derived per-node data. AddNode guarantees a parent exists before its
  // children (parent id < child id), so the tree is connected by
  // construction and every derived column falls out of flat sequential
  // passes — no DFS anywhere:
  //  * forward id pass: depth, root distance, arity, client list;
  //  * reverse id pass: subtree sizes and request totals (children fold
  //    into parents bottom-up);
  //  * forward id pass: Euler intervals, because the DFS clock is fully
  //    determined by subtree sizes — the first child enters at tin+1 and
  //    each next sibling at the previous sibling's tout+1, with
  //    tout = tin + 2*subtree_size - 1;
  //  * clock scan: post-order is the nodes sorted by tout, recovered by
  //    bucketing touts over the 2n Euler clock ticks.
  // The resulting tin/tout/post-order match the classic iterative DFS tick
  // for tick.
  tree.depth_.assign(n, 0);
  tree.dist_root_.assign(n, 0);
  tree.clients_.clear();
  tree.clients_.reserve(client_count);
  tree.arity_ = 0;
  tree.total_requests_ = 0;
  for (std::size_t id = 0; id < n; ++id) {
    if (id != 0) {
      const NodeId parent = tree.parent_[id];
      tree.depth_[id] = tree.depth_[parent] + 1;
      tree.dist_root_[id] = tree.dist_root_[parent] + tree.delta_[id];
      RPT_REQUIRE(tree.dist_root_[id] < kNoDistanceLimit / 2,
                  "TreeBuilder: root distance overflow");
    }
    tree.arity_ = std::max(tree.arity_, tree.children_begin_[id + 1] - tree.children_begin_[id]);
    if (tree.kind_[id] == NodeKind::kClient) {
      tree.clients_.push_back(static_cast<NodeId>(id));
      tree.total_requests_ += tree.requests_[id];
    }
  }

  tree.subtree_requests_.assign(n, 0);
  tree.subtree_size_.assign(n, 1);
  for (std::size_t id = n; id-- > 1;) {
    const NodeId parent = tree.parent_[id];
    if (tree.kind_[id] == NodeKind::kClient) tree.subtree_requests_[id] += tree.requests_[id];
    tree.subtree_requests_[parent] += tree.subtree_requests_[id];
    tree.subtree_size_[parent] += tree.subtree_size_[id];
  }
  if (tree.kind_[0] == NodeKind::kClient) tree.subtree_requests_[0] += tree.requests_[0];

  tree.tin_.assign(n, 0);
  for (std::size_t id = 0; id < n; ++id) {
    std::uint32_t clock = tree.tin_[id] + 1;
    for (std::uint32_t slot = tree.children_begin_[id]; slot < tree.children_begin_[id + 1];
         ++slot) {
      const NodeId child = tree.children_flat_[slot];
      tree.tin_[child] = clock;
      clock += 2 * tree.subtree_size_[child];
    }
  }

  // Post-order position from the Euler clock: when a node exits, the ticks
  // spent so far are two per already-exited node (its tin and tout), one per
  // open ancestor (its tin), and the node's own tin — so
  // tout = 2*post_index + depth + 1.
  tree.post_order_.resize(n);
  for (std::size_t id = 0; id < n; ++id) {
    tree.post_order_[(tree.Tout(static_cast<NodeId>(id)) - tree.depth_[id] - 1) / 2] =
        static_cast<NodeId>(id);
  }
}

// Parallel derive: the same columns as DeriveSerial, produced by
// level-synchronous sweeps so every output is byte-identical to the serial
// build regardless of thread count.
//
//  * Counting-sort histogram and CSR fill run over id chunks with relaxed
//    atomic counters; the fill's scatter order is nondeterministic, so each
//    parent's children span is sorted ascending afterwards — per-parent
//    insertion order IS ascending id order, restoring the serial layout.
//  * Levels come from a BFS frontier over the CSR arrays (per-chunk child
//    counts + a serial scan give each frontier node its deterministic write
//    offset); depth and root distance fall out of the same sweep.
//  * Subtree aggregates are a reverse level sweep, Euler tins a forward
//    level sweep (each node serially clocks its own children), and the
//    post-order/client/arity columns are plain chunked scatters/reductions
//    with chunk-local partials folded serially in chunk order.
void TreeBuilder::DeriveParallel(Tree& tree, std::size_t n, std::size_t client_count,
                                 ThreadPool& pool) {
  const std::size_t threads = pool.ThreadCount();

  // --- CSR histogram: per-parent child counts (relaxed atomics; exact sums
  // are order-independent).
  std::unique_ptr<std::atomic<std::uint32_t>[]> counts(new std::atomic<std::uint32_t>[n]);
  ParallelForChunked(&pool, n, kBuildGrain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t id = begin; id < end; ++id) counts[id].store(0, std::memory_order_relaxed);
  });
  ParallelForChunked(&pool, n - 1, kBuildGrain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      counts[tree.parent_[i + 1]].fetch_add(1, std::memory_order_relaxed);
    }
  });

  // --- CSR offsets: blocked exclusive scan (chunk sums, serial scan over
  // the per-chunk sums, chunk-local rescan). The rescan also runs the
  // structural validation and converts `counts` in place into the fill
  // cursors, saving two full passes.
  tree.children_begin_.resize(n + 1);
  const Chunking ids(n, threads);
  std::vector<std::uint64_t> chunk_sums(ids.chunks, 0);
  ParallelForChunked(&pool, ids.chunks, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t c = begin; c < end; ++c) {
      std::uint64_t sum = 0;
      for (std::size_t id = ids.Begin(c); id < ids.End(c); ++id) {
        sum += counts[id].load(std::memory_order_relaxed);
      }
      chunk_sums[c] = sum;
    }
  });
  std::uint64_t running = 0;
  for (std::size_t c = 0; c < ids.chunks; ++c) {
    const std::uint64_t sum = chunk_sums[c];
    chunk_sums[c] = running;
    running += sum;
  }
  RPT_CHECK(running == n - 1);
  tree.children_begin_[n] = static_cast<std::uint32_t>(n - 1);
  ParallelForChunked(&pool, ids.chunks, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t c = begin; c < end; ++c) {
      auto offset = static_cast<std::uint32_t>(chunk_sums[c]);
      for (std::size_t id = ids.Begin(c); id < ids.End(c); ++id) {
        const std::uint32_t count = counts[id].load(std::memory_order_relaxed);
        RPT_REQUIRE(count != 0 || id == 0 || tree.kind_[id] != NodeKind::kInternal,
                    "TreeBuilder: non-root internal node without children");
        tree.children_begin_[id] = offset;
        counts[id].store(offset, std::memory_order_relaxed);  // becomes the fill cursor
        offset += count;
      }
    }
  });

  // --- CSR fill: atomic per-parent cursors (the repurposed `counts`), then
  // a per-parent sort to restore the deterministic (ascending-id) order.
  std::atomic<std::uint32_t>* const cursor = counts.get();
  tree.children_flat_.resize(n - 1);
  ParallelForChunked(&pool, n - 1, kBuildGrain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t id = i + 1;
      const std::uint32_t slot =
          cursor[tree.parent_[id]].fetch_add(1, std::memory_order_relaxed);
      tree.children_flat_[slot] = static_cast<NodeId>(id);
    }
  });
  ParallelForChunked(&pool, n, kBuildGrain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t id = begin; id < end; ++id) {
      std::sort(tree.children_flat_.begin() + tree.children_begin_[id],
                tree.children_flat_.begin() + tree.children_begin_[id + 1]);
    }
  });

  // --- Levels by BFS over the CSR arrays; depth and root distance ride on
  // the frontier expansion.
  tree.depth_.resize(n);
  tree.dist_root_.resize(n);
  tree.depth_[0] = 0;
  tree.dist_root_[0] = 0;
  std::vector<NodeId> level_order(n);
  level_order[0] = 0;
  std::vector<std::uint32_t> level_begin{0, 1};
  while (true) {
    const std::size_t frontier_begin = level_begin[level_begin.size() - 2];
    const std::size_t frontier_end = level_begin.back();
    const std::size_t frontier = frontier_end - frontier_begin;
    const auto level = static_cast<std::uint32_t>(level_begin.size() - 1);

    const Chunking fc(frontier, threads);
    std::vector<std::uint64_t> offsets(fc.chunks, 0);
    ParallelForChunked(&pool, fc.chunks, 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t c = begin; c < end; ++c) {
        std::uint64_t sum = 0;
        for (std::size_t slot = fc.Begin(c); slot < fc.End(c); ++slot) {
          const NodeId id = level_order[frontier_begin + slot];
          sum += tree.children_begin_[id + 1] - tree.children_begin_[id];
        }
        offsets[c] = sum;
      }
    });
    std::uint64_t next_total = 0;
    for (std::size_t c = 0; c < fc.chunks; ++c) {
      const std::uint64_t sum = offsets[c];
      offsets[c] = next_total;
      next_total += sum;
    }
    if (next_total == 0) break;

    ParallelForChunked(&pool, fc.chunks, 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t c = begin; c < end; ++c) {
        std::size_t write = frontier_end + offsets[c];
        for (std::size_t slot = fc.Begin(c); slot < fc.End(c); ++slot) {
          const NodeId id = level_order[frontier_begin + slot];
          for (std::uint32_t s = tree.children_begin_[id]; s < tree.children_begin_[id + 1];
               ++s) {
            const NodeId child = tree.children_flat_[s];
            level_order[write++] = child;
            tree.depth_[child] = level;
            tree.dist_root_[child] = tree.dist_root_[id] + tree.delta_[child];
            RPT_REQUIRE(tree.dist_root_[child] < kNoDistanceLimit / 2,
                        "TreeBuilder: root distance overflow");
          }
        }
      }
    });
    level_begin.push_back(static_cast<std::uint32_t>(frontier_end + next_total));
  }
  RPT_CHECK(level_begin.back() == n);

  // --- Subtree aggregates: reverse level sweep (each node folds its own
  // children, which the previous — deeper — level completed).
  tree.subtree_requests_.resize(n);
  tree.subtree_size_.resize(n);
  for (std::size_t lvl = level_begin.size() - 1; lvl-- > 0;) {
    const std::size_t lb = level_begin[lvl];
    const std::size_t le = level_begin[lvl + 1];
    ParallelForChunked(&pool, le - lb, kBuildGrain, [&](std::size_t begin, std::size_t end) {
      for (std::size_t slot = lb + begin; slot < lb + end; ++slot) {
        const NodeId id = level_order[slot];
        Requests req = tree.kind_[id] == NodeKind::kClient ? tree.requests_[id] : 0;
        std::uint32_t size = 1;
        for (std::uint32_t s = tree.children_begin_[id]; s < tree.children_begin_[id + 1];
             ++s) {
          const NodeId child = tree.children_flat_[s];
          req += tree.subtree_requests_[child];
          size += tree.subtree_size_[child];
        }
        tree.subtree_requests_[id] = req;
        tree.subtree_size_[id] = size;
      }
    });
  }

  // --- Euler tins: forward level sweep; each node serially clocks its own
  // children (tout = tin + 2*subtree_size - 1 is derived, not stored).
  tree.tin_.resize(n);
  tree.tin_[0] = 0;
  for (std::size_t lvl = 0; lvl + 1 < level_begin.size(); ++lvl) {
    const std::size_t lb = level_begin[lvl];
    const std::size_t le = level_begin[lvl + 1];
    ParallelForChunked(&pool, le - lb, kBuildGrain, [&](std::size_t begin, std::size_t end) {
      for (std::size_t slot = lb + begin; slot < lb + end; ++slot) {
        const NodeId id = level_order[slot];
        std::uint32_t clock = tree.tin_[id] + 1;
        for (std::uint32_t s = tree.children_begin_[id]; s < tree.children_begin_[id + 1];
             ++s) {
          const NodeId child = tree.children_flat_[s];
          tree.tin_[child] = clock;
          clock += 2 * tree.subtree_size_[child];
        }
      }
    });
  }

  // --- Post-order scatter (see DeriveSerial for the clock identity).
  tree.post_order_.resize(n);
  ParallelForChunked(&pool, n, kBuildGrain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t id = begin; id < end; ++id) {
      tree.post_order_[(tree.Tout(static_cast<NodeId>(id)) - tree.depth_[id] - 1) / 2] =
          static_cast<NodeId>(id);
    }
  });

  // --- Clients (id order), total requests, arity: chunk-local partials
  // folded serially in chunk order.
  struct ChunkAgg {
    std::uint64_t clients = 0;
    Requests requests = 0;
    std::uint32_t arity = 0;
  };
  std::vector<ChunkAgg> aggs(ids.chunks);
  ParallelForChunked(&pool, ids.chunks, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t c = begin; c < end; ++c) {
      ChunkAgg agg;
      for (std::size_t id = ids.Begin(c); id < ids.End(c); ++id) {
        agg.arity =
            std::max(agg.arity, tree.children_begin_[id + 1] - tree.children_begin_[id]);
        if (tree.kind_[id] == NodeKind::kClient) {
          ++agg.clients;
          agg.requests += tree.requests_[id];
        }
      }
      aggs[c] = agg;
    }
  });
  tree.arity_ = 0;
  tree.total_requests_ = 0;
  std::vector<std::uint64_t> client_offsets(ids.chunks, 0);
  std::uint64_t client_cursor = 0;
  for (std::size_t c = 0; c < ids.chunks; ++c) {
    client_offsets[c] = client_cursor;
    client_cursor += aggs[c].clients;
    tree.arity_ = std::max(tree.arity_, aggs[c].arity);
    tree.total_requests_ += aggs[c].requests;
  }
  RPT_CHECK(client_cursor == client_count);
  tree.clients_.resize(client_count);
  ParallelForChunked(&pool, ids.chunks, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t c = begin; c < end; ++c) {
      std::size_t write = client_offsets[c];
      for (std::size_t id = ids.Begin(c); id < ids.End(c); ++id) {
        if (tree.kind_[id] == NodeKind::kClient) {
          tree.clients_[write++] = static_cast<NodeId>(id);
        }
      }
    }
  });
}

Tree Tree::WithRequests(std::span<const Requests> requests) const {
  RPT_REQUIRE(requests.size() == Size(),
              "Tree::WithRequests: need one request entry per node (internal entries 0)");
  Tree copy = *this;
  for (NodeId id = 0; id < Size(); ++id) {
    if (kind_[id] == NodeKind::kInternal) {
      RPT_REQUIRE(requests[id] == 0, "Tree::WithRequests: internal nodes issue no requests");
    }
    copy.requests_[id] = requests[id];
  }
  // Subtree totals re-aggregate bottom-up over the (unchanged) post-order.
  for (const NodeId node : copy.post_order_) {
    Requests total = copy.requests_[node];
    for (const NodeId child : copy.Children(node)) total += copy.subtree_requests_[child];
    copy.subtree_requests_[node] = total;
  }
  copy.total_requests_ = copy.subtree_requests_[copy.Root()];
  return copy;
}

SubtreeSlice Tree::SliceSubtree(NodeId root) const {
  Check(root);
  RPT_REQUIRE(!IsClient(root), "Tree::SliceSubtree: slice root must be an internal node");
  // Collect the subtree's global ids, ascending. A DFS from `root` visits
  // exactly SubtreeSize(root) nodes; sorting makes the local→global map
  // monotone, which preserves parent<child ids and ascending child order.
  std::vector<NodeId> members;
  members.reserve(subtree_size_[root]);
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId node = stack.back();
    stack.pop_back();
    members.push_back(node);
    const auto kids = Children(node);
    stack.insert(stack.end(), kids.begin(), kids.end());
  }
  RPT_CHECK(members.size() == subtree_size_[root]);
  std::sort(members.begin(), members.end());

  TreeBuilder builder;
  builder.Reserve(members.size());
  builder.AddRoot();
  for (std::size_t local = 1; local < members.size(); ++local) {
    const NodeId global = members[local];
    // The parent's local id is its rank among members — a binary search,
    // valid because every ancestor of a member up to `root` is a member.
    const NodeId parent_global = parent_[global];
    const auto it = std::lower_bound(members.begin(), members.end(), parent_global);
    RPT_CHECK(it != members.end() && *it == parent_global);
    const auto parent_local = static_cast<NodeId>(it - members.begin());
    if (kind_[global] == NodeKind::kClient) {
      builder.AddClient(parent_local, delta_[global], requests_[global]);
    } else {
      builder.AddInternal(parent_local, delta_[global]);
    }
  }
  return SubtreeSlice{builder.Build(), std::move(members)};
}

}  // namespace rpt
