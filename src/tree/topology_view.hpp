// TopologyView — the one seam between the solvers and the two topology
// representations: the immutable CSR `Tree` (tree.hpp) and the mutable
// delta `TreeOverlay` (tree_overlay.hpp).
//
// A view is two pointers and a branch: every accessor forwards to whichever
// backend is bound, under Tree's exact names and semantics. Solver code
// written against TopologyView runs unchanged over both; the base-Tree path
// stays allocation-free and byte-identical to calling the Tree directly
// (the branch predicts perfectly — a view never rebinds mid-solve).
//
// Differences a solver must tolerate only when an overlay is bound:
//  * ids may be dead — guard traversals with IsLive()/LiveCount() (over a
//    base Tree every id is live and IsLive is constant-true);
//  * Clients()/PostOrder() cover live nodes only and are lazily rebuilt
//    after overlay mutations — first access after a mutation must come from
//    the update thread (parallel sweeps never touch them; see
//    docs/ARCHITECTURE.md "Topology overlay");
//  * IsAncestorOrSelf is O(depth) on the overlay (no Euler intervals) vs
//    O(1) on the base.
//
// The view does not own its backend; the caller keeps the Tree/TreeOverlay
// alive for the view's lifetime. Trivially copyable — pass by value.
#pragma once

#include <span>

#include "tree/tree.hpp"
#include "tree/tree_overlay.hpp"

namespace rpt {

class TopologyView {
 public:
  // Implicit by design: every solver entry point that took `const Tree&`
  // keeps compiling (and gains overlay support) without call-site edits.
  TopologyView(const Tree& tree) noexcept : tree_(&tree) {}             // NOLINT
  TopologyView(const TreeOverlay& overlay) noexcept : overlay_(&overlay) {}  // NOLINT

  [[nodiscard]] bool IsOverlay() const noexcept { return overlay_ != nullptr; }
  /// The bound base tree; only valid when !IsOverlay().
  [[nodiscard]] const Tree& BaseTree() const {
    RPT_REQUIRE(tree_ != nullptr, "TopologyView: no base tree bound");
    return *tree_;
  }
  /// The bound overlay; only valid when IsOverlay().
  [[nodiscard]] const TreeOverlay& Overlay() const {
    RPT_REQUIRE(overlay_ != nullptr, "TopologyView: no overlay bound");
    return *overlay_;
  }

  [[nodiscard]] NodeId Root() const noexcept { return 0; }
  [[nodiscard]] std::size_t Size() const noexcept {
    return tree_ != nullptr ? tree_->Size() : overlay_->Size();
  }
  /// Number of live nodes (== Size() over a base Tree).
  [[nodiscard]] std::size_t LiveCount() const noexcept {
    return tree_ != nullptr ? tree_->Size() : overlay_->LiveCount();
  }
  [[nodiscard]] std::size_t ClientCount() const noexcept {
    return tree_ != nullptr ? tree_->ClientCount() : overlay_->ClientCount();
  }
  [[nodiscard]] bool IsLive(NodeId id) const {
    if (tree_ != nullptr) {
      (void)tree_->Kind(id);  // same bounds check as every other accessor
      return true;
    }
    return overlay_->IsLive(id);
  }
  [[nodiscard]] NodeKind Kind(NodeId id) const {
    return tree_ != nullptr ? tree_->Kind(id) : overlay_->Kind(id);
  }
  [[nodiscard]] bool IsClient(NodeId id) const { return Kind(id) == NodeKind::kClient; }
  [[nodiscard]] Requests RequestsOf(NodeId id) const {
    return tree_ != nullptr ? tree_->RequestsOf(id) : overlay_->RequestsOf(id);
  }
  [[nodiscard]] std::span<const Requests> RequestsColumn() const noexcept {
    return tree_ != nullptr ? tree_->RequestsColumn() : overlay_->RequestsColumn();
  }
  [[nodiscard]] NodeId Parent(NodeId id) const {
    return tree_ != nullptr ? tree_->Parent(id) : overlay_->Parent(id);
  }
  [[nodiscard]] Distance DistToParent(NodeId id) const {
    return tree_ != nullptr ? tree_->DistToParent(id) : overlay_->DistToParent(id);
  }
  [[nodiscard]] std::span<const NodeId> Children(NodeId id) const {
    return tree_ != nullptr ? tree_->Children(id) : overlay_->Children(id);
  }
  [[nodiscard]] std::span<const NodeId> Clients() const {
    return tree_ != nullptr ? tree_->Clients() : overlay_->Clients();
  }
  [[nodiscard]] std::span<const NodeId> PostOrder() const {
    return tree_ != nullptr ? tree_->PostOrder() : overlay_->PostOrder();
  }
  [[nodiscard]] std::uint32_t Depth(NodeId id) const {
    return tree_ != nullptr ? tree_->Depth(id) : overlay_->Depth(id);
  }
  [[nodiscard]] Distance DistFromRoot(NodeId id) const {
    return tree_ != nullptr ? tree_->DistFromRoot(id) : overlay_->DistFromRoot(id);
  }
  [[nodiscard]] bool IsAncestorOrSelf(NodeId ancestor, NodeId node) const {
    return tree_ != nullptr ? tree_->IsAncestorOrSelf(ancestor, node)
                            : overlay_->IsAncestorOrSelf(ancestor, node);
  }
  [[nodiscard]] Distance DistToAncestor(NodeId node, NodeId ancestor) const {
    return tree_ != nullptr ? tree_->DistToAncestor(node, ancestor)
                            : overlay_->DistToAncestor(node, ancestor);
  }
  [[nodiscard]] Requests TotalRequests() const noexcept {
    return tree_ != nullptr ? tree_->TotalRequests() : overlay_->TotalRequests();
  }
  [[nodiscard]] Requests SubtreeRequests(NodeId id) const {
    return tree_ != nullptr ? tree_->SubtreeRequests(id) : overlay_->SubtreeRequests(id);
  }
  [[nodiscard]] std::uint32_t SubtreeSize(NodeId id) const {
    return tree_ != nullptr ? tree_->SubtreeSize(id) : overlay_->SubtreeSize(id);
  }

 private:
  const Tree* tree_ = nullptr;
  const TreeOverlay* overlay_ = nullptr;
};

}  // namespace rpt
