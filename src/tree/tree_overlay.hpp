// TreeOverlay — the mutable delta view over an immutable CSR Tree.
//
// The CSR Tree (tree.hpp) is frozen at Build() time; every solver invariant
// (Euler intervals, post-order, subtree aggregates) is baked into its flat
// columns. Streaming workloads, however, see topology churn: access nodes
// join and leave, whole regions re-home after a link failure. Rebuilding the
// world per event throws away every table the incremental solvers worked to
// keep warm, so this class keeps a *mutable* copy of the structural columns
// and applies topology deltas in place:
//
//  * AttachSubtree  — splice a new subtree (fresh ids appended past the
//                     current size) under a live internal node;
//  * DetachSubtree  — tombstone a subtree (ids stay allocated but dead;
//                     they are never reused — re-joining hardware comes back
//                     as new ids);
//  * MigrateSubtree — re-home a subtree under a new parent (ids, and hence
//                     every per-node solver table keyed by id, survive);
//  * SetLinkDelta   — reconfigure one edge length δ (link degradation /
//                     repair); distances below the edge shift, nothing else;
//  * SetRequests    — the demand write-through, so the overlay's request
//                     column and subtree totals always describe the current
//                     state (Compact() snapshots them).
//
// The accessor surface deliberately mirrors Tree's (Size/Kind/Parent/
// Children/Depth/SubtreeRequests/...), so solvers written against
// TopologyView (topology_view.hpp) run unchanged over either. Differences:
// ids may be dead (IsLive), Children() order is insertion order where
// migrated/attached children append at the end, IsAncestorOrSelf walks
// parent pointers (O(depth)) instead of Euler intervals, and PostOrder()/
// Clients() cover live nodes only (rebuilt lazily after mutations — first
// access after a mutation is not thread-safe; solvers touch them only from
// the update thread).
//
// Structural invariants (enforced by every mutator, which validates fully
// before touching any state — a throwing mutator leaves the overlay
// unchanged):
//  * node 0 is the root, live forever, never detached or migrated;
//  * every live non-root node has a live internal parent;
//  * every live internal node keeps >= 1 live child — detach/migrate of a
//    parent's last child is rejected (this is also what keeps the root from
//    being orphaned, and what keeps Compact() buildable: TreeBuilder rejects
//    childless internal nodes);
//  * migration cannot create a cycle (the new parent must not live inside
//    the moved subtree);
//  * dist-from-root stays below kNoDistanceLimit/2 everywhere (same bound
//    the builder enforces).
//
// Compact() folds the overlay back into a clean CSR Tree via TreeBuilder
// (parallel Build on large trees) and returns the old->new id remap. New
// ids are assigned by a greedy min-old-id topological order that preserves
// per-parent child order, so a never-mutated overlay compacts to the
// identity remap and a byte-identical tree.
//
// Ownership: the overlay copies every column it needs out of the base tree
// at construction; the base may be destroyed afterwards. Copyable (the
// incremental solver clones it to make topology batches atomic). Not
// thread-safe; const accessors are safe concurrently once the lazy
// Clients()/PostOrder() caches are warm.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "tree/tree.hpp"

namespace rpt {

/// A subtree to attach, described in local indices: node 0 is the subtree
/// root (its `parent` field is ignored — the attach target supplies it),
/// every other node's `parent` is a smaller local index. Internal spec nodes
/// must have at least one child within the spec; clients must be leaves.
struct SubtreeSpec {
  struct Node {
    NodeKind kind = NodeKind::kClient;
    std::uint32_t parent = 0;  ///< local index of the parent (ignored for node 0)
    Distance delta = 1;        ///< edge length to the (local or attach) parent
    Requests requests = 0;     ///< initial demand (clients only)

    friend bool operator==(const Node&, const Node&) = default;
  };

  std::vector<Node> nodes;

  friend bool operator==(const SubtreeSpec&, const SubtreeSpec&) = default;

  /// One client leaf joining under the attach parent.
  [[nodiscard]] static SubtreeSpec SingleClient(Distance delta, Requests requests) {
    SubtreeSpec spec;
    spec.nodes.push_back(Node{NodeKind::kClient, 0, delta, requests});
    return spec;
  }
};

class TreeOverlay {
 public:
  /// Copies every structural and demand column out of `base`; ids are
  /// preserved one-to-one. O(|T|).
  explicit TreeOverlay(const Tree& base);

  /// Reconstructs an overlay from flat columns (the deserialization path —
  /// see tree/serialize.hpp's rpt-overlay format). `alive[id]` marks live
  /// slots; dead slots' other columns are ignored. `child_rank[id]` is the
  /// node's position in its parent's child list (child order is
  /// load-bearing: Compact() and the solvers' tie-breaks follow it, and
  /// after migrations it is no longer ascending-id); per parent the live
  /// ranks must form 0..k-1. Validates the full structural invariant set
  /// (single live root 0, live internal parents, no cycles, internal nodes
  /// keep a live child) and derives every computed column. Throws
  /// InvalidArgument on violation.
  [[nodiscard]] static TreeOverlay FromColumns(std::span<const NodeKind> kind,
                                               std::span<const NodeId> parent,
                                               std::span<const Distance> delta,
                                               std::span<const Requests> requests,
                                               std::span<const std::uint8_t> alive,
                                               std::span<const std::uint32_t> child_rank);

  // --- Tree-compatible accessors (see tree.hpp for semantics) ---
  [[nodiscard]] NodeId Root() const noexcept { return 0; }
  [[nodiscard]] std::size_t Size() const noexcept { return kind_.size(); }
  [[nodiscard]] std::size_t LiveCount() const noexcept { return live_count_; }
  [[nodiscard]] std::size_t ClientCount() const noexcept { return live_client_count_; }
  [[nodiscard]] bool IsLive(NodeId id) const { return alive_[Check(id)] != 0; }
  [[nodiscard]] NodeKind Kind(NodeId id) const { return kind_[Check(id)]; }
  [[nodiscard]] bool IsClient(NodeId id) const { return Kind(id) == NodeKind::kClient; }
  [[nodiscard]] Requests RequestsOf(NodeId id) const { return requests_[Check(id)]; }
  [[nodiscard]] std::span<const Requests> RequestsColumn() const noexcept { return requests_; }
  [[nodiscard]] NodeId Parent(NodeId id) const { return parent_[Check(id)]; }
  [[nodiscard]] Distance DistToParent(NodeId id) const { return delta_[Check(id)]; }
  [[nodiscard]] std::span<const NodeId> Children(NodeId id) const;
  /// Live clients in ascending id order (lazily rebuilt after mutations).
  [[nodiscard]] std::span<const NodeId> Clients() const;
  /// Live nodes in DFS post-order over the current topology (children in
  /// Children() order before parents; root last). Lazily rebuilt.
  [[nodiscard]] std::span<const NodeId> PostOrder() const;
  [[nodiscard]] std::uint32_t Depth(NodeId id) const { return depth_[Check(id)]; }
  [[nodiscard]] Distance DistFromRoot(NodeId id) const { return dist_root_[Check(id)]; }
  [[nodiscard]] Requests TotalRequests() const noexcept { return total_requests_; }
  [[nodiscard]] Requests SubtreeRequests(NodeId id) const { return subtree_requests_[Check(id)]; }
  [[nodiscard]] std::uint32_t SubtreeSize(NodeId id) const { return subtree_size_[Check(id)]; }
  /// O(depth(node) - depth(ancestor)) parent walk (no Euler intervals here).
  [[nodiscard]] bool IsAncestorOrSelf(NodeId ancestor, NodeId node) const;
  [[nodiscard]] Distance DistToAncestor(NodeId node, NodeId ancestor) const {
    RPT_REQUIRE(IsAncestorOrSelf(ancestor, node), "TreeOverlay: not an ancestor");
    return dist_root_[node] - dist_root_[ancestor];
  }
  /// Largest depth over live nodes.
  [[nodiscard]] std::uint32_t MaxDepth() const noexcept { return max_depth_; }

  // --- mutators ---
  /// Splices `spec` under live internal `parent`; the new nodes get the ids
  /// [Size(), Size() + spec.nodes.size()) in spec order and append at the
  /// end of the parent's child list. Returns the new subtree root's id.
  NodeId AttachSubtree(NodeId parent, const SubtreeSpec& spec);

  /// Tombstones subtree(root). The parent must keep at least one other live
  /// child; detached clients' demand leaves the totals. When `removed` is
  /// non-null it receives the ids killed (ascending).
  void DetachSubtree(NodeId root, std::vector<NodeId>* removed = nullptr);

  /// Re-homes subtree(root) under `new_parent` with edge length `new_delta`;
  /// the subtree keeps its ids and internal structure and appends at the end
  /// of the new parent's child list. The old parent must keep a live child;
  /// `new_parent` must not be inside the moved subtree.
  void MigrateSubtree(NodeId root, NodeId new_parent, Distance new_delta);

  /// Reconfigures the edge length of `node`'s parent link (node must be live
  /// and non-root); dist-from-root shifts for the whole subtree.
  void SetLinkDelta(NodeId node, Distance delta);

  /// Demand write-through for a live client; keeps the request column and
  /// every subtree total current.
  void SetRequests(NodeId client, Requests value);

  /// Number of topology mutations applied so far (attach/detach/migrate/
  /// link-delta; SetRequests does not count). 0 means Compact() is the
  /// identity remap.
  [[nodiscard]] std::uint64_t TopologyVersion() const noexcept { return topology_version_; }

  /// Fraction of allocated slots that are tombstones, in [0, 1] — the input
  /// to a caller's compaction trigger policy (see docs/ARCHITECTURE.md).
  [[nodiscard]] double TombstoneFraction() const noexcept {
    return Size() == 0 ? 0.0
                       : static_cast<double>(Size() - live_count_) / static_cast<double>(Size());
  }

  // --- compaction ---
  struct CompactResult {
    Tree tree;
    /// old id -> new id; kInvalidNode for tombstoned slots.
    std::vector<NodeId> remap;
  };

  /// Folds the overlay into a clean CSR Tree (TreeBuilder::Build — parallel
  /// on large trees) carrying the current request column. New ids follow a
  /// greedy min-old-id topological order that preserves per-parent child
  /// order: a never-mutated overlay compacts to the identity remap.
  [[nodiscard]] CompactResult Compact() const;

 private:
  TreeOverlay() = default;

  NodeId Check(NodeId id) const {
    RPT_REQUIRE(id < Size(), "TreeOverlay: node id out of range");
    return id;
  }

  /// Children list of `id` as a mutable vector, materializing the patched
  /// copy from the base CSR on first write.
  std::vector<NodeId>& PatchChildren(NodeId id);
  void RemoveChild(NodeId parent, NodeId child);

  /// Collects subtree(root) in BFS order (root first) into `out`.
  void CollectSubtree(NodeId root, std::vector<NodeId>& out) const;

  /// Adds `size_delta`/`request_delta` to every aggregate on the root path
  /// starting at `node` (inclusive).
  void BumpAggregates(NodeId node, std::int64_t size_delta, std::int64_t request_delta);

  /// Recomputes depth_/dist_root_ for subtree(root) by BFS (root's own
  /// entries must already be correct). Validates the dist bound.
  void RefreshDepths(NodeId root);

  /// Dry-run of RefreshDepths' overflow bound: throws without mutating when
  /// re-rooting subtree(root) at (new_depth, new_dist) would push any
  /// descendant past the distance cap.
  void CheckDistBound(NodeId root, Distance new_dist) const;

  void MarkCachesDirty() noexcept {
    clients_dirty_ = true;
    post_order_dirty_ = true;
  }
  void RecomputeMaxDepth();

  // Flat per-node columns, all sized Size(); dead slots keep stale values
  // that no accessor path can observe (live traversals never reach them).
  std::vector<NodeKind> kind_;
  std::vector<NodeId> parent_;
  std::vector<Distance> delta_;
  std::vector<Requests> requests_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint32_t> depth_;
  std::vector<Distance> dist_root_;
  std::vector<Requests> subtree_requests_;
  std::vector<std::uint32_t> subtree_size_;

  // Children: the base CSR is kept verbatim; nodes whose child set changed
  // (and all appended nodes) carry explicit vectors in the patch map.
  std::vector<std::uint32_t> base_children_begin_;  // size base_size_+1
  std::vector<NodeId> base_children_flat_;
  std::size_t base_size_ = 0;
  std::unordered_map<NodeId, std::vector<NodeId>> patched_children_;

  Requests total_requests_ = 0;
  std::size_t live_count_ = 0;
  std::size_t live_client_count_ = 0;
  std::uint32_t max_depth_ = 0;
  std::uint64_t topology_version_ = 0;

  // Lazy caches (rebuilt on demand from the update thread).
  mutable std::vector<NodeId> clients_cache_;
  mutable std::vector<NodeId> post_order_cache_;
  mutable bool clients_dirty_ = true;
  mutable bool post_order_dirty_ = true;
};

}  // namespace rpt
