// Arena-based distribution tree, the substrate every algorithm in this
// library operates on (paper §2).
//
// A tree T = C ∪ N: internal nodes N may host replicas, leaf nodes C are
// clients issuing requests. Each non-root node has an edge length δ to its
// parent; the root's δ is +inf (kNoDistanceLimit), matching the paper's
// convention δ_r = +∞, so nothing can be served "above the root".
//
// The structure is immutable after TreeBuilder::Build(); all derived data
// (depth, distance to root, Euler intervals for O(1) ancestor tests,
// post-order) is precomputed there. Node ids are dense indices into the
// arena, root is always id 0.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/common.hpp"

namespace rpt {

class ThreadPool;

/// Dense node identifier; index into the tree arena. Root is always 0.
using NodeId = std::uint32_t;

/// Sentinel for "no node" (e.g. the root's parent).
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Role of a node. Clients are exactly the leaves of the tree.
enum class NodeKind : std::uint8_t {
  kInternal,  ///< member of N; may host a replica, issues no requests
  kClient,    ///< member of C; leaf issuing requests, may also host a replica
};

class TreeBuilder;
struct SubtreeSlice;

/// Immutable rooted tree with weighted edges and client request counts.
class Tree {
 public:
  /// Root node id (always 0 for a built tree).
  [[nodiscard]] NodeId Root() const noexcept { return 0; }

  /// Total number of nodes |T| = |C| + |N|.
  [[nodiscard]] std::size_t Size() const noexcept { return kind_.size(); }

  /// Number of client (leaf) nodes.
  [[nodiscard]] std::size_t ClientCount() const noexcept { return clients_.size(); }

  /// Number of internal nodes.
  [[nodiscard]] std::size_t InternalCount() const noexcept { return Size() - ClientCount(); }

  /// Kind of a node.
  [[nodiscard]] NodeKind Kind(NodeId id) const { return kind_[Check(id)]; }

  /// True iff the node is a client (leaf).
  [[nodiscard]] bool IsClient(NodeId id) const { return Kind(id) == NodeKind::kClient; }

  /// Requests issued by a client; 0 for internal nodes.
  [[nodiscard]] Requests RequestsOf(NodeId id) const { return requests_[Check(id)]; }

  /// The whole per-node request column (indexed by NodeId). The zero-copy
  /// way to feed demand-overlay solver entry points with the tree's own
  /// demands; the span is valid for the tree's lifetime.
  [[nodiscard]] std::span<const Requests> RequestsColumn() const noexcept { return requests_; }

  /// Parent id, or kInvalidNode for the root.
  [[nodiscard]] NodeId Parent(NodeId id) const { return parent_[Check(id)]; }

  /// Edge length δ_j from node j to its parent; kNoDistanceLimit for root.
  [[nodiscard]] Distance DistToParent(NodeId id) const { return delta_[Check(id)]; }

  /// Children of a node in insertion order (empty for clients).
  [[nodiscard]] std::span<const NodeId> Children(NodeId id) const {
    Check(id);
    return {children_flat_.data() + children_begin_[id],
            children_flat_.data() + children_begin_[id + 1]};
  }

  /// All client node ids, in increasing id order.
  [[nodiscard]] std::span<const NodeId> Clients() const noexcept { return clients_; }

  /// Nodes in post-order (children before parents); root is last.
  [[nodiscard]] std::span<const NodeId> PostOrder() const noexcept { return post_order_; }

  /// Depth in edges (root = 0).
  [[nodiscard]] std::uint32_t Depth(NodeId id) const { return depth_[Check(id)]; }

  /// Sum of edge lengths from the root down to this node.
  [[nodiscard]] Distance DistFromRoot(NodeId id) const { return dist_root_[Check(id)]; }

  /// Maximum number of children over internal nodes (the arity ∆). Zero for
  /// a single-node tree.
  [[nodiscard]] std::uint32_t Arity() const noexcept { return arity_; }

  /// True iff every internal node has at most two children.
  [[nodiscard]] bool IsBinary() const noexcept { return arity_ <= 2; }

  /// True iff `ancestor` is on the path from `node` to the root, inclusive of
  /// node == ancestor. O(1) via Euler intervals.
  [[nodiscard]] bool IsAncestorOrSelf(NodeId ancestor, NodeId node) const {
    Check(ancestor);
    Check(node);
    return tin_[ancestor] <= tin_[node] && Tout(node) <= Tout(ancestor);
  }

  /// Path distance from `node` up to `ancestor`; requires
  /// IsAncestorOrSelf(ancestor, node). O(1).
  [[nodiscard]] Distance DistToAncestor(NodeId node, NodeId ancestor) const {
    RPT_REQUIRE(IsAncestorOrSelf(ancestor, node), "DistToAncestor: not an ancestor");
    return dist_root_[node] - dist_root_[ancestor];
  }

  /// Total requests over all clients.
  [[nodiscard]] Requests TotalRequests() const noexcept { return total_requests_; }

  /// Sum of client requests within subtree(j) (precomputed).
  [[nodiscard]] Requests SubtreeRequests(NodeId id) const { return subtree_requests_[Check(id)]; }

  /// Number of nodes in subtree(j), including j.
  [[nodiscard]] std::uint32_t SubtreeSize(NodeId id) const { return subtree_size_[Check(id)]; }

  /// Structure-preserving demand swap: returns a copy of this tree where
  /// client id gets requests[id] requests (indexed by NodeId, size == Size();
  /// internal entries must be 0). Node ids, topology, and every
  /// structure-derived column (children, depth, Euler intervals, post-order)
  /// are copied verbatim; only the request-derived columns (per-node
  /// requests, subtree totals) are recomputed — O(|T|), no re-derivation.
  /// This is the cheap way to materialize an Instance for a demand overlay,
  /// e.g. the incremental solver's from-scratch oracle.
  [[nodiscard]] Tree WithRequests(std::span<const Requests> requests) const;

  /// Extracts subtree(`root`) as a standalone tree plus the local→global id
  /// map (see SubtreeSlice below). `root` must be an internal node so the
  /// slice is a valid tree (a client leaf cannot be a root).
  [[nodiscard]] SubtreeSlice SliceSubtree(NodeId root) const;

 private:
  friend class TreeBuilder;
  Tree() = default;

  NodeId Check(NodeId id) const {
    RPT_REQUIRE(id < Size(), "Tree: node id out of range");
    return id;
  }

  /// Euler exit tick, derived from the entry tick and the subtree size (a
  /// subtree of s nodes spans exactly 2s consecutive ticks).
  [[nodiscard]] std::uint32_t Tout(NodeId id) const noexcept {
    return tin_[id] + 2 * subtree_size_[id] - 1;
  }

  std::vector<NodeKind> kind_;
  std::vector<NodeId> parent_;
  std::vector<Distance> delta_;
  std::vector<Requests> requests_;
  std::vector<std::uint32_t> children_begin_;  // size n+1, CSR offsets
  std::vector<NodeId> children_flat_;
  std::vector<NodeId> clients_;
  std::vector<NodeId> post_order_;
  std::vector<std::uint32_t> depth_;
  std::vector<Distance> dist_root_;
  std::vector<std::uint32_t> tin_;
  std::vector<Requests> subtree_requests_;
  std::vector<std::uint32_t> subtree_size_;
  Requests total_requests_ = 0;
  std::uint32_t arity_ = 0;
};

/// A subtree extracted from a larger tree as a standalone Tree, plus the id
/// map back into the source tree. Produced by Tree::SliceSubtree for the
/// sharded solve (src/shard/): each cut subtree is sliced, shipped to a
/// worker, and solved as its own instance; the map translates the worker's
/// solution fragment back into source-tree ids.
///
/// Local ids are the subtree's global ids in ascending order (local id =
/// rank of the global id among subtree members), so the remap is monotone:
/// parent-before-child and ascending-id child order — every CSR invariant —
/// survive verbatim, and the DP over the slice is byte-identical to the DP
/// over the same subtree in place (F_j depends only on subtree demands and
/// W; see multiple/nod_dp_engine.hpp). The slice root keeps δ = +inf like
/// any tree root; the cut edge's length is irrelevant to the NoD solvers.
struct SubtreeSlice {
  Tree tree;                       ///< subtree re-rooted at the cut, local ids
  std::vector<NodeId> to_global;   ///< local id -> source-tree id
};

/// Incremental tree constructor. Usage:
///   TreeBuilder b;
///   NodeId root = b.AddRoot();
///   NodeId n = b.AddInternal(root, /*delta=*/2);
///   b.AddClient(n, /*delta=*/1, /*requests=*/10);
///   Tree t = b.Build();
///
/// Build() validates the structure (exactly one root, clients are leaves,
/// internal nodes have at least one child) and freezes the tree. The builder
/// itself stores only flat per-node columns; the CSR children arrays are
/// materialized in Build() by a counting pass over the parent column, so no
/// per-node child vectors are ever allocated. On large trees Build() runs
/// the counting sort, CSR fill, and every derived pass as level-synchronous
/// parallel sweeps on the process-wide solver pool (SolverPool()); the
/// resulting tree is byte-identical to the serial build at any thread count.
class TreeBuilder {
 public:
  TreeBuilder() = default;

  /// Adds the root (internal) node; must be called first, exactly once.
  NodeId AddRoot();

  /// Adds an internal node under `parent` with edge length `delta`.
  NodeId AddInternal(NodeId parent, Distance delta);

  /// Adds a client leaf under `parent` with edge length `delta` issuing
  /// `requests` requests.
  NodeId AddClient(NodeId parent, Distance delta, Requests requests);

  /// Number of nodes added so far.
  [[nodiscard]] std::size_t Size() const noexcept { return kind_.size(); }

  /// Pre-allocates the per-node columns for `node_count` nodes. Optional;
  /// generators that know the final size call it to avoid regrowth.
  void Reserve(std::size_t node_count);

  /// Validates and freezes; the builder is left empty afterwards.
  [[nodiscard]] Tree Build();

 private:
  NodeId AddNode(NodeId parent, Distance delta, NodeKind kind, Requests requests);

  /// Materializes the CSR children arrays and every derived column from the
  /// flat per-node inputs already moved into `tree`. The serial form is the
  /// reference; the parallel form is a level-synchronous sweep over the BFS
  /// frontier on the solver pool and produces byte-identical columns.
  static void DeriveSerial(Tree& tree, std::size_t n, std::size_t client_count);
  static void DeriveParallel(Tree& tree, std::size_t n, std::size_t client_count,
                             ThreadPool& pool);

  std::vector<NodeKind> kind_;
  std::vector<NodeId> parent_;
  std::vector<Distance> delta_;
  std::vector<Requests> requests_;
  std::size_t client_count_ = 0;
};

}  // namespace rpt
