// Text serialization and Graphviz export for trees and overlays.
//
// Tree format (line oriented, '#' comments allowed):
//   rpt-tree v1
//   <node count n>
//   then n lines, one per node in id order:
//   <id> <parent|-> <delta|inf> <I|C> <requests>
// The root must be node 0 with parent '-' and delta 'inf'.
//
// Overlay format (same lexical rules):
//   rpt-overlay v1
//   <slot count n>
//   then n lines, one per slot in id order:
//   <id> <alive 0|1> <parent|-> <delta|inf> <I|C> <requests> <child_rank>
// Slot ids — including tombstones — are the wire contract: solver state is
// keyed by overlay id, so a round-trip must keep dead slots in place rather
// than compact them away. Dead slots serialize in a canonical form
// (`<id> 0 - inf I 0 0`) regardless of the stale column values they hold in
// memory. `child_rank` is the node's position in its parent's child list
// (live non-root nodes only; '-'/root lines carry 0) — child order is
// load-bearing after migrations, when it is no longer ascending-id.
#pragma once

#include <iosfwd>
#include <string>

#include "tree/tree.hpp"
#include "tree/tree_overlay.hpp"

namespace rpt {

/// Writes the tree in the rpt-tree v1 text format.
void WriteTree(std::ostream& os, const Tree& tree);

/// Serializes to a string (convenience wrapper over WriteTree).
[[nodiscard]] std::string TreeToString(const Tree& tree);

/// Parses the rpt-tree v1 text format; throws InvalidArgument on malformed
/// input.
[[nodiscard]] Tree ReadTree(std::istream& is);

/// Parses from a string (convenience wrapper over ReadTree).
[[nodiscard]] Tree TreeFromString(const std::string& text);

/// Writes the overlay in the rpt-overlay v1 text format. Dead slots emit
/// their canonical form, so two overlays with equal live structure and equal
/// tombstone sets serialize byte-identically.
void WriteOverlay(std::ostream& os, const TreeOverlay& overlay);

/// Serializes to a string (convenience wrapper over WriteOverlay).
[[nodiscard]] std::string OverlayToString(const TreeOverlay& overlay);

/// Parses the rpt-overlay v1 text format and revalidates the full overlay
/// invariant set via TreeOverlay::FromColumns; throws InvalidArgument on
/// malformed input or an invariant violation.
[[nodiscard]] TreeOverlay ReadOverlay(std::istream& is);

/// Parses from a string (convenience wrapper over ReadOverlay).
[[nodiscard]] TreeOverlay OverlayFromString(const std::string& text);

/// Emits a Graphviz DOT rendering: internal nodes as circles, clients as
/// boxes labelled with their request counts, edges labelled with δ.
void WriteDot(std::ostream& os, const Tree& tree, const std::string& graph_name = "rpt");

}  // namespace rpt
