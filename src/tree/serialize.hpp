// Text serialization and Graphviz export for trees.
//
// Text format (line oriented, '#' comments allowed):
//   rpt-tree v1
//   <node count n>
//   then n lines, one per node in id order:
//   <id> <parent|-> <delta|inf> <I|C> <requests>
// The root must be node 0 with parent '-' and delta 'inf'.
#pragma once

#include <iosfwd>
#include <string>

#include "tree/tree.hpp"

namespace rpt {

/// Writes the tree in the rpt-tree v1 text format.
void WriteTree(std::ostream& os, const Tree& tree);

/// Serializes to a string (convenience wrapper over WriteTree).
[[nodiscard]] std::string TreeToString(const Tree& tree);

/// Parses the rpt-tree v1 text format; throws InvalidArgument on malformed
/// input.
[[nodiscard]] Tree ReadTree(std::istream& is);

/// Parses from a string (convenience wrapper over ReadTree).
[[nodiscard]] Tree TreeFromString(const std::string& text);

/// Emits a Graphviz DOT rendering: internal nodes as circles, clients as
/// boxes labelled with their request counts, edges labelled with δ.
void WriteDot(std::ostream& os, const Tree& tree, const std::string& graph_name = "rpt");

}  // namespace rpt
