#include "single/single_nod.hpp"

#include <algorithm>
#include <vector>

namespace rpt::single {

namespace {

constexpr std::uint32_t kNil = static_cast<std::uint32_t>(-1);

// One (client, amount) block of a bundle, stored in a shared arena and
// chained through `next`. Bundles only ever concatenate, so a singly linked
// chain makes every merge O(1) with zero allocation.
struct Entry {
  NodeId client = kInvalidNode;
  Requests amount = 0;
  std::uint32_t next = kNil;
};

// A pending bundle: requests of the chained entries (all inside
// subtree(root_node)) that can be served together by a replica at root_node
// or any ancestor. Bundles themselves chain into per-node pending lists.
struct Bundle {
  NodeId root_node = kInvalidNode;
  Requests total = 0;
  std::uint32_t head = kNil;  // first entry in the arena
  std::uint32_t tail = kNil;  // last entry (for O(1) concatenation)
  std::uint32_t next = kNil;  // next bundle in the same pending list
};

// Flat replacement for the former per-node std::vector<Bundle> lists: two
// arenas (entries, bundles) plus head/tail cursors per node.
class BundleLists {
 public:
  explicit BundleLists(TopologyView tree)
      : head_(tree.Size(), kNil), tail_(tree.Size(), kNil) {
    entries_.reserve(tree.ClientCount());
    bundles_.reserve(tree.Size());
  }

  [[nodiscard]] Bundle& At(std::uint32_t id) { return bundles_[id]; }

  std::uint32_t MakeLeafBundle(NodeId client, Requests requests) {
    const auto entry = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back(Entry{client, requests, kNil});
    const auto bundle = static_cast<std::uint32_t>(bundles_.size());
    bundles_.push_back(Bundle{client, requests, entry, entry, kNil});
    return bundle;
  }

  // Concatenates the entry chains of `parts` (in order) into one new bundle
  // rooted at `root` — O(|parts|), no entry is copied or reallocated.
  std::uint32_t MakeMergedBundle(NodeId root, Requests total,
                                 const std::vector<std::uint32_t>& parts) {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    for (const std::uint32_t part : parts) {
      if (head == kNil) {
        head = bundles_[part].head;
      } else {
        entries_[tail].next = bundles_[part].head;
      }
      tail = bundles_[part].tail;
    }
    const auto bundle = static_cast<std::uint32_t>(bundles_.size());
    bundles_.push_back(Bundle{root, total, head, tail, kNil});
    return bundle;
  }

  void Append(NodeId node, std::uint32_t bundle) {
    bundles_[bundle].next = kNil;
    if (head_[node] == kNil) {
      head_[node] = bundle;
    } else {
      bundles_[tail_[node]].next = bundle;
    }
    tail_[node] = bundle;
  }

  // Moves the pending list of `node` into `out` (bundle ids, list order).
  void Drain(NodeId node, std::vector<std::uint32_t>& out) {
    out.clear();
    for (std::uint32_t b = head_[node]; b != kNil; b = bundles_[b].next) out.push_back(b);
    head_[node] = kNil;
    tail_[node] = kNil;
  }

  // Serves every entry of the bundle at `server`, in chain order.
  void ServeBundle(Solution& solution, NodeId server, std::uint32_t bundle) const {
    for (std::uint32_t e = bundles_[bundle].head; e != kNil; e = entries_[e].next) {
      solution.assignment.push_back(ServiceEntry{entries_[e].client, server, entries_[e].amount});
    }
  }

 private:
  std::vector<Entry> entries_;
  std::vector<Bundle> bundles_;
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> tail_;
};

}  // namespace

namespace {

// Shared core: preconditions already checked by the public entry points.
SingleNodResult SolveSingleNodImpl(TopologyView tree, Requests capacity,
                                   std::span<const Requests> demands,
                                   const SingleNodOptions& options);

}  // namespace

SingleNodResult SolveSingleNod(const Instance& instance, const SingleNodOptions& options) {
  RPT_REQUIRE(!instance.HasDistanceConstraint(),
              "single-nod: only valid without distance constraints (Single-NoD)");
  RPT_REQUIRE(instance.AllRequestsFitLocally(),
              "single-nod: some client has r_i > W; no Single solution exists");
  // Zero-copy: the tree's own request column is the demand overlay.
  const Tree& tree = instance.GetTree();
  return SolveSingleNodImpl(tree, instance.Capacity(), tree.RequestsColumn(), options);
}

SingleNodResult SolveSingleNod(const Tree& tree, Requests capacity,
                               std::span<const Requests> demands,
                               const SingleNodOptions& options) {
  return SolveSingleNod(TopologyView(tree), capacity, demands, options);
}

SingleNodResult SolveSingleNod(TopologyView view, Requests capacity,
                               std::span<const Requests> demands,
                               const SingleNodOptions& options) {
  RPT_REQUIRE(capacity > 0, "single-nod: capacity must be positive");
  RPT_REQUIRE(demands.size() == view.Size(),
              "single-nod: need one demand entry per node (internal entries 0)");
  for (NodeId id = 0; id < view.Size(); ++id) {
    if (!view.IsLive(id)) {
      RPT_REQUIRE(demands[id] == 0, "single-nod: dead nodes issue no requests");
    } else if (view.IsClient(id)) {
      RPT_REQUIRE(demands[id] <= capacity,
                  "single-nod: some client has r_i > W; no Single solution exists");
    } else {
      RPT_REQUIRE(demands[id] == 0, "single-nod: internal nodes issue no requests");
    }
  }
  return SolveSingleNodImpl(view, capacity, demands, options);
}

namespace {

SingleNodResult SolveSingleNodImpl(TopologyView tree, Requests capacity,
                                   std::span<const Requests> demands,
                                   const SingleNodOptions& options) {
  SingleNodResult result;
  Solution& solution = result.solution;

  // L_j of the paper; bundles arrive from direct children and from
  // re-parenting at deeper overflow nodes.
  BundleLists lists(tree);
  std::vector<std::uint32_t> mine;  // reused per-node drain scratch

  for (const NodeId node : tree.PostOrder()) {
    if (tree.IsClient(node)) {
      const Requests requests = demands[node];
      if (requests > 0 && node != tree.Root()) {
        lists.Append(tree.Parent(node), lists.MakeLeafBundle(node, requests));
      }
      continue;
    }

    lists.Drain(node, mine);
    Requests total = 0;
    for (const std::uint32_t bundle : mine) total += lists.At(bundle).total;

    if (total > capacity) {
      // Overflow: this node becomes a server and greedily absorbs the
      // smallest bundles; the first bundle that would overflow gets its own
      // server at its root node (jmin of the paper).
      const bool ascending = options.order == SingleNodOptions::BundleOrder::kSmallestFirst;
      std::sort(mine.begin(), mine.end(),
                [ascending, &lists](std::uint32_t a, std::uint32_t b) {
                  const Bundle& ba = lists.At(a);
                  const Bundle& bb = lists.At(b);
                  if (ba.total != bb.total) {
                    return ascending ? ba.total < bb.total : ba.total > bb.total;
                  }
                  return ba.root_node < bb.root_node;  // deterministic tie-break
                });
      solution.replicas.push_back(node);
      ++result.stats.overflow_servers;
      Requests used = 0;
      std::size_t index = 0;
      for (; index < mine.size(); ++index) {
        const Bundle& bundle = lists.At(mine[index]);
        if (used + bundle.total <= capacity) {
          used += bundle.total;
          lists.ServeBundle(solution, node, mine[index]);
          continue;
        }
        // First overflow: companion server at the bundle's own root.
        solution.replicas.push_back(bundle.root_node);
        ++result.stats.extra_servers;
        lists.ServeBundle(solution, bundle.root_node, mine[index]);
        ++index;
        break;
      }
      // Remaining bundles: re-parent (or, at the root, each gets a server).
      if (node != tree.Root()) {
        for (; index < mine.size(); ++index) lists.Append(tree.Parent(node), mine[index]);
      } else {
        for (; index < mine.size(); ++index) {
          const Bundle& bundle = lists.At(mine[index]);
          solution.replicas.push_back(bundle.root_node);
          ++result.stats.root_spill_servers;
          lists.ServeBundle(solution, bundle.root_node, mine[index]);
        }
      }
      continue;
    }

    // No overflow: everything fits through this node.
    if (node == tree.Root()) {
      if (total > 0) {
        solution.replicas.push_back(tree.Root());
        result.stats.root_server = true;
        for (const std::uint32_t bundle : mine) lists.ServeBundle(solution, tree.Root(), bundle);
      }
      continue;
    }
    if (total > 0) {
      lists.Append(tree.Parent(node), lists.MakeMergedBundle(node, total, mine));
    }
  }

  return result;
}

}  // namespace

}  // namespace rpt::single
