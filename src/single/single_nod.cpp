#include "single/single_nod.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace rpt::single {

namespace {

// A pending bundle: requests of `clients` (all inside subtree(root_node))
// that can be served together by a replica at root_node or any ancestor.
struct Bundle {
  NodeId root_node = kInvalidNode;
  Requests total = 0;
  std::vector<std::pair<NodeId, Requests>> clients;
};

// Serves every client of the bundle at `server`.
void ServeBundle(Solution& solution, NodeId server, const Bundle& bundle) {
  for (const auto& [client, amount] : bundle.clients) {
    solution.assignment.push_back(ServiceEntry{client, server, amount});
  }
}

}  // namespace

SingleNodResult SolveSingleNod(const Instance& instance, const SingleNodOptions& options) {
  RPT_REQUIRE(!instance.HasDistanceConstraint(),
              "single-nod: only valid without distance constraints (Single-NoD)");
  RPT_REQUIRE(instance.AllRequestsFitLocally(),
              "single-nod: some client has r_i > W; no Single solution exists");
  const Tree& tree = instance.GetTree();
  const Requests capacity = instance.Capacity();

  SingleNodResult result;
  Solution& solution = result.solution;

  // L_j of the paper; bundles arrive from direct children and from
  // re-parenting at deeper overflow nodes.
  std::vector<std::vector<Bundle>> lists(tree.Size());

  for (const NodeId node : tree.PostOrder()) {
    if (tree.IsClient(node)) {
      const Requests requests = tree.RequestsOf(node);
      if (requests > 0 && node != tree.Root()) {
        lists[tree.Parent(node)].push_back(
            Bundle{node, requests, {{node, requests}}});
      }
      continue;
    }

    std::vector<Bundle>& mine = lists[node];
    Requests total = 0;
    for (const Bundle& bundle : mine) total += bundle.total;

    if (total > capacity) {
      // Overflow: this node becomes a server and greedily absorbs the
      // smallest bundles; the first bundle that would overflow gets its own
      // server at its root node (jmin of the paper).
      const bool ascending = options.order == SingleNodOptions::BundleOrder::kSmallestFirst;
      std::sort(mine.begin(), mine.end(), [ascending](const Bundle& a, const Bundle& b) {
        if (a.total != b.total) return ascending ? a.total < b.total : a.total > b.total;
        return a.root_node < b.root_node;  // deterministic tie-break
      });
      solution.replicas.push_back(node);
      ++result.stats.overflow_servers;
      Requests used = 0;
      std::size_t index = 0;
      for (; index < mine.size(); ++index) {
        const Bundle& bundle = mine[index];
        if (used + bundle.total <= capacity) {
          used += bundle.total;
          ServeBundle(solution, node, bundle);
          continue;
        }
        // First overflow: companion server at the bundle's own root.
        solution.replicas.push_back(bundle.root_node);
        ++result.stats.extra_servers;
        ServeBundle(solution, bundle.root_node, bundle);
        ++index;
        break;
      }
      // Remaining bundles: re-parent (or, at the root, each gets a server).
      if (node != tree.Root()) {
        auto& parent_list = lists[tree.Parent(node)];
        for (; index < mine.size(); ++index) parent_list.push_back(std::move(mine[index]));
      } else {
        for (; index < mine.size(); ++index) {
          const Bundle& bundle = mine[index];
          solution.replicas.push_back(bundle.root_node);
          ++result.stats.root_spill_servers;
          ServeBundle(solution, bundle.root_node, bundle);
        }
      }
      mine.clear();
      continue;
    }

    // No overflow: everything fits through this node.
    if (node == tree.Root()) {
      if (total > 0) {
        solution.replicas.push_back(tree.Root());
        result.stats.root_server = true;
        for (const Bundle& bundle : mine) ServeBundle(solution, tree.Root(), bundle);
      }
      mine.clear();
      continue;
    }
    if (total > 0) {
      Bundle merged;
      merged.root_node = node;
      merged.total = total;
      for (Bundle& bundle : mine) {
        merged.clients.insert(merged.clients.end(), bundle.clients.begin(), bundle.clients.end());
      }
      lists[tree.Parent(node)].push_back(std::move(merged));
    }
    mine.clear();
  }

  return result;
}

}  // namespace rpt::single
