#include "single/single_nod_engine.hpp"

#include <algorithm>

namespace rpt::single {

SingleNodEngine::SingleNodEngine(TopologyView view, Requests capacity) : view_(view) {
  SetCapacity(capacity);
  Resize(view_.Size());
  for (NodeId id = 0; id < view_.Size(); ++id) {
    if (view_.IsLive(id) && view_.IsClient(id)) demand_[id] = view_.RequestsOf(id);
  }
}

void SingleNodEngine::Resize(std::size_t n) {
  demand_.resize(n, 0);
  out_bundles_.resize(n);
  local_replicas_.resize(n);
  local_assignment_.resize(n);
  dirty_.resize(n, 0);
}

void SingleNodEngine::SetDemand(NodeId client, Requests value) {
  RPT_REQUIRE(client < view_.Size() && view_.IsLive(client) && view_.IsClient(client),
              "SingleNodEngine: demand updates must target a live client");
  demand_[client] = value;
  MarkDirty(client);
}

void SingleNodEngine::SetCapacity(Requests capacity) {
  RPT_REQUIRE(capacity > 0, "SingleNodEngine: capacity must be positive");
  if (capacity != capacity_) {
    capacity_ = capacity;
    need_full_ = true;
  }
}

void SingleNodEngine::ApplyTopology(TopologyView view, std::span<const NodeId> removed) {
  view_ = view;
  Resize(view_.Size());
  for (const NodeId dead : removed) {
    RPT_CHECK(dead < view_.Size());
    demand_[dead] = 0;
    out_bundles_[dead].clear();
    local_replicas_[dead].clear();
    local_assignment_[dead].clear();
    dirty_[dead] = 0;
  }
  // Fresh (appended) ids arrive with empty caches; the caller seeds them —
  // and the structural parents — into the next RecomputeDirty.
  for (NodeId id = 0; id < view_.Size(); ++id) {
    if (view_.IsLive(id) && view_.IsClient(id)) demand_[id] = view_.RequestsOf(id);
  }
}

void SingleNodEngine::MarkDirty(NodeId seed) {
  RPT_REQUIRE(seed < view_.Size() && view_.IsLive(seed),
              "SingleNodEngine: dirty seeds must be live");
  for (NodeId cursor = seed;;) {
    if (dirty_[cursor] != 0) return;  // chain above is already marked
    dirty_[cursor] = 1;
    dirty_nodes_.push_back(cursor);
    const NodeId parent = view_.Parent(cursor);
    if (parent == kInvalidNode) return;
    cursor = parent;
  }
}

void SingleNodEngine::ComputeAll() {
  // Reset the arena: every chain handle is about to be rebuilt.
  entries_.clear();
  bundles_.clear();
  dirty_nodes_.clear();
  std::fill(dirty_.begin(), dirty_.end(), std::uint8_t{0});
  for (const NodeId node : view_.PostOrder()) {
    dirty_[node] = 1;
    dirty_nodes_.push_back(node);
  }
  need_full_ = false;
  RunPass();
}

void SingleNodEngine::MarkTouched(std::span<const NodeId> touched) {
  for (const NodeId seed : touched) MarkDirty(seed);
}

void SingleNodEngine::RecomputeDirty(std::span<const NodeId> touched) {
  if (need_full_ || entries_.size() + bundles_.size() > kSingleEntryBudget) {
    ComputeAll();
    return;
  }
  MarkTouched(touched);
  RunPass();
}

void SingleNodEngine::RunPass() {
  // The accumulated dirty set may span several batches (the solver skips
  // recomputes while the state is infeasible) and may contain ids a later
  // topology batch killed: drop the dead, then process children before
  // parents (decreasing depth, ties by id for determinism).
  std::erase_if(dirty_nodes_, [this](NodeId id) {
    if (view_.IsLive(id) && dirty_[id] != 0) return false;
    dirty_[id] = 0;
    return true;
  });
  std::sort(dirty_nodes_.begin(), dirty_nodes_.end(), [this](NodeId a, NodeId b) {
    const std::uint32_t da = view_.Depth(a);
    const std::uint32_t db = view_.Depth(b);
    return da != db ? da > db : a < b;
  });
  for (const NodeId node : dirty_nodes_) {
    if (view_.IsClient(node)) {
      ProcessClient(node);
    } else {
      ProcessInternal(node);
    }
    dirty_[node] = 0;
  }
  last_pass_nodes_ = dirty_nodes_.size();
  dirty_nodes_.clear();
}

void SingleNodEngine::ProcessClient(NodeId client) {
  out_bundles_[client].clear();
  const Requests requests = demand_[client];
  if (requests == 0 || client == view_.Root()) return;
  const auto entry = static_cast<std::uint32_t>(entries_.size());
  entries_.push_back(Entry{client, requests, kNil});
  const auto bundle = static_cast<std::uint32_t>(bundles_.size());
  bundles_.push_back(Bundle{client, requests, entry, entry});
  out_bundles_[client].push_back(bundle);
}

void SingleNodEngine::ServeBundle(std::vector<ServiceEntry>& out, NodeId server,
                                  std::uint32_t bundle) const {
  // Bounded by tail: this chain may have been spliced into a consumer's
  // merged bundle, which rewrites tail->next.
  const Bundle& b = bundles_[bundle];
  for (std::uint32_t e = b.head;; e = entries_[e].next) {
    out.push_back(ServiceEntry{entries_[e].client, server, entries_[e].amount});
    if (e == b.tail) break;
  }
}

void SingleNodEngine::ProcessInternal(NodeId node) {
  mine_.clear();
  for (const NodeId child : view_.Children(node)) {
    for (const std::uint32_t bundle : out_bundles_[child]) mine_.push_back(bundle);
  }
  Requests total = 0;
  for (const std::uint32_t bundle : mine_) total += bundles_[bundle].total;

  std::vector<std::uint32_t>& out = out_bundles_[node];
  std::vector<NodeId>& replicas = local_replicas_[node];
  std::vector<ServiceEntry>& assignment = local_assignment_[node];
  out.clear();
  replicas.clear();
  assignment.clear();
  const bool is_root = node == view_.Root();

  if (total > capacity_) {
    // Overflow: same absorb logic as the batch pass. Every in-flight bundle
    // has a unique root_node, so this sort is a strict total order and the
    // outcome does not depend on the incoming concatenation order.
    std::sort(mine_.begin(), mine_.end(), [this](std::uint32_t a, std::uint32_t b) {
      const Bundle& ba = bundles_[a];
      const Bundle& bb = bundles_[b];
      if (ba.total != bb.total) return ba.total < bb.total;
      return ba.root_node < bb.root_node;
    });
    replicas.push_back(node);
    Requests used = 0;
    std::size_t index = 0;
    for (; index < mine_.size(); ++index) {
      const Bundle& bundle = bundles_[mine_[index]];
      if (used + bundle.total <= capacity_) {
        used += bundle.total;
        ServeBundle(assignment, node, mine_[index]);
        continue;
      }
      // First overflow: companion server at the bundle's own root.
      replicas.push_back(bundle.root_node);
      ServeBundle(assignment, bundle.root_node, mine_[index]);
      ++index;
      break;
    }
    if (!is_root) {
      for (; index < mine_.size(); ++index) out.push_back(mine_[index]);
    } else {
      for (; index < mine_.size(); ++index) {
        const Bundle& bundle = bundles_[mine_[index]];
        replicas.push_back(bundle.root_node);
        ServeBundle(assignment, bundle.root_node, mine_[index]);
      }
    }
    return;
  }

  if (is_root) {
    if (total > 0) {
      replicas.push_back(node);
      for (const std::uint32_t bundle : mine_) ServeBundle(assignment, node, bundle);
    }
    return;
  }
  if (total > 0) {
    // Merge: splice the part chains into one bundle rooted here — O(#parts)
    // next-pointer writes, no entry is copied.
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    for (const std::uint32_t part : mine_) {
      if (head == kNil) {
        head = bundles_[part].head;
      } else {
        entries_[tail].next = bundles_[part].head;
      }
      tail = bundles_[part].tail;
    }
    const auto bundle = static_cast<std::uint32_t>(bundles_.size());
    bundles_.push_back(Bundle{node, total, head, tail});
    out.push_back(bundle);
  }
}

Solution SingleNodEngine::Assemble() const {
  Solution solution;
  for (const NodeId node : view_.PostOrder()) {
    if (view_.IsClient(node)) continue;
    for (const NodeId replica : local_replicas_[node]) solution.replicas.push_back(replica);
    for (const ServiceEntry& entry : local_assignment_[node]) {
      solution.assignment.push_back(entry);
    }
  }
  solution.Canonicalize();
  return solution;
}

}  // namespace rpt::single
