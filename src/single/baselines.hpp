// Simple baseline placement heuristics used as comparison points in the
// benchmark harness. Neither has an approximation guarantee; they bracket the
// paper's algorithms from below (quality-wise).
#pragma once

#include "model/instance.hpp"
#include "model/solution.hpp"

namespace rpt::single {

/// The trivial always-feasible solution from paper §3: a replica at every
/// client with r_i > 0, each serving itself. Valid under both policies and
/// any dmax. Requires r_i <= W.
[[nodiscard]] Solution SolveClientLocal(const Instance& instance);

/// Greedy best-fit: clients in non-increasing request order; each client is
/// assigned to the already-open eligible server with the least remaining
/// capacity that still fits (best fit); if none fits, a new replica is opened
/// at the highest eligible node (closest to the root within dmax) that has no
/// replica yet. Requires r_i <= W. Feasible for the Single policy (and hence
/// Multiple too).
[[nodiscard]] Solution SolveGreedyBestFit(const Instance& instance);

}  // namespace rpt::single
