// SingleNodEngine — the incremental form of the single-nod bundle pass
// (single_nod.cpp), mirroring what NodDpEngine does for the Multiple DP.
//
// The bundle pass is bottom-up and local: the bundles an internal node j
// forwards to its parent (and the replica/assignment decisions it makes) are
// a function of (subtree(j) demands, W) only — never of depths, edge
// lengths, or anything outside the subtree. So a demand change at client i
// invalidates exactly the nodes on i's root chain, and a topology event
// invalidates exactly the old and new attachment chains: every clean node's
// cached outputs are reused verbatim.
//
// Cached per node:
//  * out bundles — the pending bundles subtree(j) forwards to parent(j)
//    (one merged bundle, or the post-overflow leftovers), stored as
//    (root_node, total, entry-chain) handles into a shared arena;
//  * the local solution slice — replicas placed and assignments emitted by
//    j's own overflow/root decisions.
//
// A recompute processes the dirty set serially in decreasing depth order
// (parents after children) and then assembles the solution by concatenating
// every live node's cached slice — O(dirty · node work + |assignment|) per
// batch instead of re-running the whole pass.
//
// Why the result matches the batch pass exactly: pending-list order differs
// between the two (the batch pass interleaves appends, the engine
// concatenates per-child out lists), but every in-flight bundle has a unique
// root_node, so the overflow sort's (total, root_node) comparator is a
// strict total order — the absorb sequence is order-independent — and the
// no-overflow merge only affects entry-chain order, which Canonicalize()
// erases. Enforced against the batch pass by tests/test_incremental.cpp.
//
// Entry chains only ever concatenate, so merges are O(#parts) pointer
// splices with zero copying. The arena is append-only; superseded bundles
// become garbage. When the arena outgrows kSingleEntryBudget the next
// recompute falls back to a from-scratch rebuild, which resets it — the
// same budget-then-rebuild policy as the DP engine's backtrack fragments.
//
// Only the paper-default options (smallest-first absorption) are supported;
// the ablation orderings stay on the batch entry point.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/solution.hpp"
#include "tree/topology_view.hpp"

namespace rpt::single {

/// Arena budget (entries + bundles) above which the next recompute rebuilds
/// from scratch instead of patching — bounds garbage from superseded chains.
inline constexpr std::size_t kSingleEntryBudget = std::size_t{1} << 21;

class SingleNodEngine {
 public:
  /// Binds the topology and seeds every per-node demand from the view's
  /// request column. Call ComputeAll() (or let the first RecomputeDirty do
  /// it) before reading the solution.
  SingleNodEngine(TopologyView view, Requests capacity);

  SingleNodEngine(const SingleNodEngine&) = delete;
  SingleNodEngine& operator=(const SingleNodEngine&) = delete;
  SingleNodEngine(SingleNodEngine&&) = default;
  SingleNodEngine& operator=(SingleNodEngine&&) = default;

  /// Demand write-through for a live client; marks its root chain dirty for
  /// the next recompute. Values above capacity are legal solver states —
  /// the solver gates feasibility before asking for a compute, and the dirt
  /// accumulates across any skipped passes.
  void SetDemand(NodeId client, Requests value);

  /// New uniform capacity; invalidates every cached decision (the next pass
  /// must be ComputeAll()).
  void SetCapacity(Requests capacity);

  /// Rebinds the engine after the solver swapped its overlay: `view` is the
  /// new topology (same id space, possibly grown), `removed` the ids
  /// tombstoned by the batch. Per-node caches for surviving ids stay valid
  /// — the caller passes the structural dirty seeds (old/new parents, fresh
  /// ids) to the next RecomputeDirty exactly as it does for the DP engine.
  void ApplyTopology(TopologyView view, std::span<const NodeId> removed);

  /// From-scratch pass over every live node; resets the arena.
  void ComputeAll();

  /// Marks the root chains of `touched` (any live nodes) dirty without
  /// computing — for batches the solver skips (infeasible states) whose
  /// invalidations must survive until the next real pass.
  void MarkTouched(std::span<const NodeId> touched);

  /// Recomputes the accumulated dirty set plus the root chains of `touched`
  /// (any live nodes), reusing every clean subtree's cached bundles. Falls
  /// back to ComputeAll() when the arena is over budget.
  void RecomputeDirty(std::span<const NodeId> touched);

  /// The current 2-approx placement, canonical form. Valid after any
  /// compute; assembled fresh per call from the per-node slices.
  [[nodiscard]] Solution Assemble() const;

  /// Live nodes re-processed by the most recent compute pass.
  [[nodiscard]] std::uint64_t LastPassNodes() const noexcept { return last_pass_nodes_; }

 private:
  static constexpr std::uint32_t kNil = static_cast<std::uint32_t>(-1);

  struct Entry {
    NodeId client = kInvalidNode;
    Requests amount = 0;
    std::uint32_t next = kNil;
  };
  /// Iteration is head..tail inclusive — tail->next may have been re-spliced
  /// by this bundle's (unique) consumer and must not be followed.
  struct Bundle {
    NodeId root_node = kInvalidNode;
    Requests total = 0;
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  void Resize(std::size_t n);
  void MarkDirty(NodeId seed);
  void ProcessClient(NodeId client);
  void ProcessInternal(NodeId node);
  void RunPass();
  void ServeBundle(std::vector<ServiceEntry>& out, NodeId server, std::uint32_t bundle) const;

  TopologyView view_;
  Requests capacity_ = 0;
  std::vector<Requests> demand_;

  std::vector<Entry> entries_;
  std::vector<Bundle> bundles_;

  // Per-node caches (indexed by NodeId, sized view_.Size()).
  std::vector<std::vector<std::uint32_t>> out_bundles_;
  std::vector<std::vector<NodeId>> local_replicas_;
  std::vector<std::vector<ServiceEntry>> local_assignment_;

  std::vector<std::uint8_t> dirty_;
  std::vector<NodeId> dirty_nodes_;   // collected per pass
  std::vector<std::uint32_t> mine_;   // per-node drain scratch
  bool need_full_ = true;             // initial state / capacity change / overflowed arena
  std::uint64_t last_pass_nodes_ = 0;
};

}  // namespace rpt::single
