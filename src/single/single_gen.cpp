#include "single/single_gen.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace rpt::single {

namespace {

constexpr std::uint32_t kNil = static_cast<std::uint32_t>(-1);

// Subtracts d from a slack, treating kNoDistanceLimit as +inf.
Distance SlackMinus(Distance slack, Distance d) noexcept {
  if (slack == kNoDistanceLimit) return slack;
  RPT_CHECK(slack >= d);
  return slack - d;
}

// One client whose requests are still travelling up the tree. `slack` is the
// remaining distance budget at the node currently holding the aggregate:
// dmax - dist(client, current node). Entries live in one shared arena and
// chain through `next`, so merging pending sets never copies or reallocates.
struct PendingEntry {
  NodeId client = kInvalidNode;
  Requests amount = 0;
  Distance slack = kNoDistanceLimit;
  std::uint32_t next = kNil;
};

// Aggregate of pending requests at a node — the (req, dist) pair of the
// paper, plus the chained client items. Slack subtraction is lazy (a
// per-set offset) so deep chains stay linear-time.
struct PendingSet {
  std::uint32_t head = kNil;
  std::uint32_t tail = kNil;
  Requests total = 0;
  Distance min_slack = kNoDistanceLimit;  // effective min over entries
  Distance offset = 0;                    // pending subtraction per entry

  [[nodiscard]] bool Empty() const noexcept { return total == 0; }

  void Clear() noexcept {
    head = kNil;
    tail = kNil;
    total = 0;
    min_slack = kNoDistanceLimit;
    offset = 0;
  }

  // Moves the requests one edge (length d) up the tree. Caller must have
  // verified d <= min_slack.
  void Ascend(Distance d) noexcept {
    min_slack = SlackMinus(min_slack, d);
    offset = SaturatingAdd(offset, d);
  }
};

// The shared entry arena plus the set operations that need it.
class PendingArena {
 public:
  explicit PendingArena(std::size_t client_count) { entries_.reserve(client_count); }

  void AddLeaf(PendingSet& set, NodeId client, Requests requests, Distance dmax) {
    const auto id = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back(PendingEntry{client, requests, dmax, kNil});
    set.head = id;
    set.tail = id;
    set.total = requests;
    set.min_slack = dmax;
  }

  // Applies the lazy offset to all entries.
  void Flush(PendingSet& set) {
    if (set.offset == 0) return;
    for (std::uint32_t e = set.head; e != kNil; e = entries_[e].next) {
      entries_[e].slack = SlackMinus(entries_[e].slack, set.offset);
    }
    set.offset = 0;
  }

  // Appends another set (its offset is flushed first); O(1) splice.
  void Absorb(PendingSet& set, PendingSet& other) {
    Flush(other);
    if (set.head == kNil) {
      set.head = other.head;
      RPT_CHECK(set.offset == 0);
    } else {
      Flush(set);
      entries_[set.tail].next = other.head;
    }
    set.tail = other.tail;
    set.total += other.total;
    set.min_slack = std::min(set.min_slack, other.min_slack);
    other.Clear();
  }

  // Places a replica at `server` handling every entry of `pending`.
  void PlaceServer(Solution& solution, NodeId server, PendingSet& pending) {
    solution.replicas.push_back(server);
    for (std::uint32_t e = pending.head; e != kNil; e = entries_[e].next) {
      solution.assignment.push_back(ServiceEntry{entries_[e].client, server, entries_[e].amount});
    }
    pending.Clear();
  }

 private:
  std::vector<PendingEntry> entries_;
};

}  // namespace

SingleGenResult SolveSingleGen(const Instance& instance) {
  const Tree& tree = instance.GetTree();
  const Requests capacity = instance.Capacity();
  RPT_REQUIRE(instance.AllRequestsFitLocally(),
              "single-gen: some client has r_i > W; no Single solution exists");

  SingleGenResult result;
  PendingArena arena(tree.ClientCount());
  std::vector<PendingSet> pending(tree.Size());

  for (const NodeId node : tree.PostOrder()) {
    PendingSet& mine = pending[node];
    if (tree.IsClient(node)) {
      // Leaf: return (r_j, dmax).
      const Requests requests = tree.RequestsOf(node);
      if (requests > 0) arena.AddLeaf(mine, node, requests, instance.Dmax());
      continue;
    }

    // Step 1: per child, either the pending requests survive the edge to us,
    // or a replica is forced at the child by the distance constraint.
    Requests child_total = 0;
    for (const NodeId child : tree.Children(node)) {
      PendingSet& theirs = pending[child];
      if (theirs.Empty()) continue;
      const Distance delta = tree.DistToParent(child);
      if (delta > theirs.min_slack) {
        arena.Flush(theirs);
        arena.PlaceServer(result.solution, child, theirs);
        ++result.stats.distance_replicas;
      } else {
        theirs.Ascend(delta);
        child_total += theirs.total;
      }
    }

    if (child_total > capacity) {
      // Step 2: too many requests to pass through this node — every child
      // with pending requests becomes a server.
      for (const NodeId child : tree.Children(node)) {
        PendingSet& theirs = pending[child];
        if (theirs.Empty()) continue;
        arena.Flush(theirs);
        arena.PlaceServer(result.solution, child, theirs);
        ++result.stats.capacity_replicas;
      }
      continue;  // (0, dmax) goes up
    }

    // Step 3: requests fit through this node.
    if (node == tree.Root()) {
      PendingSet merged;
      for (const NodeId child : tree.Children(node)) {
        if (!pending[child].Empty()) arena.Absorb(merged, pending[child]);
      }
      if (!merged.Empty()) {
        arena.Flush(merged);
        arena.PlaceServer(result.solution, tree.Root(), merged);
        ++result.stats.distance_replicas;  // R1 in the proof of Theorem 3
      }
    } else {
      for (const NodeId child : tree.Children(node)) {
        if (!pending[child].Empty()) arena.Absorb(mine, pending[child]);
      }
      RPT_CHECK(mine.total <= capacity);
    }
  }

  // Single-node tree (root only, no clients) or all-zero requests: nothing
  // to do; result stays empty and valid.
  return result;
}

}  // namespace rpt::single
