#include "single/single_gen.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace rpt::single {

namespace {

// Subtracts d from a slack, treating kNoDistanceLimit as +inf.
Distance SlackMinus(Distance slack, Distance d) noexcept {
  if (slack == kNoDistanceLimit) return slack;
  RPT_CHECK(slack >= d);
  return slack - d;
}

// One client whose requests are still travelling up the tree. `slack` is the
// remaining distance budget at the node currently holding the aggregate:
// dmax - dist(client, current node).
struct PendingEntry {
  NodeId client;
  Requests amount;
  Distance slack;
};

// Aggregate of pending requests at a node — the (req, dist) pair of the
// paper, plus the explicit client items. Slack subtraction is lazy (a
// per-set offset) so deep chains stay linear-time.
struct PendingSet {
  std::vector<PendingEntry> entries;
  Requests total = 0;
  Distance min_slack = kNoDistanceLimit;  // effective min over entries
  Distance offset = 0;                    // pending subtraction per entry

  [[nodiscard]] bool Empty() const noexcept { return total == 0; }

  void Clear() noexcept {
    entries.clear();
    total = 0;
    min_slack = kNoDistanceLimit;
    offset = 0;
  }

  // Moves the requests one edge (length d) up the tree. Caller must have
  // verified d <= min_slack.
  void Ascend(Distance d) noexcept {
    min_slack = SlackMinus(min_slack, d);
    offset = SaturatingAdd(offset, d);
  }

  // Applies the lazy offset to all entries.
  void Flush() {
    if (offset == 0) return;
    for (PendingEntry& entry : entries) entry.slack = SlackMinus(entry.slack, offset);
    offset = 0;
  }

  // Appends another set (its offset is flushed first).
  void Absorb(PendingSet&& other) {
    other.Flush();
    if (entries.empty()) {
      entries = std::move(other.entries);
      RPT_CHECK(offset == 0);
    } else {
      Flush();
      entries.insert(entries.end(), other.entries.begin(), other.entries.end());
    }
    total += other.total;
    min_slack = std::min(min_slack, other.min_slack);
    other.Clear();
  }
};

// Places a replica at `server` handling every entry of `pending`.
void PlaceServer(Solution& solution, NodeId server, PendingSet& pending) {
  solution.replicas.push_back(server);
  for (const PendingEntry& entry : pending.entries) {
    solution.assignment.push_back(ServiceEntry{entry.client, server, entry.amount});
  }
  pending.Clear();
}

}  // namespace

SingleGenResult SolveSingleGen(const Instance& instance) {
  const Tree& tree = instance.GetTree();
  const Requests capacity = instance.Capacity();
  RPT_REQUIRE(instance.AllRequestsFitLocally(),
              "single-gen: some client has r_i > W; no Single solution exists");

  SingleGenResult result;
  std::vector<PendingSet> pending(tree.Size());

  for (const NodeId node : tree.PostOrder()) {
    PendingSet& mine = pending[node];
    if (tree.IsClient(node)) {
      // Leaf: return (r_j, dmax).
      const Requests requests = tree.RequestsOf(node);
      if (requests > 0) {
        mine.entries.push_back(PendingEntry{node, requests, instance.Dmax()});
        mine.total = requests;
        mine.min_slack = instance.Dmax();
      }
      continue;
    }

    // Step 1: per child, either the pending requests survive the edge to us,
    // or a replica is forced at the child by the distance constraint.
    Requests child_total = 0;
    for (const NodeId child : tree.Children(node)) {
      PendingSet& theirs = pending[child];
      if (theirs.Empty()) continue;
      const Distance delta = tree.DistToParent(child);
      if (delta > theirs.min_slack) {
        theirs.Flush();
        PlaceServer(result.solution, child, theirs);
        ++result.stats.distance_replicas;
      } else {
        theirs.Ascend(delta);
        child_total += theirs.total;
      }
    }

    if (child_total > capacity) {
      // Step 2: too many requests to pass through this node — every child
      // with pending requests becomes a server.
      for (const NodeId child : tree.Children(node)) {
        PendingSet& theirs = pending[child];
        if (theirs.Empty()) continue;
        theirs.Flush();
        PlaceServer(result.solution, child, theirs);
        ++result.stats.capacity_replicas;
      }
      continue;  // (0, dmax) goes up
    }

    // Step 3: requests fit through this node.
    if (node == tree.Root()) {
      PendingSet merged;
      for (const NodeId child : tree.Children(node)) {
        if (!pending[child].Empty()) merged.Absorb(std::move(pending[child]));
      }
      if (!merged.Empty()) {
        merged.Flush();
        PlaceServer(result.solution, tree.Root(), merged);
        ++result.stats.distance_replicas;  // R1 in the proof of Theorem 3
      }
    } else {
      for (const NodeId child : tree.Children(node)) {
        if (!pending[child].Empty()) mine.Absorb(std::move(pending[child]));
      }
      RPT_CHECK(mine.total <= capacity);
    }
  }

  // Single-node tree (root only, no clients) or all-zero requests: nothing
  // to do; result stays empty and valid.
  return result;
}

}  // namespace rpt::single
