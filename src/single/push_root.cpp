#include "single/push_root.hpp"

#include <algorithm>
#include <vector>

namespace rpt::single {

namespace {

/// Sentinel for "no server occupies this node" in the flat occupancy index.
constexpr std::size_t kFree = static_cast<std::size_t>(-1);

// Mutable server state during the improvement loop.
struct Server {
  NodeId node = kInvalidNode;
  Requests load = 0;
  std::vector<std::pair<NodeId, Requests>> clients;  // (client, whole demand)
  bool alive = true;
};

class PushRoot {
 public:
  explicit PushRoot(const Instance& instance)
      : instance_(instance), tree_(instance.GetTree()), occupied_(tree_.Size(), kFree) {}

  PushRootResult Run() {
    // Trivial start: every requesting client serves itself.
    for (const NodeId client : tree_.Clients()) {
      const Requests demand = tree_.RequestsOf(client);
      if (demand == 0) continue;
      Server server;
      server.node = client;
      server.load = demand;
      server.clients = {{client, demand}};
      occupied_[client] = servers_.size();
      servers_.push_back(std::move(server));
    }
    extra_load_.assign(servers_.size(), 0);

    bool changed = true;
    while (changed) {
      ++stats_.rounds;
      changed = false;
      changed |= PushUpPass();
      changed |= RepackPass();
    }

    PushRootResult result;
    result.stats = stats_;
    for (const Server& server : servers_) {
      if (!server.alive) continue;
      result.solution.replicas.push_back(server.node);
      for (const auto& [client, demand] : server.clients) {
        result.solution.assignment.push_back(ServiceEntry{client, server.node, demand});
      }
    }
    result.solution.Canonicalize();
    return result;
  }

 private:
  // True iff every client of `server` may be served at `target`.
  bool AllEligible(const Server& server, NodeId target) const {
    for (const auto& [client, demand] : server.clients) {
      (void)demand;
      if (!instance_.CanServe(client, target)) return false;
    }
    return true;
  }

  // Climb order: lightest servers first. Small bundles are the ones that can
  // still merge, so they must claim the shared ancestors before a heavy
  // server parks on them and blocks everyone (on the Fig. 4 family this
  // ordering is exactly what recovers the optimum K+1: the unit clients pool
  // at the root while each W-sized client settles one level up). Depth
  // breaks ties so children move before parents.
  const std::vector<std::size_t>& AliveClimbOrder() {
    order_.clear();
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      if (servers_[i].alive) order_.push_back(i);
    }
    std::sort(order_.begin(), order_.end(), [this](std::size_t a, std::size_t b) {
      if (servers_[a].load != servers_[b].load) return servers_[a].load < servers_[b].load;
      const std::uint32_t da = tree_.Depth(servers_[a].node);
      const std::uint32_t db = tree_.Depth(servers_[b].node);
      if (da != db) return da > db;
      return servers_[a].node < servers_[b].node;
    });
    return order_;
  }

  // Move 1+2: climb each server toward the root; merge into an occupied
  // ancestor with spare capacity, else relocate onto a free ancestor.
  bool PushUpPass() {
    bool changed = false;
    for (const std::size_t index : AliveClimbOrder()) {
      Server& server = servers_[index];
      if (!server.alive) continue;
      while (server.node != tree_.Root()) {
        const NodeId parent = tree_.Parent(server.node);
        if (!AllEligible(server, parent)) break;
        if (const std::size_t occupant = occupied_[parent]; occupant != kFree) {
          Server& target = servers_[occupant];
          if (target.load + server.load > instance_.Capacity()) break;
          // Merge: the ancestor absorbs all of this server's clients.
          target.load += server.load;
          target.clients.insert(target.clients.end(), server.clients.begin(),
                                server.clients.end());
          occupied_[server.node] = kFree;
          server.alive = false;
          ++stats_.merges;
          changed = true;
          break;
        }
        // Relocate one level up (free slot).
        occupied_[server.node] = kFree;
        server.node = parent;
        occupied_[parent] = index;
        ++stats_.push_ups;
        changed = true;
      }
    }
    return changed;
  }

  // Move 3: try to empty light servers by first-fit moving their clients
  // (whole, Single policy) into other servers' residual capacity.
  bool RepackPass() {
    bool changed = false;
    std::vector<std::size_t>& order = order_;
    order.clear();
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      if (servers_[i].alive) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
      if (servers_[a].load != servers_[b].load) return servers_[a].load < servers_[b].load;
      return servers_[a].node < servers_[b].node;
    });
    rank_.assign(servers_.size(), kFree);
    for (std::size_t pos = 0; pos < order.size(); ++pos) rank_[order[pos]] = pos;
    for (const std::size_t index : order) {
      Server& server = servers_[index];
      if (!server.alive) continue;
      // Tentatively place each client elsewhere; commit only if all fit.
      // `extra_load_` is a flat per-server scratch: only the entries named
      // in `moves_` are ever dirtied, and they are wiped again below.
      //
      // Every server serves only clients inside its subtree, so a client's
      // candidate targets are exactly the occupied nodes on its root path:
      // walking the ancestor chain (O(depth)) and taking the feasible
      // candidate with the smallest pass-order rank reproduces the first-fit
      // scan over all servers without the O(|servers|) inner loop.
      moves_.clear();
      bool all_placed = true;
      for (const auto& entry : server.clients) {
        const auto& [client, demand] = entry;
        std::size_t best = kFree;
        for (NodeId ancestor = client;; ancestor = tree_.Parent(ancestor)) {
          const std::size_t occupant = occupied_[ancestor];
          if (occupant != kFree && occupant != index) {
            const Server& other = servers_[occupant];
            if (other.alive && rank_[occupant] < (best == kFree ? kFree : rank_[best]) &&
                instance_.CanServe(client, ancestor) &&
                other.load + extra_load_[occupant] + demand <= instance_.Capacity()) {
              best = occupant;
            }
          }
          if (ancestor == tree_.Root()) break;
        }
        if (best == kFree) {
          all_placed = false;
          break;
        }
        moves_.emplace_back(best, entry);
        extra_load_[best] += demand;
      }
      if (all_placed) {
        for (const auto& [target_index, entry] : moves_) {
          servers_[target_index].clients.push_back(entry);
          servers_[target_index].load += entry.second;
          extra_load_[target_index] = 0;
        }
        occupied_[server.node] = kFree;
        server.alive = false;
        ++stats_.repacks;
        changed = true;
      } else {
        for (const auto& [target_index, entry] : moves_) extra_load_[target_index] = 0;
      }
    }
    return changed;
  }

  const Instance& instance_;
  const Tree& tree_;
  std::vector<Server> servers_;
  std::vector<std::size_t> occupied_;  // node -> alive server index, kFree when empty
  std::vector<std::size_t> order_;     // reused pass-order scratch
  std::vector<std::size_t> rank_;      // server index -> position in the repack order
  std::vector<std::pair<std::size_t, std::pair<NodeId, Requests>>> moves_;
  std::vector<Requests> extra_load_;   // per-server tentative load scratch
  PushRootStats stats_;
};

}  // namespace

PushRootResult SolveSinglePushRoot(const Instance& instance) {
  RPT_REQUIRE(instance.AllRequestsFitLocally(),
              "single-push: some client has r_i > W; no Single solution exists");
  PushRoot engine(instance);
  return engine.Run();
}

}  // namespace rpt::single
