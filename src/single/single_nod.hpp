// Algorithm 2 of the paper: `single-nod`, a 2-approximation for Single-NoD
// (no distance constraints), Theorem 4. Time O((∆log∆ + |C|)·|T|).
//
// The algorithm keeps, per internal node j, a list L_j of pending *bundles*.
// A bundle is rooted at some node j' of the subtree and aggregates requests
// of one or more clients below j'; placing a replica at j' can serve the
// whole bundle (no distance constraints, j' is an ancestor of all its
// clients). When the bundles at j exceed W, j becomes a server and greedily
// absorbs the smallest bundles; the first bundle that overflows gets its own
// server at its root (the jmin of the paper); the remaining bundles are
// re-parented to L_parent(j) unchanged.
//
// Deviation from the pseudo-code (documented in DESIGN.md): at the root, a
// replica is only placed when unserved requests remain; the paper's listing
// adds the root unconditionally, which would waste a replica on an
// all-zero-requests instance.
#pragma once

#include <span>

#include "model/instance.hpp"
#include "model/solution.hpp"
#include "tree/topology_view.hpp"

namespace rpt::single {

/// Breakdown matching the R1/R2/R3 sets in the proof of Theorem 4.
struct SingleNodStats {
  std::uint64_t overflow_servers = 0;  ///< R1: servers placed at overflowing nodes (line 11)
  std::uint64_t extra_servers = 0;     ///< R2: the jmin companion servers (line 16); |R2| == |R1|
  std::uint64_t root_spill_servers = 0;  ///< R3: bundles left at the root (line 25)
  bool root_server = false;              ///< whether the final root replica was placed
};

/// Result of running single-nod.
struct SingleNodResult {
  Solution solution;
  SingleNodStats stats;
};

/// Ablation knobs (benchmark E9). Defaults reproduce the paper's algorithm.
struct SingleNodOptions {
  /// Order in which an overflowing node absorbs pending bundles. The paper
  /// sorts non-decreasing (smallest first, line 13-17 of Algorithm 2); the
  /// largest-first ablation loses the Theorem 4 guarantee.
  enum class BundleOrder : std::uint8_t { kSmallestFirst, kLargestFirst };
  BundleOrder order = BundleOrder::kSmallestFirst;
};

/// Runs Algorithm 2. Requires no distance constraint on the instance and
/// r_i <= W for every client; throws InvalidArgument otherwise. Returns a
/// feasible Single solution, with at most 2x the optimal replica count under
/// the default options.
[[nodiscard]] SingleNodResult SolveSingleNod(const Instance& instance,
                                             const SingleNodOptions& options = {});

/// Demand-overlay form: runs Algorithm 2 on `tree` with client i issuing
/// `demands[i]` requests (indexed by NodeId, size == tree.Size(); internal
/// entries must be 0) instead of the tree's own request column. Requires
/// every demand <= capacity; throws InvalidArgument otherwise. Byte-identical
/// to the Instance form on Tree::WithRequests(demands) — this is the
/// zero-materialization single-policy pass the incremental re-solver
/// (src/incremental/) runs after each demand update.
[[nodiscard]] SingleNodResult SolveSingleNod(const Tree& tree, Requests capacity,
                                             std::span<const Requests> demands,
                                             const SingleNodOptions& options = {});

/// Topology-view form: the demand-overlay pass over either backend (base
/// Tree or mutated TreeOverlay). Dead overlay ids must carry demand 0 and
/// are skipped entirely; over a base Tree this is byte-identical to the
/// Tree form above.
[[nodiscard]] SingleNodResult SolveSingleNod(TopologyView view, Requests capacity,
                                             std::span<const Requests> demands,
                                             const SingleNodOptions& options = {});

}  // namespace rpt::single
