// Algorithm 1 of the paper: `single-gen`, a (∆+1)-approximation for the
// Single policy with distance constraints (Theorem 3), and a ∆-approximation
// without them (Corollary 1). Time O(∆·|T|) up to list bookkeeping.
//
// The paper's procedure only counts replicas; this implementation
// additionally tracks, for every pending aggregate, the multiset of
// (client, amount, slack) items it contains, so the returned Solution carries
// the explicit request routing implied by the algorithm. The routing is
// re-checked by the independent validator in tests.
#pragma once

#include "model/instance.hpp"
#include "model/solution.hpp"
#include "model/validate.hpp"

namespace rpt::single {

/// Breakdown of where single-gen placed replicas, matching the R1/R2 split
/// used in the proof of Theorem 3.
struct SingleGenStats {
  /// Replicas forced by the distance constraint (line 9) or placed at the
  /// root (line 19) — the set R1 of the proof, |R1| <= |R_opt|.
  std::uint64_t distance_replicas = 0;
  /// Replicas placed when a node's children exceed W (line 14) — the set R2,
  /// |R2| <= ∆·|R_opt|.
  std::uint64_t capacity_replicas = 0;
};

/// Result of running single-gen.
struct SingleGenResult {
  Solution solution;
  SingleGenStats stats;
};

/// Runs Algorithm 1 on the instance. Requires r_i <= W for every client
/// (otherwise no Single solution exists at all); throws InvalidArgument if
/// violated. Always succeeds and returns a feasible Single solution.
[[nodiscard]] SingleGenResult SolveSingleGen(const Instance& instance);

}  // namespace rpt::single
