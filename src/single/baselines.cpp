#include "single/baselines.hpp"

#include <algorithm>
#include <vector>

namespace rpt::single {

Solution SolveClientLocal(const Instance& instance) {
  RPT_REQUIRE(instance.AllRequestsFitLocally(),
              "client-local: some client has r_i > W; no Single solution exists");
  const Tree& tree = instance.GetTree();
  Solution solution;
  for (const NodeId client : tree.Clients()) {
    const Requests requests = tree.RequestsOf(client);
    if (requests == 0) continue;
    solution.replicas.push_back(client);
    solution.assignment.push_back(ServiceEntry{client, client, requests});
  }
  return solution;
}

Solution SolveGreedyBestFit(const Instance& instance) {
  RPT_REQUIRE(instance.AllRequestsFitLocally(),
              "greedy-best-fit: some client has r_i > W; no Single solution exists");
  const Tree& tree = instance.GetTree();
  const Requests capacity = instance.Capacity();

  std::vector<NodeId> clients(tree.Clients().begin(), tree.Clients().end());
  std::erase_if(clients, [&](NodeId c) { return tree.RequestsOf(c) == 0; });
  std::sort(clients.begin(), clients.end(), [&](NodeId a, NodeId b) {
    if (tree.RequestsOf(a) != tree.RequestsOf(b)) return tree.RequestsOf(a) > tree.RequestsOf(b);
    return a < b;
  });

  // Sentinel residual meaning "no replica opened at this node yet".
  constexpr Requests kClosed = static_cast<Requests>(-1);

  Solution solution;
  std::vector<Requests> residual(tree.Size(), kClosed);  // per-node remaining capacity
  std::vector<NodeId> eligible;  // reused root-path scratch

  for (const NodeId client : clients) {
    const Requests requests = tree.RequestsOf(client);
    // Walk the root path collecting eligible nodes (within dmax).
    eligible.clear();
    for (NodeId node = client;; node = tree.Parent(node)) {
      if (!instance.CanServe(client, node)) break;
      eligible.push_back(node);
      if (node == tree.Root()) break;
    }
    // Best fit among open servers.
    NodeId best = kInvalidNode;
    Requests best_residual = capacity + 1;
    for (const NodeId node : eligible) {
      if (residual[node] == kClosed) continue;
      if (residual[node] >= requests && residual[node] < best_residual) {
        best = node;
        best_residual = residual[node];
      }
    }
    if (best == kInvalidNode) {
      // Open a new replica at the highest eligible replica-free node.
      for (auto it = eligible.rbegin(); it != eligible.rend(); ++it) {
        if (residual[*it] == kClosed) {
          best = *it;
          break;
        }
      }
      RPT_CHECK(best != kInvalidNode);  // the client itself is always free
      residual[best] = capacity;
      solution.replicas.push_back(best);
    }
    residual[best] -= requests;
    solution.assignment.push_back(ServiceEntry{client, best, requests});
  }
  return solution;
}

}  // namespace rpt::single
