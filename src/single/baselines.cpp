#include "single/baselines.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace rpt::single {

Solution SolveClientLocal(const Instance& instance) {
  RPT_REQUIRE(instance.AllRequestsFitLocally(),
              "client-local: some client has r_i > W; no Single solution exists");
  const Tree& tree = instance.GetTree();
  Solution solution;
  for (const NodeId client : tree.Clients()) {
    const Requests requests = tree.RequestsOf(client);
    if (requests == 0) continue;
    solution.replicas.push_back(client);
    solution.assignment.push_back(ServiceEntry{client, client, requests});
  }
  return solution;
}

Solution SolveGreedyBestFit(const Instance& instance) {
  RPT_REQUIRE(instance.AllRequestsFitLocally(),
              "greedy-best-fit: some client has r_i > W; no Single solution exists");
  const Tree& tree = instance.GetTree();
  const Requests capacity = instance.Capacity();

  std::vector<NodeId> clients(tree.Clients().begin(), tree.Clients().end());
  std::erase_if(clients, [&](NodeId c) { return tree.RequestsOf(c) == 0; });
  std::sort(clients.begin(), clients.end(), [&](NodeId a, NodeId b) {
    if (tree.RequestsOf(a) != tree.RequestsOf(b)) return tree.RequestsOf(a) > tree.RequestsOf(b);
    return a < b;
  });

  Solution solution;
  std::unordered_map<NodeId, Requests> residual;  // open server -> remaining capacity

  for (const NodeId client : clients) {
    const Requests requests = tree.RequestsOf(client);
    // Walk the root path collecting eligible nodes (within dmax).
    std::vector<NodeId> eligible;
    for (NodeId node = client;; node = tree.Parent(node)) {
      if (!instance.CanServe(client, node)) break;
      eligible.push_back(node);
      if (node == tree.Root()) break;
    }
    // Best fit among open servers.
    NodeId best = kInvalidNode;
    Requests best_residual = capacity + 1;
    for (const NodeId node : eligible) {
      const auto it = residual.find(node);
      if (it == residual.end()) continue;
      if (it->second >= requests && it->second < best_residual) {
        best = node;
        best_residual = it->second;
      }
    }
    if (best == kInvalidNode) {
      // Open a new replica at the highest eligible replica-free node.
      for (auto it = eligible.rbegin(); it != eligible.rend(); ++it) {
        if (!residual.contains(*it)) {
          best = *it;
          break;
        }
      }
      RPT_CHECK(best != kInvalidNode);  // the client itself is always free
      residual.emplace(best, capacity);
      solution.replicas.push_back(best);
    }
    residual[best] -= requests;
    solution.assignment.push_back(ServiceEntry{client, best, requests});
  }
  return solution;
}

}  // namespace rpt::single
