// `single-push`: the placement strategy sketched in the paper's conclusion.
//
// The paper conjectures a 3/2-approximation for Single-NoD-Bin and writes:
// "A greedy algorithm is unlikely to be good enough, and we rather envision
// to push servers towards the root of the tree, whenever possible." This
// module implements that idea so the conjecture can be tested empirically
// (bench_push_conjecture): start from the trivial client-local placement and
// iterate three improvement moves until a fixpoint —
//   1. push-up: relocate a server (with all its clients) to its parent when
//      every served client stays eligible, concentrating servers rootward;
//   2. merge: fold a server into an already-placed ancestor with spare
//      capacity;
//   3. repack: empty a server by first-fit moving each of its clients
//      (whole, Single policy) into other servers' residual capacity.
// Every move preserves feasibility; count and total server depth strictly
// decrease, so termination is immediate.
//
// No approximation guarantee is proven here — the bench measures the
// empirical ratio against the exhaustive optimum (it stayed <= 3/2 on every
// Single-NoD-Bin instance we generated, consistent with the conjecture).
// Works with distance constraints too (moves are eligibility-checked).
#pragma once

#include "model/instance.hpp"
#include "model/solution.hpp"

namespace rpt::single {

/// Counters for the improvement moves.
struct PushRootStats {
  std::uint64_t push_ups = 0;  ///< server relocations toward the root
  std::uint64_t merges = 0;    ///< servers folded into an ancestor server
  std::uint64_t repacks = 0;   ///< servers emptied by redistributing clients
  std::uint64_t rounds = 0;    ///< full passes until the fixpoint
};

/// Result of running single-push.
struct PushRootResult {
  Solution solution;
  PushRootStats stats;
};

/// Runs the push-toward-root strategy. Requires r_i <= W for every client
/// (throws InvalidArgument otherwise). Returns a feasible Single solution.
[[nodiscard]] PushRootResult SolveSinglePushRoot(const Instance& instance);

}  // namespace rpt::single
