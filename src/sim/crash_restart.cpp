#include "sim/crash_restart.hpp"

#include <memory>
#include <span>

#include "serve/serve_harness.hpp"

namespace rpt::sim {

namespace {

// Applies batch `events`, swallowing only validation failures — a rejected
// batch publishes nothing in any life (first run, replay, oracle), so the
// three stay in lockstep by skipping it everywhere.
void ApplyLenient(serve::ServeHarness& harness,
                  std::span<const incremental::UpdateEvent> events) {
  try {
    harness.ApplyAndPublish(events);
  } catch (const InvalidArgument&) {
  }
}

}  // namespace

CrashRestartResult RunCrashRestart(const Instance& instance,
                                   const incremental::UpdateTrace& trace,
                                   const CrashRestartConfig& config) {
  RPT_REQUIRE(!trace.empty(), "crash-restart: trace must be non-empty");
  RPT_REQUIRE(config.crash_at_batch <= trace.size(),
              "crash-restart: crash index past the end of the trace");
  RPT_REQUIRE(!config.dir.empty(), "crash-restart: needs a state directory");

  fail::DisarmAll();
  serve::DurabilityOptions durability;
  durability.dir = config.dir;
  durability.checkpoint_every = config.checkpoint_every;

  CrashRestartResult result;

  // First life: apply batches until the armed failpoint kills the harness.
  {
    auto harness = std::make_unique<serve::ServeHarness>(instance, config.solver,
                                                         durability);
    bool crashed = false;
    for (std::uint64_t i = 0; i < trace.size() && !crashed; ++i) {
      if (config.crash_at_batch == i + 1) {
        fail::Arm(config.crash_point, config.crash_action, 1, config.crash_param);
      }
      try {
        ApplyLenient(*harness, trace[i]);
      } catch (const fail::InjectedFault&) {
        crashed = true;  // the process "died": abandon the harness mid-batch
      }
    }
    fail::DisarmAll();
  }  // harness destroyed — in a real crash not even this runs, but the WAL
     // bytes are already on disk and that is all recovery may read

  // Second life: recover from disk, resume the unseen tail of the trace.
  auto recovered =
      serve::ServeHarness::RecoverFrom(instance, config.solver, durability);
  result.durable_seq_at_recovery = recovered->LastDurableSeq();
  result.recovered_batches = recovered->RecoveredBatches();
  for (std::uint64_t seq = recovered->LastDurableSeq(); seq < trace.size(); ++seq) {
    ApplyLenient(*recovered, trace[seq]);  // trace[seq] is batch seq+1
  }
  {
    const auto ref = recovered->Pin();
    result.final_version = ref->Version();
    result.final_hash = ref->CanonicalHash();
  }

  // Oracle: the same trace, uninterrupted, never touching disk.
  serve::ServeHarness oracle(instance, config.solver);
  for (const auto& batch : trace) ApplyLenient(oracle, batch);
  {
    const auto ref = oracle.Pin();
    result.oracle_version = ref->Version();
    result.oracle_hash = ref->CanonicalHash();
  }

  result.match = result.final_version == result.oracle_version &&
                 result.final_hash == result.oracle_hash;
  return result;
}

}  // namespace rpt::sim
