#include "sim/replay.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>

#include "model/validate.hpp"

namespace rpt::sim {

std::uint64_t DrawPoisson(Rng& rng, double mean) {
  RPT_REQUIRE(mean >= 0.0 && std::isfinite(mean), "DrawPoisson: mean must be finite and >= 0");
  if (mean == 0.0) return 0;
  if (mean <= 64.0) {
    // Knuth: multiply uniforms until below e^-mean.
    const double threshold = std::exp(-mean);
    std::uint64_t count = 0;
    double product = rng.NextUnit();
    while (product > threshold) {
      ++count;
      product *= rng.NextUnit();
    }
    return count;
  }
  // Normal approximation N(mean, mean) via Box-Muller, clamped at zero.
  const double u1 = std::max(rng.NextUnit(), 1e-12);
  const double u2 = rng.NextUnit();
  const double gauss = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double value = mean + std::sqrt(mean) * gauss;
  return value <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(value));
}

ReplayReport Replay(const Instance& instance, const Solution& solution,
                    const ReplayConfig& config) {
  RPT_REQUIRE(config.ticks > 0, "Replay: need at least one tick");
  RPT_REQUIRE(config.demand_factor >= 0.0 && std::isfinite(config.demand_factor),
              "Replay: demand_factor must be finite and >= 0");
  const auto validation = ValidateSolution(instance, Policy::kMultiple, solution);
  RPT_REQUIRE(validation.ok, "Replay: solution is not feasible: " + validation.Describe());

  const Tree& tree = instance.GetTree();
  const Requests capacity = instance.Capacity();
  Rng rng(config.seed);

  // Compact server states and per-client routing shares.
  std::unordered_map<NodeId, std::size_t> server_index;
  std::vector<ServerReport> servers;
  for (const NodeId replica : solution.replicas) {
    server_index.emplace(replica, servers.size());
    ServerReport report;
    report.server = replica;
    servers.push_back(report);
  }
  struct Share {
    std::size_t server;
    Requests amount;
    Distance distance;
  };
  std::unordered_map<NodeId, std::vector<Share>> shares;
  double distance_weighted = 0.0;
  Requests planned_total = 0;
  ReplayReport report;
  for (const ServiceEntry& entry : solution.assignment) {
    const std::size_t index = server_index.at(entry.server);
    const Distance distance = tree.DistToAncestor(entry.client, entry.server);
    shares[entry.client].push_back(Share{index, entry.amount, distance});
    servers[index].planned_load += entry.amount;
    distance_weighted += static_cast<double>(distance) * static_cast<double>(entry.amount);
    planned_total += entry.amount;
    report.max_service_distance = std::max(report.max_service_distance, distance);
  }
  report.mean_service_distance =
      planned_total == 0 ? 0.0 : distance_weighted / static_cast<double>(planned_total);

  // FIFO backlog per server: batches of (arrival tick, count).
  std::vector<std::deque<std::pair<std::uint64_t, std::uint64_t>>> queues(servers.size());
  std::vector<std::uint64_t> backlog(servers.size(), 0);
  double wait_weighted = 0.0;

  report.ticks = config.ticks;
  for (std::uint64_t tick = 0; tick < config.ticks; ++tick) {
    // Arrivals: each client draws its demand and splits it proportionally
    // to the planned routing (largest-remainder rounding keeps the total).
    for (const auto& [client, client_shares] : shares) {
      Requests planned = 0;
      for (const Share& share : client_shares) planned += share.amount;
      const double mean =
          static_cast<double>(planned) * config.demand_factor;
      const std::uint64_t demand = DrawPoisson(rng, mean);
      if (demand == 0) continue;
      std::uint64_t assigned = 0;
      for (std::size_t s = 0; s < client_shares.size(); ++s) {
        const Share& share = client_shares[s];
        std::uint64_t part;
        if (s + 1 == client_shares.size()) {
          part = demand - assigned;  // remainder to the last share
        } else {
          part = demand * share.amount / planned;
        }
        assigned += part;
        if (part == 0) continue;
        queues[share.server].emplace_back(tick, part);
        backlog[share.server] += part;
        servers[share.server].arrived += part;
        report.arrived += part;
      }
    }
    // Service: each server drains up to W requests, oldest first.
    std::uint64_t total_backlog = 0;
    for (std::size_t s = 0; s < servers.size(); ++s) {
      Requests budget = capacity;
      while (budget > 0 && !queues[s].empty()) {
        auto& [arrival, count] = queues[s].front();
        const std::uint64_t take = std::min<std::uint64_t>(budget, count);
        wait_weighted += static_cast<double>(tick - arrival) * static_cast<double>(take);
        servers[s].served += take;
        report.served += take;
        backlog[s] -= take;
        budget -= take;
        count -= take;
        if (count == 0) queues[s].pop_front();
      }
      servers[s].peak_backlog = std::max(servers[s].peak_backlog, backlog[s]);
      total_backlog += backlog[s];
    }
    report.peak_backlog_total = std::max(report.peak_backlog_total, total_backlog);
  }

  for (std::size_t s = 0; s < servers.size(); ++s) {
    servers[s].final_backlog = backlog[s];
    servers[s].utilization =
        static_cast<double>(servers[s].served) /
        (static_cast<double>(config.ticks) * static_cast<double>(capacity));
  }
  report.mean_wait_ticks =
      report.served == 0 ? 0.0 : wait_weighted / static_cast<double>(report.served);
  report.servers = std::move(servers);
  return report;
}

}  // namespace rpt::sim
