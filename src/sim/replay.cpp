#include "sim/replay.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>

#include "model/validate.hpp"

namespace rpt::sim {

std::uint64_t DrawPoisson(Rng& rng, double mean) {
  RPT_REQUIRE(mean >= 0.0 && std::isfinite(mean), "DrawPoisson: mean must be finite and >= 0");
  if (mean == 0.0) return 0;
  if (mean <= 64.0) {
    // Knuth: multiply uniforms until below e^-mean.
    const double threshold = std::exp(-mean);
    std::uint64_t count = 0;
    double product = rng.NextUnit();
    while (product > threshold) {
      ++count;
      product *= rng.NextUnit();
    }
    return count;
  }
  // Normal approximation N(mean, mean) via Box-Muller, clamped at zero.
  const double u1 = std::max(rng.NextUnit(), 1e-12);
  const double u2 = rng.NextUnit();
  const double gauss = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double value = mean + std::sqrt(mean) * gauss;
  return value <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(value));
}

std::vector<std::uint64_t> SplitLargestRemainder(std::uint64_t demand,
                                                 const std::vector<Requests>& weights) {
  RPT_REQUIRE(!weights.empty(), "SplitLargestRemainder: need at least one weight");
  // The sum (and hence the remainders) can exceed 64 bits even though every
  // weight and every resulting part fits: keep both in 128-bit.
  unsigned __int128 total = 0;
  for (const Requests weight : weights) total += weight;
  RPT_REQUIRE(total > 0, "SplitLargestRemainder: weights must have a positive sum");

  std::vector<std::uint64_t> parts(weights.size());
  std::vector<unsigned __int128> remainders(weights.size());
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const auto scaled = static_cast<unsigned __int128>(demand) * weights[i];
    parts[i] = static_cast<std::uint64_t>(scaled / total);  // <= demand, fits
    remainders[i] = scaled % total;
    assigned += parts[i];
  }
  // sum(scaled) == demand * total exactly, so the leftover after flooring is
  // sum(remainders) / total < |weights| units.
  std::vector<std::size_t> order(weights.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return remainders[a] != remainders[b] ? remainders[a] > remainders[b] : a < b;
  });
  for (std::size_t r = 0; assigned < demand; ++r) {
    ++parts[order[r]];
    ++assigned;
  }
  return parts;
}

ReplayReport Replay(const Instance& instance, const Solution& solution,
                    const ReplayConfig& config) {
  RPT_REQUIRE(config.ticks > 0, "Replay: need at least one tick");
  RPT_REQUIRE(config.demand_factor >= 0.0 && std::isfinite(config.demand_factor),
              "Replay: demand_factor must be finite and >= 0");
  const auto validation = ValidateSolution(instance, Policy::kMultiple, solution);
  RPT_REQUIRE(validation.ok, "Replay: solution is not feasible: " + validation.Describe());

  const Tree& tree = instance.GetTree();
  const Requests capacity = instance.Capacity();
  Rng rng(config.seed);

  // Compact server states and per-client routing shares.
  std::unordered_map<NodeId, std::size_t> server_index;
  std::vector<ServerReport> servers;
  for (const NodeId replica : solution.replicas) {
    server_index.emplace(replica, servers.size());
    ServerReport report;
    report.server = replica;
    servers.push_back(report);
  }
  // Per-client routing plan, constant across ticks: parallel server/weight
  // vectors (weights feed the largest-remainder split each tick).
  struct ClientPlan {
    std::vector<std::size_t> servers;
    std::vector<Requests> weights;
    Requests planned = 0;
  };
  std::unordered_map<NodeId, ClientPlan> plans;
  double distance_weighted = 0.0;
  Requests planned_total = 0;
  ReplayReport report;
  for (const ServiceEntry& entry : solution.assignment) {
    const std::size_t index = server_index.at(entry.server);
    const Distance distance = tree.DistToAncestor(entry.client, entry.server);
    ClientPlan& plan = plans[entry.client];
    plan.servers.push_back(index);
    plan.weights.push_back(entry.amount);
    plan.planned += entry.amount;
    servers[index].planned_load += entry.amount;
    distance_weighted += static_cast<double>(distance) * static_cast<double>(entry.amount);
    planned_total += entry.amount;
    report.max_service_distance = std::max(report.max_service_distance, distance);
  }
  report.mean_service_distance =
      planned_total == 0 ? 0.0 : distance_weighted / static_cast<double>(planned_total);

  // FIFO backlog per server: batches of (arrival tick, count).
  std::vector<std::deque<std::pair<std::uint64_t, std::uint64_t>>> queues(servers.size());
  std::vector<std::uint64_t> backlog(servers.size(), 0);
  double wait_weighted = 0.0;

  report.ticks = config.ticks;
  for (std::uint64_t tick = 0; tick < config.ticks; ++tick) {
    // Arrivals: each client draws its demand and splits it proportionally
    // to the planned routing (largest-remainder rounding keeps the total).
    for (const auto& [client, plan] : plans) {
      const double mean =
          static_cast<double>(plan.planned) * config.demand_factor;
      const std::uint64_t demand = DrawPoisson(rng, mean);
      if (demand == 0) continue;
      const std::vector<std::uint64_t> parts = SplitLargestRemainder(demand, plan.weights);
      for (std::size_t s = 0; s < plan.servers.size(); ++s) {
        const std::uint64_t part = parts[s];
        if (part == 0) continue;
        const std::size_t server = plan.servers[s];
        queues[server].emplace_back(tick, part);
        backlog[server] += part;
        servers[server].arrived += part;
        report.arrived += part;
      }
    }
    // Service: each server drains up to W requests, oldest first.
    std::uint64_t total_backlog = 0;
    for (std::size_t s = 0; s < servers.size(); ++s) {
      Requests budget = capacity;
      while (budget > 0 && !queues[s].empty()) {
        auto& [arrival, count] = queues[s].front();
        const std::uint64_t take = std::min<std::uint64_t>(budget, count);
        wait_weighted += static_cast<double>(tick - arrival) * static_cast<double>(take);
        servers[s].served += take;
        report.served += take;
        backlog[s] -= take;
        budget -= take;
        count -= take;
        if (count == 0) queues[s].pop_front();
      }
      servers[s].peak_backlog = std::max(servers[s].peak_backlog, backlog[s]);
      total_backlog += backlog[s];
    }
    report.peak_backlog_total = std::max(report.peak_backlog_total, total_backlog);
  }

  for (std::size_t s = 0; s < servers.size(); ++s) {
    servers[s].final_backlog = backlog[s];
    servers[s].utilization =
        static_cast<double>(servers[s].served) /
        (static_cast<double>(config.ticks) * static_cast<double>(capacity));
  }
  report.mean_wait_ticks =
      report.served == 0 ? 0.0 : wait_weighted / static_cast<double>(report.served);
  report.servers = std::move(servers);
  return report;
}

}  // namespace rpt::sim
