#include "sim/replay.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <string>
#include <unordered_map>
#include <utility>

#include "incremental/incremental_solver.hpp"
#include "model/validate.hpp"
#include "support/timer.hpp"

namespace rpt::sim {

std::uint64_t DrawPoisson(Rng& rng, double mean) {
  RPT_REQUIRE(mean >= 0.0 && std::isfinite(mean), "DrawPoisson: mean must be finite and >= 0");
  if (mean == 0.0) return 0;
  if (mean <= 64.0) {
    // Knuth: multiply uniforms until below e^-mean.
    const double threshold = std::exp(-mean);
    std::uint64_t count = 0;
    double product = rng.NextUnit();
    while (product > threshold) {
      ++count;
      product *= rng.NextUnit();
    }
    return count;
  }
  // Normal approximation N(mean, mean) via Box-Muller, clamped at zero.
  const double u1 = std::max(rng.NextUnit(), 1e-12);
  const double u2 = rng.NextUnit();
  const double gauss = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double value = mean + std::sqrt(mean) * gauss;
  return value <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(value));
}

std::vector<std::uint64_t> SplitLargestRemainder(std::uint64_t demand,
                                                 const std::vector<Requests>& weights) {
  RPT_REQUIRE(!weights.empty(), "SplitLargestRemainder: need at least one weight");
  // The sum (and hence the remainders) can exceed 64 bits even though every
  // weight and every resulting part fits: keep both in 128-bit.
  unsigned __int128 total = 0;
  for (const Requests weight : weights) total += weight;
  RPT_REQUIRE(total > 0, "SplitLargestRemainder: weights must have a positive sum");

  std::vector<std::uint64_t> parts(weights.size());
  std::vector<unsigned __int128> remainders(weights.size());
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const auto scaled = static_cast<unsigned __int128>(demand) * weights[i];
    parts[i] = static_cast<std::uint64_t>(scaled / total);  // <= demand, fits
    remainders[i] = scaled % total;
    assigned += parts[i];
  }
  // sum(scaled) == demand * total exactly, so the leftover after flooring is
  // sum(remainders) / total < |weights| units.
  std::vector<std::size_t> order(weights.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return remainders[a] != remainders[b] ? remainders[a] > remainders[b] : a < b;
  });
  for (std::size_t r = 0; assigned < demand; ++r) {
    ++parts[order[r]];
    ++assigned;
  }
  return parts;
}

namespace {

// Per-client routing plan under the current placement: parallel
// server-slot/weight vectors (weights feed the largest-remainder split each
// tick). Plans are kept in ascending client-id order so the per-tick RNG
// stream never depends on container iteration order.
struct ClientPlan {
  NodeId client = kInvalidNode;
  std::vector<std::size_t> servers;  // slots into ReplayState::servers
  std::vector<Requests> weights;
  Requests planned = 0;
};

// Mutable state threaded through the tick loop; in streaming mode the plans
// are rebuilt per re-solve while server slots and queues persist (a server
// dropped by a new plan keeps draining its backlog).
struct ReplayState {
  std::unordered_map<NodeId, std::size_t> server_index;
  std::vector<ServerReport> servers;
  std::vector<std::deque<std::pair<std::uint64_t, std::uint64_t>>> queues;  // (tick, count)
  std::vector<std::uint64_t> backlog;
  std::vector<ClientPlan> plans;
  double plan_distance_weighted = 0.0;  // over the current plan
  Requests plan_total = 0;
  std::uint64_t capacity_integral = 0;  // sum over ticks of W_t
  double distance_weighted = 0.0;       // accumulated per tick
  double planned_total_ticks = 0.0;
  double wait_weighted = 0.0;
  double replica_ticks = 0.0;

  std::size_t ServerSlot(NodeId server) {
    const auto [it, inserted] = server_index.emplace(server, servers.size());
    if (inserted) {
      ServerReport report;
      report.server = server;
      servers.push_back(report);
      queues.emplace_back();
      backlog.push_back(0);
    }
    return it->second;
  }

  // Rebuilds the per-client plans from a canonical (client-sorted)
  // assignment. Replicas without load still claim a server slot so they
  // appear in the report.
  void BuildPlans(TopologyView tree, const Solution& solution, ReplayReport& report) {
    plans.clear();
    plan_distance_weighted = 0.0;
    plan_total = 0;
    for (ServerReport& server : servers) server.planned_load = 0;
    for (const NodeId replica : solution.replicas) (void)ServerSlot(replica);
    for (const ServiceEntry& entry : solution.assignment) {
      const std::size_t slot = ServerSlot(entry.server);
      const Distance distance = tree.DistToAncestor(entry.client, entry.server);
      if (plans.empty() || plans.back().client != entry.client) {
        plans.push_back(ClientPlan{entry.client, {}, {}, 0});
      }
      ClientPlan& plan = plans.back();
      plan.servers.push_back(slot);
      plan.weights.push_back(entry.amount);
      plan.planned += entry.amount;
      servers[slot].planned_load += entry.amount;
      plan_distance_weighted +=
          static_cast<double>(distance) * static_cast<double>(entry.amount);
      plan_total += entry.amount;
      report.max_service_distance = std::max(report.max_service_distance, distance);
    }
  }

  // One simulated tick: Poisson arrivals per client (ascending id), FIFO
  // service up to `capacity` per server.
  void Tick(std::uint64_t tick, double demand_factor, Requests capacity, Rng& rng,
            ReplayReport& report) {
    for (const ClientPlan& plan : plans) {
      const double mean = static_cast<double>(plan.planned) * demand_factor;
      const std::uint64_t demand = DrawPoisson(rng, mean);
      if (demand == 0) continue;
      const std::vector<std::uint64_t> parts = SplitLargestRemainder(demand, plan.weights);
      for (std::size_t s = 0; s < plan.servers.size(); ++s) {
        const std::uint64_t part = parts[s];
        if (part == 0) continue;
        const std::size_t server = plan.servers[s];
        queues[server].emplace_back(tick, part);
        backlog[server] += part;
        servers[server].arrived += part;
        report.arrived += part;
      }
    }
    std::uint64_t total_backlog = 0;
    for (std::size_t s = 0; s < servers.size(); ++s) {
      Requests budget = capacity;
      while (budget > 0 && !queues[s].empty()) {
        auto& [arrival, count] = queues[s].front();
        const std::uint64_t take = std::min<std::uint64_t>(budget, count);
        wait_weighted += static_cast<double>(tick - arrival) * static_cast<double>(take);
        servers[s].served += take;
        report.served += take;
        backlog[s] -= take;
        budget -= take;
        count -= take;
        if (count == 0) queues[s].pop_front();
      }
      servers[s].peak_backlog = std::max(servers[s].peak_backlog, backlog[s]);
      total_backlog += backlog[s];
    }
    report.peak_backlog_total = std::max(report.peak_backlog_total, total_backlog);
    capacity_integral += capacity;
    distance_weighted += plan_distance_weighted;
    planned_total_ticks += static_cast<double>(plan_total);
  }

  void Finish(ReplayReport& report) {
    for (std::size_t s = 0; s < servers.size(); ++s) {
      servers[s].final_backlog = backlog[s];
      servers[s].utilization = capacity_integral == 0
                                   ? 0.0
                                   : static_cast<double>(servers[s].served) /
                                         static_cast<double>(capacity_integral);
    }
    report.mean_service_distance =
        planned_total_ticks == 0.0 ? 0.0 : distance_weighted / planned_total_ticks;
    report.mean_wait_ticks =
        report.served == 0 ? 0.0 : wait_weighted / static_cast<double>(report.served);
    report.servers = std::move(servers);
  }
};

void CheckConfig(const ReplayConfig& config) {
  RPT_REQUIRE(config.ticks > 0, "Replay: need at least one tick");
  RPT_REQUIRE(config.demand_factor >= 0.0 && std::isfinite(config.demand_factor),
              "Replay: demand_factor must be finite and >= 0");
}

}  // namespace

ReplayReport Replay(const Instance& instance, const Solution& solution,
                    const ReplayConfig& config) {
  CheckConfig(config);
  RPT_REQUIRE(config.trace.empty(),
              "Replay: the static (instance, solution, config) form takes no update trace; "
              "use Replay(instance, config) for streaming replays");
  const auto validation = ValidateSolution(instance, Policy::kMultiple, solution);
  RPT_REQUIRE(validation.ok, "Replay: solution is not feasible: " + validation.Describe());

  Rng rng(config.seed);
  ReplayReport report;
  report.ticks = config.ticks;
  report.mean_replicas = static_cast<double>(solution.ReplicaCount());

  Solution canonical = solution;
  canonical.Canonicalize();
  ReplayState state;
  state.BuildPlans(instance.GetTree(), canonical, report);
  for (std::uint64_t tick = 0; tick < config.ticks; ++tick) {
    state.Tick(tick, config.demand_factor, instance.Capacity(), rng, report);
  }
  state.Finish(report);
  return report;
}

ReplayReport Replay(const Instance& instance, const ReplayConfig& config) {
  CheckConfig(config);
  RPT_REQUIRE(!config.trace.empty(),
              "Replay: streaming replay needs a non-empty trace; use the "
              "(instance, solution, config) form for a fixed plan");
  RPT_REQUIRE(config.trace.size() == config.ticks,
              "Replay: trace length (" + std::to_string(config.trace.size()) +
                  ") must equal ticks (" + std::to_string(config.ticks) +
                  "); refusing to silently truncate either side");

  incremental::IncrementalSolver solver(instance, {config.engine, config.policy});
  RPT_REQUIRE(solver.Feasible(),
              "Replay: the initial instance is infeasible under the replay policy");

  Rng rng(config.seed);
  ReplayReport report;
  report.ticks = config.ticks;
  ReplayState state;
  state.BuildPlans(solver.View(), solver.Current(), report);
  if (config.on_replan) config.on_replan(solver, 0);
  double replan_ms = 0.0;  // the constructor's initial solve is not counted

  for (std::uint64_t tick = 0; tick < config.ticks; ++tick) {
    if (!config.trace[tick].empty()) {
      Timer timer;
      const bool feasible = solver.Apply(config.trace[tick]);
      replan_ms += timer.ElapsedMs();
      RPT_REQUIRE(feasible, "Replay: the update trace made the instance infeasible at tick " +
                                std::to_string(tick));
      state.BuildPlans(solver.View(), solver.Current(), report);
      if (config.on_replan) config.on_replan(solver, tick);
    }
    state.replica_ticks += static_cast<double>(solver.Current().ReplicaCount());
    state.Tick(tick, config.demand_factor, solver.Capacity(), rng, report);
  }
  state.Finish(report);
  report.mean_replicas = state.replica_ticks / static_cast<double>(config.ticks);
  report.resolves = solver.Stats().resolves;
  report.events_applied = solver.Stats().events_applied;
  report.nodes_recomputed = solver.Stats().nodes_recomputed;
  report.nodes_reused = solver.Stats().nodes_reused;
  report.replan_ms = replan_ms;
  return report;
}

}  // namespace rpt::sim
