// Partition/failover scenario: drive an update trace through a replicated
// pair (durable primary + durable follower over a live repl_link), inject a
// fault mid-trace — a hard partition of the replication stream or a primary
// death — promote the follower, and verify the whole failover contract
// against an uninterrupted in-memory oracle:
//
//  * at promotion, the follower's published snapshot is (version,
//    CanonicalHash)-identical to the oracle at the follower's durable seq,
//    and that seq is >= the primary's replication watermark (no acked
//    write is lost);
//  * the promoted follower resumes the remainder of the trace and finishes
//    (version, hash)-identical to the oracle's final state;
//  * after the partition heals, the deposed primary is fenced: its next
//    heartbeat is answered with FENCE and its next Apply throws.
//
// The fault dimensions the oracle tests sweep (tests/test_repl.cpp):
//   fault kind      × hard partition (sticky repl.partition) / primary stop
//   crash point     × fault batch index along the trace; optionally crash
//                     AND recover the follower from its own WAL before
//                     promoting (the promotion must survive the restart)
//   promotion mode  × manual Promote() (deterministic) / heartbeat-window
//                     expiry (real failover timing)
//
// Determinism: with manual promotion everything is deterministic given
// (instance, trace, config) — replication is ack-waited batch by batch, so
// the follower's seq at the fault is exact. Heartbeat-window promotion is
// wall-clock driven; the scenario only asserts invariants that hold for
// ANY promotion instant past the fault.
#pragma once

#include <cstdint>
#include <string>

#include "incremental/incremental_solver.hpp"
#include "incremental/update_event.hpp"
#include "model/instance.hpp"

namespace rpt::sim {

enum class PartitionFault : std::uint8_t {
  kNone = 0,          ///< no fault: replicate the whole trace, then promote
  kPartition = 1,     ///< sticky repl.partition — both directions drop
  kPrimaryStop = 2,   ///< primary process "dies" (listener + conns torn down)
};

struct PartitionConfig {
  std::string primary_dir;   ///< fresh durable dir for the primary
  std::string follower_dir;  ///< fresh durable dir for the follower
  /// 1-based index of the last batch replicated cleanly; the fault fires
  /// after it (0 = fault before any batch).
  std::uint64_t fault_at_batch = 0;
  PartitionFault fault = PartitionFault::kPartition;
  /// Partitioned-primary writes: after the fault, the primary applies this
  /// many further trace batches locally (they cannot replicate, are never
  /// acked, and must not be required of the promoted follower).
  std::uint64_t extra_primary_batches = 0;
  /// Crash the follower after the fault and recover it from its own WAL
  /// before promoting — the promotion decision must survive a restart.
  bool restart_follower_before_promote = false;
  /// 0 = promote manually (deterministic); > 0 = configure the follower to
  /// auto-promote after this many ms without a heartbeat and wait for it.
  int heartbeat_timeout_ms = 0;
  std::uint64_t checkpoint_every = 0;  ///< follower + primary checkpoint cadence
  incremental::SolverOptions solver;
};

struct PartitionResult {
  std::uint64_t watermark = 0;       ///< primary's watermark when the fault hit
  std::uint64_t follower_seq = 0;    ///< follower durable seq at promotion
  std::uint64_t promoted_epoch = 0;  ///< epoch after promotion (>= 2)
  std::uint64_t shipped_acks = 0;    ///< records the follower applied pre-fault
  /// (version, hash) of the follower's snapshot at promotion == oracle after
  /// `follower_seq` batches, AND follower_seq >= watermark.
  bool watermark_state_matches = false;
  std::uint64_t final_version = 0;  ///< promoted follower after resuming the trace
  std::uint64_t final_hash = 0;
  std::uint64_t oracle_version = 0;
  std::uint64_t oracle_hash = 0;
  bool final_match = false;
  /// Post-heal fencing (kPartition only): the deposed primary observed
  /// FENCE and its Apply threw.
  bool primary_fenced = false;
  std::uint64_t stale_epoch_rejections = 0;  ///< follower-side fence count
};

/// Runs the scenario described above. Throws InvalidArgument on an empty
/// trace or a fault index past the trace end; propagates InternalError
/// (divergence, recovery refusal) — the scenario never papers over a loud
/// failure. Disarms all failpoints on every exit path.
[[nodiscard]] PartitionResult RunPartitionFailover(
    const Instance& instance, const incremental::UpdateTrace& trace,
    const PartitionConfig& config);

}  // namespace rpt::sim
