// Discrete-time replay of a placement under stochastic demand — static
// (fixed plan) or streaming (the plan tracks a demand-update trace through
// the incremental re-solve engine).
//
// The paper's model is static: r_i requests per time unit, servers of
// capacity W per time unit, distance = QoS bound. This module closes the
// loop to the motivating applications (VoD/ISP delivery, paper §1). Each
// tick every client draws a Poisson demand with mean r_i * demand_factor,
// splits it over its assigned servers proportionally to the planned
// routing, and each server drains up to W requests per tick from a FIFO
// backlog. The report captures utilization, backlog dynamics and queueing
// delay, and the request-weighted service distance (the QoS the dmax
// constraint was buying).
//
// Two modes share that tick loop:
//  * Static — Replay(instance, solution, config) with an empty trace: the
//    plan is fixed for the whole run, exactly the paper's setting. With
//    demand_factor <= 1 a valid placement never builds sustained backlog;
//    factors > 1 model surges and expose where the placement saturates.
//  * Streaming — Replay(instance, config) with config.trace non-empty: at
//    the start of each tick the tick's UpdateEvent batch is applied to an
//    incremental::IncrementalSolver and the placement is re-planned, so
//    routing follows the demand stream. The default engine re-solves only
//    the dirty ancestor chains (Engine::kIncremental); Engine::kFullResolve
//    is the from-scratch oracle kept for cross-checking — both produce
//    byte-identical placements, so the replay outcome is engine-invariant.
//    Streaming requires a NoD instance (the re-planning solvers have no
//    distance constraint) and a trace that keeps every tick feasible.
//
// Determinism: everything in ReplayReport except replan_ms is a pure
// function of (instance, solution/trace, config) — arrivals are drawn in
// ascending client-id order from a seeded Rng, and the re-planning engines
// are thread-count invariant.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "incremental/update_event.hpp"
#include "model/instance.hpp"
#include "model/solution.hpp"
#include "support/rng.hpp"

namespace rpt::incremental {
class IncrementalSolver;
}  // namespace rpt::incremental

namespace rpt::sim {

/// Simulation parameters.
struct ReplayConfig {
  std::uint64_t ticks = 100;    ///< simulated time units
  double demand_factor = 1.0;   ///< mean demand multiplier (1.0 = planned load)
  std::uint64_t seed = 1;       ///< RNG seed (deterministic replay)
  /// Streaming mode: one event batch per tick, applied before the tick's
  /// arrivals. Empty = static replay. Non-empty requires exactly
  /// trace.size() == ticks — a mismatch throws instead of silently
  /// truncating either side.
  incremental::UpdateTrace trace;
  /// Re-planning engine for streaming mode (ignored when trace is empty).
  incremental::Engine engine = incremental::Engine::kIncremental;
  /// Re-planning policy for streaming mode: kMultiple (incremental DP) or
  /// kSingle (overlay single-nod pass). Ignored when trace is empty.
  Policy policy = Policy::kMultiple;
  /// Streaming-mode hook fired exactly when the plan may have changed: once
  /// after the initial solve (tick = 0, before any arrivals) and once after
  /// every successfully applied per-tick batch (with that tick's index).
  /// This is the churn seam the serve layer plugs into — the callback can
  /// export (GetTree, Capacity, Demands, Current) into a
  /// serve::PlacementSnapshot and publish it while the replay keeps driving
  /// demand. Called from the replay thread; keep it cheap or the replay
  /// stalls (publishing a snapshot is one O(|T|) build). Ignored in static
  /// mode.
  std::function<void(const incremental::IncrementalSolver&, std::uint64_t)> on_replan;
};

/// Per-server outcome. In streaming mode a server appears here if any plan
/// of the run placed a replica on it; planned_load reflects the *final*
/// plan (0 when the last plan dropped the replica).
struct ServerReport {
  NodeId server = kInvalidNode;
  Requests planned_load = 0;      ///< load assigned by the (final) plan per tick
  std::uint64_t arrived = 0;      ///< requests that arrived over the run
  std::uint64_t served = 0;       ///< requests drained over the run
  std::uint64_t peak_backlog = 0; ///< worst queue length observed
  std::uint64_t final_backlog = 0;
  double utilization = 0.0;       ///< served / sum over ticks of W_t
};

/// Whole-run outcome.
struct ReplayReport {
  std::uint64_t ticks = 0;
  std::uint64_t arrived = 0;
  std::uint64_t served = 0;
  std::uint64_t peak_backlog_total = 0;  ///< max over ticks of summed backlogs
  double mean_wait_ticks = 0.0;          ///< queueing delay per served request
  double mean_service_distance = 0.0;    ///< request-weighted client->server distance
  Distance max_service_distance = 0;     ///< worst distance in any plan (<= dmax)
  std::vector<ServerReport> servers;

  // Streaming-mode re-planning statistics (zero in static mode). All
  // deterministic except replan_ms.
  std::uint64_t resolves = 0;          ///< solver passes, including the initial solve
  std::uint64_t events_applied = 0;    ///< events consumed from the trace
  std::uint64_t nodes_recomputed = 0;  ///< DP nodes re-processed across the run
  std::uint64_t nodes_reused = 0;      ///< DP nodes reused from warm tables
  double mean_replicas = 0.0;          ///< tick-averaged placement size
  double replan_ms = 0.0;              ///< wall time spent re-planning (nondeterministic)

  /// True iff the run ended with empty queues everywhere.
  [[nodiscard]] bool Drained() const noexcept { return arrived == served; }
};

/// Static replay: replays `solution` on `instance` under a fixed plan. The
/// solution must be feasible for the Multiple policy (Single solutions are
/// a special case); throws InvalidArgument otherwise — the replay trusts
/// the plan it is given. config.trace must be empty (use the streaming
/// overload below for traces).
[[nodiscard]] ReplayReport Replay(const Instance& instance, const Solution& solution,
                                  const ReplayConfig& config);

/// Streaming replay: solves `instance` from scratch, then follows
/// config.trace tick by tick, re-planning through the configured engine
/// before each tick's arrivals. Requires a NoD instance, a non-empty trace
/// with trace.size() == ticks, and a trace that keeps every tick feasible
/// (throws InvalidArgument otherwise).
[[nodiscard]] ReplayReport Replay(const Instance& instance, const ReplayConfig& config);

/// Draws a Poisson-distributed integer with the given mean (Knuth's method
/// for small means, normal approximation above 64). Deterministic in `rng`.
[[nodiscard]] std::uint64_t DrawPoisson(Rng& rng, double mean);

/// Splits `demand` into |weights| integer parts proportional to the weights
/// using largest-remainder rounding: every part is the floor of its exact
/// proportional quota, and the leftover units (fewer than |weights|) go to
/// the parts with the largest fractional remainders, ties broken by index so
/// the split is deterministic. The parts always sum to `demand` exactly;
/// 128-bit intermediates keep demand * weight exact even when both are
/// large. Requires a non-empty weight vector with a positive sum.
[[nodiscard]] std::vector<std::uint64_t> SplitLargestRemainder(
    std::uint64_t demand, const std::vector<Requests>& weights);

}  // namespace rpt::sim
