// Discrete-time replay of a placement under stochastic demand.
//
// The paper's model is static: r_i requests per time unit, servers of
// capacity W per time unit, distance = QoS bound. This module closes the
// loop to the motivating applications (VoD/ISP delivery, paper §1): given an
// Instance and a Solution, it simulates T ticks. Each tick every client
// draws a Poisson demand with mean r_i * demand_factor, splits it over its
// assigned servers proportionally to the planned routing, and each server
// drains up to W requests per tick from a FIFO backlog. The report captures
// utilization, backlog dynamics and queueing delay, and the request-weighted
// service distance (the QoS the dmax constraint was buying).
//
// With demand_factor <= 1 a valid placement never builds sustained backlog
// (the plan respects W); factors > 1 model surges and expose how much
// headroom a placement has and where it saturates first.
#pragma once

#include <cstdint>
#include <vector>

#include "model/instance.hpp"
#include "model/solution.hpp"
#include "support/rng.hpp"

namespace rpt::sim {

/// Simulation parameters.
struct ReplayConfig {
  std::uint64_t ticks = 100;    ///< simulated time units
  double demand_factor = 1.0;   ///< mean demand multiplier (1.0 = planned load)
  std::uint64_t seed = 1;       ///< RNG seed (deterministic replay)
};

/// Per-server outcome.
struct ServerReport {
  NodeId server = kInvalidNode;
  Requests planned_load = 0;      ///< load the placement assigns per tick
  std::uint64_t arrived = 0;      ///< requests that arrived over the run
  std::uint64_t served = 0;       ///< requests drained over the run
  std::uint64_t peak_backlog = 0; ///< worst queue length observed
  std::uint64_t final_backlog = 0;
  double utilization = 0.0;       ///< served / (ticks * W)
};

/// Whole-run outcome.
struct ReplayReport {
  std::uint64_t ticks = 0;
  std::uint64_t arrived = 0;
  std::uint64_t served = 0;
  std::uint64_t peak_backlog_total = 0;  ///< max over ticks of summed backlogs
  double mean_wait_ticks = 0.0;          ///< queueing delay per served request
  double mean_service_distance = 0.0;    ///< request-weighted client->server distance
  Distance max_service_distance = 0;     ///< worst distance in the plan (<= dmax)
  std::vector<ServerReport> servers;

  /// True iff the run ended with empty queues everywhere.
  [[nodiscard]] bool Drained() const noexcept { return arrived == served; }
};

/// Replays `solution` on `instance`. The solution must be feasible for the
/// Multiple policy (Single solutions are a special case); throws
/// InvalidArgument otherwise — the replay trusts the plan it is given.
[[nodiscard]] ReplayReport Replay(const Instance& instance, const Solution& solution,
                                  const ReplayConfig& config);

/// Draws a Poisson-distributed integer with the given mean (Knuth's method
/// for small means, normal approximation above 64). Deterministic in `rng`.
[[nodiscard]] std::uint64_t DrawPoisson(Rng& rng, double mean);

/// Splits `demand` into |weights| integer parts proportional to the weights
/// using largest-remainder rounding: every part is the floor of its exact
/// proportional quota, and the leftover units (fewer than |weights|) go to
/// the parts with the largest fractional remainders, ties broken by index so
/// the split is deterministic. The parts always sum to `demand` exactly;
/// 128-bit intermediates keep demand * weight exact even when both are
/// large. Requires a non-empty weight vector with a positive sum.
[[nodiscard]] std::vector<std::uint64_t> SplitLargestRemainder(
    std::uint64_t demand, const std::vector<Requests>& weights);

}  // namespace rpt::sim
