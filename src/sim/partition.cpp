#include "sim/partition.hpp"

#include <chrono>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "serve/repl_link.hpp"
#include "serve/serve_harness.hpp"
#include "support/failpoint.hpp"

namespace rpt::sim {

namespace {

void ApplyLenient(serve::ServeHarness& harness,
                  std::span<const incremental::UpdateEvent> events) {
  try {
    harness.ApplyAndPublish(events);
  } catch (const InvalidArgument&) {
    // Rejected batches publish nothing in any life; skipping them
    // everywhere keeps primary, follower and oracle in lockstep.
  }
}

struct Observed {
  std::uint64_t version;
  std::uint64_t hash;
};

Observed Snap(const serve::ServeHarness& harness) {
  const auto ref = harness.Pin();
  return Observed{ref->Version(), ref->CanonicalHash()};
}

/// Polls `pred` every 5 ms until it holds or `deadline_ms` passes.
template <typename Pred>
bool PollFor(int deadline_ms, Pred&& pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

}  // namespace

PartitionResult RunPartitionFailover(const Instance& instance,
                                     const incremental::UpdateTrace& trace,
                                     const PartitionConfig& config) {
  RPT_REQUIRE(!trace.empty(), "partition: trace must be non-empty");
  RPT_REQUIRE(config.fault_at_batch <= trace.size(),
              "partition: fault index past the end of the trace");
  RPT_REQUIRE(!config.primary_dir.empty() && !config.follower_dir.empty(),
              "partition: needs primary and follower state directories");

  fail::DisarmAll();
  PartitionResult result;

  // Oracle pass first: per-batch (version, hash) of an uninterrupted,
  // disk-free run. oracle_at[i] is the state after batches 1..i.
  std::vector<Observed> oracle_at;
  oracle_at.reserve(trace.size() + 1);
  {
    serve::ServeHarness oracle(instance, config.solver);
    oracle_at.push_back(Snap(oracle));  // state at seq 0 (initial publish)
    for (const auto& batch : trace) {
      ApplyLenient(oracle, batch);
      oracle_at.push_back(Snap(oracle));
    }
    result.oracle_version = oracle_at.back().version;
    result.oracle_hash = oracle_at.back().hash;
  }

  serve::DurabilityOptions primary_durability;
  primary_durability.dir = config.primary_dir;
  primary_durability.checkpoint_every = config.checkpoint_every;
  serve::DurabilityOptions follower_durability;
  follower_durability.dir = config.follower_dir;
  follower_durability.checkpoint_every = config.checkpoint_every;

  serve::ServeHarness primary_harness(instance, config.solver, primary_durability);
  auto follower_harness = std::make_unique<serve::ServeHarness>(
      instance, config.solver, follower_durability);

  serve::ReplPrimaryOptions primary_options;
  primary_options.io_timeout_ms = 200;
  // Short ack wait: during the partition the primary's Applies can never be
  // acked, and each one would otherwise stall for the full window.
  primary_options.ack_wait_ms = 200;
  serve::ReplPrimary primary(primary_harness, primary_options);
  primary.Start(/*port=*/0);

  serve::ReplFollowerOptions follower_options;
  follower_options.io_timeout_ms = 20;
  follower_options.heartbeat_timeout_ms = config.heartbeat_timeout_ms;
  auto follower = std::make_unique<serve::ReplFollower>(
      *follower_harness, primary.Port(), follower_options);
  follower->Start();
  RPT_CHECK(primary.WaitForFollowers(1, /*timeout_ms=*/5000));
  if (config.heartbeat_timeout_ms > 0) {
    primary.Heartbeat();  // open the follower's liveness window
  }

  try {
    // Phase 1: clean replication through the fault batch. Each Apply waits
    // for the follower's ack, so the watermark tracks the loop exactly.
    for (std::uint64_t i = 0; i < config.fault_at_batch; ++i) {
      try {
        (void)primary.Apply(trace[i]);
      } catch (const InvalidArgument&) {
      }
      if (config.heartbeat_timeout_ms > 0) primary.Heartbeat();
    }
    RPT_CHECK(follower->WaitForSeq(config.fault_at_batch, /*timeout_ms=*/5000));
    // The follower applied everything; give its last ack time to land (the
    // seq wait fires before the ack frame is even sent). Keep heartbeating
    // meanwhile so a short promotion window cannot expire mid-poll.
    RPT_CHECK(PollFor(5000, [&] {
      if (config.heartbeat_timeout_ms > 0) primary.Heartbeat();
      return primary.Watermark() >= config.fault_at_batch;
    }));
    result.watermark = primary.Watermark();
    result.shipped_acks = follower->Core().Applied();

    // Phase 2: the fault.
    std::uint64_t applied_by_primary = config.fault_at_batch;
    switch (config.fault) {
      case PartitionFault::kNone:
        break;
      case PartitionFault::kPartition: {
        fail::ArmSticky("repl.partition", fail::Action::kError);
        // Partitioned-primary writes: applied and logged locally, shipped
        // into the void, never acked — the split-brain ingredient.
        const std::uint64_t extra =
            std::min<std::uint64_t>(config.extra_primary_batches,
                                    trace.size() - applied_by_primary);
        for (std::uint64_t i = 0; i < extra; ++i) {
          try {
            (void)primary.Apply(trace[applied_by_primary + i]);
          } catch (const InvalidArgument&) {
          }
        }
        applied_by_primary += extra;
        break;
      }
      case PartitionFault::kPrimaryStop:
        primary.Stop();
        break;
    }

    // Phase 3: failover. Optionally bounce the follower through its own
    // crash/recovery first — promotion must ride on durable state only.
    if (config.restart_follower_before_promote) {
      follower->Stop();
      follower.reset();
      follower_harness.reset();  // releases the WAL handle
      follower_harness = serve::ServeHarness::RecoverFrom(instance, config.solver,
                                                          follower_durability);
      // The recovered harness is promoted directly (no link to a dead or
      // unreachable primary): durably bump the epoch, serve as primary.
      follower_harness->AdoptEpoch(follower_harness->Epoch() + 1);
      follower_harness->SetFollower(false);
      result.follower_seq = follower_harness->LastDurableSeq() - 1;  // epoch record
    } else if (config.heartbeat_timeout_ms > 0) {
      RPT_CHECK(PollFor(config.heartbeat_timeout_ms * 20 + 2000,
                        [&] { return follower->Promoted(); }));
      result.follower_seq = follower_harness->LastDurableSeq() - 1;
    } else {
      result.follower_seq = follower_harness->LastDurableSeq();
      follower->Promote();
    }
    result.promoted_epoch = follower_harness->Epoch();

    // The failover contract, part 1: nothing acked is lost, and the state
    // at the follower's seq is byte-identical to the oracle's.
    const Observed at_promotion = Snap(*follower_harness);
    result.watermark_state_matches =
        result.follower_seq >= result.watermark &&
        result.follower_seq < oracle_at.size() &&
        at_promotion.version == oracle_at[result.follower_seq].version &&
        at_promotion.hash == oracle_at[result.follower_seq].hash;

    // Phase 4: the promoted follower resumes the trace from ITS durable
    // seq (re-applying anything the partitioned primary did alone — those
    // writes were never acked and carry no authority).
    for (std::uint64_t i = result.follower_seq; i < trace.size(); ++i) {
      ApplyLenient(*follower_harness, trace[i]);
    }
    const Observed final_state = Snap(*follower_harness);
    result.final_version = final_state.version;
    result.final_hash = final_state.hash;
    result.final_match = final_state.version == result.oracle_version &&
                         final_state.hash == result.oracle_hash;

    // Phase 5 (partition only): heal and confirm the fence. The old
    // primary's next heartbeat carries the stale epoch; the promoted
    // follower answers FENCE; the primary's next Apply must refuse.
    if (config.fault == PartitionFault::kPartition && follower) {
      fail::Disarm("repl.partition");
      // The deposed primary, unaware, keeps writing: its first post-heal
      // RECORD carries the stale epoch, so the promoted follower refuses it
      // at the record level (StaleEpochRejections) and answers FENCE.
      if (applied_by_primary < trace.size()) {
        try {
          (void)primary.Apply(trace[applied_by_primary]);
        } catch (const InvalidArgument&) {
        } catch (const InternalError&) {
          // A FENCE from an earlier heartbeat already landed — also fine.
        }
      }
      const bool fenced = PollFor(3000, [&] {
        primary.Heartbeat();
        return primary.Fenced();
      });
      bool apply_refused = false;
      if (fenced) {
        try {
          (void)primary.Apply(trace[0]);
        } catch (const InternalError&) {
          apply_refused = true;  // thrown before touching state
        }
      }
      result.primary_fenced = fenced && apply_refused;
      result.stale_epoch_rejections = follower->StaleEpochRejections();
    }
  } catch (...) {
    fail::DisarmAll();
    if (follower) follower->Stop();
    primary.Stop();
    throw;
  }

  fail::DisarmAll();
  if (follower) follower->Stop();
  primary.Stop();
  return result;
}

}  // namespace rpt::sim
