// Crash/restart replay scenario: drive an update trace through a DURABLE
// ServeHarness, kill it at a chosen failpoint mid-trace, recover from the
// state directory, resume the remainder of the trace, and compare the final
// published snapshot byte-for-byte (CanonicalHash + version) against an
// uninterrupted in-memory run of the same trace.
//
// This is the orchestration the recovery oracle tests and the bench layer
// share: the harness under test takes the real crash path (torn WAL tail
// and all — the failpoint fires inside the durability machinery), while the
// oracle harness never touches disk. `match` is the whole contract of the
// durability layer in one bit.
//
// Determinism: everything here is deterministic given (instance, trace,
// config) — the crash fires at an exact batch via the one-shot failpoint
// countdown, recovery replays an exact log, and the solvers are
// thread-count invariant. Batches that fail validation are skipped
// identically in both lives and in the oracle (they are logged, rejected,
// and never published — see serve_harness.hpp).
#pragma once

#include <cstdint>
#include <string>

#include "incremental/incremental_solver.hpp"
#include "incremental/update_event.hpp"
#include "model/instance.hpp"
#include "support/failpoint.hpp"

namespace rpt::sim {

struct CrashRestartConfig {
  std::string dir;  ///< durable state directory (fresh; caller owns cleanup)
  /// 1-based index of the batch whose ApplyAndPublish the crash interrupts
  /// (0 = never crash: the run completes, restarts anyway, and recovery
  /// must reproduce the clean final state).
  std::uint64_t crash_at_batch = 0;
  /// Failpoint armed for the crashing batch. The interesting windows:
  /// "wal.append" (before logging), "wal.append.short" (torn record —
  /// pair with Action::kShortOp), "serve.post_wal" (logged, not applied),
  /// "serve.post_apply" (applied, not published).
  std::string crash_point = "serve.post_wal";
  fail::Action crash_action = fail::Action::kThrow;
  std::uint64_t crash_param = 0;  ///< kShortOp: bytes written before dying
  std::uint64_t checkpoint_every = 0;  ///< DurabilityOptions::checkpoint_every
  incremental::SolverOptions solver;
};

struct CrashRestartResult {
  std::uint64_t durable_seq_at_recovery = 0;  ///< batches that survived the crash
  std::uint64_t recovered_batches = 0;        ///< WAL-tail records replayed
  std::uint64_t final_version = 0;            ///< recovered run's last snapshot
  std::uint64_t final_hash = 0;               ///< its CanonicalHash
  std::uint64_t oracle_version = 0;           ///< uninterrupted run's last snapshot
  std::uint64_t oracle_hash = 0;              ///< its CanonicalHash
  bool match = false;  ///< final (version, hash) == oracle (version, hash)
};

/// Runs the scenario described above. Throws InvalidArgument on an empty
/// trace or a crash index past the trace end; propagates InternalError from
/// recovery (e.g. interior WAL corruption) — a scenario must never paper
/// over a loud failure. Disarms all failpoints on every exit path.
[[nodiscard]] CrashRestartResult RunCrashRestart(
    const Instance& instance, const incremental::UpdateTrace& trace,
    const CrashRestartConfig& config);

}  // namespace rpt::sim
