#include "exact/exact.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <vector>

#include "flow/assignment.hpp"

namespace rpt::exact {

namespace {

// Candidate replica locations: nodes eligible for at least one requesting
// client; plus the set of clients that *must* self-host (no other eligible
// node).
struct Candidates {
  std::vector<NodeId> forced;
  std::vector<NodeId> free;  // candidates not in forced
};

Candidates CollectCandidates(const Instance& instance) {
  const Tree& tree = instance.GetTree();
  std::vector<char> useful(tree.Size(), 0);
  std::vector<char> forced_flag(tree.Size(), 0);
  for (const NodeId client : tree.Clients()) {
    if (tree.RequestsOf(client) == 0) continue;
    std::uint32_t eligible_count = 0;
    for (NodeId node = client;; node = tree.Parent(node)) {
      if (!instance.CanServe(client, node)) break;
      useful[node] = 1;
      ++eligible_count;
      if (node == tree.Root()) break;
    }
    RPT_CHECK(eligible_count >= 1);  // the client itself always qualifies
    if (eligible_count == 1) forced_flag[client] = 1;
  }
  Candidates out;
  for (NodeId node = 0; node < tree.Size(); ++node) {
    if (!useful[node]) continue;
    if (forced_flag[node]) {
      out.forced.push_back(node);
    } else {
      out.free.push_back(node);
    }
  }
  return out;
}

// Backtracking Single assignment: whole clients into replica bins.
class SingleRouter {
 public:
  SingleRouter(const Instance& instance, std::span<const NodeId> replicas)
      : instance_(instance), tree_(instance.GetTree()) {
    for (const NodeId replica : replicas) {
      residual_.emplace_back(replica, instance.Capacity());
    }
    for (const NodeId client : tree_.Clients()) {
      if (tree_.RequestsOf(client) > 0) clients_.push_back(client);
    }
    // Hardest clients first: fewest eligible replicas, then largest demand.
    options_.resize(clients_.size());
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      for (std::size_t s = 0; s < residual_.size(); ++s) {
        if (instance_.CanServe(clients_[i], residual_[s].first)) options_[i].push_back(s);
      }
    }
    std::vector<std::size_t> order(clients_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (options_[a].size() != options_[b].size()) return options_[a].size() < options_[b].size();
      return tree_.RequestsOf(clients_[a]) > tree_.RequestsOf(clients_[b]);
    });
    std::vector<NodeId> sorted_clients;
    std::vector<std::vector<std::size_t>> sorted_options;
    for (const std::size_t i : order) {
      sorted_clients.push_back(clients_[i]);
      sorted_options.push_back(options_[i]);
    }
    clients_ = std::move(sorted_clients);
    options_ = std::move(sorted_options);
  }

  std::optional<std::vector<ServiceEntry>> Route() {
    assignment_.assign(clients_.size(), static_cast<std::size_t>(-1));
    Requests total = 0;
    for (const NodeId client : clients_) total += tree_.RequestsOf(client);
    if (!Backtrack(0, total)) return std::nullopt;
    std::vector<ServiceEntry> out;
    out.reserve(clients_.size());
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      out.push_back(
          ServiceEntry{clients_[i], residual_[assignment_[i]].first, tree_.RequestsOf(clients_[i])});
    }
    return out;
  }

 private:
  bool Backtrack(std::size_t index, Requests remaining_demand) {
    if (index == clients_.size()) return true;
    // Prune: total residual capacity must cover remaining demand.
    Requests residual_total = 0;
    for (const auto& [node, cap] : residual_) residual_total += cap;
    if (residual_total < remaining_demand) return false;

    const NodeId client = clients_[index];
    const Requests demand = tree_.RequestsOf(client);
    for (const std::size_t s : options_[index]) {
      if (residual_[s].second < demand) continue;
      residual_[s].second -= demand;
      assignment_[index] = s;
      if (Backtrack(index + 1, remaining_demand - demand)) return true;
      residual_[s].second += demand;
    }
    assignment_[index] = static_cast<std::size_t>(-1);
    return false;
  }

  const Instance& instance_;
  const Tree& tree_;
  std::vector<std::pair<NodeId, Requests>> residual_;  // (replica, remaining capacity)
  std::vector<NodeId> clients_;
  std::vector<std::vector<std::size_t>> options_;  // eligible replica indices per client
  std::vector<std::size_t> assignment_;
};

using FeasibilityCheck =
    std::function<std::optional<std::vector<ServiceEntry>>(std::span<const NodeId>)>;

// Enumerates placements of increasing size; returns the first feasible one.
ExactResult Search(const Instance& instance, const ExactConfig& config,
                   const FeasibilityCheck& check) {
  const Candidates candidates = CollectCandidates(instance);
  RPT_REQUIRE(candidates.forced.size() + candidates.free.size() <= config.max_candidates,
              "exact: too many candidate replica locations for exhaustive search");

  ExactResult result;
  const std::uint64_t lower_bound =
      std::max<std::uint64_t>(instance.CapacityLowerBound(), candidates.forced.size());
  const std::uint64_t upper_bound = candidates.forced.size() + candidates.free.size();
  if (instance.GetTree().TotalRequests() == 0) {
    result.feasible = true;  // nothing to serve; zero replicas are optimal
    return result;
  }

  std::vector<NodeId> chosen(candidates.forced);
  for (std::uint64_t k = std::max<std::uint64_t>(lower_bound, 1); k <= upper_bound; ++k) {
    const std::uint64_t extra = k - candidates.forced.size();
    if (extra > candidates.free.size()) break;
    std::optional<std::vector<ServiceEntry>> found;
    // Recursive combination enumeration over the free candidates.
    std::function<bool(std::size_t, std::uint64_t)> combos = [&](std::size_t start,
                                                                 std::uint64_t need) -> bool {
      if (need == 0) {
        if (config.max_checks != 0 && result.checked_placements >= config.max_checks) {
          result.aborted = true;
          return true;  // stop enumeration
        }
        ++result.checked_placements;
        found = check(chosen);
        return found.has_value();
      }
      if (candidates.free.size() - start < need) return false;
      for (std::size_t i = start; i + need <= candidates.free.size(); ++i) {
        chosen.push_back(candidates.free[i]);
        const bool done = combos(i + 1, need - 1);
        chosen.pop_back();
        if (done) return true;
      }
      return false;
    };
    if (combos(0, extra) && !result.aborted) {
      RPT_CHECK(found.has_value());
      result.feasible = true;
      // Rebuild the successful set (chosen was popped during unwinding):
      // re-run the check on the recorded assignment instead.
      Solution solution;
      for (const ServiceEntry& entry : *found) solution.assignment.push_back(entry);
      std::vector<NodeId> used;
      for (const ServiceEntry& entry : *found) used.push_back(entry.server);
      std::sort(used.begin(), used.end());
      used.erase(std::unique(used.begin(), used.end()), used.end());
      // Idle replicas are possible (a placement may overshoot); keep exactly
      // the used ones — a subset of a feasible placement is still feasible
      // and can only be smaller. Since we enumerate by increasing k and k is
      // minimal, |used| == k in practice; assert only the bound.
      RPT_CHECK(used.size() <= k);
      solution.replicas = std::move(used);
      solution.Canonicalize();
      result.solution = std::move(solution);
      return result;
    }
    if (result.aborted) return result;
  }
  result.feasible = false;
  return result;
}

}  // namespace

std::optional<std::vector<ServiceEntry>> RouteSingle(const Instance& instance,
                                                     std::span<const NodeId> replicas) {
  SingleRouter router(instance, replicas);
  return router.Route();
}

ExactResult SolveExactSingle(const Instance& instance, const ExactConfig& config) {
  return Search(instance, config,
                [&](std::span<const NodeId> replicas) { return RouteSingle(instance, replicas); });
}

ExactResult SolveExactMultiple(const Instance& instance, const ExactConfig& config) {
  return Search(instance, config, [&](std::span<const NodeId> replicas) {
    return flow::RouteMultiple(instance, replicas);
  });
}

}  // namespace rpt::exact
