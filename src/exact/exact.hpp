// Exhaustive optimal solvers for small instances.
//
// Both Single variants are NP-hard (Theorems 1 and 5 cover the hardest
// corners), so no polynomial optimal algorithm can exist unless P=NP. These
// solvers enumerate replica placements by increasing cardinality, starting
// from the lower bound ceil(total/W), and test assignment feasibility —
// backtracking for Single (whole-client bins), max-flow for Multiple
// (splittable). The first feasible cardinality is optimal by construction.
//
// They exist to certify the approximation ratios of single-gen/single-nod
// and the optimality of multiple-bin in the property tests and experiment
// tables. Deliberately exponential; guarded by a node-count limit.
#pragma once

#include <cstdint>
#include <optional>

#include "model/instance.hpp"
#include "model/solution.hpp"

namespace rpt::exact {

/// Tuning/limits for the exhaustive search.
struct ExactConfig {
  /// Hard cap on the number of candidate replica locations; the solver
  /// throws InvalidArgument beyond it (2^max_candidates blowup).
  std::uint32_t max_candidates = 24;
  /// Optional cap on feasibility checks; 0 = unlimited. When exceeded the
  /// solver gives up and reports `aborted`.
  std::uint64_t max_checks = 0;
};

/// Outcome of an exact solve.
struct ExactResult {
  /// True iff any feasible solution exists (with Single and r_i <= W it
  /// always does; with r_i > W under Single it never does).
  bool feasible = false;
  /// True iff the search hit ExactConfig::max_checks and stopped early.
  bool aborted = false;
  /// An optimal solution when feasible.
  Solution solution;
  /// Number of placements whose feasibility was evaluated.
  std::uint64_t checked_placements = 0;
};

/// Optimal Single-policy solver (any tree, any dmax).
[[nodiscard]] ExactResult SolveExactSingle(const Instance& instance, const ExactConfig& config = {});

/// Optimal Multiple-policy solver (any tree, any dmax); feasibility per
/// placement is a max-flow computation, so r_i > W is supported.
[[nodiscard]] ExactResult SolveExactMultiple(const Instance& instance,
                                             const ExactConfig& config = {});

/// Checks whether a *given* replica set admits a feasible Single assignment;
/// returns the assignment if so. Exposed for the NP-hardness experiments
/// (e.g. "is there a solution with K servers placed here?").
[[nodiscard]] std::optional<std::vector<ServiceEntry>> RouteSingle(
    const Instance& instance, std::span<const NodeId> replicas);

}  // namespace rpt::exact
