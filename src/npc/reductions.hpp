// The paper's NP-hardness reductions, as executable instance constructors.
//
// Each Build* returns the replica-placement instance of the corresponding
// figure plus the decision threshold K: the replica-placement instance has a
// solution with at most K servers iff the source partition instance is a
// yes-instance. The tests and the hardness benches check both directions
// against the exact solvers.
#pragma once

#include <cstdint>
#include <vector>

#include "model/instance.hpp"
#include "npc/partition.hpp"

namespace rpt::npc {

/// Output of a reduction: the constructed instance and the server budget K
/// of the associated decision problem.
struct Reduction {
  Instance instance;
  std::uint64_t threshold = 0;  ///< K: "is there a solution with <= K servers?"
  Policy policy = Policy::kSingle;
};

/// Theorem 1 / Fig. 1 — 3-Partition -> Single-NoD-Bin.
///
/// A binary caterpillar: a spine of m internal nodes n_1..n_m (any of which
/// can serve any client) above a second caterpillar carrying the 3m clients
/// c_i with a_i requests. W = B, no distance bound, K = m. Requires a
/// well-formed 3-Partition instance (sum = m*B and B/4 < a_i < B/2 — the
/// window is what forces exactly-3 groups).
[[nodiscard]] Reduction BuildI2(const ThreePartitionInstance& source);

/// Theorem 2 / Fig. 2 — 2-Partition -> Single-NoD-Bin (inapproximability).
///
/// Root r above one internal node n_1 above a caterpillar of the m clients
/// a_i. W = S/2, K = 2: a (3/2-ε)-approximation would separate opt=2 from
/// opt>=3 and thereby decide 2-Partition. Requires an even sum and
/// max a_i <= S/2 (otherwise no Single solution exists at all).
[[nodiscard]] Reduction BuildI4(const std::vector<std::uint64_t>& values);

/// Theorem 5 / Fig. 5 — 2-Partition-Equal -> Multiple-Bin with a client
/// exceeding W.
///
/// The exact construction of the paper: 5m clients, 5m-1 internal nodes,
/// W = S/2 + 1, dmax = 3m, one client with (2m+1)W requests (this is the
/// r_i > W violation that makes the problem hard), K = 4m. Requires
/// |values| = 2m with even sum S and every a_j <= S/4 (so that
/// b_j = S/2 - 2 a_j stays non-negative); see NormalizeForI6.
[[nodiscard]] Reduction BuildI6(const std::vector<std::uint64_t>& values);

/// Decides the I6 instance the way the proof of Theorem 5 does: the 3m+1
/// replicas forced by the construction (the chain n_{2m+1}..n_{5m-1} and the
/// oversized client) are fixed, and every m-subset of the gadget nodes
/// n_1..n_2m is tried with a max-flow feasibility check. Returns true iff
/// some completion with exactly 4m replicas serves all requests — which the
/// paper proves happens iff the source 2-Partition-Equal instance is a
/// yes-instance. Cost: C(2m, m) max-flow runs.
[[nodiscard]] bool RestrictedI6Decision(const Reduction& reduction);

/// Shifts a 2-Partition-Equal instance by a uniform even constant so that
/// every value satisfies a_j <= S/4 as BuildI6 requires. A uniform shift
/// preserves equal-cardinality partitions in both directions (each side has
/// exactly m elements). Requires |values| = 2m with m >= 3.
[[nodiscard]] std::vector<std::uint64_t> NormalizeForI6(std::vector<std::uint64_t> values);

}  // namespace rpt::npc
