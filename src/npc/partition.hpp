// Exact solvers and instance generators for the partition problems the
// paper reduces from: 3-Partition (Theorem 1), 2-Partition (Theorem 2) and
// 2-Partition-Equal (Theorem 5).
//
// The solvers are used to verify both directions of each reduction in tests
// and experiments; the generators produce certified yes/no instances.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "support/rng.hpp"

namespace rpt::npc {

/// A 3-Partition instance: 3m integers a_i and bound B with sum(a) = m*B and
/// B/4 < a_i < B/2 (the strict window forces groups of exactly 3).
struct ThreePartitionInstance {
  std::vector<std::uint64_t> values;  // size 3m
  std::uint64_t bound = 0;            // B

  [[nodiscard]] std::uint64_t GroupCount() const noexcept { return values.size() / 3; }

  /// Checks the structural side conditions (sum, strict window).
  [[nodiscard]] bool IsWellFormed() const noexcept;
};

/// Decides 3-Partition by backtracking (exponential; fine for m <= ~6).
/// Returns the triples (indices into values) when a partition exists.
[[nodiscard]] std::optional<std::vector<std::array<std::size_t, 3>>> SolveThreePartition(
    const ThreePartitionInstance& instance);

/// Generates a certified yes-instance with m triples, each summing to a
/// bound of roughly `scale` (scale >= 16 recommended for slack).
[[nodiscard]] ThreePartitionInstance MakeThreePartitionYes(std::uint64_t m, std::uint64_t scale,
                                                           Rng& rng);

/// Generates a certified no-instance with m triples (m must be a positive
/// multiple of 3): all values are ≡ 1 (mod 3) while B ≡ 1 (mod 3), so every
/// triple sums to ≡ 0 (mod 3) != B (mod 3). Well-formed (sum = m*B, strict
/// window) but unsolvable.
[[nodiscard]] ThreePartitionInstance MakeThreePartitionNo(std::uint64_t m, std::uint64_t scale,
                                                          Rng& rng);

/// Decides 2-Partition (split into two subsets of equal sum) via subset-sum
/// DP; pseudo-polynomial in sum(values). Returns one side when it exists.
[[nodiscard]] std::optional<std::vector<std::size_t>> SolveTwoPartition(
    const std::vector<std::uint64_t>& values);

/// Decides 2-Partition-Equal: a subset of *exactly half the elements* with
/// half the total sum. Returns the subset indices when it exists.
[[nodiscard]] std::optional<std::vector<std::size_t>> SolveTwoPartitionEqual(
    const std::vector<std::uint64_t>& values);

/// Generates a certified yes 2-Partition instance of `count` values.
[[nodiscard]] std::vector<std::uint64_t> MakeTwoPartitionYes(std::size_t count,
                                                             std::uint64_t max_value, Rng& rng);

/// Generates a certified no 2-Partition instance of `count` values with an
/// even total (rejection sampling against the DP solver).
[[nodiscard]] std::vector<std::uint64_t> MakeTwoPartitionNo(std::size_t count,
                                                            std::uint64_t max_value, Rng& rng);

/// Generates a certified yes 2-Partition-Equal instance of 2m values.
[[nodiscard]] std::vector<std::uint64_t> MakeTwoPartitionEqualYes(std::uint64_t m,
                                                                  std::uint64_t max_value,
                                                                  Rng& rng);

/// Generates a certified no 2-Partition-Equal instance of 2m values with an
/// even total (rejection sampling against the DP solver).
[[nodiscard]] std::vector<std::uint64_t> MakeTwoPartitionEqualNo(std::uint64_t m,
                                                                 std::uint64_t max_value,
                                                                 Rng& rng);

}  // namespace rpt::npc
