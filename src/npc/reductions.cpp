#include "npc/reductions.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

#include "flow/assignment.hpp"

namespace rpt::npc {

namespace {

// Hangs a binary caterpillar of clients below `parent`: internal nodes
// u_1 -> u_2 -> ... with one client each, the last one carrying two. Every
// spine node above `parent` is an ancestor of all these clients. All edges
// have length 1.
void AttachClientCaterpillar(TreeBuilder& builder, NodeId parent,
                             const std::vector<std::uint64_t>& requests) {
  RPT_CHECK(!requests.empty());
  if (requests.size() == 1) {
    builder.AddClient(parent, 1, requests[0]);
    return;
  }
  NodeId spine = parent;
  for (std::size_t i = 0; i + 1 < requests.size(); ++i) {
    spine = builder.AddInternal(spine, 1);
    builder.AddClient(spine, 1, requests[i]);
  }
  builder.AddClient(spine, 1, requests.back());
}

}  // namespace

Reduction BuildI2(const ThreePartitionInstance& source) {
  RPT_REQUIRE(source.IsWellFormed(),
              "BuildI2: source must be a well-formed 3-Partition instance "
              "(sum = m*B, B/4 < a_i < B/2)");
  const std::uint64_t m = source.GroupCount();

  TreeBuilder builder;
  // Spine n_1..n_m: every spine node can serve every client (NoD).
  NodeId spine = builder.AddRoot();
  for (std::uint64_t k = 1; k < m; ++k) spine = builder.AddInternal(spine, 1);
  AttachClientCaterpillar(builder, spine, source.values);

  Tree tree = builder.Build();
  RPT_CHECK(tree.IsBinary());
  return Reduction{Instance(std::move(tree), /*capacity=*/source.bound, kNoDistanceLimit),
                   /*threshold=*/m, Policy::kSingle};
}

Reduction BuildI4(const std::vector<std::uint64_t>& values) {
  RPT_REQUIRE(values.size() >= 2, "BuildI4: need at least two values");
  const std::uint64_t sum = std::accumulate(values.begin(), values.end(), std::uint64_t{0});
  RPT_REQUIRE(sum % 2 == 0, "BuildI4: sum must be even (W = S/2)");
  const std::uint64_t half = sum / 2;
  RPT_REQUIRE(*std::max_element(values.begin(), values.end()) <= half,
              "BuildI4: max value exceeds W = S/2; no Single solution would exist");

  TreeBuilder builder;
  const NodeId root = builder.AddRoot();        // r
  const NodeId n1 = builder.AddInternal(root, 1);  // n_1
  AttachClientCaterpillar(builder, n1, values);

  Tree tree = builder.Build();
  RPT_CHECK(tree.IsBinary());
  return Reduction{Instance(std::move(tree), /*capacity=*/half, kNoDistanceLimit),
                   /*threshold=*/2, Policy::kSingle};
}

Reduction BuildI6(const std::vector<std::uint64_t>& values) {
  RPT_REQUIRE(values.size() >= 2 && values.size() % 2 == 0,
              "BuildI6: need 2m values");
  const std::uint64_t m = values.size() / 2;
  const std::uint64_t sum = std::accumulate(values.begin(), values.end(), std::uint64_t{0});
  RPT_REQUIRE(sum % 2 == 0, "BuildI6: sum must be even");
  const std::uint64_t half = sum / 2;
  for (const std::uint64_t a : values) {
    RPT_REQUIRE(2 * a <= half, "BuildI6: need a_j <= S/4 so b_j >= 0; see NormalizeForI6");
  }
  const Requests capacity = half + 1;  // W = S/2 + 1
  const Distance dmax = 3 * m;

  // Build the chain n_{5m-1} (root) down to n_{2m+1}, attaching the gadget
  // nodes n_j (j <= 2m) and the special clients along the way, exactly as in
  // the paper's Fig. 5 description.
  TreeBuilder builder;
  std::vector<NodeId> chain(3 * m - 1);  // chain[idx] = n_{2m+1+idx}
  for (std::uint64_t k = 5 * m - 1; k >= 2 * m + 1; --k) {
    const std::size_t idx = k - (2 * m + 1);
    if (k == 5 * m - 1) {
      chain[idx] = builder.AddRoot();
    } else {
      chain[idx] = builder.AddInternal(chain[idx + 1], 1);
    }
    if (k >= 4 * m + 1) {
      // One client with a single request at distance dmax: only the parent
      // node itself can serve it.
      builder.AddClient(chain[idx], dmax, 1);
    }
    if (k >= 2 * m + 1 && k <= 4 * m) {
      // Gadget node n_j, j = k - 2m, with its two clients.
      const std::uint64_t j = k - 2 * m;
      const NodeId nj = builder.AddInternal(chain[idx], 1);
      builder.AddClient(nj, j + m - 2, values[j - 1]);        // a_j at distance j+m-2
      builder.AddClient(nj, 1, half - 2 * values[j - 1]);     // b_j = S/2 - 2 a_j
    }
    if (k == 2 * m + 1) {
      // The oversized client: (2m+1)*W requests at distance m+1. This client
      // violates r_i <= W, which is exactly why Multiple-Bin is NP-hard here.
      builder.AddClient(chain[idx], m + 1, (2 * m + 1) * capacity);
    }
  }

  Tree tree = builder.Build();
  RPT_CHECK(tree.IsBinary());
  RPT_CHECK(tree.ClientCount() == 5 * m);
  RPT_CHECK(tree.InternalCount() == 5 * m - 1);
  return Reduction{Instance(std::move(tree), capacity, dmax), /*threshold=*/4 * m,
                   Policy::kMultiple};
}

bool RestrictedI6Decision(const Reduction& reduction) {
  const Tree& t = reduction.instance.GetTree();
  RPT_REQUIRE(reduction.policy == Policy::kMultiple && reduction.threshold % 4 == 0,
              "RestrictedI6Decision: expects a BuildI6 reduction");
  const std::uint64_t m = reduction.threshold / 4;
  // Forced replicas: the chain nodes and the oversized client. Gadget nodes
  // are recognised by having two client children.
  std::vector<NodeId> forced;
  std::vector<NodeId> gadgets;
  for (NodeId id = 0; id < t.Size(); ++id) {
    if (t.IsClient(id)) {
      if (t.RequestsOf(id) > reduction.instance.Capacity()) forced.push_back(id);
      continue;
    }
    std::size_t client_children = 0;
    for (const NodeId child : t.Children(id)) client_children += t.IsClient(child);
    if (client_children == 2) {
      gadgets.push_back(id);
    } else {
      forced.push_back(id);
    }
  }
  RPT_CHECK(gadgets.size() == 2 * m);
  RPT_CHECK(forced.size() == 3 * m);

  std::vector<NodeId> replicas;
  const std::function<bool(std::size_t, std::uint64_t)> combos = [&](std::size_t start,
                                                                     std::uint64_t need) -> bool {
    if (need == 0) {
      std::vector<NodeId> placement(forced);
      placement.insert(placement.end(), replicas.begin(), replicas.end());
      return flow::MultipleFeasible(reduction.instance, placement);
    }
    for (std::size_t i = start; i + need <= gadgets.size(); ++i) {
      replicas.push_back(gadgets[i]);
      if (combos(i + 1, need - 1)) return true;
      replicas.pop_back();
    }
    return false;
  };
  return combos(0, m);
}

std::vector<std::uint64_t> NormalizeForI6(std::vector<std::uint64_t> values) {
  RPT_REQUIRE(values.size() >= 6 && values.size() % 2 == 0,
              "NormalizeForI6: need 2m values with m >= 3");
  const std::uint64_t m = values.size() / 2;
  const std::uint64_t sum = std::accumulate(values.begin(), values.end(), std::uint64_t{0});
  RPT_REQUIRE(sum % 2 == 0, "NormalizeForI6: sum must be even");
  const std::uint64_t max_value = *std::max_element(values.begin(), values.end());
  // Need (a_j + M) <= (S + 2mM)/4, i.e. (2m-4) M >= 4 max_a - S.
  if (4 * max_value <= sum) return values;  // already fine
  const std::uint64_t numerator = 4 * max_value - sum;
  const std::uint64_t denominator = 2 * m - 4;
  std::uint64_t shift = CeilDiv(numerator, denominator);
  if (shift % 2 != 0) ++shift;  // keep the sum even
  for (auto& v : values) v += shift;
  return values;
}

}  // namespace rpt::npc
