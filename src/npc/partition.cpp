#include "npc/partition.hpp"

#include <algorithm>
#include <numeric>

#include "support/common.hpp"

namespace rpt::npc {

bool ThreePartitionInstance::IsWellFormed() const noexcept {
  if (values.size() % 3 != 0 || values.empty() || bound == 0) return false;
  const std::uint64_t m = GroupCount();
  std::uint64_t sum = 0;
  for (const std::uint64_t v : values) {
    if (4 * v <= bound || 2 * v >= bound) return false;  // need B/4 < v < B/2
    sum += v;
  }
  return sum == m * bound;
}

namespace {

struct ThreePartitionSearch {
  const std::vector<std::uint64_t>& values;
  std::uint64_t bound;
  std::vector<std::size_t> order;                // indices sorted by value desc
  std::vector<std::uint64_t> group_sum;
  std::vector<std::uint32_t> group_count;
  std::vector<std::size_t> assignment;           // item -> group

  bool Assign(std::size_t pos) {
    if (pos == order.size()) return true;
    const std::size_t item = order[pos];
    const std::uint64_t value = values[item];
    bool tried_empty = false;
    for (std::size_t g = 0; g < group_sum.size(); ++g) {
      if (group_count[g] == 3) continue;
      if (group_sum[g] + value > bound) continue;
      if (group_count[g] == 0) {
        if (tried_empty) continue;  // symmetry: all empty groups equivalent
        tried_empty = true;
      }
      group_sum[g] += value;
      ++group_count[g];
      assignment[item] = g;
      if (Assign(pos + 1)) return true;
      group_sum[g] -= value;
      --group_count[g];
    }
    return false;
  }
};

}  // namespace

std::optional<std::vector<std::array<std::size_t, 3>>> SolveThreePartition(
    const ThreePartitionInstance& instance) {
  RPT_REQUIRE(instance.values.size() % 3 == 0 && !instance.values.empty(),
              "SolveThreePartition: value count must be a positive multiple of 3");
  const std::uint64_t m = instance.GroupCount();
  const std::uint64_t sum = std::accumulate(instance.values.begin(), instance.values.end(),
                                            std::uint64_t{0});
  if (sum != m * instance.bound) return std::nullopt;

  ThreePartitionSearch search{instance.values, instance.bound, {}, {}, {}, {}};
  search.order.resize(instance.values.size());
  std::iota(search.order.begin(), search.order.end(), std::size_t{0});
  std::sort(search.order.begin(), search.order.end(), [&](std::size_t a, std::size_t b) {
    return instance.values[a] > instance.values[b];
  });
  search.group_sum.assign(m, 0);
  search.group_count.assign(m, 0);
  search.assignment.assign(instance.values.size(), 0);
  if (!search.Assign(0)) return std::nullopt;

  std::vector<std::array<std::size_t, 3>> triples(m, {0, 0, 0});
  std::vector<std::uint32_t> filled(m, 0);
  for (std::size_t item = 0; item < instance.values.size(); ++item) {
    const std::size_t g = search.assignment[item];
    triples[g][filled[g]++] = item;
  }
  return triples;
}

ThreePartitionInstance MakeThreePartitionYes(std::uint64_t m, std::uint64_t scale, Rng& rng) {
  RPT_REQUIRE(m >= 1, "MakeThreePartitionYes: m must be >= 1");
  RPT_REQUIRE(scale >= 4, "MakeThreePartitionYes: scale must be >= 4");
  const std::uint64_t bound = 4 * scale;  // so the window is (scale, 2*scale)
  ThreePartitionInstance instance;
  instance.bound = bound;
  for (std::uint64_t k = 0; k < m; ++k) {
    // a in [scale+1, 2*scale-2] keeps a feasible window for b.
    const std::uint64_t a = rng.NextInRange(scale + 1, 2 * scale - 2);
    const std::uint64_t b_lo = std::max(scale + 1, 2 * scale - a + 1);
    const std::uint64_t b_hi = std::min(2 * scale - 1, 3 * scale - a - 1);
    RPT_CHECK(b_lo <= b_hi);
    const std::uint64_t b = rng.NextInRange(b_lo, b_hi);
    const std::uint64_t c = bound - a - b;
    instance.values.push_back(a);
    instance.values.push_back(b);
    instance.values.push_back(c);
  }
  rng.Shuffle(instance.values);
  RPT_CHECK(instance.IsWellFormed());
  return instance;
}

ThreePartitionInstance MakeThreePartitionNo(std::uint64_t m, std::uint64_t scale, Rng& rng) {
  RPT_REQUIRE(m >= 3 && m % 3 == 0, "MakeThreePartitionNo: m must be a positive multiple of 3");
  RPT_REQUIRE(scale >= 6, "MakeThreePartitionNo: scale must be >= 6");
  // B ≡ 1 (mod 3) while all values ≡ 1 (mod 3): every triple sums to
  // ≡ 0 (mod 3) != B (mod 3), so no partition can exist.
  const std::uint64_t bound = 12 * scale + 1;
  ThreePartitionInstance instance;
  instance.bound = bound;
  instance.values.assign(3 * m, 4 * scale + 1);  // ≡ 1 (mod 3), inside the window
  // Current sum is m*B + 2m; remove 2m in steps of 3 (preserving residues).
  std::uint64_t deficit = 2 * m;
  RPT_CHECK(deficit % 3 == 0 || true);  // 2m with m ≡ 0 (mod 3) is divisible by 3
  const std::uint64_t low = 3 * scale + 1;  // smallest value still > B/4
  while (deficit > 0) {
    const std::size_t i = static_cast<std::size_t>(rng.NextBelow(instance.values.size()));
    if (instance.values[i] < low + 3) continue;
    instance.values[i] -= 3;
    deficit -= 3;
  }
  RPT_CHECK(instance.IsWellFormed());
  return instance;
}

namespace {

// Subset-sum DP with first-setter reconstruction. Returns indices of a
// subset summing exactly to `target`, or nullopt.
std::optional<std::vector<std::size_t>> SubsetWithSum(const std::vector<std::uint64_t>& values,
                                                      std::uint64_t target) {
  constexpr std::size_t kUnset = static_cast<std::size_t>(-1);
  std::vector<std::size_t> setter(static_cast<std::size_t>(target) + 1, kUnset);
  std::vector<char> reachable(static_cast<std::size_t>(target) + 1, 0);
  reachable[0] = 1;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::uint64_t v = values[i];
    if (v > target) continue;
    for (std::uint64_t s = target; s >= v; --s) {
      if (!reachable[s] && reachable[s - v]) {
        reachable[s] = 1;
        setter[s] = i;
      }
      if (s == v) break;
    }
  }
  if (!reachable[target]) return std::nullopt;
  std::vector<std::size_t> subset;
  std::uint64_t s = target;
  while (s > 0) {
    const std::size_t i = setter[s];
    RPT_CHECK(i != kUnset);
    subset.push_back(i);
    s -= values[i];
  }
  std::sort(subset.begin(), subset.end());
  return subset;
}

}  // namespace

std::optional<std::vector<std::size_t>> SolveTwoPartition(
    const std::vector<std::uint64_t>& values) {
  const std::uint64_t sum = std::accumulate(values.begin(), values.end(), std::uint64_t{0});
  if (sum % 2 != 0) return std::nullopt;
  return SubsetWithSum(values, sum / 2);
}

std::optional<std::vector<std::size_t>> SolveTwoPartitionEqual(
    const std::vector<std::uint64_t>& values) {
  if (values.size() % 2 != 0 || values.empty()) return std::nullopt;
  const std::uint64_t sum = std::accumulate(values.begin(), values.end(), std::uint64_t{0});
  if (sum % 2 != 0) return std::nullopt;
  const std::uint64_t m = values.size() / 2;
  const std::uint64_t half = sum / 2;

  // dp[count][s]: reachable; setter for reconstruction, first-set wins.
  constexpr std::size_t kUnset = static_cast<std::size_t>(-1);
  std::vector<std::vector<std::size_t>> setter(
      m + 1, std::vector<std::size_t>(static_cast<std::size_t>(half) + 1, kUnset));
  std::vector<std::vector<char>> reachable(
      m + 1, std::vector<char>(static_cast<std::size_t>(half) + 1, 0));
  reachable[0][0] = 1;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::uint64_t v = values[i];
    if (v > half) continue;
    for (std::uint64_t count = std::min<std::uint64_t>(m, i + 1); count >= 1; --count) {
      for (std::uint64_t s = half; s >= v; --s) {
        if (!reachable[count][s] && reachable[count - 1][s - v]) {
          reachable[count][s] = 1;
          setter[count][s] = i;
        }
        if (s == v) break;
      }
    }
  }
  if (!reachable[m][half]) return std::nullopt;
  std::vector<std::size_t> subset;
  std::uint64_t count = m;
  std::uint64_t s = half;
  while (count > 0) {
    const std::size_t i = setter[count][s];
    RPT_CHECK(i != kUnset);
    subset.push_back(i);
    s -= values[i];
    --count;
  }
  RPT_CHECK(s == 0);
  std::sort(subset.begin(), subset.end());
  return subset;
}

std::vector<std::uint64_t> MakeTwoPartitionYes(std::size_t count, std::uint64_t max_value,
                                               Rng& rng) {
  RPT_REQUIRE(count >= 2, "MakeTwoPartitionYes: need at least two values");
  RPT_REQUIRE(max_value >= 2, "MakeTwoPartitionYes: max_value too small");
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::vector<std::uint64_t> values;
    for (std::size_t i = 0; i + 1 < count; ++i) values.push_back(rng.NextInRange(1, max_value));
    std::uint64_t side_a = 0;
    std::uint64_t side_b = 0;
    for (const std::uint64_t v : values) {
      (rng.NextBool(0.5) ? side_a : side_b) += v;
    }
    const std::uint64_t diff = side_a > side_b ? side_a - side_b : side_b - side_a;
    if (diff == 0 || diff > max_value) continue;
    values.push_back(diff);
    rng.Shuffle(values);
    RPT_CHECK(SolveTwoPartition(values).has_value());
    return values;
  }
  detail::ThrowInvalid("MakeTwoPartitionYes: generation failed; widen max_value");
}

std::vector<std::uint64_t> MakeTwoPartitionNo(std::size_t count, std::uint64_t max_value,
                                              Rng& rng) {
  RPT_REQUIRE(count >= 2, "MakeTwoPartitionNo: need at least two values");
  RPT_REQUIRE(max_value >= 4, "MakeTwoPartitionNo: max_value too small");
  for (int attempt = 0; attempt < 10000; ++attempt) {
    std::vector<std::uint64_t> values;
    for (std::size_t i = 0; i < count; ++i) values.push_back(rng.NextInRange(1, max_value));
    std::uint64_t sum = std::accumulate(values.begin(), values.end(), std::uint64_t{0});
    if (sum % 2 != 0) {
      // Nudge one value to make the sum even while staying in range.
      for (auto& v : values) {
        if (v < max_value) {
          ++v;
          ++sum;
          break;
        }
      }
      if (sum % 2 != 0) continue;
    }
    if (!SolveTwoPartition(values).has_value()) return values;
  }
  detail::ThrowInvalid("MakeTwoPartitionNo: generation failed; use fewer/larger values");
}

std::vector<std::uint64_t> MakeTwoPartitionEqualYes(std::uint64_t m, std::uint64_t max_value,
                                                    Rng& rng) {
  RPT_REQUIRE(m >= 1, "MakeTwoPartitionEqualYes: m must be >= 1");
  RPT_REQUIRE(max_value >= 2, "MakeTwoPartitionEqualYes: max_value too small");
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::vector<std::uint64_t> side_a;
    for (std::uint64_t i = 0; i < m; ++i) side_a.push_back(rng.NextInRange(1, max_value));
    const std::uint64_t target =
        std::accumulate(side_a.begin(), side_a.end(), std::uint64_t{0});
    // Build the second side with the same sum and cardinality.
    std::vector<std::uint64_t> side_b;
    std::uint64_t remaining = target;
    bool ok = true;
    for (std::uint64_t i = 0; i + 1 < m; ++i) {
      const std::uint64_t slots_left = m - i - 1;  // values still to draw after this one
      const std::uint64_t lo = remaining > slots_left * max_value
                                   ? remaining - slots_left * max_value
                                   : 1;
      const std::uint64_t hi = std::min<std::uint64_t>(max_value, remaining - slots_left);
      if (lo > hi) {
        ok = false;
        break;
      }
      const std::uint64_t v = rng.NextInRange(lo, hi);
      side_b.push_back(v);
      remaining -= v;
    }
    if (!ok || remaining == 0 || remaining > max_value) continue;
    side_b.push_back(remaining);
    std::vector<std::uint64_t> values(side_a);
    values.insert(values.end(), side_b.begin(), side_b.end());
    rng.Shuffle(values);
    if (SolveTwoPartitionEqual(values).has_value()) return values;
  }
  detail::ThrowInvalid("MakeTwoPartitionEqualYes: generation failed; widen max_value");
}

std::vector<std::uint64_t> MakeTwoPartitionEqualNo(std::uint64_t m, std::uint64_t max_value,
                                                   Rng& rng) {
  RPT_REQUIRE(m >= 1, "MakeTwoPartitionEqualNo: m must be >= 1");
  RPT_REQUIRE(max_value >= 4, "MakeTwoPartitionEqualNo: max_value too small");
  for (int attempt = 0; attempt < 10000; ++attempt) {
    std::vector<std::uint64_t> values;
    for (std::uint64_t i = 0; i < 2 * m; ++i) values.push_back(rng.NextInRange(1, max_value));
    std::uint64_t sum = std::accumulate(values.begin(), values.end(), std::uint64_t{0});
    if (sum % 2 != 0) {
      for (auto& v : values) {
        if (v < max_value) {
          ++v;
          ++sum;
          break;
        }
      }
      if (sum % 2 != 0) continue;
    }
    if (!SolveTwoPartitionEqual(values).has_value()) return values;
  }
  detail::ThrowInvalid("MakeTwoPartitionEqualNo: generation failed; use fewer/larger values");
}

}  // namespace rpt::npc
