// ServeHarness — the in-process rpt-serve front end: one IncrementalSolver
// applying update batches, one SnapshotStore publishing the results, any
// number of query threads answering against pinned snapshots.
//
// This is the seam the always-on service is built around: callers that want
// a network boundary wrap the harness in a TcpServer (tcp_server.hpp);
// callers that want zero-copy serving (tests, benches, embedding into a
// larger process) use it directly. Either way the contract is the same:
//
//  * ONE update thread calls ApplyAndPublish(events) — the solver applies
//    the batch (atomic validation, incremental re-solve) and a fresh
//    immutable snapshot of the new state is built and published. A batch
//    that fails validation throws and publishes NOTHING: queries keep being
//    answered against the last good snapshot (this is what "always-on"
//    means — a bad update cannot take the service down or expose a torn
//    state).
//  * ANY number of threads call Query()/Pin() concurrently — each query
//    pins the current snapshot for exactly its own duration. Queries never
//    block on the solver or the publisher.
//
// An infeasible state (legal — e.g. a surge no placement can absorb) is
// still published: its snapshot has no replicas, which-replica/attach
// queries answer not-ok, and the version keeps advancing.
//
// ## Durability (optional)
//
// Constructed with DurabilityOptions, the harness writes every attempted
// batch to an EventWal BEFORE the solver sees it and cuts periodic
// checkpoint files (serve/event_wal.hpp has the formats and the rationale
// for log-then-apply). RecoverFrom() rebuilds a harness from a directory:
// newest intact checkpoint -> restored solver, then the WAL tail replays
// through the ordinary Apply path. Two counters with different meanings:
//
//  * seq      — attempted batches, == the WAL record count. Rejected
//               batches ARE logged (they consume a seq) and re-reject
//               deterministically on replay.
//  * version  — published snapshots, advanced only by successful applies.
//               Snapshot CanonicalHash mixes the version, so recovery
//               reconstructs it exactly: checkpoint version + replay
//               successes.
//
// Recovery publishes ONE snapshot (the final recovered state) rather than
// re-publishing every intermediate — byte-identical (CanonicalHash) to the
// uninterrupted run's latest, which the oracle tests enforce.
//
// ## Degraded mode
//
// When a durable append or the solve after it fails for any reason OTHER
// than batch validation (I/O error, fsync failure, internal invariant),
// the harness marks itself STALE: queries keep answering from the last
// good snapshot with QueryResponse::stale set, and the next successful
// ApplyAndPublish clears the flag. Validation failures (InvalidArgument)
// are the caller's bug, not degradation — they do not set the flag.
//
// Checkpoint failures are a third category: the batch that triggered a
// periodic checkpoint had already committed (logged, applied, published),
// so ApplyAndPublish contains the checkpoint's InternalError — an escape
// would misreport the apply as failed and invite a double-applying retry —
// and surfaces it via CheckpointFailures()/LastCheckpointError(). A failed
// WAL trim re-engages the untrimmed log (still valid, still holding every
// batch); only if even that reopen fails does the harness refuse further
// applies (loudly, via InternalError) rather than serve without a log.
//
// Ownership: the harness owns the solver and the store; the Instance must
// outlive the harness (same rule as IncrementalSolver).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "incremental/incremental_solver.hpp"
#include "serve/event_wal.hpp"
#include "serve/query.hpp"
#include "serve/snapshot_store.hpp"

namespace rpt::serve {

/// Switches on the durable (WAL + checkpoint) mode of ServeHarness.
struct DurabilityOptions {
  std::string dir;  ///< state directory (created if absent); one harness per dir
  /// Cut a checkpoint every N successful applies (0 = never; recovery then
  /// replays the whole log).
  std::uint64_t checkpoint_every = 0;
  bool sync_appends = true;       ///< fsync the WAL after every append
  bool trim_on_checkpoint = true; ///< rewrite the WAL keeping only post-checkpoint records
};

class ServeHarness {
 public:
  /// Solves `instance` from scratch and publishes snapshot version 1.
  explicit ServeHarness(const Instance& instance, incremental::SolverOptions options = {});

  /// Durable mode: like the plain constructor, plus every batch is WAL-
  /// logged and checkpoints are cut per `durability`. The directory must
  /// not already contain serving state (use RecoverFrom for that —
  /// silently re-initializing over a previous life's WAL would orphan it).
  ServeHarness(const Instance& instance, incremental::SolverOptions options,
               const DurabilityOptions& durability);

  /// Rebuilds a harness from `durability.dir`: loads the newest intact
  /// checkpoint (if any), replays the WAL tail through the normal apply
  /// path (logged batches that fail validation re-reject and are skipped),
  /// truncates any torn tail record, and publishes the recovered state as
  /// one snapshot — byte-identical (CanonicalHash) to the uninterrupted
  /// run's. Throws InternalError on interior WAL corruption, on a WAL tail
  /// that is not seq-contiguous with the loaded checkpoint, and when a
  /// damaged newest checkpoint's records are gone from the trimmed WAL
  /// (filenames advertise each checkpoint's seq): a log with a hole must
  /// never silently recover to a wrong table. An empty/missing directory
  /// recovers to the same state the durable constructor creates.
  [[nodiscard]] static std::unique_ptr<ServeHarness> RecoverFrom(
      const Instance& instance, incremental::SolverOptions options,
      const DurabilityOptions& durability);

  ServeHarness(const ServeHarness&) = delete;
  ServeHarness& operator=(const ServeHarness&) = delete;

  /// Applies one event batch to the solver and publishes a snapshot of the
  /// resulting state. Returns the new state's feasibility. Throws
  /// InvalidArgument (and publishes nothing) when the batch fails the
  /// solver's atomic validation; throws InternalError (and enters degraded
  /// mode — see Stale()) on a durability failure. Single update thread
  /// only.
  bool ApplyAndPublish(std::span<const incremental::UpdateEvent> events);

  /// Pins the current snapshot (always non-empty — the constructor
  /// publishes version 1 before returning). Any thread.
  [[nodiscard]] SnapshotStore::Ref Pin() const { return store_.Acquire(); }

  /// Pins the current snapshot, answers, unpins. Any thread.
  [[nodiscard]] QueryResponse Query(const QueryRequest& request) const;

  /// Queries answered via Query() over the harness lifetime.
  [[nodiscard]] std::uint64_t QueriesAnswered() const noexcept {
    return queries_answered_.load(std::memory_order_relaxed);
  }

  /// Snapshots published, including the constructor's initial one.
  [[nodiscard]] std::uint64_t Publishes() const noexcept { return store_.Publishes(); }

  /// True while the harness serves in degraded mode (see the header note).
  /// Any thread.
  [[nodiscard]] bool Stale() const noexcept {
    return stale_.load(std::memory_order_relaxed);
  }

  /// Replication fencing epoch (serve/repl_link.hpp). Starts at 1; bumped
  /// only by AdoptEpoch (a follower promoting, or a follower applying a
  /// shipped epoch record). Any thread.
  [[nodiscard]] std::uint64_t Epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// Durably adopts `epoch` (>= the current one): in durable mode an epoch
  /// record is appended to the WAL first — it consumes a seq like any batch
  /// and replays on recovery — so a promoted follower's fencing token
  /// survives its own crash. Update thread only; same degraded-mode
  /// semantics as a failed batch append.
  void AdoptEpoch(std::uint64_t epoch);

  /// Follower flag: set while this harness applies a replicated stream
  /// rather than local writes. Queries answer with
  /// QueryResponse::follower so clients can tell a replica answered.
  void SetFollower(bool follower) noexcept {
    follower_.store(follower, std::memory_order_relaxed);
  }
  [[nodiscard]] bool IsFollower() const noexcept {
    return follower_.load(std::memory_order_relaxed);
  }

  /// Cuts a checkpoint of the current state now (durable mode only; no-op
  /// otherwise). Also trims the WAL when `trim_on_checkpoint` is set.
  /// Throws InternalError on failure; a failed trim re-engages the intact
  /// untrimmed log before rethrowing, so durability survives the error.
  /// (Periodic checkpoints triggered inside ApplyAndPublish contain this
  /// error instead — see LastCheckpointError().)
  void Checkpoint();

  /// Periodic (ApplyAndPublish-triggered) checkpoints that failed. Their
  /// InternalError is contained — the batch itself had already committed,
  /// so letting it escape would misreport the apply as failed — and
  /// surfaced here instead. Update thread only.
  [[nodiscard]] std::uint64_t CheckpointFailures() const noexcept {
    return checkpoint_failures_;
  }

  /// what() of the most recent contained periodic-checkpoint failure;
  /// empty when the last periodic checkpoint succeeded. Update thread only.
  [[nodiscard]] const std::string& LastCheckpointError() const noexcept {
    return last_checkpoint_error_;
  }

  /// Last batch sequence number committed to the WAL (0 before the first
  /// append or in non-durable mode). Recovery resumes a trace at this
  /// index: everything up to and including it survived.
  [[nodiscard]] std::uint64_t LastDurableSeq() const noexcept { return seq_; }

  /// Batches replayed from the WAL tail by RecoverFrom (0 for a directly
  /// constructed harness).
  [[nodiscard]] std::uint64_t RecoveredBatches() const noexcept {
    return recovered_batches_;
  }

  [[nodiscard]] const incremental::IncrementalSolver& Solver() const noexcept {
    return *solver_;
  }
  [[nodiscard]] const SnapshotStore& Store() const noexcept { return store_; }

 private:
  struct RecoveredState;  // checkpoint + WAL tail, resolved before solver init
  ServeHarness(const Instance& instance, incremental::SolverOptions options,
               const DurabilityOptions& durability, RecoveredState&& recovered);

  void PublishCurrent();
  void MaybeCheckpoint();
  void RequireWal();

  /// Behind a pointer (not a plain member) because recovery picks between
  /// the from-scratch and the restore constructor at runtime and the
  /// solver is neither copyable nor movable. Never null after construction.
  std::unique_ptr<incremental::IncrementalSolver> solver_;
  SnapshotStore store_;
  std::uint64_t next_version_ = 1;  // update-thread-owned
  mutable std::atomic<std::uint64_t> queries_answered_{0};
  std::atomic<bool> stale_{false};
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<bool> follower_{false};

  // Durable mode only (wal_ disengaged otherwise — except after a failed
  // checkpoint trim whose reopen also failed, when durability_.dir is set
  // but wal_ is empty and RequireWal() refuses further applies). All
  // update-thread-owned.
  DurabilityOptions durability_;
  std::optional<EventWal> wal_;
  std::uint64_t seq_ = 0;                   ///< last WAL-committed batch seq
  std::uint64_t applies_since_checkpoint_ = 0;
  std::uint64_t recovered_batches_ = 0;
  std::uint64_t checkpoint_failures_ = 0;
  std::string last_checkpoint_error_;
};

}  // namespace rpt::serve
