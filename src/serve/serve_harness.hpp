// ServeHarness — the in-process rpt-serve front end: one IncrementalSolver
// applying update batches, one SnapshotStore publishing the results, any
// number of query threads answering against pinned snapshots.
//
// This is the seam the always-on service is built around: callers that want
// a network boundary wrap the harness in a TcpServer (tcp_server.hpp);
// callers that want zero-copy serving (tests, benches, embedding into a
// larger process) use it directly. Either way the contract is the same:
//
//  * ONE update thread calls ApplyAndPublish(events) — the solver applies
//    the batch (atomic validation, incremental re-solve) and a fresh
//    immutable snapshot of the new state is built and published. A batch
//    that fails validation throws and publishes NOTHING: queries keep being
//    answered against the last good snapshot (this is what "always-on"
//    means — a bad update cannot take the service down or expose a torn
//    state).
//  * ANY number of threads call Query()/Pin() concurrently — each query
//    pins the current snapshot for exactly its own duration. Queries never
//    block on the solver or the publisher.
//
// An infeasible state (legal — e.g. a surge no placement can absorb) is
// still published: its snapshot has no replicas, which-replica/attach
// queries answer not-ok, and the version keeps advancing.
//
// Ownership: the harness owns the solver and the store; the Instance must
// outlive the harness (same rule as IncrementalSolver).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>

#include "incremental/incremental_solver.hpp"
#include "serve/query.hpp"
#include "serve/snapshot_store.hpp"

namespace rpt::serve {

class ServeHarness {
 public:
  /// Solves `instance` from scratch and publishes snapshot version 1.
  explicit ServeHarness(const Instance& instance, incremental::SolverOptions options = {});

  ServeHarness(const ServeHarness&) = delete;
  ServeHarness& operator=(const ServeHarness&) = delete;

  /// Applies one event batch to the solver and publishes a snapshot of the
  /// resulting state. Returns the new state's feasibility. Throws
  /// InvalidArgument (and publishes nothing) when the batch fails the
  /// solver's atomic validation. Single update thread only.
  bool ApplyAndPublish(std::span<const incremental::UpdateEvent> events);

  /// Pins the current snapshot (always non-empty — the constructor
  /// publishes version 1 before returning). Any thread.
  [[nodiscard]] SnapshotStore::Ref Pin() const { return store_.Acquire(); }

  /// Pins the current snapshot, answers, unpins. Any thread.
  [[nodiscard]] QueryResponse Query(const QueryRequest& request) const;

  /// Queries answered via Query() over the harness lifetime.
  [[nodiscard]] std::uint64_t QueriesAnswered() const noexcept {
    return queries_answered_.load(std::memory_order_relaxed);
  }

  /// Snapshots published, including the constructor's initial one.
  [[nodiscard]] std::uint64_t Publishes() const noexcept { return store_.Publishes(); }

  [[nodiscard]] const incremental::IncrementalSolver& Solver() const noexcept {
    return solver_;
  }
  [[nodiscard]] const SnapshotStore& Store() const noexcept { return store_; }

 private:
  void PublishCurrent();

  incremental::IncrementalSolver solver_;
  SnapshotStore store_;
  std::uint64_t next_version_ = 1;  // update-thread-owned
  mutable std::atomic<std::uint64_t> queries_answered_{0};
};

}  // namespace rpt::serve
