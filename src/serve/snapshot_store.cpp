#include "serve/snapshot_store.hpp"

#include <thread>
#include <utility>

namespace rpt::serve {

SnapshotStore::Ref::Ref(const Ref& other) noexcept
    : snapshot_(other.snapshot_), pins_(other.pins_) {
  if (pins_ != nullptr) pins_->fetch_add(1, std::memory_order_acq_rel);
}

SnapshotStore::Ref::Ref(Ref&& other) noexcept : snapshot_(other.snapshot_), pins_(other.pins_) {
  other.snapshot_ = nullptr;
  other.pins_ = nullptr;
}

SnapshotStore::Ref& SnapshotStore::Ref::operator=(Ref other) noexcept {
  std::swap(snapshot_, other.snapshot_);
  std::swap(pins_, other.pins_);
  return *this;
}

SnapshotStore::Ref::~Ref() { Release(); }

void SnapshotStore::Ref::Release() noexcept {
  if (pins_ != nullptr) {
    // Release order: everything this reader did with the snapshot happens
    // before the publisher's acquire drain-load sees the count hit zero.
    pins_->fetch_sub(1, std::memory_order_acq_rel);
  }
  snapshot_ = nullptr;
  pins_ = nullptr;
}

SnapshotStore::~SnapshotStore() {
  for (Slot& slot : slots_) {
    RPT_CHECK(slot.pins.load(std::memory_order_acquire) == 0);
  }
}

SnapshotStore::Ref SnapshotStore::Acquire() const noexcept {
  for (;;) {
    const int cur = current_.load(std::memory_order_seq_cst);
    if (cur < 0) return Ref{};
    Slot& slot = slots_[cur];
    // Optimistic pin, then re-check currency. The pin (a seq_cst RMW) and
    // the re-check load form one half of a Dekker pattern with the
    // publisher's flip-store + drain-load: in the single total order of
    // seq_cst operations, either our pin precedes the publisher's drain
    // load (it sees the count and waits for us), or the flip precedes our
    // re-check (we see the slot go non-current and retry). acq_rel would
    // NOT be enough — store-then-load may reorder across distinct atomics,
    // letting the drain miss a fresh pin and reclaim under a live reader.
    slot.pins.fetch_add(1, std::memory_order_seq_cst);
    if (current_.load(std::memory_order_seq_cst) == cur) {
      return Ref{slot.snapshot.get(), &slot.pins};
    }
    slot.pins.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void SnapshotStore::Publish(std::unique_ptr<const PlacementSnapshot> snapshot) {
  RPT_REQUIRE(snapshot != nullptr, "SnapshotStore: cannot publish a null snapshot");
  RPT_CHECK(!publishing_.exchange(true, std::memory_order_acq_rel));

  const int cur = current_.load(std::memory_order_relaxed);  // publisher-owned
  const int spare = cur < 0 ? 0 : 1 - cur;
  Slot& slot = slots_[spare];

  // Reader draining: the spare slot still holds the snapshot from two
  // publishes ago, and stragglers may still be reading it. Busy-wait (with
  // yields) until the last one detaches — queries are microseconds, so this
  // is publisher-side latency, never reader-side blocking. seq_cst pairs
  // with the pin/re-check in Acquire (see the Dekker note there).
  while (slot.pins.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }

  // Sole owner of a drained, non-current slot: safe to reclaim + install.
  slot.snapshot = std::move(snapshot);
  // The flip is the publication point: readers that see `spare` as current
  // also see the fully built snapshot (store-release semantics are implied
  // by seq_cst; seq_cst itself is needed for the drain pairing above).
  current_.store(spare, std::memory_order_seq_cst);
  publishes_.fetch_add(1, std::memory_order_acq_rel);
  publishing_.store(false, std::memory_order_release);
}

std::uint64_t SnapshotStore::CurrentVersion() const noexcept {
  const Ref ref = Acquire();
  return ref ? ref->Version() : 0;
}

}  // namespace rpt::serve
