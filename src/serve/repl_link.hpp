// Replicated serving: primary→follower WAL shipping with epoch-fenced
// failover.
//
// PR 8 made one ServeHarness crash-safe; this layer makes the SERVICE
// survive host loss. A primary streams the exact CRC-framed records its
// EventWal commits (event_wal.hpp — len u32 | crc u32 | payload) to any
// number of followers, each of which log-then-applies the record through
// its OWN durable ServeHarness (so a follower is itself crash-safe, cuts
// its own checkpoints, and serves reads with QueryResponse::follower set)
// and acks per seq. The wire format doubling as the WAL format is the
// point: what ships is what recovers, one codec, one corruption corpus —
// and the record stream is the seam a sharded multi-machine deployment
// would ship between shards.
//
// ## Frame protocol
//
// Replication frames ride the same outer framing as the query wire (4-byte
// LE length prefix, net_util.hpp), payloads little-endian:
//
//   HELLO      u8=1 | epoch u64 | last_seq u64     follower → primary
//   RECORD     u8=2 | epoch u64 | hash u64 | framed WAL record bytes
//   ACK        u8=3 | epoch u64 | seq u64          follower → primary
//   HEARTBEAT  u8=4 | epoch u64 | watermark u64    primary → follower
//   FENCE      u8=5 | epoch u64                    follower → primary
//
// HELLO both opens a subscription and requests a resync: the primary
// (re)ships every retained record past `last_seq`. RECORD carries the
// primary's post-apply snapshot CanonicalHash so the follower can verify
// BYTE-level agreement after every applied record — divergence is a loud
// InternalError, never a silent fork. ACKs drive the primary's replication
// watermark: the largest seq every connected follower has durably applied.
// An acked write is on >= 2 disks; failover loses nothing at or below the
// watermark.
//
// ## Epoch fencing (split-brain prevention)
//
// Every harness carries a monotonic epoch (ServeHarness::Epoch, starts
// at 1); every replication frame carries its sender's epoch. A follower
// that misses heartbeats for its configured window promotes: it bumps the
// epoch THROUGH ITS WAL (AdoptEpoch writes a durable epoch record before
// the new epoch is visible — a promoted follower that crashes recovers
// still promoted), flips off the follower status bit, and serves writes.
// From then on any frame carrying a LOWER epoch is answered with FENCE and
// never applied — counted by StaleEpochRejections(). A primary that
// receives FENCE sets Fenced() and every subsequent Apply() throws
// InternalError: the deposed primary is loudly rejected, it cannot split
// the brain. Frames carrying a HIGHER epoch are accepted (the sender is
// the newer primary; our epoch catches up when its epoch record applies).
//
// ## Degraded-mode matrix
//
//   primary alone      no followers connected; watermark 0; serves rw
//   replicating        followers acking; watermark advances; followers
//                      serve reads with the follower bit
//   partitioned        frames dropped (repl.partition); primary still
//                      serves rw but the watermark stalls and Apply()
//                      reports not-all-acked; follower serves stale reads
//                      until its heartbeat window expires
//   promoted           follower bumped the epoch and serves rw; the old
//                      primary is fenced on first contact after heal
//
// ## Fault injection
//
// Every replication frame (both directions) leaves through FaultySender,
// which consults the failpoints repl.partition (sticky: drop everything
// until healed), repl.link.drop / .dup / .reorder (one-shot frame faults)
// and repl.link.delay (kDelay). Drops and reorders surface as seq gaps on
// the receiver: the follower answers with a fresh HELLO and the primary
// re-ships — retry or loud, never divergent (tests/test_repl.cpp runs the
// same truncate-at-every-byte / bit-flip corpus as the WAL).
//
// ## Catch-up scope
//
// The primary retains every record it has shipped since Start() in memory
// (base seq = its harness seq at Start). A HELLO below the retained range
// is refused loudly — bootstrap-from-checkpoint transfer is future work;
// start followers before traffic or restart them with their own durable
// state intact.
//
// Threading: ReplPrimary::Apply is update-thread-only (same contract as
// ServeHarness::ApplyAndPublish); acks/fences arrive on per-connection
// reader threads. The follower applies records on its single link thread,
// which is also the only thread that promotes — queries stay wait-free on
// both sides.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "serve/event_wal.hpp"
#include "serve/serve_harness.hpp"

namespace rpt::serve {

/// Replication frame kinds (payload byte 0).
enum class ReplFrameKind : std::uint8_t {
  kHello = 1,
  kRecord = 2,
  kAck = 3,
  kHeartbeat = 4,
  kFence = 5,
};

/// A RECORD frame can carry one maximal WAL record plus the header.
inline constexpr std::uint32_t kMaxReplFrameBytes = kMaxWalRecordBytes + 64;

/// One decoded replication frame (the union of all five payloads).
struct ReplFrame {
  ReplFrameKind kind = ReplFrameKind::kHello;
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;       ///< HELLO last_seq / ACK seq / HEARTBEAT watermark
  std::uint64_t hash = 0;      ///< RECORD only: sender's post-apply snapshot hash
  std::string record;          ///< RECORD only: framed WAL record bytes
};

/// Encodes/decodes replication frame payloads (without the outer length
/// prefix). Decode returns nullopt on a structurally broken payload — the
/// link treats that like a dropped frame (resync), not a crash.
[[nodiscard]] std::string EncodeReplFrame(const ReplFrame& frame);
[[nodiscard]] std::optional<ReplFrame> DecodeReplFrame(const std::string& payload);

/// Sends frames through the link-fault failpoints (header note). One per
/// connection and direction; serializes concurrent senders.
class FaultySender {
 public:
  explicit FaultySender(int fd) : fd_(fd) {}

  /// Frames the payload and sends it, subject to armed faults. A dropped
  /// frame reports true (the sender cannot tell — that is the fault).
  bool Send(const std::string& payload);

 private:
  int fd_;
  std::mutex mu_;
  std::string held_;  // repl.link.reorder parks one frame here
  bool has_held_ = false;
};

/// The follower's socket-free record state machine: everything between
/// "a RECORD frame arrived" and "ack / resync / fence", exposed so the
/// corruption-corpus tests can drive it with damaged bytes directly.
class FollowerCore {
 public:
  explicit FollowerCore(ServeHarness& harness) : harness_(harness) {}

  enum class Outcome {
    kApplied,    ///< logged + applied (or deterministically re-rejected); ack it
    kDuplicate,  ///< seq already durable here; re-ack, apply nothing
    kResync,     ///< damaged or out-of-order record; answer with HELLO
    kFenced,     ///< sender's epoch is stale; answer with FENCE
  };

  /// Processes one shipped record. Throws InternalError on divergence
  /// (the applied state's CanonicalHash differs from the primary's) and on
  /// valid-CRC-but-unparseable payloads — the never-divergent contract is
  /// "retry or loud".
  Outcome OnRecord(std::uint64_t sender_epoch, std::uint64_t expected_hash,
                   const std::string& record_bytes);

  // Counters are atomics: OnRecord runs on the link thread while tests and
  // drivers poll from theirs.
  [[nodiscard]] std::uint64_t Applied() const noexcept {
    return applied_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t Duplicates() const noexcept {
    return duplicates_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t Resyncs() const noexcept {
    return resyncs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t StaleEpochRejections() const noexcept {
    return fenced_.load(std::memory_order_relaxed);
  }

 private:
  ServeHarness& harness_;
  std::atomic<std::uint64_t> applied_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> resyncs_{0};
  std::atomic<std::uint64_t> fenced_{0};
};

struct ReplPrimaryOptions {
  int io_timeout_ms = 5000;    ///< per-connection socket op bound
  /// Apply() waits this long for every connected follower to ack the new
  /// seq before reporting replication lag (it never blocks the local
  /// commit). 0 = fire-and-forget shipping.
  int ack_wait_ms = 2000;
};

/// Primary side: wraps the local (durable) harness, accepts follower
/// subscriptions, ships every applied batch, tracks the watermark, and
/// turns an incoming FENCE into a hard stop for local writes.
class ReplPrimary {
 public:
  /// `harness` must be durable (the follower replays OUR wal records; a
  /// primary that does not log has nothing to ship) and must outlive the
  /// primary.
  explicit ReplPrimary(ServeHarness& harness, ReplPrimaryOptions options = {});
  ReplPrimary(const ReplPrimary&) = delete;
  ReplPrimary& operator=(const ReplPrimary&) = delete;
  ~ReplPrimary();

  /// Binds 127.0.0.1:`port` (0 = free port) and starts accepting follower
  /// subscriptions.
  void Start(std::uint16_t port = 0);
  void Stop();
  [[nodiscard]] std::uint16_t Port() const noexcept { return port_; }

  /// Applies one batch locally (through the harness — logged, applied,
  /// published, checkpointed) and ships the committed record to every
  /// connected follower. Returns true when every currently-connected
  /// follower acked within ack_wait_ms (false = replication lag or
  /// partition; the LOCAL commit succeeded either way). Throws
  /// InvalidArgument on a rejected batch (still logged AND still shipped —
  /// followers must consume the seq) and InternalError once fenced.
  /// Update thread only.
  bool Apply(std::span<const incremental::UpdateEvent> events);

  /// Sends one heartbeat to every connected follower now (the tests drive
  /// heartbeats manually for determinism; a service would call this from a
  /// timer loop, e.g. examples/rpt_serve.cpp's).
  void Heartbeat();

  /// Largest seq every connected follower has acked (0 with no follower
  /// ever connected). Any thread.
  [[nodiscard]] std::uint64_t Watermark() const;

  /// Followers currently subscribed. Any thread.
  [[nodiscard]] int Followers() const;

  /// Blocks until `count` followers are subscribed or `timeout_ms` passes.
  [[nodiscard]] bool WaitForFollowers(int count, int timeout_ms);

  /// True once any follower answered FENCE: a higher epoch exists and this
  /// primary must stop writing. Any thread.
  [[nodiscard]] bool Fenced() const noexcept {
    return fenced_.load(std::memory_order_acquire);
  }
  /// The epoch that fenced us (0 when not fenced).
  [[nodiscard]] std::uint64_t FencedBy() const noexcept {
    return fenced_by_.load(std::memory_order_acquire);
  }

 private:
  struct FollowerConn;
  void AcceptLoop();
  void ServeFollower(std::shared_ptr<FollowerConn> conn);
  void ShipRetainedFrom(FollowerConn& conn, std::uint64_t after_seq);
  void BroadcastRecord(const std::string& frame_payload, std::uint64_t seq);

  ServeHarness& harness_;
  ReplPrimaryOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;

  /// One retained RECORD payload (already repl-frame-encoded). Retention
  /// is append-only and seq-tagged: catch-up scans for seq > HELLO's
  /// last_seq, so a seq the primary consumed but could not ship (a
  /// durability error mid-apply) leaves a hole rather than corrupting the
  /// index.
  struct Retained {
    std::uint64_t seq;
    std::string payload;
  };

  mutable std::mutex mu_;  // guards conns_, retained_, watermark bookkeeping
  mutable std::condition_variable cv_;  // ack + subscription progress
  std::vector<std::shared_ptr<FollowerConn>> conns_;
  std::vector<std::thread> conn_threads_;
  std::vector<Retained> retained_;
  std::uint64_t base_seq_ = 0;
  std::uint64_t watermark_ = 0;

  std::atomic<bool> fenced_{false};
  std::atomic<std::uint64_t> fenced_by_{0};
};

struct ReplFollowerOptions {
  int connect_timeout_ms = 2000;
  /// Read-loop tick: bounds how often the link thread wakes to check the
  /// heartbeat window even when the wire is silent.
  int io_timeout_ms = 100;
  /// Auto-promote after this long without a heartbeat (or a live
  /// connection). 0 = never auto-promote; tests then call Promote().
  int heartbeat_timeout_ms = 0;
  /// Pause between reconnect attempts while the primary is unreachable.
  int reconnect_backoff_ms = 50;
};

/// Follower side: subscribes to a primary, log-then-applies every shipped
/// record through the local durable harness, acks, and watches the
/// heartbeat clock for failover.
class ReplFollower {
 public:
  /// `harness` must be durable and must outlive the follower. Marks it as
  /// a follower (query responses carry the follower bit) until promotion.
  ReplFollower(ServeHarness& harness, std::uint16_t primary_port,
               ReplFollowerOptions options = {});
  ReplFollower(const ReplFollower&) = delete;
  ReplFollower& operator=(const ReplFollower&) = delete;
  ~ReplFollower();

  /// Connects (throws on failure — a follower that never saw its primary
  /// is a config error, not a failover) and starts the link thread.
  void Start();
  void Stop();

  /// Promotes now: durably bumps the epoch, drops the follower bit, keeps
  /// the link thread alive in fence mode (so the deposed primary's next
  /// frame gets FENCEd). Idempotent. Any thread — but the caller must be
  /// (or synchronize with) the one that will drive writes afterwards.
  void Promote();

  [[nodiscard]] bool Promoted() const noexcept {
    return promoted_.load(std::memory_order_acquire);
  }

  /// Blocks until the local harness has durably applied `seq` or
  /// `timeout_ms` passes. Test/driver helper.
  [[nodiscard]] bool WaitForSeq(std::uint64_t seq, int timeout_ms);

  [[nodiscard]] std::uint64_t StaleEpochRejections() const;
  [[nodiscard]] const FollowerCore& Core() const noexcept { return core_; }

 private:
  void LinkLoop();
  bool TryConnect();
  void HandleFrame(const std::string& payload);
  void MaybePromoteOnSilence();

  ServeHarness& harness_;
  FollowerCore core_;
  std::uint16_t primary_port_;
  ReplFollowerOptions options_;
  std::atomic<int> fd_{-1};  // link-thread-owned; Stop() reads it to shutdown
  std::unique_ptr<FaultySender> sender_;
  std::atomic<bool> running_{false};
  std::atomic<bool> promoted_{false};
  std::thread link_thread_;
  std::mutex promote_mu_;  // serializes Promote() against the link thread
  std::chrono::steady_clock::time_point last_heartbeat_;

  // WaitForSeq mirror: the link thread publishes the harness's durable seq
  // here after every apply (LastDurableSeq itself is update-thread-only;
  // the mutex also orders the harness state for whoever WaitForSeq wakes).
  mutable std::mutex seq_mu_;
  mutable std::condition_variable seq_cv_;
  std::uint64_t applied_seq_ = 0;
};

}  // namespace rpt::serve
