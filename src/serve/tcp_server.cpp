#include "serve/tcp_server.hpp"

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "serve/net_util.hpp"
#include "support/common.hpp"
#include "support/failpoint.hpp"

namespace rpt::serve {

using net::CloseQuiet;
using net::DecodePrefix;
using net::IoStatus;
using net::ReadFull;
using net::SetIoTimeouts;
using net::WriteFull;

std::uint64_t BackoffDelayMs(int attempt, int base_ms, int cap_ms,
                             std::uint64_t seed) noexcept {
  if (base_ms <= 0) return 0;
  // Clamp the shift itself: `base << attempt` at attempt >= 32 is UB long
  // before any cap could save it.
  const int shift = attempt < 30 ? attempt : 30;
  std::uint64_t delay = static_cast<std::uint64_t>(base_ms) << shift;
  if (cap_ms > 0 && delay > static_cast<std::uint64_t>(cap_ms)) {
    delay = static_cast<std::uint64_t>(cap_ms);
  }
  if (delay <= 1) return delay;
  // splitmix64 over (seed, attempt): stateless, clock-free, identical
  // across runs — jitter without sacrificing reproducibility.
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull +
                    static_cast<std::uint64_t>(attempt) + 0x9E3779B97F4A7C15ull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  const std::uint64_t half = delay / 2;
  return half + x % (delay - half + 1);  // [delay/2, delay]
}

TcpServer::TcpServer(const ServeHarness& harness, TcpServerOptions options)
    : harness_(harness), options_(options) {}

TcpServer::~TcpServer() { Stop(); }

void TcpServer::Start(std::uint16_t port) {
  RPT_REQUIRE(!running_.load(std::memory_order_acquire), "TcpServer: already started");

  net::ListenSocket listener;
  try {
    listener = net::ListenLoopback(port);
  } catch (const InternalError& error) {
    throw InternalError(std::string("TcpServer: ") + error.what());
  }
  listen_fd_ = listener.fd;
  port_ = listener.port;

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&TcpServer::AcceptLoop, this);
}

void TcpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Unblock accept(), then every blocked per-connection read.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  CloseQuiet(listen_fd_);
  listen_fd_ = -1;
}

void TcpServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (Stop) or fatal — either way, done
    }
    net::SetNoDelay(fd);  // responses must not queue behind delayed ACKs
    SetIoTimeouts(fd, options_.io_timeout_ms);
    connections_.fetch_add(1, std::memory_order_relaxed);
    // Overload guard: at capacity, answer the busy byte and close instead
    // of spawning a thread the box has no headroom for. The client sees a
    // well-formed one-byte frame (ServerBusy) and can rotate endpoints.
    if (options_.max_connections > 0 &&
        active_.load(std::memory_order_acquire) >= options_.max_connections) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      const std::string busy(1, static_cast<char>(kBusyStatusByte));
      net::SendFrame(fd, busy);  // best effort — the peer may already be gone
      CloseQuiet(fd);
      continue;
    }
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    if (!running_.load(std::memory_order_acquire)) {
      CloseQuiet(fd);
      break;
    }
    conn_fds_.push_back(fd);
    active_.fetch_add(1, std::memory_order_acq_rel);
    conn_threads_.emplace_back(&TcpServer::ServeConnection, this, fd);
  }
}

void TcpServer::ServeConnection(int fd) {
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> out;
  std::uint8_t prefix[4];
  while (running_.load(std::memory_order_acquire)) {
    fail::Hit("tcp.serve.stall");  // kDelay here = a slow server, per request
    const IoStatus ps = ReadFull(fd, prefix, 4);
    if (ps != IoStatus::kOk) {
      // A timeout with zero bytes read is just an idle keep-alive gap to a
      // well-behaved peer — but distinguishing "idle before a frame" from
      // "dead mid-prefix" needs byte accounting inside ReadFull for little
      // gain; the contract is simply that a connection must speak within
      // every io_timeout_ms window or re-connect. Cheap for our clients,
      // and it guarantees a wedged peer frees its handler thread.
      if (ps == IoStatus::kTimeout) timeouts_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    const std::uint32_t len = DecodePrefix(prefix);
    if (len > kMaxFrameBytes) break;  // desync — nothing sane to answer
    payload.resize(len);
    if (len > 0) {
      const IoStatus bs = ReadFull(fd, payload.data(), len);
      if (bs != IoStatus::kOk) {
        // Half-written frame: the peer died or hung mid-request. Close —
        // resynchronizing on a torn stream is guesswork.
        if (bs == IoStatus::kTimeout) timeouts_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }

    QueryResponse response;  // defaults: version 0, ok false
    try {
      const QueryRequest request = DecodeRequest(payload);
      response = harness_.Query(request);
    } catch (const InvalidArgument&) {
      // Malformed payload or out-of-range node: answer a failure frame and
      // keep serving — a bad client must not cost anyone else the service.
    }
    out.clear();
    EncodeResponse(response, out);
    requests_.fetch_add(1, std::memory_order_relaxed);
    const IoStatus ws = WriteFull(fd, out.data(), out.size());
    if (ws != IoStatus::kOk) {
      if (ws == IoStatus::kTimeout) timeouts_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  CloseQuiet(fd);
  active_.fetch_sub(1, std::memory_order_acq_rel);
}

TcpClient::TcpClient(std::uint16_t port, TcpClientOptions options)
    : TcpClient(std::vector<std::uint16_t>{port}, options) {}

TcpClient::TcpClient(std::vector<std::uint16_t> endpoints, TcpClientOptions options)
    : endpoints_(std::move(endpoints)), options_(options) {
  RPT_REQUIRE(!endpoints_.empty(), "TcpClient: endpoint list must be non-empty");
  for (std::size_t tried = 0;; ++tried) {
    try {
      Connect();
      return;
    } catch (const InternalError&) {
      // First reachable endpoint wins; all dead propagates the last error.
      if (tried + 1 >= endpoints_.size()) throw;
      endpoint_index_ = (endpoint_index_ + 1) % endpoints_.size();
    }
  }
}

void TcpClient::Connect() {
  fd_ = net::ConnectLoopback(
      endpoints_[endpoint_index_], options_.connect_timeout_ms,
      options_.io_timeout_ms, [](const std::string& what, bool timeout) {
        if (timeout) throw TimeoutError("TcpClient: " + what);
        throw InternalError("TcpClient: " + what);
      });
}

TcpClient::~TcpClient() { CloseQuiet(fd_); }

QueryResponse TcpClient::Query(const QueryRequest& request) {
  for (int attempt = 0;; ++attempt) {
    try {
      if (fd_ < 0) Connect();  // a prior attempt tore the connection down
      return QueryOnce(request);
    } catch (const InternalError&) {
      // TimeoutError, ServerBusy or a torn connection. The request never
      // mutates state, so resending on a fresh connection is always safe.
      CloseQuiet(fd_);
      fd_ = -1;
      if (attempt >= options_.max_retries) throw;
      ++retries_;
      // Rotate endpoints: the dead-primary case wants the NEXT endpoint
      // tried, not the same one hammered max_retries times.
      endpoint_index_ = (endpoint_index_ + 1) % endpoints_.size();
      const std::uint64_t delay =
          BackoffDelayMs(attempt, options_.backoff_base_ms,
                         options_.backoff_cap_ms, options_.backoff_seed);
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
    }
  }
}

QueryResponse TcpClient::QueryOnce(const QueryRequest& request) {
  std::vector<std::uint8_t> out;
  EncodeRequest(request, out);
  RPT_CHECK(fd_ >= 0);
  const IoStatus ws = WriteFull(fd_, out.data(), out.size());
  if (ws == IoStatus::kTimeout) throw TimeoutError("TcpClient: send timed out");
  if (ws != IoStatus::kOk) throw InternalError("TcpClient: short write");
  return ReadResponse();
}

QueryResponse TcpClient::RawFrame(std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  out.insert(out.end(), payload.begin(), payload.end());
  RPT_CHECK(fd_ >= 0);
  const IoStatus ws = WriteFull(fd_, out.data(), out.size());
  if (ws == IoStatus::kTimeout) throw TimeoutError("TcpClient: send timed out");
  if (ws != IoStatus::kOk) throw InternalError("TcpClient: short write");
  return ReadResponse();
}

void TcpClient::SendBytes(std::span<const std::uint8_t> bytes) {
  RPT_CHECK(fd_ >= 0);
  const IoStatus ws = WriteFull(fd_, bytes.data(), bytes.size());
  if (ws == IoStatus::kTimeout) throw TimeoutError("TcpClient: send timed out");
  if (ws != IoStatus::kOk) throw InternalError("TcpClient: short write");
}

QueryResponse TcpClient::ReadResponse() {
  std::uint8_t prefix[4];
  const IoStatus ps = ReadFull(fd_, prefix, 4);
  if (ps == IoStatus::kTimeout) throw TimeoutError("TcpClient: response timed out");
  if (ps != IoStatus::kOk) throw InternalError("TcpClient: connection closed");
  const std::uint32_t len = DecodePrefix(prefix);
  if (len == 1) {
    std::uint8_t status = 0;
    const IoStatus bs = ReadFull(fd_, &status, 1);
    if (bs == IoStatus::kOk && status == kBusyStatusByte) {
      throw ServerBusy("TcpClient: server at max_connections");
    }
    throw InternalError("TcpClient: unexpected one-byte response frame");
  }
  RPT_REQUIRE(len == kResponseWireSize, "TcpClient: unexpected response frame size");
  std::vector<std::uint8_t> payload(len);
  const IoStatus bs = ReadFull(fd_, payload.data(), len);
  if (bs == IoStatus::kTimeout) throw TimeoutError("TcpClient: response timed out");
  if (bs != IoStatus::kOk) throw InternalError("TcpClient: short read");
  return DecodeResponse(payload);
}

}  // namespace rpt::serve
