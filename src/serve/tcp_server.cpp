#include "serve/tcp_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "support/common.hpp"

namespace rpt::serve {

namespace {

// Full-buffer read/write with EINTR retry; false on EOF/error (the caller
// treats either as "connection over").
bool ReadFull(int fd, std::uint8_t* buf, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, buf + done, len - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
    } else if (n == 0 || errno != EINTR) {
      return false;
    }
  }
  return true;
}

bool WriteFull(int fd, const std::uint8_t* buf, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, buf + done, len - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
    } else if (errno != EINTR) {
      return false;
    }
  }
  return true;
}

std::uint32_t DecodePrefix(const std::uint8_t prefix[4]) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  return v;
}

void CloseQuiet(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

TcpServer::TcpServer(const ServeHarness& harness) : harness_(harness) {}

TcpServer::~TcpServer() { Stop(); }

void TcpServer::Start(std::uint16_t port) {
  RPT_REQUIRE(!running_.load(std::memory_order_acquire), "TcpServer: already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  RPT_CHECK(listen_fd_ >= 0);
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    CloseQuiet(listen_fd_);
    listen_fd_ = -1;
    throw InternalError(std::string("TcpServer: bind/listen failed: ") + std::strerror(err));
  }

  socklen_t addr_len = sizeof(addr);
  RPT_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len) == 0);
  port_ = ntohs(addr.sin_port);

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&TcpServer::AcceptLoop, this);
}

void TcpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Unblock accept(), then every blocked per-connection read.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  CloseQuiet(listen_fd_);
  listen_fd_ = -1;
}

void TcpServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (Stop) or fatal — either way, done
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    if (!running_.load(std::memory_order_acquire)) {
      CloseQuiet(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back(&TcpServer::ServeConnection, this, fd);
  }
}

void TcpServer::ServeConnection(int fd) {
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> out;
  std::uint8_t prefix[4];
  while (running_.load(std::memory_order_acquire)) {
    if (!ReadFull(fd, prefix, 4)) break;
    const std::uint32_t len = DecodePrefix(prefix);
    if (len > kMaxFrameBytes) break;  // desync — nothing sane to answer
    payload.resize(len);
    if (len > 0 && !ReadFull(fd, payload.data(), len)) break;

    QueryResponse response;  // defaults: version 0, ok false
    try {
      const QueryRequest request = DecodeRequest(payload);
      response = harness_.Query(request);
    } catch (const InvalidArgument&) {
      // Malformed payload or out-of-range node: answer a failure frame and
      // keep serving — a bad client must not cost anyone else the service.
    }
    out.clear();
    EncodeResponse(response, out);
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (!WriteFull(fd, out.data(), out.size())) break;
  }
  CloseQuiet(fd);
}

TcpClient::TcpClient(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  RPT_CHECK(fd_ >= 0);
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    CloseQuiet(fd_);
    fd_ = -1;
    throw InternalError(std::string("TcpClient: connect failed: ") + std::strerror(err));
  }
}

TcpClient::~TcpClient() { CloseQuiet(fd_); }

QueryResponse TcpClient::Query(const QueryRequest& request) {
  std::vector<std::uint8_t> out;
  EncodeRequest(request, out);
  RPT_CHECK(fd_ >= 0);
  if (!WriteFull(fd_, out.data(), out.size())) {
    throw InternalError("TcpClient: short write");
  }
  return ReadResponse();
}

QueryResponse TcpClient::RawFrame(std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  out.insert(out.end(), payload.begin(), payload.end());
  RPT_CHECK(fd_ >= 0);
  if (!WriteFull(fd_, out.data(), out.size())) {
    throw InternalError("TcpClient: short write");
  }
  return ReadResponse();
}

QueryResponse TcpClient::ReadResponse() {
  std::uint8_t prefix[4];
  if (!ReadFull(fd_, prefix, 4)) throw InternalError("TcpClient: connection closed");
  const std::uint32_t len = DecodePrefix(prefix);
  RPT_REQUIRE(len == kResponseWireSize, "TcpClient: unexpected response frame size");
  std::vector<std::uint8_t> payload(len);
  if (!ReadFull(fd_, payload.data(), len)) throw InternalError("TcpClient: short read");
  return DecodeResponse(payload);
}

}  // namespace rpt::serve
