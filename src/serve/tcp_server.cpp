#include "serve/tcp_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "support/common.hpp"
#include "support/failpoint.hpp"

namespace rpt::serve {

namespace {

enum class IoStatus { kOk, kClosed, kTimeout };

// Full-buffer read/write with EINTR retry. With SO_RCVTIMEO/SO_SNDTIMEO set,
// an expired wait surfaces as EAGAIN/EWOULDBLOCK — reported as kTimeout so
// the server can count it and the client can throw TimeoutError; EOF and
// hard errors are kClosed ("connection over" either way).
IoStatus ReadFull(int fd, std::uint8_t* buf, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, buf + done, len - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return IoStatus::kTimeout;
    } else {
      return IoStatus::kClosed;
    }
  }
  return IoStatus::kOk;
}

IoStatus WriteFull(int fd, const std::uint8_t* buf, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    // MSG_NOSIGNAL: a peer that disconnected mid-exchange must surface as
    // EPIPE (-> kClosed), not deliver a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, buf + done, len - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
    } else if (n == 0) {
      // send() made no progress and set no errno; classifying by leftover
      // errno could spin forever (stale EINTR) or misreport a timeout.
      return IoStatus::kClosed;
    } else if (errno == EINTR) {
      continue;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoStatus::kTimeout;
    } else {
      return IoStatus::kClosed;
    }
  }
  return IoStatus::kOk;
}

std::uint32_t DecodePrefix(const std::uint8_t prefix[4]) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  return v;
}

void CloseQuiet(int fd) {
  if (fd >= 0) ::close(fd);
}

void SetIoTimeouts(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

TcpServer::TcpServer(const ServeHarness& harness, TcpServerOptions options)
    : harness_(harness), options_(options) {}

TcpServer::~TcpServer() { Stop(); }

void TcpServer::Start(std::uint16_t port) {
  RPT_REQUIRE(!running_.load(std::memory_order_acquire), "TcpServer: already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  RPT_CHECK(listen_fd_ >= 0);
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    CloseQuiet(listen_fd_);
    listen_fd_ = -1;
    throw InternalError(std::string("TcpServer: bind/listen failed: ") + std::strerror(err));
  }

  socklen_t addr_len = sizeof(addr);
  RPT_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len) == 0);
  port_ = ntohs(addr.sin_port);

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&TcpServer::AcceptLoop, this);
}

void TcpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Unblock accept(), then every blocked per-connection read.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  CloseQuiet(listen_fd_);
  listen_fd_ = -1;
}

void TcpServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (Stop) or fatal — either way, done
    }
    SetIoTimeouts(fd, options_.io_timeout_ms);
    connections_.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    if (!running_.load(std::memory_order_acquire)) {
      CloseQuiet(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back(&TcpServer::ServeConnection, this, fd);
  }
}

void TcpServer::ServeConnection(int fd) {
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> out;
  std::uint8_t prefix[4];
  while (running_.load(std::memory_order_acquire)) {
    fail::Hit("tcp.serve.stall");  // kDelay here = a slow server, per request
    const IoStatus ps = ReadFull(fd, prefix, 4);
    if (ps != IoStatus::kOk) {
      // A timeout with zero bytes read is just an idle keep-alive gap to a
      // well-behaved peer — but distinguishing "idle before a frame" from
      // "dead mid-prefix" needs byte accounting inside ReadFull for little
      // gain; the contract is simply that a connection must speak within
      // every io_timeout_ms window or re-connect. Cheap for our clients,
      // and it guarantees a wedged peer frees its handler thread.
      if (ps == IoStatus::kTimeout) timeouts_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    const std::uint32_t len = DecodePrefix(prefix);
    if (len > kMaxFrameBytes) break;  // desync — nothing sane to answer
    payload.resize(len);
    if (len > 0) {
      const IoStatus bs = ReadFull(fd, payload.data(), len);
      if (bs != IoStatus::kOk) {
        // Half-written frame: the peer died or hung mid-request. Close —
        // resynchronizing on a torn stream is guesswork.
        if (bs == IoStatus::kTimeout) timeouts_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }

    QueryResponse response;  // defaults: version 0, ok false
    try {
      const QueryRequest request = DecodeRequest(payload);
      response = harness_.Query(request);
    } catch (const InvalidArgument&) {
      // Malformed payload or out-of-range node: answer a failure frame and
      // keep serving — a bad client must not cost anyone else the service.
    }
    out.clear();
    EncodeResponse(response, out);
    requests_.fetch_add(1, std::memory_order_relaxed);
    const IoStatus ws = WriteFull(fd, out.data(), out.size());
    if (ws != IoStatus::kOk) {
      if (ws == IoStatus::kTimeout) timeouts_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  CloseQuiet(fd);
}

TcpClient::TcpClient(std::uint16_t port, TcpClientOptions options)
    : port_(port), options_(options) {
  Connect();
}

void TcpClient::Connect() {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  RPT_CHECK(fd_ >= 0);
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);

  // Bounded handshake: non-blocking connect, poll for writability, then
  // back to blocking with per-op timeouts.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  const auto fail = [&](const std::string& what, bool timeout) -> void {
    CloseQuiet(fd_);
    fd_ = -1;
    if (timeout) throw TimeoutError("TcpClient: " + what);
    throw InternalError("TcpClient: " + what);
  };
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      fail(std::string("connect failed: ") + std::strerror(errno), false);
    }
    pollfd pfd{fd_, POLLOUT, 0};
    const int timeout = options_.connect_timeout_ms > 0 ? options_.connect_timeout_ms : -1;
    const int ready = ::poll(&pfd, 1, timeout);
    if (ready == 0) fail("connect timed out", true);
    if (ready < 0) fail(std::string("connect poll failed: ") + std::strerror(errno), false);
    int err = 0;
    socklen_t err_len = sizeof(err);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &err_len);
    if (err != 0) fail(std::string("connect failed: ") + std::strerror(err), false);
  }
  ::fcntl(fd_, F_SETFL, flags);
  SetIoTimeouts(fd_, options_.io_timeout_ms);
}

TcpClient::~TcpClient() { CloseQuiet(fd_); }

QueryResponse TcpClient::Query(const QueryRequest& request) {
  for (int attempt = 0;; ++attempt) {
    try {
      if (fd_ < 0) Connect();  // a prior attempt tore the connection down
      return QueryOnce(request);
    } catch (const InternalError&) {
      // TimeoutError or a torn connection. The request never mutates
      // state, so resending on a fresh connection is always safe.
      CloseQuiet(fd_);
      fd_ = -1;
      if (attempt >= options_.max_retries) throw;
      ++retries_;
      const auto backoff =
          std::chrono::milliseconds(static_cast<long long>(options_.backoff_base_ms) << attempt);
      std::this_thread::sleep_for(backoff);
    }
  }
}

QueryResponse TcpClient::QueryOnce(const QueryRequest& request) {
  std::vector<std::uint8_t> out;
  EncodeRequest(request, out);
  RPT_CHECK(fd_ >= 0);
  const IoStatus ws = WriteFull(fd_, out.data(), out.size());
  if (ws == IoStatus::kTimeout) throw TimeoutError("TcpClient: send timed out");
  if (ws != IoStatus::kOk) throw InternalError("TcpClient: short write");
  return ReadResponse();
}

QueryResponse TcpClient::RawFrame(std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  out.insert(out.end(), payload.begin(), payload.end());
  RPT_CHECK(fd_ >= 0);
  const IoStatus ws = WriteFull(fd_, out.data(), out.size());
  if (ws == IoStatus::kTimeout) throw TimeoutError("TcpClient: send timed out");
  if (ws != IoStatus::kOk) throw InternalError("TcpClient: short write");
  return ReadResponse();
}

void TcpClient::SendBytes(std::span<const std::uint8_t> bytes) {
  RPT_CHECK(fd_ >= 0);
  const IoStatus ws = WriteFull(fd_, bytes.data(), bytes.size());
  if (ws == IoStatus::kTimeout) throw TimeoutError("TcpClient: send timed out");
  if (ws != IoStatus::kOk) throw InternalError("TcpClient: short write");
}

QueryResponse TcpClient::ReadResponse() {
  std::uint8_t prefix[4];
  const IoStatus ps = ReadFull(fd_, prefix, 4);
  if (ps == IoStatus::kTimeout) throw TimeoutError("TcpClient: response timed out");
  if (ps != IoStatus::kOk) throw InternalError("TcpClient: connection closed");
  const std::uint32_t len = DecodePrefix(prefix);
  RPT_REQUIRE(len == kResponseWireSize, "TcpClient: unexpected response frame size");
  std::vector<std::uint8_t> payload(len);
  const IoStatus bs = ReadFull(fd_, payload.data(), len);
  if (bs == IoStatus::kTimeout) throw TimeoutError("TcpClient: response timed out");
  if (bs != IoStatus::kOk) throw InternalError("TcpClient: short read");
  return DecodeResponse(payload);
}

}  // namespace rpt::serve
