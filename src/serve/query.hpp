// The rpt-serve query surface: typed requests/responses answered against a
// pinned PlacementSnapshot, plus the length-prefixed wire codec the TCP
// front-end speaks.
//
// Three query kinds, each O(depth) or better against the snapshot's flat
// buffers (placement_snapshot.hpp):
//  * kWhichReplica  — which replica serves client c? (primary server + the
//                     client's current demand)
//  * kResidual      — residual capacity and replica count under node s
//  * kAttachCost    — cost (path distance) of attaching `demand` new
//                     requests at node v without moving any replica
//
// Every response carries the snapshot version it was answered against, so
// callers can correlate answers with publishes (and the swap-torture test
// can verify answers byte-identically against the exact snapshot pinned).
//
// Wire format (little-endian, fixed width — no varints, no padding bytes on
// the wire): each message is a 4-byte length prefix followed by that many
// payload bytes. Request payload: kind u8, node u32, demand u64 (13 bytes).
// Response payload: version u64, status u8, server u32, value u64,
// distance u64 (29 bytes). Decode rejects short/overlong payloads; the
// codec round-trips bit-exactly (tests/test_serve.cpp).
//
// Thread-safety: Answer() is a pure function of (snapshot, request) — safe
// from any number of threads; the codec functions are stateless.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "serve/placement_snapshot.hpp"

namespace rpt::serve {

enum class QueryKind : std::uint8_t {
  kWhichReplica = 0,  ///< node = client id
  kResidual = 1,      ///< node = subtree root
  kAttachCost = 2,    ///< node = attach point, demand = new requests
};

/// Human-readable kind name ("which-replica" / "residual" / "attach-cost").
[[nodiscard]] const char* QueryKindName(QueryKind kind) noexcept;

struct QueryRequest {
  QueryKind kind = QueryKind::kWhichReplica;
  NodeId node = kInvalidNode;
  Requests demand = 0;  ///< kAttachCost only

  friend bool operator==(const QueryRequest&, const QueryRequest&) = default;
};

/// Outcome of one query. Field meaning per kind:
///  * kWhichReplica — ok iff the client is served; server = primary replica,
///    value = the client's demand, distance = client->server path distance.
///  * kResidual — always ok; value = summed residual under the node,
///    server = the node itself, distance = replica count under the node.
///  * kAttachCost — ok iff some ancestor replica fits the demand; server =
///    that replica, distance = attach cost, value = its residual capacity.
struct QueryResponse {
  std::uint64_t version = 0;  ///< snapshot the answer was computed against
  bool ok = false;
  /// Degraded-mode marker: the harness failed to apply-and-publish after
  /// this snapshot went out (WAL append error, solve failure mid-batch), so
  /// the answer is correct against the LAST GOOD state but known to lag the
  /// event stream. Clears on the next successful publish. Wire: bit 1 of
  /// the status byte (bit 0 is `ok`), so the frame size is unchanged.
  bool stale = false;
  /// Replica marker: a follower harness (replicating a primary's WAL —
  /// serve/repl_link.hpp) answered. The answer is correct against the last
  /// shipped-and-applied state but may lag the primary by in-flight
  /// records. Wire: bit 2 of the status byte.
  bool follower = false;
  NodeId server = kInvalidNode;
  std::uint64_t value = 0;
  Distance distance = 0;

  friend bool operator==(const QueryResponse&, const QueryResponse&) = default;
};

/// Answers `request` against `snapshot`. Throws InvalidArgument on an
/// out-of-range node id or unknown kind (the TCP loop maps that to a
/// failed response rather than tearing down the connection).
[[nodiscard]] QueryResponse Answer(const PlacementSnapshot& snapshot,
                                   const QueryRequest& request);

/// Fixed payload sizes of the wire format (excluding the length prefix).
inline constexpr std::size_t kRequestWireSize = 13;
inline constexpr std::size_t kResponseWireSize = 29;

/// Appends the length-prefixed encoding of a message to `out`.
void EncodeRequest(const QueryRequest& request, std::vector<std::uint8_t>& out);
void EncodeResponse(const QueryResponse& response, std::vector<std::uint8_t>& out);

/// Decodes one payload (WITHOUT the length prefix; the framing layer strips
/// it). Throws InvalidArgument on a size mismatch or an unknown kind byte.
[[nodiscard]] QueryRequest DecodeRequest(std::span<const std::uint8_t> payload);
[[nodiscard]] QueryResponse DecodeResponse(std::span<const std::uint8_t> payload);

}  // namespace rpt::serve
