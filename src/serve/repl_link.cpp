#include "serve/repl_link.hpp"

#include <algorithm>
#include <utility>

#include "serve/net_util.hpp"
#include "support/failpoint.hpp"

namespace rpt::serve {

namespace {

void PutU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint64_t GetU64(const std::string& in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(in[at + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::string EncodeReplFrame(const ReplFrame& frame) {
  std::string out;
  out.push_back(static_cast<char>(frame.kind));
  switch (frame.kind) {
    case ReplFrameKind::kHello:
    case ReplFrameKind::kAck:
    case ReplFrameKind::kHeartbeat:
      PutU64(out, frame.epoch);
      PutU64(out, frame.seq);
      break;
    case ReplFrameKind::kRecord:
      PutU64(out, frame.epoch);
      PutU64(out, frame.hash);
      out += frame.record;
      break;
    case ReplFrameKind::kFence:
      PutU64(out, frame.epoch);
      break;
  }
  return out;
}

std::optional<ReplFrame> DecodeReplFrame(const std::string& payload) {
  if (payload.empty()) return std::nullopt;
  ReplFrame frame;
  const auto kind = static_cast<std::uint8_t>(payload[0]);
  switch (kind) {
    case static_cast<std::uint8_t>(ReplFrameKind::kHello):
    case static_cast<std::uint8_t>(ReplFrameKind::kAck):
    case static_cast<std::uint8_t>(ReplFrameKind::kHeartbeat):
      if (payload.size() != 17) return std::nullopt;
      frame.kind = static_cast<ReplFrameKind>(kind);
      frame.epoch = GetU64(payload, 1);
      frame.seq = GetU64(payload, 9);
      return frame;
    case static_cast<std::uint8_t>(ReplFrameKind::kRecord):
      if (payload.size() < 17) return std::nullopt;
      frame.kind = ReplFrameKind::kRecord;
      frame.epoch = GetU64(payload, 1);
      frame.hash = GetU64(payload, 9);
      frame.record = payload.substr(17);
      return frame;
    case static_cast<std::uint8_t>(ReplFrameKind::kFence):
      if (payload.size() != 9) return std::nullopt;
      frame.kind = ReplFrameKind::kFence;
      frame.epoch = GetU64(payload, 1);
      return frame;
    default:
      return std::nullopt;
  }
}

bool FaultySender::Send(const std::string& payload) {
  const std::lock_guard<std::mutex> lock(mu_);
  // Ordering of the fault sites: a hard partition swallows everything
  // first; the one-shot link faults shape individual frames.
  if (fail::Hit("repl.partition") == fail::Action::kError) return true;
  if (fail::Hit("repl.link.drop") == fail::Action::kError) return true;
  fail::Hit("repl.link.delay");  // kDelay sleeps inside Hit
  const bool dup = fail::Hit("repl.link.dup") == fail::Action::kError;
  if (fail::Hit("repl.link.reorder") == fail::Action::kError && !has_held_) {
    // Park this frame; it goes out AFTER the next one (a two-frame swap —
    // the minimal reorder the seq check must absorb).
    held_ = payload;
    has_held_ = true;
    return true;
  }
  net::IoStatus st = net::SendFrame(fd_, payload);
  if (dup && st == net::IoStatus::kOk) st = net::SendFrame(fd_, payload);
  if (has_held_ && st == net::IoStatus::kOk) {
    st = net::SendFrame(fd_, held_);
    has_held_ = false;
  }
  return st == net::IoStatus::kOk;
}

FollowerCore::Outcome FollowerCore::OnRecord(std::uint64_t sender_epoch,
                                             std::uint64_t expected_hash,
                                             const std::string& record_bytes) {
  // Fencing first: a deposed primary's records must not even be decoded
  // into applies. HIGHER sender epochs pass — the sender is the newer
  // primary and our epoch catches up when its epoch record applies.
  if (sender_epoch < harness_.Epoch()) {
    fenced_.fetch_add(1, std::memory_order_relaxed);
    return Outcome::kFenced;
  }
  // TryDecodeFramedRecord: nullopt = transport damage (resync — the retry
  // path); InternalError = valid CRC but unparseable payload (writer bug
  // or version skew — loud, propagates).
  const std::optional<WalBatch> batch =
      EventWal::TryDecodeFramedRecord(record_bytes);
  if (!batch) {
    resyncs_.fetch_add(1, std::memory_order_relaxed);
    return Outcome::kResync;
  }
  const std::uint64_t last = harness_.LastDurableSeq();
  if (batch->seq <= last) {
    // Duplicated or re-shipped record: already durable here, re-ack so the
    // primary's watermark can advance even when the original ack was lost.
    duplicates_.fetch_add(1, std::memory_order_relaxed);
    return Outcome::kDuplicate;
  }
  if (batch->seq != last + 1) {
    // Gap — a dropped or reordered frame. Applying out of order would
    // fabricate a state the primary never had; ask for a re-ship instead.
    resyncs_.fetch_add(1, std::memory_order_relaxed);
    return Outcome::kResync;
  }

  if (batch->epoch_bump) {
    // The primary's durable fencing token: adopt it through OUR wal (same
    // seq slot — AdoptEpoch appends at last+1).
    harness_.AdoptEpoch(batch->epoch);
  } else {
    try {
      harness_.ApplyAndPublish(batch->events);
    } catch (const InvalidArgument&) {
      // The primary logged-then-rejected this batch; Apply is
      // deterministic in (state, events), so we re-reject identically.
      // The seq is consumed either way.
    }
  }
  // Divergence check: after applying the same record the follower must be
  // byte-identical to what the primary published (CanonicalHash covers the
  // full placement table + version). A mismatch means replicas forked —
  // the one failure replication exists to rule out, so it is loud.
  const std::uint64_t got = harness_.Pin()->CanonicalHash();
  if (got != expected_hash) {
    throw InternalError(
        "repl: divergence at seq " + std::to_string(batch->seq) +
        ": follower hash " + std::to_string(got) + " != primary hash " +
        std::to_string(expected_hash));
  }
  applied_.fetch_add(1, std::memory_order_relaxed);
  return Outcome::kApplied;
}

// ---------------------------------------------------------------------------
// ReplPrimary

struct ReplPrimary::FollowerConn {
  explicit FollowerConn(int fd_in) : fd(fd_in), sender(fd_in) {}
  int fd;
  FaultySender sender;
  std::uint64_t acked = 0;   // guarded by ReplPrimary::mu_
  bool subscribed = false;   // HELLO seen — guarded by mu_
  bool gone = false;         // handler exited — guarded by mu_
};

ReplPrimary::ReplPrimary(ServeHarness& harness, ReplPrimaryOptions options)
    : harness_(harness), options_(options) {}

ReplPrimary::~ReplPrimary() { Stop(); }

void ReplPrimary::Start(std::uint16_t port) {
  RPT_REQUIRE(!running_.load(std::memory_order_acquire),
              "ReplPrimary: already started");
  const net::ListenSocket listener = net::ListenLoopback(port);
  listen_fd_ = listener.fd;
  port_ = listener.port;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    base_seq_ = harness_.LastDurableSeq();
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&ReplPrimary::AcceptLoop, this);
}

void ReplPrimary::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& conn : conns_) {
      if (!conn->gone) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  net::CloseQuiet(listen_fd_);
  listen_fd_ = -1;
}

void ReplPrimary::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    net::SetNoDelay(fd);  // RECORDs must not wait out Nagle behind an ack
    net::SetIoTimeouts(fd, options_.io_timeout_ms);
    auto conn = std::make_shared<FollowerConn>(fd);
    const std::lock_guard<std::mutex> lock(mu_);
    if (!running_.load(std::memory_order_acquire)) {
      net::CloseQuiet(fd);
      break;
    }
    conns_.push_back(conn);
    conn_threads_.emplace_back(&ReplPrimary::ServeFollower, this, conn);
  }
}

void ReplPrimary::ShipRetainedFrom(FollowerConn& conn, std::uint64_t after_seq) {
  // Caller holds mu_. Seq-tagged scan (not an index) so a retention hole —
  // a seq consumed during a primary durability error — cannot misalign the
  // stream; the follower's contiguity check turns a hole into a resync
  // loop, which is the documented degraded shape, never a wrong apply.
  for (const Retained& r : retained_) {
    if (r.seq > after_seq) conn.sender.Send(r.payload);
  }
}

void ReplPrimary::ServeFollower(std::shared_ptr<FollowerConn> conn) {
  std::string payload;
  bool refuse = false;
  while (!refuse && running_.load(std::memory_order_acquire)) {
    const net::IoStatus st =
        net::RecvFrame(conn->fd, payload, kMaxReplFrameBytes);
    if (st == net::IoStatus::kTimeout) continue;  // idle follower is fine
    if (st == net::IoStatus::kClosed) break;
    const std::optional<ReplFrame> frame = DecodeReplFrame(payload);
    if (!frame) continue;  // corrupt control frame — the sender will retry
    switch (frame->kind) {
      case ReplFrameKind::kHello: {
        const std::lock_guard<std::mutex> lock(mu_);
        if (frame->seq < base_seq_) {
          // Below the retained range: this primary cannot catch the
          // follower up (bootstrap-from-checkpoint is future work).
          // Closing is the loud answer — the follower sees its HELLOs
          // answered with a hangup, not a silent stall.
          refuse = true;
          break;
        }
        conn->subscribed = true;
        conn->acked = std::max(conn->acked, frame->seq);
        ShipRetainedFrom(*conn, frame->seq);
        cv_.notify_all();
        break;
      }
      case ReplFrameKind::kAck: {
        const std::lock_guard<std::mutex> lock(mu_);
        if (frame->seq > conn->acked) conn->acked = frame->seq;
        // Watermark: the largest seq EVERY live subscribed follower has
        // acked; monotone (a follower that dies does not roll it back —
        // its acked writes are still on its disk).
        std::uint64_t floor = UINT64_MAX;
        bool any = false;
        for (const auto& c : conns_) {
          if (c->gone || !c->subscribed) continue;
          any = true;
          floor = std::min(floor, c->acked);
        }
        if (any && floor > watermark_) watermark_ = floor;
        cv_.notify_all();
        break;
      }
      case ReplFrameKind::kFence:
        // A higher epoch exists: this primary is deposed. Record it and
        // let Apply() throw — the connection stays up (the fencer may keep
        // fencing; that is correct and idempotent).
        fenced_by_.store(frame->epoch, std::memory_order_release);
        fenced_.store(true, std::memory_order_release);
        cv_.notify_all();
        break;
      default:
        break;  // followers do not send RECORD/HEARTBEAT; ignore
    }
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    conn->gone = true;
  }
  net::CloseQuiet(conn->fd);
  cv_.notify_all();
}

void ReplPrimary::BroadcastRecord(const std::string& frame_payload,
                                  std::uint64_t seq) {
  const std::lock_guard<std::mutex> lock(mu_);
  retained_.push_back(Retained{seq, frame_payload});
  for (const auto& conn : conns_) {
    if (conn->gone || !conn->subscribed) continue;
    conn->sender.Send(frame_payload);
  }
}

bool ReplPrimary::Apply(std::span<const incremental::UpdateEvent> events) {
  if (Fenced()) {
    throw InternalError(
        "repl: this primary is fenced by epoch " +
        std::to_string(FencedBy()) +
        " (a follower promoted); refusing to apply — deposed primaries do "
        "not write");
  }
  // Local commit first (log-then-apply inside the harness). A rejected
  // batch still consumed a seq and must still ship — followers re-reject
  // it deterministically; swallowing it here would desync every stream.
  std::exception_ptr rejected;
  bool feasible = false;
  try {
    feasible = harness_.ApplyAndPublish(events);
  } catch (const InvalidArgument&) {
    rejected = std::current_exception();
  }
  // (InternalError/InjectedFault propagate above WITHOUT shipping: a batch
  // the local log never committed must never reach a follower.)

  const std::uint64_t seq = harness_.LastDurableSeq();
  ReplFrame frame;
  frame.kind = ReplFrameKind::kRecord;
  frame.epoch = harness_.Epoch();
  frame.hash = harness_.Pin()->CanonicalHash();
  frame.record = EventWal::FrameRecord(EventWal::EncodeBatchPayload(
      seq, std::vector<incremental::UpdateEvent>(events.begin(), events.end())));
  BroadcastRecord(EncodeReplFrame(frame), seq);

  bool all_acked;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto caught_up = [&] {
      for (const auto& c : conns_) {
        if (c->gone || !c->subscribed) continue;
        if (c->acked < seq) return false;
      }
      return true;
    };
    if (options_.ack_wait_ms > 0) {
      all_acked = cv_.wait_for(
          lock, std::chrono::milliseconds(options_.ack_wait_ms), caught_up);
    } else {
      all_acked = caught_up();
    }
  }
  if (rejected) std::rethrow_exception(rejected);
  return all_acked;
}

void ReplPrimary::Heartbeat() {
  ReplFrame frame;
  frame.kind = ReplFrameKind::kHeartbeat;
  frame.epoch = harness_.Epoch();
  const std::lock_guard<std::mutex> lock(mu_);
  frame.seq = watermark_;
  const std::string payload = EncodeReplFrame(frame);
  for (const auto& conn : conns_) {
    if (conn->gone || !conn->subscribed) continue;
    conn->sender.Send(payload);
  }
}

std::uint64_t ReplPrimary::Watermark() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return watermark_;
}

int ReplPrimary::Followers() const {
  const std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (const auto& conn : conns_) {
    if (!conn->gone && conn->subscribed) ++n;
  }
  return n;
}

bool ReplPrimary::WaitForFollowers(int count, int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    int n = 0;
    for (const auto& conn : conns_) {
      if (!conn->gone && conn->subscribed) ++n;
    }
    return n >= count;
  });
}

// ---------------------------------------------------------------------------
// ReplFollower

ReplFollower::ReplFollower(ServeHarness& harness, std::uint16_t primary_port,
                           ReplFollowerOptions options)
    : harness_(harness), core_(harness), primary_port_(primary_port),
      options_(options) {}

ReplFollower::~ReplFollower() { Stop(); }

bool ReplFollower::TryConnect() {
  int fd = -1;
  try {
    fd = net::ConnectLoopback(primary_port_, options_.connect_timeout_ms,
                              options_.io_timeout_ms,
                              [](const std::string& what, bool) {
                                throw InternalError("ReplFollower: " + what);
                              });
  } catch (const InternalError&) {
    return false;
  }
  fd_.store(fd, std::memory_order_release);
  sender_ = std::make_unique<FaultySender>(fd);
  ReplFrame hello;
  hello.kind = ReplFrameKind::kHello;
  hello.epoch = harness_.Epoch();
  hello.seq = harness_.LastDurableSeq();
  sender_->Send(EncodeReplFrame(hello));
  return true;
}

void ReplFollower::Start() {
  RPT_REQUIRE(!running_.load(std::memory_order_acquire),
              "ReplFollower: already started");
  RPT_REQUIRE(TryConnect(),
              "ReplFollower: cannot reach primary on port " +
                  std::to_string(primary_port_) +
                  " (a follower that never saw its primary is a config "
                  "error, not a failover)");
  harness_.SetFollower(true);
  last_heartbeat_ = std::chrono::steady_clock::now();
  running_.store(true, std::memory_order_release);
  link_thread_ = std::thread(&ReplFollower::LinkLoop, this);
}

void ReplFollower::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  if (link_thread_.joinable()) link_thread_.join();
  net::CloseQuiet(fd_.load(std::memory_order_acquire));
  fd_.store(-1, std::memory_order_release);
  sender_.reset();
}

void ReplFollower::MaybePromoteOnSilence() {
  if (options_.heartbeat_timeout_ms <= 0) return;
  if (promoted_.load(std::memory_order_acquire)) return;
  const auto elapsed = std::chrono::steady_clock::now() - last_heartbeat_;
  if (elapsed >= std::chrono::milliseconds(options_.heartbeat_timeout_ms)) {
    Promote();
  }
}

void ReplFollower::Promote() {
  const std::lock_guard<std::mutex> lock(promote_mu_);
  if (promoted_.load(std::memory_order_acquire)) return;
  // Durable-before-visible: the epoch record hits OUR wal before the new
  // epoch can fence anyone — a promoted follower that crashes right here
  // recovers still promoted (or never promoted); never half.
  harness_.AdoptEpoch(harness_.Epoch() + 1);
  harness_.SetFollower(false);
  {
    const std::lock_guard<std::mutex> seq_lock(seq_mu_);
    applied_seq_ = harness_.LastDurableSeq();
  }
  promoted_.store(true, std::memory_order_release);
  seq_cv_.notify_all();
}

void ReplFollower::HandleFrame(const std::string& payload) {
  const std::optional<ReplFrame> frame = DecodeReplFrame(payload);
  if (!frame) return;  // corrupt control frame — next heartbeat re-syncs
  switch (frame->kind) {
    case ReplFrameKind::kRecord: {
      FollowerCore::Outcome outcome;
      {
        // Serialize the harness mutation against a concurrent Promote():
        // the harness has a single-update-thread contract and promotion is
        // an update (a durable epoch append).
        const std::lock_guard<std::mutex> lock(promote_mu_);
        outcome = core_.OnRecord(frame->epoch, frame->hash, frame->record);
      }
      switch (outcome) {
        case FollowerCore::Outcome::kApplied:
        case FollowerCore::Outcome::kDuplicate: {
          {
            const std::lock_guard<std::mutex> seq_lock(seq_mu_);
            applied_seq_ = harness_.LastDurableSeq();
          }
          seq_cv_.notify_all();
          ReplFrame ack;
          ack.kind = ReplFrameKind::kAck;
          ack.epoch = harness_.Epoch();
          ack.seq = harness_.LastDurableSeq();
          sender_->Send(EncodeReplFrame(ack));
          // A record from a live primary is proof of life.
          last_heartbeat_ = std::chrono::steady_clock::now();
          break;
        }
        case FollowerCore::Outcome::kResync: {
          ReplFrame hello;
          hello.kind = ReplFrameKind::kHello;
          hello.epoch = harness_.Epoch();
          hello.seq = harness_.LastDurableSeq();
          sender_->Send(EncodeReplFrame(hello));
          last_heartbeat_ = std::chrono::steady_clock::now();
          break;
        }
        case FollowerCore::Outcome::kFenced: {
          // A stale-epoch sender gets told, loudly and repeatedly. NOT
          // proof of life: a deposed primary must not hold off anything.
          ReplFrame fence;
          fence.kind = ReplFrameKind::kFence;
          fence.epoch = harness_.Epoch();
          sender_->Send(EncodeReplFrame(fence));
          break;
        }
      }
      break;
    }
    case ReplFrameKind::kHeartbeat: {
      if (frame->epoch < harness_.Epoch()) {
        ReplFrame fence;
        fence.kind = ReplFrameKind::kFence;
        fence.epoch = harness_.Epoch();
        sender_->Send(EncodeReplFrame(fence));
      } else {
        last_heartbeat_ = std::chrono::steady_clock::now();
      }
      break;
    }
    default:
      break;  // primaries do not send HELLO/ACK/FENCE; ignore
  }
}

void ReplFollower::LinkLoop() {
  std::string payload;
  while (running_.load(std::memory_order_acquire)) {
    if (fd_.load(std::memory_order_relaxed) < 0) {
      if (promoted_.load(std::memory_order_acquire)) {
        // Promoted and disconnected: nothing left to fence over this link.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.reconnect_backoff_ms));
        continue;
      }
      MaybePromoteOnSilence();
      if (!running_.load(std::memory_order_acquire)) break;
      if (!TryConnect()) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.reconnect_backoff_ms));
        continue;
      }
    }
    const net::IoStatus st = net::RecvFrame(fd_.load(std::memory_order_relaxed),
                                            payload, kMaxReplFrameBytes);
    if (st == net::IoStatus::kTimeout) {
      // Silence tick: the wire is up but nothing is flowing — exactly the
      // window a dead-but-connected primary shows.
      MaybePromoteOnSilence();
      continue;
    }
    if (st == net::IoStatus::kClosed) {
      net::CloseQuiet(fd_.load(std::memory_order_relaxed));
      fd_.store(-1, std::memory_order_release);
      sender_.reset();
      continue;
    }
    HandleFrame(payload);
  }
}

bool ReplFollower::WaitForSeq(std::uint64_t seq, int timeout_ms) {
  std::unique_lock<std::mutex> lock(seq_mu_);
  return seq_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                          [&] { return applied_seq_ >= seq; });
}

std::uint64_t ReplFollower::StaleEpochRejections() const {
  return core_.StaleEpochRejections();
}

}  // namespace rpt::serve
