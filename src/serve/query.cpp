#include "serve/query.hpp"

namespace rpt::serve {

namespace {

void PutU8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t GetU32(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[at + i]) << (8 * i);
  return v;
}

std::uint64_t GetU64(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[at + i]) << (8 * i);
  return v;
}

}  // namespace

const char* QueryKindName(QueryKind kind) noexcept {
  switch (kind) {
    case QueryKind::kWhichReplica: return "which-replica";
    case QueryKind::kResidual: return "residual";
    case QueryKind::kAttachCost: return "attach-cost";
  }
  return "unknown";
}

QueryResponse Answer(const PlacementSnapshot& snapshot, const QueryRequest& request) {
  RPT_REQUIRE(request.node < snapshot.Size(), "serve: query node id out of range");
  QueryResponse response;
  response.version = snapshot.Version();
  if (!snapshot.IsLive(request.node)) {
    // The client may race a detach: the id is answerable (it existed when
    // the snapshot was published) but there is nothing behind it.
    response.ok = false;
    return response;
  }
  switch (request.kind) {
    case QueryKind::kWhichReplica: {
      const NodeId server = snapshot.PrimaryServerOf(request.node);
      response.ok = server != kInvalidNode;
      response.server = server;
      response.value = snapshot.DemandOf(request.node);
      response.distance =
          response.ok ? snapshot.DistToAncestor(request.node, server) : 0;
      return response;
    }
    case QueryKind::kResidual:
      response.ok = true;
      response.server = request.node;
      response.value = snapshot.ResidualUnder(request.node);
      response.distance = snapshot.ReplicasUnder(request.node);
      return response;
    case QueryKind::kAttachCost: {
      const AttachResult attach = snapshot.AttachAt(request.node, request.demand);
      response.ok = attach.feasible;
      response.server = attach.server;
      response.distance = attach.feasible ? attach.distance : 0;
      response.value = attach.feasible ? snapshot.ResidualOf(attach.server) : 0;
      return response;
    }
  }
  RPT_REQUIRE(false, "serve: unknown query kind");
  return response;  // unreachable
}

void EncodeRequest(const QueryRequest& request, std::vector<std::uint8_t>& out) {
  PutU32(out, static_cast<std::uint32_t>(kRequestWireSize));
  PutU8(out, static_cast<std::uint8_t>(request.kind));
  PutU32(out, request.node);
  PutU64(out, request.demand);
}

void EncodeResponse(const QueryResponse& response, std::vector<std::uint8_t>& out) {
  PutU32(out, static_cast<std::uint32_t>(kResponseWireSize));
  PutU64(out, response.version);
  PutU8(out, static_cast<std::uint8_t>((response.ok ? 1 : 0) |
                                       (response.stale ? 2 : 0) |
                                       (response.follower ? 4 : 0)));
  PutU32(out, response.server);
  PutU64(out, response.value);
  PutU64(out, response.distance);
}

QueryRequest DecodeRequest(std::span<const std::uint8_t> payload) {
  RPT_REQUIRE(payload.size() == kRequestWireSize,
              "serve: request payload must be exactly " + std::to_string(kRequestWireSize) +
                  " bytes, got " + std::to_string(payload.size()));
  RPT_REQUIRE(payload[0] <= static_cast<std::uint8_t>(QueryKind::kAttachCost),
              "serve: unknown query kind byte");
  QueryRequest request;
  request.kind = static_cast<QueryKind>(payload[0]);
  request.node = GetU32(payload, 1);
  request.demand = GetU64(payload, 5);
  return request;
}

QueryResponse DecodeResponse(std::span<const std::uint8_t> payload) {
  RPT_REQUIRE(payload.size() == kResponseWireSize,
              "serve: response payload must be exactly " + std::to_string(kResponseWireSize) +
                  " bytes, got " + std::to_string(payload.size()));
  RPT_REQUIRE(payload[8] <= 7, "serve: unknown status bits in response");
  QueryResponse response;
  response.version = GetU64(payload, 0);
  response.ok = (payload[8] & 1) != 0;
  response.stale = (payload[8] & 2) != 0;
  response.follower = (payload[8] & 4) != 0;
  response.server = GetU32(payload, 9);
  response.value = GetU64(payload, 13);
  response.distance = GetU64(payload, 21);
  return response;
}

}  // namespace rpt::serve
