// TcpServer — the network boundary of rpt-serve: a length-prefixed TCP loop
// over a ServeHarness, plus the minimal blocking TcpClient the tests and the
// example speak it with.
//
// Protocol (see query.hpp for the codec): every message on the wire is a
// 4-byte little-endian length prefix followed by that many payload bytes.
// A connection is a sequence of request/response pairs — the server answers
// each request against the snapshot current AT THAT INSTANT (queries pin via
// the harness, so an in-flight publish never blocks or tears an answer).
//
// Error handling keeps the service up: a payload that fails to decode (bad
// size, unknown kind) or a query on an out-of-range node gets a well-formed
// failure response (ok = 0, version = 0) instead of tearing down the
// connection; a frame longer than kMaxFrameBytes is a framing attack or a
// desync, and only then is the connection closed. A bad update batch never
// reaches the server at all — updates flow through the harness's single
// update thread, not the wire.
//
// Timeouts (the no-wedge contract): every accepted connection carries
// SO_RCVTIMEO/SO_SNDTIMEO of TcpServerOptions::io_timeout_ms, so a peer
// that sends half a frame and hangs — or stops draining responses — costs
// the service one handler thread for at most one timeout, after which the
// connection closes. The client symmetrically bounds connect (non-blocking
// connect + poll) and per-operation I/O, surfacing expiry as TimeoutError;
// TcpClient::Query additionally retries on a fresh connection with
// exponential backoff (queries are read-only, hence idempotent — resending
// is always safe). The failpoint "tcp.serve.stall" (Action::kDelay) sits at
// the top of the server's per-request loop so tests can simulate a slow
// server without touching real traffic.
//
// Threading: Start() spawns one accept thread; each accepted connection gets
// its own handler thread (the expected fan-in is a handful of benchmark or
// test clients, not a C10K front; the harness underneath scales to any
// number of query threads). Stop() shuts down the listener and every open
// connection, then joins all threads — safe to call twice, called by the
// destructor.
//
// Binding: loopback (127.0.0.1) only, port 0 picks a free port — Port()
// reports the bound one. This is deliberately a harness front-end, not an
// internet-facing daemon.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "serve/query.hpp"
#include "serve/serve_harness.hpp"

namespace rpt::serve {

/// Frames longer than this are treated as a protocol desync and close the
/// connection (a legal request payload is kRequestWireSize bytes).
inline constexpr std::uint32_t kMaxFrameBytes = 1024;

/// A bounded socket operation expired. Subtype of InternalError so existing
/// callers that catch the broad class keep working; new callers can react
/// to timeouts specifically (the client's retry loop does).
class TimeoutError : public InternalError {
 public:
  explicit TimeoutError(const std::string& what) : InternalError(what) {}
};

/// The server answered the busy byte: it is at max_connections and refused
/// this connection. Retryable (the client's retry loop rotates to the next
/// endpoint), distinct from a timeout.
class ServerBusy : public InternalError {
 public:
  explicit ServerBusy(const std::string& what) : InternalError(what) {}
};

/// Payload of the one-byte busy frame a saturated server answers before
/// closing (an ordinary response payload is kResponseWireSize bytes, so the
/// frame length alone disambiguates).
inline constexpr std::uint8_t kBusyStatusByte = 0xEE;

struct TcpServerOptions {
  /// Per-connection read/write timeout. A half-written request frame or an
  /// undrained response closes the connection after this long; 0 disables
  /// (blocking forever — the pre-timeout behavior, tests only).
  int io_timeout_ms = 30000;
  /// Overload guard: with more than this many connections already open, an
  /// accepted connection is answered with a one-byte busy frame
  /// (kBusyStatusByte) and closed instead of getting a handler thread.
  /// 0 = unlimited (the pre-guard behavior).
  int max_connections = 0;
};

struct TcpClientOptions {
  int connect_timeout_ms = 5000;  ///< bound on the TCP handshake
  int io_timeout_ms = 5000;       ///< bound on each send/recv; 0 disables
  /// Query() retries on a FRESH connection this many times after the first
  /// attempt fails with a timeout or connection error (0 = fail fast).
  /// With multiple endpoints, each retry rotates to the next one.
  int max_retries = 2;
  /// Backoff before retry k (0-based) is `backoff_base_ms << k`, capped at
  /// backoff_cap_ms, then jittered (see BackoffDelayMs).
  int backoff_base_ms = 10;
  /// Cap on the exponential: uncapped, `10 << 30` is twelve days — one
  /// misconfigured max_retries away. 0 = no cap (tests only).
  int backoff_cap_ms = 250;
  /// Seed for the deterministic jitter. Distinct seeds per client spread a
  /// post-failover reconnect herd; equal seeds reproduce a schedule exactly.
  std::uint64_t backoff_seed = 0;
};

/// Delay before retry `attempt` (0-based): the capped exponential
/// `min(base_ms << attempt, cap_ms)`, jittered deterministically into
/// [delay/2, delay] by a hash of (seed, attempt). Jitter exists so a herd
/// of clients whose primary just died does not hammer the promoted
/// follower in lockstep; determinism (no clocks, no global RNG) keeps
/// retry schedules reproducible in tests. Exposed for direct testing.
[[nodiscard]] std::uint64_t BackoffDelayMs(int attempt, int base_ms, int cap_ms,
                                           std::uint64_t seed) noexcept;

class TcpServer {
 public:
  /// Wraps `harness` (not owned; must outlive the server).
  explicit TcpServer(const ServeHarness& harness, TcpServerOptions options = {});

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Stops and joins everything.
  ~TcpServer();

  /// Binds 127.0.0.1:`port` (0 = pick a free port), starts listening and
  /// accepting. Throws InternalError if the socket layer refuses; throws
  /// InvalidArgument if already started.
  void Start(std::uint16_t port = 0);

  /// Shuts the listener and all connections down and joins their threads.
  /// Idempotent.
  void Stop();

  /// The bound port (valid after Start()).
  [[nodiscard]] std::uint16_t Port() const noexcept { return port_; }

  /// Connections accepted over the server's lifetime.
  [[nodiscard]] std::uint64_t ConnectionsAccepted() const noexcept {
    return connections_.load(std::memory_order_relaxed);
  }

  /// Requests answered (including failure responses) over the lifetime.
  [[nodiscard]] std::uint64_t RequestsServed() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Connections closed because a read or write timed out (half frames,
  /// undrained peers).
  [[nodiscard]] std::uint64_t TimeoutsObserved() const noexcept {
    return timeouts_.load(std::memory_order_relaxed);
  }

  /// Connections refused with the busy byte because max_connections was
  /// reached.
  [[nodiscard]] std::uint64_t RejectedConnections() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }

  /// Currently-open handler connections (the count max_connections bounds).
  [[nodiscard]] int ActiveConnections() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  const ServeHarness& harness_;
  TcpServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex conn_mutex_;  // guards conn_fds_ / conn_threads_
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<int> active_{0};
};

/// Minimal blocking client for the rpt-serve wire protocol: one connection,
/// one request/response at a time. Not thread-safe; throws TimeoutError
/// when a bounded operation expires, ServerBusy on the busy byte,
/// InternalError on other socket failures and InvalidArgument on malformed
/// responses.
///
/// Failover: constructed with an endpoint LIST, the client talks to the
/// first endpoint until an attempt fails, then rotates to the next (round
/// robin) on each retry — the shape a query client needs when its primary
/// dies and a promoted follower is listening on the other port. Which
/// endpoint answered is visible via ActivePort().
class TcpClient {
 public:
  /// Connects to 127.0.0.1:`port` within `options.connect_timeout_ms`.
  explicit TcpClient(std::uint16_t port, TcpClientOptions options = {});

  /// Failover client: endpoints are tried in order, starting from the
  /// first; each Query retry rotates to the next. Connects to the first
  /// reachable endpoint before returning.
  explicit TcpClient(std::vector<std::uint16_t> endpoints,
                     TcpClientOptions options = {});

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;
  ~TcpClient();

  /// Sends one request and blocks for its response. On a timeout, busy
  /// byte or connection error, rotates to the next endpoint and resends on
  /// a fresh connection up to `max_retries` times with capped+jittered
  /// exponential backoff (safe: queries are idempotent reads); throws the
  /// final attempt's error when the budget is exhausted.
  [[nodiscard]] QueryResponse Query(const QueryRequest& request);

  /// The endpoint the client is currently connected (or connecting) to.
  [[nodiscard]] std::uint16_t ActivePort() const noexcept {
    return endpoints_[endpoint_index_];
  }

  /// Sends `payload` under a raw length prefix — the tests' tool for
  /// poking malformed frames at the server. No retry.
  [[nodiscard]] QueryResponse RawFrame(std::span<const std::uint8_t> payload);

  /// Writes raw bytes with NO framing and reads nothing — the tests' tool
  /// for half-written frames and hung-peer scenarios.
  void SendBytes(std::span<const std::uint8_t> bytes);

  /// Retries Query() performed over this client's lifetime.
  [[nodiscard]] std::uint64_t Retries() const noexcept { return retries_; }

 private:
  void Connect();
  QueryResponse QueryOnce(const QueryRequest& request);
  QueryResponse ReadResponse();

  std::vector<std::uint16_t> endpoints_;
  std::size_t endpoint_index_ = 0;
  TcpClientOptions options_;
  int fd_ = -1;
  std::uint64_t retries_ = 0;
};

}  // namespace rpt::serve
