#include "serve/placement_snapshot.hpp"

#include <algorithm>

namespace rpt::serve {

std::unique_ptr<const PlacementSnapshot> PlacementSnapshot::Build(
    TopologyView view, Requests capacity, std::span<const Requests> demand,
    const Solution& solution, std::uint64_t version) {
  RPT_REQUIRE(capacity > 0, "PlacementSnapshot: capacity must be positive");
  RPT_REQUIRE(demand.size() == view.Size(),
              "PlacementSnapshot: demand column must have one entry per node");
  const std::size_t n = view.Size();

  auto snapshot = std::unique_ptr<PlacementSnapshot>(new PlacementSnapshot());
  PlacementSnapshot& s = *snapshot;
  s.version_ = version;
  s.capacity_ = capacity;
  s.replica_count_ = solution.replicas.size();
  s.demand_.assign(demand.begin(), demand.end());
  for (const Requests d : s.demand_) s.total_demand_ += d;
  s.feasible_ = !solution.replicas.empty() || s.total_demand_ == 0;

  // Copy the rootward skeleton so the snapshot survives any later topology
  // mutation (or compaction) of the solver's overlay. Dead slots get a
  // neutral (kInvalidNode, 0) row — no query path walks through them.
  s.parent_.assign(n, kInvalidNode);
  s.dist_parent_.assign(n, 0);
  s.alive_.assign(n, 0);
  for (NodeId id = 0; id < n; ++id) {
    if (!view.IsLive(id)) {
      RPT_REQUIRE(demand[id] == 0, "PlacementSnapshot: dead nodes carry no demand");
      continue;
    }
    s.alive_[id] = 1;
    s.parent_[id] = view.Parent(id);
    s.dist_parent_[id] = view.DistToParent(id);
  }

  s.load_.assign(n, 0);
  s.residual_.assign(n, 0);
  s.residual_valid_.assign(n, 0);
  for (const NodeId replica : solution.replicas) {
    RPT_REQUIRE(replica < n && s.alive_[replica] != 0,
                "PlacementSnapshot: replica must be a live node");
    s.residual_valid_[replica] = 1;
  }

  // Routing CSR: count per client, prefix-sum, fill. The canonical solution
  // is sorted by (client, server), so a stable two-pass fill preserves the
  // ascending-server order inside each client's span.
  s.route_begin_.assign(n + 1, 0);
  for (const ServiceEntry& entry : solution.assignment) {
    RPT_REQUIRE(entry.client < n && entry.server < n,
                "PlacementSnapshot: assignment entry out of range");
    RPT_REQUIRE(s.residual_valid_[entry.server] != 0,
                "PlacementSnapshot: assignment targets a non-replica server");
    s.route_begin_[entry.client + 1] += 1;
    s.load_[entry.server] += entry.amount;
  }
  for (std::size_t i = 1; i <= n; ++i) s.route_begin_[i] += s.route_begin_[i - 1];
  s.routes_.resize(solution.assignment.size());
  {
    std::vector<std::uint32_t> cursor(s.route_begin_.begin(), s.route_begin_.end() - 1);
    for (const ServiceEntry& entry : solution.assignment) {
      s.routes_[cursor[entry.client]++] = RouteEntry{entry.server, entry.amount};
    }
  }

  for (const NodeId replica : solution.replicas) {
    RPT_REQUIRE(s.load_[replica] <= capacity,
                "PlacementSnapshot: replica load exceeds capacity");
    s.residual_[replica] = capacity - s.load_[replica];
  }

  // Subtree aggregates in one post-order pass (children precede parents;
  // live nodes only — dead slots stay at 0).
  s.subtree_residual_.assign(n, 0);
  s.subtree_replicas_.assign(n, 0);
  for (const NodeId node : view.PostOrder()) {
    Requests residual = s.residual_[node];
    std::uint32_t replicas = s.residual_valid_[node];
    for (const NodeId child : view.Children(node)) {
      residual += s.subtree_residual_[child];
      replicas += s.subtree_replicas_[child];
    }
    s.subtree_residual_[node] = residual;
    s.subtree_replicas_[node] = replicas;
  }
  return snapshot;
}

Distance PlacementSnapshot::DistToAncestor(NodeId node, NodeId ancestor) const {
  Check(ancestor);
  Distance distance = 0;
  for (NodeId cursor = Check(node);; ) {
    if (cursor == ancestor) return distance;
    const NodeId parent = parent_[cursor];
    RPT_REQUIRE(parent != kInvalidNode, "PlacementSnapshot: not an ancestor");
    distance = SaturatingAdd(distance, dist_parent_[cursor]);
    cursor = parent;
  }
}

NodeId PlacementSnapshot::PrimaryServerOf(NodeId client) const {
  NodeId best = kInvalidNode;
  Requests best_amount = 0;
  for (const RouteEntry& entry : ServersOf(client)) {
    // Strictly-greater keeps the first (smallest-id) server on ties; the
    // span is in ascending server order.
    if (entry.amount > best_amount) {
      best = entry.server;
      best_amount = entry.amount;
    }
  }
  return best;
}

AttachResult PlacementSnapshot::AttachAt(NodeId node, Requests demand) const {
  AttachResult result;
  if (alive_[Check(node)] == 0) return result;  // dead id: nothing to attach to
  Distance distance = 0;
  for (NodeId cursor = node;;) {
    if (residual_valid_[cursor] != 0 && residual_[cursor] >= demand) {
      result.feasible = true;
      result.server = cursor;
      result.distance = distance;
      return result;
    }
    const NodeId parent = parent_[cursor];
    if (parent == kInvalidNode) return result;  // walked past the root
    distance = SaturatingAdd(distance, dist_parent_[cursor]);
    cursor = parent;
  }
}

std::uint64_t PlacementSnapshot::CanonicalHash() const noexcept {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) noexcept {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(version_);
  mix(capacity_);
  mix(total_demand_);
  mix(feasible_ ? 1 : 0);
  mix(replica_count_);
  for (std::size_t i = 0; i < demand_.size(); ++i) {
    // Most nodes are untouched between snapshots; hashing only the nonzero
    // placement columns keeps the mix cheap without losing any state (the
    // zero runs are implied by the indices of the nonzero entries). The
    // topology skeleton is folded in the same way: dead slots and edge
    // lengths, so a pure structure change still moves the hash.
    if (demand_[i] != 0) {
      mix(i);
      mix(demand_[i]);
    }
    if (residual_valid_[i] != 0) {
      mix(i);
      mix(load_[i]);
      mix(residual_[i]);
    }
    if (alive_[i] == 0) {
      mix(i);
      mix(0xDEADu);
    } else if (parent_[i] != kInvalidNode) {
      mix(parent_[i]);
      mix(dist_parent_[i]);
    }
  }
  mix(routes_.size());
  for (const RouteEntry& entry : routes_) {
    mix(entry.server);
    mix(entry.amount);
  }
  return h;
}

}  // namespace rpt::serve
