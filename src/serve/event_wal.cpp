#include "serve/event_wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "support/crc32.hpp"
#include "support/failpoint.hpp"
#include "tree/serialize.hpp"

namespace rpt::serve {
namespace {

namespace fs = std::filesystem;
using incremental::UpdateEvent;

constexpr char kWalMagic[8] = {'R', 'P', 'T', 'W', 'A', 'L', '1', '\0'};
constexpr std::size_t kWalMagicBytes = sizeof(kWalMagic);
constexpr std::size_t kRecordHeaderBytes = 8;  // len u32 + crc u32

void PutU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void PutU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void PutU8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

// Bounds-checked little-endian cursor over a decoded payload. Parse
// failures throw InternalError: the CRC already vouched for these bytes, so
// a malformed payload is a writer bug or a version skew, never a torn tail.
class Cursor {
 public:
  Cursor(const char* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t U8() {
    Need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t U32() {
    Need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t U64() {
    Need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
    pos_ += 8;
    return v;
  }
  [[nodiscard]] bool Exhausted() const { return pos_ == size_; }

 private:
  void Need(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw InternalError("event_wal: payload underrun despite matching CRC");
    }
  }
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

WalBatch DecodeBatchPayload(const char* data, std::size_t size) {
  Cursor cur(data, size);
  WalBatch batch;
  batch.seq = cur.U64();
  const std::uint32_t count = cur.U32();
  if (count == kEpochMarker) {
    batch.epoch_bump = true;
    batch.epoch = cur.U64();
    if (!cur.Exhausted()) {
      throw InternalError("event_wal: trailing payload bytes despite matching CRC");
    }
    return batch;
  }
  batch.events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    UpdateEvent ev;
    const std::uint8_t kind = cur.U8();
    if (kind > static_cast<std::uint8_t>(UpdateEvent::Kind::kLinkCapacity)) {
      throw InternalError("event_wal: unknown event kind despite matching CRC");
    }
    ev.kind = static_cast<UpdateEvent::Kind>(kind);
    ev.client = cur.U32();
    ev.delta = static_cast<std::int64_t>(cur.U64());
    ev.value = cur.U64();
    ev.parent = cur.U32();
    const std::uint32_t nspec = cur.U32();
    ev.spec.nodes.reserve(nspec);
    for (std::uint32_t j = 0; j < nspec; ++j) {
      SubtreeSpec::Node node;
      const std::uint8_t nkind = cur.U8();
      if (nkind > static_cast<std::uint8_t>(NodeKind::kClient)) {
        throw InternalError("event_wal: unknown spec-node kind despite matching CRC");
      }
      node.kind = static_cast<NodeKind>(nkind);
      node.parent = cur.U32();
      node.delta = cur.U64();
      node.requests = cur.U64();
      ev.spec.nodes.push_back(node);
    }
    batch.events.push_back(std::move(ev));
  }
  if (!cur.Exhausted()) {
    throw InternalError("event_wal: trailing payload bytes despite matching CRC");
  }
  return batch;
}

std::uint32_t ReadU32At(const std::string& bytes, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[off + i])) << (8 * i);
  return v;
}

/// True when a structurally valid record (sane length, full payload
/// present, CRC matching) frames at `off`.
bool FramesValidRecord(const std::string& bytes, std::size_t off) {
  if (bytes.size() - off < kRecordHeaderBytes) return false;
  const std::uint32_t len = ReadU32At(bytes, off);
  const std::uint32_t crc = ReadU32At(bytes, off + 4);
  if (len == 0 || len > kMaxWalRecordBytes) return false;
  if (bytes.size() - off - kRecordHeaderBytes < len) return false;
  return support::Crc32(bytes.data() + off + kRecordHeaderBytes, len) == crc;
}

std::string ReadWholeFile(const std::string& path, bool& exists) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    exists = false;
    return {};
  }
  exists = true;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

int WriteAll(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno;
    }
    if (n == 0) return EIO;  // no progress and no errno set — don't spin
    done += static_cast<std::size_t>(n);
  }
  return 0;
}

void WriteFileDurable(const std::string& path, const std::string& bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw InternalError("event_wal: cannot create '" + path + "': " +
                        std::strerror(errno));
  }
  const int err = WriteAll(fd, bytes.data(), bytes.size());
  if (err != 0 || ::fsync(fd) != 0) {
    ::close(fd);
    throw InternalError("event_wal: write to '" + path + "' failed");
  }
  ::close(fd);
}

void SyncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);  // best-effort: the rename itself already ordered the data
    ::close(fd);
  }
}

std::string CheckpointFileName(std::uint64_t seq) {
  char name[40];
  std::snprintf(name, sizeof(name), "ckpt-%020llu.rpt",
                static_cast<unsigned long long>(seq));
  return name;
}

/// Checkpoints in `dir`, newest (highest seq) first.
std::vector<std::pair<std::uint64_t, std::string>> ListCheckpoints(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long seq = 0;
    int consumed = 0;
    if (std::sscanf(name.c_str(), "ckpt-%20llu.rpt%n", &seq, &consumed) == 1 &&
        consumed == static_cast<int>(name.size())) {
      found.emplace_back(seq, entry.path().string());
    }
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return found;
}

}  // namespace

EventWal::EventWal(EventWal&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      sync_(other.sync_),
      committed_bytes_(other.committed_bytes_),
      last_seq_(other.last_seq_) {}

EventWal& EventWal::operator=(EventWal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    sync_ = other.sync_;
    committed_bytes_ = other.committed_bytes_;
    last_seq_ = other.last_seq_;
  }
  return *this;
}

EventWal::~EventWal() {
  if (fd_ >= 0) ::close(fd_);
}

std::string EventWal::EncodeBatchPayload(
    std::uint64_t seq, const std::vector<UpdateEvent>& events) {
  std::string payload;
  PutU64(payload, seq);
  PutU32(payload, static_cast<std::uint32_t>(events.size()));
  for (const UpdateEvent& ev : events) {
    PutU8(payload, static_cast<std::uint8_t>(ev.kind));
    PutU32(payload, ev.client);
    PutU64(payload, static_cast<std::uint64_t>(ev.delta));
    PutU64(payload, ev.value);
    PutU32(payload, ev.parent);
    PutU32(payload, static_cast<std::uint32_t>(ev.spec.nodes.size()));
    for (const SubtreeSpec::Node& node : ev.spec.nodes) {
      PutU8(payload, static_cast<std::uint8_t>(node.kind));
      PutU32(payload, node.parent);
      PutU64(payload, node.delta);
      PutU64(payload, node.requests);
    }
  }
  RPT_CHECK(payload.size() <= kMaxWalRecordBytes);
  return payload;
}

std::string EventWal::EncodeEpochPayload(std::uint64_t seq, std::uint64_t epoch) {
  std::string payload;
  PutU64(payload, seq);
  PutU32(payload, kEpochMarker);
  PutU64(payload, epoch);
  return payload;
}

std::string EventWal::FrameRecord(const std::string& payload) {
  std::string record;
  record.reserve(kRecordHeaderBytes + payload.size());
  PutU32(record, static_cast<std::uint32_t>(payload.size()));
  PutU32(record, support::Crc32(payload.data(), payload.size()));
  record += payload;
  return record;
}

std::optional<WalBatch> EventWal::TryDecodeFramedRecord(const std::string& frame) {
  if (!FramesValidRecord(frame, 0)) return std::nullopt;
  const std::uint32_t len = ReadU32At(frame, 0);
  if (frame.size() != kRecordHeaderBytes + len) return std::nullopt;
  return DecodeBatchPayload(frame.data() + kRecordHeaderBytes, len);
}

WalReadResult EventWal::Read(const std::string& path) {
  WalReadResult result;
  bool exists = false;
  const std::string bytes = ReadWholeFile(path, exists);
  if (!exists || bytes.empty()) return result;

  if (bytes.size() < kWalMagicBytes) {
    // A crash while writing the magic of a brand-new log: torn tail of an
    // empty log (nothing after it can frame in < 8 bytes).
    result.dropped_bytes = bytes.size();
    return result;
  }
  if (std::memcmp(bytes.data(), kWalMagic, kWalMagicBytes) != 0) {
    throw InvalidArgument("event_wal: '" + path + "' is not an rpt WAL file");
  }

  std::size_t off = kWalMagicBytes;
  result.valid_bytes = off;
  std::uint64_t last_seq = 0;
  while (off < bytes.size()) {
    if (!FramesValidRecord(bytes, off)) break;
    const std::uint32_t len = ReadU32At(bytes, off);
    WalBatch batch =
        DecodeBatchPayload(bytes.data() + off + kRecordHeaderBytes, len);
    if (batch.seq <= last_seq) {
      throw InternalError("event_wal: non-increasing seq " +
                          std::to_string(batch.seq) + " after " +
                          std::to_string(last_seq) + " in '" + path + "'");
    }
    last_seq = batch.seq;
    result.batches.push_back(std::move(batch));
    off += kRecordHeaderBytes + len;
    result.valid_bytes = off;
  }

  if (off < bytes.size()) {
    // Damage at `off`. Torn tail iff no committed record survives past it;
    // otherwise the middle of the log is gone and replay must not proceed.
    for (std::size_t probe = off + 1; probe + kRecordHeaderBytes <= bytes.size();
         ++probe) {
      if (FramesValidRecord(bytes, probe)) {
        throw InternalError(
            "event_wal: interior corruption in '" + path + "' at byte " +
            std::to_string(off) + " (intact record follows at byte " +
            std::to_string(probe) + "); refusing to replay around a hole");
      }
    }
    result.dropped_bytes = bytes.size() - off;
  }
  return result;
}

EventWal EventWal::OpenForAppend(const std::string& path, bool sync) {
  WalReadResult scan = Read(path);  // throws on interior corruption

  EventWal wal;
  wal.path_ = path;
  wal.sync_ = sync;
  wal.fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (wal.fd_ < 0) {
    throw InternalError("event_wal: cannot open '" + path + "': " +
                        std::strerror(errno));
  }

  if (scan.valid_bytes == 0) {
    // Fresh (or sub-magic torn) file: start over with a clean magic.
    if (::ftruncate(wal.fd_, 0) != 0 ||
        WriteAll(wal.fd_, kWalMagic, kWalMagicBytes) != 0) {
      throw InternalError("event_wal: cannot initialize '" + path + "'");
    }
    wal.committed_bytes_ = kWalMagicBytes;
  } else {
    // Drop any torn tail so appends land on the committed prefix.
    if (::ftruncate(wal.fd_, static_cast<off_t>(scan.valid_bytes)) != 0) {
      throw InternalError("event_wal: cannot truncate torn tail of '" + path + "'");
    }
    wal.committed_bytes_ = scan.valid_bytes;
    if (!scan.batches.empty()) wal.last_seq_ = scan.batches.back().seq;
  }
  if (::lseek(wal.fd_, static_cast<off_t>(wal.committed_bytes_), SEEK_SET) < 0) {
    throw InternalError("event_wal: cannot seek in '" + path + "'");
  }
  if (sync && ::fsync(wal.fd_) != 0) {
    throw InternalError("event_wal: fsync of '" + path + "' failed");
  }
  return wal;
}

void EventWal::Append(std::uint64_t seq, const std::vector<UpdateEvent>& events) {
  AppendPayload(seq, EncodeBatchPayload(seq, events));
}

void EventWal::AppendEpoch(std::uint64_t seq, std::uint64_t epoch) {
  AppendPayload(seq, EncodeEpochPayload(seq, epoch));
}

void EventWal::AppendPayload(std::uint64_t seq, const std::string& payload) {
  RPT_CHECK(fd_ >= 0);  // Append on a moved-from handle is a caller bug
  if (seq <= last_seq_) {
    throw InvalidArgument("event_wal: seq " + std::to_string(seq) +
                          " not past committed seq " + std::to_string(last_seq_));
  }

  fail::Hit("wal.append");  // kThrow / kCrash fire here, before any bytes move

  const std::string record = FrameRecord(payload);

  // Repairs a failed append: the bytes past the committed prefix never
  // happened. Used for ERRORS the process survives (the caller gets
  // InternalError and degrades); an injected CRASH skips repair on purpose —
  // the torn tail is exactly what recovery must cope with.
  const auto repair_and_throw = [&](const std::string& what) {
    ::ftruncate(fd_, static_cast<off_t>(committed_bytes_));
    ::lseek(fd_, static_cast<off_t>(committed_bytes_), SEEK_SET);
    throw InternalError("event_wal: " + what + " ('" + path_ + "')");
  };

  std::uint64_t short_bytes = 0;
  if (fail::Hit("wal.append.short", &short_bytes) == fail::Action::kShortOp) {
    const std::size_t n = std::min<std::size_t>(short_bytes, record.size());
    WriteAll(fd_, record.data(), n);
    throw fail::InjectedFault("wal.append.short: wrote " + std::to_string(n) +
                              " of " + std::to_string(record.size()) +
                              " record bytes, then died");
  }

  if (WriteAll(fd_, record.data(), record.size()) != 0) {
    repair_and_throw("append write failed");
  }
  if (fail::Hit("wal.sync") == fail::Action::kError) {
    repair_and_throw("injected fsync failure");
  }
  if (sync_ && ::fsync(fd_) != 0) {
    repair_and_throw("fsync failed");
  }

  committed_bytes_ += record.size();
  last_seq_ = seq;
}

void EventWal::TrimThrough(const std::string& path, std::uint64_t through_seq) {
  if (fail::Hit("wal.trim") == fail::Action::kError) {
    throw InternalError("event_wal: injected trim failure ('" + path + "')");
  }
  const WalReadResult scan = Read(path);
  std::string out(kWalMagic, kWalMagicBytes);
  for (const WalBatch& batch : scan.batches) {
    if (batch.seq <= through_seq) continue;
    const std::string payload =
        batch.epoch_bump ? EncodeEpochPayload(batch.seq, batch.epoch)
                         : EncodeBatchPayload(batch.seq, batch.events);
    out += FrameRecord(payload);
  }
  const std::string tmp = path + ".tmp";
  WriteFileDurable(tmp, out);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw InternalError("event_wal: trim rename failed: " + ec.message());
  }
  SyncDirectory(fs::path(path).parent_path().string());
}

void WriteCheckpoint(const std::string& dir, const CheckpointState& state) {
  if (fail::Hit("ckpt.write") == fail::Action::kError) {
    throw InternalError("event_wal: injected checkpoint write failure");
  }

  std::ostringstream body;
  body << "rpt-ckpt v1\n"
       << "seq " << state.seq << " version " << state.version << " capacity "
       << state.capacity << " epoch " << state.epoch << "\n";
  WriteOverlay(body, state.overlay);
  std::string text = std::move(body).str();
  char crc_line[16];
  std::snprintf(crc_line, sizeof(crc_line), "crc %08x\n",
                support::Crc32(text.data(), text.size()));
  text += crc_line;

  const fs::path final_path = fs::path(dir) / CheckpointFileName(state.seq);
  const std::string tmp = final_path.string() + ".tmp";
  WriteFileDurable(tmp, text);
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) {
    throw InternalError("event_wal: checkpoint rename failed: " + ec.message());
  }
  SyncDirectory(dir);

  // Retention: the newest checkpoint plus one fallback survive; everything
  // older is replay-reachable from those and just disk weight.
  const auto all = ListCheckpoints(dir);
  for (std::size_t i = 2; i < all.size(); ++i) {
    fs::remove(all[i].second, ec);
  }
}

std::uint64_t NewestCheckpointSeqHint(const std::string& dir) {
  const auto all = ListCheckpoints(dir);
  return all.empty() ? 0 : all.front().first;
}

std::optional<CheckpointState> LoadNewestCheckpoint(const std::string& dir) {
  constexpr std::size_t kCrcLineBytes = 13;  // "crc " + 8 hex + '\n'
  for (const auto& [seq, path] : ListCheckpoints(dir)) {
    bool exists = false;
    const std::string text = ReadWholeFile(path, exists);
    if (!exists || text.size() < kCrcLineBytes) continue;

    const std::size_t body_len = text.size() - kCrcLineBytes;
    unsigned int stored_crc = 0;
    if (std::sscanf(text.c_str() + body_len, "crc %8x", &stored_crc) != 1 ||
        text.back() != '\n') {
      continue;  // truncated or torn: fall back to an older checkpoint
    }
    if (support::Crc32(text.data(), body_len) != stored_crc) continue;

    try {
      std::istringstream in(text.substr(0, body_len));
      std::string line;
      if (!std::getline(in, line) || line != "rpt-ckpt v1") continue;
      if (!std::getline(in, line)) continue;
      unsigned long long hdr_seq = 0, hdr_version = 0, hdr_capacity = 0;
      unsigned long long hdr_epoch = 1;  // pre-replication checkpoints: epoch 1
      const int parsed =
          std::sscanf(line.c_str(), "seq %llu version %llu capacity %llu epoch %llu",
                      &hdr_seq, &hdr_version, &hdr_capacity, &hdr_epoch);
      if (parsed != 3 && parsed != 4) continue;
      if (parsed == 3) hdr_epoch = 1;
      TreeOverlay overlay = ReadOverlay(in);
      return CheckpointState{hdr_seq, hdr_version, hdr_epoch,
                             static_cast<Requests>(hdr_capacity),
                             std::move(overlay)};
    } catch (const InvalidArgument&) {
      continue;  // CRC passed but the body does not parse: skip, fall back
    }
  }
  return std::nullopt;
}

}  // namespace rpt::serve
