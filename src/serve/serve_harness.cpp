#include "serve/serve_harness.hpp"

namespace rpt::serve {

ServeHarness::ServeHarness(const Instance& instance, incremental::SolverOptions options)
    : solver_(instance, options) {
  PublishCurrent();
}

void ServeHarness::PublishCurrent() {
  store_.Publish(PlacementSnapshot::Build(solver_.View(), solver_.Capacity(),
                                          solver_.Demands(), solver_.Current(),
                                          next_version_));
  ++next_version_;
}

bool ServeHarness::ApplyAndPublish(std::span<const incremental::UpdateEvent> events) {
  // Apply() validates the whole batch before touching anything; if it
  // throws, we re-throw without publishing and the last good snapshot
  // stays current.
  const bool feasible = solver_.Apply(events);
  PublishCurrent();
  return feasible;
}

QueryResponse ServeHarness::Query(const QueryRequest& request) const {
  const SnapshotStore::Ref ref = Pin();
  RPT_CHECK(ref);  // the constructor publishes before any caller can query
  QueryResponse response = Answer(*ref, request);
  queries_answered_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

}  // namespace rpt::serve
