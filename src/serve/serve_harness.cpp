#include "serve/serve_harness.hpp"

#include <filesystem>
#include <utility>
#include <vector>

#include "support/failpoint.hpp"

namespace rpt::serve {

namespace fs = std::filesystem;

namespace {

std::string WalPath(const DurabilityOptions& durability) {
  return (fs::path(durability.dir) / "wal.log").string();
}

}  // namespace

/// Everything RecoverFrom digs out of the state directory before the
/// private constructor runs: the newest intact checkpoint (if any) and the
/// WAL records past it, in log order.
struct ServeHarness::RecoveredState {
  std::optional<CheckpointState> checkpoint;
  std::vector<WalBatch> tail;
  std::uint64_t last_seq = 0;  ///< max(checkpoint seq, last WAL seq)
};

ServeHarness::ServeHarness(const Instance& instance, incremental::SolverOptions options)
    : solver_(std::make_unique<incremental::IncrementalSolver>(instance, options)) {
  PublishCurrent();
}

ServeHarness::ServeHarness(const Instance& instance, incremental::SolverOptions options,
                           const DurabilityOptions& durability)
    : solver_(std::make_unique<incremental::IncrementalSolver>(instance, options)),
      durability_(durability) {
  RPT_REQUIRE(!durability.dir.empty(), "serve: durable mode needs a state directory");
  fs::create_directories(durability.dir);
  RPT_REQUIRE(!fs::exists(WalPath(durability)) &&
                  !LoadNewestCheckpoint(durability.dir).has_value(),
              "serve: '" + durability.dir +
                  "' already holds serving state; use RecoverFrom");
  wal_ = EventWal::OpenForAppend(WalPath(durability), durability.sync_appends);
  PublishCurrent();
}

ServeHarness::ServeHarness(const Instance& instance, incremental::SolverOptions options,
                           const DurabilityOptions& durability,
                           RecoveredState&& recovered)
    : durability_(durability) {
  std::uint64_t version = 1;  // the version a fresh harness publishes
  if (recovered.checkpoint) {
    version = recovered.checkpoint->version;
    epoch_.store(recovered.checkpoint->epoch, std::memory_order_relaxed);
    solver_ = std::make_unique<incremental::IncrementalSolver>(
        instance, std::move(recovered.checkpoint->overlay),
        recovered.checkpoint->capacity, options);
  } else {
    solver_ = std::make_unique<incremental::IncrementalSolver>(instance, options);
  }

  // Replay the tail through the ordinary Apply path. A logged batch that
  // fails validation was logged, REJECTED, and never published in the
  // first life — Apply is deterministic in (state, events), so it rejects
  // identically here and contributes no version. Epoch records restore the
  // fencing token and touch neither the solver nor the version.
  std::uint64_t successes = 0;
  for (const WalBatch& batch : recovered.tail) {
    if (batch.epoch_bump) {
      epoch_.store(batch.epoch, std::memory_order_relaxed);
      continue;
    }
    try {
      solver_->Apply(batch.events);
      ++successes;
    } catch (const InvalidArgument&) {
    }
  }
  recovered_batches_ = recovered.tail.size();
  seq_ = recovered.last_seq;

  // One publish of the final recovered state, carrying exactly the version
  // the uninterrupted run's latest snapshot had (CanonicalHash mixes the
  // version, so the recovery-equivalence oracle depends on this line).
  next_version_ = version + successes;
  PublishCurrent();

  wal_ = EventWal::OpenForAppend(WalPath(durability), durability_.sync_appends);
}

std::unique_ptr<ServeHarness> ServeHarness::RecoverFrom(
    const Instance& instance, incremental::SolverOptions options,
    const DurabilityOptions& durability) {
  RPT_REQUIRE(!durability.dir.empty(), "serve: RecoverFrom needs a state directory");
  fs::create_directories(durability.dir);

  RecoveredState recovered;
  recovered.checkpoint = LoadNewestCheckpoint(durability.dir);
  // Read throws InternalError on interior corruption: recovery must refuse
  // to replay around a hole in the log.
  WalReadResult wal = EventWal::Read(WalPath(durability));

  const std::uint64_t ckpt_seq =
      recovered.checkpoint ? recovered.checkpoint->seq : 0;
  recovered.last_seq = ckpt_seq;
  for (WalBatch& batch : wal.batches) {
    if (batch.seq <= ckpt_seq) continue;  // already folded into the checkpoint
    // Harness seqs are contiguous (rejected batches are logged too), so a
    // tail that does not pick up exactly one past the recovered seq means
    // committed batches are missing — the classic shape: the newest
    // checkpoint was damaged, LoadNewestCheckpoint fell back to an older
    // one, and trim_on_checkpoint already dropped the records in between.
    // Replaying around the gap would fabricate a state the system never
    // passed through; refuse, same as interior WAL corruption.
    if (batch.seq != recovered.last_seq + 1) {
      throw InternalError(
          "serve: WAL record seq " + std::to_string(batch.seq) +
          " does not follow recovered seq " +
          std::to_string(recovered.last_seq) + " in '" + durability.dir +
          "'; the batches in between are lost — refusing to recover a "
          "wrong state");
    }
    recovered.last_seq = batch.seq;
    recovered.tail.push_back(std::move(batch));
  }
  // The same gap with an empty (or short) tail: every checkpoint filename
  // advertises its seq, so a newest checkpoint that failed to load while
  // neither an older checkpoint nor the trimmed WAL reaches its seq means
  // data loss even though everything on disk parses cleanly.
  const std::uint64_t advertised = NewestCheckpointSeqHint(durability.dir);
  if (advertised > recovered.last_seq) {
    throw InternalError(
        "serve: a checkpoint file advertising seq " +
        std::to_string(advertised) + " exists in '" + durability.dir +
        "' but recovery only reaches seq " +
        std::to_string(recovered.last_seq) +
        "; the newest checkpoint is damaged and the WAL no longer covers "
        "the gap — refusing to recover a wrong state");
  }
  return std::unique_ptr<ServeHarness>(
      new ServeHarness(instance, options, durability, std::move(recovered)));
}

void ServeHarness::PublishCurrent() {
  store_.Publish(PlacementSnapshot::Build(solver_->View(), solver_->Capacity(),
                                          solver_->Demands(), solver_->Current(),
                                          next_version_));
  ++next_version_;
}

void ServeHarness::RequireWal() {
  if (wal_) return;
  // Durable mode but no WAL handle: an earlier checkpoint trim failed AND
  // the log could not be reopened. Applying a batch the log would never
  // hear about silently forfeits durability — refuse instead.
  stale_.store(true, std::memory_order_relaxed);
  throw InternalError(
      "serve: WAL handle lost (earlier trim/reopen failure in '" +
      durability_.dir + "'); refusing to apply unlogged batches");
}

bool ServeHarness::ApplyAndPublish(std::span<const incremental::UpdateEvent> events) {
  const bool durable = !durability_.dir.empty();
  if (durable) {
    RequireWal();
    // Log-then-apply: a batch the log never heard about must not reach the
    // solver. An append that fails with InternalError (real or injected
    // fsync/write error) repaired the file — the batch simply never
    // happened; serve the last good snapshot and mark it stale. An
    // InjectedFault (crash simulation) propagates with the torn tail left
    // on disk for RecoverFrom to truncate.
    try {
      wal_->Append(seq_ + 1, std::vector<incremental::UpdateEvent>(
                                 events.begin(), events.end()));
    } catch (const InternalError&) {
      stale_.store(true, std::memory_order_relaxed);
      throw;
    }
    ++seq_;
  }
  fail::Hit("serve.post_wal");  // crash window: logged but not applied

  bool feasible = false;
  try {
    feasible = solver_->Apply(events);
    fail::Hit("serve.post_apply");  // crash window: applied but not published
  } catch (const InvalidArgument&) {
    // Validation failure: the caller's batch was bad, the solver state is
    // untouched, the last snapshot is NOT stale — nothing was lost.
    throw;
  } catch (...) {
    stale_.store(true, std::memory_order_relaxed);
    throw;
  }

  PublishCurrent();
  stale_.store(false, std::memory_order_relaxed);
  if (durable) {
    ++applies_since_checkpoint_;
    MaybeCheckpoint();
  }
  return feasible;
}

void ServeHarness::Checkpoint() {
  if (durability_.dir.empty()) return;
  RequireWal();
  // A checkpoint failure throws InternalError but does NOT mark the
  // harness stale: the published snapshot is current and the WAL still
  // holds every batch — recovery just replays a longer tail.
  CheckpointState state{seq_, next_version_ - 1, Epoch(), solver_->Capacity(),
                        solver_->ExportOverlay()};
  WriteCheckpoint(durability_.dir, state);
  applies_since_checkpoint_ = 0;
  if (durability_.trim_on_checkpoint) {
    // TrimThrough rewrites the file; drop the handle first and reopen on
    // the trimmed log (its record count restarts, our seq_ does not).
    const std::string path = WalPath(durability_);
    wal_.reset();
    try {
      EventWal::TrimThrough(path, state.seq);
      wal_ = EventWal::OpenForAppend(path, durability_.sync_appends);
    } catch (...) {
      // Trim (or the reopen after it) failed. Whatever is on disk — the
      // untrimmed log or the trimmed replacement — is still a valid WAL
      // holding every post-checkpoint batch: re-engage it so one transient
      // I/O error cannot silently disable durability. If even the reopen
      // fails, wal_ stays empty and RequireWal() makes the next apply
      // refuse loudly rather than skip logging.
      try {
        wal_ = EventWal::OpenForAppend(path, durability_.sync_appends);
      } catch (...) {
        stale_.store(true, std::memory_order_relaxed);
      }
      throw;
    }
  }
}

void ServeHarness::MaybeCheckpoint() {
  if (durability_.checkpoint_every == 0) return;
  if (applies_since_checkpoint_ < durability_.checkpoint_every) return;
  try {
    Checkpoint();
    last_checkpoint_error_.clear();
  } catch (const InternalError& error) {
    // The batch already committed: logged, applied, published. Letting a
    // checkpoint error escape would make ApplyAndPublish look failed and
    // invite a retry that double-logs and double-applies the batch.
    // Contain it — the WAL still holds every batch, so durability is
    // intact — and surface it through LastCheckpointError() instead.
    // (fail::InjectedFault is not an InternalError and still unwinds:
    // crash simulations must propagate.)
    last_checkpoint_error_ = error.what();
    ++checkpoint_failures_;
  }
}

void ServeHarness::AdoptEpoch(std::uint64_t epoch) {
  RPT_REQUIRE(epoch >= Epoch(),
              "serve: epoch may not move backwards (have " +
                  std::to_string(Epoch()) + ", asked " + std::to_string(epoch) +
                  ")");
  if (!durability_.dir.empty()) {
    RequireWal();
    // Durable first, visible second: a promoted follower whose epoch bump
    // is not on disk could crash, recover at the old epoch, and accept a
    // deposed primary's stream — the exact split-brain fencing exists to
    // prevent.
    try {
      wal_->AppendEpoch(seq_ + 1, epoch);
    } catch (const InternalError&) {
      stale_.store(true, std::memory_order_relaxed);
      throw;
    }
    ++seq_;
  }
  epoch_.store(epoch, std::memory_order_relaxed);
}

QueryResponse ServeHarness::Query(const QueryRequest& request) const {
  const SnapshotStore::Ref ref = Pin();
  RPT_CHECK(ref);  // the constructor publishes before any caller can query
  QueryResponse response = Answer(*ref, request);
  response.stale = stale_.load(std::memory_order_relaxed);
  response.follower = follower_.load(std::memory_order_relaxed);
  queries_answered_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

}  // namespace rpt::serve
