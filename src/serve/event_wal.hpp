// Durable event log + snapshot checkpoints for the serving layer.
//
// ## WAL file format (`wal.log`)
//
// Binary, little-endian throughout:
//
//   magic   8 bytes   "RPTWAL1\0"
//   record* :
//     len   u32       payload byte count (1 .. kMaxWalRecordBytes)
//     crc   u32       CRC-32 (IEEE) of the payload bytes
//     payload:
//       seq     u64   batch sequence number (strictly increasing, first = 1)
//       count   u32   number of events in the batch, or kEpochMarker
//                     (0xFFFFFFFF) for an epoch record: the payload then
//                     carries one u64 — the new epoch. Epoch records consume
//                     a seq like any batch (recovery's contiguity check
//                     covers them) but apply nothing to the solver; they are
//                     how a promoted follower makes its fencing token
//                     durable (serve/repl_link.hpp).
//       event*  :
//         kind   u8   incremental::UpdateEvent::Kind
//         client u32  target node id
//         delta  u64  signed demand delta, two's-complement
//         value  u64  demand / capacity / edge length
//         parent u32  migration target
//         nspec  u32  SubtreeSpec node count (kAttachSubtree only, else 0)
//         spec-node* : kind u8 | parent u32 | delta u64 | requests u64
//
// A batch is logged BEFORE IncrementalSolver::Apply sees it — including
// batches Apply will reject. That ordering is the one that keeps the log and
// memory consistent under any single failure: an append that fails leaves
// the solver untouched, and a batch that fails validation is re-rejected
// deterministically on replay (Apply is a pure function of solver state and
// events). The alternative — log after Apply — can admit a state the log
// never heard about. Consequence: WAL `seq` counts attempted batches, while
// snapshot versions count successful ones; checkpoints record both.
//
// ## Torn-tail policy (the recovery invariant)
//
// `Read` walks records from the front and stops at the first invalid one
// (short header, insane len, short payload, CRC mismatch, or garbage after
// a valid parse). Then:
//   * if NO structurally valid record (sane len + matching CRC) can be
//     framed anywhere in the remaining bytes, the damage is a torn tail —
//     the classic crash-during-append shape. The tail is dropped
//     (`dropped_bytes` reports it) and recovery restores the exact state of
//     the preceding prefix.
//   * if a valid record DOES follow the damage, bytes the log once
//     committed are gone from the middle — that is interior corruption, not
//     a crash artifact, and replaying around the hole would fabricate a
//     state the system never passed through. Read throws InternalError:
//     loudly wrong beats silently wrong.
// Seq numbers must be strictly increasing across surviving records; a
// violation is also interior corruption (loud).
//
// ## Checkpoint file format (`ckpt-<seq 20 digits>.rpt`)
//
// Text, sealed by a trailing CRC line over every preceding byte:
//
//   rpt-ckpt v1
//   seq <last logged seq> version <last published version> capacity <W>
//   <rpt-overlay v1 body — tree/serialize.hpp, slot ids preserved>
//   crc <8 hex digits>
//
// The overlay body preserves slot ids including tombstones, so WAL-tail
// events recorded against pre-checkpoint ids replay against the restored
// state unchanged. Checkpoints are written tmp + fsync + rename (atomic:
// a crash mid-write leaves a stale tmp file, never a half checkpoint);
// `LoadNewestCheckpoint` verifies the CRC and falls back to the next-newest
// file — or to WAL-only recovery — when a checkpoint is damaged. The two
// newest checkpoints are retained; older ones are pruned after a
// successful write.
//
// ## Failpoints (support/failpoint.hpp)
//
//   wal.append       before any bytes are written (kThrow/kCrash)
//   wal.append.short kShortOp: write only `param` bytes, then die — the
//                    canonical torn-record producer
//   wal.sync         kError: treated as fsync failure — the torn append is
//                    repaired (file truncated back to the committed length)
//                    and InternalError thrown so the harness degrades
//   wal.trim         kError: TrimThrough fails before touching the file —
//                    the untrimmed log is left fully intact
//   ckpt.write       before the checkpoint tmp file is renamed into place
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "incremental/update_event.hpp"
#include "support/common.hpp"
#include "tree/tree_overlay.hpp"

namespace rpt::serve {

/// Hard sanity cap on one record's payload (a batch of ~10k topology events
/// stays far under this; a corrupted length field almost never does).
inline constexpr std::uint32_t kMaxWalRecordBytes = 1u << 20;

/// Marker value of the payload `count` field for epoch records.
inline constexpr std::uint32_t kEpochMarker = 0xFFFFFFFFu;

/// One logged record, as read back from the WAL: an event batch, or an
/// epoch bump (epoch_bump set, events empty).
struct WalBatch {
  std::uint64_t seq = 0;
  std::vector<incremental::UpdateEvent> events;
  bool epoch_bump = false;
  std::uint64_t epoch = 0;  ///< the new epoch (epoch records only)
};

/// Result of scanning a WAL file front-to-back.
struct WalReadResult {
  std::vector<WalBatch> batches;   ///< every intact record, in log order
  std::uint64_t valid_bytes = 0;   ///< prefix length covering `batches`
  std::uint64_t dropped_bytes = 0; ///< torn tail discarded past the prefix
};

/// Append-oriented handle on a WAL file. Not thread-safe: the ServeHarness
/// serializes ApplyAndPublish, and the WAL inherits that contract.
class EventWal {
 public:
  EventWal(EventWal&& other) noexcept;
  EventWal& operator=(EventWal&& other) noexcept;
  EventWal(const EventWal&) = delete;
  EventWal& operator=(const EventWal&) = delete;
  ~EventWal();

  /// Scans `path` and returns every intact batch plus the torn-tail
  /// accounting. A missing file reads as empty. Throws InternalError on
  /// interior corruption (see the torn-tail policy above) and
  /// InvalidArgument on a bad magic.
  [[nodiscard]] static WalReadResult Read(const std::string& path);

  /// Opens (creating if absent) `path` for appending. A torn tail found
  /// during the opening scan is truncated away first, so every subsequent
  /// append lands on a clean committed prefix. With `sync` set, each append
  /// is fsync'd before it is reported durable.
  [[nodiscard]] static EventWal OpenForAppend(const std::string& path,
                                              bool sync = true);

  /// Serializes and appends one batch record. On an injected or real I/O
  /// failure the file is truncated back to the last committed record and
  /// InternalError is thrown (the append simply never happened); an
  /// injected crash (fail::InjectedFault / process exit) leaves the torn
  /// tail in place for recovery to find. `seq` must exceed the last
  /// committed seq.
  void Append(std::uint64_t seq,
              const std::vector<incremental::UpdateEvent>& events);

  /// Appends one epoch record (the durable fencing token of a promoted
  /// follower). Same failure/repair semantics as Append.
  void AppendEpoch(std::uint64_t seq, std::uint64_t epoch);

  /// Last sequence number committed to this handle's file (0 when empty).
  [[nodiscard]] std::uint64_t LastSeq() const noexcept { return last_seq_; }

  /// Committed file length in bytes (magic included).
  [[nodiscard]] std::uint64_t CommittedBytes() const noexcept {
    return committed_bytes_;
  }

  /// Rewrites `path` keeping only records with seq > `through_seq` (atomic
  /// tmp + rename). Called after a checkpoint to bound replay length.
  static void TrimThrough(const std::string& path, std::uint64_t through_seq);

  /// Serializes one batch payload (exposed for the corpus tests, which
  /// need to know CRC-covered byte ranges to flip).
  [[nodiscard]] static std::string EncodeBatchPayload(
      std::uint64_t seq, const std::vector<incremental::UpdateEvent>& events);

  /// Serializes one epoch-record payload.
  [[nodiscard]] static std::string EncodeEpochPayload(std::uint64_t seq,
                                                      std::uint64_t epoch);

  /// Wraps a payload in the on-disk record framing (len u32 | crc u32 |
  /// payload) — the exact bytes Append writes and the replication link
  /// ships.
  [[nodiscard]] static std::string FrameRecord(const std::string& payload);

  /// Decodes one framed record (as produced by FrameRecord). Returns
  /// nullopt on structural damage (short frame, insane len, CRC mismatch,
  /// trailing bytes) — the transport-corruption shape a replication
  /// follower answers with a resync, never an apply. Throws InternalError
  /// when the CRC matches but the payload does not parse (a writer bug or
  /// version skew — loud, not retryable).
  [[nodiscard]] static std::optional<WalBatch> TryDecodeFramedRecord(
      const std::string& frame);

 private:
  EventWal() = default;

  void AppendPayload(std::uint64_t seq, const std::string& payload);

  int fd_ = -1;
  std::string path_;
  bool sync_ = true;
  std::uint64_t committed_bytes_ = 0;
  std::uint64_t last_seq_ = 0;
};

/// Everything a checkpoint captures: the solver's topology+demand state as
/// a self-contained overlay, the capacity, and the two counters recovery
/// must re-seed (`seq` = last batch logged when the checkpoint was cut,
/// `version` = last snapshot version published).
struct CheckpointState {
  std::uint64_t seq = 0;
  std::uint64_t version = 0;
  std::uint64_t epoch = 1;  ///< replication fencing epoch at checkpoint time
  Requests capacity = 0;
  TreeOverlay overlay;
};

/// Atomically writes `state` into `dir` as `ckpt-<seq>.rpt` and prunes all
/// but the two newest checkpoints. Throws InternalError on I/O failure.
void WriteCheckpoint(const std::string& dir, const CheckpointState& state);

/// Returns the newest checkpoint in `dir` that passes its CRC and parses
/// cleanly; damaged or partial files are skipped (recovery falls back to
/// an older checkpoint or a full WAL replay). nullopt when none survive.
/// Fallback is only SAFE when the WAL still covers every batch past the
/// fallback point — ServeHarness::RecoverFrom enforces that with a seq
/// contiguity check, so a damaged newest checkpoint whose records were
/// already trimmed out of the WAL fails loudly instead of rolling back.
[[nodiscard]] std::optional<CheckpointState> LoadNewestCheckpoint(
    const std::string& dir);

/// Highest checkpoint seq advertised by any `ckpt-<seq>.rpt` filename in
/// `dir`, loadable or not (0 when none). Recovery compares it against the
/// seq it actually reached: a larger advertised seq means the newest
/// checkpoint is damaged AND the batches it covered are gone from the
/// (trimmed) WAL — a gap that must refuse recovery, not silently lose data.
[[nodiscard]] std::uint64_t NewestCheckpointSeqHint(const std::string& dir);

}  // namespace rpt::serve
