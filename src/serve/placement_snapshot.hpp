// PlacementSnapshot — one immutable, query-ready view of a solved placement.
//
// The serve layer (src/serve/) answers long-lived query traffic against the
// *current* placement while the IncrementalSolver applies update batches in
// the background. The unit of publication is this snapshot: everything a
// query can ask about one solved state, baked into flat NodeId-indexed
// buffers at build time so every query is a pure read — no locks, no
// lazy caches, no allocation. A snapshot is immutable after Build(); the
// SnapshotStore (snapshot_store.hpp) owns publication and reclamation.
//
// Flat buffers (all NodeId-indexed, mmap/shm-friendly — plain integer
// columns, no pointers at all):
//  * the rootward skeleton: parent, edge length, and live flag per node —
//    copied out of the solver's TopologyView at build time, so a pinned
//    snapshot stays valid while the solver mutates (or compacts) its
//    topology underneath;
//  * replica flag + per-replica load and residual capacity (W - load);
//  * subtree-aggregated residual capacity and replica count (one post-order
//    pass at build time, so "capacity under s" is O(1) at query time);
//  * the routing CSR: per-client (server, amount) spans in canonical order.
//
// Query surface (all const, safe from any number of threads concurrently):
//  * ServersOf(c)/PrimaryServerOf(c) — "which replica serves client c?"
//  * ResidualUnder(s)/ReplicasUnder(s) — "spare capacity below s?"  O(1)
//  * AttachAt(v, d) — "cost of attaching d requests at node v?": nearest
//    ancestor-or-self replica with residual >= d, O(depth) rootward walk.
//
// Ownership/lifetime: fully self-contained — topology skeleton, demand,
// placement, and residuals are all copied at Build() time, so the solver may
// mutate its own state (including attach/detach/migrate topology events and
// overlay compaction) freely after Build() while readers keep querying
// pinned snapshots.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "model/solution.hpp"
#include "tree/topology_view.hpp"
#include "tree/tree.hpp"

namespace rpt::serve {

/// One (server, amount) block of a client's routing plan.
struct RouteEntry {
  NodeId server = kInvalidNode;
  Requests amount = 0;

  friend bool operator==(const RouteEntry&, const RouteEntry&) = default;
};

/// Result of an AttachAt probe. `feasible` is false when no ancestor replica
/// has enough residual capacity (distance/server are then meaningless).
struct AttachResult {
  bool feasible = false;
  NodeId server = kInvalidNode;  ///< nearest fitting ancestor-or-self replica
  Distance distance = 0;         ///< path distance from the probe node to it

  friend bool operator==(const AttachResult&, const AttachResult&) = default;
};

class PlacementSnapshot {
 public:
  /// Bakes one solved state into an immutable snapshot. `view` is the
  /// topology at publish time (base Tree or overlay — everything needed is
  /// copied out of it, including tombstones), `demand` the per-node demand
  /// column (size view.Size(); internal and dead entries 0) and `solution`
  /// the canonical placement for exactly that state (replica loads and
  /// residuals are derived from its assignment). An infeasible state is
  /// represented by an empty solution — the snapshot then has no replicas
  /// and every attach probe fails. `version` is the publisher's monotone
  /// sequence number.
  static std::unique_ptr<const PlacementSnapshot> Build(TopologyView view, Requests capacity,
                                                        std::span<const Requests> demand,
                                                        const Solution& solution,
                                                        std::uint64_t version);

  PlacementSnapshot(const PlacementSnapshot&) = delete;
  PlacementSnapshot& operator=(const PlacementSnapshot&) = delete;

  [[nodiscard]] std::uint64_t Version() const noexcept { return version_; }
  [[nodiscard]] Requests Capacity() const noexcept { return capacity_; }
  /// Allocated node slots at publish time (dead overlay ids included).
  [[nodiscard]] std::size_t Size() const noexcept { return demand_.size(); }
  /// True iff `node` was live when the snapshot was published. Queries on
  /// dead ids answer ok=false rather than throwing — a client may race a
  /// detach and still hold the id.
  [[nodiscard]] bool IsLive(NodeId node) const { return alive_[Check(node)] != 0; }
  /// Parent of `node` in the published topology (kInvalidNode for the root
  /// and for dead slots).
  [[nodiscard]] NodeId ParentOf(NodeId node) const { return parent_[Check(node)]; }
  /// Path distance from `node` up to `ancestor` in the published topology;
  /// throws InvalidArgument when `ancestor` is not on node's root path.
  [[nodiscard]] Distance DistToAncestor(NodeId node, NodeId ancestor) const;
  [[nodiscard]] bool Feasible() const noexcept { return feasible_; }
  [[nodiscard]] std::size_t ReplicaCount() const noexcept { return replica_count_; }
  [[nodiscard]] Requests DemandOf(NodeId node) const { return demand_[Check(node)]; }
  [[nodiscard]] Requests TotalDemand() const noexcept { return total_demand_; }

  /// True iff a replica sits on `node` in this snapshot.
  [[nodiscard]] bool IsReplica(NodeId node) const { return residual_valid_[Check(node)] != 0; }

  /// Load routed to the replica at `node` (0 for non-replicas).
  [[nodiscard]] Requests LoadOf(NodeId node) const { return load_[Check(node)]; }

  /// Residual capacity W - load of the replica at `node`; 0 for non-replicas.
  [[nodiscard]] Requests ResidualOf(NodeId node) const { return residual_[Check(node)]; }

  /// Summed residual capacity of all replicas in subtree(node). O(1).
  [[nodiscard]] Requests ResidualUnder(NodeId node) const {
    return subtree_residual_[Check(node)];
  }

  /// Number of replicas in subtree(node). O(1).
  [[nodiscard]] std::uint32_t ReplicasUnder(NodeId node) const {
    return subtree_replicas_[Check(node)];
  }

  /// The client's routing plan, canonical (ascending server id). Empty for
  /// internal nodes, zero-demand clients, and infeasible snapshots.
  [[nodiscard]] std::span<const RouteEntry> ServersOf(NodeId client) const {
    Check(client);
    return {routes_.data() + route_begin_[client], routes_.data() + route_begin_[client + 1]};
  }

  /// The replica serving the largest share of the client's demand (ties
  /// break toward the smaller node id, so the answer is deterministic);
  /// kInvalidNode when the client is unserved. O(#servers) <= O(depth).
  [[nodiscard]] NodeId PrimaryServerOf(NodeId client) const;

  /// Nearest ancestor-or-self replica of `node` with residual >= demand —
  /// the cost of attaching that much new demand at `node` without moving
  /// any replica. O(depth) rootward walk. demand == 0 probes for the
  /// nearest replica regardless of spare capacity.
  [[nodiscard]] AttachResult AttachAt(NodeId node, Requests demand) const;

  /// FNV-1a over every buffer, topology skeleton included: two snapshots of
  /// the same state hash identically on any machine, and a pure topology
  /// change (e.g. a migration that moves no replica) still changes the hash.
  /// Deterministic anchor for the serve bench's det-json and the
  /// swap-torture tests.
  [[nodiscard]] std::uint64_t CanonicalHash() const noexcept;

 private:
  PlacementSnapshot() = default;

  NodeId Check(NodeId id) const {
    RPT_REQUIRE(id < demand_.size(), "PlacementSnapshot: node id out of range");
    return id;
  }

  std::uint64_t version_ = 0;
  Requests capacity_ = 0;
  Requests total_demand_ = 0;
  bool feasible_ = false;
  std::size_t replica_count_ = 0;
  // Rootward topology skeleton copied at build time (self-contained).
  std::vector<NodeId> parent_;
  std::vector<Distance> dist_parent_;
  std::vector<std::uint8_t> alive_;
  std::vector<Requests> demand_;
  std::vector<Requests> load_;
  std::vector<Requests> residual_;
  std::vector<std::uint8_t> residual_valid_;  // 1 iff a replica sits here
  std::vector<Requests> subtree_residual_;
  std::vector<std::uint32_t> subtree_replicas_;
  std::vector<std::uint32_t> route_begin_;  // CSR offsets, size n+1
  std::vector<RouteEntry> routes_;
};

}  // namespace rpt::serve
