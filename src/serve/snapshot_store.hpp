// SnapshotStore — double-buffered publication of immutable snapshots with
// atomic publish and reader draining (the zero-downtime swap in rpt-serve).
//
// The serving shape: many reader threads answer queries against the current
// PlacementSnapshot while exactly ONE publisher thread builds and publishes
// fresh snapshots. The store holds two slots; at any instant one of them is
// `current`. Protocol:
//
//  * Readers pin — Acquire() increments the current slot's refcount and
//    re-checks currency; the returned RAII Ref keeps the snapshot alive for
//    as long as the reader holds it. Readers NEVER block and never observe
//    a torn or reclaimed snapshot: a slot's buffer is mutated only while
//    its refcount is zero AND it is not current.
//  * The publisher swaps — Publish(snapshot) installs into the spare
//    (non-current) slot and flips `current` with a release store. Before
//    reusing the spare slot it WAITS for that slot's refcount to drain to
//    zero: the buffer from two publishes ago is reclaimed only after the
//    last reader pinning it detached. Publishing can therefore block
//    (bounded by the longest outstanding query); queries never do.
//
// This is the OSRM shared-memory dataset-swap discipline (publish new
// region, flip the timestamp, WaitForDetach before removing the old one)
// in-process: refcounts instead of shm attach counts.
//
// Thread-safety: Acquire() from any thread; Publish() from one publisher
// thread at a time (a second concurrent publisher is a contract violation,
// guarded in debug by an atomic flag). Refs may be copied/moved across
// threads; each copy holds its own pin.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "serve/placement_snapshot.hpp"
#include "support/common.hpp"

namespace rpt::serve {

class SnapshotStore {
 public:
  /// RAII pin on one published snapshot. Empty (falsy) when acquired before
  /// the first publish. Copyable — every copy takes its own pin.
  class Ref {
   public:
    Ref() = default;
    Ref(const Ref& other) noexcept;
    Ref(Ref&& other) noexcept;
    Ref& operator=(Ref other) noexcept;
    ~Ref();

    [[nodiscard]] explicit operator bool() const noexcept { return snapshot_ != nullptr; }
    [[nodiscard]] const PlacementSnapshot& operator*() const noexcept { return *snapshot_; }
    [[nodiscard]] const PlacementSnapshot* operator->() const noexcept { return snapshot_; }
    [[nodiscard]] const PlacementSnapshot* get() const noexcept { return snapshot_; }

    /// Detaches early (idempotent); the Ref becomes empty.
    void Release() noexcept;

   private:
    friend class SnapshotStore;
    Ref(const PlacementSnapshot* snapshot, std::atomic<std::uint64_t>* pins) noexcept
        : snapshot_(snapshot), pins_(pins) {}

    const PlacementSnapshot* snapshot_ = nullptr;
    std::atomic<std::uint64_t>* pins_ = nullptr;
  };

  SnapshotStore() = default;
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Destroying the store while Refs are outstanding is a use-after-free by
  /// construction; the destructor drains both slots to make the bug loud at
  /// the drain instead of silent at the dangling read.
  ~SnapshotStore();

  /// Pins and returns the current snapshot; empty Ref before first publish.
  /// Wait-free apart from the (rare) retry when a publish lands between the
  /// pin and the currency re-check. Any thread.
  [[nodiscard]] Ref Acquire() const noexcept;

  /// Atomically publishes `snapshot` as the new current. Blocks until the
  /// spare slot's readers (from two publishes ago) have all detached, then
  /// reclaims that buffer. Single publisher thread only.
  void Publish(std::unique_ptr<const PlacementSnapshot> snapshot);

  /// Number of successful Publish() calls so far.
  [[nodiscard]] std::uint64_t Publishes() const noexcept {
    return publishes_.load(std::memory_order_acquire);
  }

  /// Version of the currently published snapshot (0 before first publish).
  [[nodiscard]] std::uint64_t CurrentVersion() const noexcept;

 private:
  struct Slot {
    std::atomic<std::uint64_t> pins{0};
    std::unique_ptr<const PlacementSnapshot> snapshot;
  };

  mutable Slot slots_[2];
  std::atomic<int> current_{-1};  // -1 until the first publish
  std::atomic<std::uint64_t> publishes_{0};
  std::atomic<bool> publishing_{false};  // catches concurrent publishers
};

}  // namespace rpt::serve
