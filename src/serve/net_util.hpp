// Shared blocking-socket plumbing for the serve layer's two wire surfaces:
// the query front-end (tcp_server.cpp) and the replication link
// (repl_link.cpp). Both speak the same outer framing — a 4-byte
// little-endian length prefix followed by that many payload bytes — over
// loopback TCP with SO_RCVTIMEO/SO_SNDTIMEO bounding every operation.
//
// This is an implementation header (included from .cpp files only): it
// pulls in <sys/socket.h> and friends, which the public headers keep out
// of the include graph.
#pragma once

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>

#include "support/common.hpp"

namespace rpt::serve::net {

enum class IoStatus { kOk, kClosed, kTimeout };

// Full-buffer read/write with EINTR retry. With SO_RCVTIMEO/SO_SNDTIMEO set,
// an expired wait surfaces as EAGAIN/EWOULDBLOCK — reported as kTimeout so
// callers can count it or throw TimeoutError; EOF and hard errors are
// kClosed ("connection over" either way).
inline IoStatus ReadFull(int fd, std::uint8_t* buf, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, buf + done, len - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return IoStatus::kTimeout;
    } else {
      return IoStatus::kClosed;
    }
  }
  return IoStatus::kOk;
}

inline IoStatus WriteFull(int fd, const std::uint8_t* buf, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    // MSG_NOSIGNAL: a peer that disconnected mid-exchange must surface as
    // EPIPE (-> kClosed), not deliver a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, buf + done, len - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
    } else if (n == 0) {
      // send() made no progress and set no errno; classifying by leftover
      // errno could spin forever (stale EINTR) or misreport a timeout.
      return IoStatus::kClosed;
    } else if (errno == EINTR) {
      continue;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoStatus::kTimeout;
    } else {
      return IoStatus::kClosed;
    }
  }
  return IoStatus::kOk;
}

inline std::uint32_t DecodePrefix(const std::uint8_t prefix[4]) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  }
  return v;
}

inline void CloseQuiet(int fd) {
  if (fd >= 0) ::close(fd);
}

inline void SetNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

inline void SetIoTimeouts(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Bounded loopback connect: non-blocking connect + poll for writability,
/// then back to blocking with per-op timeouts. Returns the connected fd.
/// `on_fail(what, is_timeout)` is called (and must throw) on any failure —
/// the caller picks its exception types; the socket is closed first.
template <typename FailFn>
int ConnectLoopback(std::uint16_t port, int connect_timeout_ms,
                    int io_timeout_ms, FailFn&& on_fail) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  RPT_CHECK(fd >= 0);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);

  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const auto fail = [&](const std::string& what, bool timeout) {
    CloseQuiet(fd);
    on_fail(what, timeout);  // must throw
    RPT_CHECK(false);
  };
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      fail(std::string("connect failed: ") + std::strerror(errno), false);
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout = connect_timeout_ms > 0 ? connect_timeout_ms : -1;
    const int ready = ::poll(&pfd, 1, timeout);
    if (ready == 0) fail("connect timed out", true);
    if (ready < 0) {
      fail(std::string("connect poll failed: ") + std::strerror(errno), false);
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
    if (err != 0) fail(std::string("connect failed: ") + std::strerror(err), false);
  }
  ::fcntl(fd, F_SETFL, flags);
  SetIoTimeouts(fd, io_timeout_ms);
  return fd;
}

/// Binds and listens on 127.0.0.1:`port` (0 = pick a free port). Returns
/// {fd, bound port}; throws InternalError if the socket layer refuses.
struct ListenSocket {
  int fd = -1;
  std::uint16_t port = 0;
};

inline ListenSocket ListenLoopback(std::uint16_t port, int backlog = 64) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  RPT_CHECK(fd >= 0);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    const int err = errno;
    CloseQuiet(fd);
    throw InternalError(std::string("serve: bind/listen failed: ") +
                        std::strerror(err));
  }
  socklen_t addr_len = sizeof(addr);
  RPT_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) == 0);
  return ListenSocket{fd, ntohs(addr.sin_port)};
}

/// Sends one length-prefixed frame. kOk only when prefix and payload both
/// land fully. Prefix and payload go out in a single write: two small
/// writes per frame would hand Nagle + delayed-ACK a ~40 ms stall on every
/// synchronous request/ack round trip.
inline IoStatus SendFrame(int fd, const std::string& payload) {
  std::string wire;
  wire.reserve(4 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) wire.push_back(static_cast<char>(len >> (8 * i)));
  wire.append(payload);
  return WriteFull(fd, reinterpret_cast<const std::uint8_t*>(wire.data()),
                   wire.size());
}

/// ReadFull that rides through SO_RCVTIMEO expiries once a read has begun:
/// used for the tail of a frame, where bailing out on an idle tick would
/// leave the stream misaligned. Bounded — `max_stall_ticks` consecutive
/// empty waits (peer froze mid-frame) report kClosed, never a silent hang.
inline IoStatus ReadFullPatient(int fd, std::uint8_t* buf, std::size_t len,
                                int max_stall_ticks) {
  std::size_t done = 0;
  int stalls = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, buf + done, len - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      stalls = 0;
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (++stalls >= max_stall_ticks) return IoStatus::kClosed;
    } else {
      return IoStatus::kClosed;
    }
  }
  return IoStatus::kOk;
}

/// Receives one length-prefixed frame into `payload`. kClosed on EOF or a
/// frame longer than `max_bytes` (desync — nothing sane to read after it).
///
/// Timeout contract: kTimeout is only ever returned with ZERO bytes
/// consumed (an idle tick between frames — the caller may loop and call
/// again). Once the first prefix byte has arrived, the rest of the frame
/// is read patiently: a short SO_RCVTIMEO used as a poll interval (the
/// replication link's silence tick) can never split a frame and desync
/// the stream. A peer that stalls mid-frame for `max_stall_ticks`
/// consecutive timeouts is reported kClosed.
inline IoStatus RecvFrame(int fd, std::string& payload, std::uint32_t max_bytes,
                          int max_stall_ticks = 64) {
  std::uint8_t prefix[4];
  const IoStatus first = ReadFull(fd, prefix, 1);
  if (first != IoStatus::kOk) return first;  // clean boundary: frame not begun
  const IoStatus rest = ReadFullPatient(fd, prefix + 1, 3, max_stall_ticks);
  if (rest != IoStatus::kOk) return IoStatus::kClosed;
  const std::uint32_t len = DecodePrefix(prefix);
  if (len > max_bytes) return IoStatus::kClosed;
  payload.resize(len);
  if (len == 0) return IoStatus::kOk;
  const IoStatus ps = ReadFullPatient(
      fd, reinterpret_cast<std::uint8_t*>(payload.data()), len, max_stall_ticks);
  return ps == IoStatus::kOk ? IoStatus::kOk : IoStatus::kClosed;
}

}  // namespace rpt::serve::net
