// Dinic's maximum-flow algorithm.
//
// This is the feasibility oracle for the Multiple policy: given a fixed
// replica placement, requests can be routed iff the max flow in the bipartite
// client -> eligible-server network (source -> client with capacity r_i,
// server -> sink with capacity W) saturates all client arcs. The exact
// Multiple solver and the validator-driven tests both rely on it.
//
// Complexity O(V^2 E) in general, O(E sqrt(V)) on unit-ish bipartite graphs —
// far more than enough for the instance sizes the exact solver enumerates.
#pragma once

#include <cstdint>
#include <vector>

#include "support/common.hpp"

namespace rpt::flow {

/// Flow value type (request counts fit easily).
using FlowValue = std::uint64_t;

/// Edge handle returned by AddEdge; use it to query routed flow afterwards.
using EdgeId = std::size_t;

/// A reusable max-flow network. Add nodes and edges, call Compute, then read
/// per-edge flows. Compute runs Dinic to completion; a further Compute call
/// on the same object continues on the residual graph and reports only the
/// additional flow (0 for a repeated query). The BFS level/queue scratch
/// lives in the object and is reused across phases and Compute calls, so
/// the solve loop performs no per-phase allocation.
class MaxFlow {
 public:
  /// Creates a network with `node_count` nodes (ids 0..node_count-1).
  explicit MaxFlow(std::size_t node_count);

  /// Adds a directed edge u -> v with the given capacity; returns its handle.
  EdgeId AddEdge(std::size_t from, std::size_t to, FlowValue capacity);

  /// Runs Dinic from `source` to `sink`; returns the max flow value.
  /// Degenerate queries (source == sink, e.g. on a single-node network)
  /// report zero flow.
  FlowValue Compute(std::size_t source, std::size_t sink);

  /// Flow routed on an edge (only meaningful after Compute).
  [[nodiscard]] FlowValue FlowOn(EdgeId edge) const;

  /// Number of nodes.
  [[nodiscard]] std::size_t NodeCount() const noexcept { return head_.size(); }

 private:
  struct Edge {
    std::uint32_t to;
    std::uint32_t next;  // next edge index in adjacency list, or kNil
    FlowValue capacity;  // residual capacity
  };
  static constexpr std::uint32_t kNil = static_cast<std::uint32_t>(-1);

  bool Bfs(std::size_t source, std::size_t sink);
  FlowValue Dfs(std::size_t node, std::size_t sink, FlowValue limit);

  std::vector<Edge> edges_;          // paired: edge 2k is forward, 2k+1 backward
  std::vector<std::uint32_t> head_;  // adjacency heads
  std::vector<std::uint32_t> level_;
  std::vector<std::uint32_t> iter_;
  std::vector<std::uint32_t> queue_;  // reusable BFS queue (head-index scan)
  std::vector<FlowValue> initial_capacity_;  // per forward edge, for FlowOn
};

}  // namespace rpt::flow
