#include "flow/assignment.hpp"

#include <unordered_map>

#include "flow/dinic.hpp"

namespace rpt::flow {

std::optional<std::vector<ServiceEntry>> RouteMultiple(const Instance& instance,
                                                       std::span<const NodeId> replicas) {
  const Tree& tree = instance.GetTree();

  // Compact ids: 0 = source, 1 = sink, then clients, then replicas.
  const auto clients = tree.Clients();
  std::unordered_map<NodeId, std::size_t> replica_index;
  replica_index.reserve(replicas.size());
  for (NodeId replica : replicas) {
    RPT_REQUIRE(replica < tree.Size(), "RouteMultiple: replica id out of range");
    replica_index.emplace(replica, 2 + clients.size() + replica_index.size());
  }

  MaxFlow net(2 + clients.size() + replica_index.size());
  Requests total = 0;
  std::vector<std::tuple<NodeId, NodeId, EdgeId>> routed_edges;  // (client, server, edge)
  for (std::size_t c = 0; c < clients.size(); ++c) {
    const NodeId client = clients[c];
    const Requests demand = tree.RequestsOf(client);
    if (demand == 0) continue;
    total += demand;
    net.AddEdge(0, 2 + c, demand);
    for (const auto& [replica, node] : replica_index) {
      if (instance.CanServe(client, replica)) {
        routed_edges.emplace_back(client, replica, net.AddEdge(2 + c, node, demand));
      }
    }
  }
  for (const auto& [replica, node] : replica_index) {
    net.AddEdge(node, 1, instance.Capacity());
  }

  if (net.Compute(0, 1) != total) return std::nullopt;

  std::vector<ServiceEntry> assignment;
  assignment.reserve(routed_edges.size());
  for (const auto& [client, server, edge] : routed_edges) {
    const FlowValue amount = net.FlowOn(edge);
    if (amount > 0) assignment.push_back(ServiceEntry{client, server, amount});
  }
  return assignment;
}

bool MultipleFeasible(const Instance& instance, std::span<const NodeId> replicas) {
  return RouteMultiple(instance, replicas).has_value();
}

}  // namespace rpt::flow
