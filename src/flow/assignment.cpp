#include "flow/assignment.hpp"

#include <algorithm>
#include <tuple>

#include "flow/dinic.hpp"

namespace rpt::flow {

std::optional<std::vector<ServiceEntry>> RouteMultiple(const Instance& instance,
                                                       std::span<const NodeId> replicas) {
  const Tree& tree = instance.GetTree();

  // Compact ids: 0 = source, 1 = sink, then clients, then replicas. The
  // replica lookup is a flat NodeId-indexed column (kNoFlowNode when
  // the node hosts no replica), so network construction is hash-free and
  // the edge order — hence the routed assignment — is deterministic in the
  // order replicas were passed.
  constexpr std::size_t kNoFlowNode = static_cast<std::size_t>(-1);
  const auto clients = tree.Clients();
  std::vector<std::size_t> flow_node_of(tree.Size(), kNoFlowNode);
  std::vector<NodeId> replica_order;
  replica_order.reserve(replicas.size());
  for (NodeId replica : replicas) {
    RPT_REQUIRE(replica < tree.Size(), "RouteMultiple: replica id out of range");
    if (flow_node_of[replica] != kNoFlowNode) continue;  // duplicate replica id
    flow_node_of[replica] = 2 + clients.size() + replica_order.size();
    replica_order.push_back(replica);
  }

  MaxFlow net(2 + clients.size() + replica_order.size());
  Requests total = 0;
  std::vector<std::tuple<NodeId, NodeId, EdgeId>> routed_edges;  // (client, server, edge)
  std::vector<std::size_t> eligible;  // flow-node ids of one client's servers
  for (std::size_t c = 0; c < clients.size(); ++c) {
    const NodeId client = clients[c];
    const Requests demand = tree.RequestsOf(client);
    if (demand == 0) continue;
    total += demand;
    net.AddEdge(0, 2 + c, demand);
    // A client's eligible servers all sit on its root path, so walk the
    // ancestor chain (O(depth)) instead of scanning the whole replica set.
    // Sorting by flow-node id restores the replica-argument order, keeping
    // the edge order — and therefore the routed assignment — exactly what a
    // full replica scan would have produced.
    eligible.clear();
    for (NodeId ancestor = client;; ancestor = tree.Parent(ancestor)) {
      if (flow_node_of[ancestor] != kNoFlowNode && instance.CanServe(client, ancestor)) {
        eligible.push_back(flow_node_of[ancestor]);
      }
      if (ancestor == tree.Root()) break;
    }
    std::sort(eligible.begin(), eligible.end());
    for (const std::size_t flow_node : eligible) {
      const NodeId replica = replica_order[flow_node - 2 - clients.size()];
      routed_edges.emplace_back(client, replica, net.AddEdge(2 + c, flow_node, demand));
    }
  }
  for (const NodeId replica : replica_order) {
    net.AddEdge(flow_node_of[replica], 1, instance.Capacity());
  }

  if (net.Compute(0, 1) != total) return std::nullopt;

  std::vector<ServiceEntry> assignment;
  assignment.reserve(routed_edges.size());
  for (const auto& [client, server, edge] : routed_edges) {
    const FlowValue amount = net.FlowOn(edge);
    if (amount > 0) assignment.push_back(ServiceEntry{client, server, amount});
  }
  return assignment;
}

bool MultipleFeasible(const Instance& instance, std::span<const NodeId> replicas) {
  return RouteMultiple(instance, replicas).has_value();
}

}  // namespace rpt::flow
