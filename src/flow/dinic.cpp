#include "flow/dinic.hpp"

#include <algorithm>
#include <limits>

namespace rpt::flow {

MaxFlow::MaxFlow(std::size_t node_count) : head_(node_count, kNil) {
  RPT_REQUIRE(node_count >= 1, "MaxFlow: need at least one node");
}

EdgeId MaxFlow::AddEdge(std::size_t from, std::size_t to, FlowValue capacity) {
  RPT_REQUIRE(from < head_.size() && to < head_.size(), "MaxFlow: node id out of range");
  RPT_REQUIRE(from != to, "MaxFlow: self loops not supported");
  const EdgeId id = edges_.size();
  edges_.push_back(Edge{static_cast<std::uint32_t>(to), head_[from], capacity});
  head_[from] = static_cast<std::uint32_t>(id);
  edges_.push_back(Edge{static_cast<std::uint32_t>(from), head_[to], 0});
  head_[to] = static_cast<std::uint32_t>(id + 1);
  initial_capacity_.push_back(capacity);
  return id;
}

bool MaxFlow::Bfs(std::size_t source, std::size_t sink) {
  // level_ and queue_ are members: their capacity survives across phases and
  // Compute calls, so a BFS allocates nothing after the first phase.
  level_.assign(head_.size(), kNil);
  queue_.clear();
  level_[source] = 0;
  queue_.push_back(static_cast<std::uint32_t>(source));
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const std::uint32_t node = queue_[head];
    for (std::uint32_t e = head_[node]; e != kNil; e = edges_[e].next) {
      const Edge& edge = edges_[e];
      if (edge.capacity > 0 && level_[edge.to] == kNil) {
        level_[edge.to] = level_[node] + 1;
        queue_.push_back(edge.to);
      }
    }
  }
  return level_[sink] != kNil;
}

FlowValue MaxFlow::Dfs(std::size_t node, std::size_t sink, FlowValue limit) {
  if (node == sink || limit == 0) return limit;
  FlowValue pushed = 0;
  for (std::uint32_t& e = iter_[node]; e != kNil; e = edges_[e].next) {
    Edge& edge = edges_[e];
    if (edge.capacity == 0 || level_[edge.to] != level_[node] + 1) continue;
    const FlowValue sent = Dfs(edge.to, sink, std::min(limit - pushed, edge.capacity));
    if (sent == 0) continue;
    edge.capacity -= sent;
    edges_[e ^ 1].capacity += sent;
    pushed += sent;
    if (pushed == limit) break;
  }
  if (pushed == 0) level_[node] = kNil;  // dead end; prune
  return pushed;
}

FlowValue MaxFlow::Compute(std::size_t source, std::size_t sink) {
  RPT_REQUIRE(source < head_.size() && sink < head_.size(), "MaxFlow: bad source/sink");
  // Degenerate networks (single node, source == sink) carry zero flow.
  if (source == sink) return 0;
  FlowValue total = 0;
  while (Bfs(source, sink)) {
    iter_ = head_;
    while (true) {
      const FlowValue sent = Dfs(source, sink, std::numeric_limits<FlowValue>::max());
      if (sent == 0) break;
      total += sent;
    }
  }
  return total;
}

FlowValue MaxFlow::FlowOn(EdgeId edge) const {
  RPT_REQUIRE(edge < initial_capacity_.size() * 2 && edge % 2 == 0,
              "MaxFlow: FlowOn expects a forward edge handle");
  // Flow = initial capacity - residual capacity.
  return initial_capacity_[edge / 2] - edges_[edge].capacity;
}

}  // namespace rpt::flow
