// Flow-based assignment feasibility for a fixed replica placement under the
// Multiple policy.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "model/instance.hpp"
#include "model/solution.hpp"

namespace rpt::flow {

/// Checks whether the given replica set can serve all requests under the
/// Multiple policy (splitting allowed) with capacity W and distance dmax.
/// On success returns the full routing; otherwise std::nullopt.
///
/// Network: source -> client (cap r_i) -> each eligible replica (cap r_i)
/// -> sink (cap W). Feasible iff max flow == total requests.
[[nodiscard]] std::optional<std::vector<ServiceEntry>> RouteMultiple(
    const Instance& instance, std::span<const NodeId> replicas);

/// Convenience: true iff the placement is feasible under Multiple.
[[nodiscard]] bool MultipleFeasible(const Instance& instance, std::span<const NodeId> replicas);

}  // namespace rpt::flow
