// Deterministic random event-trace generator for streaming experiments.
//
// Produces a per-tick batch list (the shape sim::Replay's streaming mode,
// bench_incremental, and the equivalence tests consume) that is always
// *legal* for IncrementalSolver::Apply: the generator tracks the evolving
// demand state, so deltas never drive a client negative, adds only target
// idle clients, and removes only target active ones. Deterministic in
// (tree, config, seed) — the same trace replays bit-for-bit anywhere.
#pragma once

#include <cstdint>
#include <vector>

#include "incremental/update_event.hpp"
#include "tree/tree.hpp"

namespace rpt::incremental {

/// Shape of the generated stream.
struct TraceConfig {
  std::uint64_t ticks = 100;           ///< number of per-tick batches
  std::uint32_t touches_per_tick = 1;  ///< events per batch (>= 1)
  /// New demands are drawn uniformly from [0, max_demand]; keep
  /// max_demand <= W when the trace also feeds Single-policy solvers.
  Requests max_demand = 10;
  /// Fraction of touches emitted as kClientAdd/kClientRemove transitions
  /// (when legal for the picked client) instead of plain deltas; in [0, 1].
  double add_remove_fraction = 0.2;
  /// Every `capacity_period`-th tick additionally wobbles the capacity
  /// uniformly within [capacity_min, capacity_max]; 0 = never (default —
  /// capacity events force full recomputes and drown the dirty-chain
  /// signal).
  std::uint64_t capacity_period = 0;
  Requests capacity_min = 1;
  Requests capacity_max = 1;
};

/// Generates a trace over `tree`'s clients starting from the tree's own
/// request column. Throws InvalidArgument on an unsatisfiable config (no
/// clients, zero touches, bad fractions/ranges).
[[nodiscard]] UpdateTrace MakeRandomTrace(const Tree& tree, const TraceConfig& config,
                                          std::uint64_t seed);

}  // namespace rpt::incremental
