// Deterministic random event-trace generator for streaming experiments.
//
// Produces a per-tick batch list (the shape sim::Replay's streaming mode,
// bench_incremental, and the equivalence tests consume) that is always
// *legal* for IncrementalSolver::Apply: the generator tracks the evolving
// state — a TreeOverlay mirror once topology churn is enabled — so deltas
// never drive a client negative, adds only target idle clients, removes
// only target active ones, and topology events never violate an overlay
// invariant (in particular, nothing the generator emits can orphan the
// root: a detach/migrate that would strip an internal node's last live
// child is re-drawn, and the generator falls back to a demand event when
// no legal candidate exists). Deterministic in (tree, config, seed) — the
// same trace replays bit-for-bit anywhere.
#pragma once

#include <cstdint>
#include <vector>

#include "incremental/update_event.hpp"
#include "tree/tree.hpp"

namespace rpt::incremental {

/// Shape of the generated stream.
struct TraceConfig {
  std::uint64_t ticks = 100;           ///< number of per-tick batches
  std::uint32_t touches_per_tick = 1;  ///< events per batch (>= 1)
  /// New demands are drawn uniformly from [0, max_demand]; keep
  /// max_demand <= W when the trace also feeds Single-policy solvers.
  Requests max_demand = 10;
  /// Fraction of touches emitted as kClientAdd/kClientRemove transitions
  /// (when legal for the picked client) instead of plain deltas; in [0, 1].
  double add_remove_fraction = 0.2;
  /// Every `capacity_period`-th tick additionally wobbles the capacity
  /// uniformly within [capacity_min, capacity_max]; 0 = never (default —
  /// capacity events force full recomputes and drown the dirty-chain
  /// signal).
  std::uint64_t capacity_period = 0;
  Requests capacity_min = 1;
  Requests capacity_max = 1;

  // --- topology churn knobs (all default 0: pure demand traces) ---
  /// Per-touch probability the touch is a join: a fresh subtree of
  /// [1, max_attach_nodes] nodes attaches under a random live internal node.
  double join_rate = 0.0;
  /// Per-touch probability the touch is a leave: a random live subtree of at
  /// most max_move_size nodes detaches (never one that would orphan its
  /// parent — the overlay's root-orphan invariant).
  double leave_rate = 0.0;
  /// Per-touch probability the touch is a failure re-home: a random live
  /// subtree of at most max_move_size nodes migrates under a different live
  /// internal node (outside the moved subtree).
  double failure_rate = 0.0;
  /// Per-touch probability the touch reconfigures one edge length within
  /// [1, max_link_delta] (placements are invariant to it; exercises the
  /// link-event plumbing).
  double link_rate = 0.0;
  /// Joins attach specs of 1..max_attach_nodes nodes (a single client, or
  /// one internal with client leaves). Must be >= 1.
  std::uint32_t max_attach_nodes = 3;
  /// Upper bound on the subtree size a leave/failure may move. Must be >= 1.
  std::uint32_t max_move_size = 4;
  /// Upper bound for drawn edge lengths (joins, migrations, link events).
  Distance max_link_delta = 4;
};

/// Generates a trace over `tree`'s clients starting from the tree's own
/// request column. Throws InvalidArgument on an unsatisfiable config (no
/// clients, zero touches, bad fractions/ranges).
[[nodiscard]] UpdateTrace MakeRandomTrace(const Tree& tree, const TraceConfig& config,
                                          std::uint64_t seed);

}  // namespace rpt::incremental
