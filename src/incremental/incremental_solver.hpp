// IncrementalSolver — re-solving a placement against a stream of demand
// updates without re-optimizing the world per event.
//
// The batch solvers answer "given this instance, where do replicas go?".
// Streaming workloads ask a different question: the instance barely changes
// between consecutive solves, so how much of the previous solve survives?
// For the Multiple-NoD DP the answer is structural: node j's tables depend
// only on subtree(j), so a demand change at client i invalidates exactly the
// root path of i. The solver owns a long-lived NodDpEngine (CSR tree + DP
// tables + prefix tables), applies each UpdateEvent batch to the demand
// overlay, and re-runs the forward pass on the union of dirty root paths —
// every untouched subtree's tables are reused verbatim, and independent
// dirty chains recompute in parallel (ParallelForChunked on the process-wide
// SolverPool(), scratch leased from the engine's ScratchPool).
//
// Guarantees:
//  * Equivalence — after every Apply() the solution is byte-identical
//    (canonical form, cost, and hash) to a from-scratch solve of the
//    current state: construct a second solver with Engine::kFullResolve (or
//    call SolveMultipleNodDp on MaterializeInstance()) and compare. Enforced
//    by tests/test_incremental.cpp at solver-pool widths 1 and 4.
//  * Determinism — solutions and all stats except wall time are identical
//    at any thread count (the engine's level sweeps are deterministic).
//  * Atomicity — Apply() validates the whole batch against the current
//    state before touching anything; on InvalidArgument the solver state is
//    unchanged.
//
// Policies: Policy::kMultiple runs the incremental DP (or its from-scratch
// oracle under Engine::kFullResolve). Policy::kSingle re-runs the
// near-linear single-nod pass over the demand overlay each batch — the pass
// is O(|T|)-ish, so "incremental" there means no tree rebuild and no
// allocation churn rather than table reuse; both engines are identical for
// it. Both policies require a NoD instance (no distance constraint).
//
// Ownership/lifetime: the solver keeps a reference to the instance's Tree;
// the Instance passed to the constructor must outlive the solver. The
// topology is immutable — see update_event.hpp for what events may change.
// Not thread-safe: one solver per thread of control.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "incremental/update_event.hpp"
#include "model/instance.hpp"
#include "model/solution.hpp"
#include "multiple/nod_dp_engine.hpp"

namespace rpt::incremental {

/// Cumulative counters over a solver's lifetime. Everything here is
/// deterministic (thread-count invariant); wall time is deliberately absent.
struct IncrementalStats {
  std::uint64_t events_applied = 0;   ///< events across all Apply() batches
  std::uint64_t resolves = 0;         ///< Apply() batches processed (incl. the initial solve)
  std::uint64_t full_recomputes = 0;  ///< re-solves that processed every node
  std::uint64_t nodes_recomputed = 0; ///< DP nodes re-processed across all re-solves
  std::uint64_t nodes_reused = 0;     ///< DP nodes whose tables were reused verbatim
};

/// Execution options for IncrementalSolver.
struct SolverOptions {
  Engine engine = Engine::kIncremental;
  Policy policy = Policy::kMultiple;
};

class IncrementalSolver {
 public:
  using Options = SolverOptions;

  /// Solves `instance` from scratch (the warm state every later Apply()
  /// updates). Requires no distance constraint; throws InvalidArgument
  /// otherwise. The instance must outlive the solver.
  explicit IncrementalSolver(const Instance& instance, Options options = {});

  IncrementalSolver(const IncrementalSolver&) = delete;
  IncrementalSolver& operator=(const IncrementalSolver&) = delete;

  /// Applies one batch of events atomically (events within a batch apply in
  /// order; validation of the whole batch happens first, so an
  /// InvalidArgument leaves the solver unchanged), then re-solves. Returns
  /// Feasible() for the new state — an infeasible state is not an error
  /// (e.g. a chain too short to absorb a giant demand); the next batch may
  /// make it feasible again.
  bool Apply(std::span<const UpdateEvent> events);

  /// True iff the current state admits a feasible placement.
  [[nodiscard]] bool Feasible() const noexcept { return feasible_; }

  /// The current optimal (Multiple) / 2-approx (Single) placement, in
  /// canonical form; empty when infeasible.
  [[nodiscard]] const Solution& Current() const noexcept { return solution_; }

  [[nodiscard]] const Tree& GetTree() const noexcept { return tree_; }
  [[nodiscard]] Requests Capacity() const noexcept { return capacity_; }
  [[nodiscard]] Requests DemandOf(NodeId client) const;
  /// The whole per-node demand column (indexed by NodeId) of the current
  /// state — the snapshot-export hook for the serve layer: a
  /// serve::PlacementSnapshot is built from exactly (GetTree(), Capacity(),
  /// Demands(), Current()). Valid until the next Apply(); copy before
  /// publishing across threads (PlacementSnapshot::Build does).
  [[nodiscard]] std::span<const Requests> Demands() const noexcept { return demand_; }
  [[nodiscard]] Requests TotalDemand() const noexcept { return total_demand_; }
  [[nodiscard]] const IncrementalStats& Stats() const noexcept { return stats_; }
  [[nodiscard]] const Options& GetOptions() const noexcept { return options_; }

  /// Snapshot of the current (demands, capacity) state as a standalone
  /// Instance — what the from-scratch oracle solves. O(|T|) via
  /// Tree::WithRequests.
  [[nodiscard]] Instance MaterializeInstance() const;

 private:
  void Validate(std::span<const UpdateEvent> events) const;
  void Resolve(std::span<const NodeId> touched, bool capacity_changed);

  const Tree& tree_;
  Options options_;
  Requests capacity_;
  std::vector<Requests> demand_;  // source of truth, mirrored into the engine
  Requests total_demand_ = 0;
  /// Long-lived DP tables; engaged only for (kMultiple, kIncremental) — the
  /// full-resolve oracle and the Single overlay never warm any state, so
  /// they skip the engine's O(n) columns entirely.
  std::optional<multiple::NodDpEngine> engine_;
  Solution solution_;
  bool feasible_ = false;
  IncrementalStats stats_;
  std::vector<NodeId> touched_scratch_;  // reused per Apply()
};

}  // namespace rpt::incremental
