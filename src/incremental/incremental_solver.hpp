// IncrementalSolver — re-solving a placement against a stream of demand,
// capacity, and topology updates without re-optimizing the world per event.
//
// The batch solvers answer "given this instance, where do replicas go?".
// Streaming workloads ask a different question: the instance barely changes
// between consecutive solves, so how much of the previous solve survives?
// For the Multiple-NoD DP the answer is structural: node j's tables depend
// only on subtree(j), so a demand change at client i invalidates exactly the
// root path of i — and a topology change (attach/detach/migrate) invalidates
// exactly the root paths of the old and new attachment points. The solver
// owns a long-lived NodDpEngine (topology view + DP tables + prefix tables),
// applies each UpdateEvent batch, and re-runs the forward pass on the union
// of dirty root chains — every untouched subtree's tables are reused
// verbatim, and independent dirty chains recompute in parallel
// (ParallelForChunked on the process-wide SolverPool()).
//
// Topology: the solver starts on the instance's immutable CSR Tree. The
// first batch containing a topology event promotes it to a private
// TreeOverlay (tree/tree_overlay.hpp) — a delta view with appended ids and
// tombstones — and every later state lives there. Batches with topology
// events commit via clone-and-swap: all events apply in order to a clone of
// the overlay, so a throwing event discards the clone and leaves the solver
// untouched (the same atomicity the demand-only path gets from its dry-run).
// View() exposes the current topology; ids are stable for the solver's
// lifetime (attach appends fresh ids, detach tombstones forever).
//
// Guarantees:
//  * Equivalence — after every Apply() the solution is byte-identical
//    (canonical form, cost, and hash) to a from-scratch solve of the
//    current state: construct a second solver with Engine::kFullResolve
//    (which compacts the overlay through TreeBuilder::Build and maps the
//    solution back to view ids) and compare. Enforced by
//    tests/test_incremental.cpp at solver-pool widths 1 and 4.
//  * Determinism — solutions and all stats except wall time are identical
//    at any thread count (the engine's level sweeps are deterministic).
//  * Atomicity — Apply() validates the whole batch against the current
//    state before committing anything; on InvalidArgument the solver state
//    is unchanged.
//
// Policies: Policy::kMultiple runs the incremental DP (or its from-scratch
// oracle under Engine::kFullResolve). Policy::kSingle owns the analogous
// SingleNodEngine: the bundle pass is just as local as the DP (a node's
// forwarded bundles depend only on its subtree's demands and W), so the
// same dirty-chain recompute applies — under Engine::kFullResolve it falls
// back to the full batch pass over the view, which doubles as the oracle.
// Both policies require a NoD instance (no distance constraint).
//
// Ownership/lifetime: the solver keeps a reference to the instance's Tree
// (the overlay base); the Instance passed to the constructor must outlive
// the solver. Not thread-safe: one solver per thread of control.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "incremental/update_event.hpp"
#include "model/instance.hpp"
#include "model/solution.hpp"
#include "multiple/nod_dp_engine.hpp"
#include "single/single_nod_engine.hpp"
#include "tree/topology_view.hpp"
#include "tree/tree_overlay.hpp"

namespace rpt::incremental {

/// Cumulative counters over a solver's lifetime. Everything here is
/// deterministic (thread-count invariant); wall time is deliberately absent.
struct IncrementalStats {
  std::uint64_t events_applied = 0;   ///< events across all Apply() batches
  std::uint64_t topology_events = 0;  ///< attach/detach/migrate/link events among them
  std::uint64_t resolves = 0;         ///< Apply() batches processed (incl. the initial solve)
  std::uint64_t full_recomputes = 0;  ///< re-solves that processed every node
  std::uint64_t nodes_recomputed = 0; ///< DP nodes re-processed across all re-solves
  std::uint64_t nodes_reused = 0;     ///< DP nodes whose tables were reused verbatim
};

/// Execution options for IncrementalSolver.
struct SolverOptions {
  Engine engine = Engine::kIncremental;
  Policy policy = Policy::kMultiple;
};

class IncrementalSolver {
 public:
  using Options = SolverOptions;

  /// Solves `instance` from scratch (the warm state every later Apply()
  /// updates). Requires no distance constraint; throws InvalidArgument
  /// otherwise. The instance must outlive the solver.
  explicit IncrementalSolver(const Instance& instance, Options options = {});

  /// Restore constructor (the crash-recovery path): seeds the solver from a
  /// previously exported overlay — see ExportOverlay() — instead of the
  /// base instance's own topology/demands. `base` supplies the overlay's
  /// base Tree (ids must match; the instance must outlive the solver) and
  /// `capacity` the current W, which may have diverged from the instance's
  /// via kCapacity events. Solves the restored state from scratch, so the
  /// DP tables are warm before the WAL tail replays.
  IncrementalSolver(const Instance& base, TreeOverlay restored,
                    Requests capacity, Options options = {});

  IncrementalSolver(const IncrementalSolver&) = delete;
  IncrementalSolver& operator=(const IncrementalSolver&) = delete;

  /// Applies one batch of events atomically (events within a batch apply in
  /// order; an InvalidArgument anywhere in the batch leaves the solver
  /// unchanged), then re-solves. Returns Feasible() for the new state — an
  /// infeasible state is not an error (e.g. a chain too short to absorb a
  /// giant demand); the next batch may make it feasible again.
  bool Apply(std::span<const UpdateEvent> events);

  /// True iff the current state admits a feasible placement.
  [[nodiscard]] bool Feasible() const noexcept { return feasible_; }

  /// The current optimal (Multiple) / 2-approx (Single) placement in view
  /// ids, canonical form; empty when infeasible.
  [[nodiscard]] const Solution& Current() const noexcept { return solution_; }

  /// The current topology: the base Tree until the first topology event,
  /// the solver's private overlay afterwards. Valid until the next Apply().
  [[nodiscard]] TopologyView View() const noexcept {
    return overlay_ ? TopologyView(*overlay_) : TopologyView(tree_);
  }
  /// True iff the topology has diverged from the base tree.
  [[nodiscard]] bool HasTopologyChanges() const noexcept {
    return overlay_ != nullptr && overlay_->TopologyVersion() > 0;
  }
  [[nodiscard]] Requests Capacity() const noexcept { return capacity_; }
  [[nodiscard]] Requests DemandOf(NodeId client) const;
  /// The whole per-node demand column (indexed by view NodeId; internal and
  /// dead entries 0) of the current state — the snapshot-export hook for the
  /// serve layer: a serve::PlacementSnapshot is built from exactly (View(),
  /// Capacity(), Demands(), Current()). Valid until the next Apply(); copy
  /// before publishing across threads (PlacementSnapshot::Build does).
  [[nodiscard]] std::span<const Requests> Demands() const noexcept { return demand_; }
  [[nodiscard]] Requests TotalDemand() const noexcept { return total_demand_; }
  [[nodiscard]] const IncrementalStats& Stats() const noexcept { return stats_; }
  [[nodiscard]] const Options& GetOptions() const noexcept { return options_; }

  /// Snapshot of the current (topology, demands, capacity) state as a
  /// standalone Instance plus the id translation into it. With no topology
  /// changes the map is the identity and the tree is Tree::WithRequests;
  /// after topology events the overlay is compacted through
  /// TreeBuilder::Build (remap[view_id] == instance id, kInvalidNode for
  /// tombstones). This is exactly what the kFullResolve oracle solves.
  struct Materialized {
    Instance instance;
    std::vector<NodeId> remap;
  };
  [[nodiscard]] Materialized MaterializeCompact() const;

  /// MaterializeCompact().instance — kept for callers that only need the
  /// instance (note the ids are compacted ids once topology has changed).
  [[nodiscard]] Instance MaterializeInstance() const;

  /// Self-contained copy of the current (topology, demand) state keyed by
  /// VIEW ids — tombstones and appended slots preserved, so later events
  /// recorded against these ids replay unchanged against a solver rebuilt
  /// via the restore constructor. This is what a serve-layer checkpoint
  /// persists (capacity travels separately). O(|view|).
  [[nodiscard]] TreeOverlay ExportOverlay() const;

 private:
  /// Promotes the base tree to a fresh overlay with the live demand column
  /// mirrored in (demand-only batches may have diverged demand_ from the
  /// base tree's construction-time requests).
  [[nodiscard]] std::unique_ptr<TreeOverlay> PromoteBaseOverlay() const;
  void Validate(std::span<const UpdateEvent> events) const;
  bool ApplyTopologyBatch(std::span<const UpdateEvent> events);
  void Resolve(std::span<const NodeId> touched, bool capacity_changed);

  const Tree& tree_;
  /// Engaged by the first topology event; once set, never reset (View()
  /// binds to it). Clone-and-swapped by every later topology batch.
  std::unique_ptr<TreeOverlay> overlay_;
  Options options_;
  Requests capacity_;
  std::vector<Requests> demand_;  // source of truth, mirrored into the engine
  Requests total_demand_ = 0;
  /// Long-lived DP tables; engaged only for (kMultiple, kIncremental) — the
  /// full-resolve oracles never warm any state, so they skip the engines'
  /// O(n) columns entirely.
  std::optional<multiple::NodDpEngine> engine_;
  /// Long-lived bundle caches; engaged only for (kSingle, kIncremental).
  std::optional<single::SingleNodEngine> single_engine_;
  Solution solution_;
  bool feasible_ = false;
  IncrementalStats stats_;
  std::vector<NodeId> touched_scratch_;  // reused per Apply()
};

}  // namespace rpt::incremental
