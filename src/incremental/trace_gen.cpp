#include "incremental/trace_gen.hpp"

#include <cmath>

#include "support/rng.hpp"

namespace rpt::incremental {

UpdateTrace MakeRandomTrace(const Tree& tree, const TraceConfig& config, std::uint64_t seed) {
  RPT_REQUIRE(tree.ClientCount() > 0, "MakeRandomTrace: tree has no clients");
  RPT_REQUIRE(config.touches_per_tick >= 1, "MakeRandomTrace: touches_per_tick must be >= 1");
  RPT_REQUIRE(config.add_remove_fraction >= 0.0 && config.add_remove_fraction <= 1.0 &&
                  std::isfinite(config.add_remove_fraction),
              "MakeRandomTrace: add_remove_fraction must be in [0, 1]");
  RPT_REQUIRE(config.capacity_period == 0 ||
                  (config.capacity_min >= 1 && config.capacity_min <= config.capacity_max),
              "MakeRandomTrace: need 1 <= capacity_min <= capacity_max");

  const std::span<const NodeId> clients = tree.Clients();
  // Evolving demand state keeps every emitted event legal to Apply().
  std::vector<Requests> demand(tree.Size());
  for (const NodeId client : clients) demand[client] = tree.RequestsOf(client);

  Rng rng(seed);
  UpdateTrace trace(config.ticks);
  for (std::uint64_t tick = 0; tick < config.ticks; ++tick) {
    std::vector<UpdateEvent>& batch = trace[tick];
    batch.reserve(config.touches_per_tick);
    for (std::uint32_t t = 0; t < config.touches_per_tick; ++t) {
      const NodeId client = clients[rng.NextBelow(clients.size())];
      const Requests current = demand[client];
      if (rng.NextBool(config.add_remove_fraction)) {
        if (current == 0 && config.max_demand > 0) {
          const Requests value = rng.NextInRange(1, config.max_demand);
          batch.push_back(UpdateEvent::ClientAdd(client, value));
          demand[client] = value;
          continue;
        }
        if (current > 0) {
          batch.push_back(UpdateEvent::ClientRemove(client));
          demand[client] = 0;
          continue;
        }
        // fall through to a plain delta when neither transition is legal
      }
      const Requests target = rng.NextInRange(0, config.max_demand);
      const std::int64_t delta =
          static_cast<std::int64_t>(target) - static_cast<std::int64_t>(current);
      batch.push_back(UpdateEvent::DemandDelta(client, delta));
      demand[client] = target;
    }
    if (config.capacity_period != 0 && (tick + 1) % config.capacity_period == 0) {
      batch.push_back(UpdateEvent::Capacity(
          rng.NextInRange(config.capacity_min, config.capacity_max)));
    }
  }
  return trace;
}

}  // namespace rpt::incremental
