#include "incremental/trace_gen.hpp"

#include <cmath>

#include "support/rng.hpp"
#include "tree/tree_overlay.hpp"

namespace rpt::incremental {

namespace {

// Candidate pools with lazy liveness filtering: attach appends, and a
// picked-but-dead id swap-pops on discovery — O(1) amortized against the
// overlay instead of an O(n) rescan per touch.
class Pool {
 public:
  void Add(NodeId id) { ids_.push_back(id); }

  /// Draws a live candidate (uniform over the surviving pool) or
  /// kInvalidNode when the pool has none.
  NodeId Pick(Rng& rng, const TreeOverlay& overlay) {
    while (!ids_.empty()) {
      const std::size_t at = static_cast<std::size_t>(rng.NextBelow(ids_.size()));
      const NodeId id = ids_[at];
      if (overlay.IsLive(id)) return id;
      ids_[at] = ids_.back();
      ids_.pop_back();
    }
    return kInvalidNode;
  }

 private:
  std::vector<NodeId> ids_;
};

}  // namespace

UpdateTrace MakeRandomTrace(const Tree& tree, const TraceConfig& config, std::uint64_t seed) {
  RPT_REQUIRE(tree.ClientCount() > 0, "MakeRandomTrace: tree has no clients");
  RPT_REQUIRE(config.touches_per_tick >= 1, "MakeRandomTrace: touches_per_tick must be >= 1");
  RPT_REQUIRE(config.add_remove_fraction >= 0.0 && config.add_remove_fraction <= 1.0 &&
                  std::isfinite(config.add_remove_fraction),
              "MakeRandomTrace: add_remove_fraction must be in [0, 1]");
  RPT_REQUIRE(config.capacity_period == 0 ||
                  (config.capacity_min >= 1 && config.capacity_min <= config.capacity_max),
              "MakeRandomTrace: need 1 <= capacity_min <= capacity_max");
  const auto rate_ok = [](double rate) {
    return rate >= 0.0 && rate <= 1.0 && std::isfinite(rate);
  };
  RPT_REQUIRE(rate_ok(config.join_rate) && rate_ok(config.leave_rate) &&
                  rate_ok(config.failure_rate) && rate_ok(config.link_rate),
              "MakeRandomTrace: churn rates must be in [0, 1]");
  RPT_REQUIRE(config.join_rate + config.leave_rate + config.failure_rate + config.link_rate <=
                  1.0,
              "MakeRandomTrace: churn rates must sum to at most 1");
  RPT_REQUIRE(config.max_attach_nodes >= 1, "MakeRandomTrace: max_attach_nodes must be >= 1");
  RPT_REQUIRE(config.max_move_size >= 1, "MakeRandomTrace: max_move_size must be >= 1");
  RPT_REQUIRE(config.max_link_delta >= 1 && config.max_link_delta <= kDistanceCap,
              "MakeRandomTrace: max_link_delta must be in [1, kDistanceCap]");

  const bool churn = config.join_rate > 0.0 || config.leave_rate > 0.0 ||
                     config.failure_rate > 0.0 || config.link_rate > 0.0;

  // The evolving-state mirror. Demand-only traces historically cost O(n)
  // setup; the overlay keeps that while making every topology candidate
  // checkable against the real invariants before it is emitted.
  TreeOverlay mirror(tree);
  Pool clients;    // live clients (demand targets)
  Pool internals;  // live internal nodes (attach / migrate targets)
  Pool movable;    // live non-root nodes (detach / migrate / link subjects)
  for (NodeId id = 0; id < mirror.Size(); ++id) {
    if (mirror.IsClient(id)) {
      clients.Add(id);
    } else {
      internals.Add(id);
    }
    if (id != mirror.Root()) movable.Add(id);
  }

  // Bounded candidate re-draws for the structural legality checks (a live
  // pick may still be an illegal subject — e.g. its parent's last child);
  // past the bound the touch falls back to a demand event so a tick never
  // spins on a tree with no legal churn.
  constexpr int kMaxRetries = 8;

  Rng rng(seed);
  UpdateTrace trace(config.ticks);
  for (std::uint64_t tick = 0; tick < config.ticks; ++tick) {
    std::vector<UpdateEvent>& batch = trace[tick];
    batch.reserve(config.touches_per_tick);
    for (std::uint32_t t = 0; t < config.touches_per_tick; ++t) {
      if (churn) {
        const double roll = rng.NextUnit();
        double band = config.join_rate;
        if (roll < band) {
          // Join: fresh subtree under a random live internal node.
          const NodeId parent = internals.Pick(rng, mirror);
          RPT_CHECK(parent != kInvalidNode);  // the root is immortal
          const std::uint32_t count =
              static_cast<std::uint32_t>(rng.NextInRange(1, config.max_attach_nodes));
          SubtreeSpec spec;
          if (count == 1) {
            spec = SubtreeSpec::SingleClient(rng.NextInRange(1, config.max_link_delta),
                                             rng.NextInRange(0, config.max_demand));
          } else {
            spec.nodes.push_back(SubtreeSpec::Node{
                NodeKind::kInternal, 0, rng.NextInRange(1, config.max_link_delta), 0});
            for (std::uint32_t i = 1; i < count; ++i) {
              spec.nodes.push_back(SubtreeSpec::Node{
                  NodeKind::kClient, 0, rng.NextInRange(1, config.max_link_delta),
                  rng.NextInRange(0, config.max_demand)});
            }
          }
          const NodeId first = mirror.AttachSubtree(parent, spec);
          for (NodeId id = first; id < mirror.Size(); ++id) {
            if (mirror.IsClient(id)) {
              clients.Add(id);
            } else {
              internals.Add(id);
            }
            movable.Add(id);
          }
          batch.push_back(UpdateEvent::AttachSubtree(parent, std::move(spec)));
          continue;
        }
        band += config.leave_rate;
        if (roll < band) {
          // Leave: detach a small live subtree whose parent keeps a child.
          NodeId victim = kInvalidNode;
          for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
            const NodeId candidate = movable.Pick(rng, mirror);
            if (candidate == kInvalidNode) break;
            if (mirror.SubtreeSize(candidate) <= config.max_move_size &&
                mirror.Children(mirror.Parent(candidate)).size() >= 2) {
              victim = candidate;
              break;
            }
          }
          if (victim != kInvalidNode) {
            mirror.DetachSubtree(victim);
            batch.push_back(UpdateEvent::DetachSubtree(victim));
            continue;
          }
          // fall through to a demand event
        } else {
          band += config.failure_rate;
          if (roll < band) {
            // Failure re-home: migrate a small live subtree elsewhere.
            bool emitted = false;
            for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
              const NodeId root = movable.Pick(rng, mirror);
              if (root == kInvalidNode) break;
              if (mirror.SubtreeSize(root) > config.max_move_size ||
                  mirror.Children(mirror.Parent(root)).size() < 2) {
                continue;
              }
              const NodeId target = internals.Pick(rng, mirror);
              if (target == kInvalidNode || target == mirror.Parent(root) ||
                  mirror.IsAncestorOrSelf(root, target)) {
                continue;
              }
              const Distance delta = rng.NextInRange(1, config.max_link_delta);
              mirror.MigrateSubtree(root, target, delta);
              batch.push_back(UpdateEvent::MigrateSubtree(root, target, delta));
              emitted = true;
              break;
            }
            if (emitted) continue;
            // fall through to a demand event
          } else {
            band += config.link_rate;
            if (roll < band) {
              // Link reconfiguration: new edge length on a random live edge.
              const NodeId node = movable.Pick(rng, mirror);
              if (node != kInvalidNode) {
                const Distance delta = rng.NextInRange(1, config.max_link_delta);
                mirror.SetLinkDelta(node, delta);
                batch.push_back(UpdateEvent::LinkCapacity(node, delta));
                continue;
              }
              // fall through to a demand event
            }
          }
        }
      }

      const NodeId client = clients.Pick(rng, mirror);
      RPT_CHECK(client != kInvalidNode);  // detach cannot kill the last client's chain root-ward
      const Requests current = mirror.RequestsOf(client);
      if (rng.NextBool(config.add_remove_fraction)) {
        if (current == 0 && config.max_demand > 0) {
          const Requests value = rng.NextInRange(1, config.max_demand);
          batch.push_back(UpdateEvent::ClientAdd(client, value));
          mirror.SetRequests(client, value);
          continue;
        }
        if (current > 0) {
          batch.push_back(UpdateEvent::ClientRemove(client));
          mirror.SetRequests(client, 0);
          continue;
        }
        // fall through to a plain delta when neither transition is legal
      }
      const Requests target = rng.NextInRange(0, config.max_demand);
      const std::int64_t delta =
          static_cast<std::int64_t>(target) - static_cast<std::int64_t>(current);
      batch.push_back(UpdateEvent::DemandDelta(client, delta));
      mirror.SetRequests(client, target);
    }
    if (config.capacity_period != 0 && (tick + 1) % config.capacity_period == 0) {
      batch.push_back(UpdateEvent::Capacity(
          rng.NextInRange(config.capacity_min, config.capacity_max)));
    }
  }
  return trace;
}

}  // namespace rpt::incremental
