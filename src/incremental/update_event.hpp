// Update events for the incremental re-solve engine: the unit of change a
// streaming workload applies to a solved instance.
//
// The distribution tree's *topology* is fixed for the lifetime of an
// IncrementalSolver (node ids, edges, and edge lengths never change — they
// are baked into the CSR arrays and the Euler/post-order invariants).
// Everything the paper's model lets traffic change is expressed as events
// over that fixed topology:
//
//  * kDemandDelta   — client i's request rate changes by a signed delta;
//  * kClientAdd     — a pre-provisioned zero-demand client leaf comes alive
//                     with an initial demand (CDNs provision attachment
//                     points ahead of need; "adding a client" means turning
//                     one on);
//  * kClientRemove  — a client goes dark (demand drops to zero; the leaf
//                     stays in the topology and may be re-added later);
//  * kCapacity      — the uniform server capacity W changes (a fleet-wide
//                     hardware/QoS reconfiguration; invalidates every DP
//                     table, so it forces a full recompute).
//
// Events are plain data and deterministic to replay; a trace (a vector of
// per-tick event batches) fully determines the placement sequence.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/tree.hpp"

namespace rpt::incremental {

/// Which engine executes a re-solve after an update batch. kFullResolve is
/// the oracle: it recomputes everything from scratch exactly as the batch
/// solver would, and exists so the incremental path can be checked (and
/// benchmarked) against it.
enum class Engine : std::uint8_t {
  kIncremental,  ///< dirty-chain recompute, untouched subtrees reused
  kFullResolve,  ///< from-scratch solve per batch (the equivalence oracle)
};

/// Human-readable engine name ("incremental" / "full-resolve").
[[nodiscard]] const char* EngineName(Engine engine) noexcept;

/// One change to the demand/capacity state of a solved instance.
struct UpdateEvent {
  enum class Kind : std::uint8_t {
    kDemandDelta,   ///< demand[client] += delta (result must stay >= 0)
    kClientAdd,     ///< demand[client] = value (client must be at 0; value > 0)
    kClientRemove,  ///< demand[client] = 0
    kCapacity,      ///< capacity = value (> 0)
  };

  Kind kind = Kind::kDemandDelta;
  NodeId client = kInvalidNode;  ///< target leaf (unused for kCapacity)
  std::int64_t delta = 0;        ///< signed demand change (kDemandDelta only)
  Requests value = 0;            ///< new demand (kClientAdd) or capacity (kCapacity)

  friend bool operator==(const UpdateEvent&, const UpdateEvent&) = default;

  [[nodiscard]] static UpdateEvent DemandDelta(NodeId client, std::int64_t delta) noexcept {
    return UpdateEvent{Kind::kDemandDelta, client, delta, 0};
  }
  [[nodiscard]] static UpdateEvent ClientAdd(NodeId client, Requests demand) noexcept {
    return UpdateEvent{Kind::kClientAdd, client, 0, demand};
  }
  [[nodiscard]] static UpdateEvent ClientRemove(NodeId client) noexcept {
    return UpdateEvent{Kind::kClientRemove, client, 0, 0};
  }
  [[nodiscard]] static UpdateEvent Capacity(Requests capacity) noexcept {
    return UpdateEvent{Kind::kCapacity, kInvalidNode, 0, capacity};
  }
};

/// A trace: one event batch per tick (batches may be empty). The unit
/// sim::Replay's streaming mode and the trace generator exchange.
using UpdateTrace = std::vector<std::vector<UpdateEvent>>;

}  // namespace rpt::incremental
