// Update events for the incremental re-solve engine: the unit of change a
// streaming workload applies to a solved instance.
//
// Since the topology-overlay refactor the tree is NOT fixed anymore: the
// solver runs over a TopologyView (immutable CSR base or delta TreeOverlay),
// and events cover both traffic and topology:
//
// Demand/capacity events (the original fixed-topology set):
//  * kDemandDelta    — client i's request rate changes by a signed delta;
//  * kClientAdd      — a pre-provisioned zero-demand client leaf comes alive
//                      with an initial demand (CDNs provision attachment
//                      points ahead of need; "adding a client" means turning
//                      one on);
//  * kClientRemove   — a client goes dark (demand drops to zero; the leaf
//                      stays in the topology and may be re-added later);
//  * kCapacity       — the uniform server capacity W changes (a fleet-wide
//                      hardware/QoS reconfiguration; invalidates every DP
//                      table, so it forces a full recompute).
//
// Topology events (applied to the solver's TreeOverlay; batches containing
// any of these are validated by cloning the overlay, so a throwing event
// leaves the solver untouched — the same atomicity the demand path gets
// from its dry-run):
//  * kAttachSubtree  — splice `spec` under internal node `node`; the new
//                      nodes get fresh ids appended past the current size
//                      (returned ids are deterministic: first new id ==
//                      solver size before the batch event applied);
//  * kDetachSubtree  — tombstone subtree(`node`); its ids die forever
//                      (re-joining hardware comes back as new ids);
//  * kMigrateSubtree — re-home subtree(`node`) under `new_parent` with edge
//                      length `value`; ids and solver tables survive;
//  * kLinkCapacity   — reconfigure the edge length of `node`'s parent link
//                      to `value` (link degradation/repair). Distances
//                      below the node shift; the Multiple-NoD DP tables are
//                      untouched (F depends only on subtree demands and W).
//
// Structural legality (root never detached/migrated, no internal node loses
// its last child, no cycles, distance bounds) is enforced by TreeOverlay's
// mutators; the solver surfaces their InvalidArgument before mutating
// anything.
//
// Events are plain data and deterministic to replay; a trace (a vector of
// per-tick event batches) fully determines the placement sequence.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/tree.hpp"
#include "tree/tree_overlay.hpp"

namespace rpt::incremental {

/// Which engine executes a re-solve after an update batch. kFullResolve is
/// the oracle: it recomputes everything from scratch exactly as the batch
/// solver would (compacting the overlay first when topology changed), and
/// exists so the incremental path can be checked (and benchmarked) against
/// it.
enum class Engine : std::uint8_t {
  kIncremental,  ///< dirty-chain recompute, untouched subtrees reused
  kFullResolve,  ///< from-scratch solve per batch (the equivalence oracle)
};

/// Human-readable engine name ("incremental" / "full-resolve").
[[nodiscard]] const char* EngineName(Engine engine) noexcept;

/// One change to the demand/capacity/topology state of a solved instance.
struct UpdateEvent {
  enum class Kind : std::uint8_t {
    kDemandDelta,     ///< demand[client] += delta (result must stay >= 0)
    kClientAdd,       ///< demand[client] = value (client must be at 0; value > 0)
    kClientRemove,    ///< demand[client] = 0
    kCapacity,        ///< capacity = value (> 0)
    kAttachSubtree,   ///< splice `spec` under internal `client`
    kDetachSubtree,   ///< tombstone subtree(`client`)
    kMigrateSubtree,  ///< re-home subtree(`client`) under `parent` at delta `value`
    kLinkCapacity,    ///< delta of `client`'s parent edge becomes `value`
  };

  Kind kind = Kind::kDemandDelta;
  /// Target node: the client leaf (demand kinds), the attach parent
  /// (kAttachSubtree), or the subtree root / link node (detach, migrate,
  /// link). Unused for kCapacity.
  NodeId client = kInvalidNode;
  std::int64_t delta = 0;  ///< signed demand change (kDemandDelta only)
  /// New demand (kClientAdd), capacity (kCapacity), or edge length
  /// (kMigrateSubtree / kLinkCapacity).
  Requests value = 0;
  NodeId parent = kInvalidNode;  ///< migration target (kMigrateSubtree only)
  SubtreeSpec spec;              ///< attached subtree (kAttachSubtree only)

  friend bool operator==(const UpdateEvent&, const UpdateEvent&) = default;

  /// True for the four kinds that mutate the tree structure.
  [[nodiscard]] bool IsTopology() const noexcept {
    return kind == Kind::kAttachSubtree || kind == Kind::kDetachSubtree ||
           kind == Kind::kMigrateSubtree || kind == Kind::kLinkCapacity;
  }

  [[nodiscard]] static UpdateEvent DemandDelta(NodeId client, std::int64_t delta) {
    return UpdateEvent{Kind::kDemandDelta, client, delta, 0, kInvalidNode, {}};
  }
  [[nodiscard]] static UpdateEvent ClientAdd(NodeId client, Requests demand) {
    return UpdateEvent{Kind::kClientAdd, client, 0, demand, kInvalidNode, {}};
  }
  [[nodiscard]] static UpdateEvent ClientRemove(NodeId client) {
    return UpdateEvent{Kind::kClientRemove, client, 0, 0, kInvalidNode, {}};
  }
  [[nodiscard]] static UpdateEvent Capacity(Requests capacity) {
    return UpdateEvent{Kind::kCapacity, kInvalidNode, 0, capacity, kInvalidNode, {}};
  }
  [[nodiscard]] static UpdateEvent AttachSubtree(NodeId parent, SubtreeSpec spec) {
    return UpdateEvent{Kind::kAttachSubtree, parent, 0, 0, kInvalidNode, std::move(spec)};
  }
  [[nodiscard]] static UpdateEvent DetachSubtree(NodeId root) {
    return UpdateEvent{Kind::kDetachSubtree, root, 0, 0, kInvalidNode, {}};
  }
  [[nodiscard]] static UpdateEvent MigrateSubtree(NodeId root, NodeId new_parent,
                                                  Distance new_delta) {
    return UpdateEvent{Kind::kMigrateSubtree, root, 0, new_delta, new_parent, {}};
  }
  [[nodiscard]] static UpdateEvent LinkCapacity(NodeId node, Distance new_delta) {
    return UpdateEvent{Kind::kLinkCapacity, node, 0, new_delta, kInvalidNode, {}};
  }
};

/// A trace: one event batch per tick (batches may be empty). The unit
/// sim::Replay's streaming mode and the trace generator exchange.
using UpdateTrace = std::vector<std::vector<UpdateEvent>>;

}  // namespace rpt::incremental
