#include "incremental/incremental_solver.hpp"

#include <unordered_map>
#include <utility>

#include "multiple/multiple_nod_dp.hpp"
#include "single/single_nod.hpp"

namespace rpt::incremental {

const char* EngineName(Engine engine) noexcept {
  return engine == Engine::kIncremental ? "incremental" : "full-resolve";
}

IncrementalSolver::IncrementalSolver(const Instance& instance, Options options)
    : tree_(instance.GetTree()),
      options_(options),
      capacity_(instance.Capacity()),
      demand_(tree_.Size()) {
  RPT_REQUIRE(!instance.HasDistanceConstraint(),
              "incremental: only valid without distance constraints (NoD)");
  if (options_.policy == Policy::kMultiple && options_.engine == Engine::kIncremental) {
    engine_.emplace(tree_, capacity_);
  }
  for (NodeId id = 0; id < tree_.Size(); ++id) demand_[id] = tree_.RequestsOf(id);
  total_demand_ = tree_.TotalRequests();
  Resolve({}, /*full=*/true);
}

Requests IncrementalSolver::DemandOf(NodeId client) const {
  RPT_REQUIRE(client < tree_.Size(), "incremental: node id out of range");
  return demand_[client];
}

Instance IncrementalSolver::MaterializeInstance() const {
  return Instance(tree_.WithRequests(demand_), capacity_);
}

// Magnitude of a signed delta as an unsigned value, defined for the whole
// int64 range (a bare -delta is UB at INT64_MIN, which would let one
// pathological event wrap validation itself).
static Requests NegMagnitude(std::int64_t delta) noexcept {
  return static_cast<Requests>(-(delta + 1)) + 1;
}

// Dry-runs the whole batch against the current state so a bad event leaves
// the solver untouched (Apply's atomicity guarantee). Demand interactions
// within the batch (a delta following an add, etc.) are tracked in a
// side map; the projected per-client demands AND the projected total are
// both guarded against wrapping through unsigned Requests — a wrapped
// demand would silently pass validation and corrupt every DP table bound.
void IncrementalSolver::Validate(std::span<const UpdateEvent> events) const {
  constexpr Requests kMaxDemand = std::numeric_limits<Requests>::max();
  std::unordered_map<NodeId, Requests> pending;
  unsigned __int128 projected_total = total_demand_;
  const auto demand_of = [&](NodeId client) {
    const auto it = pending.find(client);
    return it == pending.end() ? demand_[client] : it->second;
  };
  const auto project = [&](NodeId client, Requests old_value, Requests new_value) {
    pending[client] = new_value;
    projected_total = projected_total - old_value + new_value;
    RPT_REQUIRE(projected_total <= kMaxDemand,
                "incremental: batch would overflow the total demand");
  };
  for (const UpdateEvent& event : events) {
    if (event.kind == UpdateEvent::Kind::kCapacity) {
      RPT_REQUIRE(event.value > 0, "incremental: capacity must stay positive");
      continue;
    }
    RPT_REQUIRE(event.client < tree_.Size() && tree_.IsClient(event.client),
                "incremental: update events must target a client leaf");
    switch (event.kind) {
      case UpdateEvent::Kind::kDemandDelta: {
        const Requests current = demand_of(event.client);
        if (event.delta < 0) {
          const Requests magnitude = NegMagnitude(event.delta);
          RPT_REQUIRE(current >= magnitude,
                      "incremental: demand delta would drop a client below zero");
          project(event.client, current, current - magnitude);
        } else {
          const Requests magnitude = static_cast<Requests>(event.delta);
          RPT_REQUIRE(current <= kMaxDemand - magnitude,
                      "incremental: demand delta would wrap through unsigned Requests");
          project(event.client, current, current + magnitude);
        }
        break;
      }
      case UpdateEvent::Kind::kClientAdd:
        RPT_REQUIRE(demand_of(event.client) == 0,
                    "incremental: kClientAdd targets a client that is already active");
        RPT_REQUIRE(event.value > 0, "incremental: kClientAdd needs a positive demand");
        project(event.client, 0, event.value);
        break;
      case UpdateEvent::Kind::kClientRemove:
        project(event.client, demand_of(event.client), 0);  // idle remove is a no-op
        break;
      case UpdateEvent::Kind::kCapacity:
        break;  // handled above
    }
  }
}

bool IncrementalSolver::Apply(std::span<const UpdateEvent> events) {
  Validate(events);
  touched_scratch_.clear();
  bool capacity_changed = false;
  const auto set_demand = [&](NodeId client, Requests value) {
    const Requests old = demand_[client];
    if (old == value) return;  // tables depend on the value, not the event
    demand_[client] = value;
    total_demand_ = total_demand_ - old + value;
    if (engine_) engine_->SetDemand(client, value);
    touched_scratch_.push_back(client);
  };
  for (const UpdateEvent& event : events) {
    switch (event.kind) {
      case UpdateEvent::Kind::kDemandDelta:
        set_demand(event.client,
                   event.delta < 0 ? demand_[event.client] - static_cast<Requests>(-event.delta)
                                   : demand_[event.client] + static_cast<Requests>(event.delta));
        break;
      case UpdateEvent::Kind::kClientAdd:
        set_demand(event.client, event.value);
        break;
      case UpdateEvent::Kind::kClientRemove:
        set_demand(event.client, 0);
        break;
      case UpdateEvent::Kind::kCapacity:
        if (event.value != capacity_) {
          capacity_ = event.value;
          capacity_changed = true;
        }
        break;
    }
  }
  stats_.events_applied += events.size();
  Resolve(touched_scratch_, /*full=*/capacity_changed);
  return feasible_;
}

void IncrementalSolver::Resolve(std::span<const NodeId> touched, bool full) {
  ++stats_.resolves;

  if (options_.policy == Policy::kSingle) {
    // The single-nod pass is near-linear, so it simply re-runs over the
    // demand overlay — no tree materialization, no allocation churn beyond
    // the pass itself. Infeasibility (some r_i > W) is a state, not an
    // error.
    ++stats_.full_recomputes;
    stats_.nodes_recomputed += tree_.Size();
    for (const NodeId client : tree_.Clients()) {
      if (demand_[client] > capacity_) {
        feasible_ = false;
        solution_ = Solution{};
        return;
      }
    }
    feasible_ = true;
    solution_ = single::SolveSingleNod(tree_, capacity_, demand_).solution;
    solution_.Canonicalize();
    return;
  }

  if (options_.engine == Engine::kFullResolve) {
    // The oracle: exactly what a caller without the incremental engine
    // would run — materialize the current state and solve from scratch.
    ++stats_.full_recomputes;
    stats_.nodes_recomputed += tree_.Size();
    const Instance instance = MaterializeInstance();
    auto result = multiple::SolveMultipleNodDp(instance);
    feasible_ = result.feasible;
    solution_ = std::move(result.solution);  // already canonical
    return;
  }

  // Incremental Multiple-NoD: dirty-chain recompute, full pass only when
  // forced (initial solve, capacity change).
  RPT_CHECK(engine_.has_value());
  if (full) {
    engine_->SetCapacity(capacity_);
    engine_->ComputeAll();
    ++stats_.full_recomputes;
  } else {
    engine_->RecomputeDirty(touched);
  }
  stats_.nodes_recomputed += engine_->LastPassNodes();
  stats_.nodes_reused += tree_.Size() - engine_->LastPassNodes();
  feasible_ = engine_->Feasible();
  solution_ = feasible_ ? engine_->Backtrack() : Solution{};
}

}  // namespace rpt::incremental
