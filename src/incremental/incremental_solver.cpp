#include "incremental/incremental_solver.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "multiple/multiple_nod_dp.hpp"
#include "single/single_nod.hpp"

namespace rpt::incremental {

const char* EngineName(Engine engine) noexcept {
  return engine == Engine::kIncremental ? "incremental" : "full-resolve";
}

IncrementalSolver::IncrementalSolver(const Instance& instance, Options options)
    : tree_(instance.GetTree()),
      options_(options),
      capacity_(instance.Capacity()),
      demand_(tree_.Size()) {
  RPT_REQUIRE(!instance.HasDistanceConstraint(),
              "incremental: only valid without distance constraints (NoD)");
  if (options_.engine == Engine::kIncremental) {
    if (options_.policy == Policy::kMultiple) {
      engine_.emplace(tree_, capacity_);
    } else {
      single_engine_.emplace(TopologyView(tree_), capacity_);
    }
  }
  for (NodeId id = 0; id < tree_.Size(); ++id) demand_[id] = tree_.RequestsOf(id);
  total_demand_ = tree_.TotalRequests();
  Resolve({}, /*full=*/true);
}

IncrementalSolver::IncrementalSolver(const Instance& base, TreeOverlay restored,
                                     Requests capacity, Options options)
    : tree_(base.GetTree()),
      overlay_(std::make_unique<TreeOverlay>(std::move(restored))),
      options_(options),
      capacity_(capacity),
      demand_(overlay_->Size()) {
  RPT_REQUIRE(!base.HasDistanceConstraint(),
              "incremental: only valid without distance constraints (NoD)");
  RPT_REQUIRE(capacity_ > 0, "incremental: restored capacity must be positive");
  if (options_.engine == Engine::kIncremental) {
    if (options_.policy == Policy::kMultiple) {
      engine_.emplace(TopologyView(*overlay_), capacity_);
    } else {
      single_engine_.emplace(TopologyView(*overlay_), capacity_);
    }
  }
  // The overlay's request column IS the demand state (SetRequests mirrors
  // every demand event into it), so the restored overlay carries demands.
  for (NodeId id = 0; id < overlay_->Size(); ++id) {
    demand_[id] = overlay_->IsLive(id) && overlay_->IsClient(id)
                      ? overlay_->RequestsOf(id)
                      : 0;
  }
  total_demand_ = overlay_->TotalRequests();
  Resolve({}, /*full=*/true);
}

std::unique_ptr<TreeOverlay> IncrementalSolver::PromoteBaseOverlay() const {
  // The base tree's request column is construction-time state: demand-only
  // batches before a promotion updated demand_ with no overlay to mirror
  // into, so sync the live column or the promoted overlay would silently
  // revert those clients to stale demands.
  auto fresh = std::make_unique<TreeOverlay>(tree_);
  for (const NodeId client : tree_.Clients()) {
    if (fresh->RequestsOf(client) != demand_[client]) {
      fresh->SetRequests(client, demand_[client]);
    }
  }
  return fresh;
}

TreeOverlay IncrementalSolver::ExportOverlay() const {
  if (overlay_) return *overlay_;
  return *PromoteBaseOverlay();
}

Requests IncrementalSolver::DemandOf(NodeId client) const {
  RPT_REQUIRE(client < demand_.size(), "incremental: node id out of range");
  return demand_[client];
}

IncrementalSolver::Materialized IncrementalSolver::MaterializeCompact() const {
  if (!HasTopologyChanges()) {
    std::vector<NodeId> identity(demand_.size());
    std::iota(identity.begin(), identity.end(), NodeId{0});
    return Materialized{Instance(overlay_ ? overlay_->Compact().tree : tree_.WithRequests(demand_),
                                 capacity_),
                        std::move(identity)};
  }
  // The overlay's request column mirrors demand_, so the compacted tree
  // already carries the current demands.
  TreeOverlay::CompactResult compact = overlay_->Compact();
  return Materialized{Instance(std::move(compact.tree), capacity_), std::move(compact.remap)};
}

Instance IncrementalSolver::MaterializeInstance() const {
  return MaterializeCompact().instance;
}

// Magnitude of a signed delta as an unsigned value, defined for the whole
// int64 range (a bare -delta is UB at INT64_MIN, which would let one
// pathological event wrap validation itself).
static Requests NegMagnitude(std::int64_t delta) noexcept {
  return static_cast<Requests>(-(delta + 1)) + 1;
}

// Dry-runs a demand/capacity-only batch against the current state so a bad
// event leaves the solver untouched (Apply's atomicity guarantee). Demand
// interactions within the batch (a delta following an add, etc.) are tracked
// in a side map; the projected per-client demands AND the projected total
// are both guarded against wrapping through unsigned Requests — a wrapped
// demand would silently pass validation and corrupt every DP table bound.
void IncrementalSolver::Validate(std::span<const UpdateEvent> events) const {
  constexpr Requests kMaxDemand = std::numeric_limits<Requests>::max();
  const TopologyView view = View();
  std::unordered_map<NodeId, Requests> pending;
  unsigned __int128 projected_total = total_demand_;
  const auto demand_of = [&](NodeId client) {
    const auto it = pending.find(client);
    return it == pending.end() ? demand_[client] : it->second;
  };
  const auto project = [&](NodeId client, Requests old_value, Requests new_value) {
    pending[client] = new_value;
    projected_total = projected_total - old_value + new_value;
    RPT_REQUIRE(projected_total <= kMaxDemand,
                "incremental: batch would overflow the total demand");
  };
  for (const UpdateEvent& event : events) {
    if (event.kind == UpdateEvent::Kind::kCapacity) {
      RPT_REQUIRE(event.value > 0, "incremental: capacity must stay positive");
      continue;
    }
    RPT_REQUIRE(event.client < view.Size() && view.IsLive(event.client) &&
                    view.IsClient(event.client),
                "incremental: update events must target a live client leaf");
    switch (event.kind) {
      case UpdateEvent::Kind::kDemandDelta: {
        const Requests current = demand_of(event.client);
        if (event.delta < 0) {
          const Requests magnitude = NegMagnitude(event.delta);
          RPT_REQUIRE(current >= magnitude,
                      "incremental: demand delta would drop a client below zero");
          project(event.client, current, current - magnitude);
        } else {
          const Requests magnitude = static_cast<Requests>(event.delta);
          RPT_REQUIRE(current <= kMaxDemand - magnitude,
                      "incremental: demand delta would wrap through unsigned Requests");
          project(event.client, current, current + magnitude);
        }
        break;
      }
      case UpdateEvent::Kind::kClientAdd:
        RPT_REQUIRE(demand_of(event.client) == 0,
                    "incremental: kClientAdd targets a client that is already active");
        RPT_REQUIRE(event.value > 0, "incremental: kClientAdd needs a positive demand");
        project(event.client, 0, event.value);
        break;
      case UpdateEvent::Kind::kClientRemove:
        project(event.client, demand_of(event.client), 0);  // idle remove is a no-op
        break;
      default:
        RPT_CHECK(false);  // topology kinds take the clone-and-swap path
    }
  }
}

bool IncrementalSolver::Apply(std::span<const UpdateEvent> events) {
  bool has_topology = false;
  for (const UpdateEvent& event : events) has_topology |= event.IsTopology();
  if (has_topology) return ApplyTopologyBatch(events);

  Validate(events);
  touched_scratch_.clear();
  bool capacity_changed = false;
  const auto set_demand = [&](NodeId client, Requests value) {
    const Requests old = demand_[client];
    if (old == value) return;  // tables depend on the value, not the event
    demand_[client] = value;
    total_demand_ = total_demand_ - old + value;
    if (overlay_) overlay_->SetRequests(client, value);  // keep aggregates in sync
    if (engine_) engine_->SetDemand(client, value);
    if (single_engine_) single_engine_->SetDemand(client, value);
    touched_scratch_.push_back(client);
  };
  for (const UpdateEvent& event : events) {
    switch (event.kind) {
      case UpdateEvent::Kind::kDemandDelta:
        set_demand(event.client,
                   event.delta < 0 ? demand_[event.client] - static_cast<Requests>(-event.delta)
                                   : demand_[event.client] + static_cast<Requests>(event.delta));
        break;
      case UpdateEvent::Kind::kClientAdd:
        set_demand(event.client, event.value);
        break;
      case UpdateEvent::Kind::kClientRemove:
        set_demand(event.client, 0);
        break;
      case UpdateEvent::Kind::kCapacity:
        if (event.value != capacity_) {
          capacity_ = event.value;
          capacity_changed = true;
        }
        break;
      default:
        RPT_CHECK(false);  // unreachable: topology batches branched above
    }
  }
  stats_.events_applied += events.size();
  Resolve(touched_scratch_, /*full=*/capacity_changed);
  return feasible_;
}

// Topology batches commit via clone-and-swap: every event (topology and
// demand alike, in order) applies to a clone of the current overlay and to
// local demand/capacity copies. The overlay mutators validate before
// mutating, so any InvalidArgument propagates with the clone still local —
// the solver state is untouched. Only after the whole batch has applied do
// the members swap and the engine learn the new topology.
bool IncrementalSolver::ApplyTopologyBatch(std::span<const UpdateEvent> events) {
  constexpr Requests kMaxDemand = std::numeric_limits<Requests>::max();
  auto next = overlay_ ? std::make_unique<TreeOverlay>(*overlay_)
                       : PromoteBaseOverlay();
  std::vector<Requests> new_demand = demand_;
  Requests new_capacity = capacity_;
  std::vector<NodeId> seeds;             // dirty-chain seeds, filtered to live at commit
  std::vector<NodeId> children_changed;  // parents whose child list shrank/reordered
  std::vector<NodeId> removed;           // ids tombstoned by this batch
  std::uint64_t topology_events = 0;

  const auto set_demand = [&](NodeId client, Requests value) {
    RPT_REQUIRE(client < next->Size() && next->IsLive(client) && next->IsClient(client),
                "incremental: update events must target a live client leaf");
    next->SetRequests(client, value);  // guards the total through the chain
    new_demand[client] = value;
    seeds.push_back(client);
  };
  const auto require_live = [&](NodeId node, const char* what) {
    RPT_REQUIRE(node < next->Size() && next->IsLive(node), what);
  };

  for (const UpdateEvent& event : events) {
    switch (event.kind) {
      case UpdateEvent::Kind::kDemandDelta: {
        require_live(event.client, "incremental: update events must target a live client leaf");
        const Requests current = new_demand[event.client];
        if (event.delta < 0) {
          const Requests magnitude = NegMagnitude(event.delta);
          RPT_REQUIRE(current >= magnitude,
                      "incremental: demand delta would drop a client below zero");
          set_demand(event.client, current - magnitude);
        } else {
          const Requests magnitude = static_cast<Requests>(event.delta);
          RPT_REQUIRE(current <= kMaxDemand - magnitude,
                      "incremental: demand delta would wrap through unsigned Requests");
          set_demand(event.client, current + magnitude);
        }
        break;
      }
      case UpdateEvent::Kind::kClientAdd:
        require_live(event.client, "incremental: update events must target a live client leaf");
        RPT_REQUIRE(new_demand[event.client] == 0,
                    "incremental: kClientAdd targets a client that is already active");
        RPT_REQUIRE(event.value > 0, "incremental: kClientAdd needs a positive demand");
        set_demand(event.client, event.value);
        break;
      case UpdateEvent::Kind::kClientRemove:
        set_demand(event.client, 0);
        break;
      case UpdateEvent::Kind::kCapacity:
        RPT_REQUIRE(event.value > 0, "incremental: capacity must stay positive");
        new_capacity = event.value;
        break;
      case UpdateEvent::Kind::kAttachSubtree: {
        ++topology_events;
        const NodeId first = next->AttachSubtree(event.client, event.spec);
        new_demand.resize(next->Size(), 0);
        for (NodeId id = first; id < next->Size(); ++id) {
          new_demand[id] = next->RequestsOf(id);
          seeds.push_back(id);  // fresh ids have no tables yet — always dirty
        }
        break;
      }
      case UpdateEvent::Kind::kDetachSubtree: {
        ++topology_events;
        require_live(event.client, "incremental: detach targets a dead or out-of-range node");
        const NodeId parent = next->Parent(event.client);
        std::vector<NodeId> dead;
        next->DetachSubtree(event.client, &dead);  // rejects the root itself
        for (const NodeId id : dead) new_demand[id] = 0;
        removed.insert(removed.end(), dead.begin(), dead.end());
        seeds.push_back(parent);
        children_changed.push_back(parent);
        break;
      }
      case UpdateEvent::Kind::kMigrateSubtree: {
        ++topology_events;
        require_live(event.client, "incremental: migrate targets a dead or out-of-range node");
        const NodeId old_parent = next->Parent(event.client);
        next->MigrateSubtree(event.client, event.parent, event.value);
        seeds.push_back(old_parent);
        seeds.push_back(event.parent);
        // The moved root keeps valid tables, but it must still be seeded:
        // the engines' prefix-reuse scan assumes every child APPENDED to a
        // parent's list is dirty (true for attach — fresh ids have no
        // tables). A clean migrated-in child would let the scan start past
        // its index against stored prefixes that never folded it in.
        seeds.push_back(event.client);
        // The old parent's child list lost a middle entry (stored prefixes
        // index the old list) and needs a stamped full rebuild; the new
        // parent only appended a now-dirty child, which the exact scan
        // handles.
        children_changed.push_back(old_parent);
        break;
      }
      case UpdateEvent::Kind::kLinkCapacity:
        ++topology_events;
        require_live(event.client, "incremental: link event targets a dead or out-of-range node");
        next->SetLinkDelta(event.client, event.value);
        // No seeds: F tables depend on subtree demands and W only, never on
        // edge lengths — the placement is unchanged.
        break;
    }
  }

  // Commit. Nothing below throws on valid input.
  overlay_ = std::move(next);
  demand_ = std::move(new_demand);
  total_demand_ = overlay_->TotalRequests();
  const bool capacity_changed = new_capacity != capacity_;
  capacity_ = new_capacity;
  stats_.events_applied += events.size();
  stats_.topology_events += topology_events;

  // Later events in the batch may have killed nodes an earlier event
  // recorded (attach-then-detach, detach below a detach): drop dead entries
  // — a dead seed's chain is either gone or re-seeded via its parent.
  const auto drop_dead = [this](std::vector<NodeId>& ids) {
    std::erase_if(ids, [this](NodeId id) { return !overlay_->IsLive(id); });
  };
  drop_dead(seeds);
  drop_dead(children_changed);

  if (engine_) {
    engine_->ApplyTopology(TopologyView(*overlay_), children_changed, removed);
  }
  if (single_engine_) {
    single_engine_->ApplyTopology(TopologyView(*overlay_), removed);
  }
  Resolve(seeds, /*capacity_changed=*/capacity_changed);
  return feasible_;
}

void IncrementalSolver::Resolve(std::span<const NodeId> touched, bool full) {
  ++stats_.resolves;
  const TopologyView view = View();

  if (options_.policy == Policy::kSingle) {
    // Single-nod needs every demand to fit one server (r_i <= W); above
    // that the state is infeasible — a state, not an error.
    bool ok = true;
    for (const NodeId client : view.Clients()) {
      if (demand_[client] > capacity_) {
        ok = false;
        break;
      }
    }
    if (single_engine_) {
      if (full) single_engine_->SetCapacity(capacity_);
      if (!ok) {
        // Skip the compute but keep the invalidations: `touched` (plus the
        // demand seeds SetDemand already marked) must recompute once a
        // later batch makes the state feasible again.
        single_engine_->MarkTouched(touched);
        feasible_ = false;
        solution_ = Solution{};
        return;
      }
      if (full) {
        single_engine_->ComputeAll();
        ++stats_.full_recomputes;
      } else {
        single_engine_->RecomputeDirty(touched);
      }
      stats_.nodes_recomputed += single_engine_->LastPassNodes();
      stats_.nodes_reused += view.LiveCount() - single_engine_->LastPassNodes();
      feasible_ = true;
      solution_ = single_engine_->Assemble();
      return;
    }
    // Full-resolve oracle: the batch pass over the current view.
    ++stats_.full_recomputes;
    stats_.nodes_recomputed += view.LiveCount();
    if (!ok) {
      feasible_ = false;
      solution_ = Solution{};
      return;
    }
    feasible_ = true;
    solution_ = single::SolveSingleNod(view, capacity_, demand_).solution;
    solution_.Canonicalize();
    return;
  }

  if (options_.engine == Engine::kFullResolve) {
    // The oracle: exactly what a caller without the incremental engine
    // would run — compact the current state through TreeBuilder::Build,
    // solve from scratch, and translate the solution back into view ids.
    ++stats_.full_recomputes;
    stats_.nodes_recomputed += view.LiveCount();
    const Materialized materialized = MaterializeCompact();
    auto result = multiple::SolveMultipleNodDp(materialized.instance);
    feasible_ = result.feasible;
    if (!feasible_) {
      solution_ = Solution{};
      return;
    }
    if (!HasTopologyChanges()) {
      solution_ = std::move(result.solution);  // identity map, already canonical
      return;
    }
    // remap is view id -> compact id; the solution needs the inverse.
    std::vector<NodeId> inverse(materialized.instance.GetTree().Size(), kInvalidNode);
    for (NodeId view_id = 0; view_id < materialized.remap.size(); ++view_id) {
      if (materialized.remap[view_id] != kInvalidNode) {
        inverse[materialized.remap[view_id]] = view_id;
      }
    }
    solution_ = MapNodeIds(result.solution, inverse);
    solution_.Canonicalize();  // view ids sort differently than compact ids
    return;
  }

  // Incremental Multiple-NoD: dirty-chain recompute, full pass only when
  // forced (initial solve, capacity change).
  RPT_CHECK(engine_.has_value());
  if (full) {
    engine_->SetCapacity(capacity_);
    engine_->ComputeAll();
    ++stats_.full_recomputes;
  } else {
    engine_->RecomputeDirty(touched);
  }
  stats_.nodes_recomputed += engine_->LastPassNodes();
  stats_.nodes_reused += view.LiveCount() - engine_->LastPassNodes();
  feasible_ = engine_->Feasible();
  solution_ = feasible_ ? engine_->Backtrack() : Solution{};
}

}  // namespace rpt::incremental
