#include "gen/shapes.hpp"

namespace rpt::gen {

Tree MakeStar(std::uint32_t clients, std::span<const Requests> requests, Distance edge) {
  RPT_REQUIRE(clients >= 1, "MakeStar: need at least one client");
  RPT_REQUIRE(!requests.empty(), "MakeStar: need at least one request value");
  TreeBuilder builder;
  builder.Reserve(static_cast<std::size_t>(clients) + 1);
  const NodeId root = builder.AddRoot();
  for (std::uint32_t i = 0; i < clients; ++i) {
    builder.AddClient(root, edge, requests[i % requests.size()]);
  }
  return builder.Build();
}

Tree MakeChain(std::uint32_t depth, Requests requests, Distance edge) {
  RPT_REQUIRE(depth >= 1, "MakeChain: depth must be >= 1");
  TreeBuilder builder;
  builder.Reserve(static_cast<std::size_t>(depth) + 1);
  NodeId node = builder.AddRoot();
  for (std::uint32_t level = 1; level < depth; ++level) node = builder.AddInternal(node, edge);
  builder.AddClient(node, edge, requests);
  return builder.Build();
}

Tree MakeCaterpillar(std::span<const Requests> requests, Distance edge) {
  RPT_REQUIRE(!requests.empty(), "MakeCaterpillar: need at least one client");
  TreeBuilder builder;
  builder.Reserve(2 * requests.size());
  NodeId spine = builder.AddRoot();
  if (requests.size() == 1) {
    builder.AddClient(spine, edge, requests[0]);
    return builder.Build();
  }
  for (std::size_t i = 0; i + 2 < requests.size(); ++i) {
    builder.AddClient(spine, edge, requests[i]);
    spine = builder.AddInternal(spine, edge);
  }
  builder.AddClient(spine, edge, requests[requests.size() - 2]);
  builder.AddClient(spine, edge, requests[requests.size() - 1]);
  return builder.Build();
}

Tree MakeComb(std::span<const Requests> requests, std::uint32_t tooth_depth, Distance edge) {
  RPT_REQUIRE(!requests.empty(), "MakeComb: need at least one client");
  RPT_REQUIRE(tooth_depth >= 1, "MakeComb: tooth depth must be >= 1");
  TreeBuilder builder;
  NodeId spine = builder.AddRoot();
  auto add_tooth = [&](NodeId attach, Requests r) {
    NodeId node = attach;
    for (std::uint32_t level = 1; level < tooth_depth; ++level) {
      node = builder.AddInternal(node, edge);
    }
    builder.AddClient(node, edge, r);
  };
  if (requests.size() == 1) {
    add_tooth(spine, requests[0]);
    return builder.Build();
  }
  for (std::size_t i = 0; i + 2 < requests.size(); ++i) {
    add_tooth(spine, requests[i]);
    spine = builder.AddInternal(spine, edge);
  }
  add_tooth(spine, requests[requests.size() - 2]);
  add_tooth(spine, requests[requests.size() - 1]);
  return builder.Build();
}

}  // namespace rpt::gen
