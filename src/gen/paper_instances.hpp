// Constructors for the paper's tightness families (Figures 3 and 4).
//
// These are the worst-case instances the paper uses to prove that the
// approximation factors of Algorithms 1 and 2 cannot be improved. Each
// builder also reports the closed-form values the paper derives (optimal
// replica count and the count the respective algorithm reaches), which the
// tests assert and the benches tabulate.
#pragma once

#include <cstdint>

#include "model/instance.hpp"

namespace rpt::gen {

/// The instance Im of Fig. 3 plus its analytically known outcomes.
struct TightnessIm {
  Instance instance;          ///< tree with W = m∆+∆-1 and dmax = 4m
  std::uint64_t m = 0;        ///< number of concatenated blocks A_i
  std::uint32_t arity = 0;    ///< ∆
  std::uint64_t optimal = 0;  ///< |R_opt| = m + 1 (paper §3.3)
  std::uint64_t single_gen_expected = 0;  ///< |R_algo| = m(∆+1) (paper §3.3)
};

/// Builds Im (Fig. 3): m concatenated blocks A_1..A_m under root n_0.
///
/// Block A_i consists of internal nodes n_{i,1}, n_{i,2}, n_{i,3} and clients
/// c_{i,1..∆+1} with requests:
///   r(c_{i,j}) = 1 for j <= ∆-2,   r(c_{i,∆-1}) = m∆,
///   r(c_{i,∆}) = ∆-1,              r(c_{i,∆+1}) = 2.
/// All edges have length 1 except c_{i,∆} -> n_{i,1} which has length
/// dmax = 4m. Capacity W = m∆ + ∆ - 1. single-gen places m(∆+1) replicas on
/// this family while m+1 suffice, so its ratio tends to ∆+1.
/// Requires m >= 1 and arity >= 2.
[[nodiscard]] TightnessIm BuildTightnessIm(std::uint64_t m, std::uint32_t arity);

/// The Fig. 4 instance plus its analytically known outcomes.
struct TightnessFig4 {
  Instance instance;          ///< tree with W = K, no distance constraint
  std::uint64_t k = 0;        ///< number of gadget nodes n_1..n_K
  std::uint64_t optimal = 0;  ///< |R_opt| = K + 1 (paper §3.4)
  std::uint64_t single_nod_expected = 0;  ///< |R_algo| = 2K (paper §3.4)
};

/// Builds the Fig. 4 family: a root with K internal children n_1..n_K, each
/// n_i holding one client with K requests and one client with 1 request;
/// W = K, no distance constraint. single-nod places 2K replicas while K+1
/// suffice, so its ratio tends to 2. Requires k >= 2.
[[nodiscard]] TightnessFig4 BuildTightnessFig4(std::uint64_t k);

}  // namespace rpt::gen
