// Canonical tree shapes used by tests, benches and the examples: stars,
// chains, caterpillars and combs. These are the standard stress topologies
// for tree placement problems — stars maximize arity, chains maximize depth,
// caterpillars are the paper's own reduction scaffolding, combs mix both.
#pragma once

#include <cstdint>
#include <span>

#include "tree/tree.hpp"

namespace rpt::gen {

/// Star: a root with `clients` client children. Arity = clients, depth 1.
/// All edges have length `edge`; client i gets requests[i % requests.size()].
[[nodiscard]] Tree MakeStar(std::uint32_t clients, std::span<const Requests> requests,
                            Distance edge = 1);

/// Chain: root -> internal^(depth-1) -> single client with `requests`
/// requests. Every edge has length `edge`. Useful for forcing splitting
/// across a path (Multiple) or infeasibility (Single with r > W).
[[nodiscard]] Tree MakeChain(std::uint32_t depth, Requests requests, Distance edge = 1);

/// Caterpillar: a spine of internal nodes, one client hanging off each spine
/// node (the last spine node carries the final two clients so internal nodes
/// are never leaves). Binary. Client i gets requests[i]. Spine and hair
/// edges all have length `edge`.
[[nodiscard]] Tree MakeCaterpillar(std::span<const Requests> requests, Distance edge = 1);

/// Comb: like a caterpillar but each tooth is a chain of `tooth_depth`
/// internal nodes ending in one client. Depth grows along both dimensions.
[[nodiscard]] Tree MakeComb(std::span<const Requests> requests, std::uint32_t tooth_depth,
                            Distance edge = 1);

}  // namespace rpt::gen
