#include "gen/random_tree.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace rpt::gen {

Requests DrawRequests(Rng& rng, Requests min_requests, Requests max_requests, double skew) {
  RPT_REQUIRE(min_requests <= max_requests, "DrawRequests: empty range");
  RPT_REQUIRE(skew > 0.0, "DrawRequests: skew must be positive");
  if (min_requests == max_requests) return min_requests;
  const double u = std::pow(rng.NextUnit(), skew);
  const auto span = static_cast<double>(max_requests - min_requests);
  auto offset = static_cast<Requests>(u * (span + 1.0));
  if (offset > max_requests - min_requests) offset = max_requests - min_requests;
  return min_requests + offset;
}

namespace {

Distance DrawEdge(Rng& rng, Distance min_edge, Distance max_edge) {
  RPT_REQUIRE(min_edge <= max_edge, "edge length range empty");
  return rng.NextInRange(min_edge, max_edge);
}

// Fenwick tree over 0/1 membership supporting "select the k-th set index in
// ascending order" in O(log n). Lets GenerateRandomTree pick a uniformly
// random open parent without rebuilding the open list per node (which made
// generation quadratic and put 10^7-node forests out of reach). Selection
// order matches the ascending scan the old code used, and the caller draws
// the same NextBelow(count) — so the generated trees are byte-identical for
// every seed.
class OpenSlotIndex {
 public:
  explicit OpenSlotIndex(std::size_t capacity) : tree_(capacity + 1, 0) {}

  void Insert(std::size_t index) {
    ++count_;
    for (std::size_t i = index + 1; i < tree_.size(); i += i & (~i + 1)) ++tree_[i];
  }

  void Remove(std::size_t index) {
    --count_;
    for (std::size_t i = index + 1; i < tree_.size(); i += i & (~i + 1)) --tree_[i];
  }

  std::size_t Count() const { return count_; }

  // Returns the k-th (0-based) present index in ascending order.
  std::size_t Select(std::size_t k) const {
    RPT_CHECK(k < count_);
    std::size_t pos = 0;
    std::size_t remaining = k + 1;
    std::size_t mask = 1;
    while (mask * 2 < tree_.size()) mask *= 2;
    for (; mask != 0; mask /= 2) {
      const std::size_t next = pos + mask;
      if (next < tree_.size() && tree_[next] < remaining) {
        remaining -= tree_[next];
        pos = next;
      }
    }
    return pos;  // pos is 1-based inside the tree; index = pos + 1 - 1
  }

 private:
  std::vector<std::uint32_t> tree_;
  std::size_t count_ = 0;
};

}  // namespace

Tree GenerateRandomTree(const RandomTreeConfig& config, std::uint64_t seed) {
  RPT_REQUIRE(config.internal_nodes >= 1, "GenerateRandomTree: need at least the root");
  RPT_REQUIRE(config.max_children >= 2, "GenerateRandomTree: max_children must be >= 2");
  Rng rng(seed);

  TreeBuilder builder;
  builder.Reserve(static_cast<std::size_t>(config.internal_nodes) + config.clients);
  const NodeId root = builder.AddRoot();

  // Internal skeleton: attach each new internal node to a uniformly random
  // existing internal node that still has a free child slot. The open set
  // lives in a Fenwick index (uniform pick in O(log n) instead of an O(n)
  // rescan per node); same seeds yield the same trees as the scan did.
  std::vector<NodeId> internals{root};
  std::vector<std::uint32_t> used_slots{0};
  internals.reserve(config.internal_nodes);
  used_slots.reserve(config.internal_nodes);
  OpenSlotIndex open(config.internal_nodes);
  open.Insert(0);
  auto pick_open_internal = [&]() -> std::size_t {
    RPT_REQUIRE(open.Count() > 0,
                "GenerateRandomTree: no free child slots; raise max_children or lower node count");
    return open.Select(static_cast<std::size_t>(rng.NextBelow(open.Count())));
  };
  auto take_slot = [&](std::size_t index) {
    if (++used_slots[index] == config.max_children) open.Remove(index);
  };
  for (std::uint32_t i = 1; i < config.internal_nodes; ++i) {
    const std::size_t parent_index = pick_open_internal();
    const NodeId node = builder.AddInternal(internals[parent_index],
                                            DrawEdge(rng, config.min_edge, config.max_edge));
    take_slot(parent_index);
    internals.push_back(node);
    used_slots.push_back(0);
    open.Insert(internals.size() - 1);
  }

  // Every childless internal node gets one client first (internal nodes must
  // not be leaves), then the remaining clients go to random open slots.
  std::uint32_t clients_left = config.clients;
  for (std::size_t i = 0; i < internals.size(); ++i) {
    if (used_slots[i] == 0) {
      RPT_REQUIRE(clients_left > 0,
                  "GenerateRandomTree: not enough clients to cover childless internal nodes");
      builder.AddClient(internals[i], DrawEdge(rng, config.min_edge, config.max_edge),
                        DrawRequests(rng, config.min_requests, config.max_requests,
                                     config.request_skew));
      take_slot(i);
      --clients_left;
    }
  }
  while (clients_left > 0) {
    const std::size_t parent_index = pick_open_internal();
    builder.AddClient(internals[parent_index], DrawEdge(rng, config.min_edge, config.max_edge),
                      DrawRequests(rng, config.min_requests, config.max_requests,
                                   config.request_skew));
    take_slot(parent_index);
    --clients_left;
  }
  return builder.Build();
}

namespace {

// Recursively expands `node` into a subtree with `leaves` clients.
void GrowBinary(TreeBuilder& builder, Rng& rng, const BinaryTreeConfig& config, NodeId node,
                std::uint32_t leaves) {
  RPT_CHECK(leaves >= 1);
  if (leaves == 1) {
    builder.AddClient(node, DrawEdge(rng, config.min_edge, config.max_edge),
                      DrawRequests(rng, config.min_requests, config.max_requests,
                                   config.request_skew));
    return;
  }
  std::uint32_t left;
  if (config.balanced) {
    const std::uint32_t lo = std::max<std::uint32_t>(1, leaves / 4);
    const std::uint32_t hi = std::max(lo, leaves - 1 - leaves / 4 + (leaves >= 4 ? 0U : 0U));
    left = static_cast<std::uint32_t>(rng.NextInRange(lo, std::min(hi, leaves - 1)));
  } else {
    left = static_cast<std::uint32_t>(rng.NextInRange(1, leaves - 1));
  }
  const std::uint32_t right = leaves - left;
  auto expand = [&](std::uint32_t count) {
    if (count == 1) {
      builder.AddClient(node, DrawEdge(rng, config.min_edge, config.max_edge),
                        DrawRequests(rng, config.min_requests, config.max_requests,
                                     config.request_skew));
    } else {
      const NodeId child =
          builder.AddInternal(node, DrawEdge(rng, config.min_edge, config.max_edge));
      GrowBinary(builder, rng, config, child, count);
    }
  };
  expand(left);
  expand(right);
}

}  // namespace

Tree GenerateFullBinaryTree(const BinaryTreeConfig& config, std::uint64_t seed) {
  RPT_REQUIRE(config.clients >= 1, "GenerateFullBinaryTree: need at least one client");
  Rng rng(seed);
  TreeBuilder builder;
  builder.Reserve(2 * static_cast<std::size_t>(config.clients));
  const NodeId root = builder.AddRoot();
  GrowBinary(builder, rng, config, root, config.clients);
  Tree tree = builder.Build();
  RPT_CHECK(tree.IsBinary());
  RPT_CHECK(tree.ClientCount() == config.clients);
  return tree;
}

}  // namespace rpt::gen
