#include "gen/paper_instances.hpp"

namespace rpt::gen {

TightnessIm BuildTightnessIm(std::uint64_t m, std::uint32_t arity) {
  RPT_REQUIRE(m >= 1, "BuildTightnessIm: m must be >= 1");
  RPT_REQUIRE(arity >= 2, "BuildTightnessIm: arity must be >= 2");
  const std::uint64_t delta = arity;
  const Distance dmax = 4 * m;
  const Requests capacity = m * delta + delta - 1;

  TreeBuilder builder;
  const NodeId root = builder.AddRoot();  // n_0
  NodeId attach = root;                   // where the next block hangs
  for (std::uint64_t i = 1; i <= m; ++i) {
    const NodeId n1 = builder.AddInternal(attach, 1);
    // c_{i,∆}: the distance-critical client, reachable only by itself or n_1.
    builder.AddClient(n1, dmax, delta - 1);
    const NodeId n2 = builder.AddInternal(n1, 1);
    // c_{i,1..∆-2}: unit-request clients.
    for (std::uint64_t j = 1; j + 1 <= delta - 1; ++j) builder.AddClient(n2, 1, 1);
    // c_{i,∆-1}: the heavy client with m∆ requests.
    builder.AddClient(n2, 1, m * delta);
    const NodeId n3 = builder.AddInternal(n2, 1);
    // c_{i,∆+1}: two requests pending through n_3.
    builder.AddClient(n3, 1, 2);
    attach = n3;
  }

  TightnessIm out{Instance(builder.Build(), capacity, dmax), m, arity, m + 1, m * (delta + 1)};
  RPT_CHECK(out.instance.GetTree().Arity() == arity);
  // Total requests per the paper: m (m∆ + 2∆ - 1).
  RPT_CHECK(out.instance.GetTree().TotalRequests() == m * (m * delta + 2 * delta - 1));
  return out;
}

TightnessFig4 BuildTightnessFig4(std::uint64_t k) {
  RPT_REQUIRE(k >= 2, "BuildTightnessFig4: k must be >= 2");
  TreeBuilder builder;
  const NodeId root = builder.AddRoot();
  for (std::uint64_t i = 0; i < k; ++i) {
    const NodeId ni = builder.AddInternal(root, 1);
    builder.AddClient(ni, 1, k);  // heavy client, exactly W requests
    builder.AddClient(ni, 1, 1);  // light client, absorbed by the root in OPT
  }
  TightnessFig4 out{Instance(builder.Build(), /*capacity=*/k, kNoDistanceLimit), k, k + 1, 2 * k};
  RPT_CHECK(out.instance.GetTree().TotalRequests() == k * (k + 1));
  return out;
}

}  // namespace rpt::gen
