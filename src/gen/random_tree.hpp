// Random tree / instance generators for tests and benchmark workloads.
//
// All generators are deterministic in the given seed. Two topology styles:
//  * GenerateRandomTree — general trees with bounded arity, used for the
//    Single-policy experiments and scaling benches;
//  * GenerateFullBinaryTree — uniformly shaped full binary trees (every
//    internal node has exactly two children), the input class of the
//    Multiple-Bin optimal algorithm.
#pragma once

#include <cstdint>

#include "model/instance.hpp"
#include "support/rng.hpp"
#include "tree/tree.hpp"

namespace rpt::gen {

/// Configuration for GenerateRandomTree.
struct RandomTreeConfig {
  /// Number of internal nodes (>= 1; node 0 is the root).
  std::uint32_t internal_nodes = 8;
  /// Number of client leaves (>= number of childless internal nodes).
  std::uint32_t clients = 16;
  /// Maximum children per internal node (>= 2).
  std::uint32_t max_children = 4;
  /// Edge length range [min_edge, max_edge], inclusive.
  Distance min_edge = 1;
  Distance max_edge = 4;
  /// Client request range [min_requests, max_requests], inclusive.
  Requests min_requests = 1;
  Requests max_requests = 10;
  /// Skew exponent for requests: u^skew maps uniform u in [0,1) onto the
  /// request range; skew=1 is uniform, larger values bias towards
  /// min_requests with a heavy tail to max_requests.
  double request_skew = 1.0;
};

/// Generates a random tree per the config. Throws InvalidArgument when the
/// config is unsatisfiable (e.g. not enough child slots for all nodes).
[[nodiscard]] Tree GenerateRandomTree(const RandomTreeConfig& config, std::uint64_t seed);

/// Configuration for GenerateFullBinaryTree.
struct BinaryTreeConfig {
  /// Number of client leaves (>= 1). The tree has clients-1 internal nodes
  /// for clients >= 2, plus the root; a single client hangs off the root.
  std::uint32_t clients = 16;
  Distance min_edge = 1;
  Distance max_edge = 4;
  Requests min_requests = 1;
  Requests max_requests = 10;
  double request_skew = 1.0;
  /// When true the split at each internal node is balanced-ish (within 25/75)
  /// instead of uniform, producing shallower trees.
  bool balanced = false;
};

/// Generates a random full binary tree (every internal node except possibly
/// the root has exactly two children; the root has two for clients >= 2).
[[nodiscard]] Tree GenerateFullBinaryTree(const BinaryTreeConfig& config, std::uint64_t seed);

/// Draws a request count from [min,max] with the given skew exponent.
[[nodiscard]] Requests DrawRequests(Rng& rng, Requests min_requests, Requests max_requests,
                                    double skew);

}  // namespace rpt::gen
