// Public facade: a uniform interface over every placement algorithm in the
// library. Examples and the benchmark harness run solvers through this
// registry so each experiment names algorithms rather than hard-coding calls.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "model/instance.hpp"
#include "model/solution.hpp"
#include "model/validate.hpp"

namespace rpt::core {

/// Identifiers of all bundled solvers.
enum class Algorithm : std::uint8_t {
  kSingleGen,       ///< Algorithm 1: (∆+1)-approx, Single, with distances
  kSingleNod,       ///< Algorithm 2: 2-approx, Single, no distances
  kClientLocal,     ///< trivial: replica at every requesting client
  kGreedyBestFit,   ///< greedy Single baseline
  kSinglePushRoot,  ///< push-toward-root strategy from the paper's conclusion
  kMultipleBin,        ///< Algorithm 3: Multiple, binary, r_i <= W (optimal on NoD;
                       ///< see EXPERIMENTS.md E6 for the distance-constrained gap)
  kMultipleBinPruned,  ///< Algorithm 3 followed by flow-based replica pruning
  kMultipleGreedy,      ///< greedy Multiple baseline with splitting
  kMultipleLocalSearch, ///< construction + pruning + relocation local search
  kMultipleNodDp,   ///< exact Multiple-NoD tree-knapsack DP
  kExactSingle,     ///< exhaustive optimal Single (small instances)
  kExactMultiple,   ///< exhaustive optimal Multiple (small instances)
};

/// All algorithms, in a stable order for iteration.
[[nodiscard]] const std::vector<Algorithm>& AllAlgorithms();

/// Stable string name (e.g. "single-gen").
[[nodiscard]] std::string_view AlgorithmName(Algorithm algorithm);

/// Parses a name back to an Algorithm; throws InvalidArgument on unknown.
[[nodiscard]] Algorithm ParseAlgorithm(std::string_view name);

/// The policy whose constraints the algorithm's output satisfies. (A Single
/// solution is also feasible under Multiple.)
[[nodiscard]] Policy AlgorithmPolicy(Algorithm algorithm);

/// True iff the algorithm is guaranteed optimal on instances it accepts.
[[nodiscard]] bool IsOptimal(Algorithm algorithm);

/// Checks applicability; returns an explanation when not applicable
/// (e.g. "requires a binary tree"), std::nullopt when applicable.
[[nodiscard]] std::optional<std::string> WhyNotApplicable(Algorithm algorithm,
                                                          const Instance& instance);

/// Outcome of one solver run.
struct RunResult {
  Algorithm algorithm{};
  bool feasible = false;       ///< a solution was produced
  Solution solution;           ///< empty when infeasible
  double elapsed_ms = 0.0;     ///< wall time of the solve call
  ValidationReport validation; ///< independent re-check of the solution
};

/// Runs one algorithm on the instance, times it, and validates the output
/// against the algorithm's policy. Throws InvalidArgument when the algorithm
/// is not applicable (check WhyNotApplicable first for graceful skipping).
[[nodiscard]] RunResult Run(Algorithm algorithm, const Instance& instance);

}  // namespace rpt::core
