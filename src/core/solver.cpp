#include "core/solver.hpp"

#include <string>

#include "exact/exact.hpp"
#include "multiple/greedy.hpp"
#include "multiple/multiple_bin.hpp"
#include "multiple/multiple_nod_dp.hpp"
#include "multiple/local_search.hpp"
#include "multiple/prune.hpp"
#include "single/baselines.hpp"
#include "single/push_root.hpp"
#include "single/single_gen.hpp"
#include "single/single_nod.hpp"
#include "support/timer.hpp"

namespace rpt::core {

const std::vector<Algorithm>& AllAlgorithms() {
  static const std::vector<Algorithm> all = {
      Algorithm::kSingleGen,     Algorithm::kSingleNod,      Algorithm::kClientLocal,
      Algorithm::kGreedyBestFit, Algorithm::kSinglePushRoot, Algorithm::kMultipleBin,
      Algorithm::kMultipleBinPruned, Algorithm::kMultipleGreedy, Algorithm::kMultipleLocalSearch,
      Algorithm::kMultipleNodDp, Algorithm::kExactSingle,    Algorithm::kExactMultiple,
  };
  return all;
}

std::string_view AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSingleGen: return "single-gen";
    case Algorithm::kSingleNod: return "single-nod";
    case Algorithm::kClientLocal: return "client-local";
    case Algorithm::kGreedyBestFit: return "greedy-best-fit";
    case Algorithm::kSinglePushRoot: return "single-push";
    case Algorithm::kMultipleBin: return "multiple-bin";
    case Algorithm::kMultipleBinPruned: return "multiple-bin-pruned";
    case Algorithm::kMultipleGreedy: return "multiple-greedy";
    case Algorithm::kMultipleLocalSearch: return "multiple-local-search";
    case Algorithm::kMultipleNodDp: return "multiple-nod-dp";
    case Algorithm::kExactSingle: return "exact-single";
    case Algorithm::kExactMultiple: return "exact-multiple";
  }
  detail::ThrowInvalid("AlgorithmName: unknown algorithm");
}

Algorithm ParseAlgorithm(std::string_view name) {
  for (const Algorithm algorithm : AllAlgorithms()) {
    if (AlgorithmName(algorithm) == name) return algorithm;
  }
  detail::ThrowInvalid("ParseAlgorithm: unknown algorithm: " + std::string(name));
}

Policy AlgorithmPolicy(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSingleGen:
    case Algorithm::kSingleNod:
    case Algorithm::kClientLocal:
    case Algorithm::kGreedyBestFit:
    case Algorithm::kSinglePushRoot:
    case Algorithm::kExactSingle:
      return Policy::kSingle;
    case Algorithm::kMultipleBin:
    case Algorithm::kMultipleBinPruned:
    case Algorithm::kMultipleGreedy:
    case Algorithm::kMultipleLocalSearch:
    case Algorithm::kMultipleNodDp:
    case Algorithm::kExactMultiple:
      return Policy::kMultiple;
  }
  detail::ThrowInvalid("AlgorithmPolicy: unknown algorithm");
}

bool IsOptimal(Algorithm algorithm) {
  switch (algorithm) {
    // Note: the paper's Theorem 6 claims multiple-bin is optimal on all
    // Multiple-Bin instances. Our reproduction found distance-constrained
    // counterexamples (EXPERIMENTS.md, E6), so the flag is honest: the
    // guarantee we could verify holds only without distance constraints,
    // and kMultipleBin is therefore not flagged unconditionally optimal.
    case Algorithm::kMultipleNodDp:
    case Algorithm::kExactSingle:
    case Algorithm::kExactMultiple:
      return true;
    default:
      return false;
  }
}

std::optional<std::string> WhyNotApplicable(Algorithm algorithm, const Instance& instance) {
  const bool fits_locally = instance.AllRequestsFitLocally();
  switch (algorithm) {
    case Algorithm::kSingleGen:
    case Algorithm::kClientLocal:
    case Algorithm::kGreedyBestFit:
    case Algorithm::kSinglePushRoot:
      if (!fits_locally) return "some client has r_i > W (no Single solution exists)";
      return std::nullopt;
    case Algorithm::kSingleNod:
      if (instance.HasDistanceConstraint()) return "requires no distance constraint (NoD)";
      if (!fits_locally) return "some client has r_i > W (no Single solution exists)";
      return std::nullopt;
    case Algorithm::kMultipleBin:
    case Algorithm::kMultipleBinPruned:
      if (!instance.GetTree().IsBinary()) return "requires a binary tree";
      if (!fits_locally) return "requires r_i <= W (Theorem 6 precondition)";
      return std::nullopt;
    case Algorithm::kMultipleGreedy:
    case Algorithm::kMultipleLocalSearch:
      if (!fits_locally) return "requires r_i <= W for a guaranteed feasible start";
      return std::nullopt;
    case Algorithm::kMultipleNodDp:
      if (instance.HasDistanceConstraint()) return "requires no distance constraint (NoD)";
      return std::nullopt;
    case Algorithm::kExactSingle:
    case Algorithm::kExactMultiple:
      if (instance.GetTree().Size() > 24) return "instance too large for exhaustive search";
      return std::nullopt;
  }
  detail::ThrowInvalid("WhyNotApplicable: unknown algorithm");
}

RunResult Run(Algorithm algorithm, const Instance& instance) {
  if (const auto reason = WhyNotApplicable(algorithm, instance)) {
    detail::ThrowInvalid(std::string(AlgorithmName(algorithm)) + ": not applicable: " + *reason);
  }
  RunResult result;
  result.algorithm = algorithm;
  Timer timer;
  switch (algorithm) {
    case Algorithm::kSingleGen:
      result.solution = single::SolveSingleGen(instance).solution;
      result.feasible = true;
      break;
    case Algorithm::kSingleNod:
      result.solution = single::SolveSingleNod(instance).solution;
      result.feasible = true;
      break;
    case Algorithm::kClientLocal:
      result.solution = single::SolveClientLocal(instance);
      result.feasible = true;
      break;
    case Algorithm::kGreedyBestFit:
      result.solution = single::SolveGreedyBestFit(instance);
      result.feasible = true;
      break;
    case Algorithm::kSinglePushRoot:
      result.solution = single::SolveSinglePushRoot(instance).solution;
      result.feasible = true;
      break;
    case Algorithm::kMultipleBin:
      result.solution = multiple::SolveMultipleBin(instance).solution;
      result.feasible = true;
      break;
    case Algorithm::kMultipleBinPruned: {
      const auto base = multiple::SolveMultipleBin(instance);
      result.solution = multiple::PruneReplicas(instance, base.solution).solution;
      result.feasible = true;
      break;
    }
    case Algorithm::kMultipleGreedy:
      result.solution = multiple::SolveMultipleGreedy(instance);
      result.feasible = true;
      break;
    case Algorithm::kMultipleLocalSearch:
      result.solution = multiple::SolveMultipleLocalSearch(instance).solution;
      result.feasible = true;
      break;
    case Algorithm::kMultipleNodDp: {
      auto dp = multiple::SolveMultipleNodDp(instance);
      result.feasible = dp.feasible;
      result.solution = std::move(dp.solution);
      break;
    }
    case Algorithm::kExactSingle: {
      auto exact = exact::SolveExactSingle(instance);
      result.feasible = exact.feasible;
      result.solution = std::move(exact.solution);
      break;
    }
    case Algorithm::kExactMultiple: {
      auto exact = exact::SolveExactMultiple(instance);
      result.feasible = exact.feasible;
      result.solution = std::move(exact.solution);
      break;
    }
  }
  result.elapsed_ms = timer.ElapsedMs();
  if (result.feasible) {
    result.validation = ValidateSolution(instance, AlgorithmPolicy(algorithm), result.solution);
    RPT_CHECK(result.validation.ok);
  }
  return result;
}

}  // namespace rpt::core
