#include "model/validate.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace rpt {

namespace {
constexpr std::size_t kMaxErrors = 32;
}

void ValidationReport::Fail(std::string message) {
  ok = false;
  if (errors.size() < kMaxErrors) errors.push_back(std::move(message));
}

std::string ValidationReport::Describe() const {
  if (ok) return "ok";
  std::ostringstream os;
  for (const auto& error : errors) os << error << "; ";
  return os.str();
}

ValidationReport ValidateSolution(const Instance& instance, Policy policy,
                                  const Solution& solution, bool forbid_idle_replicas) {
  ValidationReport report;
  const Tree& tree = instance.GetTree();

  // 1. Replica set sanity.
  std::unordered_set<NodeId> replicas;
  for (NodeId replica : solution.replicas) {
    if (replica >= tree.Size()) {
      report.Fail("replica id out of range: " + std::to_string(replica));
      continue;
    }
    if (!replicas.insert(replica).second) {
      report.Fail("duplicate replica: " + std::to_string(replica));
    }
  }

  // 2. Per-entry checks; accumulate per-client and per-server totals.
  std::unordered_map<NodeId, Requests> served_of_client;
  std::unordered_map<NodeId, Requests> load_of_server;
  std::unordered_map<NodeId, std::set<NodeId>> servers_of_client;
  for (const ServiceEntry& entry : solution.assignment) {
    if (entry.client >= tree.Size() || !tree.IsClient(entry.client)) {
      report.Fail("assignment from non-client node " + std::to_string(entry.client));
      continue;
    }
    if (entry.server >= tree.Size()) {
      report.Fail("assignment to invalid server id " + std::to_string(entry.server));
      continue;
    }
    if (entry.amount == 0) {
      report.Fail("zero-amount assignment for client " + std::to_string(entry.client));
      continue;
    }
    if (!replicas.contains(entry.server)) {
      report.Fail("assignment to non-replica node " + std::to_string(entry.server));
    }
    if (!tree.IsAncestorOrSelf(entry.server, entry.client)) {
      report.Fail("server " + std::to_string(entry.server) + " not on root path of client " +
                  std::to_string(entry.client));
    } else if (instance.HasDistanceConstraint() &&
               tree.DistToAncestor(entry.client, entry.server) > instance.Dmax()) {
      report.Fail("distance constraint violated: client " + std::to_string(entry.client) +
                  " -> server " + std::to_string(entry.server));
    }
    served_of_client[entry.client] += entry.amount;
    load_of_server[entry.server] += entry.amount;
    servers_of_client[entry.client].insert(entry.server);
  }

  // 3. Completeness: every client fully served (clients with r_i = 0 are
  // trivially complete and need no entries).
  for (NodeId client : tree.Clients()) {
    const Requests needed = tree.RequestsOf(client);
    const auto it = served_of_client.find(client);
    const Requests served = it == served_of_client.end() ? 0 : it->second;
    if (served != needed) {
      report.Fail("client " + std::to_string(client) + " served " + std::to_string(served) +
                  " of " + std::to_string(needed) + " requests");
    }
  }

  // 4. Single policy: one server per client.
  if (policy == Policy::kSingle) {
    for (const auto& [client, servers] : servers_of_client) {
      if (servers.size() > 1) {
        report.Fail("Single policy: client " + std::to_string(client) + " uses " +
                    std::to_string(servers.size()) + " servers");
      }
    }
  }

  // 5. Capacity.
  for (const auto& [server, load] : load_of_server) {
    if (load > instance.Capacity()) {
      report.Fail("server " + std::to_string(server) + " overloaded: " + std::to_string(load) +
                  " > W=" + std::to_string(instance.Capacity()));
    }
  }

  // 6. Optional: idle replicas.
  if (forbid_idle_replicas) {
    for (NodeId replica : replicas) {
      if (!load_of_server.contains(replica)) {
        report.Fail("idle replica: " + std::to_string(replica));
      }
    }
  }

  return report;
}

bool IsFeasible(const Instance& instance, Policy policy, const Solution& solution) {
  return ValidateSolution(instance, policy, solution).ok;
}

}  // namespace rpt
