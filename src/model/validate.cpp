#include "model/validate.hpp"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

namespace rpt {

namespace {
constexpr std::size_t kMaxErrors = 32;
}

void ValidationReport::Fail(std::string message) {
  ok = false;
  if (errors.size() < kMaxErrors) errors.push_back(std::move(message));
}

std::string ValidationReport::Describe() const {
  if (ok) return "ok";
  std::ostringstream os;
  for (const auto& error : errors) os << error << "; ";
  return os.str();
}

ValidationReport ValidateSolution(const Instance& instance, Policy policy,
                                  const Solution& solution, bool forbid_idle_replicas) {
  ValidationReport report;
  const Tree& tree = instance.GetTree();

  // All bookkeeping is NodeId-indexed flat columns — the validator runs
  // after every solver call, so it must not hash or node-allocate.
  // 1. Replica set sanity.
  std::vector<char> is_replica(tree.Size(), 0);
  for (NodeId replica : solution.replicas) {
    if (replica >= tree.Size()) {
      report.Fail("replica id out of range: " + std::to_string(replica));
      continue;
    }
    if (is_replica[replica]) {
      report.Fail("duplicate replica: " + std::to_string(replica));
    }
    is_replica[replica] = 1;
  }

  // 2. Per-entry checks; accumulate per-client and per-server totals.
  std::vector<Requests> served_of_client(tree.Size(), 0);
  std::vector<Requests> load_of_server(tree.Size(), 0);
  std::vector<std::pair<NodeId, NodeId>> client_server_pairs;
  if (policy == Policy::kSingle) client_server_pairs.reserve(solution.assignment.size());
  for (const ServiceEntry& entry : solution.assignment) {
    if (entry.client >= tree.Size() || !tree.IsClient(entry.client)) {
      report.Fail("assignment from non-client node " + std::to_string(entry.client));
      continue;
    }
    if (entry.server >= tree.Size()) {
      report.Fail("assignment to invalid server id " + std::to_string(entry.server));
      continue;
    }
    if (entry.amount == 0) {
      report.Fail("zero-amount assignment for client " + std::to_string(entry.client));
      continue;
    }
    if (!is_replica[entry.server]) {
      report.Fail("assignment to non-replica node " + std::to_string(entry.server));
    }
    if (!tree.IsAncestorOrSelf(entry.server, entry.client)) {
      report.Fail("server " + std::to_string(entry.server) + " not on root path of client " +
                  std::to_string(entry.client));
    } else if (instance.HasDistanceConstraint() &&
               tree.DistToAncestor(entry.client, entry.server) > instance.Dmax()) {
      report.Fail("distance constraint violated: client " + std::to_string(entry.client) +
                  " -> server " + std::to_string(entry.server));
    }
    served_of_client[entry.client] += entry.amount;
    load_of_server[entry.server] += entry.amount;
    if (policy == Policy::kSingle) client_server_pairs.emplace_back(entry.client, entry.server);
  }

  // 3. Completeness: every client fully served (clients with r_i = 0 are
  // trivially complete and need no entries).
  for (NodeId client : tree.Clients()) {
    const Requests needed = tree.RequestsOf(client);
    const Requests served = served_of_client[client];
    if (served != needed) {
      report.Fail("client " + std::to_string(client) + " served " + std::to_string(served) +
                  " of " + std::to_string(needed) + " requests");
    }
  }

  // 4. Single policy: one server per client (count distinct servers per
  // client over the sorted pair list).
  if (policy == Policy::kSingle) {
    std::sort(client_server_pairs.begin(), client_server_pairs.end());
    std::size_t i = 0;
    while (i < client_server_pairs.size()) {
      const NodeId client = client_server_pairs[i].first;
      std::size_t distinct = 0;
      NodeId last_server = kInvalidNode;
      for (; i < client_server_pairs.size() && client_server_pairs[i].first == client; ++i) {
        if (client_server_pairs[i].second != last_server) {
          ++distinct;
          last_server = client_server_pairs[i].second;
        }
      }
      if (distinct > 1) {
        report.Fail("Single policy: client " + std::to_string(client) + " uses " +
                    std::to_string(distinct) + " servers");
      }
    }
  }

  // 5. Capacity.
  for (NodeId server = 0; server < tree.Size(); ++server) {
    if (load_of_server[server] > instance.Capacity()) {
      report.Fail("server " + std::to_string(server) + " overloaded: " +
                  std::to_string(load_of_server[server]) +
                  " > W=" + std::to_string(instance.Capacity()));
    }
  }

  // 6. Optional: idle replicas.
  if (forbid_idle_replicas) {
    for (NodeId replica = 0; replica < tree.Size(); ++replica) {
      if (is_replica[replica] && load_of_server[replica] == 0) {
        report.Fail("idle replica: " + std::to_string(replica));
      }
    }
  }

  return report;
}

bool IsFeasible(const Instance& instance, Policy policy, const Solution& solution) {
  return ValidateSolution(instance, policy, solution).ok;
}

}  // namespace rpt

