// Independent solution validator.
//
// Every solver output in this library is checked against this validator in
// tests and at harness time. It shares no code with the solvers: constraints
// are re-derived from the Instance and Solution alone, so a bug in a solver
// cannot hide inside the checker.
#pragma once

#include <string>
#include <vector>

#include "model/instance.hpp"
#include "model/solution.hpp"

namespace rpt {

/// Result of validating a solution. `ok` iff all constraints hold; otherwise
/// `errors` lists (up to a cap) human-readable violations.
struct ValidationReport {
  bool ok = true;
  std::vector<std::string> errors;

  /// Adds an error (capped; the flag always flips).
  void Fail(std::string message);

  /// Joins errors for test output.
  [[nodiscard]] std::string Describe() const;
};

/// Checks all constraints of the paper's framework (§2):
///  1. replica ids are valid and unique;
///  2. every assignment routes a positive amount from a real client to a
///     placed replica on the client's root path, within dmax;
///  3. every client's requests are fully routed (sum of amounts == r_i);
///  4. Single policy: each client uses exactly one server;
///  5. every server's load is at most W;
///  6. no replica is useless (placed but serving nothing) — reported as a
///     warning-level failure only when `forbid_idle_replicas` is set, since
///     an idle replica is feasible but never helps the objective.
[[nodiscard]] ValidationReport ValidateSolution(const Instance& instance, Policy policy,
                                                const Solution& solution,
                                                bool forbid_idle_replicas = false);

/// Convenience: true iff the solution validates.
[[nodiscard]] bool IsFeasible(const Instance& instance, Policy policy, const Solution& solution);

}  // namespace rpt
