#include "model/solution.hpp"

#include <algorithm>
#include <map>

#include "support/common.hpp"

namespace rpt {

void Solution::Canonicalize() {
  std::sort(replicas.begin(), replicas.end());
  replicas.erase(std::unique(replicas.begin(), replicas.end()), replicas.end());
  // Sort by (client, server), then merge duplicates in place — same
  // canonical order a (client, server)-keyed map would produce, without the
  // per-entry node allocations.
  std::sort(assignment.begin(), assignment.end(),
            [](const ServiceEntry& a, const ServiceEntry& b) {
              if (a.client != b.client) return a.client < b.client;
              return a.server < b.server;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < assignment.size();) {
    const NodeId client = assignment[i].client;
    const NodeId server = assignment[i].server;
    Requests amount = 0;
    for (; i < assignment.size() && assignment[i].client == client &&
           assignment[i].server == server;
         ++i) {
      amount += assignment[i].amount;
    }
    if (amount > 0) assignment[out++] = ServiceEntry{client, server, amount};
  }
  assignment.resize(out);
}

Solution MapNodeIds(const Solution& solution, std::span<const NodeId> map) {
  const auto remap = [&map](NodeId id) {
    RPT_REQUIRE(id < map.size() && map[id] != kInvalidNode,
                "MapNodeIds: solution references an unmapped node id");
    return map[id];
  };
  Solution out;
  out.replicas.reserve(solution.replicas.size());
  for (NodeId replica : solution.replicas) out.replicas.push_back(remap(replica));
  out.assignment.reserve(solution.assignment.size());
  for (const ServiceEntry& entry : solution.assignment) {
    out.assignment.push_back(ServiceEntry{remap(entry.client), remap(entry.server), entry.amount});
  }
  return out;
}

LoadSummary SummarizeLoads(const Tree& tree, Requests capacity, const Solution& solution) {
  (void)tree;
  RPT_REQUIRE(capacity > 0, "SummarizeLoads: capacity must be positive");
  std::map<NodeId, Requests> load;
  for (NodeId replica : solution.replicas) load[replica] = 0;
  for (const ServiceEntry& entry : solution.assignment) load[entry.server] += entry.amount;
  LoadSummary summary;
  for (const auto& [server, amount] : load) {
    summary.max_load = std::max(summary.max_load, amount);
    summary.total_load += amount;
  }
  if (!load.empty()) {
    summary.mean_load =
        static_cast<double>(summary.total_load) / static_cast<double>(load.size());
    summary.utilization = static_cast<double>(summary.total_load) /
                          (static_cast<double>(load.size()) * static_cast<double>(capacity));
  }
  return summary;
}

}  // namespace rpt
