#include "model/solution.hpp"

#include <algorithm>
#include <map>

#include "support/common.hpp"

namespace rpt {

void Solution::Canonicalize() {
  std::sort(replicas.begin(), replicas.end());
  replicas.erase(std::unique(replicas.begin(), replicas.end()), replicas.end());
  // Merge duplicate (client, server) entries, then sort.
  std::map<std::pair<NodeId, NodeId>, Requests> merged;
  for (const ServiceEntry& entry : assignment) {
    merged[{entry.client, entry.server}] += entry.amount;
  }
  assignment.clear();
  assignment.reserve(merged.size());
  for (const auto& [key, amount] : merged) {
    if (amount > 0) assignment.push_back(ServiceEntry{key.first, key.second, amount});
  }
}

LoadSummary SummarizeLoads(const Tree& tree, Requests capacity, const Solution& solution) {
  (void)tree;
  RPT_REQUIRE(capacity > 0, "SummarizeLoads: capacity must be positive");
  std::map<NodeId, Requests> load;
  for (NodeId replica : solution.replicas) load[replica] = 0;
  for (const ServiceEntry& entry : solution.assignment) load[entry.server] += entry.amount;
  LoadSummary summary;
  for (const auto& [server, amount] : load) {
    summary.max_load = std::max(summary.max_load, amount);
    summary.total_load += amount;
  }
  if (!load.empty()) {
    summary.mean_load =
        static_cast<double>(summary.total_load) / static_cast<double>(load.size());
    summary.utilization = static_cast<double>(summary.total_load) /
                          (static_cast<double>(load.size()) * static_cast<double>(capacity));
  }
  return summary;
}

}  // namespace rpt
