// Text serialization for solutions, mirroring the rpt-tree format so whole
// (instance, placement) pairs can be stored, diffed and replayed by tooling.
//
// Format (line oriented, '#' comments allowed):
//   rpt-solution v1
//   <replica count R> <assignment entry count A>
//   R lines:  <replica node id>
//   A lines:  <client id> <server id> <amount>
#pragma once

#include <iosfwd>
#include <string>

#include "model/solution.hpp"

namespace rpt {

/// Writes the solution in the rpt-solution v1 text format.
void WriteSolution(std::ostream& os, const Solution& solution);

/// Serializes to a string.
[[nodiscard]] std::string SolutionToString(const Solution& solution);

/// Parses the rpt-solution v1 format; throws InvalidArgument on malformed
/// input. Ids are not checked against any tree here — validate the result
/// against its instance with ValidateSolution.
[[nodiscard]] Solution ReadSolution(std::istream& is);

/// Parses from a string.
[[nodiscard]] Solution SolutionFromString(const std::string& text);

}  // namespace rpt
