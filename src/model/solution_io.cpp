#include "model/solution_io.hpp"

#include <charconv>
#include <ostream>
#include <sstream>

#include "support/common.hpp"

namespace rpt {

void WriteSolution(std::ostream& os, const Solution& solution) {
  os << "rpt-solution v1\n" << solution.replicas.size() << ' ' << solution.assignment.size()
     << '\n';
  for (const NodeId replica : solution.replicas) os << replica << '\n';
  for (const ServiceEntry& entry : solution.assignment) {
    os << entry.client << ' ' << entry.server << ' ' << entry.amount << '\n';
  }
}

std::string SolutionToString(const Solution& solution) {
  std::ostringstream os;
  WriteSolution(os, solution);
  return os.str();
}

namespace {

bool NextLine(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    return true;
  }
  return false;
}

std::uint64_t ParseU64(std::istringstream& row, const char* what) {
  std::string token;
  row >> token;
  RPT_REQUIRE(!token.empty(), std::string("ReadSolution: missing ") + what);
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  RPT_REQUIRE(ec == std::errc{} && ptr == token.data() + token.size(),
              std::string("ReadSolution: malformed ") + what);
  return value;
}

}  // namespace

Solution ReadSolution(std::istream& is) {
  std::string line;
  RPT_REQUIRE(NextLine(is, line), "ReadSolution: empty input");
  {
    std::istringstream header(line);
    std::string magic, version;
    header >> magic >> version;
    RPT_REQUIRE(magic == "rpt-solution" && version == "v1",
                "ReadSolution: bad header: " + line);
  }
  RPT_REQUIRE(NextLine(is, line), "ReadSolution: missing counts");
  std::uint64_t replica_count = 0;
  std::uint64_t entry_count = 0;
  {
    std::istringstream counts(line);
    replica_count = ParseU64(counts, "replica count");
    entry_count = ParseU64(counts, "entry count");
  }
  Solution solution;
  solution.replicas.reserve(replica_count);
  for (std::uint64_t i = 0; i < replica_count; ++i) {
    RPT_REQUIRE(NextLine(is, line), "ReadSolution: truncated replica list");
    std::istringstream row(line);
    solution.replicas.push_back(static_cast<NodeId>(ParseU64(row, "replica id")));
  }
  solution.assignment.reserve(entry_count);
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    RPT_REQUIRE(NextLine(is, line), "ReadSolution: truncated assignment list");
    std::istringstream row(line);
    ServiceEntry entry;
    entry.client = static_cast<NodeId>(ParseU64(row, "client id"));
    entry.server = static_cast<NodeId>(ParseU64(row, "server id"));
    entry.amount = ParseU64(row, "amount");
    solution.assignment.push_back(entry);
  }
  return solution;
}

Solution SolutionFromString(const std::string& text) {
  std::istringstream is(text);
  return ReadSolution(is);
}

}  // namespace rpt
