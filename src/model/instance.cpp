#include "model/instance.hpp"

#include <sstream>

namespace rpt {

const char* PolicyName(Policy policy) noexcept {
  return policy == Policy::kSingle ? "Single" : "Multiple";
}

Instance::Instance(Tree tree, Requests capacity, Distance dmax)
    : tree_(std::move(tree)), capacity_(capacity), dmax_(dmax) {
  RPT_REQUIRE(capacity_ > 0, "Instance: capacity W must be positive");
}

bool Instance::CanServe(NodeId client, NodeId server) const {
  if (!tree_.IsAncestorOrSelf(server, client)) return false;
  if (!HasDistanceConstraint()) return true;
  return tree_.DistToAncestor(client, server) <= dmax_;
}

bool Instance::AllRequestsFitLocally() const noexcept {
  for (NodeId client : tree_.Clients()) {
    if (tree_.RequestsOf(client) > capacity_) return false;
  }
  return true;
}

std::uint64_t Instance::CapacityLowerBound() const noexcept {
  return CeilDiv(tree_.TotalRequests(), capacity_);
}

std::string Instance::Summary() const {
  std::ostringstream os;
  os << "|T|=" << tree_.Size() << " |C|=" << tree_.ClientCount() << " arity=" << tree_.Arity()
     << " W=" << capacity_ << " dmax=";
  if (HasDistanceConstraint()) {
    os << dmax_;
  } else {
    os << "inf";
  }
  os << " totalReq=" << tree_.TotalRequests();
  return os.str();
}

}  // namespace rpt
