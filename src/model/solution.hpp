// Solution representation: a replica set plus the explicit request routing.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tree/tree.hpp"

namespace rpt {

/// One routed block of requests: `amount` requests of `client` are processed
/// by the replica at `server`.
struct ServiceEntry {
  NodeId client = kInvalidNode;
  NodeId server = kInvalidNode;
  Requests amount = 0;

  friend bool operator==(const ServiceEntry&, const ServiceEntry&) = default;
};

/// A candidate solution. Algorithms must fill both the replica set and the
/// full assignment; the validator re-derives every constraint from these.
struct Solution {
  std::vector<NodeId> replicas;
  std::vector<ServiceEntry> assignment;

  /// |R| — the paper's objective value.
  [[nodiscard]] std::size_t ReplicaCount() const noexcept { return replicas.size(); }

  /// Total requests routed (sum of amounts).
  [[nodiscard]] Requests RoutedRequests() const noexcept {
    Requests total = 0;
    for (const ServiceEntry& entry : assignment) total += entry.amount;
    return total;
  }

  /// Sorts replicas and assignment into a canonical order (for comparisons
  /// and golden tests).
  void Canonicalize();
};

/// Per-server load summary derived from a solution.
struct LoadSummary {
  Requests max_load = 0;    ///< heaviest server load
  Requests total_load = 0;  ///< total routed requests
  double mean_load = 0.0;   ///< total / replica count
  double utilization = 0.0; ///< total / (replica count * W)
};

/// Computes server load statistics for a (valid) solution.
[[nodiscard]] LoadSummary SummarizeLoads(const Tree& tree, Requests capacity,
                                         const Solution& solution);

/// Rewrites every node id in `solution` through `map` (new_id = map[old_id]).
/// Used to translate a solution computed on a compacted overlay back into
/// overlay/view ids (and vice versa). Every referenced id must be in range
/// and map to a valid node; throws InvalidArgument otherwise.
[[nodiscard]] Solution MapNodeIds(const Solution& solution, std::span<const NodeId> map);

}  // namespace rpt
