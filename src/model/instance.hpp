// Problem instance and access-policy definitions (paper §2).
#pragma once

#include <string>

#include "tree/tree.hpp"

namespace rpt {

/// Access policy: how many servers may process one client's requests.
enum class Policy : std::uint8_t {
  kSingle,    ///< all requests of a client go to a single server
  kMultiple,  ///< a client's requests may be split across servers
};

/// Human-readable policy name ("Single" / "Multiple").
[[nodiscard]] const char* PolicyName(Policy policy) noexcept;

/// A replica placement problem instance: the distribution tree, the uniform
/// server capacity W, and the distance bound dmax (kNoDistanceLimit = NoD).
class Instance {
 public:
  /// Validates W > 0 and takes ownership of the tree.
  Instance(Tree tree, Requests capacity, Distance dmax = kNoDistanceLimit);

  [[nodiscard]] const Tree& GetTree() const noexcept { return tree_; }
  [[nodiscard]] Requests Capacity() const noexcept { return capacity_; }
  [[nodiscard]] Distance Dmax() const noexcept { return dmax_; }

  /// True iff a finite distance constraint is active.
  [[nodiscard]] bool HasDistanceConstraint() const noexcept { return dmax_ != kNoDistanceLimit; }

  /// True iff `server` may legally process requests of `client`: the server
  /// is on the client's root path and within dmax.
  [[nodiscard]] bool CanServe(NodeId client, NodeId server) const;

  /// True iff every client satisfies r_i <= W (each client can be served
  /// locally). This is the precondition of the Multiple-Bin optimal
  /// algorithm (Theorem 6) and guarantees a trivial feasible solution exists.
  [[nodiscard]] bool AllRequestsFitLocally() const noexcept;

  /// Lower bound ceil(total requests / W) on the number of replicas in any
  /// feasible solution.
  [[nodiscard]] std::uint64_t CapacityLowerBound() const noexcept;

  /// Short description for logs: |T|, |C|, ∆, W, dmax.
  [[nodiscard]] std::string Summary() const;

 private:
  Tree tree_;
  Requests capacity_;
  Distance dmax_;
};

}  // namespace rpt
