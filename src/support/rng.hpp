// Deterministic pseudo-random number generation for instance generators,
// property tests and benchmark workloads.
//
// We deliberately do not use std::mt19937 for generation: its state is large
// and its seeding is easy to get subtly wrong. Instead we implement
// xoshiro256** (Blackman & Vigna) seeded through splitmix64, the combination
// recommended by the xoshiro authors. Every generator in rpt takes an
// explicit 64-bit seed so experiments are reproducible bit-for-bit across
// platforms.
//
// Ownership: an Rng is a 256-bit value type; copy or Fork() freely.
// Thread-safety: none per instance — never share one Rng between threads;
// give each worker its own stream (Fork(), or runner::DeriveSeed per cell,
// which is how BatchRunner keeps reports thread-count invariant).
// Determinism: all draws are pure functions of the seed and call sequence,
// identical across platforms and build types.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "support/common.hpp"

namespace rpt {

/// splitmix64: stateless-ish mixer used to expand a single 64-bit seed into
/// the 256-bit xoshiro state. Also useful directly for hashing indices into
/// independent streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 pseudo-random bits.
  constexpr std::uint64_t Next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG with 256-bit state.
/// Satisfies the UniformRandomBitGenerator concept so it can also feed
/// standard distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single seed via splitmix64.
  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Raw 64 bits (UniformRandomBitGenerator interface).
  result_type operator()() noexcept { return Next(); }

  /// Next 64 pseudo-random bits.
  std::uint64_t Next() noexcept;

  /// Unbiased uniform integer in [0, bound) via Lemire rejection.
  /// bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) noexcept;

  /// Uniform integer in the inclusive range [lo, hi]; requires lo <= hi.
  std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double NextUnit() noexcept;

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool NextBool(double p) noexcept;

  /// Derive an independent child stream; used to give each generated subtree
  /// or each parallel shard its own generator without sharing state.
  [[nodiscard]] Rng Fork() noexcept;

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(NextBelow(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_;
};

/// Draws an integer from a discrete distribution given non-negative weights;
/// returns index in [0, weights.size()). Requires a positive total weight.
std::size_t WeightedPick(Rng& rng, const std::vector<double>& weights);

}  // namespace rpt
