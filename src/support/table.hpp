// Small table formatter used by the benchmark harness to print paper-style
// result tables to stdout and to write machine-readable CSV next to them.
//
// Ownership: a Table owns its cells (strings). Thread-safety: none — build
// and print from one thread (reports are assembled after the parallel phase
// ends). Determinism: output is a pure function of the added cells;
// FormatCompactDouble prints doubles with round-trip precision and no
// locale dependence, so emitted JSON/CSV bytes are machine-independent for
// deterministic inputs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace rpt {

/// A column-oriented results table. Cells are stored as strings; numeric
/// convenience overloads format with stable precision so CSV output is
/// reproducible.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row. Must be followed by exactly one Add*() per column.
  Table& NewRow();

  /// Appends a string cell to the current row.
  Table& Add(std::string_view value);

  /// Appends an unsigned integer cell.
  Table& Add(std::uint64_t value);

  /// Appends a signed integer cell.
  Table& Add(std::int64_t value);

  /// Appends an int cell (disambiguates literals).
  Table& Add(int value) { return Add(static_cast<std::int64_t>(value)); }

  /// Appends a floating cell formatted with the given number of decimals.
  Table& Add(double value, int decimals = 3);

  /// Number of data rows so far.
  [[nodiscard]] std::size_t RowCount() const noexcept { return rows_.size(); }

  /// Renders an aligned ASCII table.
  void PrintAscii(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (fields with commas/quotes are quoted).
  void PrintCsv(std::ostream& os) const;

  /// Writes CSV to a file path; throws on I/O failure.
  void WriteCsvFile(const std::string& path) const;

 private:
  void CheckRowWidth() const;

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rpt
