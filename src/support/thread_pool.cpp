#include "support/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "support/common.hpp"

namespace rpt {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  // std::jthread joins in its destructor.
}

void ThreadPool::Submit(std::function<void()> task) {
  RPT_REQUIRE(static_cast<bool>(task), "ThreadPool::Submit: empty task");
  {
    std::unique_lock lock(mutex_);
    RPT_CHECK(!stopping_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::unique_lock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, pool.ThreadCount() * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < count; begin += chunk_size) {
    const std::size_t end = std::min(count, begin + chunk_size);
    pool.Submit([&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  pool.Wait();
}

}  // namespace rpt
