#include "support/thread_pool.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "support/common.hpp"

namespace rpt {

namespace {

// Set for the lifetime of every pool worker thread; lets fork-join helpers
// detect nested parallelism and degrade to inline execution.
thread_local bool t_in_pool_worker = false;

}  // namespace

bool ThreadPool::InWorker() noexcept { return t_in_pool_worker; }

ThreadPool::ScopedWorkerMark::ScopedWorkerMark() noexcept : previous_(t_in_pool_worker) {
  t_in_pool_worker = true;
}

ThreadPool::ScopedWorkerMark::~ScopedWorkerMark() { t_in_pool_worker = previous_; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  // std::jthread joins in its destructor.
}

void ThreadPool::Submit(std::function<void()> task) {
  RPT_REQUIRE(static_cast<bool>(task), "ThreadPool::Submit: empty task");
  {
    std::unique_lock lock(mutex_);
    RPT_CHECK(!stopping_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  const ScopedWorkerMark mark;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::unique_lock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

// ---------------------------------------------------------------------------
// Process-wide solver pool.
// ---------------------------------------------------------------------------

namespace {

struct SolverPoolState {
  std::mutex mutex;
  std::size_t threads = 0;  // 0 = hardware concurrency, resolved lazily
  std::unique_ptr<ThreadPool> pool;
};

SolverPoolState& GlobalSolverPool() {
  // Function-local static: constructed on first use, destroyed after main
  // (jthread destructors join the workers).
  static SolverPoolState state;
  return state;
}

std::size_t ResolveThreads(std::size_t threads) {
  return threads != 0 ? threads
                      : std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace

ThreadPool* SolverPool() {
  SolverPoolState& state = GlobalSolverPool();
  std::scoped_lock lock(state.mutex);
  const std::size_t width = ResolveThreads(state.threads);
  if (width <= 1) return nullptr;
  if (!state.pool) state.pool = std::make_unique<ThreadPool>(width);
  return state.pool.get();
}

void SetSolverThreads(std::size_t threads) {
  std::unique_ptr<ThreadPool> retired;  // joined outside the lock
  SolverPoolState& state = GlobalSolverPool();
  {
    std::scoped_lock lock(state.mutex);
    state.threads = threads;
    if (state.pool && state.pool->ThreadCount() != ResolveThreads(threads)) {
      retired = std::move(state.pool);
    }
  }
}

std::size_t SolverThreads() {
  SolverPoolState& state = GlobalSolverPool();
  std::scoped_lock lock(state.mutex);
  return ResolveThreads(state.threads);
}

}  // namespace rpt
