// Minimal work-stealing-free thread pool with a ParallelFor helper.
//
// Used by the benchmark harness and property-test sweeps to run independent
// instance evaluations concurrently. Follows the Core Guidelines concurrency
// rules: RAII-joined threads (CP.23/CP.25), no detached threads, data shared
// between tasks is owned by the caller and partitioned by index so tasks never
// write to the same element (CP.2/CP.3).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rpt {

/// Fixed-size thread pool. Tasks are std::function<void()>; exceptions thrown
/// by tasks are captured and rethrown from Wait() (first one wins).
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers. Pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished; rethrows the first task
  /// exception if any task failed.
  void Wait();

  /// Number of worker threads.
  [[nodiscard]] std::size_t ThreadCount() const noexcept { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::jthread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Runs body(i) for i in [0, count) across the pool, chunked to limit
/// scheduling overhead. Blocks until all iterations complete.
void ParallelFor(ThreadPool& pool, std::size_t count, const std::function<void(std::size_t)>& body);

}  // namespace rpt
