// Minimal work-stealing-free thread pool with chunked fork-join helpers.
//
// Used by the benchmark harness, the property-test sweeps, and — via the
// process-wide solver pool — by the intra-instance parallel kernels (the CSR
// tree build and the level-synchronous Multiple-NoD DP). Follows the Core
// Guidelines concurrency rules: RAII-joined threads (CP.23/CP.25), no
// detached threads, data shared between tasks is owned by the caller and
// partitioned by index range so tasks never write to the same element
// (CP.2/CP.3).
//
// Parallel loops go through ParallelForChunked: the body receives an index
// *range* [begin, end), so there is no per-index std::function dispatch, and
// each call tracks its own completion state — concurrent ParallelForChunked
// calls may safely share one pool (each waits only for its own chunks).
//
// Ownership: a ThreadPool owns its workers (joined in the destructor;
// pending tasks complete first). The process-wide SolverPool() is owned by
// this module — solvers never own threads, they borrow the shared pool and
// SetSolverThreads() rebuilds it between solves. Data touched by tasks is
// owned by the caller and must outlive the Wait()/ParallelForChunked call
// that uses it.
//
// Thread-safety: Submit/Wait and ParallelForChunked may be called from any
// thread, including concurrently; chunk bodies must only write to disjoint
// index ranges (CP.2). SetSolverThreads is NOT safe while a solve is in
// flight — call it between solves.
//
// Determinism: chunk boundaries depend only on (count, grain, thread
// count), never on execution order, so a body that writes out[i] per index
// is byte-identical at any width; reductions must fold chunk-local state in
// chunk order (or use order-exact operations: integer sums, min/max).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "support/common.hpp"

namespace rpt {

/// Fixed-size thread pool. Tasks are std::function<void()>; exceptions thrown
/// by tasks are captured and rethrown from Wait() (first one wins).
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers. Pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished; rethrows the first task
  /// exception if any task failed.
  void Wait();

  /// Number of worker threads.
  [[nodiscard]] std::size_t ThreadCount() const noexcept { return workers_.size(); }

  /// True iff the calling thread is marked as a worker of some parallel
  /// engine (a ThreadPool worker, or any thread holding a ScopedWorkerMark).
  /// Fork-join helpers use this to degrade to inline execution instead of
  /// deadlocking on a bounded pool or oversubscribing already-busy cores.
  [[nodiscard]] static bool InWorker() noexcept;

  /// RAII marker declaring the current thread a worker of a parallel engine
  /// for its lifetime. Engines that spawn raw threads (e.g. BatchRunner's
  /// work-stealing workers) install one so intra-solver parallelism inside
  /// their tasks runs inline — the cores are already saturated by tasks.
  class ScopedWorkerMark {
   public:
    ScopedWorkerMark() noexcept;
    ~ScopedWorkerMark();
    ScopedWorkerMark(const ScopedWorkerMark&) = delete;
    ScopedWorkerMark& operator=(const ScopedWorkerMark&) = delete;

   private:
    bool previous_;
  };

 private:
  void WorkerLoop();

  std::vector<std::jthread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

namespace detail {

/// Completion state shared by the chunks of one ParallelForChunked call, so
/// concurrent calls on a shared pool wait only for their own chunks and an
/// exception is rethrown exactly once, at the call site that owns the loop.
struct ForkJoinState {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t pending = 0;
  std::exception_ptr error;

  void Record(std::exception_ptr e) {
    std::scoped_lock lock(mutex);
    if (!error) error = std::move(e);
  }
  void Finish() {
    std::scoped_lock lock(mutex);
    if (--pending == 0) cv.notify_one();
  }
};

}  // namespace detail

/// Runs body(begin, end) over consecutive chunks covering [0, count).
///
/// Chunks are at least `grain` indices wide (the last one may be shorter), so
/// `grain` bounds the scheduling overhead per unit of work; beyond that the
/// range splits into ~2 chunks per worker for load balance. The calling
/// thread executes the first chunk itself and then blocks until the rest
/// finish. Degrades to one inline body(0, count) call — still covering every
/// index exactly once — when `pool` is null, when the range fits one chunk,
/// or when called from inside a pool worker (nested parallelism would
/// deadlock a bounded pool).
///
/// Exceptions: if one or more chunks throw, exactly one exception (the first
/// recorded) is rethrown here after all chunks completed, so references
/// captured by the body never dangle.
///
/// Determinism: chunk boundaries depend only on (count, grain, thread
/// count), never on execution order. Callers that reduce should accumulate
/// per chunk-local state and fold serially afterwards (or use operations
/// that are exact under reordering, e.g. integer sums and min/max).
template <typename Body>
void ParallelForChunked(ThreadPool* pool, std::size_t count, std::size_t grain, Body&& body) {
  RPT_REQUIRE(grain >= 1, "ParallelForChunked: grain must be >= 1");
  if (count == 0) return;
  const std::size_t threads = pool == nullptr ? 1 : pool->ThreadCount();
  // ~2 chunks per worker, never below the grain.
  const std::size_t chunk =
      std::max(grain, (count + 2 * threads - 1) / (2 * threads));
  if (pool == nullptr || chunk >= count || ThreadPool::InWorker()) {
    body(std::size_t{0}, count);
    return;
  }

  detail::ForkJoinState state;
  state.pending = (count - 1) / chunk;  // chunks beyond the caller's first
  for (std::size_t begin = chunk; begin < count; begin += chunk) {
    const std::size_t end = std::min(count, begin + chunk);
    pool->Submit([&state, &body, begin, end] {
      try {
        body(begin, end);
      } catch (...) {
        state.Record(std::current_exception());
      }
      state.Finish();
    });
  }
  try {
    body(std::size_t{0}, chunk);
  } catch (...) {
    state.Record(std::current_exception());
  }
  std::unique_lock lock(state.mutex);
  state.cv.wait(lock, [&state] { return state.pending == 0; });
  if (state.error) std::rethrow_exception(std::exchange(state.error, nullptr));
}

/// Legacy per-index form; thin shim over ParallelForChunked (grain 1).
inline void ParallelFor(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& body) {
  ParallelForChunked(&pool, count, /*grain=*/1, [&body](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

/// The process-wide pool for intra-solver parallelism (parallel tree build,
/// level-synchronous DP). Lazily created on first call with the width set by
/// SetSolverThreads. Returns nullptr when intra-solver parallelism is off
/// (width 1) — callers pass the result straight to ParallelForChunked, which
/// then runs inline. Solvers never own threads: they all share this pool, and
/// per-call completion tracking keeps concurrent solves independent.
[[nodiscard]] ThreadPool* SolverPool();

/// Sets the solver-pool width: 0 = hardware concurrency, 1 = serial (no
/// pool). Destroys any existing pool (joining its workers) so the next
/// SolverPool() call rebuilds it at the new width; call between solves.
void SetSolverThreads(std::size_t threads);

/// The configured solver-parallelism width (0 already resolved to hardware
/// concurrency; >= 1).
[[nodiscard]] std::size_t SolverThreads();

}  // namespace rpt
