#include "support/table.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "support/common.hpp"

namespace rpt {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  RPT_REQUIRE(!headers_.empty(), "Table: at least one column required");
}

Table& Table::NewRow() {
  if (!rows_.empty()) CheckRowWidth();
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::Add(std::string_view value) {
  RPT_REQUIRE(!rows_.empty(), "Table: NewRow() before Add()");
  RPT_REQUIRE(rows_.back().size() < headers_.size(), "Table: too many cells in row");
  rows_.back().emplace_back(value);
  return *this;
}

Table& Table::Add(std::uint64_t value) { return Add(std::to_string(value)); }
Table& Table::Add(std::int64_t value) { return Add(std::to_string(value)); }

Table& Table::Add(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return Add(std::string_view(buf));
}

void Table::CheckRowWidth() const {
  RPT_REQUIRE(rows_.back().size() == headers_.size(), "Table: row has missing cells");
}

void Table::PrintAscii(std::ostream& os) const {
  if (!rows_.empty()) CheckRowWidth();
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {
void PrintCsvField(std::ostream& os, const std::string& field) {
  const bool needs_quote = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) {
    os << field;
    return;
  }
  os << '"';
  for (char ch : field) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}
}  // namespace

void Table::PrintCsv(std::ostream& os) const {
  if (!rows_.empty()) CheckRowWidth();
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    PrintCsvField(os, headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      PrintCsvField(os, row[c]);
    }
    os << '\n';
  }
}

void Table::WriteCsvFile(const std::string& path) const {
  std::ofstream out(path);
  RPT_REQUIRE(out.good(), "Table: cannot open CSV output file: " + path);
  PrintCsv(out);
  RPT_REQUIRE(out.good(), "Table: write failed for CSV output file: " + path);
}

}  // namespace rpt
