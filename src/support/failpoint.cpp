#include "support/failpoint.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace rpt::fail {
namespace {

struct PointState {
  Action action = Action::kOff;
  std::uint64_t countdown = 0;  // fires when a Hit() decrements this to 0
  std::uint64_t param = 0;
  std::uint64_t hits = 0;  // counted whenever the registry is consulted
  bool sticky = false;     // fire on every hit, never self-disarm
};

struct Registry {
  std::mutex mu;
  std::map<std::string, PointState, std::less<>> points;
};

// Number of currently-armed points. The Hit() fast path is a single relaxed
// load of this counter: zero means no registry lock, no map lookup, no
// observable effect — the cost of leaving failpoints compiled into release
// builds.
std::atomic<std::uint64_t> g_armed_count{0};

Registry& TheRegistry() {
  static Registry* r = new Registry;  // leaked: outlives all threads at exit
  return *r;
}

}  // namespace

void Arm(std::string_view point, Action action, std::uint64_t countdown,
         std::uint64_t param) {
  if (action == Action::kOff) {
    Disarm(point);
    return;
  }
  if (countdown == 0) countdown = 1;
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(point);
  if (it == reg.points.end()) {
    it = reg.points.emplace(std::string(point), PointState{}).first;
  }
  PointState& st = it->second;
  if (st.action == Action::kOff) {
    g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  st.action = action;
  st.countdown = countdown;
  st.param = param;
  st.sticky = false;
}

void ArmSticky(std::string_view point, Action action, std::uint64_t param) {
  if (action == Action::kOff) {
    Disarm(point);
    return;
  }
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(point);
  if (it == reg.points.end()) {
    it = reg.points.emplace(std::string(point), PointState{}).first;
  }
  PointState& st = it->second;
  if (st.action == Action::kOff) {
    g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  st.action = action;
  st.countdown = 1;
  st.param = param;
  st.sticky = true;
}

void Disarm(std::string_view point) {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(point);
  if (it != reg.points.end() && it->second.action != Action::kOff) {
    it->second.action = Action::kOff;
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.points.clear();
  g_armed_count.store(0, std::memory_order_relaxed);
}

bool AnyArmed() noexcept {
  return g_armed_count.load(std::memory_order_relaxed) != 0;
}

Action Hit(std::string_view point, std::uint64_t* param_out) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) return Action::kOff;

  Action fired = Action::kOff;
  std::uint64_t param = 0;
  {
    Registry& reg = TheRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    auto it = reg.points.find(point);
    if (it == reg.points.end()) return Action::kOff;
    PointState& st = it->second;
    ++st.hits;
    if (st.action == Action::kOff) return Action::kOff;
    if (st.sticky) {
      fired = st.action;  // sticky: fire on every hit, stay armed
      param = st.param;
    } else {
      if (--st.countdown > 0) return Action::kOff;
      fired = st.action;
      param = st.param;
      st.action = Action::kOff;  // one-shot: self-disarm on fire
      g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  // Act outside the lock: kThrow unwinds, kCrash never returns, kDelay
  // must not stall other points.
  switch (fired) {
    case Action::kThrow:
      throw InjectedFault("failpoint '" + std::string(point) + "' fired");
    case Action::kCrash:
      std::_Exit(kCrashExitCode);
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(param));
      return Action::kOff;
    case Action::kError:
    case Action::kShortOp:
      if (param_out != nullptr) *param_out = param;
      return fired;
    case Action::kOff:
      break;
  }
  return Action::kOff;
}

std::uint64_t HitCount(std::string_view point) {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(point);
  return it == reg.points.end() ? 0 : it->second.hits;
}

}  // namespace rpt::fail
