#include "support/common.hpp"

#include <cstdio>
#include <sstream>

namespace rpt {

std::string FormatCompactDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

}  // namespace rpt

namespace rpt::detail {

void ThrowInternal(const char* expr, std::source_location loc) {
  std::ostringstream os;
  os << "rpt internal invariant violated: (" << expr << ") at " << loc.file_name() << ":"
     << loc.line() << " in " << loc.function_name();
  throw InternalError(os.str());
}

void ThrowInvalid(std::string message) { throw InvalidArgument(std::move(message)); }

}  // namespace rpt::detail
