// Basic shared types and assertion helpers for the rpt library.
//
// Everything in the feasibility logic uses unsigned 64-bit integers: the
// paper assumes integer request counts, and integer arithmetic keeps the
// validators exact (no epsilon comparisons). Distances are integers too;
// "no distance constraint" is the sentinel kNoDistanceLimit.
//
// Ownership/thread-safety: this header defines only value types, constants,
// and the RPT_REQUIRE/RPT_CHECK assertion macros (which throw
// InvalidArgument / InternalError); nothing here holds state, so everything
// is safe from any thread. Determinism: integer-only arithmetic is the
// foundation of the repo-wide bit-identical-reports contract.
#pragma once

#include <cstdint>
#include <limits>
#include <source_location>
#include <stdexcept>
#include <string>

namespace rpt {

/// Number of requests issued / served per time unit.
using Requests = std::uint64_t;

/// Edge length / path distance in the tree (integral, per the paper's
/// integral-weight instances; any rational instance can be scaled).
using Distance = std::uint64_t;

/// Sentinel meaning "no distance constraint" (dmax = +inf). Large enough that
/// any sum of real edge lengths stays strictly below it; tree validation
/// rejects edges >= kDistanceCap so sums cannot overflow or reach the
/// sentinel.
inline constexpr Distance kNoDistanceLimit = std::numeric_limits<Distance>::max();

/// Upper bound on a single edge length accepted by the tree builder. Keeps
/// root-to-leaf sums far away from kNoDistanceLimit even on pathological
/// depth (2^40 * 2^20 < 2^63).
inline constexpr Distance kDistanceCap = Distance{1} << 40;

/// Exception thrown on precondition violations in public API entry points.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Exception thrown when an internal invariant is broken (a bug in rpt).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void ThrowInternal(const char* expr, std::source_location loc);
[[noreturn]] void ThrowInvalid(std::string message);
}  // namespace detail

/// Always-on internal invariant check (cheap checks only). Unlike assert()
/// this fires in release builds too: the exact solvers and property tests
/// rely on algorithm invariants being enforced.
#define RPT_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::rpt::detail::ThrowInternal(#expr, std::source_location::current()); \
    }                                                                       \
  } while (false)

/// Precondition check on public API arguments; throws InvalidArgument.
#define RPT_REQUIRE(expr, message)            \
  do {                                        \
    if (!(expr)) {                            \
      ::rpt::detail::ThrowInvalid((message)); \
    }                                         \
  } while (false)

/// Saturating addition for distances: adding anything to the "infinite"
/// sentinel stays infinite, and sums are capped below overflow.
[[nodiscard]] constexpr Distance SaturatingAdd(Distance a, Distance b) noexcept {
  if (a == kNoDistanceLimit || b == kNoDistanceLimit) return kNoDistanceLimit;
  const Distance sum = a + b;
  return (sum < a) ? kNoDistanceLimit : sum;
}

/// Ceiling division for positive integers; used for lower bounds ceil(R/W).
[[nodiscard]] constexpr std::uint64_t CeilDiv(std::uint64_t num, std::uint64_t den) noexcept {
  return den == 0 ? 0 : (num + den - 1) / den;
}

/// Human-readable dmax label: "inf" for the no-limit sentinel. Shared by the
/// benches so group names stay consistent across their JSON reports.
[[nodiscard]] inline std::string DmaxLabel(Distance dmax) {
  return dmax == kNoDistanceLimit ? std::string("inf") : std::to_string(dmax);
}

/// Deterministic double formatting for JSON/CSV output ("%.9g"): enough
/// digits to round-trip aggregate means, same string on every run with the
/// same inputs. The one formatter behind BatchReport's JSON and any section
/// spliced into it (e.g. bench_hotpath's thread_sweep), so the numbers in
/// one file never mix float formats.
[[nodiscard]] std::string FormatCompactDouble(double value);

}  // namespace rpt
