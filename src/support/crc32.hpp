// CRC-32 (IEEE 802.3 / zlib polynomial, reflected, init & final xor
// 0xFFFFFFFF) — the checksum sealing WAL records and checkpoint files.
// Table-based, one table built at first use; header-only so the serve layer
// and the torn-log test corpus share the exact same bit contract.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rpt::support {

namespace detail {

inline const std::array<std::uint32_t, 256>& Crc32Table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// Incremental form: feed `crc` from a previous call (or 0 to start) to
/// checksum discontiguous pieces as one logical stream.
inline std::uint32_t Crc32Update(std::uint32_t crc, const void* data,
                                 std::size_t len) {
  const auto& table = detail::Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a buffer.
inline std::uint32_t Crc32(const void* data, std::size_t len) {
  return Crc32Update(0, data, len);
}

inline std::uint32_t Crc32(std::string_view bytes) {
  return Crc32(bytes.data(), bytes.size());
}

}  // namespace rpt::support
