// Reusable scratch memory for the hot solver kernels.
//
// Two pieces:
//  * Arena — a bump allocator over reused slabs for trivially-destructible
//    scratch. Reset() rewinds the cursor without releasing the slabs, so a
//    kernel that resets between iterations allocates from the OS only while
//    warming up and runs allocation-free in steady state.
//  * ScratchPool<T> — a thread-safe freelist of reusable scratch objects for
//    fork-join kernels: each parallel chunk leases one T (created on first
//    use, recycled afterwards), so the pool holds at most max-concurrency
//    objects for the lifetime of the solve instead of one allocation per
//    chunk per level.
//
// Ownership: an Arena owns its slabs; spans returned by AllocSpan point
// into them and are invalidated by Reset() (never individually freed — only
// trivially-destructible types are allowed). A ScratchPool owns its idle
// objects; a Lease owns one object for its lifetime and returns it on
// destruction, so the pool must outlive every lease.
//
// Thread-safety: Arena is NOT thread-safe — use one per worker/lease (that
// is what ScratchPool is for). ScratchPool::Acquire/Release are mutex-
// guarded and safe from any thread.
//
// Determinism: neither type affects computed values — which arena a chunk
// leases changes addresses only, so kernels built on them stay byte-
// identical at any thread count (asserted by test_parallel_determinism).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/common.hpp"

namespace rpt {

/// Bump allocator over reused slabs. Allocations are never individually
/// freed; Reset() recycles everything at once while keeping the slab memory.
/// Only trivially-destructible element types are allowed (nothing runs
/// destructors). Not thread-safe — use one Arena per worker/scratch object.
class Arena {
 public:
  /// `slab_bytes` is the granularity of slab growth; requests larger than a
  /// slab get a dedicated slab of exactly the requested size.
  explicit Arena(std::size_t slab_bytes = std::size_t{1} << 20) : slab_bytes_(slab_bytes) {
    RPT_REQUIRE(slab_bytes >= 1, "Arena: slab size must be >= 1 byte");
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates an uninitialized span of `count` Ts, aligned for T.
  template <typename T>
  [[nodiscard]] std::span<T> AllocSpan(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena: element type must be trivially destructible");
    if (count == 0) return {};
    const std::size_t bytes = count * sizeof(T);
    return {static_cast<T*>(AllocBytes(bytes, alignof(T))), count};
  }

  /// Rewinds all allocations; slab memory is kept for reuse.
  void Reset() noexcept {
    slab_index_ = 0;
    cursor_ = 0;
  }

  /// Total bytes held across slabs (capacity, not live allocations).
  [[nodiscard]] std::size_t BytesReserved() const noexcept {
    std::size_t total = 0;
    for (const Slab& slab : slabs_) total += slab.size;
    return total;
  }

 private:
  struct Slab {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* AllocBytes(std::size_t bytes, std::size_t align) {
    // Walk forward until a slab with room is found; slabs skipped by a large
    // request stay available after the next Reset(). Alignment is computed
    // on the absolute address — slab bases are only new[]-aligned.
    while (slab_index_ < slabs_.size()) {
      Slab& slab = slabs_[slab_index_];
      const auto addr = reinterpret_cast<std::uintptr_t>(slab.data.get()) + cursor_;
      const std::size_t aligned = cursor_ + (align - addr % align) % align;
      if (aligned + bytes <= slab.size) {
        cursor_ = aligned + bytes;
        return slab.data.get() + aligned;
      }
      ++slab_index_;
      cursor_ = 0;
    }
    // +align so any alignment fits even when the allocator returns a
    // minimally-aligned block for byte arrays.
    const std::size_t slab_size = std::max(slab_bytes_, bytes + align);
    slabs_.push_back(Slab{std::make_unique<std::byte[]>(slab_size), slab_size});
    slab_index_ = slabs_.size() - 1;
    std::byte* base = slabs_.back().data.get();
    const auto addr = reinterpret_cast<std::uintptr_t>(base);
    const std::size_t offset = (align - addr % align) % align;
    cursor_ = offset + bytes;
    return base + offset;
  }

  std::size_t slab_bytes_;
  std::vector<Slab> slabs_;
  std::size_t slab_index_ = 0;  // slab currently bumped
  std::size_t cursor_ = 0;      // bump offset within that slab
};

/// Thread-safe freelist of default-constructed scratch objects. Acquire()
/// leases one (creating it only when the freelist is empty); the lease
/// returns it on destruction. Objects are never shrunk, so whatever capacity
/// a scratch object grew during one chunk is still there for the next.
template <typename T>
class ScratchPool {
 public:
  class Lease {
   public:
    Lease(ScratchPool* pool, std::unique_ptr<T> object) noexcept
        : pool_(pool), object_(std::move(object)) {}
    Lease(Lease&&) noexcept = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    ~Lease() {
      if (object_) pool_->Release(std::move(object_));
    }

    [[nodiscard]] T& operator*() const noexcept { return *object_; }
    [[nodiscard]] T* operator->() const noexcept { return object_.get(); }

   private:
    ScratchPool* pool_;
    std::unique_ptr<T> object_;
  };

  ScratchPool() = default;
  ScratchPool(const ScratchPool&) = delete;
  ScratchPool& operator=(const ScratchPool&) = delete;

  [[nodiscard]] Lease Acquire() {
    {
      std::scoped_lock lock(mutex_);
      if (!free_.empty()) {
        std::unique_ptr<T> object = std::move(free_.back());
        free_.pop_back();
        return Lease(this, std::move(object));
      }
    }
    return Lease(this, std::make_unique<T>());
  }

  /// Number of idle objects currently pooled (for tests).
  [[nodiscard]] std::size_t IdleCount() const {
    std::scoped_lock lock(mutex_);
    return free_.size();
  }

 private:
  friend class Lease;

  void Release(std::unique_ptr<T> object) {
    std::scoped_lock lock(mutex_);
    free_.push_back(std::move(object));
  }

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<T>> free_;
};

}  // namespace rpt
