#include "support/stats.hpp"

#include "support/common.hpp"

namespace rpt {

LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys) {
  RPT_REQUIRE(xs.size() == ys.size(), "FitLine: size mismatch");
  RPT_REQUIRE(xs.size() >= 2, "FitLine: need at least two points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  RPT_REQUIRE(sxx > 0.0, "FitLine: x values are all identical");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace rpt
