// Wall-clock timing helper used by the benchmark harness.
//
// Ownership: a trivially-copyable value type around one steady_clock time
// point. Thread-safety: per-instance none (each worker times its own work);
// steady_clock itself is safe everywhere. Determinism: none by design —
// elapsed times are machine- and run-dependent, which is why timing stats
// are excluded from the deterministic JSON reports (BatchReport::WriteJson
// default) and only appear where wall time IS the measurement
// (BENCH_hotpath.json).
#pragma once

#include <chrono>
#include <cstdint>

namespace rpt {

/// Monotonic stopwatch. Started on construction; Restart() resets the origin.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  /// Resets the origin to now.
  void Restart() noexcept { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in nanoseconds.
  [[nodiscard]] std::uint64_t ElapsedNs() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count());
  }

  /// Elapsed time in seconds as a double (for reporting only).
  [[nodiscard]] double ElapsedSeconds() const noexcept {
    return static_cast<double>(ElapsedNs()) * 1e-9;
  }

  /// Elapsed time in milliseconds as a double (for reporting only).
  [[nodiscard]] double ElapsedMs() const noexcept { return static_cast<double>(ElapsedNs()) * 1e-6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rpt
