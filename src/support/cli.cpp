#include "support/cli.hpp"

#include <charconv>
#include <cstdio>

#include "support/common.hpp"

namespace rpt {

Cli::Cli(std::string binary_name, std::string description)
    : binary_name_(std::move(binary_name)), description_(std::move(description)) {}

void Cli::AddInt(const std::string& name, std::int64_t default_value, const std::string& help) {
  flags_[name] = Flag{Kind::kInt, std::to_string(default_value), help};
}

void Cli::AddString(const std::string& name, const std::string& default_value,
                    const std::string& help) {
  flags_[name] = Flag{Kind::kString, default_value, help};
}

void Cli::AddBool(const std::string& name, bool default_value, const std::string& help) {
  flags_[name] = Flag{Kind::kBool, default_value ? "true" : "false", help};
}

bool Cli::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintHelp();
      return false;
    }
    RPT_REQUIRE(arg.rfind("--", 0) == 0, "Cli: expected --flag, got: " + arg);
    arg = arg.substr(2);
    std::string name = arg;
    std::optional<std::string> value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }
    auto it = flags_.find(name);
    RPT_REQUIRE(it != flags_.end(), "Cli: unknown flag --" + name);
    Flag& flag = it->second;
    if (!value.has_value()) {
      if (flag.kind == Kind::kBool) {
        value = "true";
      } else {
        RPT_REQUIRE(i + 1 < argc, "Cli: flag --" + name + " requires a value");
        value = argv[++i];
      }
    }
    if (flag.kind == Kind::kInt) {
      std::int64_t parsed = 0;
      const char* begin = value->data();
      const char* end = begin + value->size();
      const auto [ptr, ec] = std::from_chars(begin, end, parsed);
      RPT_REQUIRE(ec == std::errc{} && ptr == end, "Cli: flag --" + name + " expects an integer");
      flag.value = std::to_string(parsed);
    } else if (flag.kind == Kind::kBool) {
      RPT_REQUIRE(*value == "true" || *value == "false",
                  "Cli: flag --" + name + " expects true/false");
      flag.value = *value;
    } else {
      flag.value = *value;
    }
  }
  return true;
}

const Cli::Flag& Cli::Find(const std::string& name, Kind kind) const {
  auto it = flags_.find(name);
  RPT_REQUIRE(it != flags_.end(), "Cli: flag not declared: " + name);
  RPT_REQUIRE(it->second.kind == kind, "Cli: flag type mismatch: " + name);
  return it->second;
}

std::int64_t Cli::GetInt(const std::string& name) const {
  return std::stoll(Find(name, Kind::kInt).value);
}

std::string Cli::GetString(const std::string& name) const {
  return Find(name, Kind::kString).value;
}

bool Cli::GetBool(const std::string& name) const { return Find(name, Kind::kBool).value == "true"; }

std::uint64_t Cli::GetUint(const std::string& name, std::uint64_t max_value) const {
  const std::int64_t value = GetInt(name);
  RPT_REQUIRE(value >= 0,
              "Cli: flag --" + name + " must be >= 0, got " + std::to_string(value));
  RPT_REQUIRE(static_cast<std::uint64_t>(value) <= max_value,
              "Cli: flag --" + name + " must be <= " + std::to_string(max_value) + ", got " +
                  std::to_string(value));
  return static_cast<std::uint64_t>(value);
}

void AddBatchFlags(Cli& cli, std::int64_t default_seeds) {
  cli.AddInt("threads", 0, "worker threads for the batch engine; 0 = hardware concurrency");
  cli.AddInt("seeds", default_seeds, "seeds (instances) per sweep configuration");
}

BatchFlags GetBatchFlags(const Cli& cli) {
  const std::uint64_t threads = cli.GetUint("threads");
  const std::uint64_t seeds = cli.GetUint("seeds");
  RPT_REQUIRE(seeds > 0, "Cli: --seeds must be > 0");
  return BatchFlags{static_cast<std::size_t>(threads), static_cast<std::size_t>(seeds)};
}

void Cli::PrintHelp() const {
  std::printf("%s — %s\n\nFlags:\n", binary_name_.c_str(), description_.c_str());
  for (const auto& [name, flag] : flags_) {
    std::printf("  --%-24s %s (default: %s)\n", name.c_str(), flag.help.c_str(),
                flag.value.c_str());
  }
}

}  // namespace rpt
