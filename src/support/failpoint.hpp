// Deterministic, seeded fault injection for the durability and serving
// layers (the WAL, checkpoint writer, and TCP front-end thread their I/O
// through named failpoints defined here).
//
// A failpoint is a named site in library code that calls fail::Hit("name").
// By default every site is unarmed and Hit() costs one relaxed atomic load —
// cheap enough to leave in release builds, which is the point: the crash
// paths the recovery oracle tests exercise are the exact bytes production
// runs.
//
// Tests (and the rpt_serve demo's --crash-at flag) arm a point with an
// Action and a countdown: the countdown-th Hit() of that point FIRES the
// action, and the point disarms itself (one-shot — re-arm for repeated
// faults; a deterministic trace therefore crashes at exactly one chosen
// point, which is what makes "kill at batch k, recover, diff against the
// uninterrupted run" a byte-exact oracle rather than a flaky race).
//
// The replication layer needs one more shape: a fault that PERSISTS — a
// network partition is not one lost frame but every frame until the link
// heals. ArmSticky() arms a point that fires on EVERY hit until Disarm() /
// DisarmAll(); the link-level sites in serve/repl_link.cpp are driven this
// way:
//
//   repl.link.drop     kError  — the frame about to be sent is discarded
//   repl.link.dup      kError  — the frame is sent twice back to back
//   repl.link.reorder  kError  — the frame is held and sent after the next
//   repl.link.delay    kDelay  — sleep `param` ms before the send
//   repl.partition     kError  — hard partition: EVERY replication frame in
//                                either direction is dropped (sticky: arm
//                                with ArmSticky, heal with Disarm)
//
// Actions:
//  * kThrow    — Hit() throws InjectedFault. The in-process crash
//                simulation: the caller's stack unwinds as if the operation
//                died mid-flight, and the test abandons the harness and runs
//                recovery. Honest for WAL durability because the WAL writes
//                with raw write(2): bytes handed to the kernel survive a
//                process death (only power loss eats the page cache, which
//                no in-process test can model anyway).
//  * kCrash    — Hit() calls std::_Exit(kCrashExitCode): a REAL process
//                death — no destructors, no stream flushing, torn state left
//                exactly as the crash instant had it. Used by the
//                bench_smoke crash-recovery leg via rpt_serve --crash-at.
//  * kError    — Hit() returns kError; the site reports the operation as
//                failed through its normal error path (e.g. the WAL treats
//                it as an fsync failure: repairs the file, throws
//                InternalError, and the harness degrades to stale serving).
//  * kShortOp  — Hit() returns kShortOp with `param`; an I/O site performs
//                only `param` bytes of the operation and then throws
//                InjectedFault — the canonical torn-write producer.
//  * kDelay    — Hit() sleeps `param` milliseconds, then continues (returns
//                kOff). Models a slow or hung peer; the TCP timeout tests
//                arm it inside the server's connection loop.
//
// Thread-safety: Arm/Disarm/Hit are safe from any thread (mutex-protected
// slow path). Determinism: with nothing armed, Hit() has no observable
// effect; the repo-wide bit-identical-reports contract is untouched.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace rpt::fail {

/// Exit status used by Action::kCrash (chosen to look like a SIGKILL'd
/// process to the driving script).
inline constexpr int kCrashExitCode = 137;

enum class Action : std::uint8_t {
  kOff = 0,   ///< not armed, or countdown not yet reached — proceed normally
  kThrow,     ///< throw InjectedFault (in-process crash simulation)
  kCrash,     ///< std::_Exit(kCrashExitCode) — real, unflushed process death
  kError,     ///< site reports failure through its normal error path
  kShortOp,   ///< site performs only `param` bytes, then throws InjectedFault
  kDelay,     ///< sleep `param` ms, then proceed
};

/// Thrown by Action::kThrow / Action::kShortOp sites. Deliberately derived
/// from neither InvalidArgument nor InternalError: nothing in the library
/// catches it, so an injected crash always unwinds out to the test (or
/// kills the process under --crash-at), never gets absorbed as a routine
/// validation failure.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what) : std::runtime_error(what) {}
};

/// Arms `point`: the `countdown`-th Hit() from now fires `action` (1 =
/// the very next hit), then the point disarms itself. Re-arming replaces
/// any previous arming of the same point.
void Arm(std::string_view point, Action action, std::uint64_t countdown = 1,
         std::uint64_t param = 0);

/// Arms `point` persistently: EVERY Hit() from now on fires `action` until
/// Disarm()/DisarmAll(). The sticky shape models ongoing conditions (a
/// network partition, a saturated link) rather than point faults. kThrow /
/// kCrash are legal but fire on the first hit anyway; the intended use is
/// kError/kDelay.
void ArmSticky(std::string_view point, Action action, std::uint64_t param = 0);

/// Disarms `point` (no-op when not armed). Hit counters survive.
void Disarm(std::string_view point);

/// Disarms every point and zeroes all hit counters (test teardown).
void DisarmAll();

/// True iff any point is currently armed (the Hit() fast-path predicate,
/// exposed for tests).
[[nodiscard]] bool AnyArmed() noexcept;

/// The failpoint site. With nothing armed anywhere: one relaxed load, no
/// lock, returns kOff. When `point` is armed and its countdown reaches
/// zero: kThrow throws, kCrash exits, kDelay sleeps then returns kOff;
/// kError / kShortOp are returned to the caller (param written through
/// `param_out` when non-null) for the site to act on.
Action Hit(std::string_view point, std::uint64_t* param_out = nullptr);

/// Hits observed on `point` since the last DisarmAll(). Counted only while
/// the registry has ever seen the point armed (the unarmed fast path does
/// not count) — arm first, then drive.
[[nodiscard]] std::uint64_t HitCount(std::string_view point);

/// RAII arming for tests: arms on construction, DisarmAll() on destruction
/// so a failing EXPECT cannot leak an armed point into the next test.
class ScopedArm {
 public:
  ScopedArm(std::string_view point, Action action, std::uint64_t countdown = 1,
            std::uint64_t param = 0) {
    Arm(point, action, countdown, param);
  }
  ScopedArm(const ScopedArm&) = delete;
  ScopedArm& operator=(const ScopedArm&) = delete;
  ~ScopedArm() { DisarmAll(); }
};

}  // namespace rpt::fail
