// Tiny command-line flag parser for example/bench binaries.
//
// Supports --name=value and --name value forms plus boolean switches.
// Unknown flags raise InvalidArgument so typos fail loudly.
//
// Ownership: a Cli owns its declared flags and parsed values; accessors
// return copies. Thread-safety: none — declare, Parse(), and read from the
// main thread before spawning workers (every binary here does exactly
// that). Determinism: parsing is a pure function of argv; GetUint rejects
// negative values instead of wrapping them into ~2^64, so flag misuse fails
// loudly rather than silently changing workloads.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rpt {

/// Parsed command line. Declare flags up front with defaults, then Parse().
class Cli {
 public:
  /// binary_name is used in the --help text.
  Cli(std::string binary_name, std::string description);

  /// Declares an integer flag with a default value.
  void AddInt(const std::string& name, std::int64_t default_value, const std::string& help);

  /// Declares a string flag with a default value.
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);

  /// Declares a boolean switch (false unless present or given =true/=false).
  void AddBool(const std::string& name, bool default_value, const std::string& help);

  /// Parses argv. Returns false if --help was requested (help printed).
  /// Throws InvalidArgument on unknown flags or malformed values.
  [[nodiscard]] bool Parse(int argc, const char* const* argv);

  /// Typed accessors; flag must have been declared with the matching type.
  [[nodiscard]] std::int64_t GetInt(const std::string& name) const;
  [[nodiscard]] std::string GetString(const std::string& name) const;
  [[nodiscard]] bool GetBool(const std::string& name) const;

  /// Reads an integer flag that must be non-negative (and at most
  /// `max_value`); throws InvalidArgument with a clear message otherwise.
  /// Use this instead of casting GetInt() to an unsigned type — the cast
  /// silently turns `--seeds -1` into ~2^64.
  [[nodiscard]] std::uint64_t GetUint(
      const std::string& name,
      std::uint64_t max_value = std::numeric_limits<std::uint64_t>::max()) const;

 private:
  enum class Kind { kInt, kString, kBool };
  struct Flag {
    Kind kind;
    std::string value;
    std::string help;
  };
  const Flag& Find(const std::string& name, Kind kind) const;
  void PrintHelp() const;

  std::string binary_name_;
  std::string description_;
  std::map<std::string, Flag> flags_;
};

/// Shared flags of every BatchRunner-backed binary.
struct BatchFlags {
  std::size_t threads = 0;  ///< worker threads; 0 = hardware concurrency
  std::size_t seeds = 0;    ///< seeds (cells) per sweep configuration
};

/// Declares the standard --threads / --seeds flags on a Cli.
void AddBatchFlags(Cli& cli, std::int64_t default_seeds = 50);

/// Reads the flags declared by AddBatchFlags; throws InvalidArgument when
/// --threads is negative or --seeds is not positive.
[[nodiscard]] BatchFlags GetBatchFlags(const Cli& cli);

}  // namespace rpt
