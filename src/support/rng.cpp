#include "support/rng.hpp"

#include <bit>
#include <cmath>

namespace rpt {

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 mixer(seed);
  for (auto& word : state_) word = mixer.Next();
}

std::uint64_t Rng::Next() noexcept {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) noexcept {
  // Lemire's multiply-shift method with rejection to remove modulo bias.
  RPT_CHECK(bound > 0);
  // Classic rejection sampling: draw until the value falls inside the
  // largest multiple of `bound` (unbiased, expected < 2 draws).
  const std::uint64_t threshold = (0 - bound) % bound;
  while (true) {
    const std::uint64_t x = Next();
    if (x >= threshold) return x % bound;
  }
}

std::uint64_t Rng::NextInRange(std::uint64_t lo, std::uint64_t hi) noexcept {
  RPT_CHECK(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == ~std::uint64_t{0}) return Next();
  return lo + NextBelow(span + 1);
}

double Rng::NextUnit() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextUnit() < p;
}

Rng Rng::Fork() noexcept {
  Rng child(0);
  // Fill the child state from this stream; keeps parent and child decorrelated.
  child.state_ = {Next(), Next(), Next(), Next()};
  return child;
}

std::size_t WeightedPick(Rng& rng, const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    RPT_REQUIRE(w >= 0.0 && std::isfinite(w), "WeightedPick: weights must be finite and >= 0");
    total += w;
  }
  RPT_REQUIRE(total > 0.0, "WeightedPick: total weight must be positive");
  double draw = rng.NextUnit() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point tail: return the last index.
}

}  // namespace rpt
