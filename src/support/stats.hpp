// Streaming statistics accumulators used by benchmark reporting.
//
// Ownership: plain value types; copy freely. Thread-safety: none — workers
// accumulate into their own instances and the aggregator merges in
// submission order (BatchRunner's pattern), never into a shared one.
// Determinism: Add() order affects floating-point rounding, so aggregation
// must run in a thread-count-independent order to keep reports
// bit-identical — which is exactly why BatchRunner aggregates after the
// workers finish rather than as cells complete.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace rpt {

/// Welford streaming accumulator: mean/variance/min/max without storing
/// samples.
class StatAccumulator {
 public:
  /// Adds one sample.
  void Add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  [[nodiscard]] std::uint64_t Count() const noexcept { return count_; }
  [[nodiscard]] double Mean() const noexcept { return mean_; }
  [[nodiscard]] double Min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double Max() const noexcept { return count_ ? max_ : 0.0; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double Variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }

  /// Sample standard deviation.
  [[nodiscard]] double Stddev() const noexcept { return std::sqrt(Variance()); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Ordinary least-squares fit y = a + b*x. Used to estimate complexity
/// exponents from log-log runtime data in the scaling bench.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};

/// Fits a line to (x, y) pairs. Requires at least two points with distinct x.
[[nodiscard]] LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace rpt
