// Batch experiment engine: runs a set of (instance-generator × solver × seed)
// cells across all hardware threads and aggregates the outcomes.
//
// Every sweep-style experiment in bench/ and examples/ is a grid of
// independent solver invocations; BatchRunner is the shared engine that
// executes such a grid with work stealing and produces a deterministic
// report. Determinism contract: the aggregate report (costs, feasibility,
// error counts, metric and ratio statistics — everything except wall-clock
// timing) is bit-identical regardless of thread count, because per-cell
// seeds are derived from the cell itself (never from execution order) and
// aggregation runs over the cell list in submission order after all workers
// finish.
//
// Exception isolation: a cell whose generator, solver, or metric hook throws
// is recorded as an error in its CellResult; the remaining cells still run.
//
// Beyond plain sweeps the runner supports:
//  * custom per-cell metrics — named hooks evaluated after the solve, whose
//    values aggregate into named StatAccumulator columns of the GroupReport
//    (and the JSON/CSV output);
//  * paired comparison sweeps — several solvers run on the *identical*
//    instance per seed, with per-seed ratio/gap statistics (RatioStat)
//    aggregated against the first solver as baseline. This is what the
//    tightness/gap/optimality benches need: "algorithm A vs algorithm B on
//    the same tree", not just two independent sweeps.
//
// Ownership: the runner owns its cells and results; Run() owns the worker
// threads for its duration (spawned per call, joined before it returns,
// marked with ThreadPool::ScopedWorkerMark so intra-solver parallelism
// inside cells degrades to inline instead of oversubscribing). Generators,
// solvers, and metric hooks are std::functions owned by the cell — anything
// they capture by reference must outlive Run().
//
// Thread-safety: build the batch (Add/AddSweep/AddComparisonSweep) from one
// thread, then call Run() once; cells execute concurrently, so hooks must
// not share mutable state across cells (per-cell shared_ptr caches are the
// sanctioned pattern, see surge_replay). BatchReport is immutable after
// Run() and safe to read from any thread.
//
// Determinism: see the contract above — everything in the JSON report
// except wall time is bit-identical for any --threads value, which
// scripts/bench_smoke.sh enforces byte-for-byte in CI.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "model/instance.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"

namespace rpt::runner {

/// Deterministically mixes a base seed and a cell index into an independent
/// per-cell seed (splitmix64-style). Thread-count independent by design.
[[nodiscard]] std::uint64_t DeriveSeed(std::uint64_t base_seed, std::uint64_t index) noexcept;

/// A named per-cell metric: evaluated after the solve on the worker thread,
/// its value flows into a StatAccumulator column of the cell's GroupReport.
/// Returning NaN skips the sample for that cell (e.g. "ratio vs lower bound"
/// when the bound is zero). The hook must be deterministic in its inputs —
/// its values are part of the thread-count-invariant report.
struct Metric {
  std::string name;
  std::function<double(const Instance&, const core::RunResult&)> fn;
};

/// One experiment cell: build an instance from a seed, solve it.
struct Cell {
  /// Aggregation key; cells sharing a group are summarized together.
  std::string group;
  /// Deterministic instance factory: same seed must yield the same instance.
  std::function<Instance(std::uint64_t seed)> make_instance;
  /// Solver under test; use SolveWith() for registry algorithms.
  std::function<core::RunResult(const Instance&)> solve;
  /// Seed passed to make_instance (see DeriveSeed for sweeps).
  std::uint64_t seed = 0;
  /// Custom metrics evaluated on (instance, run result) after the solve.
  std::vector<Metric> metrics;
  /// Timing/metric-only cell: the solve produces no solution to validate
  /// (e.g. the tree-build kernel), so the feasibility/cost/validation
  /// columns are meaningless and are suppressed in every report format.
  /// All cells of a group must agree on this flag.
  bool metric_only = false;
};

/// Adapts a registry algorithm to a Cell solve function (runs core::Run).
[[nodiscard]] std::function<core::RunResult(const Instance&)> SolveWith(core::Algorithm algorithm);

/// A solver with a display name, for comparison sweeps. The name becomes the
/// group suffix ("<group>/<name>") and the label in RatioStat.
struct NamedSolver {
  std::string name;
  std::function<core::RunResult(const Instance&)> solve;
};

/// Outcome of one cell, in submission order.
struct CellResult {
  std::string group;
  std::uint64_t seed = 0;
  bool ok = false;            ///< generator, solver and metrics completed without throwing
  std::string error;          ///< exception message when !ok
  bool feasible = false;      ///< solver produced a solution
  bool validation_ok = false; ///< independent validation passed
  std::uint64_t cost = 0;     ///< replica count (0 when infeasible)
  double elapsed_ms = 0.0;    ///< solve wall time (nondeterministic)
  std::vector<double> metric_values;  ///< parallel to Cell::metrics (NaN = skipped)
};

/// A named aggregate column (one per Metric name used in a group).
struct NamedStat {
  std::string name;
  StatAccumulator stat;
};

/// Per-seed paired statistics of one solver against the comparison baseline.
/// "Cost" is the replica count; smaller is better throughout.
struct RatioStat {
  std::string numerator;    ///< solver under comparison
  std::string denominator;  ///< the baseline (first solver of the sweep)
  std::uint64_t pairs = 0;  ///< seeds where both solvers produced a solution
  std::uint64_t ties = 0;   ///< pairs with equal cost
  std::uint64_t wins = 0;   ///< pairs where the numerator was strictly cheaper
  StatAccumulator ratio;    ///< num/den over pairs with den > 0
  StatAccumulator diff;     ///< num - den (signed), over all pairs
};

/// Aggregate over all cells of one group.
struct GroupReport {
  std::string group;
  std::uint64_t cells = 0;
  std::uint64_t errors = 0;               ///< cells that threw
  bool metric_only = false;    ///< timing/metric group: no solution columns
  std::uint64_t feasible = 0;             ///< cells with a solution
  std::uint64_t validation_failures = 0;  ///< feasible cells failing validation
  StatAccumulator cost;        ///< over feasible cells
  StatAccumulator elapsed_ms;  ///< over non-error cells (nondeterministic)
  std::vector<NamedStat> metrics;  ///< custom metric columns, first-seen order

  /// Looks up a metric column by name; nullptr when absent.
  [[nodiscard]] const StatAccumulator* FindMetric(std::string_view name) const noexcept;
};

/// Aggregate of one comparison sweep: every solver paired against the first.
struct ComparisonReport {
  std::string group;                        ///< the sweep's base group name
  std::vector<std::string> solver_groups;   ///< "<group>/<solver>" per solver
  std::vector<RatioStat> ratios;            ///< solver k (k >= 1) vs solver 0

  /// Looks up the RatioStat whose numerator is `solver`; nullptr when absent.
  [[nodiscard]] const RatioStat* FindRatio(std::string_view solver) const noexcept;
};

/// Aggregated batch outcome. Groups appear in first-submission order.
class BatchReport {
 public:
  [[nodiscard]] const std::vector<GroupReport>& Groups() const noexcept { return groups_; }
  [[nodiscard]] const GroupReport* FindGroup(std::string_view group) const noexcept;
  [[nodiscard]] const std::vector<ComparisonReport>& Comparisons() const noexcept {
    return comparisons_;
  }
  [[nodiscard]] const ComparisonReport* FindComparison(std::string_view group) const noexcept;
  [[nodiscard]] std::uint64_t TotalCells() const noexcept;
  [[nodiscard]] std::uint64_t TotalErrors() const noexcept;
  [[nodiscard]] std::uint64_t TotalValidationFailures() const noexcept;

  /// True iff no cell threw and no produced solution failed validation —
  /// the condition batch-backed binaries should gate their exit code on.
  [[nodiscard]] bool AllOk() const noexcept {
    return TotalErrors() == 0 && TotalValidationFailures() == 0;
  }

  /// Writes the report as JSON (group aggregates, metric columns, and
  /// comparison ratio stats). Timing stats are excluded by default so the
  /// output is bit-identical across runs and thread counts. All strings are
  /// JSON-escaped, so group/solver/metric names may contain any characters.
  /// `extra_json`, when non-empty, must be one or more complete top-level
  /// members (e.g. "\"thread_sweep\":{...}", already escaped by the caller)
  /// and is spliced verbatim before the closing brace.
  void WriteJson(std::ostream& os, bool include_timing = false,
                 std::string_view extra_json = {}) const;
  [[nodiscard]] std::string ToJson(bool include_timing = false,
                                   std::string_view extra_json = {}) const;

  /// Writes the JSON report to a file; throws InvalidArgument on I/O error.
  void WriteJsonFile(const std::string& path, bool include_timing = false,
                     std::string_view extra_json = {}) const;

  /// Writes one CSV row per group (timing columns included when asked).
  /// Custom metric columns are the union over groups (empty when a group
  /// lacks the metric); fields are RFC-4180 quoted when needed.
  void WriteCsv(std::ostream& os, bool include_timing = true) const;

  /// Prints an aligned ASCII summary (with timing) for stdout: the group
  /// table, followed by a paired-comparison table when comparisons exist.
  void PrintAscii(std::ostream& os) const;

 private:
  friend class BatchRunner;
  std::vector<GroupReport> groups_;
  std::vector<ComparisonReport> comparisons_;
};

/// Declares the standard `--json <path>` flag every batch-backed binary
/// shares (pairs with WriteJsonIfRequested).
void AddJsonFlag(Cli& cli);

/// Writes the deterministic report to the path given via --json (no-op when
/// the flag is empty) and prints a confirmation line to `os`.
void WriteJsonIfRequested(const Cli& cli, const BatchReport& report, std::ostream& os);

/// Execution options.
struct BatchOptions {
  /// Worker threads; 0 means hardware concurrency.
  std::size_t threads = 0;
};

/// Collects cells, runs them on a work-stealing thread pool, aggregates.
class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {});

  /// Adds one cell.
  void Add(Cell cell);

  /// Adds `seed_count` cells for the same group/generator/solver, with
  /// per-cell seeds DeriveSeed(base_seed, 0..seed_count-1). The optional
  /// metrics are attached to every cell; `metric_only` marks the whole
  /// sweep as a timing/metric group (see Cell::metric_only).
  void AddSweep(std::string group, std::function<Instance(std::uint64_t)> make_instance,
                std::function<core::RunResult(const Instance&)> solve, std::uint64_t base_seed,
                std::size_t seed_count, std::vector<Metric> metrics = {},
                bool metric_only = false);

  /// Adds a paired comparison sweep: for each of `seed_count` derived seeds,
  /// every solver runs on the *identical* instance (same derived seed fed to
  /// make_instance). Each solver aggregates under "<group>/<solver name>",
  /// and the report gains a ComparisonReport with per-seed ratio/gap stats
  /// of every solver against the first (the baseline). Solver names must be
  /// non-empty and distinct. The optional metrics attach to every cell.
  void AddComparisonSweep(std::string group,
                          std::function<Instance(std::uint64_t)> make_instance,
                          std::vector<NamedSolver> solvers, std::uint64_t base_seed,
                          std::size_t seed_count, std::vector<Metric> metrics = {});

  [[nodiscard]] std::size_t CellCount() const noexcept { return cells_.size(); }

  /// Executes all cells (work-stealing across the configured threads) and
  /// returns the aggregate report. May be called once per runner.
  [[nodiscard]] BatchReport Run();

  /// Per-cell outcomes in submission order; valid after Run().
  [[nodiscard]] const std::vector<CellResult>& Results() const noexcept { return results_; }

 private:
  /// Bookkeeping for one AddComparisonSweep call: its cells occupy
  /// [first_cell, first_cell + solver_count * seed_count), seed-major
  /// (all solvers of seed i are contiguous).
  struct ComparisonSpec {
    std::string group;
    std::vector<std::string> solver_names;
    std::size_t first_cell = 0;
    std::size_t seed_count = 0;
  };

  void ExecuteCell(std::size_t index);

  BatchOptions options_;
  std::vector<Cell> cells_;
  std::vector<ComparisonSpec> comparisons_;
  std::vector<CellResult> results_;
  bool ran_ = false;
};

}  // namespace rpt::runner
