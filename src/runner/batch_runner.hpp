// Batch experiment engine: runs a set of (instance-generator × solver × seed)
// cells across all hardware threads and aggregates the outcomes.
//
// Every sweep-style experiment in bench/ and examples/ is a grid of
// independent solver invocations; BatchRunner is the shared engine that
// executes such a grid with work stealing and produces a deterministic
// report. Determinism contract: the aggregate report (costs, feasibility,
// error counts — everything except wall-clock timing) is bit-identical
// regardless of thread count, because per-cell seeds are derived from the
// cell itself (never from execution order) and aggregation runs over the
// cell list in submission order after all workers finish.
//
// Exception isolation: a cell whose generator or solver throws is recorded
// as an error in its CellResult; the remaining cells still run.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "model/instance.hpp"
#include "support/stats.hpp"

namespace rpt::runner {

/// Deterministically mixes a base seed and a cell index into an independent
/// per-cell seed (splitmix64-style). Thread-count independent by design.
[[nodiscard]] std::uint64_t DeriveSeed(std::uint64_t base_seed, std::uint64_t index) noexcept;

/// One experiment cell: build an instance from a seed, solve it.
struct Cell {
  /// Aggregation key; cells sharing a group are summarized together.
  std::string group;
  /// Deterministic instance factory: same seed must yield the same instance.
  std::function<Instance(std::uint64_t seed)> make_instance;
  /// Solver under test; use SolveWith() for registry algorithms.
  std::function<core::RunResult(const Instance&)> solve;
  /// Seed passed to make_instance (see DeriveSeed for sweeps).
  std::uint64_t seed = 0;
};

/// Adapts a registry algorithm to a Cell solve function (runs core::Run).
[[nodiscard]] std::function<core::RunResult(const Instance&)> SolveWith(core::Algorithm algorithm);

/// Outcome of one cell, in submission order.
struct CellResult {
  std::string group;
  std::uint64_t seed = 0;
  bool ok = false;            ///< generator and solver completed without throwing
  std::string error;          ///< exception message when !ok
  bool feasible = false;      ///< solver produced a solution
  bool validation_ok = false; ///< independent validation passed
  std::uint64_t cost = 0;     ///< replica count (0 when infeasible)
  double elapsed_ms = 0.0;    ///< solve wall time (nondeterministic)
};

/// Aggregate over all cells of one group.
struct GroupReport {
  std::string group;
  std::uint64_t cells = 0;
  std::uint64_t errors = 0;               ///< cells that threw
  std::uint64_t feasible = 0;             ///< cells with a solution
  std::uint64_t validation_failures = 0;  ///< feasible cells failing validation
  StatAccumulator cost;        ///< over feasible cells
  StatAccumulator elapsed_ms;  ///< over non-error cells (nondeterministic)
};

/// Aggregated batch outcome. Groups appear in first-submission order.
class BatchReport {
 public:
  [[nodiscard]] const std::vector<GroupReport>& Groups() const noexcept { return groups_; }
  [[nodiscard]] const GroupReport* FindGroup(std::string_view group) const noexcept;
  [[nodiscard]] std::uint64_t TotalCells() const noexcept;
  [[nodiscard]] std::uint64_t TotalErrors() const noexcept;
  [[nodiscard]] std::uint64_t TotalValidationFailures() const noexcept;

  /// True iff no cell threw and no produced solution failed validation —
  /// the condition batch-backed binaries should gate their exit code on.
  [[nodiscard]] bool AllOk() const noexcept {
    return TotalErrors() == 0 && TotalValidationFailures() == 0;
  }

  /// Writes the report as JSON. Timing stats are excluded by default so the
  /// output is bit-identical across runs and thread counts.
  void WriteJson(std::ostream& os, bool include_timing = false) const;
  [[nodiscard]] std::string ToJson(bool include_timing = false) const;

  /// Writes one CSV row per group (timing columns included when asked).
  void WriteCsv(std::ostream& os, bool include_timing = true) const;

  /// Prints an aligned ASCII summary table (with timing) for stdout.
  void PrintAscii(std::ostream& os) const;

 private:
  friend class BatchRunner;
  std::vector<GroupReport> groups_;
};

/// Execution options.
struct BatchOptions {
  /// Worker threads; 0 means hardware concurrency.
  std::size_t threads = 0;
};

/// Collects cells, runs them on a work-stealing thread pool, aggregates.
class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {});

  /// Adds one cell.
  void Add(Cell cell);

  /// Adds `seed_count` cells for the same group/generator/solver, with
  /// per-cell seeds DeriveSeed(base_seed, 0..seed_count-1).
  void AddSweep(std::string group, std::function<Instance(std::uint64_t)> make_instance,
                std::function<core::RunResult(const Instance&)> solve, std::uint64_t base_seed,
                std::size_t seed_count);

  [[nodiscard]] std::size_t CellCount() const noexcept { return cells_.size(); }

  /// Executes all cells (work-stealing across the configured threads) and
  /// returns the aggregate report. May be called once per runner.
  [[nodiscard]] BatchReport Run();

  /// Per-cell outcomes in submission order; valid after Run().
  [[nodiscard]] const std::vector<CellResult>& Results() const noexcept { return results_; }

 private:
  void ExecuteCell(std::size_t index);

  BatchOptions options_;
  std::vector<Cell> cells_;
  std::vector<CellResult> results_;
  bool ran_ = false;
};

}  // namespace rpt::runner
