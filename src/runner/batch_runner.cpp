#include "runner/batch_runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <fstream>
#include <mutex>
#include <ostream>
#include <set>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "support/common.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace rpt::runner {

namespace {

std::string EscapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteStatJson(std::ostream& os, const StatAccumulator& stat) {
  os << "{\"count\":" << stat.Count() << ",\"mean\":" << FormatCompactDouble(stat.Mean())
     << ",\"min\":" << FormatCompactDouble(stat.Min()) << ",\"max\":" << FormatCompactDouble(stat.Max())
     << ",\"stddev\":" << FormatCompactDouble(stat.Stddev()) << "}";
}

}  // namespace

std::uint64_t DeriveSeed(std::uint64_t base_seed, std::uint64_t index) noexcept {
  // Mix the index into the base with one splitmix64 round; the +1 keeps
  // index 0 from collapsing onto the base seed itself.
  SplitMix64 mix(base_seed + (index + 1) * 0x9e3779b97f4a7c15ULL);
  return mix.Next();
}

std::function<core::RunResult(const Instance&)> SolveWith(core::Algorithm algorithm) {
  return [algorithm](const Instance& instance) { return core::Run(algorithm, instance); };
}

const StatAccumulator* GroupReport::FindMetric(std::string_view name) const noexcept {
  for (const NamedStat& metric : metrics) {
    if (metric.name == name) return &metric.stat;
  }
  return nullptr;
}

const RatioStat* ComparisonReport::FindRatio(std::string_view solver) const noexcept {
  for (const RatioStat& ratio : ratios) {
    if (ratio.numerator == solver) return &ratio;
  }
  return nullptr;
}

const GroupReport* BatchReport::FindGroup(std::string_view group) const noexcept {
  for (const GroupReport& g : groups_) {
    if (g.group == group) return &g;
  }
  return nullptr;
}

const ComparisonReport* BatchReport::FindComparison(std::string_view group) const noexcept {
  for (const ComparisonReport& comparison : comparisons_) {
    if (comparison.group == group) return &comparison;
  }
  return nullptr;
}

std::uint64_t BatchReport::TotalCells() const noexcept {
  std::uint64_t total = 0;
  for (const GroupReport& g : groups_) total += g.cells;
  return total;
}

std::uint64_t BatchReport::TotalErrors() const noexcept {
  std::uint64_t total = 0;
  for (const GroupReport& g : groups_) total += g.errors;
  return total;
}

std::uint64_t BatchReport::TotalValidationFailures() const noexcept {
  std::uint64_t total = 0;
  for (const GroupReport& g : groups_) total += g.validation_failures;
  return total;
}

void BatchReport::WriteJson(std::ostream& os, bool include_timing,
                            std::string_view extra_json) const {
  os << "{\"cells\":" << TotalCells() << ",\"errors\":" << TotalErrors() << ",\"groups\":[";
  bool first = true;
  for (const GroupReport& g : groups_) {
    if (!first) os << ",";
    first = false;
    os << "{\"group\":\"" << EscapeJson(g.group) << "\",\"cells\":" << g.cells
       << ",\"errors\":" << g.errors;
    if (g.metric_only) {
      // Timing/metric group: no solution, so the feasibility/cost columns
      // would only ever report zeros — suppress them.
      os << ",\"metric_only\":true";
    } else {
      os << ",\"feasible\":" << g.feasible
         << ",\"validation_failures\":" << g.validation_failures << ",\"cost\":";
      WriteStatJson(os, g.cost);
    }
    if (!g.metrics.empty()) {
      os << ",\"metrics\":{";
      bool first_metric = true;
      for (const NamedStat& metric : g.metrics) {
        if (!first_metric) os << ",";
        first_metric = false;
        os << "\"" << EscapeJson(metric.name) << "\":";
        WriteStatJson(os, metric.stat);
      }
      os << "}";
    }
    if (include_timing) {
      os << ",\"elapsed_ms\":";
      WriteStatJson(os, g.elapsed_ms);
    }
    os << "}";
  }
  os << "]";
  if (!comparisons_.empty()) {
    os << ",\"comparisons\":[";
    bool first_comparison = true;
    for (const ComparisonReport& comparison : comparisons_) {
      if (!first_comparison) os << ",";
      first_comparison = false;
      os << "{\"group\":\"" << EscapeJson(comparison.group) << "\",\"ratios\":[";
      bool first_ratio = true;
      for (const RatioStat& ratio : comparison.ratios) {
        if (!first_ratio) os << ",";
        first_ratio = false;
        os << "{\"numerator\":\"" << EscapeJson(ratio.numerator) << "\",\"denominator\":\""
           << EscapeJson(ratio.denominator) << "\",\"pairs\":" << ratio.pairs
           << ",\"ties\":" << ratio.ties << ",\"wins\":" << ratio.wins << ",\"ratio\":";
        WriteStatJson(os, ratio.ratio);
        os << ",\"diff\":";
        WriteStatJson(os, ratio.diff);
        os << "}";
      }
      os << "]}";
    }
    os << "]";
  }
  if (!extra_json.empty()) os << "," << extra_json;
  os << "}\n";
}

std::string BatchReport::ToJson(bool include_timing, std::string_view extra_json) const {
  std::ostringstream os;
  WriteJson(os, include_timing, extra_json);
  return os.str();
}

void BatchReport::WriteJsonFile(const std::string& path, bool include_timing,
                                std::string_view extra_json) const {
  std::ofstream os(path);
  RPT_REQUIRE(os.good(), "BatchReport: cannot open JSON output file: " + path);
  WriteJson(os, include_timing, extra_json);
  os.flush();  // surface buffered write errors (e.g. ENOSPC) before checking
  RPT_REQUIRE(os.good(), "BatchReport: write failed for JSON output file: " + path);
}

void BatchReport::WriteCsv(std::ostream& os, bool include_timing) const {
  // Union of metric names across groups, in first-seen order, so every row
  // has the same columns (empty where a group lacks the metric).
  std::vector<std::string> metric_names;
  for (const GroupReport& g : groups_) {
    for (const NamedStat& metric : g.metrics) {
      if (std::find(metric_names.begin(), metric_names.end(), metric.name) ==
          metric_names.end()) {
        metric_names.push_back(metric.name);
      }
    }
  }

  std::vector<std::string> headers{"group",     "cells",    "errors",   "feasible",
                                   "val_fails", "cost_mean", "cost_min", "cost_max",
                                   "cost_stddev"};
  for (const std::string& name : metric_names) {
    headers.push_back(name + "_mean");
    headers.push_back(name + "_min");
    headers.push_back(name + "_max");
  }
  if (include_timing) {
    headers.insert(headers.end(), {"ms_mean", "ms_min", "ms_max"});
  }
  Table table(std::move(headers));
  for (const GroupReport& g : groups_) {
    Table& row = table.NewRow().Add(g.group).Add(g.cells).Add(g.errors);
    if (g.metric_only) {
      row.Add("").Add("").Add("").Add("").Add("").Add("");
    } else {
      row.Add(g.feasible)
          .Add(g.validation_failures)
          .Add(g.cost.Mean(), 4)
          .Add(g.cost.Min(), 0)
          .Add(g.cost.Max(), 0)
          .Add(g.cost.Stddev(), 4);
    }
    for (const std::string& name : metric_names) {
      if (const StatAccumulator* stat = g.FindMetric(name)) {
        row.Add(stat->Mean(), 4).Add(stat->Min(), 4).Add(stat->Max(), 4);
      } else {
        row.Add("").Add("").Add("");
      }
    }
    if (include_timing) {
      row.Add(g.elapsed_ms.Mean(), 4).Add(g.elapsed_ms.Min(), 4).Add(g.elapsed_ms.Max(), 4);
    }
  }
  table.PrintCsv(os);
}

void BatchReport::PrintAscii(std::ostream& os) const {
  Table table({"group", "cells", "err", "feasible", "cost mean", "cost min", "cost max",
               "ms mean", "ms max"});
  for (const GroupReport& g : groups_) {
    Table& row = table.NewRow().Add(g.group).Add(g.cells).Add(g.errors);
    if (g.metric_only) {
      row.Add("-").Add("-").Add("-").Add("-");  // timing/metric-only group
    } else {
      row.Add(g.feasible).Add(g.cost.Mean(), 2).Add(g.cost.Min(), 0).Add(g.cost.Max(), 0);
    }
    row.Add(g.elapsed_ms.Mean(), 3).Add(g.elapsed_ms.Max(), 3);
  }
  table.PrintAscii(os);

  // Metric columns, one row per (group, metric) — groups may carry different
  // metric sets, so a per-group-column layout does not fit.
  bool any_metrics = false;
  for (const GroupReport& g : groups_) any_metrics |= !g.metrics.empty();
  if (any_metrics) {
    Table metric_table({"group", "metric", "count", "mean", "min", "max", "stddev"});
    for (const GroupReport& g : groups_) {
      for (const NamedStat& metric : g.metrics) {
        metric_table.NewRow()
            .Add(g.group)
            .Add(metric.name)
            .Add(metric.stat.Count())
            .Add(metric.stat.Mean(), 4)
            .Add(metric.stat.Min(), 4)
            .Add(metric.stat.Max(), 4)
            .Add(metric.stat.Stddev(), 4);
      }
    }
    os << "\nmetrics:\n";
    metric_table.PrintAscii(os);
  }

  if (!comparisons_.empty()) {
    Table comparison_table({"comparison", "solver", "baseline", "pairs", "ratio mean",
                            "ratio max", "diff mean", "wins", "ties"});
    for (const ComparisonReport& comparison : comparisons_) {
      for (const RatioStat& ratio : comparison.ratios) {
        comparison_table.NewRow()
            .Add(comparison.group)
            .Add(ratio.numerator)
            .Add(ratio.denominator)
            .Add(ratio.pairs)
            .Add(ratio.ratio.Mean(), 3)
            .Add(ratio.ratio.Max(), 3)
            .Add(ratio.diff.Mean(), 3)
            .Add(ratio.wins)
            .Add(ratio.ties);
      }
    }
    os << "\npaired comparisons (per-seed, vs baseline):\n";
    comparison_table.PrintAscii(os);
  }
}

void AddJsonFlag(Cli& cli) {
  cli.AddString("json", "", "write the deterministic aggregate report (no timing) here");
}

void WriteJsonIfRequested(const Cli& cli, const BatchReport& report, std::ostream& os) {
  const std::string path = cli.GetString("json");
  if (path.empty()) return;
  report.WriteJsonFile(path);
  os << "\nwrote deterministic aggregate report to " << path << "\n";
}

BatchRunner::BatchRunner(BatchOptions options) : options_(options) {}

void BatchRunner::Add(Cell cell) {
  RPT_REQUIRE(static_cast<bool>(cell.make_instance), "BatchRunner: cell needs make_instance");
  RPT_REQUIRE(static_cast<bool>(cell.solve), "BatchRunner: cell needs solve");
  for (const Metric& metric : cell.metrics) {
    RPT_REQUIRE(!metric.name.empty(), "BatchRunner: metric needs a name");
    RPT_REQUIRE(static_cast<bool>(metric.fn), "BatchRunner: metric needs a function");
  }
  RPT_REQUIRE(!ran_, "BatchRunner: cannot add cells after Run()");
  cells_.push_back(std::move(cell));
}

void BatchRunner::AddSweep(std::string group,
                           std::function<Instance(std::uint64_t)> make_instance,
                           std::function<core::RunResult(const Instance&)> solve,
                           std::uint64_t base_seed, std::size_t seed_count,
                           std::vector<Metric> metrics, bool metric_only) {
  for (std::size_t i = 0; i < seed_count; ++i) {
    Add(Cell{group, make_instance, solve, DeriveSeed(base_seed, i), metrics, metric_only});
  }
}

void BatchRunner::AddComparisonSweep(std::string group,
                                     std::function<Instance(std::uint64_t)> make_instance,
                                     std::vector<NamedSolver> solvers, std::uint64_t base_seed,
                                     std::size_t seed_count, std::vector<Metric> metrics) {
  RPT_REQUIRE(!solvers.empty(), "BatchRunner: comparison sweep needs at least one solver");
  // All-or-nothing validation: reject bad solvers before any cell is added,
  // so a throw never leaves the runner with a half-populated sweep.
  std::set<std::string> names;
  for (const NamedSolver& solver : solvers) {
    RPT_REQUIRE(!solver.name.empty(), "BatchRunner: comparison solver needs a name");
    RPT_REQUIRE(names.insert(solver.name).second,
                "BatchRunner: duplicate comparison solver name: " + solver.name);
    RPT_REQUIRE(static_cast<bool>(solver.solve),
                "BatchRunner: comparison solver needs a solve function: " + solver.name);
  }
  ComparisonSpec spec;
  spec.group = group;
  for (const NamedSolver& solver : solvers) spec.solver_names.push_back(solver.name);
  spec.first_cell = cells_.size();
  spec.seed_count = seed_count;
  // Seed-major layout: all solvers of one seed are contiguous, sharing the
  // same derived seed so make_instance yields the identical instance.
  for (std::size_t i = 0; i < seed_count; ++i) {
    const std::uint64_t seed = DeriveSeed(base_seed, i);
    for (const NamedSolver& solver : solvers) {
      Add(Cell{group + "/" + solver.name, make_instance, solver.solve, seed, metrics});
    }
  }
  comparisons_.push_back(std::move(spec));
}

void BatchRunner::ExecuteCell(std::size_t index) {
  const Cell& cell = cells_[index];
  CellResult result;
  result.group = cell.group;
  result.seed = cell.seed;
  try {
    const Instance instance = cell.make_instance(cell.seed);
    const core::RunResult run = cell.solve(instance);
    result.feasible = run.feasible;
    result.validation_ok = run.validation.ok;
    result.cost = run.feasible ? run.solution.ReplicaCount() : 0;
    result.elapsed_ms = run.elapsed_ms;
    result.metric_values.reserve(cell.metrics.size());
    for (const Metric& metric : cell.metrics) {
      result.metric_values.push_back(metric.fn(instance, run));
    }
    result.ok = true;
  } catch (const std::exception& e) {
    result.error = e.what();
  } catch (...) {
    result.error = "unknown exception";
  }
  results_[index] = std::move(result);
}

BatchReport BatchRunner::Run() {
  RPT_REQUIRE(!ran_, "BatchRunner: Run() may be called once");
  ran_ = true;
  const std::size_t cell_count = cells_.size();
  results_.assign(cell_count, CellResult{});

  if (cell_count > 0) {
    std::size_t threads =
        options_.threads != 0
            ? options_.threads
            : std::max<std::size_t>(1, std::thread::hardware_concurrency());
    threads = std::min(threads, cell_count);

    // Work-stealing scheduler: each worker owns a deque of cell indices
    // (round-robin distributed), pops from its own front, and when dry
    // steals from the back of the first non-empty victim found by a
    // round-robin scan. All work exists before the
    // workers start and cells never spawn cells, so a worker may exit once
    // its own deque and one full scan of the victims come up empty.
    struct WorkerQueue {
      std::mutex mutex;
      std::deque<std::size_t> items;
    };
    std::vector<WorkerQueue> queues(threads);
    for (std::size_t i = 0; i < cell_count; ++i) {
      queues[i % threads].items.push_back(i);
    }

    auto worker_body = [&](std::size_t self) {
      for (;;) {
        std::size_t index = 0;
        bool found = false;
        {
          std::scoped_lock lock(queues[self].mutex);
          if (!queues[self].items.empty()) {
            index = queues[self].items.front();
            queues[self].items.pop_front();
            found = true;
          }
        }
        if (!found) {
          for (std::size_t offset = 1; offset < threads && !found; ++offset) {
            WorkerQueue& victim = queues[(self + offset) % threads];
            std::scoped_lock lock(victim.mutex);
            if (!victim.items.empty()) {
              index = victim.items.back();
              victim.items.pop_back();
              found = true;
            }
          }
        }
        if (!found) return;
        ExecuteCell(index);
      }
    };

    if (threads == 1) {
      // Inline on the caller: cells may still use intra-solver parallelism
      // (this is how bench_hotpath measures one instance saturating the
      // solver pool).
      worker_body(0);
    } else {
      // Spawned workers mark themselves as engine workers so solvers inside
      // cells run their fork-join loops inline — the batch workers already
      // saturate the cores, and nesting onto the shared solver pool would
      // only oversubscribe it.
      std::vector<std::jthread> workers;
      workers.reserve(threads);
      for (std::size_t w = 0; w < threads; ++w) {
        workers.emplace_back([&worker_body, w] {
          const ThreadPool::ScopedWorkerMark mark;
          worker_body(w);
        });
      }
    }
  }

  // Sequential aggregation in submission order keeps the report independent
  // of which worker ran which cell.
  BatchReport report;
  std::unordered_map<std::string, std::size_t> group_index;
  for (std::size_t i = 0; i < results_.size(); ++i) {
    const CellResult& result = results_[i];
    auto [it, inserted] = group_index.try_emplace(result.group, report.groups_.size());
    if (inserted) {
      GroupReport group;
      group.group = result.group;
      group.metric_only = cells_[i].metric_only;
      report.groups_.push_back(std::move(group));
    }
    GroupReport& group = report.groups_[it->second];
    RPT_CHECK(group.metric_only == cells_[i].metric_only);  // groups must agree
    ++group.cells;
    if (!result.ok) {
      ++group.errors;
      continue;
    }
    group.elapsed_ms.Add(result.elapsed_ms);
    if (result.feasible && !group.metric_only) {
      ++group.feasible;
      group.cost.Add(static_cast<double>(result.cost));
      if (!result.validation_ok) ++group.validation_failures;
    }
    for (std::size_t m = 0; m < result.metric_values.size(); ++m) {
      const double value = result.metric_values[m];
      if (std::isnan(value)) continue;  // the hook opted out for this cell
      const std::string& name = cells_[i].metrics[m].name;
      NamedStat* column = nullptr;
      for (NamedStat& candidate : group.metrics) {
        if (candidate.name == name) {
          column = &candidate;
          break;
        }
      }
      if (column == nullptr) {
        group.metrics.push_back(NamedStat{name, {}});
        column = &group.metrics.back();
      }
      column->stat.Add(value);
    }
  }

  // Paired comparison aggregation: per seed, every solver against the first.
  // Cell layout within a spec is seed-major (see AddComparisonSweep).
  for (const ComparisonSpec& spec : comparisons_) {
    ComparisonReport comparison;
    comparison.group = spec.group;
    for (const std::string& name : spec.solver_names) {
      comparison.solver_groups.push_back(spec.group + "/" + name);
    }
    const std::size_t solver_count = spec.solver_names.size();
    for (std::size_t j = 1; j < solver_count; ++j) {
      RatioStat ratio;
      ratio.numerator = spec.solver_names[j];
      ratio.denominator = spec.solver_names[0];
      for (std::size_t i = 0; i < spec.seed_count; ++i) {
        const CellResult& den = results_[spec.first_cell + i * solver_count];
        const CellResult& num = results_[spec.first_cell + i * solver_count + j];
        if (!den.ok || !den.feasible || !num.ok || !num.feasible) continue;
        ++ratio.pairs;
        ratio.ties += num.cost == den.cost;
        ratio.wins += num.cost < den.cost;
        ratio.diff.Add(static_cast<double>(num.cost) - static_cast<double>(den.cost));
        if (den.cost > 0) {
          ratio.ratio.Add(static_cast<double>(num.cost) / static_cast<double>(den.cost));
        }
      }
      comparison.ratios.push_back(std::move(ratio));
    }
    report.comparisons_.push_back(std::move(comparison));
  }
  return report;
}

}  // namespace rpt::runner
