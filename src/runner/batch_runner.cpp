#include "runner/batch_runner.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "support/common.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace rpt::runner {

namespace {

// Deterministic double formatting for JSON/CSV: enough digits to round-trip
// the aggregate means, same string on every run with the same inputs.
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string EscapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteStatJson(std::ostream& os, const StatAccumulator& stat) {
  os << "{\"count\":" << stat.Count() << ",\"mean\":" << FormatDouble(stat.Mean())
     << ",\"min\":" << FormatDouble(stat.Min()) << ",\"max\":" << FormatDouble(stat.Max())
     << ",\"stddev\":" << FormatDouble(stat.Stddev()) << "}";
}

}  // namespace

std::uint64_t DeriveSeed(std::uint64_t base_seed, std::uint64_t index) noexcept {
  // Mix the index into the base with one splitmix64 round; the +1 keeps
  // index 0 from collapsing onto the base seed itself.
  SplitMix64 mix(base_seed + (index + 1) * 0x9e3779b97f4a7c15ULL);
  return mix.Next();
}

std::function<core::RunResult(const Instance&)> SolveWith(core::Algorithm algorithm) {
  return [algorithm](const Instance& instance) { return core::Run(algorithm, instance); };
}

const GroupReport* BatchReport::FindGroup(std::string_view group) const noexcept {
  for (const GroupReport& g : groups_) {
    if (g.group == group) return &g;
  }
  return nullptr;
}

std::uint64_t BatchReport::TotalCells() const noexcept {
  std::uint64_t total = 0;
  for (const GroupReport& g : groups_) total += g.cells;
  return total;
}

std::uint64_t BatchReport::TotalErrors() const noexcept {
  std::uint64_t total = 0;
  for (const GroupReport& g : groups_) total += g.errors;
  return total;
}

std::uint64_t BatchReport::TotalValidationFailures() const noexcept {
  std::uint64_t total = 0;
  for (const GroupReport& g : groups_) total += g.validation_failures;
  return total;
}

void BatchReport::WriteJson(std::ostream& os, bool include_timing) const {
  os << "{\"cells\":" << TotalCells() << ",\"errors\":" << TotalErrors() << ",\"groups\":[";
  bool first = true;
  for (const GroupReport& g : groups_) {
    if (!first) os << ",";
    first = false;
    os << "{\"group\":\"" << EscapeJson(g.group) << "\",\"cells\":" << g.cells
       << ",\"errors\":" << g.errors << ",\"feasible\":" << g.feasible
       << ",\"validation_failures\":" << g.validation_failures << ",\"cost\":";
    WriteStatJson(os, g.cost);
    if (include_timing) {
      os << ",\"elapsed_ms\":";
      WriteStatJson(os, g.elapsed_ms);
    }
    os << "}";
  }
  os << "]}\n";
}

std::string BatchReport::ToJson(bool include_timing) const {
  std::ostringstream os;
  WriteJson(os, include_timing);
  return os.str();
}

void BatchReport::WriteCsv(std::ostream& os, bool include_timing) const {
  std::vector<std::string> headers{"group",     "cells",    "errors",   "feasible",
                                   "val_fails", "cost_mean", "cost_min", "cost_max",
                                   "cost_stddev"};
  if (include_timing) {
    headers.insert(headers.end(), {"ms_mean", "ms_min", "ms_max"});
  }
  Table table(std::move(headers));
  for (const GroupReport& g : groups_) {
    Table& row = table.NewRow()
                     .Add(g.group)
                     .Add(g.cells)
                     .Add(g.errors)
                     .Add(g.feasible)
                     .Add(g.validation_failures)
                     .Add(g.cost.Mean(), 4)
                     .Add(g.cost.Min(), 0)
                     .Add(g.cost.Max(), 0)
                     .Add(g.cost.Stddev(), 4);
    if (include_timing) {
      row.Add(g.elapsed_ms.Mean(), 4).Add(g.elapsed_ms.Min(), 4).Add(g.elapsed_ms.Max(), 4);
    }
  }
  table.PrintCsv(os);
}

void BatchReport::PrintAscii(std::ostream& os) const {
  Table table({"group", "cells", "err", "feasible", "cost mean", "cost min", "cost max",
               "ms mean", "ms max"});
  for (const GroupReport& g : groups_) {
    table.NewRow()
        .Add(g.group)
        .Add(g.cells)
        .Add(g.errors)
        .Add(g.feasible)
        .Add(g.cost.Mean(), 2)
        .Add(g.cost.Min(), 0)
        .Add(g.cost.Max(), 0)
        .Add(g.elapsed_ms.Mean(), 3)
        .Add(g.elapsed_ms.Max(), 3);
  }
  table.PrintAscii(os);
}

BatchRunner::BatchRunner(BatchOptions options) : options_(options) {}

void BatchRunner::Add(Cell cell) {
  RPT_REQUIRE(static_cast<bool>(cell.make_instance), "BatchRunner: cell needs make_instance");
  RPT_REQUIRE(static_cast<bool>(cell.solve), "BatchRunner: cell needs solve");
  RPT_REQUIRE(!ran_, "BatchRunner: cannot add cells after Run()");
  cells_.push_back(std::move(cell));
}

void BatchRunner::AddSweep(std::string group,
                           std::function<Instance(std::uint64_t)> make_instance,
                           std::function<core::RunResult(const Instance&)> solve,
                           std::uint64_t base_seed, std::size_t seed_count) {
  for (std::size_t i = 0; i < seed_count; ++i) {
    Add(Cell{group, make_instance, solve, DeriveSeed(base_seed, i)});
  }
}

void BatchRunner::ExecuteCell(std::size_t index) {
  const Cell& cell = cells_[index];
  CellResult result;
  result.group = cell.group;
  result.seed = cell.seed;
  try {
    const Instance instance = cell.make_instance(cell.seed);
    const core::RunResult run = cell.solve(instance);
    result.ok = true;
    result.feasible = run.feasible;
    result.validation_ok = run.validation.ok;
    result.cost = run.feasible ? run.solution.ReplicaCount() : 0;
    result.elapsed_ms = run.elapsed_ms;
  } catch (const std::exception& e) {
    result.error = e.what();
  } catch (...) {
    result.error = "unknown exception";
  }
  results_[index] = std::move(result);
}

BatchReport BatchRunner::Run() {
  RPT_REQUIRE(!ran_, "BatchRunner: Run() may be called once");
  ran_ = true;
  const std::size_t cell_count = cells_.size();
  results_.assign(cell_count, CellResult{});

  if (cell_count > 0) {
    std::size_t threads =
        options_.threads != 0
            ? options_.threads
            : std::max<std::size_t>(1, std::thread::hardware_concurrency());
    threads = std::min(threads, cell_count);

    // Work-stealing scheduler: each worker owns a deque of cell indices
    // (round-robin distributed), pops from its own front, and when dry
    // steals from the back of the first non-empty victim found by a
    // round-robin scan. All work exists before the
    // workers start and cells never spawn cells, so a worker may exit once
    // its own deque and one full scan of the victims come up empty.
    struct WorkerQueue {
      std::mutex mutex;
      std::deque<std::size_t> items;
    };
    std::vector<WorkerQueue> queues(threads);
    for (std::size_t i = 0; i < cell_count; ++i) {
      queues[i % threads].items.push_back(i);
    }

    auto worker_body = [&](std::size_t self) {
      for (;;) {
        std::size_t index = 0;
        bool found = false;
        {
          std::scoped_lock lock(queues[self].mutex);
          if (!queues[self].items.empty()) {
            index = queues[self].items.front();
            queues[self].items.pop_front();
            found = true;
          }
        }
        if (!found) {
          for (std::size_t offset = 1; offset < threads && !found; ++offset) {
            WorkerQueue& victim = queues[(self + offset) % threads];
            std::scoped_lock lock(victim.mutex);
            if (!victim.items.empty()) {
              index = victim.items.back();
              victim.items.pop_back();
              found = true;
            }
          }
        }
        if (!found) return;
        ExecuteCell(index);
      }
    };

    if (threads == 1) {
      worker_body(0);
    } else {
      std::vector<std::jthread> workers;
      workers.reserve(threads);
      for (std::size_t w = 0; w < threads; ++w) {
        workers.emplace_back(worker_body, w);
      }
    }
  }

  // Sequential aggregation in submission order keeps the report independent
  // of which worker ran which cell.
  BatchReport report;
  std::unordered_map<std::string, std::size_t> group_index;
  for (const CellResult& result : results_) {
    auto [it, inserted] = group_index.try_emplace(result.group, report.groups_.size());
    if (inserted) {
      GroupReport group;
      group.group = result.group;
      report.groups_.push_back(std::move(group));
    }
    GroupReport& group = report.groups_[it->second];
    ++group.cells;
    if (!result.ok) {
      ++group.errors;
      continue;
    }
    group.elapsed_ms.Add(result.elapsed_ms);
    if (result.feasible) {
      ++group.feasible;
      group.cost.Add(static_cast<double>(result.cost));
      if (!result.validation_ok) ++group.validation_failures;
    }
  }
  return report;
}

}  // namespace rpt::runner
