#!/usr/bin/env python3
"""Tests for scripts/merge_bench_json.py.

Registered as a ctest (`merge_bench_json_py`) so the merge step of the perf
pipeline is covered by the same `ctest` invocation as everything else. Run
directly with:  python3 scripts/test_merge_bench_json.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "merge_bench_json.py")


def run_merge(tmp, *reports):
    """Writes each report dict to a file, runs the merge, returns (rc, merged-or-None, stderr)."""
    paths = []
    for i, report in enumerate(reports):
        path = os.path.join(tmp, f"in{i}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report, handle)
        paths.append(path)
    out = os.path.join(tmp, "merged.json")
    proc = subprocess.run(
        [sys.executable, SCRIPT, out] + paths, capture_output=True, text=True, check=False
    )
    merged = None
    if proc.returncode == 0:
        with open(out, "r", encoding="utf-8") as handle:
            merged = json.load(handle)
    return proc.returncode, merged, proc.stderr


def report(groups, cells=1, **sections):
    base = {"cells": cells, "errors": 0, "groups": [{"group": g} for g in groups]}
    base.update(sections)
    return base


class MergeBenchJsonTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tmp = self._tmp.name

    def tearDown(self):
        self._tmp.cleanup()

    def test_merges_groups_sections_and_totals(self):
        rc, merged, _ = run_merge(
            self.tmp,
            report(["a", "b"], cells=2, thread_sweep={"n": 1}),
            report(["c"], cells=3, incremental_sweep={"m": 2}),
            report(["d"], cells=1, serve_qps={"qps": 9}),
        )
        self.assertEqual(rc, 0)
        self.assertEqual([g["group"] for g in merged["groups"]], ["a", "b", "c", "d"])
        self.assertEqual(merged["cells"], 6)
        self.assertEqual(merged["thread_sweep"], {"n": 1})
        self.assertEqual(merged["incremental_sweep"], {"m": 2})
        self.assertEqual(merged["serve_qps"], {"qps": 9})

    def test_duplicate_group_name_is_an_error(self):
        rc, merged, stderr = run_merge(
            self.tmp, report(["a", "b"]), report(["b"])
        )
        self.assertEqual(rc, 2)
        self.assertIsNone(merged)
        self.assertIn("duplicate group 'b'", stderr)

    def test_duplicate_top_level_section_is_an_error(self):
        # The regression this file exists for: two reports both carrying
        # "incremental_sweep" used to merge silently, keeping the first and
        # dropping the second on the floor.
        rc, merged, stderr = run_merge(
            self.tmp,
            report(["a"], incremental_sweep={"speedup": [2.0]}),
            report(["b"], incremental_sweep={"speedup": [9.0]}),
        )
        self.assertEqual(rc, 2)
        self.assertIsNone(merged)
        self.assertIn("duplicate top-level section 'incremental_sweep'", stderr)

    def test_base_report_sections_never_conflict_with_themselves(self):
        # Sections only present in the base pass through untouched.
        rc, merged, _ = run_merge(
            self.tmp, report(["a"], thread_sweep={"n": 1}), report(["b"])
        )
        self.assertEqual(rc, 0)
        self.assertEqual(merged["thread_sweep"], {"n": 1})

    def test_malformed_input_is_an_error(self):
        bad = os.path.join(self.tmp, "bad.json")
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        ok = os.path.join(self.tmp, "ok.json")
        with open(ok, "w", encoding="utf-8") as handle:
            json.dump(report(["a"]), handle)
        out = os.path.join(self.tmp, "merged.json")
        proc = subprocess.run(
            [sys.executable, SCRIPT, out, ok, bad],
            capture_output=True, text=True, check=False,
        )
        self.assertEqual(proc.returncode, 2)
        self.assertIn("cannot read reports", proc.stderr)


if __name__ == "__main__":
    unittest.main()
