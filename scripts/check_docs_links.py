#!/usr/bin/env python3
"""Dead-link checker for the repo documentation.

Scans README.md, ROADMAP.md, and every Markdown file under docs/ for
relative Markdown links ([text](path), with optional #fragment) and fails
when a target does not exist on disk. External links (http/https/mailto)
and pure in-page fragments (#section) are skipped — this gate is about the
repo's own files, which refactors silently break.

Usage:
  scripts/check_docs_links.py [repo-root]   (default: the script's parent)

Exit status: 0 when every relative link resolves, 1 otherwise.
"""

import pathlib
import re
import sys

# [text](target) — target captured up to the closing paren; images too.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def collect_files(root):
    files = [root / "README.md", root / "ROADMAP.md"]
    docs = root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    return [f for f in files if f.is_file()]


def main():
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else
                        pathlib.Path(__file__).resolve().parent.parent)
    broken = []
    checked = 0
    for doc in collect_files(root):
        for line_number, line in enumerate(doc.read_text(encoding="utf-8").splitlines(), 1):
            for target in LINK_RE.findall(line):
                if target.startswith(SKIP_PREFIXES):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = (doc.parent / path).resolve()
                checked += 1
                if not resolved.exists():
                    broken.append(f"{doc.relative_to(root)}:{line_number}: "
                                  f"dead link '{target}'")
    for issue in broken:
        print(issue)
    if broken:
        print(f"\nFAIL: {len(broken)} dead relative link(s)")
        return 1
    print(f"OK: {checked} relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
