#!/usr/bin/env python3
"""Per-kernel perf regression gate for the hot-path bench.

Diffs a fresh BENCH_hotpath.json against a baseline (normally the committed
one) and fails when any kernel's mean wall time regressed by more than the
threshold. Groups present on only one side are reported but never fail the
gate (new tiers appear, old ones retire); groups faster than --min-ms in the
baseline are compared but exempt from failing, since sub-millisecond kernels
are dominated by scheduler noise.

Beyond the serial means, the gate also checks the "thread_sweep" section:
for every kernel in both sweeps, the parallel speedup at the largest thread
width the two reports share must not collapse. A kernel is only *gated* on
scaling when the baseline itself showed real scaling there (speedup >=
--min-scaling-base): a baseline recorded on a small machine shows speedups
near (or below) 1.0 for every kernel, and gating against that would be
gating noise — those rows are reported as "not gated" (spelled
"not gated (1-core baseline)" when the baseline env shows hw_threads=1).
Record the baseline on a pinned multicore box to arm this half of the gate;
the report's "env" section (hw_threads) says what the baseline was recorded
on. Report sections the gate does not consume (incremental_sweep,
topology_sweep, serve_qps, shard_forest, ...) are announced with an
explicit not-gated line each — nothing in the artifact is skipped silently.

Usage:
  scripts/bench_compare.py BASELINE.json FRESH.json [--threshold 0.25]
      [--min-ms 1.0] [--scaling-threshold 0.25] [--min-scaling-base 1.2]

Exit status: 0 when no kernel regressed past either threshold, 1 otherwise
(or 2 on malformed input).
"""

import argparse
import json
import sys


def load_report(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def group_means(report):
    """Returns {group name: mean elapsed ms} for every group with timing."""
    means = {}
    for group in report.get("groups", []):
        elapsed = group.get("elapsed_ms")
        if elapsed is None:
            continue
        means[group["group"]] = float(elapsed["mean"])
    return means


def sweep_speedups(report):
    """Returns {kernel: {thread width: speedup}} from the thread_sweep section,
    or None when the report carries no sweep."""
    sweep = report.get("thread_sweep")
    if not sweep:
        return None
    threads = sweep.get("threads", [])
    out = {}
    for kernel in sweep.get("kernels", []):
        speedups = kernel.get("speedup", [])
        out[kernel["group"]] = {
            int(t): float(s) for t, s in zip(threads, speedups)
        }
    return out


def check_scaling(baseline_report, fresh_report, args):
    """Compares parallel speedup at the largest shared thread width.

    Returns the list of kernels whose scaling collapsed past the threshold.
    Kernels whose *baseline* speedup is below --min-scaling-base are shown
    but never gated — a baseline recorded on a 1-core host scales nowhere,
    and that is a fact about the recording machine, not the code.
    """
    base_sweep = sweep_speedups(baseline_report)
    fresh_sweep = sweep_speedups(fresh_report)
    print("\nthread-sweep scaling gate:")
    if base_sweep is None or fresh_sweep is None:
        which = "baseline" if base_sweep is None else "fresh"
        print(f"  (skipped: {which} report has no thread_sweep section)")
        return []
    env = baseline_report.get("env", {})
    one_core_baseline = env.get("hw_threads") == 1
    if env.get("hw_threads"):
        print(f"  baseline recorded with hw_threads={env['hw_threads']}")

    failures = []
    shared_kernels = sorted(set(base_sweep) & set(fresh_sweep))
    if not shared_kernels:
        print("  (no kernels shared between the two sweeps)")
        return []
    width = max(max(len(k) for k in shared_kernels), len("kernel"))
    print(f"  {'kernel':<{width}}  {'@threads':>8}  {'base x':>7}  {'fresh x':>7}  verdict")
    for kernel in shared_kernels:
        shared_widths = set(base_sweep[kernel]) & set(fresh_sweep[kernel])
        if not shared_widths:
            print(f"  {kernel:<{width}}  (no shared thread width)")
            continue
        at = max(shared_widths)
        base_x = base_sweep[kernel][at]
        fresh_x = fresh_sweep[kernel][at]
        if base_x < args.min_scaling_base:
            if one_core_baseline:
                verdict = "not gated (1-core baseline)"
            else:
                verdict = f"not gated (baseline never scaled, < {args.min_scaling_base:g}x)"
        elif fresh_x < base_x * (1.0 - args.scaling_threshold):
            verdict = f"SCALING COLLAPSED (> {args.scaling_threshold:.0%} loss)"
            failures.append(kernel)
        else:
            verdict = "ok"
        print(f"  {kernel:<{width}}  {at:>8}  {base_x:>7.2f}  {fresh_x:>7.2f}  {verdict}")
    return failures


# Top-level sections the gate DOES consume; everything else in the merged
# report (incremental_sweep, topology_sweep, serve_qps, shard_forest, ...)
# rides along ungated and must be announced as such, never skipped silently.
GATED_SECTIONS = {"groups", "thread_sweep", "env", "cells", "errors"}


def report_ungated_sections(baseline_report, fresh_report):
    """Names every report section the gate does not check.

    A section that is present but silently ignored reads as "covered" to
    anyone skimming the CI log; each one gets an explicit not-gated line
    with the reason (a 1-core baseline cannot arm a scaling gate, the rest
    simply have no gate defined).
    """
    one_core = baseline_report.get("env", {}).get("hw_threads") == 1
    sections = sorted(
        (set(baseline_report) | set(fresh_report)) - GATED_SECTIONS
    )
    if not sections:
        return
    print("\nungated sections:")
    for section in sections:
        if one_core:
            print(f"  {section}: not gated (1-core baseline)")
        else:
            print(f"  {section}: not gated (no regression gate defined; "
                  "recorded for the artifact trail only)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_hotpath.json (e.g. committed)")
    parser.add_argument("fresh", help="freshly generated BENCH_hotpath.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fail when fresh mean exceeds baseline mean by this fraction (default 0.25)",
    )
    parser.add_argument(
        "--min-ms",
        type=float,
        default=1.0,
        help="kernels below this baseline mean are reported but never fail (default 1.0)",
    )
    parser.add_argument(
        "--scaling-threshold",
        type=float,
        default=0.25,
        help="fail when fresh parallel speedup drops below baseline speedup "
        "by this fraction (default 0.25)",
    )
    parser.add_argument(
        "--min-scaling-base",
        type=float,
        default=1.2,
        help="only gate scaling for kernels whose baseline speedup reached "
        "this factor; below it the baseline never scaled (default 1.2)",
    )
    args = parser.parse_args()

    try:
        baseline_report = load_report(args.baseline)
        fresh_report = load_report(args.fresh)
        baseline = group_means(baseline_report)
        fresh = group_means(fresh_report)
    except (OSError, ValueError, KeyError) as error:
        print(f"bench_compare: cannot read reports: {error}", file=sys.stderr)
        return 2
    if not baseline or not fresh:
        print("bench_compare: no timed groups found in one of the reports", file=sys.stderr)
        return 2

    shared = sorted(set(baseline) & set(fresh))
    only_baseline = sorted(set(baseline) - set(fresh))
    only_fresh = sorted(set(fresh) - set(baseline))

    regressions = []
    width = max((len(g) for g in shared), default=10)
    print(f"{'kernel':<{width}}  {'base ms':>10}  {'fresh ms':>10}  {'delta':>8}  verdict")
    for group in shared:
        base_ms = baseline[group]
        fresh_ms = fresh[group]
        delta = (fresh_ms - base_ms) / base_ms if base_ms > 0 else 0.0
        regressed = delta > args.threshold and base_ms >= args.min_ms
        if regressed:
            verdict = f"REGRESSED (> {args.threshold:.0%})"
            regressions.append(group)
        elif delta > args.threshold:
            verdict = "noisy (below --min-ms, ignored)"
        else:
            verdict = "ok"
        print(f"{group:<{width}}  {base_ms:>10.3f}  {fresh_ms:>10.3f}  {delta:>+7.1%}  {verdict}")
    for group in only_baseline:
        print(f"{group:<{width}}  {baseline[group]:>10.3f}  {'-':>10}  {'':>8}  retired")
    for group in only_fresh:
        print(f"{group:<{width}}  {'-':>10}  {fresh[group]:>10.3f}  {'':>8}  new")

    scaling_failures = check_scaling(baseline_report, fresh_report, args)
    report_ungated_sections(baseline_report, fresh_report)

    if regressions or scaling_failures:
        parts = []
        if regressions:
            parts.append(
                f"{len(regressions)} kernel(s) regressed more than "
                f"{args.threshold:.0%}: {', '.join(regressions)}"
            )
        if scaling_failures:
            parts.append(
                f"{len(scaling_failures)} kernel(s) lost more than "
                f"{args.scaling_threshold:.0%} of their parallel speedup: "
                f"{', '.join(scaling_failures)}"
            )
        print("\nFAIL: " + "; ".join(parts))
        return 1
    print("\nOK: no kernel regressed past the serial or scaling thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
