#!/usr/bin/env python3
"""Per-kernel perf regression gate for the hot-path bench.

Diffs a fresh BENCH_hotpath.json against a baseline (normally the committed
one) and fails when any kernel's mean wall time regressed by more than the
threshold. Groups present on only one side are reported but never fail the
gate (new tiers appear, old ones retire); groups faster than --min-ms in the
baseline are compared but exempt from failing, since sub-millisecond kernels
are dominated by scheduler noise.

Usage:
  scripts/bench_compare.py BASELINE.json FRESH.json [--threshold 0.25] [--min-ms 1.0]

Exit status: 0 when no kernel regressed past the threshold, 1 otherwise
(or 2 on malformed input).
"""

import argparse
import json
import sys


def load_group_means(path):
    """Returns {group name: mean elapsed ms} for every group with timing."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    means = {}
    for group in report.get("groups", []):
        elapsed = group.get("elapsed_ms")
        if elapsed is None:
            continue
        means[group["group"]] = float(elapsed["mean"])
    return means


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_hotpath.json (e.g. committed)")
    parser.add_argument("fresh", help="freshly generated BENCH_hotpath.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fail when fresh mean exceeds baseline mean by this fraction (default 0.25)",
    )
    parser.add_argument(
        "--min-ms",
        type=float,
        default=1.0,
        help="kernels below this baseline mean are reported but never fail (default 1.0)",
    )
    args = parser.parse_args()

    try:
        baseline = load_group_means(args.baseline)
        fresh = load_group_means(args.fresh)
    except (OSError, ValueError, KeyError) as error:
        print(f"bench_compare: cannot read reports: {error}", file=sys.stderr)
        return 2
    if not baseline or not fresh:
        print("bench_compare: no timed groups found in one of the reports", file=sys.stderr)
        return 2

    shared = sorted(set(baseline) & set(fresh))
    only_baseline = sorted(set(baseline) - set(fresh))
    only_fresh = sorted(set(fresh) - set(baseline))

    regressions = []
    width = max((len(g) for g in shared), default=10)
    print(f"{'kernel':<{width}}  {'base ms':>10}  {'fresh ms':>10}  {'delta':>8}  verdict")
    for group in shared:
        base_ms = baseline[group]
        fresh_ms = fresh[group]
        delta = (fresh_ms - base_ms) / base_ms if base_ms > 0 else 0.0
        regressed = delta > args.threshold and base_ms >= args.min_ms
        if regressed:
            verdict = f"REGRESSED (> {args.threshold:.0%})"
            regressions.append(group)
        elif delta > args.threshold:
            verdict = "noisy (below --min-ms, ignored)"
        else:
            verdict = "ok"
        print(f"{group:<{width}}  {base_ms:>10.3f}  {fresh_ms:>10.3f}  {delta:>+7.1%}  {verdict}")
    for group in only_baseline:
        print(f"{group:<{width}}  {baseline[group]:>10.3f}  {'-':>10}  {'':>8}  retired")
    for group in only_fresh:
        print(f"{group:<{width}}  {'-':>10}  {fresh[group]:>10.3f}  {'':>8}  new")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} kernel(s) regressed more than "
            f"{args.threshold:.0%}: {', '.join(regressions)}"
        )
        return 1
    print("\nOK: no kernel regressed past the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
