#!/usr/bin/env python3
"""Merges batch-engine JSON reports into one combined report.

Used by scripts/bench_perf.sh to fold bench_incremental's report into
BENCH_hotpath.json so every timed group rides the same perf-regression gate
(scripts/bench_compare.py) and the same CI artifact. The first report is the
base; every further report contributes its "groups" entries and its extra
top-level sections (e.g. "incremental_sweep"). The "cells"/"errors" totals
are re-summed.

Collisions are errors, never silent: a duplicate group name OR a duplicate
top-level section (two reports both carrying "incremental_sweep", say)
aborts the merge with exit 2. Dropping one of two same-named sections on
the floor would leave the combined artifact claiming data it does not have
— the gate downstream (scripts/bench_compare.py) would then compare against
whichever report happened to come first.

Usage:
  scripts/merge_bench_json.py OUTPUT.json INPUT1.json INPUT2.json [...]

Exit status: 0 on success, 2 on malformed input, colliding group names, or
colliding top-level sections.
"""

import json
import sys


def main():
    if len(sys.argv) < 4:
        print(__doc__, file=sys.stderr)
        return 2
    output_path = sys.argv[1]
    input_paths = sys.argv[2:]

    try:
        reports = []
        for path in input_paths:
            with open(path, "r", encoding="utf-8") as handle:
                reports.append(json.load(handle))
    except (OSError, ValueError) as error:
        print(f"merge_bench_json: cannot read reports: {error}", file=sys.stderr)
        return 2

    merged = reports[0]
    merged.setdefault("groups", [])
    seen = {group["group"] for group in merged["groups"]}
    for report in reports[1:]:
        for group in report.get("groups", []):
            if group["group"] in seen:
                print(
                    f"merge_bench_json: duplicate group '{group['group']}'",
                    file=sys.stderr,
                )
                return 2
            seen.add(group["group"])
            merged["groups"].append(group)
        for key, value in report.items():
            if key in ("groups", "cells", "errors"):
                continue
            if key in merged:
                print(
                    f"merge_bench_json: duplicate top-level section '{key}' — "
                    "two input reports carry it and merging would silently "
                    "drop one; rename the section in one of the benches",
                    file=sys.stderr,
                )
                return 2
            merged[key] = value
    merged["cells"] = sum(r.get("cells", 0) for r in reports)
    merged["errors"] = sum(r.get("errors", 0) for r in reports)

    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, separators=(",", ":"))
        handle.write("\n")
    print(f"merged {len(input_paths)} reports ({len(merged['groups'])} groups) "
          f"into {output_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
