#!/usr/bin/env bash
# Perf trajectory tracking: runs the hot-path kernel bench single-threaded in
# Release and writes BENCH_hotpath.json (aggregate report *including* wall
# time statistics). CI uploads the JSON as a workflow artifact so every
# commit leaves a per-kernel timing trail.
#
# Usage: scripts/bench_perf.sh [build-dir] [output-json]
#   build-dir    default: build
#   output-json  default: BENCH_hotpath.json
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_hotpath.json}"

if [[ ! -x "$BUILD_DIR/bench_hotpath" ]]; then
  echo "bench_hotpath not found in $BUILD_DIR — build the benches first" >&2
  exit 1
fi

"$BUILD_DIR/bench_hotpath" --threads 1 --json "$OUT_JSON"
echo "wrote $OUT_JSON"
