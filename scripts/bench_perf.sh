#!/usr/bin/env bash
# Perf trajectory tracking: runs the hot-path kernel bench across the solver
# thread ladder, the incremental-engine event sweep, the mutable-topology
# churn sweep, the serve-layer publish/query bench, and the sharded forest
# solve in Release, and writes one combined BENCH_hotpath.json (aggregate
# report *including* wall time statistics, the per-kernel thread_sweep
# speedup section, the incremental_sweep and topology_sweep churn/speedup
# sections, the serve_qps snapshot-swap section, and the shard_forest
# per-worker RSS section). The report is stamped with an
# "env" section (hw_threads) so the scaling half of the regression gate in
# scripts/bench_compare.py knows what kind of machine recorded the baseline.
# CI uploads the JSON as a workflow artifact so every commit leaves a
# per-kernel timing trail, and diffs it against the committed baseline.
#
# Usage: scripts/bench_perf.sh [build-dir] [output-json] [thread-sweep]
#   build-dir     default: build
#   output-json   default: BENCH_hotpath.json
#   thread-sweep  default: 1,2,4,8 (first entry is the speedup baseline and
#                 the source of the report's headline timing columns)
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_hotpath.json}"
THREAD_SWEEP="${3:-1,2,4,8}"

for bench in bench_hotpath bench_incremental bench_topology bench_serve bench_shard; do
  if [[ ! -x "$BUILD_DIR/$bench" ]]; then
    echo "$bench not found in $BUILD_DIR — build the benches first" >&2
    exit 1
  fi
done

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

SERVE_THREADS="${THREAD_SWEEP##*,}"

"$BUILD_DIR/bench_hotpath" --thread-sweep "$THREAD_SWEEP" --json "$TMP_DIR/hotpath.json"
"$BUILD_DIR/bench_incremental" --json "$TMP_DIR/incremental.json"
"$BUILD_DIR/bench_topology" --json "$TMP_DIR/topology.json"
"$BUILD_DIR/bench_serve" --threads "$SERVE_THREADS" --json "$TMP_DIR/serve.json"
# bench_shard contributes the shard-oracle comparison group plus the
# "shard_forest" per-worker RSS section (real subprocess workers via wait4).
"$BUILD_DIR/bench_shard" --seeds=2 --work-dir="$TMP_DIR/shard-work" \
  --json "$TMP_DIR/shard.json"
python3 "$(dirname "$0")/merge_bench_json.py" "$OUT_JSON" \
  "$TMP_DIR/hotpath.json" "$TMP_DIR/incremental.json" "$TMP_DIR/topology.json" \
  "$TMP_DIR/serve.json" "$TMP_DIR/shard.json"
python3 - "$OUT_JSON" <<'PY'
import json, os, sys
path = sys.argv[1]
with open(path, "r", encoding="utf-8") as handle:
    report = json.load(handle)
report["env"] = {"hw_threads": os.cpu_count() or 1}
with open(path, "w", encoding="utf-8") as handle:
    json.dump(report, handle, separators=(",", ":"))
    handle.write("\n")
PY
echo "wrote $OUT_JSON"
