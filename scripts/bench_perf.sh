#!/usr/bin/env bash
# Perf trajectory tracking: runs the hot-path kernel bench across the solver
# thread ladder in Release and writes BENCH_hotpath.json (aggregate report
# *including* wall time statistics plus the per-kernel thread_sweep speedup
# section). CI uploads the JSON as a workflow artifact so every commit
# leaves a per-kernel timing trail, and diffs it against the committed
# baseline with scripts/bench_compare.py.
#
# Usage: scripts/bench_perf.sh [build-dir] [output-json] [thread-sweep]
#   build-dir     default: build
#   output-json   default: BENCH_hotpath.json
#   thread-sweep  default: 1,2,4,8 (first entry is the speedup baseline and
#                 the source of the report's headline timing columns)
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_hotpath.json}"
THREAD_SWEEP="${3:-1,2,4,8}"

if [[ ! -x "$BUILD_DIR/bench_hotpath" ]]; then
  echo "bench_hotpath not found in $BUILD_DIR — build the benches first" >&2
  exit 1
fi

"$BUILD_DIR/bench_hotpath" --thread-sweep "$THREAD_SWEEP" --json "$OUT_JSON"
echo "wrote $OUT_JSON"
