#!/usr/bin/env bash
# Batch-engine determinism smoke: runs every BatchRunner-backed bench and
# example with a tiny sweep at --threads 1 and --threads 4 and fails when the
# deterministic JSON reports are not byte-identical. Also fails when any
# binary exits non-zero (their exit codes gate on BatchReport::AllOk()).
#
# Usage: scripts/bench_smoke.sh [build-dir]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT

run_pair() {
  local name="$1"
  shift
  "$BUILD_DIR/$name" "$@" --threads=1 --json="$OUT_DIR/$name-t1.json" > /dev/null
  "$BUILD_DIR/$name" "$@" --threads=4 --json="$OUT_DIR/$name-t4.json" > /dev/null
  if ! diff "$OUT_DIR/$name-t1.json" "$OUT_DIR/$name-t4.json"; then
    echo "FAIL: $name JSON differs between --threads 1 and --threads 4"
    exit 1
  fi
  echo "OK: $name"
}

run_pair bench_scaling --seeds=2 --min-clients=256 --max-clients=1024
run_pair bench_ablations --seeds=3
run_pair bench_fig3_tightness --max-m=4
run_pair bench_fig4_tightness --max-k=8
run_pair bench_general_multiple --seeds=2
run_pair bench_i2_hardness --seeds=2
run_pair bench_i4_inapprox --seeds=2
run_pair bench_i6_hardness --seeds=2
run_pair bench_multbin_optimality --seeds=2
run_pair bench_policy_gap --seeds=2
run_pair bench_push_conjecture --seeds=3
run_pair cdn_vod --seeds=2 --clients=40
run_pair isp_qos --seeds=2 --clients=40
run_pair surge_replay --seeds=2 --clients=32 --ticks=60

# bench_incremental's --json embeds wall time (like bench_hotpath), so the
# thread-invariance diff runs on its deterministic --det-json report: the
# incremental engine must plan byte-identically at any solver-pool width.
"$BUILD_DIR/bench_incremental" --clients=256 --ticks=12 --seeds=2 --threads=1 \
  --fractions=0.01,0.05 --det-json="$OUT_DIR/bench_incremental-t1.json" > /dev/null
"$BUILD_DIR/bench_incremental" --clients=256 --ticks=12 --seeds=2 --threads=4 \
  --fractions=0.01,0.05 --det-json="$OUT_DIR/bench_incremental-t4.json" > /dev/null
if ! diff "$OUT_DIR/bench_incremental-t1.json" "$OUT_DIR/bench_incremental-t4.json"; then
  echo "FAIL: bench_incremental det-json differs between --threads 1 and --threads 4"
  exit 1
fi
echo "OK: bench_incremental"

# bench_topology streams mixed attach/detach/migrate/link traces through the
# delta-overlay; its deterministic report covers the costs, the validation
# against the COMPACTED world, and the Compact() output columns — all of
# which must be byte-identical at any solver-pool width. The speedup gate is
# disabled here (tiny workload, smoke only).
"$BUILD_DIR/bench_topology" --clients=256 --ticks=10 --seeds=2 --threads=1 \
  --churn=0.01,0.05 --min-speedup=0 --det-json="$OUT_DIR/bench_topology-t1.json" > /dev/null
"$BUILD_DIR/bench_topology" --clients=256 --ticks=10 --seeds=2 --threads=4 \
  --churn=0.01,0.05 --min-speedup=0 --det-json="$OUT_DIR/bench_topology-t4.json" > /dev/null
if ! diff "$OUT_DIR/bench_topology-t1.json" "$OUT_DIR/bench_topology-t4.json"; then
  echo "FAIL: bench_topology det-json differs between --threads 1 and --threads 4"
  exit 1
fi
echo "OK: bench_topology"

# bench_serve likewise carries wall time (and QPS) only in --json; its
# deterministic --det-json covers the publish/query groups, which must hash
# identically no matter how many reader threads hammer the snapshot store.
"$BUILD_DIR/bench_serve" --clients=512 --ticks=12 --repeats=2 --qps-ticks=8 \
  --qps-min-ms=50 --threads=1 --det-json="$OUT_DIR/bench_serve-t1.json" > /dev/null
"$BUILD_DIR/bench_serve" --clients=512 --ticks=12 --repeats=2 --qps-ticks=8 \
  --qps-min-ms=50 --threads=4 --det-json="$OUT_DIR/bench_serve-t4.json" > /dev/null
if ! diff "$OUT_DIR/bench_serve-t1.json" "$OUT_DIR/bench_serve-t4.json"; then
  echo "FAIL: bench_serve det-json differs between --threads 1 and --threads 4"
  exit 1
fi
echo "OK: bench_serve"

# The TCP front-end demo checks its own wire answers against in-process ones.
"$BUILD_DIR/rpt_serve" --selftest --clients=128 --batches=4 > /dev/null
echo "OK: rpt_serve --selftest"

# Crash-recovery smoke: an uninterrupted durable run and a run that is
# KILLED mid-batch (real _Exit(137) via the armed failpoint) and then
# recovered from its WAL + checkpoints must write byte-identical final-state
# fingerprints ({version, hash, replicas, seq}).
"$BUILD_DIR/rpt_serve" --clients=128 --batches=8 --wal-dir="$OUT_DIR/svc-clean" \
  --checkpoint-every=3 --state-json="$OUT_DIR/serve-state-clean.json" > /dev/null
if "$BUILD_DIR/rpt_serve" --clients=128 --batches=8 --wal-dir="$OUT_DIR/svc-crash" \
  --checkpoint-every=3 --crash-at=5 > /dev/null 2>&1; then
  echo "FAIL: rpt_serve --crash-at=5 exited 0 instead of dying"
  exit 1
fi
"$BUILD_DIR/rpt_serve" --clients=128 --batches=8 --wal-dir="$OUT_DIR/svc-crash" \
  --checkpoint-every=3 --recover --state-json="$OUT_DIR/serve-state-recovered.json" > /dev/null
if ! diff "$OUT_DIR/serve-state-clean.json" "$OUT_DIR/serve-state-recovered.json"; then
  echo "FAIL: recovered rpt_serve state differs from the uninterrupted run"
  exit 1
fi
echo "OK: rpt_serve crash recovery"

# Kill-the-primary failover smoke: a replicating primary is KILLED mid-trace
# (real _Exit(137) at batch 5); its follower promotes after the heartbeat
# window and resumes the remaining batches itself. The promoted follower's
# final-state fingerprint must match an uninterrupted run's byte-for-byte —
# except "seq", where the durable epoch record of the promotion adds one.
"$BUILD_DIR/rpt_serve" --clients=128 --batches=8 --wal-dir="$OUT_DIR/repl-primary" \
  --repl-listen --repl-wait-followers=1 --ports-file="$OUT_DIR/repl-ports" \
  --crash-at=5 > /dev/null 2>&1 &
PRIMARY_PID=$!
for _ in $(seq 1 200); do
  [ -s "$OUT_DIR/repl-ports" ] && break
  sleep 0.05
done
REPL_PORT="$(sed -n 's/^repl=//p' "$OUT_DIR/repl-ports")"
if [ -z "$REPL_PORT" ] || [ "$REPL_PORT" = "0" ]; then
  echo "FAIL: replicating primary never published its replication port"
  exit 1
fi
"$BUILD_DIR/rpt_serve" --clients=128 --batches=8 --wal-dir="$OUT_DIR/repl-follower" \
  --follow="$REPL_PORT" --promote-after-ms=300 \
  --state-json="$OUT_DIR/serve-state-promoted.json" > /dev/null
if wait "$PRIMARY_PID"; then
  echo "FAIL: replicating primary with --crash-at=5 exited 0 instead of dying"
  exit 1
fi
sed 's/"seq":[0-9]*//' "$OUT_DIR/serve-state-clean.json" > "$OUT_DIR/clean-noseq.json"
sed 's/"seq":[0-9]*//' "$OUT_DIR/serve-state-promoted.json" > "$OUT_DIR/promoted-noseq.json"
if ! diff "$OUT_DIR/clean-noseq.json" "$OUT_DIR/promoted-noseq.json"; then
  echo "FAIL: promoted follower state differs from the uninterrupted run"
  exit 1
fi
echo "OK: rpt_serve kill-the-primary failover"

# Sharded-solve smoke: the deterministic fingerprint (feasible/cost/hash)
# must be byte-identical between --shards=1 and --shards=4 — the sharded
# solve is exact, not approximate. Small instance; in-process dispatch.
"$BUILD_DIR/rpt_shard" --internal=300 --clients=900 --shards=1 \
  --det-json="$OUT_DIR/rpt_shard-k1.json" > /dev/null
"$BUILD_DIR/rpt_shard" --internal=300 --clients=900 --shards=4 \
  --det-json="$OUT_DIR/rpt_shard-k4.json" > /dev/null
if ! diff "$OUT_DIR/rpt_shard-k1.json" "$OUT_DIR/rpt_shard-k4.json"; then
  echo "FAIL: rpt_shard det-json differs between --shards 1 and --shards 4"
  exit 1
fi
echo "OK: rpt_shard shards 1 vs 4"

# Worker-crash smoke: a REAL worker process is killed mid-solve (exit 137
# via the armed failpoint); the coordinator must report the death, re-spawn
# the shard, and still land on the byte-identical unsharded answer
# (--verify exits 1 on any cost/hash mismatch).
"$BUILD_DIR/rpt_shard" --internal=300 --clients=900 --shards=3 \
  --mode=subprocess --work-dir="$OUT_DIR/shard-crash" \
  --crash-at-cut=1 --max-attempts=2 --verify > /dev/null
echo "OK: rpt_shard worker crash + re-dispatch"

# instance_explorer spells its report flag --sweep-json.
"$BUILD_DIR/instance_explorer" --algo=single-gen --clients=40 --seeds=4 --threads=1 \
  --sweep-json="$OUT_DIR/explorer-t1.json" > /dev/null
"$BUILD_DIR/instance_explorer" --algo=single-gen --clients=40 --seeds=4 --threads=4 \
  --sweep-json="$OUT_DIR/explorer-t4.json" > /dev/null
if ! diff "$OUT_DIR/explorer-t1.json" "$OUT_DIR/explorer-t4.json"; then
  echo "FAIL: instance_explorer JSON differs between --threads 1 and --threads 4"
  exit 1
fi
echo "OK: instance_explorer"

echo "all batch reports byte-identical across thread counts"
