// Tests for Algorithm 2 (single-nod), the 2-approximation for Single-NoD.
// Includes the paper's Fig. 4 worst-case trace and ratio certification
// against the exhaustive optimum (Theorem 4).
#include <gtest/gtest.h>

#include "exact/exact.hpp"
#include "gen/paper_instances.hpp"
#include "gen/random_tree.hpp"
#include "model/validate.hpp"
#include "single/single_nod.hpp"

namespace rpt::single {
namespace {

TEST(SingleNod, RequiresNoDistanceConstraint) {
  TreeBuilder b;
  const NodeId root = b.AddRoot();
  b.AddClient(root, 1, 3);
  const Instance constrained(b.Build(), 5, /*dmax=*/4);
  EXPECT_THROW((void)SolveSingleNod(constrained), InvalidArgument);
}

TEST(SingleNod, RootServesEverythingWhenItFits) {
  TreeBuilder b;
  const NodeId root = b.AddRoot();
  const NodeId n1 = b.AddInternal(root, 1);
  b.AddClient(n1, 1, 3);
  b.AddClient(n1, 1, 4);
  b.AddClient(root, 1, 2);
  const Instance inst(b.Build(), 10, kNoDistanceLimit);
  const auto result = SolveSingleNod(inst);
  EXPECT_TRUE(IsFeasible(inst, Policy::kSingle, result.solution));
  EXPECT_EQ(result.solution.ReplicaCount(), 1u);
  EXPECT_TRUE(result.stats.root_server);
}

TEST(SingleNod, NoReplicaForZeroRequests) {
  TreeBuilder b;
  const NodeId root = b.AddRoot();
  b.AddClient(root, 1, 0);
  const Instance inst(b.Build(), 5, kNoDistanceLimit);
  const auto result = SolveSingleNod(inst);
  EXPECT_EQ(result.solution.ReplicaCount(), 0u);  // documented deviation from the listing
  EXPECT_TRUE(IsFeasible(inst, Policy::kSingle, result.solution));
}

TEST(SingleNod, OverflowPicksSmallestBundlesForTheNode) {
  // n1 has clients {2, 3, 6} with W = 7: the node absorbs 2+3, the first
  // overflow bundle (6) gets its own server; nothing is left over.
  TreeBuilder b;
  const NodeId root = b.AddRoot();
  const NodeId n1 = b.AddInternal(root, 1);
  const NodeId c2 = b.AddClient(n1, 1, 2);
  (void)c2;
  b.AddClient(n1, 1, 3);
  const NodeId c6 = b.AddClient(n1, 1, 6);
  const Instance inst(b.Build(), 7, kNoDistanceLimit);
  const auto result = SolveSingleNod(inst);
  EXPECT_TRUE(IsFeasible(inst, Policy::kSingle, result.solution));
  EXPECT_EQ(result.solution.ReplicaCount(), 2u);
  EXPECT_EQ(result.stats.overflow_servers, 1u);
  EXPECT_EQ(result.stats.extra_servers, 1u);
  // The companion server sits at the overflowing bundle's root (client 6).
  EXPECT_NE(std::find(result.solution.replicas.begin(), result.solution.replicas.end(), c6),
            result.solution.replicas.end());
}

TEST(SingleNod, LeftoverBundlesReparentUpwards) {
  // Children of n1 sum to 16 with W = 6: n1 takes the small bundles, one
  // companion server is placed, and the rest re-parents to the root's list.
  TreeBuilder b;
  const NodeId root = b.AddRoot();
  const NodeId n1 = b.AddInternal(root, 1);
  b.AddClient(n1, 1, 4);
  b.AddClient(n1, 1, 4);
  b.AddClient(n1, 1, 4);
  b.AddClient(n1, 1, 4);
  const Instance inst(b.Build(), 6, kNoDistanceLimit);
  const auto result = SolveSingleNod(inst);
  EXPECT_TRUE(IsFeasible(inst, Policy::kSingle, result.solution));
  // n1 takes one bundle (4), the companion takes the next; the remaining two
  // bundles re-parent to the root, which repeats the pattern. Four replicas,
  // which is also optimal here (no two bundles share a W=6 server).
  EXPECT_EQ(result.solution.ReplicaCount(), 4u);
  EXPECT_EQ(result.stats.overflow_servers, 2u);
  EXPECT_EQ(result.stats.extra_servers, 2u);
}

TEST(SingleNod, RejectsOversizedClients) {
  TreeBuilder b;
  const NodeId root = b.AddRoot();
  b.AddClient(root, 1, 9);
  const Instance inst(b.Build(), 5, kNoDistanceLimit);
  EXPECT_THROW((void)SolveSingleNod(inst), InvalidArgument);
}

// The paper's exact worst-case claim (§3.4): 2K replicas vs optimal K+1.
TEST(SingleNod, PaperWorstCaseTraceIsExact) {
  for (const std::uint64_t k : {2u, 3u, 5u, 8u, 13u}) {
    const gen::TightnessFig4 fig = gen::BuildTightnessFig4(k);
    const auto result = SolveSingleNod(fig.instance);
    EXPECT_TRUE(IsFeasible(fig.instance, Policy::kSingle, result.solution));
    EXPECT_EQ(result.solution.ReplicaCount(), fig.single_nod_expected) << "k=" << k;
    EXPECT_EQ(result.stats.overflow_servers, k);
    EXPECT_EQ(result.stats.extra_servers, k);
  }
}

// Property: always feasible, never worse than client-local.
struct NodPropertyCase {
  std::uint32_t internal_nodes;
  std::uint32_t clients;
  std::uint32_t max_children;
  Requests capacity;
};

class SingleNodProperty : public ::testing::TestWithParam<NodPropertyCase> {};

TEST_P(SingleNodProperty, AlwaysFeasible) {
  const auto& param = GetParam();
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    gen::RandomTreeConfig cfg;
    cfg.internal_nodes = param.internal_nodes;
    cfg.clients = param.clients;
    cfg.max_children = param.max_children;
    cfg.min_requests = 1;
    cfg.max_requests = param.capacity;
    const Instance inst(gen::GenerateRandomTree(cfg, 7000 + seed), param.capacity,
                        kNoDistanceLimit);
    const auto result = SolveSingleNod(inst);
    const auto report = ValidateSolution(inst, Policy::kSingle, result.solution);
    ASSERT_TRUE(report.ok) << "seed=" << seed << ": " << report.Describe();
    EXPECT_LE(result.solution.ReplicaCount(), inst.GetTree().ClientCount());
    EXPECT_EQ(result.stats.overflow_servers, result.stats.extra_servers);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SingleNodProperty,
                         ::testing::Values(NodPropertyCase{4, 9, 3, 12},
                                           NodPropertyCase{8, 9, 2, 20},
                                           NodPropertyCase{8, 20, 5, 7},
                                           NodPropertyCase{1, 6, 6, 9},
                                           NodPropertyCase{12, 24, 4, 15}));

// Theorem 4 certification: ratio <= 2 against the exhaustive optimum.
class SingleNodRatio : public ::testing::TestWithParam<Requests> {};

TEST_P(SingleNodRatio, WithinFactorTwoOnSmallInstances) {
  const Requests capacity = GetParam();
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    gen::RandomTreeConfig cfg;
    cfg.internal_nodes = 3;
    cfg.clients = 7;
    cfg.max_children = 3;
    cfg.min_requests = 1;
    cfg.max_requests = capacity;
    const Instance inst(gen::GenerateRandomTree(cfg, 2000 + seed), capacity, kNoDistanceLimit);
    const auto algo = SolveSingleNod(inst);
    ASSERT_TRUE(IsFeasible(inst, Policy::kSingle, algo.solution));
    const auto opt = exact::SolveExactSingle(inst);
    ASSERT_TRUE(opt.feasible);
    EXPECT_LE(algo.solution.ReplicaCount(), 2 * opt.solution.ReplicaCount()) << "seed=" << seed;
    EXPECT_GE(algo.solution.ReplicaCount(), opt.solution.ReplicaCount());
  }
}

INSTANTIATE_TEST_SUITE_P(CapacitySweep, SingleNodRatio,
                         ::testing::Values(Requests{4}, Requests{8}, Requests{16}));

}  // namespace
}  // namespace rpt::single
