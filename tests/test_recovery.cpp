// Crash-recovery tests for the durable ServeHarness (WAL + checkpoints).
//
// The oracle suite is the heart: sim::RunCrashRestart kills a durable
// harness at a chosen failpoint mid-trace, recovers from disk, resumes, and
// the final snapshot must be (version, CanonicalHash)-identical to an
// uninterrupted in-memory run. That equality is checked across crash
// windows (before the WAL write, mid-record, after logging, after applying),
// crash positions, checkpoint cadences, and traces with topology churn.
//
// The rest pins the degraded-mode contract: a rejected batch is atomic
// (never partially published, never poisons later batches), a durability
// failure marks responses stale until the next good publish, and recovery
// refuses to guess when asked to start fresh over existing state.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gen/random_tree.hpp"
#include "incremental/incremental_solver.hpp"
#include "incremental/trace_gen.hpp"
#include "serve/event_wal.hpp"
#include "serve/serve_harness.hpp"
#include "sim/crash_restart.hpp"
#include "support/failpoint.hpp"

namespace rpt::serve {
namespace {

namespace fs = std::filesystem;
using incremental::MakeRandomTrace;
using incremental::TraceConfig;
using incremental::UpdateEvent;
using incremental::UpdateTrace;

struct TempDir {
  std::string path;
  TempDir() {
    char buf[] = "/tmp/rpt_rec_XXXXXX";
    path = ::mkdtemp(buf);
  }
  ~TempDir() { fs::remove_all(path); }
};

Instance MakeInstance(std::uint64_t seed) {
  gen::RandomTreeConfig cfg;
  cfg.internal_nodes = 30;
  cfg.clients = 80;
  cfg.max_children = 4;
  cfg.min_requests = 0;
  cfg.max_requests = 9;
  return Instance(gen::GenerateRandomTree(cfg, seed), /*capacity=*/18);
}

/// A churny trace: demand deltas plus joins, leaves, failures, and link
/// re-weights — recovery must reconstruct topology, not just demand.
UpdateTrace ChurnTrace(const Instance& instance, std::uint64_t seed,
                       std::uint32_t ticks) {
  TraceConfig config;
  config.ticks = ticks;
  config.touches_per_tick = 4;
  config.join_rate = 0.2;
  config.leave_rate = 0.1;
  config.failure_rate = 0.05;
  config.link_rate = 0.1;
  return MakeRandomTrace(instance.GetTree(), config, seed);
}

DurabilityOptions Durable(const std::string& dir, std::uint64_t every = 0) {
  DurabilityOptions options;
  options.dir = dir;
  options.checkpoint_every = every;
  return options;
}

std::string CheckpointPath(const std::string& dir, std::uint64_t seq) {
  char name[40];
  std::snprintf(name, sizeof(name), "ckpt-%020llu.rpt",
                static_cast<unsigned long long>(seq));
  return (fs::path(dir) / name).string();
}

/// Damages one byte so the file's CRC no longer matches (the checkpoint
/// loader must skip it and fall back).
void FlipByte(const std::string& path, std::size_t offset) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good()) << path;
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x01);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
  ASSERT_TRUE(file.good()) << path;
}

std::uint64_t HashOf(const ServeHarness& harness) {
  return harness.Pin()->CanonicalHash();
}

std::uint64_t VersionOf(const ServeHarness& harness) {
  return harness.Pin()->Version();
}

// --- the randomized crash-recovery oracle -------------------------------

struct CrashCase {
  const char* point;
  fail::Action action;
  std::uint64_t param;
};

TEST(CrashRecovery, OracleAcrossCrashWindowsPositionsAndCheckpoints) {
  const CrashCase kCases[] = {
      {"wal.append", fail::Action::kThrow, 0},        // before any bytes
      {"wal.append.short", fail::Action::kShortOp, 7},  // torn record on disk
      {"serve.post_wal", fail::Action::kThrow, 0},    // logged, not applied
      {"serve.post_apply", fail::Action::kThrow, 0},  // applied, not published
  };
  for (const std::uint64_t seed : {1u, 7u}) {
    const Instance instance = MakeInstance(seed);
    const UpdateTrace trace = ChurnTrace(instance, seed * 101, /*ticks=*/10);
    ASSERT_GE(trace.size(), 8u);
    for (const CrashCase& c : kCases) {
      for (const std::uint64_t every : {0u, 3u}) {
        const std::uint64_t positions[] = {1, 5, trace.size()};
        for (const std::uint64_t at : positions) {
          const TempDir dir;
          sim::CrashRestartConfig config;
          config.dir = dir.path;
          config.crash_at_batch = at;
          config.crash_point = c.point;
          config.crash_action = c.action;
          config.crash_param = c.param;
          config.checkpoint_every = every;
          const sim::CrashRestartResult result =
              sim::RunCrashRestart(instance, trace, config);
          EXPECT_TRUE(result.match)
              << "seed=" << seed << " point=" << c.point << " at=" << at
              << " ckpt_every=" << every << " recovered version "
              << result.final_version << " hash " << result.final_hash
              << " vs oracle version " << result.oracle_version << " hash "
              << result.oracle_hash;
        }
      }
    }
  }
}

TEST(CrashRecovery, CleanRestartReproducesFinalState) {
  const Instance instance = MakeInstance(3);
  const UpdateTrace trace = ChurnTrace(instance, 42, /*ticks=*/8);
  const TempDir dir;
  sim::CrashRestartConfig config;
  config.dir = dir.path;
  config.crash_at_batch = 0;  // never crash: full run, then recover anyway
  const sim::CrashRestartResult result = sim::RunCrashRestart(instance, trace, config);
  EXPECT_TRUE(result.match);
  EXPECT_EQ(result.durable_seq_at_recovery, trace.size());
  EXPECT_EQ(result.recovered_batches, trace.size());  // no checkpoint: full replay
}

TEST(CrashRecovery, CheckpointBoundsReplayAndTrimsWal) {
  const Instance instance = MakeInstance(5);
  const UpdateTrace trace = ChurnTrace(instance, 9, /*ticks=*/6);
  ASSERT_GE(trace.size(), 6u);
  const TempDir dir;
  {
    ServeHarness harness(instance, {}, Durable(dir.path, /*every=*/2));
    for (std::size_t i = 0; i < 6; ++i) {
      try {
        harness.ApplyAndPublish(trace[i]);
      } catch (const InvalidArgument&) {
      }
    }
  }
  // 6 attempted batches, cadence 2 -> last checkpoint at seq 6, WAL trimmed:
  // recovery replays nothing.
  auto recovered = ServeHarness::RecoverFrom(instance, {}, Durable(dir.path, 2));
  EXPECT_EQ(recovered->LastDurableSeq(), 6u);
  EXPECT_EQ(recovered->RecoveredBatches(), 0u);

  // And the recovered state equals a from-scratch in-memory run.
  ServeHarness oracle(instance);
  for (std::size_t i = 0; i < 6; ++i) {
    try {
      oracle.ApplyAndPublish(trace[i]);
    } catch (const InvalidArgument&) {
    }
  }
  EXPECT_EQ(HashOf(*recovered), HashOf(oracle));
  EXPECT_EQ(VersionOf(*recovered), VersionOf(oracle));
}

TEST(CrashRecovery, RecoverFromEmptyDirEqualsFreshHarness) {
  const Instance instance = MakeInstance(4);
  const TempDir dir;
  auto recovered = ServeHarness::RecoverFrom(instance, {}, Durable(dir.path));
  ServeHarness fresh(instance);
  EXPECT_EQ(VersionOf(*recovered), 1u);
  EXPECT_EQ(HashOf(*recovered), HashOf(fresh));
  EXPECT_EQ(recovered->LastDurableSeq(), 0u);

  // The recovered harness is live: it accepts and logs new batches.
  recovered->ApplyAndPublish(std::vector<UpdateEvent>{UpdateEvent::DemandDelta(31, 2)});
  EXPECT_EQ(recovered->LastDurableSeq(), 1u);
}

TEST(CrashRecovery, DurableCtorRefusesExistingState) {
  const Instance instance = MakeInstance(4);
  const TempDir dir;
  {
    ServeHarness harness(instance, {}, Durable(dir.path));
    harness.ApplyAndPublish(std::vector<UpdateEvent>{UpdateEvent::DemandDelta(31, 2)});
  }
  EXPECT_THROW(ServeHarness(instance, {}, Durable(dir.path)), InvalidArgument);
  // RecoverFrom is the correct verb over existing state.
  auto recovered = ServeHarness::RecoverFrom(instance, {}, Durable(dir.path));
  EXPECT_EQ(recovered->LastDurableSeq(), 1u);
}

// --- batch atomicity (satellite b) --------------------------------------

TEST(CrashRecovery, RejectedBatchIsInvisibleEvenThroughRecovery) {
  const Instance instance = MakeInstance(6);
  const std::vector<UpdateEvent> good1{UpdateEvent::DemandDelta(31, 3)};
  // Driving a client's demand below zero fails validation inside Apply.
  const std::vector<UpdateEvent> bad{UpdateEvent::DemandDelta(31, -1'000'000)};
  const std::vector<UpdateEvent> good2{UpdateEvent::DemandDelta(32, 5)};

  // In-memory reference: the bad batch was never sent at all.
  ServeHarness reference(instance);
  reference.ApplyAndPublish(good1);
  reference.ApplyAndPublish(good2);

  // Durable harness: bad batch thrown, Stale() untouched (a rejected batch
  // is the caller's bug, not service degradation).
  const TempDir dir;
  std::uint64_t live_hash = 0;
  {
    ServeHarness harness(instance, {}, Durable(dir.path));
    harness.ApplyAndPublish(good1);
    EXPECT_THROW(harness.ApplyAndPublish(bad), InvalidArgument);
    EXPECT_FALSE(harness.Stale());
    harness.ApplyAndPublish(good2);
    live_hash = HashOf(harness);
    EXPECT_EQ(live_hash, HashOf(reference));
    EXPECT_EQ(VersionOf(harness), VersionOf(reference));
    // The bad batch DID consume a durable seq (logged before apply)...
    EXPECT_EQ(harness.LastDurableSeq(), 3u);
  }

  // ...and replay re-rejects it identically: recovery lands on the same
  // snapshot, version included.
  auto recovered = ServeHarness::RecoverFrom(instance, {}, Durable(dir.path));
  EXPECT_EQ(recovered->RecoveredBatches(), 3u);
  EXPECT_EQ(HashOf(*recovered), live_hash);
  EXPECT_EQ(VersionOf(*recovered), VersionOf(reference));
}

// --- degraded mode / stale bit ------------------------------------------

TEST(CrashRecovery, DurabilityFailureMarksStaleUntilNextGoodPublish) {
  const Instance instance = MakeInstance(8);
  const TempDir dir;
  ServeHarness harness(instance, {}, Durable(dir.path));
  harness.ApplyAndPublish(std::vector<UpdateEvent>{UpdateEvent::DemandDelta(31, 2)});
  const std::uint64_t version_before = VersionOf(harness);

  // fsync failure: the append is rolled back, the harness serves its last
  // good snapshot and flags it stale.
  fail::Arm("wal.sync", fail::Action::kError);
  EXPECT_THROW(
      harness.ApplyAndPublish(std::vector<UpdateEvent>{UpdateEvent::DemandDelta(32, 4)}),
      InternalError);
  fail::DisarmAll();
  EXPECT_TRUE(harness.Stale());
  EXPECT_EQ(VersionOf(harness), version_before);

  QueryRequest request;
  request.kind = QueryKind::kWhichReplica;
  request.node = 31;
  EXPECT_TRUE(harness.Query(request).stale);

  // Next good publish clears the flag...
  harness.ApplyAndPublish(std::vector<UpdateEvent>{UpdateEvent::DemandDelta(33, 1)});
  EXPECT_FALSE(harness.Stale());
  EXPECT_FALSE(harness.Query(request).stale);

  // ...and the final state matches an oracle that never saw the failed
  // batch (it was rolled back, not deferred).
  ServeHarness oracle(instance);
  oracle.ApplyAndPublish(std::vector<UpdateEvent>{UpdateEvent::DemandDelta(31, 2)});
  oracle.ApplyAndPublish(std::vector<UpdateEvent>{UpdateEvent::DemandDelta(33, 1)});
  EXPECT_EQ(HashOf(harness), HashOf(oracle));
}

TEST(CrashRecovery, CheckpointFailureLeavesServiceCurrent) {
  const Instance instance = MakeInstance(8);
  const TempDir dir;
  ServeHarness harness(instance, {}, Durable(dir.path));
  harness.ApplyAndPublish(std::vector<UpdateEvent>{UpdateEvent::DemandDelta(31, 2)});

  fail::Arm("ckpt.write", fail::Action::kError);
  EXPECT_THROW(harness.Checkpoint(), InternalError);
  fail::DisarmAll();
  // The published snapshot was never at risk: not stale, still queryable,
  // and a later checkpoint succeeds.
  EXPECT_FALSE(harness.Stale());
  harness.Checkpoint();
  auto recovered = ServeHarness::RecoverFrom(instance, {}, Durable(dir.path));
  EXPECT_EQ(HashOf(*recovered), HashOf(harness));
}

TEST(CrashRecovery, FailedTrimKeepsWalEngaged) {
  const Instance instance = MakeInstance(13);
  const TempDir dir;
  std::uint64_t live_hash = 0;
  std::uint64_t live_version = 0;
  {
    ServeHarness harness(instance, {}, Durable(dir.path));
    harness.ApplyAndPublish(std::vector<UpdateEvent>{UpdateEvent::DemandDelta(31, 2)});

    // The checkpoint file lands, but the WAL trim after it fails. The
    // untrimmed log is still valid — the harness must re-engage it, not
    // leave the WAL handle disengaged and silently stop logging.
    fail::Arm("wal.trim", fail::Action::kError);
    EXPECT_THROW(harness.Checkpoint(), InternalError);
    fail::DisarmAll();
    EXPECT_FALSE(harness.Stale());

    harness.ApplyAndPublish(std::vector<UpdateEvent>{UpdateEvent::DemandDelta(32, 4)});
    EXPECT_EQ(harness.LastDurableSeq(), 2u);  // the post-failure batch WAS logged
    live_hash = HashOf(harness);
    live_version = VersionOf(harness);
  }
  // And nothing was lost: recovery reproduces the post-failure state.
  auto recovered = ServeHarness::RecoverFrom(instance, {}, Durable(dir.path));
  EXPECT_EQ(HashOf(*recovered), live_hash);
  EXPECT_EQ(VersionOf(*recovered), live_version);
}

TEST(CrashRecovery, PeriodicCheckpointFailureDoesNotFailTheApply) {
  const Instance instance = MakeInstance(14);
  const TempDir dir;
  ServeHarness harness(instance, {}, Durable(dir.path, /*every=*/1));
  const std::uint64_t version_before = VersionOf(harness);

  // The batch commits (logged, applied, published) before the periodic
  // checkpoint runs; a checkpoint error escaping ApplyAndPublish would
  // invite a retry that double-logs and double-applies the batch.
  fail::Arm("ckpt.write", fail::Action::kError);
  EXPECT_NO_THROW(harness.ApplyAndPublish(
      std::vector<UpdateEvent>{UpdateEvent::DemandDelta(31, 2)}));
  fail::DisarmAll();
  EXPECT_EQ(VersionOf(harness), version_before + 1);
  EXPECT_EQ(harness.LastDurableSeq(), 1u);
  EXPECT_FALSE(harness.Stale());
  EXPECT_EQ(harness.CheckpointFailures(), 1u);
  EXPECT_FALSE(harness.LastCheckpointError().empty());

  // The next apply retries the checkpoint, succeeds, and clears the error.
  harness.ApplyAndPublish(std::vector<UpdateEvent>{UpdateEvent::DemandDelta(32, 1)});
  EXPECT_TRUE(harness.LastCheckpointError().empty());
  EXPECT_EQ(harness.CheckpointFailures(), 1u);

  // Direct Checkpoint() calls still throw: containment applies only where
  // the apply already succeeded and the outcome must stay unambiguous.
  fail::Arm("ckpt.write", fail::Action::kError);
  EXPECT_THROW(harness.Checkpoint(), InternalError);
  fail::DisarmAll();
}

TEST(CrashRecovery, RecoveryRefusesGapWhenDamagedCheckpointOutrunsTrimmedWal) {
  const Instance instance = MakeInstance(11);
  const TempDir dir;
  {
    ServeHarness harness(instance, {}, Durable(dir.path, /*every=*/2));
    for (int i = 0; i < 5; ++i) {
      harness.ApplyAndPublish(
          std::vector<UpdateEvent>{UpdateEvent::DemandDelta(31 + i, 1)});
    }
  }
  // Checkpoints at seq 2 and 4 survive; the trimmed WAL holds only seq 5.
  // Damage the newest checkpoint: falling back to seq 2 would silently
  // lose batches 3-4, so recovery must refuse (tail is not contiguous
  // with the fallback checkpoint).
  FlipByte(CheckpointPath(dir.path, 4), 20);
  EXPECT_THROW(ServeHarness::RecoverFrom(instance, {}, Durable(dir.path)),
               InternalError);
}

TEST(CrashRecovery, RecoveryRefusesEmptyTailGapButAllowsFallbackOverFullWal) {
  const Instance instance = MakeInstance(12);
  const auto apply4 = [](ServeHarness& harness) {
    for (int i = 0; i < 4; ++i) {
      harness.ApplyAndPublish(
          std::vector<UpdateEvent>{UpdateEvent::DemandDelta(31 + i, 1)});
    }
  };

  {
    // Trimmed WAL, empty tail: checkpoints at seq 2 and 4, nothing in the
    // log. A damaged newest checkpoint leaves batches 3-4 unreachable even
    // though every surviving file parses cleanly — the filename-advertised
    // seq is the only witness, and recovery must refuse.
    const TempDir dir;
    {
      ServeHarness harness(instance, {}, Durable(dir.path, /*every=*/2));
      apply4(harness);
    }
    FlipByte(CheckpointPath(dir.path, 4), 20);
    EXPECT_THROW(ServeHarness::RecoverFrom(instance, {}, Durable(dir.path)),
                 InternalError);
  }

  {
    // Same damage with trim_on_checkpoint off: the full WAL still covers
    // batches 3-4, so falling back to the seq-2 checkpoint is safe and
    // recovery matches the oracle.
    const TempDir dir;
    DurabilityOptions options = Durable(dir.path, /*every=*/2);
    options.trim_on_checkpoint = false;
    {
      ServeHarness harness(instance, {}, options);
      apply4(harness);
    }
    FlipByte(CheckpointPath(dir.path, 4), 20);
    auto recovered = ServeHarness::RecoverFrom(instance, {}, options);

    ServeHarness oracle(instance);
    apply4(oracle);
    EXPECT_EQ(HashOf(*recovered), HashOf(oracle));
    EXPECT_EQ(VersionOf(*recovered), VersionOf(oracle));
  }
}

}  // namespace
}  // namespace rpt::serve
