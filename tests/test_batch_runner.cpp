// Tests for the runner::BatchRunner batch experiment engine: deterministic
// seeding and aggregation (thread-count independent), empty batches, and
// exception isolation.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "core/solver.hpp"
#include "gen/random_tree.hpp"
#include "runner/batch_runner.hpp"
#include "support/common.hpp"

namespace rpt::runner {
namespace {

std::function<Instance(std::uint64_t)> SmallBinaryWorkload(std::uint32_t clients) {
  return [clients](std::uint64_t seed) {
    gen::BinaryTreeConfig cfg;
    cfg.clients = clients;
    cfg.min_requests = 1;
    cfg.max_requests = 10;
    return Instance(gen::GenerateFullBinaryTree(cfg, seed), /*capacity=*/15, kNoDistanceLimit);
  };
}

BatchRunner MakeGridRunner(std::size_t threads) {
  BatchRunner runner(BatchOptions{threads});
  for (const core::Algorithm algorithm :
       {core::Algorithm::kSingleGen, core::Algorithm::kMultipleBin,
        core::Algorithm::kMultipleGreedy}) {
    for (const std::uint32_t clients : {8u, 24u, 48u}) {
      runner.AddSweep(std::string(core::AlgorithmName(algorithm)) + "/N=" +
                          std::to_string(clients),
                      SmallBinaryWorkload(clients), SolveWith(algorithm),
                      /*base_seed=*/99, /*seed_count=*/4);
    }
  }
  return runner;
}

TEST(DeriveSeed, DeterministicAndWellSpread) {
  EXPECT_EQ(DeriveSeed(7, 0), DeriveSeed(7, 0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t base : {0ull, 1ull, 77ull}) {
    for (std::uint64_t index = 0; index < 100; ++index) {
      seeds.insert(DeriveSeed(base, index));
    }
  }
  EXPECT_EQ(seeds.size(), 300u);  // no collisions across bases or indices
}

TEST(BatchRunner, SameSeedsSameReportRegardlessOfThreadCount) {
  BatchRunner baseline = MakeGridRunner(1);
  const BatchReport baseline_report = baseline.Run();
  ASSERT_GT(baseline_report.TotalCells(), 0u);
  EXPECT_EQ(baseline_report.TotalErrors(), 0u);

  for (const std::size_t threads : {2u, 5u, 16u}) {
    BatchRunner runner = MakeGridRunner(threads);
    const BatchReport report = runner.Run();
    // The deterministic JSON (costs, feasibility, errors — no timing) must
    // be bit-identical to the single-threaded run.
    EXPECT_EQ(report.ToJson(), baseline_report.ToJson()) << "threads=" << threads;
    // Per-cell outcomes line up in submission order too.
    ASSERT_EQ(runner.Results().size(), baseline.Results().size());
    for (std::size_t i = 0; i < runner.Results().size(); ++i) {
      EXPECT_EQ(runner.Results()[i].cost, baseline.Results()[i].cost);
      EXPECT_EQ(runner.Results()[i].seed, baseline.Results()[i].seed);
      EXPECT_EQ(runner.Results()[i].feasible, baseline.Results()[i].feasible);
    }
  }
}

TEST(BatchRunner, HardwareConcurrencyDefaultMatchesSingleThread) {
  BatchRunner baseline = MakeGridRunner(1);
  BatchRunner hw = MakeGridRunner(0);  // 0 = hardware concurrency
  EXPECT_EQ(hw.Run().ToJson(), baseline.Run().ToJson());
}

TEST(BatchRunner, EmptyCellSetYieldsEmptyReport) {
  BatchRunner runner(BatchOptions{4});
  const BatchReport report = runner.Run();
  EXPECT_EQ(report.TotalCells(), 0u);
  EXPECT_EQ(report.TotalErrors(), 0u);
  EXPECT_TRUE(report.Groups().empty());
  EXPECT_TRUE(runner.Results().empty());
  EXPECT_EQ(report.ToJson(), "{\"cells\":0,\"errors\":0,\"groups\":[]}\n");
}

TEST(BatchRunner, ThrowingCellDoesNotPoisonTheBatch) {
  for (const std::size_t threads : {1u, 4u}) {
    BatchRunner runner(BatchOptions{threads});
    for (std::uint64_t i = 0; i < 8; ++i) {
      runner.Add(Cell{
          "mixed", SmallBinaryWorkload(8),
          [i](const Instance& instance) {
            if (i % 2 == 1) throw std::runtime_error("cell blew up");
            return core::Run(core::Algorithm::kSingleGen, instance);
          },
          DeriveSeed(5, i)});
    }
    // A generator failure is isolated the same way as a solver failure.
    runner.Add(Cell{"mixed",
                    [](std::uint64_t) -> Instance { throw std::runtime_error("bad gen"); },
                    SolveWith(core::Algorithm::kSingleGen), 0});
    const BatchReport report = runner.Run();
    ASSERT_EQ(report.Groups().size(), 1u);
    const GroupReport& group = report.Groups().front();
    EXPECT_EQ(group.cells, 9u);
    EXPECT_EQ(group.errors, 5u);    // 4 odd cells + the generator failure
    EXPECT_EQ(group.feasible, 4u);  // even cells all completed
    EXPECT_EQ(group.cost.Count(), 4u);
    EXPECT_EQ(runner.Results()[1].error, "cell blew up");
    EXPECT_FALSE(runner.Results()[1].ok);
    EXPECT_EQ(runner.Results()[8].error, "bad gen");
    EXPECT_TRUE(runner.Results()[0].ok);
    EXPECT_TRUE(runner.Results()[0].validation_ok);
  }
}

TEST(BatchRunner, NotApplicableAlgorithmIsIsolatedAsError) {
  BatchRunner runner(BatchOptions{2});
  // single-nod rejects distance-constrained instances; the batch records
  // the InvalidArgument instead of dying.
  runner.Add(Cell{"nod",
                  [](std::uint64_t seed) {
                    gen::BinaryTreeConfig cfg;
                    cfg.clients = 8;
                    return Instance(gen::GenerateFullBinaryTree(cfg, seed), 15, Distance{3});
                  },
                  SolveWith(core::Algorithm::kSingleNod), 1});
  runner.AddSweep("gen", SmallBinaryWorkload(8), SolveWith(core::Algorithm::kSingleGen), 1, 2);
  const BatchReport report = runner.Run();
  EXPECT_EQ(report.TotalErrors(), 1u);
  ASSERT_NE(report.FindGroup("nod"), nullptr);
  EXPECT_EQ(report.FindGroup("nod")->errors, 1u);
  EXPECT_NE(runner.Results()[0].error.find("not applicable"), std::string::npos);
  EXPECT_EQ(report.FindGroup("gen")->feasible, 2u);
}

TEST(BatchRunner, GroupsKeepSubmissionOrder) {
  BatchRunner runner(BatchOptions{3});
  runner.AddSweep("zeta", SmallBinaryWorkload(8), SolveWith(core::Algorithm::kSingleGen), 1, 2);
  runner.AddSweep("alpha", SmallBinaryWorkload(8), SolveWith(core::Algorithm::kSingleGen), 1, 2);
  const BatchReport report = runner.Run();
  ASSERT_EQ(report.Groups().size(), 2u);
  EXPECT_EQ(report.Groups()[0].group, "zeta");
  EXPECT_EQ(report.Groups()[1].group, "alpha");
}

TEST(BatchRunner, RejectsMisuse) {
  BatchRunner runner(BatchOptions{1});
  EXPECT_THROW(runner.Add(Cell{"g", nullptr, SolveWith(core::Algorithm::kSingleGen), 0}),
               InvalidArgument);
  EXPECT_THROW(runner.Add(Cell{"g", SmallBinaryWorkload(8), nullptr, 0}), InvalidArgument);
  (void)runner.Run();
  EXPECT_THROW((void)runner.Run(), InvalidArgument);  // Run() is once
  EXPECT_THROW(
      runner.Add(Cell{"g", SmallBinaryWorkload(8), SolveWith(core::Algorithm::kSingleGen), 0}),
      InvalidArgument);
}

}  // namespace
}  // namespace rpt::runner
