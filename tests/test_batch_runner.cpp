// Tests for the runner::BatchRunner batch experiment engine: deterministic
// seeding and aggregation (thread-count independent), empty batches,
// exception isolation, paired comparison sweeps, custom metric hooks, and
// the JSON/CSV escaping of group, solver, and metric names.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/solver.hpp"
#include "gen/random_tree.hpp"
#include "runner/batch_runner.hpp"
#include "support/common.hpp"

namespace rpt::runner {
namespace {

std::function<Instance(std::uint64_t)> SmallBinaryWorkload(std::uint32_t clients) {
  return [clients](std::uint64_t seed) {
    gen::BinaryTreeConfig cfg;
    cfg.clients = clients;
    cfg.min_requests = 1;
    cfg.max_requests = 10;
    return Instance(gen::GenerateFullBinaryTree(cfg, seed), /*capacity=*/15, kNoDistanceLimit);
  };
}

BatchRunner MakeGridRunner(std::size_t threads) {
  BatchRunner runner(BatchOptions{threads});
  for (const core::Algorithm algorithm :
       {core::Algorithm::kSingleGen, core::Algorithm::kMultipleBin,
        core::Algorithm::kMultipleGreedy}) {
    for (const std::uint32_t clients : {8u, 24u, 48u}) {
      runner.AddSweep(std::string(core::AlgorithmName(algorithm)) + "/N=" +
                          std::to_string(clients),
                      SmallBinaryWorkload(clients), SolveWith(algorithm),
                      /*base_seed=*/99, /*seed_count=*/4);
    }
  }
  return runner;
}

TEST(DeriveSeed, DeterministicAndWellSpread) {
  EXPECT_EQ(DeriveSeed(7, 0), DeriveSeed(7, 0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t base : {0ull, 1ull, 77ull}) {
    for (std::uint64_t index = 0; index < 100; ++index) {
      seeds.insert(DeriveSeed(base, index));
    }
  }
  EXPECT_EQ(seeds.size(), 300u);  // no collisions across bases or indices
}

TEST(BatchRunner, SameSeedsSameReportRegardlessOfThreadCount) {
  BatchRunner baseline = MakeGridRunner(1);
  const BatchReport baseline_report = baseline.Run();
  ASSERT_GT(baseline_report.TotalCells(), 0u);
  EXPECT_EQ(baseline_report.TotalErrors(), 0u);

  for (const std::size_t threads : {2u, 5u, 16u}) {
    BatchRunner runner = MakeGridRunner(threads);
    const BatchReport report = runner.Run();
    // The deterministic JSON (costs, feasibility, errors — no timing) must
    // be bit-identical to the single-threaded run.
    EXPECT_EQ(report.ToJson(), baseline_report.ToJson()) << "threads=" << threads;
    // Per-cell outcomes line up in submission order too.
    ASSERT_EQ(runner.Results().size(), baseline.Results().size());
    for (std::size_t i = 0; i < runner.Results().size(); ++i) {
      EXPECT_EQ(runner.Results()[i].cost, baseline.Results()[i].cost);
      EXPECT_EQ(runner.Results()[i].seed, baseline.Results()[i].seed);
      EXPECT_EQ(runner.Results()[i].feasible, baseline.Results()[i].feasible);
    }
  }
}

TEST(BatchRunner, HardwareConcurrencyDefaultMatchesSingleThread) {
  BatchRunner baseline = MakeGridRunner(1);
  BatchRunner hw = MakeGridRunner(0);  // 0 = hardware concurrency
  EXPECT_EQ(hw.Run().ToJson(), baseline.Run().ToJson());
}

TEST(BatchRunner, EmptyCellSetYieldsEmptyReport) {
  BatchRunner runner(BatchOptions{4});
  const BatchReport report = runner.Run();
  EXPECT_EQ(report.TotalCells(), 0u);
  EXPECT_EQ(report.TotalErrors(), 0u);
  EXPECT_TRUE(report.Groups().empty());
  EXPECT_TRUE(runner.Results().empty());
  EXPECT_EQ(report.ToJson(), "{\"cells\":0,\"errors\":0,\"groups\":[]}\n");
}

TEST(BatchRunner, ThrowingCellDoesNotPoisonTheBatch) {
  for (const std::size_t threads : {1u, 4u}) {
    BatchRunner runner(BatchOptions{threads});
    for (std::uint64_t i = 0; i < 8; ++i) {
      runner.Add(Cell{
          "mixed", SmallBinaryWorkload(8),
          [i](const Instance& instance) {
            if (i % 2 == 1) throw std::runtime_error("cell blew up");
            return core::Run(core::Algorithm::kSingleGen, instance);
          },
          DeriveSeed(5, i),
          {}});
    }
    // A generator failure is isolated the same way as a solver failure.
    runner.Add(Cell{"mixed",
                    [](std::uint64_t) -> Instance { throw std::runtime_error("bad gen"); },
                    SolveWith(core::Algorithm::kSingleGen), 0, {}});
    const BatchReport report = runner.Run();
    ASSERT_EQ(report.Groups().size(), 1u);
    const GroupReport& group = report.Groups().front();
    EXPECT_EQ(group.cells, 9u);
    EXPECT_EQ(group.errors, 5u);    // 4 odd cells + the generator failure
    EXPECT_EQ(group.feasible, 4u);  // even cells all completed
    EXPECT_EQ(group.cost.Count(), 4u);
    EXPECT_EQ(runner.Results()[1].error, "cell blew up");
    EXPECT_FALSE(runner.Results()[1].ok);
    EXPECT_EQ(runner.Results()[8].error, "bad gen");
    EXPECT_TRUE(runner.Results()[0].ok);
    EXPECT_TRUE(runner.Results()[0].validation_ok);
  }
}

TEST(BatchRunner, NotApplicableAlgorithmIsIsolatedAsError) {
  BatchRunner runner(BatchOptions{2});
  // single-nod rejects distance-constrained instances; the batch records
  // the InvalidArgument instead of dying.
  runner.Add(Cell{"nod",
                  [](std::uint64_t seed) {
                    gen::BinaryTreeConfig cfg;
                    cfg.clients = 8;
                    return Instance(gen::GenerateFullBinaryTree(cfg, seed), 15, Distance{3});
                  },
                  SolveWith(core::Algorithm::kSingleNod), 1, {}});
  runner.AddSweep("gen", SmallBinaryWorkload(8), SolveWith(core::Algorithm::kSingleGen), 1, 2);
  const BatchReport report = runner.Run();
  EXPECT_EQ(report.TotalErrors(), 1u);
  ASSERT_NE(report.FindGroup("nod"), nullptr);
  EXPECT_EQ(report.FindGroup("nod")->errors, 1u);
  EXPECT_NE(runner.Results()[0].error.find("not applicable"), std::string::npos);
  EXPECT_EQ(report.FindGroup("gen")->feasible, 2u);
}

TEST(BatchRunner, GroupsKeepSubmissionOrder) {
  BatchRunner runner(BatchOptions{3});
  runner.AddSweep("zeta", SmallBinaryWorkload(8), SolveWith(core::Algorithm::kSingleGen), 1, 2);
  runner.AddSweep("alpha", SmallBinaryWorkload(8), SolveWith(core::Algorithm::kSingleGen), 1, 2);
  const BatchReport report = runner.Run();
  ASSERT_EQ(report.Groups().size(), 2u);
  EXPECT_EQ(report.Groups()[0].group, "zeta");
  EXPECT_EQ(report.Groups()[1].group, "alpha");
}

// A deterministic fake solver with a fixed replica count, for exercising the
// pairing arithmetic without depending on real algorithm outputs.
std::function<core::RunResult(const Instance&)> FakeSolver(std::size_t cost) {
  return [cost](const Instance&) {
    core::RunResult result;
    result.feasible = true;
    for (std::size_t i = 0; i < cost; ++i) {
      result.solution.replicas.push_back(static_cast<NodeId>(i));
    }
    return result;
  };
}

TEST(ComparisonSweep, PairsSolversPerSeed) {
  BatchRunner runner(BatchOptions{3});
  runner.AddComparisonSweep("cmp", SmallBinaryWorkload(8),
                            {{"base", FakeSolver(2)},
                             {"double", FakeSolver(4)},
                             {"tie", FakeSolver(2)},
                             {"cheaper", FakeSolver(1)}},
                            /*base_seed=*/7, /*seed_count=*/5);
  EXPECT_EQ(runner.CellCount(), 20u);
  const BatchReport report = runner.Run();

  // Every solver aggregates under its own subgroup.
  ASSERT_NE(report.FindGroup("cmp/base"), nullptr);
  EXPECT_EQ(report.FindGroup("cmp/base")->cells, 5u);
  EXPECT_EQ(report.FindGroup("cmp/double")->cost.Mean(), 4.0);

  const ComparisonReport* comparison = report.FindComparison("cmp");
  ASSERT_NE(comparison, nullptr);
  ASSERT_EQ(comparison->ratios.size(), 3u);  // every solver vs "base"
  ASSERT_EQ(comparison->solver_groups.size(), 4u);
  EXPECT_EQ(comparison->solver_groups[0], "cmp/base");

  const RatioStat* doubled = comparison->FindRatio("double");
  ASSERT_NE(doubled, nullptr);
  EXPECT_EQ(doubled->denominator, "base");
  EXPECT_EQ(doubled->pairs, 5u);
  EXPECT_EQ(doubled->ties, 0u);
  EXPECT_EQ(doubled->wins, 0u);
  EXPECT_DOUBLE_EQ(doubled->ratio.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(doubled->diff.Mean(), 2.0);

  const RatioStat* tie = comparison->FindRatio("tie");
  ASSERT_NE(tie, nullptr);
  EXPECT_EQ(tie->ties, 5u);
  EXPECT_EQ(tie->wins, 0u);
  EXPECT_DOUBLE_EQ(tie->ratio.Mean(), 1.0);

  const RatioStat* cheaper = comparison->FindRatio("cheaper");
  ASSERT_NE(cheaper, nullptr);
  EXPECT_EQ(cheaper->wins, 5u);
  EXPECT_DOUBLE_EQ(cheaper->diff.Mean(), -1.0);
  EXPECT_EQ(comparison->FindRatio("base"), nullptr);  // baseline has no self-ratio
}

TEST(ComparisonSweep, IdenticalInstancePerSeed) {
  // Real solvers on the identical instance: multiple-bin can never use more
  // replicas than single-gen on the same tree, for every single pair.
  BatchRunner runner(BatchOptions{4});
  runner.AddComparisonSweep("policies", SmallBinaryWorkload(24),
                            {{"multiple-bin", SolveWith(core::Algorithm::kMultipleBin)},
                             {"single-gen", SolveWith(core::Algorithm::kSingleGen)}},
                            /*base_seed=*/11, /*seed_count=*/8);
  const BatchReport report = runner.Run();
  EXPECT_TRUE(report.AllOk());
  const RatioStat* ratio = report.FindComparison("policies")->FindRatio("single-gen");
  ASSERT_NE(ratio, nullptr);
  EXPECT_EQ(ratio->pairs, 8u);
  EXPECT_EQ(ratio->wins, 0u);  // Single never beats Multiple on the same instance
  EXPECT_GE(ratio->ratio.Min(), 1.0);
}

TEST(ComparisonSweep, ThreadCountInvariantReport) {
  auto build = [](std::size_t threads) {
    BatchRunner runner(BatchOptions{threads});
    runner.AddComparisonSweep(
        "grid", SmallBinaryWorkload(16),
        {{"bin", SolveWith(core::Algorithm::kMultipleBin)},
         {"gen", SolveWith(core::Algorithm::kSingleGen)},
         {"greedy", SolveWith(core::Algorithm::kMultipleGreedy)}},
        /*base_seed=*/3, /*seed_count=*/6,
        {{"lower_bound", [](const Instance& instance, const core::RunResult&) {
            return static_cast<double>(instance.CapacityLowerBound());
          }}});
    return runner;
  };
  BatchRunner baseline = build(1);
  const std::string baseline_json = baseline.Run().ToJson();
  for (const std::size_t threads : {2u, 5u, 16u}) {
    BatchRunner runner = build(threads);
    EXPECT_EQ(runner.Run().ToJson(), baseline_json) << "threads=" << threads;
  }
}

TEST(ComparisonSweep, BrokenSolverYieldsNoPairs) {
  BatchRunner runner(BatchOptions{2});
  runner.AddComparisonSweep(
      "broken", SmallBinaryWorkload(8),
      {{"ok", FakeSolver(2)},
       {"throws", [](const Instance&) -> core::RunResult {
          throw std::runtime_error("solver exploded");
        }}},
      /*base_seed=*/1, /*seed_count=*/3);
  const BatchReport report = runner.Run();
  EXPECT_FALSE(report.AllOk());
  EXPECT_EQ(report.FindGroup("broken/throws")->errors, 3u);
  EXPECT_EQ(report.FindGroup("broken/ok")->errors, 0u);
  const RatioStat* ratio = report.FindComparison("broken")->FindRatio("throws");
  ASSERT_NE(ratio, nullptr);
  EXPECT_EQ(ratio->pairs, 0u);
  EXPECT_EQ(ratio->ratio.Count(), 0u);
}

TEST(ComparisonSweep, RejectsMisuse) {
  BatchRunner runner(BatchOptions{1});
  EXPECT_THROW(
      runner.AddComparisonSweep("g", SmallBinaryWorkload(8), {}, 0, 1),
      InvalidArgument);
  EXPECT_THROW(runner.AddComparisonSweep(
                   "g", SmallBinaryWorkload(8),
                   {{"dup", FakeSolver(1)}, {"dup", FakeSolver(2)}}, 0, 1),
               InvalidArgument);
  EXPECT_THROW(runner.AddComparisonSweep("g", SmallBinaryWorkload(8), {{"", FakeSolver(1)}},
                                         0, 1),
               InvalidArgument);
}

TEST(Metrics, AggregateIntoNamedColumns) {
  BatchRunner runner(BatchOptions{2});
  runner.AddSweep("sized", SmallBinaryWorkload(8), FakeSolver(3), /*base_seed=*/5,
                  /*seed_count=*/4,
                  {{"tree_size",
                    [](const Instance& instance, const core::RunResult&) {
                      return static_cast<double>(instance.GetTree().Size());
                    }},
                   {"always_nan", [](const Instance&, const core::RunResult&) {
                      return std::numeric_limits<double>::quiet_NaN();
                    }}});
  const BatchReport report = runner.Run();
  const GroupReport* group = report.FindGroup("sized");
  ASSERT_NE(group, nullptr);
  const StatAccumulator* size = group->FindMetric("tree_size");
  ASSERT_NE(size, nullptr);
  EXPECT_EQ(size->Count(), 4u);
  EXPECT_GT(size->Mean(), 8.0);  // 8 clients plus internal nodes
  // A hook returning NaN everywhere never creates a column.
  EXPECT_EQ(group->FindMetric("always_nan"), nullptr);
  EXPECT_EQ(group->FindMetric("missing"), nullptr);
  // Per-cell values are recorded in submission order, NaN included.
  ASSERT_EQ(runner.Results()[0].metric_values.size(), 2u);
  EXPECT_TRUE(std::isnan(runner.Results()[0].metric_values[1]));
}

TEST(Metrics, ThrowingHookIsIsolatedAsCellError) {
  BatchRunner runner(BatchOptions{2});
  runner.AddSweep("half", SmallBinaryWorkload(8), FakeSolver(1), /*base_seed=*/5,
                  /*seed_count=*/4,
                  {{"picky", [](const Instance&, const core::RunResult& run) -> double {
                      if (run.solution.ReplicaCount() == 1) {
                        throw std::runtime_error("metric rejected the cell");
                      }
                      return 1.0;
                    }}});
  runner.AddSweep("fine", SmallBinaryWorkload(8), FakeSolver(1), /*base_seed=*/5,
                  /*seed_count=*/2);
  const BatchReport report = runner.Run();
  EXPECT_EQ(report.FindGroup("half")->errors, 4u);
  EXPECT_EQ(runner.Results()[0].error, "metric rejected the cell");
  EXPECT_EQ(report.FindGroup("fine")->errors, 0u);
  EXPECT_FALSE(report.AllOk());
}

TEST(Metrics, RejectsUnnamedOrEmptyHooks) {
  BatchRunner runner(BatchOptions{1});
  EXPECT_THROW(
      runner.Add(Cell{"g", SmallBinaryWorkload(8), FakeSolver(1), 0,
                      {{"", [](const Instance&, const core::RunResult&) { return 0.0; }}}}),
      InvalidArgument);
  EXPECT_THROW(runner.Add(Cell{"g", SmallBinaryWorkload(8), FakeSolver(1), 0,
                               {{"named", nullptr}}}),
               InvalidArgument);
}

TEST(ReportEscaping, JsonEscapesGroupSolverAndMetricNames) {
  BatchRunner runner(BatchOptions{1});
  runner.AddComparisonSweep("W=10,dmax=6", SmallBinaryWorkload(8),
                            {{"base", FakeSolver(1)}, {"quote\"back\\slash", FakeSolver(2)}},
                            /*base_seed=*/1, /*seed_count=*/1,
                            {{"tab\there", [](const Instance&, const core::RunResult&) {
                                return 1.0;
                              }}});
  const std::string json = runner.Run().ToJson();
  // Group names with commas survive verbatim inside the JSON string...
  EXPECT_NE(json.find("\"group\":\"W=10,dmax=6/base\""), std::string::npos);
  // ...while quotes, backslashes, and control characters are escaped.
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("tab\\there"), std::string::npos);
  EXPECT_EQ(json.find("tab\there"), std::string::npos);
}

TEST(ReportEscaping, CsvQuotesGroupNamesWithCommasAndQuotes) {
  BatchRunner runner(BatchOptions{1});
  runner.Add(Cell{"W=10,dmax=6", SmallBinaryWorkload(8), FakeSolver(1), 0, {}});
  runner.Add(Cell{"say \"hi\"", SmallBinaryWorkload(8), FakeSolver(1), 0, {}});
  const BatchReport report = runner.Run();
  std::ostringstream os;
  report.WriteCsv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("\"W=10,dmax=6\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  // Round-trip: the first data row still has the base column count after
  // CSV-aware splitting (the quoted comma does not add a field).
  std::istringstream in(csv);
  std::string header_line;
  std::string row;
  std::getline(in, header_line);
  std::getline(in, row);
  std::size_t fields = 0;
  bool quoted = false;
  for (const char c : row) {
    if (c == '"') quoted = !quoted;
    fields += (c == ',' && !quoted);
  }
  ++fields;
  std::size_t header_fields = std::count(header_line.begin(), header_line.end(), ',') + 1;
  EXPECT_EQ(fields, header_fields);
}

TEST(ReportEscaping, MetricColumnsJoinTheCsvHeader) {
  BatchRunner runner(BatchOptions{1});
  runner.AddSweep("a", SmallBinaryWorkload(8), FakeSolver(1), 0, 1,
                  {{"extra", [](const Instance&, const core::RunResult&) { return 2.0; }}});
  runner.AddSweep("b", SmallBinaryWorkload(8), FakeSolver(1), 0, 1);
  const BatchReport report = runner.Run();
  std::ostringstream os;
  report.WriteCsv(os, /*include_timing=*/false);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("extra_mean,extra_min,extra_max"), std::string::npos);
  // Group "b" lacks the metric: its row ends with empty fields.
  std::istringstream in(csv);
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);  // group a
  EXPECT_NE(line.find("2.0000,2.0000,2.0000"), std::string::npos);
  std::getline(in, line);  // group b
  EXPECT_NE(line.find(",,"), std::string::npos);
}

TEST(BatchRunner, RejectsMisuse) {
  BatchRunner runner(BatchOptions{1});
  EXPECT_THROW(runner.Add(Cell{"g", nullptr, SolveWith(core::Algorithm::kSingleGen), 0, {}}),
               InvalidArgument);
  EXPECT_THROW(runner.Add(Cell{"g", SmallBinaryWorkload(8), nullptr, 0, {}}), InvalidArgument);
  (void)runner.Run();
  EXPECT_THROW((void)runner.Run(), InvalidArgument);  // Run() is once
  EXPECT_THROW(
      runner.Add(Cell{"g", SmallBinaryWorkload(8), SolveWith(core::Algorithm::kSingleGen), 0, {}}),
      InvalidArgument);
}

}  // namespace
}  // namespace rpt::runner
