// Unit tests for the tree substrate: builder validation, derived queries,
// traversal, and serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "tree/serialize.hpp"
#include "tree/tree.hpp"

namespace rpt {
namespace {

// Small fixture tree:
//        0 (root)
//       1   2     (children of 0)
//      3 4   5    (3,4 under 1; 5 under 2)
// 3,4,5 are clients; edges: 1->0:2, 2->0:3, 3->1:1, 4->1:4, 5->2:5.
Tree MakeFixture() {
  TreeBuilder b;
  const NodeId root = b.AddRoot();
  const NodeId n1 = b.AddInternal(root, 2);
  const NodeId n2 = b.AddInternal(root, 3);
  b.AddClient(n1, 1, 10);
  b.AddClient(n1, 4, 20);
  b.AddClient(n2, 5, 30);
  return b.Build();
}

TEST(TreeBuilder, RootMustBeFirst) {
  TreeBuilder b;
  EXPECT_THROW(b.AddInternal(0, 1), InvalidArgument);
  b.AddRoot();
  EXPECT_THROW(b.AddRoot(), InvalidArgument);
}

TEST(TreeBuilder, ClientsMustBeLeaves) {
  TreeBuilder b;
  const NodeId root = b.AddRoot();
  const NodeId client = b.AddClient(root, 1, 5);
  EXPECT_THROW(b.AddInternal(client, 1), InvalidArgument);
  EXPECT_THROW(b.AddClient(client, 1, 5), InvalidArgument);
}

TEST(TreeBuilder, NonRootInternalNeedsChildren) {
  TreeBuilder b;
  const NodeId root = b.AddRoot();
  b.AddInternal(root, 1);  // left childless
  EXPECT_THROW((void)b.Build(), InvalidArgument);
}

TEST(TreeBuilder, RejectsUnknownParent) {
  TreeBuilder b;
  b.AddRoot();
  EXPECT_THROW(b.AddClient(99, 1, 5), InvalidArgument);
}

TEST(TreeBuilder, RejectsOversizedEdge) {
  TreeBuilder b;
  const NodeId root = b.AddRoot();
  EXPECT_THROW(b.AddClient(root, kDistanceCap + 1, 5), InvalidArgument);
}

TEST(TreeBuilder, SingleNodeTreeIsValid) {
  TreeBuilder b;
  b.AddRoot();
  const Tree t = b.Build();
  EXPECT_EQ(t.Size(), 1u);
  EXPECT_EQ(t.ClientCount(), 0u);
  EXPECT_EQ(t.TotalRequests(), 0u);
  EXPECT_EQ(t.Arity(), 0u);
}

TEST(Tree, BasicQueries) {
  const Tree t = MakeFixture();
  EXPECT_EQ(t.Size(), 6u);
  EXPECT_EQ(t.ClientCount(), 3u);
  EXPECT_EQ(t.InternalCount(), 3u);
  EXPECT_EQ(t.Root(), 0u);
  EXPECT_EQ(t.Parent(0), kInvalidNode);
  EXPECT_EQ(t.Parent(3), 1u);
  EXPECT_EQ(t.DistToParent(0), kNoDistanceLimit);
  EXPECT_EQ(t.DistToParent(4), 4u);
  EXPECT_TRUE(t.IsClient(5));
  EXPECT_FALSE(t.IsClient(1));
  EXPECT_EQ(t.RequestsOf(4), 20u);
  EXPECT_EQ(t.RequestsOf(1), 0u);
  EXPECT_EQ(t.Arity(), 2u);
  EXPECT_TRUE(t.IsBinary());
}

TEST(Tree, ChildrenSpans) {
  const Tree t = MakeFixture();
  const auto root_kids = t.Children(0);
  ASSERT_EQ(root_kids.size(), 2u);
  EXPECT_EQ(root_kids[0], 1u);
  EXPECT_EQ(root_kids[1], 2u);
  EXPECT_TRUE(t.Children(3).empty());
}

TEST(Tree, ClientListSorted) {
  const Tree t = MakeFixture();
  const auto clients = t.Clients();
  ASSERT_EQ(clients.size(), 3u);
  EXPECT_EQ(clients[0], 3u);
  EXPECT_EQ(clients[1], 4u);
  EXPECT_EQ(clients[2], 5u);
}

TEST(Tree, PostOrderChildrenBeforeParents) {
  const Tree t = MakeFixture();
  const auto order = t.PostOrder();
  ASSERT_EQ(order.size(), t.Size());
  std::vector<int> position(t.Size());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = static_cast<int>(i);
  for (NodeId id = 1; id < t.Size(); ++id) {
    EXPECT_LT(position[id], position[t.Parent(id)]) << "node " << id;
  }
  EXPECT_EQ(order.back(), t.Root());
}

TEST(Tree, DepthAndRootDistance) {
  const Tree t = MakeFixture();
  EXPECT_EQ(t.Depth(0), 0u);
  EXPECT_EQ(t.Depth(1), 1u);
  EXPECT_EQ(t.Depth(4), 2u);
  EXPECT_EQ(t.DistFromRoot(0), 0u);
  EXPECT_EQ(t.DistFromRoot(1), 2u);
  EXPECT_EQ(t.DistFromRoot(4), 6u);
  EXPECT_EQ(t.DistFromRoot(5), 8u);
}

TEST(Tree, AncestorQueries) {
  const Tree t = MakeFixture();
  EXPECT_TRUE(t.IsAncestorOrSelf(0, 4));
  EXPECT_TRUE(t.IsAncestorOrSelf(1, 4));
  EXPECT_TRUE(t.IsAncestorOrSelf(4, 4));
  EXPECT_FALSE(t.IsAncestorOrSelf(2, 4));
  EXPECT_FALSE(t.IsAncestorOrSelf(4, 1));  // descendant, not ancestor
  EXPECT_FALSE(t.IsAncestorOrSelf(3, 4));  // siblings
}

TEST(Tree, DistToAncestor) {
  const Tree t = MakeFixture();
  EXPECT_EQ(t.DistToAncestor(4, 1), 4u);
  EXPECT_EQ(t.DistToAncestor(4, 0), 6u);
  EXPECT_EQ(t.DistToAncestor(4, 4), 0u);
  EXPECT_THROW((void)t.DistToAncestor(4, 2), InvalidArgument);
}

TEST(Tree, SubtreeAggregates) {
  const Tree t = MakeFixture();
  EXPECT_EQ(t.TotalRequests(), 60u);
  EXPECT_EQ(t.SubtreeRequests(0), 60u);
  EXPECT_EQ(t.SubtreeRequests(1), 30u);
  EXPECT_EQ(t.SubtreeRequests(2), 30u);
  EXPECT_EQ(t.SubtreeRequests(4), 20u);
  EXPECT_EQ(t.SubtreeSize(0), 6u);
  EXPECT_EQ(t.SubtreeSize(1), 3u);
  EXPECT_EQ(t.SubtreeSize(5), 1u);
}

TEST(Tree, OutOfRangeIdThrows) {
  const Tree t = MakeFixture();
  EXPECT_THROW((void)t.Kind(99), InvalidArgument);
  EXPECT_THROW((void)t.Children(99), InvalidArgument);
}

TEST(Serialize, RoundTripPreservesEverything) {
  const Tree t = MakeFixture();
  const std::string text = TreeToString(t);
  const Tree back = TreeFromString(text);
  ASSERT_EQ(back.Size(), t.Size());
  for (NodeId id = 0; id < t.Size(); ++id) {
    EXPECT_EQ(back.Kind(id), t.Kind(id));
    EXPECT_EQ(back.Parent(id), t.Parent(id));
    EXPECT_EQ(back.DistToParent(id), t.DistToParent(id));
    EXPECT_EQ(back.RequestsOf(id), t.RequestsOf(id));
  }
}

TEST(Serialize, AcceptsCommentsAndBlankLines) {
  const std::string text =
      "# a comment\n"
      "rpt-tree v1\n"
      "\n"
      "2\n"
      "# root\n"
      "0 - inf I 0\n"
      "1 0 7 C 42\n";
  const Tree t = TreeFromString(text);
  EXPECT_EQ(t.Size(), 2u);
  EXPECT_EQ(t.RequestsOf(1), 42u);
  EXPECT_EQ(t.DistToParent(1), 7u);
}

TEST(Serialize, RejectsMalformedInput) {
  EXPECT_THROW((void)TreeFromString(""), InvalidArgument);
  EXPECT_THROW((void)TreeFromString("bogus v1\n1\n0 - inf I 0\n"), InvalidArgument);
  EXPECT_THROW((void)TreeFromString("rpt-tree v1\n2\n0 - inf I 0\n"), InvalidArgument);  // truncated
  EXPECT_THROW((void)TreeFromString("rpt-tree v1\n1\n0 - inf C 5\n"), InvalidArgument);  // client root
  EXPECT_THROW((void)TreeFromString("rpt-tree v1\n2\n0 - inf I 0\n1 0 3 I 9\n"),
               InvalidArgument);  // internal with requests
  EXPECT_THROW((void)TreeFromString("rpt-tree v1\n2\n0 - inf I 0\n5 0 3 C 9\n"),
               InvalidArgument);  // non-dense ids
}

// An overlay that exercises every mutation the wire format must carry:
// tombstones, appended ids, post-migration child order, and demand edits.
TreeOverlay MakeChurnedOverlay() {
  TreeOverlay overlay(MakeFixture());
  SubtreeSpec pod;  // internal -- {client(7), client(9)}
  pod.nodes.push_back({NodeKind::kInternal, 0, 4, 0});
  pod.nodes.push_back({NodeKind::kClient, 0, 1, 7});
  pod.nodes.push_back({NodeKind::kClient, 0, 2, 9});
  overlay.AttachSubtree(2, pod);      // ids 6,7,8 under node 2
  overlay.DetachSubtree(1);           // tombstones 1,3,4
  overlay.MigrateSubtree(6, 0, 11);   // root's children become [2, 6]
  overlay.SetRequests(7, 70);         // demand edit rides the same wire
  return overlay;
}

TEST(OverlaySerialize, SerializeDeserializeCompactMatchesCompactSerialize) {
  const TreeOverlay overlay = MakeChurnedOverlay();
  const std::string wire = OverlayToString(overlay);
  const TreeOverlay restored = OverlayFromString(wire);
  // Re-serializing is byte-stable (canonical tombstones, rank-ordered kids).
  EXPECT_EQ(OverlayToString(restored), wire);
  // The two compaction paths commute with serialization byte-for-byte.
  EXPECT_EQ(TreeToString(restored.Compact().tree), TreeToString(overlay.Compact().tree));
}

TEST(OverlaySerialize, TombstonedIdsSurviveRoundTrip) {
  // Regression: slot ids are the contract solver tables are keyed by — a
  // round-trip must keep dead slots in place, not compact them away.
  const TreeOverlay overlay = MakeChurnedOverlay();
  const TreeOverlay restored = OverlayFromString(OverlayToString(overlay));
  ASSERT_EQ(restored.Size(), overlay.Size());
  ASSERT_EQ(restored.LiveCount(), overlay.LiveCount());
  EXPECT_EQ(restored.TotalRequests(), overlay.TotalRequests());
  for (NodeId id = 0; id < overlay.Size(); ++id) {
    ASSERT_EQ(restored.IsLive(id), overlay.IsLive(id)) << "slot " << id;
    if (!overlay.IsLive(id)) continue;
    EXPECT_EQ(restored.Kind(id), overlay.Kind(id));
    EXPECT_EQ(restored.RequestsOf(id), overlay.RequestsOf(id));
    EXPECT_EQ(restored.SubtreeRequests(id), overlay.SubtreeRequests(id));
    if (id != 0) {
      EXPECT_EQ(restored.Parent(id), overlay.Parent(id));
      EXPECT_EQ(restored.DistToParent(id), overlay.DistToParent(id));
    }
    const auto a = restored.Children(id);
    const auto b = overlay.Children(id);
    ASSERT_EQ(a.size(), b.size()) << "slot " << id;
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  // Both remaps agree on which ids are tombstones and where the rest land.
  EXPECT_EQ(restored.Compact().remap, overlay.Compact().remap);
}

TEST(OverlaySerialize, RejectsMalformedInput) {
  EXPECT_THROW((void)OverlayFromString(""), InvalidArgument);
  EXPECT_THROW((void)OverlayFromString("rpt-tree v1\n1\n0 - inf I 0\n"), InvalidArgument);
  EXPECT_THROW((void)OverlayFromString("rpt-overlay v1\n2\n0 1 - inf I 0 0\n"),
               InvalidArgument);  // truncated
  EXPECT_THROW((void)OverlayFromString("rpt-overlay v1\n1\n0 0 - inf I 0 0\n"),
               InvalidArgument);  // dead root
  EXPECT_THROW((void)OverlayFromString(
                   "rpt-overlay v1\n3\n0 1 - inf I 0 0\n1 0 - inf I 0 0\n2 1 1 3 C 5 0\n"),
               InvalidArgument);  // live client under a dead parent
  EXPECT_THROW((void)OverlayFromString(
                   "rpt-overlay v1\n3\n0 1 - inf I 0 0\n1 1 0 2 C 5 0\n2 1 0 3 C 5 2\n"),
               InvalidArgument);  // child ranks not 0..k-1
}

TEST(Serialize, DotContainsNodesAndEdges) {
  const Tree t = MakeFixture();
  std::ostringstream os;
  WriteDot(os, t, "fixture");
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph fixture"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("r=30"), std::string::npos);
  EXPECT_NE(dot.find("label=\"5\""), std::string::npos);
}

}  // namespace
}  // namespace rpt
