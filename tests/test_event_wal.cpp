// Tests for the durable event WAL and checkpoint files (src/serve/event_wal).
//
// The load-bearing suites are the corpora: a valid log truncated at EVERY
// byte boundary of its final record must read back as the exact preceding
// prefix (torn tail), and a single flipped byte anywhere in a CRC-covered
// region must either reduce to that same prefix (when it kills the last
// record) or throw (interior corruption) — never parse into different
// events. "Silently wrong" is the one outcome durability code must not
// have.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gen/random_tree.hpp"
#include "incremental/incremental_solver.hpp"
#include "serve/event_wal.hpp"
#include "support/crc32.hpp"
#include "support/failpoint.hpp"
#include "tree/serialize.hpp"

namespace rpt::serve {
namespace {

namespace fs = std::filesystem;
using incremental::IncrementalSolver;
using incremental::UpdateEvent;

struct TempDir {
  std::string path;
  TempDir() {
    char buf[] = "/tmp/rpt_wal_XXXXXX";
    path = ::mkdtemp(buf);
  }
  ~TempDir() { fs::remove_all(path); }
  [[nodiscard]] std::string File(const std::string& name) const {
    return (fs::path(path) / name).string();
  }
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Three batches covering every event kind, attach spec included.
std::vector<std::vector<UpdateEvent>> SampleBatches() {
  SubtreeSpec spec;
  spec.nodes.push_back({NodeKind::kInternal, 0, 2, 0});
  spec.nodes.push_back({NodeKind::kClient, 0, 1, 7});
  spec.nodes.push_back({NodeKind::kClient, 0, 3, 5});
  return {
      {UpdateEvent::DemandDelta(4, -3), UpdateEvent::ClientAdd(9, 12),
       UpdateEvent::Capacity(25)},
      {UpdateEvent::AttachSubtree(0, spec), UpdateEvent::LinkCapacity(3, 6)},
      {UpdateEvent::ClientRemove(9), UpdateEvent::MigrateSubtree(7, 2, 4),
       UpdateEvent::DetachSubtree(11),
       UpdateEvent::DemandDelta(2, std::numeric_limits<std::int64_t>::min())},
  };
}

std::string WriteSampleWal(const std::string& path) {
  EventWal wal = EventWal::OpenForAppend(path);
  const auto batches = SampleBatches();
  for (std::size_t i = 0; i < batches.size(); ++i) {
    wal.Append(i + 1, batches[i]);
  }
  return ReadFileBytes(path);
}

TEST(EventWal, RoundTripsEveryEventKind) {
  const TempDir dir;
  const std::string path = dir.File("wal.log");
  WriteSampleWal(path);

  const WalReadResult result = EventWal::Read(path);
  EXPECT_EQ(result.dropped_bytes, 0u);
  const auto batches = SampleBatches();
  ASSERT_EQ(result.batches.size(), batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i) {
    EXPECT_EQ(result.batches[i].seq, i + 1);
    EXPECT_EQ(result.batches[i].events, batches[i]);  // UpdateEvent operator==
  }
}

TEST(EventWal, MissingAndEmptyFilesReadAsEmpty) {
  const TempDir dir;
  const WalReadResult missing = EventWal::Read(dir.File("nope.log"));
  EXPECT_TRUE(missing.batches.empty());
  EXPECT_EQ(missing.valid_bytes, 0u);

  WriteFileBytes(dir.File("empty.log"), "");
  const WalReadResult empty = EventWal::Read(dir.File("empty.log"));
  EXPECT_TRUE(empty.batches.empty());
}

TEST(EventWal, SubMagicFileIsATornTailOfNothing) {
  const TempDir dir;
  WriteFileBytes(dir.File("wal.log"), "RPTW");
  const WalReadResult result = EventWal::Read(dir.File("wal.log"));
  EXPECT_TRUE(result.batches.empty());
  EXPECT_EQ(result.dropped_bytes, 4u);

  // And OpenForAppend starts the log over cleanly.
  EventWal wal = EventWal::OpenForAppend(dir.File("wal.log"));
  wal.Append(1, SampleBatches()[0]);
  EXPECT_EQ(EventWal::Read(dir.File("wal.log")).batches.size(), 1u);
}

TEST(EventWal, WrongMagicThrowsLoudly) {
  const TempDir dir;
  WriteFileBytes(dir.File("wal.log"), "NOTAWAL!garbage");
  EXPECT_THROW((void)EventWal::Read(dir.File("wal.log")), InvalidArgument);
}

TEST(EventWal, AppendRejectsNonIncreasingSeq) {
  const TempDir dir;
  EventWal wal = EventWal::OpenForAppend(dir.File("wal.log"));
  wal.Append(3, SampleBatches()[0]);
  EXPECT_THROW(wal.Append(3, SampleBatches()[1]), InvalidArgument);
  EXPECT_THROW(wal.Append(2, SampleBatches()[1]), InvalidArgument);
  wal.Append(4, SampleBatches()[1]);
  EXPECT_EQ(wal.LastSeq(), 4u);
}

TEST(EventWal, ReadRejectsSeqRegressionBetweenIntactRecords) {
  const TempDir dir;
  const std::string path = dir.File("wal.log");
  // Hand-frame seq 5 then seq 3 — both records individually intact.
  std::string bytes("RPTWAL1\0", 8);
  for (const std::uint64_t seq : {5u, 3u}) {
    const std::string payload = EventWal::EncodeBatchPayload(seq, SampleBatches()[0]);
    const auto len = static_cast<std::uint32_t>(payload.size());
    const std::uint32_t crc = support::Crc32(payload.data(), payload.size());
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<char>((len >> (8 * i)) & 0xFF));
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
    bytes += payload;
  }
  WriteFileBytes(path, bytes);
  EXPECT_THROW((void)EventWal::Read(path), InternalError);
}

// The torn-tail corpus: truncating anywhere inside the final record —
// header, CRC, payload, any byte — must recover exactly the preceding
// batches and report the rest as dropped.
TEST(EventWal, TornTailCorpusTruncateFinalRecordAtEveryByte) {
  const TempDir dir;
  const std::string path = dir.File("wal.log");
  const std::string full = WriteSampleWal(path);

  const WalReadResult intact = EventWal::Read(path);
  ASSERT_EQ(intact.batches.size(), 3u);
  // Recompute where the final record begins: end of the first two.
  std::string prefix_two(full.begin(), full.end());
  const std::size_t final_start = [&] {
    std::size_t off = 8;
    for (int rec = 0; rec < 2; ++rec) {
      std::uint32_t len = 0;
      for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(static_cast<unsigned char>(full[off + i])) << (8 * i);
      off += 8 + len;
    }
    return off;
  }();
  ASSERT_LT(final_start, full.size());

  for (std::size_t cut = final_start; cut < full.size(); ++cut) {
    WriteFileBytes(path, full.substr(0, cut));
    const WalReadResult result = EventWal::Read(path);
    ASSERT_EQ(result.batches.size(), 2u) << "cut at byte " << cut;
    EXPECT_EQ(result.batches[1].events, SampleBatches()[1]) << "cut at byte " << cut;
    EXPECT_EQ(result.valid_bytes, final_start) << "cut at byte " << cut;
    EXPECT_EQ(result.dropped_bytes, cut - final_start) << "cut at byte " << cut;
  }

  // And the append path heals each torn shape: reopen truncates, appends land.
  WriteFileBytes(path, full.substr(0, full.size() - 3));
  EventWal wal = EventWal::OpenForAppend(path);
  EXPECT_EQ(wal.LastSeq(), 2u);
  wal.Append(3, SampleBatches()[0]);
  EXPECT_EQ(EventWal::Read(path).batches.size(), 3u);
}

// The bit-flip corpus: one flipped byte per CRC-covered region. A flip in
// the FINAL record reduces to the preceding prefix (no intact record
// follows); the SAME flip in an interior record must throw, because intact
// committed records follow the damage.
TEST(EventWal, BitFlipCorpusPrefixOrLoudNeverWrong) {
  const TempDir dir;
  const std::string path = dir.File("wal.log");
  const std::string full = WriteSampleWal(path);

  const std::size_t second_start = [&] {
    std::uint32_t len0 = 0;
    for (int i = 0; i < 4; ++i)
      len0 |= static_cast<std::uint32_t>(static_cast<unsigned char>(full[8 + i])) << (8 * i);
    return 8 + 8 + static_cast<std::size_t>(len0);
  }();
  const std::size_t final_start = [&] {
    std::uint32_t len1 = 0;
    for (int i = 0; i < 4; ++i)
      len1 |= static_cast<std::uint32_t>(static_cast<unsigned char>(full[second_start + i]))
              << (8 * i);
    return second_start + 8 + static_cast<std::size_t>(len1);
  }();

  // Flip every byte of the final record (header, crc, and payload).
  for (std::size_t at = final_start; at < full.size(); ++at) {
    std::string damaged = full;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x40);
    WriteFileBytes(path, damaged);
    try {
      const WalReadResult result = EventWal::Read(path);
      // Allowed outcome 1: exact prefix restore — never a different batch.
      ASSERT_EQ(result.batches.size(), 2u) << "flip at byte " << at;
      EXPECT_EQ(result.batches[0].events, SampleBatches()[0]);
      EXPECT_EQ(result.batches[1].events, SampleBatches()[1]);
    } catch (const InternalError&) {
      // Allowed outcome 2: loud. (Reachable when the flipped length field
      // makes a stale suffix frame as a "following" record.)
    }
  }

  // Flip every byte of the SECOND record: intact record follows -> loud,
  // or (flips that only alter the length field's framing) a pure prefix.
  for (std::size_t at = second_start; at < final_start; ++at) {
    std::string damaged = full;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x40);
    WriteFileBytes(path, damaged);
    try {
      const WalReadResult result = EventWal::Read(path);
      // If it parses at all, it must be exactly the one-batch prefix (the
      // flip consumed the rest as an unframeable tail).
      ASSERT_EQ(result.batches.size(), 1u) << "flip at byte " << at;
      EXPECT_EQ(result.batches[0].events, SampleBatches()[0]);
    } catch (const InternalError&) {
      // Expected for most flips: record 3 is intact past the hole.
    }
  }
}

TEST(EventWal, TrimThroughKeepsOnlyNewerRecords) {
  const TempDir dir;
  const std::string path = dir.File("wal.log");
  WriteSampleWal(path);

  EventWal::TrimThrough(path, 2);
  const WalReadResult result = EventWal::Read(path);
  ASSERT_EQ(result.batches.size(), 1u);
  EXPECT_EQ(result.batches[0].seq, 3u);
  EXPECT_EQ(result.batches[0].events, SampleBatches()[2]);

  // Appends continue past the trim with the original numbering.
  EventWal wal = EventWal::OpenForAppend(path);
  wal.Append(4, SampleBatches()[0]);
  EXPECT_EQ(EventWal::Read(path).batches.back().seq, 4u);
}

TEST(EventWal, AppendFailpointsThrowCrashAndRepair) {
  const TempDir dir;
  const std::string path = dir.File("wal.log");
  {
    EventWal wal = EventWal::OpenForAppend(path);
    wal.Append(1, SampleBatches()[0]);
    const std::uint64_t committed = wal.CommittedBytes();

    // kThrow before any bytes: the file is untouched.
    fail::Arm("wal.append", fail::Action::kThrow);
    EXPECT_THROW(wal.Append(2, SampleBatches()[1]), fail::InjectedFault);
    EXPECT_EQ(fs::file_size(path), committed);

    // kShortOp: exactly `param` bytes of the record land, then death. No
    // repair — this is the crash that produces a torn tail.
    fail::Arm("wal.append.short", fail::Action::kShortOp, 1, 6);
    EXPECT_THROW(wal.Append(2, SampleBatches()[1]), fail::InjectedFault);
    EXPECT_EQ(fs::file_size(path), committed + 6);
  }
  fail::DisarmAll();

  // Recovery sees the torn 6 bytes, drops them, and the log heals.
  const WalReadResult torn = EventWal::Read(path);
  EXPECT_EQ(torn.batches.size(), 1u);
  EXPECT_EQ(torn.dropped_bytes, 6u);
  EventWal wal = EventWal::OpenForAppend(path);
  EXPECT_EQ(wal.LastSeq(), 1u);

  // kError on sync: reported as InternalError and the torn bytes are
  // repaired away — the append never happened.
  const std::uint64_t committed = wal.CommittedBytes();
  fail::Arm("wal.sync", fail::Action::kError);
  EXPECT_THROW(wal.Append(2, SampleBatches()[1]), InternalError);
  fail::DisarmAll();
  EXPECT_EQ(fs::file_size(path), committed);
  EXPECT_EQ(wal.LastSeq(), 1u);
  wal.Append(2, SampleBatches()[1]);  // and the handle still works
  EXPECT_EQ(EventWal::Read(path).batches.size(), 2u);
}

// --- checkpoints ---

Instance MakeInstance(std::uint64_t seed) {
  gen::RandomTreeConfig cfg;
  cfg.internal_nodes = 12;
  cfg.clients = 30;
  cfg.max_children = 4;
  cfg.min_requests = 0;
  cfg.max_requests = 9;
  return Instance(gen::GenerateRandomTree(cfg, seed), /*capacity=*/18);
}

CheckpointState MakeState(const Instance& instance, std::uint64_t seq,
                          std::uint64_t version) {
  IncrementalSolver solver(instance);
  // Mutate topology so the exported overlay carries a tombstone and an
  // appended id — the slot-id-preserving part of the contract.
  const std::vector<UpdateEvent> batch = {
      UpdateEvent::AttachSubtree(0, SubtreeSpec::SingleClient(2, 5)),
  };
  solver.Apply(batch);
  return CheckpointState{seq, version, /*epoch=*/1, solver.Capacity(),
                         solver.ExportOverlay()};
}

TEST(Checkpoint, RoundTripsStateAndCounters) {
  const TempDir dir;
  const Instance instance = MakeInstance(11);
  const CheckpointState state = MakeState(instance, 42, 37);
  WriteCheckpoint(dir.path, state);

  const auto loaded = LoadNewestCheckpoint(dir.path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->seq, 42u);
  EXPECT_EQ(loaded->version, 37u);
  EXPECT_EQ(loaded->capacity, state.capacity);
  EXPECT_EQ(OverlayToString(loaded->overlay), OverlayToString(state.overlay));
}

TEST(Checkpoint, NewestWinsAndRetentionKeepsTwo) {
  const TempDir dir;
  const Instance instance = MakeInstance(11);
  for (const std::uint64_t seq : {10u, 20u, 30u, 40u}) {
    WriteCheckpoint(dir.path, MakeState(instance, seq, seq + 1));
  }
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 2u);
  const auto loaded = LoadNewestCheckpoint(dir.path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->seq, 40u);
}

TEST(Checkpoint, DamagedNewestFallsBackToOlder) {
  const TempDir dir;
  const Instance instance = MakeInstance(11);
  WriteCheckpoint(dir.path, MakeState(instance, 10, 11));
  WriteCheckpoint(dir.path, MakeState(instance, 20, 21));

  // Corrupt the newest in place (flip a byte mid-file: CRC must catch it).
  const std::string newest = (fs::path(dir.path) / "ckpt-00000000000000000020.rpt").string();
  std::string bytes = ReadFileBytes(newest);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  WriteFileBytes(newest, bytes);

  auto loaded = LoadNewestCheckpoint(dir.path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->seq, 10u);

  // Truncation (a torn rename never happens, but a torn copy might).
  WriteFileBytes(newest, ReadFileBytes(newest).substr(0, 10));
  loaded = LoadNewestCheckpoint(dir.path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->seq, 10u);

  // Nothing valid at all -> nullopt.
  const TempDir empty;
  EXPECT_FALSE(LoadNewestCheckpoint(empty.path).has_value());
}

}  // namespace
}  // namespace rpt::serve
