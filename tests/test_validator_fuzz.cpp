// Mutation tests for the validator: take a certified-valid solution, apply a
// random corrupting mutation, and require the validator to flag it. This
// guards the guard — every optimality/ratio claim in this repository leans
// on the validator being unable to miss a violation.
#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "gen/random_tree.hpp"
#include "model/validate.hpp"
#include "support/rng.hpp"

namespace rpt {
namespace {

struct FuzzCase {
  Policy policy;
  core::Algorithm algorithm;
};

class ValidatorFuzz : public ::testing::TestWithParam<FuzzCase> {};

// Applies one of several corruption kinds; returns false when the mutation
// was not applicable to this solution (caller retries with another draw).
bool Corrupt(Rng& rng, const Instance& inst, Solution& s) {
  if (s.assignment.empty()) return false;
  const std::size_t pick = static_cast<std::size_t>(rng.NextBelow(s.assignment.size()));
  ServiceEntry& entry = s.assignment[pick];
  switch (rng.NextBelow(6)) {
    case 0:  // short-serve a client
      s.assignment.erase(s.assignment.begin() + static_cast<std::ptrdiff_t>(pick));
      return true;
    case 1:  // overload: inflate one entry past W
      entry.amount += inst.Capacity() + 1;
      return true;
    case 2: {  // route to a non-replica node
      for (NodeId node = 0; node < inst.GetTree().Size(); ++node) {
        if (std::find(s.replicas.begin(), s.replicas.end(), node) == s.replicas.end()) {
          entry.server = node;
          return true;
        }
      }
      return false;
    }
    case 3: {  // route to a non-ancestor (a different leaf)
      for (const NodeId client : inst.GetTree().Clients()) {
        if (client != entry.client) {
          entry.server = client;
          return true;
        }
      }
      return false;
    }
    case 4:  // drop a replica that is still serving requests
      s.replicas.erase(std::remove(s.replicas.begin(), s.replicas.end(), entry.server),
                       s.replicas.end());
      return true;
    default:  // duplicate a replica entry
      if (s.replicas.empty()) return false;
      s.replicas.push_back(s.replicas[rng.NextBelow(s.replicas.size())]);
      return true;
  }
}

TEST_P(ValidatorFuzz, DetectsEveryCorruption) {
  const auto& param = GetParam();
  Rng rng(0xF00D);
  std::size_t mutations_checked = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    gen::BinaryTreeConfig cfg;
    cfg.clients = 12;
    cfg.min_requests = 1;
    cfg.max_requests = 8;
    const Instance inst(gen::GenerateFullBinaryTree(cfg, 90000 + seed), /*capacity=*/10,
                        /*dmax=*/9);
    const Solution valid = core::Run(param.algorithm, inst).solution;
    ASSERT_TRUE(ValidateSolution(inst, param.policy, valid).ok);
    for (int round = 0; round < 20; ++round) {
      Solution corrupted = valid;
      if (!Corrupt(rng, inst, corrupted)) continue;
      ++mutations_checked;
      EXPECT_FALSE(ValidateSolution(inst, param.policy, corrupted).ok)
          << "undetected corruption, seed=" << seed << " round=" << round;
    }
  }
  EXPECT_GT(mutations_checked, 100u);  // the fuzz actually exercised mutations
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ValidatorFuzz,
    ::testing::Values(FuzzCase{Policy::kSingle, core::Algorithm::kSingleGen},
                      FuzzCase{Policy::kMultiple, core::Algorithm::kMultipleBin},
                      FuzzCase{Policy::kMultiple, core::Algorithm::kMultipleGreedy}));

// Single-policy splitting corruption: split one client's entry across two
// servers — legal under Multiple, illegal under Single.
TEST(ValidatorFuzzExtra, SingleSplitDetected) {
  gen::BinaryTreeConfig cfg;
  cfg.clients = 8;
  cfg.min_requests = 2;
  cfg.max_requests = 8;
  const Instance inst(gen::GenerateFullBinaryTree(cfg, 90100), /*capacity=*/10,
                      kNoDistanceLimit);
  Solution s = core::Run(core::Algorithm::kSingleGen, inst).solution;
  ASSERT_TRUE(ValidateSolution(inst, Policy::kSingle, s).ok);
  // Find an entry with amount >= 2 and a client whose own node is free.
  for (ServiceEntry& entry : s.assignment) {
    if (entry.amount < 2 || entry.server == entry.client) continue;
    const Requests moved = entry.amount / 2;
    entry.amount -= moved;
    s.replicas.push_back(entry.client);
    s.assignment.push_back(ServiceEntry{entry.client, entry.client, moved});
    EXPECT_FALSE(ValidateSolution(inst, Policy::kSingle, s).ok);
    EXPECT_TRUE(ValidateSolution(inst, Policy::kMultiple, s).ok);
    return;
  }
  FAIL() << "no splittable entry found";
}

}  // namespace
}  // namespace rpt
