// Tests for the instance generators: random topologies and the paper's
// tightness families (Fig. 3 and Fig. 4), whose closed-form properties are
// asserted exactly.
#include <gtest/gtest.h>

#include <algorithm>

#include "gen/paper_instances.hpp"
#include "gen/random_tree.hpp"
#include "model/validate.hpp"

namespace rpt::gen {
namespace {

TEST(RandomTree, RespectsConfigCounts) {
  RandomTreeConfig cfg;
  cfg.internal_nodes = 10;
  cfg.clients = 25;
  cfg.max_children = 4;
  const Tree t = GenerateRandomTree(cfg, 1);
  EXPECT_EQ(t.InternalCount(), 10u);
  EXPECT_EQ(t.ClientCount(), 25u);
  EXPECT_LE(t.Arity(), 4u);
}

TEST(RandomTree, DeterministicInSeed) {
  RandomTreeConfig cfg;
  cfg.internal_nodes = 6;
  cfg.clients = 12;
  const Tree a = GenerateRandomTree(cfg, 99);
  const Tree b = GenerateRandomTree(cfg, 99);
  ASSERT_EQ(a.Size(), b.Size());
  for (NodeId id = 0; id < a.Size(); ++id) {
    EXPECT_EQ(a.Parent(id), b.Parent(id));
    EXPECT_EQ(a.DistToParent(id), b.DistToParent(id));
    EXPECT_EQ(a.RequestsOf(id), b.RequestsOf(id));
  }
}

TEST(RandomTree, DifferentSeedsDiffer) {
  RandomTreeConfig cfg;
  cfg.internal_nodes = 8;
  cfg.clients = 20;
  const Tree a = GenerateRandomTree(cfg, 1);
  const Tree b = GenerateRandomTree(cfg, 2);
  bool differs = a.Size() != b.Size();
  for (NodeId id = 0; !differs && id < std::min(a.Size(), b.Size()); ++id) {
    differs = a.Parent(id) != b.Parent(id) || a.RequestsOf(id) != b.RequestsOf(id);
  }
  EXPECT_TRUE(differs);
}

TEST(RandomTree, EdgeAndRequestRangesHonoured) {
  RandomTreeConfig cfg;
  cfg.internal_nodes = 5;
  cfg.clients = 30;
  cfg.max_children = 8;  // 40 slots >= 4 internal children + 30 clients
  cfg.min_edge = 3;
  cfg.max_edge = 7;
  cfg.min_requests = 2;
  cfg.max_requests = 9;
  const Tree t = GenerateRandomTree(cfg, 5);
  for (NodeId id = 1; id < t.Size(); ++id) {
    EXPECT_GE(t.DistToParent(id), 3u);
    EXPECT_LE(t.DistToParent(id), 7u);
    if (t.IsClient(id)) {
      EXPECT_GE(t.RequestsOf(id), 2u);
      EXPECT_LE(t.RequestsOf(id), 9u);
    }
  }
}

TEST(RandomTree, ImpossibleConfigThrows) {
  RandomTreeConfig cfg;
  cfg.internal_nodes = 5;
  cfg.clients = 0;  // childless internal nodes cannot be covered
  EXPECT_THROW((void)GenerateRandomTree(cfg, 1), InvalidArgument);
  RandomTreeConfig crowded;
  crowded.internal_nodes = 2;
  crowded.max_children = 2;
  crowded.clients = 10;  // only 3 free slots exist
  EXPECT_THROW((void)GenerateRandomTree(crowded, 1), InvalidArgument);
}

TEST(BinaryTree, ProducesFullBinaryShape) {
  BinaryTreeConfig cfg;
  cfg.clients = 33;
  const Tree t = GenerateFullBinaryTree(cfg, 3);
  EXPECT_TRUE(t.IsBinary());
  EXPECT_EQ(t.ClientCount(), 33u);
  // Full binary: every internal node has exactly two children.
  for (NodeId id = 0; id < t.Size(); ++id) {
    if (!t.IsClient(id)) {
      EXPECT_EQ(t.Children(id).size(), 2u) << "node " << id;
    }
  }
  EXPECT_EQ(t.InternalCount(), 32u);  // clients - 1 internal nodes incl. root
}

TEST(BinaryTree, SingleClientHangsOffRoot) {
  BinaryTreeConfig cfg;
  cfg.clients = 1;
  const Tree t = GenerateFullBinaryTree(cfg, 3);
  EXPECT_EQ(t.Size(), 2u);
  EXPECT_TRUE(t.IsClient(1));
}

TEST(BinaryTree, BalancedSplitsAreShallower) {
  BinaryTreeConfig cfg;
  cfg.clients = 256;
  cfg.balanced = true;
  const Tree balanced = GenerateFullBinaryTree(cfg, 7);
  cfg.balanced = false;
  const Tree skewed = GenerateFullBinaryTree(cfg, 7);
  auto max_depth = [](const Tree& t) {
    std::uint32_t best = 0;
    for (NodeId id = 0; id < t.Size(); ++id) best = std::max(best, t.Depth(id));
    return best;
  };
  EXPECT_LT(max_depth(balanced), max_depth(skewed));
}

TEST(DrawRequestsTest, UniformCoversRange) {
  Rng rng(1);
  bool saw_min = false;
  bool saw_max = false;
  for (int i = 0; i < 2000; ++i) {
    const Requests r = DrawRequests(rng, 1, 5, 1.0);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 5u);
    saw_min |= (r == 1);
    saw_max |= (r == 5);
  }
  EXPECT_TRUE(saw_min);
  EXPECT_TRUE(saw_max);
}

TEST(DrawRequestsTest, SkewBiasesLow) {
  Rng rng(2);
  double uniform_sum = 0;
  double skewed_sum = 0;
  for (int i = 0; i < 5000; ++i) uniform_sum += static_cast<double>(DrawRequests(rng, 1, 100, 1.0));
  for (int i = 0; i < 5000; ++i) skewed_sum += static_cast<double>(DrawRequests(rng, 1, 100, 3.0));
  EXPECT_LT(skewed_sum, uniform_sum * 0.6);
}

TEST(DrawRequestsTest, DegenerateRange) {
  Rng rng(3);
  EXPECT_EQ(DrawRequests(rng, 7, 7, 1.0), 7u);
  EXPECT_THROW((void)DrawRequests(rng, 8, 7, 1.0), InvalidArgument);
  EXPECT_THROW((void)DrawRequests(rng, 1, 2, 0.0), InvalidArgument);
}

// --- Fig. 3 family (Im) structural checks -------------------------------

TEST(TightnessIm, MatchesPaperParameters) {
  const TightnessIm im = BuildTightnessIm(3, 4);
  EXPECT_EQ(im.m, 3u);
  EXPECT_EQ(im.arity, 4u);
  EXPECT_EQ(im.instance.Capacity(), 3u * 4u + 4u - 1u);  // W = m∆+∆-1
  EXPECT_EQ(im.instance.Dmax(), 12u);                    // dmax = 4m
  EXPECT_EQ(im.optimal, 4u);                             // m+1
  EXPECT_EQ(im.single_gen_expected, 15u);                // m(∆+1)
  // Total requests: m (m∆ + 2∆ - 1) per the paper.
  EXPECT_EQ(im.instance.GetTree().TotalRequests(), 3u * (12u + 8u - 1u));
  EXPECT_EQ(im.instance.GetTree().Arity(), 4u);
}

TEST(TightnessIm, BlockStructure) {
  const TightnessIm im = BuildTightnessIm(2, 3);
  const Tree& t = im.instance.GetTree();
  // Nodes per block: 3 internal + (∆+1) clients; plus root.
  EXPECT_EQ(t.Size(), 1u + 2u * (3u + 4u));
  // Exactly one client per block sits at distance dmax from its parent.
  std::size_t critical = 0;
  for (const NodeId c : t.Clients()) {
    if (t.DistToParent(c) == im.instance.Dmax()) ++critical;
  }
  EXPECT_EQ(critical, 2u);
}

TEST(TightnessIm, OptimalSolutionIsRealizable) {
  // The paper's optimal placement: root plus each block's n_{i,1}. Verify it
  // is feasible by explicit construction: n_{i,1} serves c_{i,∆} and
  // c_{i,∆-1} (W requests); the root serves everything else.
  const TightnessIm im = BuildTightnessIm(2, 3);
  const Tree& t = im.instance.GetTree();
  Solution s;
  s.replicas.push_back(t.Root());
  for (const NodeId c : t.Clients()) {
    const NodeId parent = t.Parent(c);
    if (t.DistToParent(c) == im.instance.Dmax()) {
      // c_{i,∆} -> its parent n_{i,1}.
      if (std::find(s.replicas.begin(), s.replicas.end(), parent) == s.replicas.end()) {
        s.replicas.push_back(parent);
      }
      s.assignment.push_back({c, parent, t.RequestsOf(c)});
    }
  }
  // Heavy clients c_{i,∆-1} (m∆ requests) go to their block's n_{i,1},
  // which is the grandparent; light clients go to the root.
  for (const NodeId c : t.Clients()) {
    if (t.DistToParent(c) == im.instance.Dmax()) continue;
    if (t.RequestsOf(c) == im.m * im.arity) {
      const NodeId n1 = t.Parent(t.Parent(c));
      s.assignment.push_back({c, n1, t.RequestsOf(c)});
    } else {
      s.assignment.push_back({c, t.Root(), t.RequestsOf(c)});
    }
  }
  const auto report = ValidateSolution(im.instance, Policy::kSingle, s);
  EXPECT_TRUE(report.ok) << report.Describe();
  EXPECT_EQ(s.replicas.size(), im.optimal);
}

TEST(TightnessIm, RejectsBadParameters) {
  EXPECT_THROW((void)BuildTightnessIm(0, 3), InvalidArgument);
  EXPECT_THROW((void)BuildTightnessIm(2, 1), InvalidArgument);
}

TEST(TightnessIm, WorksAtMinimumArity) {
  const TightnessIm im = BuildTightnessIm(4, 2);
  EXPECT_EQ(im.single_gen_expected, 12u);
  EXPECT_TRUE(im.instance.GetTree().IsBinary());
}

// --- Fig. 4 family structural checks -------------------------------------

TEST(TightnessFig4, MatchesPaperParameters) {
  const TightnessFig4 fig = BuildTightnessFig4(5);
  EXPECT_EQ(fig.instance.Capacity(), 5u);
  EXPECT_FALSE(fig.instance.HasDistanceConstraint());
  EXPECT_EQ(fig.optimal, 6u);
  EXPECT_EQ(fig.single_nod_expected, 10u);
  EXPECT_EQ(fig.instance.GetTree().TotalRequests(), 5u * 6u);
  EXPECT_EQ(fig.instance.GetTree().ClientCount(), 10u);
}

TEST(TightnessFig4, OptimalSolutionIsRealizable) {
  const TightnessFig4 fig = BuildTightnessFig4(4);
  const Tree& t = fig.instance.GetTree();
  Solution s;
  s.replicas.push_back(t.Root());
  for (const NodeId c : t.Clients()) {
    if (t.RequestsOf(c) == fig.k) {
      const NodeId parent = t.Parent(c);
      s.replicas.push_back(parent);
      s.assignment.push_back({c, parent, t.RequestsOf(c)});
    } else {
      s.assignment.push_back({c, t.Root(), t.RequestsOf(c)});
    }
  }
  const auto report = ValidateSolution(fig.instance, Policy::kSingle, s);
  EXPECT_TRUE(report.ok) << report.Describe();
  EXPECT_EQ(s.replicas.size(), fig.optimal);
}

TEST(TightnessFig4, RejectsTooSmallK) {
  EXPECT_THROW((void)BuildTightnessFig4(1), InvalidArgument);
}

}  // namespace
}  // namespace rpt::gen
